// Package wire is the Vertexica client/server protocol: length-
// prefixed frames over a byte stream, with result batches serialized
// column-wise using the storage package's column encodings (RLE /
// delta varint for integers, dictionary for strings, plain words for
// floats) — the same encodings the snapshot format uses, so results
// ship compressed exactly as they rest on disk.
//
// Frame layout:
//
//	[1 byte type][4 bytes payload length, big endian][payload]
//
// A conversation is strictly request/response per statement, keyed by
// a client-assigned statement id, except FrameCancel, which the client
// may send while a statement is in flight; the server then terminates
// that statement with FrameError("statement cancelled").
//
//	client → server                      server → client
//	-------------------                  -------------------
//	Hello{options}                       HelloOK{sessionID, info}
//	Query{stmt, sql}                     RowsHeader{stmt, schema}
//	Prepare{prep, sql}                     RowsBatch{stmt, batch}...
//	BindExec{stmt, prep, args}           ExecOK{stmt, rowsAffected}
//	Graph{stmt, verb, args}              Error{stmt, message}
//	Cancel{stmt}                         Done{stmt[, stats]}
//	Goodbye{}                            PrepareOK{prep}
//
// A statement exchange ends with exactly one terminal frame: Done on
// success (after the RowsBatch stream or ExecOK) or Error on failure.
// Done may carry an optional stats trailer (see PutStats) after the
// statement id; clients that stop at the id ignore it.
// Results stream, so an Error may arrive after RowsBatch frames have
// already shipped (an executor or encoder failure mid-result); no Done
// follows an Error, and the client must discard the partial rows and
// surface only the error.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/storage"
)

// ProtocolVersion is negotiated in Hello/HelloOK. Version 2 made
// FrameError terminal: a failed statement is no longer followed by
// FrameDone.
const ProtocolVersion = 2

// MaxFrameSize caps a frame payload (64 MiB): a corrupt or hostile
// length header must not become an allocation bomb.
const MaxFrameSize = 64 << 20

// Frame types. Client-originated frames have the high bit clear,
// server-originated frames have it set.
const (
	FrameHello    byte = 0x01
	FrameQuery    byte = 0x02
	FramePrepare  byte = 0x03
	FrameBindExec byte = 0x04
	FrameCancel   byte = 0x05
	FrameGraph    byte = 0x06
	FrameGoodbye  byte = 0x07

	FrameHelloOK    byte = 0x81
	FrameRowsHeader byte = 0x82
	FrameRowsBatch  byte = 0x83
	FrameExecOK     byte = 0x84
	FrameError      byte = 0x85
	FrameDone       byte = 0x86
	FramePrepareOK  byte = 0x87
)

// ErrCorrupt reports malformed frame payloads.
var ErrCorrupt = errors.New("wire: corrupt frame payload")

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("wire: frame payload %d exceeds limit %d", len(payload), MaxFrameSize)
	}
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame from r, rejecting oversized payloads
// before allocating.
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrameSize {
		return 0, nil, fmt.Errorf("wire: frame payload %d exceeds limit %d", n, MaxFrameSize)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// Buffer builds a frame payload.
type Buffer struct{ B []byte }

// PutUvarint appends an unsigned varint.
func (b *Buffer) PutUvarint(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	b.B = append(b.B, tmp[:n]...)
}

// PutU32 appends a statement/prepared id.
func (b *Buffer) PutU32(v uint32) { b.PutUvarint(uint64(v)) }

// PutBytes appends a length-prefixed byte slice.
func (b *Buffer) PutBytes(p []byte) {
	b.PutUvarint(uint64(len(p)))
	b.B = append(b.B, p...)
}

// PutString appends a length-prefixed string.
func (b *Buffer) PutString(s string) {
	b.PutUvarint(uint64(len(s)))
	b.B = append(b.B, s...)
}

// PutValue appends one typed SQL value (prepared-statement arguments).
func (b *Buffer) PutValue(v storage.Value) {
	b.B = append(b.B, byte(v.Type))
	if v.Null {
		b.B = append(b.B, 1)
		return
	}
	b.B = append(b.B, 0)
	switch v.Type {
	case storage.TypeInt64, storage.TypeBool:
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutVarint(tmp[:], v.I)
		b.B = append(b.B, tmp[:n]...)
	case storage.TypeFloat64:
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v.F))
		b.B = append(b.B, tmp[:]...)
	case storage.TypeString:
		b.PutString(v.S)
	}
}

// Reader decodes a frame payload; errors are sticky.
type Reader struct {
	B   []byte
	Err error
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.Err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.B)
	if n <= 0 {
		r.Err = ErrCorrupt
		return 0
	}
	r.B = r.B[n:]
	return v
}

// U32 reads a statement/prepared id.
func (r *Reader) U32() uint32 { return uint32(r.Uvarint()) }

// Bytes reads a length-prefixed byte slice (shared with the payload).
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.Err != nil {
		return nil
	}
	if n > uint64(len(r.B)) {
		r.Err = ErrCorrupt
		return nil
	}
	p := r.B[:n]
	r.B = r.B[n:]
	return p
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Value reads one typed SQL value.
func (r *Reader) Value() storage.Value {
	if r.Err != nil {
		return storage.Value{}
	}
	if len(r.B) < 2 {
		r.Err = ErrCorrupt
		return storage.Value{}
	}
	typ := storage.Type(r.B[0])
	null := r.B[1] == 1
	r.B = r.B[2:]
	switch typ {
	case storage.TypeInt64, storage.TypeFloat64, storage.TypeString, storage.TypeBool:
	default:
		r.Err = ErrCorrupt
		return storage.Value{}
	}
	if null {
		return storage.Null(typ)
	}
	switch typ {
	case storage.TypeInt64, storage.TypeBool:
		v, n := binary.Varint(r.B)
		if n <= 0 {
			r.Err = ErrCorrupt
			return storage.Value{}
		}
		r.B = r.B[n:]
		return storage.Value{Type: typ, I: v}
	case storage.TypeFloat64:
		if len(r.B) < 8 {
			r.Err = ErrCorrupt
			return storage.Value{}
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(r.B))
		r.B = r.B[8:]
		return storage.Float64(f)
	default: // TypeString
		return storage.Str(r.String())
	}
}

// Done reports whether the payload was fully and cleanly consumed.
func (r *Reader) Done() bool { return r.Err == nil && len(r.B) == 0 }

// Stat is one named counter in a Done-frame stats trailer.
type Stat struct {
	Name  string
	Value int64
}

// PutStats appends a stats trailer to a Done-frame payload: a pair
// count followed by (name, signed varint) pairs. The trailer rides
// after the statement id, where pre-trailer clients simply stop
// reading, so it is wire-compatible with protocol version 2 — graph
// verbs use it to ship their RunStats (supersteps, cache hits, skipped
// partitions) without a schema change.
func (b *Buffer) PutStats(stats []Stat) {
	if len(stats) == 0 {
		return
	}
	b.PutUvarint(uint64(len(stats)))
	for _, s := range stats {
		b.PutString(s.Name)
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutVarint(tmp[:], s.Value)
		b.B = append(b.B, tmp[:n]...)
	}
}

// Stats reads a Done-frame stats trailer; nil when the payload carries
// none (an old server, or a statement with nothing to report).
func (r *Reader) Stats() []Stat {
	if r.Err != nil || len(r.B) == 0 {
		return nil
	}
	n := r.Uvarint()
	if r.Err != nil || n > uint64(len(r.B)) {
		r.Err = ErrCorrupt
		return nil
	}
	out := make([]Stat, 0, n)
	for i := uint64(0); i < n; i++ {
		name := r.String()
		if r.Err != nil {
			return nil
		}
		v, vn := binary.Varint(r.B)
		if vn <= 0 {
			r.Err = ErrCorrupt
			return nil
		}
		r.B = r.B[vn:]
		out = append(out, Stat{Name: name, Value: v})
	}
	return out
}
