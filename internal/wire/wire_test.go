package wire

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/storage"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameQuery, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, FrameDone, nil); err != nil {
		t.Fatal(err)
	}
	typ, p, err := ReadFrame(&buf)
	if err != nil || typ != FrameQuery || string(p) != "payload" {
		t.Fatalf("frame 1: typ=%x p=%q err=%v", typ, p, err)
	}
	typ, p, err = ReadFrame(&buf)
	if err != nil || typ != FrameDone || len(p) != 0 {
		t.Fatalf("frame 2: typ=%x p=%q err=%v", typ, p, err)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	// A hostile 4 GiB length header must be rejected before allocation.
	hdr := []byte{FrameQuery, 0xff, 0xff, 0xff, 0xff}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); err == nil ||
		!strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized frame accepted: %v", err)
	}
}

func TestValueRoundTrip(t *testing.T) {
	vals := []storage.Value{
		storage.Int64(-42),
		storage.Float64(3.5),
		storage.Str("hello 'quoted' world"),
		storage.Bool(true),
		storage.Bool(false),
		storage.Null(storage.TypeInt64),
		storage.Null(storage.TypeString),
	}
	var b Buffer
	for _, v := range vals {
		b.PutValue(v)
	}
	r := &Reader{B: b.B}
	for i, want := range vals {
		got := r.Value()
		if r.Err != nil {
			t.Fatalf("value %d: %v", i, r.Err)
		}
		if got.Type != want.Type || got.Null != want.Null || !storage.Equal(got, want) {
			t.Fatalf("value %d: got %+v want %+v", i, got, want)
		}
	}
	if !r.Done() {
		t.Fatal("trailing bytes after values")
	}
}

func makeTestBatch(t *testing.T) *storage.Batch {
	t.Helper()
	schema := storage.NewSchema(
		storage.NotNullCol("id", storage.TypeInt64),
		storage.Col("score", storage.TypeFloat64),
		storage.Col("name", storage.TypeString),
		storage.Col("flag", storage.TypeBool),
	)
	b := storage.NewBatch(schema)
	for i := 0; i < 300; i++ {
		name := "alpha"
		if i%3 == 0 {
			name = "beta"
		}
		vals := []storage.Value{
			storage.Int64(int64(i)),
			storage.Float64(float64(i) / 7),
			storage.Str(name),
			storage.Bool(i%2 == 0),
		}
		if i%11 == 0 {
			vals[1] = storage.Null(storage.TypeFloat64)
		}
		if i%13 == 0 {
			vals[2] = storage.Null(storage.TypeString)
		}
		if err := b.AppendRow(vals...); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func TestBatchRoundTrip(t *testing.T) {
	data := makeTestBatch(t)
	var b Buffer
	AppendSchema(&b, data.Schema)
	if err := AppendBatch(&b, data); err != nil {
		t.Fatal(err)
	}
	r := &Reader{B: b.B}
	schema, err := ReadSchema(r)
	if err != nil {
		t.Fatal(err)
	}
	if !schema.Equal(data.Schema) {
		t.Fatalf("schema mismatch: %v vs %v", schema, data.Schema)
	}
	got, err := ReadBatch(r, schema)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Done() {
		t.Fatal("trailing bytes after batch")
	}
	if !EqualBatches(got, data) {
		t.Fatal("batch round trip not byte-identical")
	}
}

func TestEmptyBatchRoundTrip(t *testing.T) {
	schema := storage.NewSchema(storage.Col("x", storage.TypeInt64))
	data := storage.NewBatch(schema)
	var b Buffer
	if err := AppendBatch(&b, data); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBatch(&Reader{B: b.B}, schema)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("empty batch decoded to %d rows", got.Len())
	}
}

// TestBatchCorruptInputs feeds truncated/bit-flipped serializations to
// the decoder; it must error, never panic or over-allocate.
func TestBatchCorruptInputs(t *testing.T) {
	data := makeTestBatch(t)
	var b Buffer
	AppendSchema(&b, data.Schema)
	if err := AppendBatch(&b, data); err != nil {
		t.Fatal(err)
	}
	decode := func(p []byte) error {
		r := &Reader{B: p}
		schema, err := ReadSchema(r)
		if err != nil {
			return err
		}
		_, err = ReadBatch(r, schema)
		return err
	}
	if err := decode(b.B); err != nil {
		t.Fatalf("pristine input failed: %v", err)
	}
	for cut := 1; cut < len(b.B); cut += 37 {
		if err := decode(b.B[:cut]); err == nil {
			// A truncation can only be acceptable if it still decodes
			// to a full batch; that cannot happen for strict prefixes
			// of a batch with this many rows.
			t.Fatalf("truncation at %d silently accepted", cut)
		}
	}
	for i := 0; i < len(b.B); i += 53 {
		mut := append([]byte(nil), b.B...)
		mut[i] ^= 0x80
		_ = decode(mut) // must not panic; error or value change both fine
	}
}

func TestReaderCorruptValues(t *testing.T) {
	r := &Reader{B: []byte{0xff}}
	r.Value()
	if r.Err == nil {
		t.Fatal("bad value type accepted")
	}
	r = &Reader{B: []byte{0x05}}
	r.Uvarint()
	r.Uvarint()
	if r.Err == nil {
		t.Fatal("truncated uvarint accepted")
	}
}

// TestBatchHostileNullBitmap: a null-bitmap word count crafted so
// nw*8 overflows uint64 must be rejected as corrupt, not panic in
// makeslice.
func TestBatchHostileNullBitmap(t *testing.T) {
	schema := storage.NewSchema(storage.Col("x", storage.TypeInt64))
	var b Buffer
	b.PutUvarint(4)       // row count
	b.PutUvarint(1 << 61) // hostile word count: *8 wraps to 0
	if _, err := ReadBatch(&Reader{B: b.B}, schema); err == nil {
		t.Fatal("hostile null-bitmap word count accepted")
	}
}

func TestStatsTrailerRoundTrip(t *testing.T) {
	stats := []Stat{
		{Name: "supersteps", Value: 9},
		{Name: "dangling_messages", Value: 0},
		{Name: "delta", Value: -17},
	}
	var b Buffer
	b.PutU32(42) // statement id, as on a real Done frame
	b.PutStats(stats)
	r := &Reader{B: b.B}
	if id := r.U32(); id != 42 {
		t.Fatalf("stmt id: %d", id)
	}
	got := r.Stats()
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if len(got) != len(stats) {
		t.Fatalf("got %d stats, want %d", len(got), len(stats))
	}
	for i := range stats {
		if got[i] != stats[i] {
			t.Fatalf("stat %d: got %+v want %+v", i, got[i], stats[i])
		}
	}

	// A bare Done payload (old server, or nothing to report) reads as a
	// nil trailer, not an error.
	var bare Buffer
	bare.PutU32(7)
	r = &Reader{B: bare.B}
	r.U32()
	if got := r.Stats(); got != nil || r.Err != nil {
		t.Fatalf("bare payload: stats=%v err=%v", got, r.Err)
	}

	// Empty stat lists encode to nothing: pre-trailer clients see the
	// exact old payload.
	var empty Buffer
	empty.PutU32(7)
	empty.PutStats(nil)
	if len(empty.B) != len(bare.B) {
		t.Fatalf("PutStats(nil) grew the payload: %d vs %d bytes", len(empty.B), len(bare.B))
	}

	// A hostile count larger than the remaining payload must be rejected
	// before allocation.
	var hostile Buffer
	hostile.PutU32(1)
	hostile.PutUvarint(1 << 40)
	r = &Reader{B: hostile.B}
	r.U32()
	if got := r.Stats(); got != nil || r.Err == nil {
		t.Fatalf("hostile count accepted: stats=%v err=%v", got, r.Err)
	}
}
