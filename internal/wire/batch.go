package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/storage"
)

// Column-wise batch serialization. Schemas and batches travel in
// separate frames (RowsHeader carries the schema once; each RowsBatch
// carries only row data), so a large result streams without repeating
// metadata. Integer columns ship under the better of RLE and delta
// encoding, strings under dictionary encoding, floats as plain words,
// booleans as RLE — exactly the storage encodings of the column store,
// with decode-side row-count caps so corrupt headers cannot force
// large allocations.

// AppendSchema appends a schema to the buffer.
func AppendSchema(b *Buffer, s storage.Schema) {
	b.PutUvarint(uint64(s.Len()))
	for _, c := range s.Cols {
		b.PutString(c.Name)
		flags := uint64(c.Type) << 1
		if c.NotNull {
			flags |= 1
		}
		b.PutUvarint(flags)
	}
}

// ReadSchema decodes a schema.
func ReadSchema(r *Reader) (storage.Schema, error) {
	nc := r.Uvarint()
	if r.Err != nil {
		return storage.Schema{}, r.Err
	}
	// Each column costs at least two bytes (empty name + flags).
	if nc > uint64(len(r.B)) {
		return storage.Schema{}, ErrCorrupt
	}
	cols := make([]storage.ColumnDef, nc)
	for i := range cols {
		name := r.String()
		flags := r.Uvarint()
		if r.Err != nil {
			return storage.Schema{}, r.Err
		}
		typ := storage.Type(flags >> 1)
		switch typ {
		case storage.TypeInt64, storage.TypeFloat64, storage.TypeString, storage.TypeBool:
		default:
			return storage.Schema{}, fmt.Errorf("wire: unknown column type %d", typ)
		}
		cols[i] = storage.ColumnDef{Name: name, Type: typ, NotNull: flags&1 != 0}
	}
	return storage.NewSchema(cols...), nil
}

// AppendBatch appends the rows of a batch column-wise. The schema is
// not repeated; decode with the schema from the RowsHeader.
func AppendBatch(b *Buffer, data *storage.Batch) error {
	n := data.Len()
	b.PutUvarint(uint64(n))
	for _, col := range data.Cols {
		// Null bitmap first (no words = no nulls).
		words := storage.NullsOf(col).Words()
		b.PutUvarint(uint64(len(words)))
		var wb [8]byte
		for _, word := range words {
			binary.LittleEndian.PutUint64(wb[:], word)
			b.B = append(b.B, wb[:]...)
		}
		switch c := col.(type) {
		case *storage.Int64Column:
			enc, _ := storage.CompressedSize(c.Int64s())
			if enc == storage.EncRLE {
				b.PutBytes(storage.EncodeInt64RLE(c.Int64s()))
			} else {
				b.PutBytes(storage.EncodeInt64Delta(c.Int64s()))
			}
		case *storage.Float64Column:
			b.PutBytes(storage.EncodeFloat64Plain(c.Float64s()))
		case *storage.StringColumn:
			b.PutBytes(storage.EncodeStringDict(c.Strings()))
		case *storage.BoolColumn:
			ints := make([]int64, n)
			for i, v := range c.Bools() {
				if v {
					ints[i] = 1
				}
			}
			b.PutBytes(storage.EncodeInt64RLE(ints))
		default:
			return fmt.Errorf("wire: cannot encode column type %T", col)
		}
	}
	return nil
}

// ReadBatch decodes a batch serialized by AppendBatch against its
// schema.
func ReadBatch(r *Reader, schema storage.Schema) (*storage.Batch, error) {
	n := int(r.Uvarint())
	if r.Err != nil {
		return nil, r.Err
	}
	if n < 0 || n > MaxFrameSize {
		return nil, ErrCorrupt
	}
	batch := &storage.Batch{Schema: schema, Cols: make([]storage.Column, schema.Len())}
	for i, def := range schema.Cols {
		nw := r.Uvarint()
		if r.Err != nil {
			return nil, r.Err
		}
		// Divide instead of multiplying: nw*8 can wrap for a hostile
		// word count, sneaking past the bound into a huge allocation.
		if nw > uint64(len(r.B))/8 {
			return nil, ErrCorrupt
		}
		var nulls *storage.Bitmap
		if nw > 0 {
			words := make([]uint64, nw)
			for wi := range words {
				words[wi] = binary.LittleEndian.Uint64(r.B[wi*8:])
			}
			r.B = r.B[nw*8:]
			nulls = storage.BitmapFromWords(words, n)
		}
		payload := r.Bytes()
		if r.Err != nil {
			return nil, r.Err
		}
		col, err := decodeColumn(payload, def.Type, n)
		if err != nil {
			return nil, fmt.Errorf("wire: column %s: %w", def.Name, err)
		}
		if col.Len() != n {
			return nil, fmt.Errorf("wire: column %s has %d rows, expected %d", def.Name, col.Len(), n)
		}
		if nulls != nil {
			storage.SetNulls(col, nulls)
		}
		batch.Cols[i] = col
	}
	return batch, nil
}

func decodeColumn(payload []byte, typ storage.Type, n int) (storage.Column, error) {
	switch typ {
	case storage.TypeInt64:
		var vals []int64
		var err error
		if len(payload) > 0 && storage.Encoding(payload[0]) == storage.EncRLE {
			vals, err = storage.DecodeInt64RLEMax(payload, n)
		} else {
			vals, err = storage.DecodeInt64Delta(payload)
		}
		if err != nil {
			return nil, err
		}
		if vals == nil {
			vals = []int64{}
		}
		return storage.NewInt64Column(vals), nil
	case storage.TypeFloat64:
		vals, err := storage.DecodeFloat64Plain(payload)
		if err != nil {
			return nil, err
		}
		return storage.NewFloat64Column(vals), nil
	case storage.TypeString:
		vals, err := storage.DecodeStringDict(payload)
		if err != nil {
			return nil, err
		}
		return storage.NewStringColumn(vals), nil
	case storage.TypeBool:
		ints, err := storage.DecodeInt64RLEMax(payload, n)
		if err != nil {
			return nil, err
		}
		bools := make([]bool, len(ints))
		for i, v := range ints {
			bools[i] = v != 0
		}
		return storage.NewBoolColumn(bools), nil
	}
	return nil, fmt.Errorf("unknown type %d", typ)
}

// EqualBatches reports whether two batches are byte-identical: same
// schema, same row count, and Compare-equal values cell by cell (NULLs
// must match too). The differential harness uses it to assert the
// network path reproduces the in-process path exactly.
func EqualBatches(a, b *storage.Batch) bool {
	if a.Len() != b.Len() || len(a.Cols) != len(b.Cols) {
		return false
	}
	if !a.Schema.Equal(b.Schema) {
		return false
	}
	for j := range a.Cols {
		for i := 0; i < a.Len(); i++ {
			av, bv := a.Cols[j].Value(i), b.Cols[j].Value(i)
			if av.Null != bv.Null || !storage.Equal(av, bv) {
				return false
			}
		}
	}
	return true
}
