package dataset

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/engine"
)

func TestErdosRenyiShape(t *testing.T) {
	g := ErdosRenyi("er", 100, 500, 7)
	if len(g.Edges) != 500 {
		t.Fatalf("edges = %d", len(g.Edges))
	}
	seen := map[[2]int64]bool{}
	for _, e := range g.Edges {
		if e.Src == e.Dst {
			t.Fatal("self loop generated")
		}
		if e.Src < 0 || e.Src >= 100 || e.Dst < 0 || e.Dst >= 100 {
			t.Fatal("node id out of range")
		}
		k := [2]int64{e.Src, e.Dst}
		if seen[k] {
			t.Fatal("duplicate edge")
		}
		seen[k] = true
		if e.Weight <= 0 || e.Type == "" || e.Created < timeOrigin {
			t.Fatal("metadata missing")
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := ErdosRenyi("a", 50, 100, 42)
	b := ErdosRenyi("b", 50, 100, 42)
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range a.Edges {
		if a.Edges[i].Src != b.Edges[i].Src || a.Edges[i].Dst != b.Edges[i].Dst ||
			a.Edges[i].Weight != b.Edges[i].Weight {
			t.Fatal("nondeterministic edges")
		}
	}
}

func TestPreferentialAttachmentSkew(t *testing.T) {
	g := PreferentialAttachment("pa", 2000, 5, 11)
	deg := make(map[int64]int)
	for _, e := range g.Edges {
		deg[e.Src]++
		deg[e.Dst]++
	}
	// Power-law graphs have a hub: max degree far above average.
	maxDeg, sum := 0, 0
	for _, d := range deg {
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(sum) / float64(len(deg))
	if float64(maxDeg) < 5*avg {
		t.Errorf("no skew: max degree %d vs avg %.1f", maxDeg, avg)
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT("rmat", 8, 300, 0.57, 0.19, 0.19, 5)
	if g.Nodes != 256 || len(g.Edges) != 300 {
		t.Fatalf("rmat shape: %d nodes %d edges", g.Nodes, len(g.Edges))
	}
}

func TestMakeUndirected(t *testing.T) {
	g := &Graph{Name: "u", Nodes: 3, Edges: []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}, {Src: 1, Dst: 2}}}
	u := MakeUndirected(g)
	if len(u.Edges) != 4 {
		t.Fatalf("undirected edges = %d, want 4", len(u.Edges))
	}
	seen := map[[2]int64]bool{}
	for _, e := range u.Edges {
		k := [2]int64{e.Src, e.Dst}
		if seen[k] {
			t.Fatal("duplicate after symmetrize")
		}
		seen[k] = true
	}
	if !seen[[2]int64{2, 1}] {
		t.Error("reverse edge missing")
	}
}

func TestMaxOutDegreeNode(t *testing.T) {
	g := &Graph{Edges: []Edge{{Src: 5, Dst: 1}, {Src: 5, Dst: 2}, {Src: 3, Dst: 5}}}
	if got := g.MaxOutDegreeNode(); got != 5 {
		t.Errorf("max out-degree node = %d, want 5", got)
	}
}

func TestPresetsShapes(t *testing.T) {
	tw := TwitterScale(0.01)
	gp := GPlusScale(0.01)
	lj := LiveJournalScale(0.001)
	avg := func(g *Graph) float64 { return float64(len(g.Edges)) / float64(g.Nodes) }
	// GPlus is much denser than Twitter, which is denser than LiveJournal.
	if !(avg(gp) > 2*avg(tw)) {
		t.Errorf("gplus density %.1f should far exceed twitter %.1f", avg(gp), avg(tw))
	}
	if !(avg(tw) > avg(lj)) {
		t.Errorf("twitter density %.1f should exceed livejournal %.1f", avg(tw), avg(lj))
	}
}

func TestSnapRoundTrip(t *testing.T) {
	g := ErdosRenyi("rt", 30, 60, 3)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList("rt", &buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Edges) != len(g.Edges) {
		t.Fatalf("round trip %d edges, want %d", len(back.Edges), len(g.Edges))
	}
	for i := range g.Edges {
		if back.Edges[i].Src != g.Edges[i].Src || back.Edges[i].Dst != g.Edges[i].Dst {
			t.Fatal("edges reordered or corrupted")
		}
	}
}

func TestSnapParsing(t *testing.T) {
	in := "# comment\n\n1 2\n3\t4\n"
	g, err := ReadEdgeList("t", strings.NewReader(in), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != 2 || g.Nodes != 5 {
		t.Errorf("parsed %d edges, %d nodes", len(g.Edges), g.Nodes)
	}
	if _, err := ReadEdgeList("bad", strings.NewReader("1\n"), 1); err == nil {
		t.Error("short line should fail")
	}
	if _, err := ReadEdgeList("bad", strings.NewReader("x y\n"), 1); err == nil {
		t.Error("non-numeric should fail")
	}
}

func TestApplyMetadata(t *testing.T) {
	db := engine.New()
	ids := []int64{1, 2, 3}
	if err := ApplyMetadata(db, "g", ids, 42); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query("SELECT COUNT(*) FROM g_vertex_meta")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Value(0, 0).I != 3 {
		t.Errorf("meta rows = %v", rows.Value(0, 0))
	}
	// Schema: id + 24 + 8 + 18 + 10 = 61 columns.
	all, err := db.Query("SELECT * FROM g_vertex_meta LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Columns()) != 61 {
		t.Errorf("meta columns = %d, want 61", len(all.Columns()))
	}
	// Metadata is queryable relationally (the paper's §3.4 story).
	v, err := db.QueryScalar("SELECT COUNT(*) FROM g_vertex_meta WHERE u0 IN (0, 1)")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 3 { // u0 has cardinality 2
		t.Errorf("u0 cardinality breach: matched %v of 3", v)
	}
	// Re-applying replaces, not duplicates.
	if err := ApplyMetadata(db, "g", ids, 43); err != nil {
		t.Fatal(err)
	}
	v, _ = db.QueryScalar("SELECT COUNT(*) FROM g_vertex_meta")
	if v.I != 3 {
		t.Error("re-apply duplicated rows")
	}
}

func TestUniformCardProgression(t *testing.T) {
	if uniformCard(0) != 2 {
		t.Error("first cardinality should be 2")
	}
	if uniformCard(23) != 1_000_000_000 {
		t.Error("last cardinality should cap at 1e9")
	}
}
