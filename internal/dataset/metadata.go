package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/storage"
)

// Metadata generation per §4 of the paper: every node gets 24 uniform
// integer attributes (cardinality 2 … 10^9), 8 zipfian integer
// attributes with varying skew, 18 floating-point attributes with
// varying ranges, and 10 string attributes with varying size and
// cardinality. Edges already carry weight/type/created (attachMeta).

// MetaTableName returns the vertex-metadata table for a graph.
func MetaTableName(graphName string) string { return graphName + "_vertex_meta" }

// uniformCard spreads attribute cardinalities from 2 to 1e9 over the
// 24 uniform columns (geometric progression, matching the paper's
// "cardinality varying from 2 to 10^9").
func uniformCard(i int) int64 {
	card := int64(2 * math.Pow(5e8, float64(i)/23.0))
	if card < 2 {
		card = 2
	}
	if card > 1_000_000_000 {
		card = 1_000_000_000
	}
	return card
}

// MetadataSchema builds the §4 vertex-metadata schema.
func MetadataSchema() storage.Schema {
	cols := []storage.ColumnDef{storage.NotNullCol("id", storage.TypeInt64)}
	for i := 0; i < 24; i++ {
		cols = append(cols, storage.Col(fmt.Sprintf("u%d", i), storage.TypeInt64))
	}
	for i := 0; i < 8; i++ {
		cols = append(cols, storage.Col(fmt.Sprintf("z%d", i), storage.TypeInt64))
	}
	for i := 0; i < 18; i++ {
		cols = append(cols, storage.Col(fmt.Sprintf("f%d", i), storage.TypeFloat64))
	}
	for i := 0; i < 10; i++ {
		cols = append(cols, storage.Col(fmt.Sprintf("s%d", i), storage.TypeString))
	}
	return storage.NewSchema(cols...)
}

// ApplyMetadata creates and fills <graph>_vertex_meta for the given
// node ids, deterministically from seed.
func ApplyMetadata(db *engine.DB, graphName string, nodeIDs []int64, seed int64) error {
	name := MetaTableName(graphName)
	if db.Catalog().Has(name) {
		if err := db.Catalog().Drop(name); err != nil {
			return err
		}
	}
	t, err := db.Catalog().Create(name, MetadataSchema())
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	zipfs := make([]*rand.Zipf, 8)
	for i := range zipfs {
		s := 1.1 + 0.2*float64(i) // varying skewness 1.1 … 2.5
		zipfs[i] = rand.NewZipf(rng, s, 1, 1_000_000)
	}
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta",
		"eta", "theta", "iota", "kappa", "lambda", "mu"}

	batch := storage.NewBatch(MetadataSchema())
	for _, id := range nodeIDs {
		row := make([]storage.Value, 0, 61)
		row = append(row, storage.Int64(id))
		for i := 0; i < 24; i++ {
			row = append(row, storage.Int64(rng.Int63n(uniformCard(i))))
		}
		for i := 0; i < 8; i++ {
			row = append(row, storage.Int64(int64(zipfs[i].Uint64())))
		}
		for i := 0; i < 18; i++ {
			lo := -float64(int64(1) << uint(i%10))
			hi := float64(int64(1) << uint(i%16))
			row = append(row, storage.Float64(lo+rng.Float64()*(hi-lo)))
		}
		for i := 0; i < 10; i++ {
			// Varying size (1..i+1 words) and cardinality.
			nWords := 1 + i%4
			s := ""
			for w := 0; w < nWords; w++ {
				if w > 0 {
					s += "-"
				}
				s += words[rng.Intn(2+i)]
			}
			row = append(row, storage.Str(s))
		}
		if err := batch.AppendRow(row...); err != nil {
			return err
		}
	}
	// Direct table write: hold the engine's statement latch so a
	// concurrent reader never observes a half-appended meta table.
	db.LockExclusive()
	defer db.UnlockExclusive()
	return t.AppendBatch(batch)
}
