package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
)

// ReadEdgeList parses the SNAP edge-list format: one "src dst" pair per
// line, '#' comments, whitespace separated. Metadata attributes are
// generated deterministically from seed, since SNAP files carry none.
func ReadEdgeList(name string, r io.Reader, seed int64) (*Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{Name: name}
	maxID := int64(-1)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("dataset: %s line %d: want 'src dst', got %q", name, lineNo, line)
		}
		src, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: %s line %d: bad src %q", name, lineNo, fields[0])
		}
		dst, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: %s line %d: bad dst %q", name, lineNo, fields[1])
		}
		e := Edge{Src: src, Dst: dst}
		attachMeta(rng, &e)
		g.Edges = append(g.Edges, e)
		if src > maxID {
			maxID = src
		}
		if dst > maxID {
			maxID = dst
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g.Nodes = maxID + 1
	return g, nil
}

// WriteEdgeList writes the graph in SNAP format with a header comment.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# %s\n# Nodes: %d Edges: %d\n", g.Name, g.Nodes, len(g.Edges)); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "%d\t%d\n", e.Src, e.Dst); err != nil {
			return err
		}
	}
	return bw.Flush()
}
