// Package dataset generates and loads the workloads of the paper's
// evaluation: synthetic social graphs with the degree structure of the
// SNAP datasets (Twitter, GPlus, LiveJournal), SNAP edge-list I/O for
// the real files when available, and the §4 metadata generator (24
// uniform integer attributes, 8 zipfian integers, 18 floats, 10 strings
// per node; weight, timestamp and type per edge).
package dataset

import (
	"fmt"
	"math/rand"
)

// Edge is one directed edge with the paper's metadata attributes.
type Edge struct {
	Src, Dst int64
	Weight   float64
	Type     string
	Created  int64
}

// Graph is a generated or loaded dataset.
type Graph struct {
	Name  string
	Nodes int64 // node ids are 0..Nodes-1 for generated graphs
	Edges []Edge
}

// EdgeTypes are the §4 edge types, chosen uniformly at random.
var EdgeTypes = []string{"family", "friend", "classmate"}

// timeOrigin is an arbitrary fixed epoch (2009-01-01) for generated
// creation timestamps; tests rely on determinism, so no wall clock.
const timeOrigin int64 = 1230768000

// attachMeta fills in weight/type/created deterministically from rng.
func attachMeta(rng *rand.Rand, e *Edge) {
	e.Weight = 0.1 + rng.Float64()*9.9
	e.Type = EdgeTypes[rng.Intn(len(EdgeTypes))]
	// Timestamps spread over ~5 years, supporting the paper's
	// "how did PageRank change over the last year" scenario.
	e.Created = timeOrigin + int64(rng.Intn(5*365*24*3600))
}

// ErdosRenyi generates a uniform random directed graph with n nodes
// and m distinct edges (no self-loops).
func ErdosRenyi(name string, n int64, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{Name: name, Nodes: n}
	seen := make(map[[2]int64]bool, m)
	for len(g.Edges) < m {
		a, b := rng.Int63n(n), rng.Int63n(n)
		if a == b || seen[[2]int64{a, b}] {
			continue
		}
		seen[[2]int64{a, b}] = true
		e := Edge{Src: a, Dst: b}
		attachMeta(rng, &e)
		g.Edges = append(g.Edges, e)
	}
	return g
}

// PreferentialAttachment generates a power-law (Barabási–Albert-style)
// directed graph: nodes arrive one at a time and attach k edges to
// endpoints sampled proportionally to degree — the degree skew of real
// social networks, which drives the hot-vertex behaviour of Figure 2.
func PreferentialAttachment(name string, n int64, k int, seed int64) *Graph {
	if n < 2 {
		n = 2
	}
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{Name: name, Nodes: n}
	// endpointPool holds one entry per edge endpoint; sampling from it
	// is sampling proportional to degree.
	pool := make([]int64, 0, 2*int(n)*k)
	pool = append(pool, 0, 1)
	g.Edges = append(g.Edges, withMeta(rng, 0, 1))
	seen := map[[2]int64]bool{{0, 1}: true}
	for v := int64(2); v < n; v++ {
		attached := 0
		attempts := 0
		for attached < k && attempts < 20*k {
			attempts++
			t := pool[rng.Intn(len(pool))]
			if t == v {
				continue
			}
			// Randomize edge orientation: real social graphs have both
			// follow directions, which keeps forward reachability high
			// (the SSSP experiments depend on the source reaching a
			// large region, as in the paper's datasets).
			src, dst := v, t
			if rng.Intn(2) == 0 {
				src, dst = t, v
			}
			key := [2]int64{src, dst}
			if seen[key] {
				continue
			}
			seen[key] = true
			g.Edges = append(g.Edges, withMeta(rng, src, dst))
			pool = append(pool, v, t)
			attached++
		}
		if attached == 0 {
			// Fall back to a uniform target so every node connects.
			t := rng.Int63n(v)
			key := [2]int64{v, t}
			if !seen[key] {
				seen[key] = true
				g.Edges = append(g.Edges, withMeta(rng, v, t))
				pool = append(pool, v, t)
			}
		}
	}
	return g
}

func withMeta(rng *rand.Rand, src, dst int64) Edge {
	e := Edge{Src: src, Dst: dst}
	attachMeta(rng, &e)
	return e
}

// RMAT generates a Kronecker-style graph (R-MAT) with 2^scale nodes
// and m edges using the standard (a,b,c,d) quadrant probabilities;
// duplicate edges and self-loops are rejected.
func RMAT(name string, scale uint, m int, a, b, c float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := int64(1) << scale
	g := &Graph{Name: name, Nodes: n}
	seen := make(map[[2]int64]bool, m)
	for len(g.Edges) < m {
		var src, dst int64
		for bit := uint(0); bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a: // top-left
			case r < a+b:
				dst |= 1 << bit
			case r < a+b+c:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		if src == dst || seen[[2]int64{src, dst}] {
			continue
		}
		seen[[2]int64{src, dst}] = true
		g.Edges = append(g.Edges, withMeta(rng, src, dst))
	}
	return g
}

// MakeUndirected returns a graph with every edge also stored in the
// reverse direction (deduplicated) — how the paper's undirected SNAP
// graphs load, and what the 1-hop SQL algorithms expect.
func MakeUndirected(g *Graph) *Graph {
	out := &Graph{Name: g.Name, Nodes: g.Nodes}
	seen := make(map[[2]int64]bool, 2*len(g.Edges))
	for _, e := range g.Edges {
		if !seen[[2]int64{e.Src, e.Dst}] {
			seen[[2]int64{e.Src, e.Dst}] = true
			out.Edges = append(out.Edges, e)
		}
		rev := e
		rev.Src, rev.Dst = e.Dst, e.Src
		if !seen[[2]int64{rev.Src, rev.Dst}] {
			seen[[2]int64{rev.Src, rev.Dst}] = true
			out.Edges = append(out.Edges, rev)
		}
	}
	return out
}

// MaxOutDegreeNode returns the node with the most out-edges — the
// paper-style SSSP source (a well-connected seed).
func (g *Graph) MaxOutDegreeNode() int64 {
	deg := make(map[int64]int)
	for _, e := range g.Edges {
		deg[e.Src]++
	}
	best, bestDeg := int64(0), -1
	for id, d := range deg {
		if d > bestDeg || (d == bestDeg && id < best) {
			best, bestDeg = id, d
		}
	}
	return best
}

// Paper-shaped presets. The SNAP graphs in Figure 2 are Twitter
// (81K nodes / 1.7M edges), GPlus (107K / 13.6M) and LiveJournal
// (4.8M / 68M). scale linearly shrinks node counts while preserving
// each dataset's average degree and skew so single-machine runs keep
// the relative shape. scale=1 reproduces full paper sizes.
//
// The three presets differ in average degree (Twitter ≈21, GPlus ≈127,
// LiveJournal ≈14), which is what separates their curves in Figure 2.

// TwitterScale generates the Twitter-shaped dataset at the given scale.
func TwitterScale(scale float64) *Graph {
	n := int64(81306 * scale)
	if n < 64 {
		n = 64
	}
	return PreferentialAttachment("twitter_s", n, 10, 1001) // ~21 avg total degree
}

// GPlusScale generates the GPlus-shaped dataset at the given scale.
func GPlusScale(scale float64) *Graph {
	n := int64(107614 * scale)
	if n < 64 {
		n = 64
	}
	return PreferentialAttachment("gplus_s", n, 63, 2002) // ~127 avg total degree
}

// LiveJournalScale generates the LiveJournal-shaped dataset at the
// given scale.
func LiveJournalScale(scale float64) *Graph {
	n := int64(4847571 * scale)
	if n < 64 {
		n = 64
	}
	return PreferentialAttachment("livejournal_s", n, 7, 3003) // ~14 avg total degree
}

// Stats summarizes a dataset for logging.
func (g *Graph) Stats() string {
	return fmt.Sprintf("%s: %d nodes, %d edges", g.Name, g.Nodes, len(g.Edges))
}
