// Package giraph is the Apache-Giraph stand-in used as the comparison
// system in the Figure 2 reproduction: an in-memory BSP (Pregel) engine
// with *modeled* distributed-cluster overheads.
//
// Substitution note (see DESIGN.md): the paper benchmarks Giraph on a
// 4-machine cluster. On the graph sizes of Figure 2, Giraph's cost is
// dominated by fixed per-superstep coordination (ZooKeeper barriers,
// job bookkeeping) plus message serialization and shuffling — which is
// why Vertexica beats it >4× on the small graph yet only ties it on the
// large ones. This engine reproduces that cost structure: messages are
// really serialized/deserialized through a byte buffer per superstep
// (genuine CPU work), and a configurable coordination latency is
// charged per superstep (wall-clock sleep, default 80 ms).
package giraph

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Edge is a directed edge with the weight attribute used by SSSP.
type Edge struct {
	Dst    int64
	Weight float64
}

// Config tunes the engine and its modeled overheads.
type Config struct {
	// Workers is the compute parallelism (default NumCPU).
	Workers int
	// SuperstepOverhead models per-superstep cluster coordination
	// (barrier + master bookkeeping). Default 80 ms; set to -1 to
	// disable entirely (pure in-memory BSP).
	SuperstepOverhead time.Duration
	// MaxSupersteps bounds runs (default 500).
	MaxSupersteps int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.SuperstepOverhead == 0 {
		c.SuperstepOverhead = 80 * time.Millisecond
	}
	if c.SuperstepOverhead < 0 {
		c.SuperstepOverhead = 0
	}
	if c.MaxSupersteps <= 0 {
		c.MaxSupersteps = 500
	}
	return c
}

// Vertex is the per-vertex view handed to a Program's Compute.
type Vertex struct {
	ID    int64
	Value float64
	Edges []Edge

	engine *Engine
	halted bool
	outbox []wireMessage
}

// NumVertices returns the graph size.
func (v *Vertex) NumVertices() int { return len(v.engine.verts) }

// Superstep returns the current superstep.
func (v *Vertex) Superstep() int { return v.engine.step }

// SendMessage enqueues a value for dst in the next superstep.
func (v *Vertex) SendMessage(dst int64, value float64) {
	v.outbox = append(v.outbox, wireMessage{dst: dst, value: value})
}

// SendToAllNeighbors sends value along every out-edge.
func (v *Vertex) SendToAllNeighbors(value float64) {
	for _, e := range v.Edges {
		v.SendMessage(e.Dst, value)
	}
}

// VoteToHalt deactivates the vertex until a message arrives.
func (v *Vertex) VoteToHalt() { v.halted = true }

// Program is a Giraph-style vertex computation over float64 values.
type Program interface {
	Compute(v *Vertex, msgs []float64) error
}

// wireMessage is a message before "network" serialization.
type wireMessage struct {
	dst   int64
	value float64
}

// vertexState is the engine's record for one vertex.
type vertexState struct {
	id     int64
	value  float64
	edges  []Edge
	halted bool
	inbox  []float64
}

// Stats reports a run's execution profile.
type Stats struct {
	Supersteps    int
	TotalMessages int64
	Duration      time.Duration
}

// Engine is an in-memory BSP engine over one loaded graph.
type Engine struct {
	cfg   Config
	verts map[int64]*vertexState
	order []int64 // deterministic iteration order (insertion)
	step  int
}

// New returns an empty engine.
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg.withDefaults(), verts: make(map[int64]*vertexState)}
}

// AddVertex registers a vertex (idempotent).
func (e *Engine) AddVertex(id int64) *vertexState {
	if v, ok := e.verts[id]; ok {
		return v
	}
	v := &vertexState{id: id}
	e.verts[id] = v
	e.order = append(e.order, id)
	return v
}

// AddEdge registers a directed edge, creating endpoints as needed.
func (e *Engine) AddEdge(src, dst int64, weight float64) {
	sv := e.AddVertex(src)
	e.AddVertex(dst)
	sv.edges = append(sv.edges, Edge{Dst: dst, Weight: weight})
}

// NumVertices returns the vertex count.
func (e *Engine) NumVertices() int { return len(e.verts) }

// SetValues initializes every vertex value.
func (e *Engine) SetValues(f func(id int64) float64) {
	for id, v := range e.verts {
		v.value = f(id)
		v.halted = false
		v.inbox = nil
	}
}

// Values snapshots the current vertex values.
func (e *Engine) Values() map[int64]float64 {
	out := make(map[int64]float64, len(e.verts))
	for id, v := range e.verts {
		out[id] = v.value
	}
	return out
}

// Run executes the program to completion (all halted, no messages).
func (e *Engine) Run(prog Program) (*Stats, error) {
	start := time.Now()
	stats := &Stats{}
	for e.step = 0; e.step < e.cfg.MaxSupersteps; e.step++ {
		// Modeled cluster coordination for this superstep.
		if e.cfg.SuperstepOverhead > 0 {
			time.Sleep(e.cfg.SuperstepOverhead)
		}

		active := e.activeVertices()
		if len(active) == 0 {
			break
		}
		outboxes, err := e.computeParallel(prog, active)
		if err != nil {
			return stats, err
		}

		// "Network shuffle": serialize every message to the wire
		// format and deserialize into the destination inbox — the real
		// CPU cost Giraph pays that Vertexica's in-engine passing avoids.
		msgCount, err := e.shuffle(outboxes)
		if err != nil {
			return stats, err
		}
		stats.TotalMessages += int64(msgCount)
		stats.Supersteps = e.step + 1
		if msgCount == 0 && e.allHalted() {
			break
		}
	}
	stats.Duration = time.Since(start)
	return stats, nil
}

func (e *Engine) activeVertices() []*vertexState {
	var out []*vertexState
	for _, id := range e.order {
		v := e.verts[id]
		if e.step == 0 || !v.halted || len(v.inbox) > 0 {
			out = append(out, v)
		}
	}
	return out
}

func (e *Engine) allHalted() bool {
	for _, v := range e.verts {
		if !v.halted {
			return false
		}
	}
	return true
}

// computeParallel runs Compute over active vertices with the worker
// pool and returns the per-vertex outboxes.
func (e *Engine) computeParallel(prog Program, active []*vertexState) ([][]wireMessage, error) {
	outboxes := make([][]wireMessage, len(active))
	errs := make([]error, e.cfg.Workers)
	var next int64
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(len(active)) {
			return -1
		}
		i := int(next)
		next++
		return i
	}
	var wg sync.WaitGroup
	for w := 0; w < e.cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[w] = fmt.Errorf("giraph: worker %d panicked: %v", w, r)
				}
			}()
			for {
				i := take()
				if i < 0 {
					return
				}
				vs := active[i]
				vv := &Vertex{ID: vs.id, Value: vs.value, Edges: vs.edges, engine: e}
				msgs := vs.inbox
				if err := prog.Compute(vv, msgs); err != nil {
					errs[w] = err
					return
				}
				vs.value = vv.Value
				vs.halted = vv.halted
				outboxes[i] = vv.outbox
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Inboxes were consumed this superstep.
	for _, vs := range active {
		vs.inbox = nil
	}
	return outboxes, nil
}

// shuffle serializes all messages to wire format, then deserializes
// them into destination inboxes.
func (e *Engine) shuffle(outboxes [][]wireMessage) (int, error) {
	var wire []byte
	count := 0
	var buf [16]byte
	for _, box := range outboxes {
		for _, m := range box {
			binary.LittleEndian.PutUint64(buf[0:8], uint64(m.dst))
			binary.LittleEndian.PutUint64(buf[8:16], mathFloat64bits(m.value))
			wire = append(wire, buf[:]...)
			count++
		}
	}
	for off := 0; off < len(wire); off += 16 {
		dst := int64(binary.LittleEndian.Uint64(wire[off : off+8]))
		val := mathFloat64frombits(binary.LittleEndian.Uint64(wire[off+8 : off+16]))
		v, ok := e.verts[dst]
		if !ok {
			continue // dangling message
		}
		v.inbox = append(v.inbox, val)
	}
	return count, nil
}
