package giraph

import "math"

// mathFloat64bits/frombits isolate the math import from the wire code.
func mathFloat64bits(f float64) uint64     { return math.Float64bits(f) }
func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }

// pageRank is the Giraph PageRank application, identical in convention
// to algorithms.PageRank (damping 0.85, no dangling redistribution).
type pageRank struct {
	iterations int
	damping    float64
}

// Compute implements Program.
func (p *pageRank) Compute(v *Vertex, msgs []float64) error {
	n := float64(v.NumVertices())
	var rank float64
	if v.Superstep() == 0 {
		rank = 1.0 / n
	} else {
		sum := 0.0
		for _, m := range msgs {
			sum += m
		}
		rank = (1-p.damping)/n + p.damping*sum
	}
	v.Value = rank
	if v.Superstep() >= p.iterations {
		v.VoteToHalt()
		return nil
	}
	if len(v.Edges) > 0 {
		v.SendToAllNeighbors(rank / float64(len(v.Edges)))
	}
	return nil
}

// PageRank runs PageRank on the engine and returns final ranks.
func PageRank(e *Engine, iterations int) (map[int64]float64, *Stats, error) {
	e.SetValues(func(int64) float64 { return 0 })
	stats, err := e.Run(&pageRank{iterations: iterations, damping: 0.85})
	if err != nil {
		return nil, nil, err
	}
	return e.Values(), stats, nil
}

// sssp is the Giraph shortest-paths application.
type sssp struct {
	source int64
	unit   bool
}

// Compute implements Program.
func (s *sssp) Compute(v *Vertex, msgs []float64) error {
	if v.Superstep() == 0 {
		if v.ID == s.source {
			v.Value = 0
			s.relax(v)
		} else {
			v.Value = math.Inf(1)
		}
		v.VoteToHalt()
		return nil
	}
	best := v.Value
	for _, m := range msgs {
		if m < best {
			best = m
		}
	}
	if best < v.Value {
		v.Value = best
		s.relax(v)
	}
	v.VoteToHalt()
	return nil
}

func (s *sssp) relax(v *Vertex) {
	for _, e := range v.Edges {
		w := e.Weight
		if s.unit || w <= 0 {
			w = 1
		}
		v.SendMessage(e.Dst, v.Value+w)
	}
}

// SSSP runs single-source shortest paths and returns distances
// (+Inf for unreachable vertices).
func SSSP(e *Engine, source int64, unitWeights bool) (map[int64]float64, *Stats, error) {
	e.SetValues(func(int64) float64 { return math.Inf(1) })
	stats, err := e.Run(&sssp{source: source, unit: unitWeights})
	if err != nil {
		return nil, nil, err
	}
	return e.Values(), stats, nil
}
