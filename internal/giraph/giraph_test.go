package giraph

import (
	"math"
	"testing"
	"time"
)

func testEngine() *Engine {
	e := New(Config{Workers: 2, SuperstepOverhead: -1})
	e.AddEdge(1, 2, 1)
	e.AddEdge(1, 3, 4)
	e.AddEdge(2, 3, 1)
	e.AddEdge(3, 1, 2)
	e.AddEdge(4, 3, 1)
	return e
}

func TestGiraphPageRank(t *testing.T) {
	e := testEngine()
	ranks, stats, err := PageRank(e, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 4 {
		t.Fatalf("ranks for %d vertices", len(ranks))
	}
	// Vertex 3 receives from 1, 2 and 4: must outrank 2 and 4.
	if ranks[3] <= ranks[2] || ranks[3] <= ranks[4] {
		t.Errorf("rank order wrong: %v", ranks)
	}
	if stats.Supersteps == 0 || stats.TotalMessages == 0 {
		t.Error("stats not recorded")
	}
}

func TestGiraphSSSP(t *testing.T) {
	e := testEngine()
	dist, _, err := SSSP(e, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]float64{1: 0, 2: 1, 3: 2, 4: math.Inf(1)}
	for id, w := range want {
		if dist[id] != w && !(math.IsInf(dist[id], 1) && math.IsInf(w, 1)) {
			t.Errorf("dist(%d) = %v, want %v", id, dist[id], w)
		}
	}
}

func TestGiraphOverheadModel(t *testing.T) {
	e := New(Config{Workers: 1, SuperstepOverhead: 30 * time.Millisecond, MaxSupersteps: 3})
	e.AddEdge(1, 2, 1)
	start := time.Now()
	if _, _, err := PageRank(e, 10); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Errorf("3 supersteps × 30ms overhead should take ≥90ms, took %v", elapsed)
	}
}

func TestGiraphDeterministicAcrossWorkerCounts(t *testing.T) {
	var results [2]map[int64]float64
	for i, workers := range []int{1, 4} {
		e := New(Config{Workers: workers, SuperstepOverhead: -1})
		e.AddEdge(1, 2, 1)
		e.AddEdge(2, 3, 1)
		e.AddEdge(3, 1, 1)
		ranks, _, err := PageRank(e, 8)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = ranks
	}
	for id, v := range results[0] {
		if math.Abs(results[1][id]-v) > 1e-12 {
			t.Errorf("worker count changes results at %d: %v vs %v", id, v, results[1][id])
		}
	}
}

func TestGiraphAddVertexIdempotent(t *testing.T) {
	e := New(Config{SuperstepOverhead: -1})
	e.AddVertex(7)
	e.AddVertex(7)
	if e.NumVertices() != 1 {
		t.Error("AddVertex must be idempotent")
	}
}

func TestGiraphDanglingMessageDropped(t *testing.T) {
	e := New(Config{Workers: 1, SuperstepOverhead: -1, MaxSupersteps: 3})
	e.AddVertex(1)
	prog := progFunc(func(v *Vertex, msgs []float64) error {
		if v.Superstep() == 0 {
			v.SendMessage(99, 1.0) // nonexistent
		}
		v.VoteToHalt()
		return nil
	})
	if _, err := e.Run(prog); err != nil {
		t.Fatalf("dangling message should be dropped, got %v", err)
	}
}

type progFunc func(v *Vertex, msgs []float64) error

func (f progFunc) Compute(v *Vertex, msgs []float64) error { return f(v, msgs) }
