package core

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/sched"
	"repro/internal/storage"
)

// Input assembly for one superstep, implementing both sides of the
// paper's Table-Unions optimization (§2.3):
//
//   - Union path (the paper's choice): the vertex, edge and message
//     tables are renamed to a common schema, concatenated with
//     UNION ALL, hash partitioned on the vertex id, and each partition
//     is sorted on (id, kind). Workers parse the tuple kinds apart.
//
//   - Join path (the ablation baseline): vertex LEFT JOIN message LEFT
//     JOIN edge. For a vertex with m messages and e out-edges the join
//     product holds m×e rows — the blowup the paper's optimization
//     avoids. Workers deduplicate via ordinal columns.

// Tuple kinds inside the union's common schema.
const (
	kindVertex  int64 = 0
	kindEdge    int64 = 1
	kindMessage int64 = 2
)

// workUnit is one vertex's reassembled state for a superstep.
type workUnit struct {
	id     int64
	value  string
	halted bool
	msgs   []Message
	edges  []Edge
}

// unionSortKeys is the (id, kind) ordering every union partition —
// cached or not — is sorted on.
var unionSortKeys = []storage.SortKey{{Col: 0}, {Col: 1}}

// unionInputSQL renders the common-schema UNION ALL over the three
// graph tables — the coordinator literally drives standard SQL, as in
// the paper.
func unionInputSQL(g *Graph) string {
	return fmt.Sprintf(`SELECT id AS id, 0 AS kind, CASE WHEN halted THEN 1 ELSE 0 END AS i1, 0.0 AS f1, value AS s1, 0 AS i2 FROM %s
UNION ALL SELECT src, 1, dst, weight, etype, created FROM %s
UNION ALL SELECT dst, 2, COALESCE(src, -1), 0.0, value, 0 FROM %s`,
		g.VertexTable(), g.EdgeTable(), g.MessageTable())
}

// edgeInputSQL renders just the edge branch of the union in the common
// schema. The edge table is immutable for the duration of a run, so
// the coordinator assembles this side once and caches it.
func edgeInputSQL(g *Graph) string {
	return fmt.Sprintf(`SELECT src AS id, 1 AS kind, dst AS i1, weight AS f1, etype AS s1, created AS i2 FROM %s`,
		g.EdgeTable())
}

// vertexMessageInputSQL renders the two mutable branches of the union
// (vertex state and in-flight messages) in the common schema — the only
// rows that change between supersteps.
func vertexMessageInputSQL(g *Graph) string {
	return fmt.Sprintf(`SELECT id AS id, 0 AS kind, CASE WHEN halted THEN 1 ELSE 0 END AS i1, 0.0 AS f1, value AS s1, 0 AS i2 FROM %s
UNION ALL SELECT dst, 2, COALESCE(src, -1), 0.0, value, 0 FROM %s`,
		g.VertexTable(), g.MessageTable())
}

// inputCache holds the immutable edge side of the union input,
// hash-partitioned on src and sorted on (id, kind), built once per run
// in Coordinator.Run. parts is dense — one slot per partition, nil for
// partitions with no edges — so a partition's cached edge run lines up
// with the same partition of the per-superstep vertex+message run.
type inputCache struct {
	parts       []*storage.Batch
	partitions  int
	edgeVersion uint64 // edge-table version the cache was built against
}

// buildEdgeCache assembles the edge-side partitions. The version is
// read before the scan, so a concurrent mutation at worst makes the
// cache look stale and triggers a rebuild — never a silently stale hit.
func buildEdgeCache(g *Graph, partitions, workers int) (*inputCache, error) {
	version, err := g.EdgeVersion()
	if err != nil {
		return nil, err
	}
	rows, err := g.DB.Query(edgeInputSQL(g))
	if err != nil {
		return nil, fmt.Errorf("core: edge input: %w", err)
	}
	data, err := rows.Materialize()
	if err != nil {
		return nil, fmt.Errorf("core: edge input: %w", err)
	}
	ids := data.Cols[0].(*storage.Int64Column).Int64s()
	pidx := storage.PartitionInt64(ids, partitions)
	cache := &inputCache{
		parts:       make([]*storage.Batch, partitions),
		partitions:  partitions,
		edgeVersion: version,
	}
	var nonEmpty []int
	for p, idx := range pidx {
		if len(idx) > 0 {
			nonEmpty = append(nonEmpty, p)
		}
	}
	sched.ForEach(g.DB.WorkerBudget(), len(nonEmpty), workers, func(i int) {
		p := nonEmpty[i]
		cache.parts[p] = storage.SortBatch(data.Gather(pidx[p]), unionSortKeys)
	})
	return cache, nil
}

// cachedInputResult is what buildCachedUnionInput hands the coordinator
// for one superstep.
type cachedInputResult struct {
	parts        []*storage.Batch // dispatched partitions, merged and sorted
	skippedParts int              // quiescent partitions not dispatched
	skippedVerts int              // halted vertices inside skipped partitions
}

// buildCachedUnionInput assembles one superstep's input on top of the
// edge cache: only the vertex and message rows are scanned, partitioned
// and sorted, then each small sorted run is merged into its partition's
// cached edge run. Partitions with no incoming messages and no
// non-halted vertices are skipped entirely — Pregel semantics guarantee
// none of their vertices would compute (active-partition skipping).
func buildCachedUnionInput(g *Graph, cache *inputCache, step, workers int) (*cachedInputResult, error) {
	rows, err := g.DB.Query(vertexMessageInputSQL(g))
	if err != nil {
		return nil, fmt.Errorf("core: vertex+message input: %w", err)
	}
	data, err := rows.Materialize()
	if err != nil {
		return nil, fmt.Errorf("core: vertex+message input: %w", err)
	}
	ids := data.Cols[0].(*storage.Int64Column).Int64s()
	kinds := data.Cols[1].(*storage.Int64Column).Int64s()
	i1 := data.Cols[2].(*storage.Int64Column).Int64s() // halted flag on vertex rows
	pidx := storage.PartitionInt64(ids, cache.partitions)

	res := &cachedInputResult{}
	var active []int // partition numbers to dispatch
	for p, idx := range pidx {
		verts, live := 0, false
		for _, r := range idx {
			switch kinds[r] {
			case kindVertex:
				verts++
				if i1[r] == 0 {
					live = true
				}
			case kindMessage:
				// A message reactivates its target even if halted.
				live = true
			}
		}
		if step == 0 && verts > 0 {
			live = true // superstep 0 computes every vertex
		}
		if live {
			active = append(active, p)
			continue
		}
		if len(idx) > 0 || cache.parts[p] != nil {
			res.skippedParts++
			res.skippedVerts += verts
		}
	}

	res.parts = make([]*storage.Batch, len(active))
	sched.ForEach(g.DB.WorkerBudget(), len(active), workers, func(i int) {
		p := active[i]
		vm := storage.SortBatch(data.Gather(pidx[p]), unionSortKeys)
		res.parts[i] = storage.MergeSortedBatches(vm, cache.parts[p], unionSortKeys)
	})
	return res, nil
}

// buildUnionInput assembles, partitions and sorts the superstep input
// via the union path. It returns one sorted batch per partition.
func buildUnionInput(g *Graph, partitions, workers int) ([]*storage.Batch, error) {
	rows, err := g.DB.Query(unionInputSQL(g))
	if err != nil {
		return nil, fmt.Errorf("core: union input: %w", err)
	}
	data, err := rows.Materialize()
	if err != nil {
		return nil, fmt.Errorf("core: union input: %w", err)
	}
	return partitionAndSort(data, 0, partitions, workers, g.DB.WorkerBudget(), []storage.SortKey{{Col: 0}, {Col: 1}}), nil
}

// buildJoinInput assembles the superstep input via the 3-way-join path.
func buildJoinInput(g *Graph, partitions, workers int) ([]*storage.Batch, error) {
	// These scans read the tables directly (not through the SQL
	// statement path), so pin one consistent MVCC snapshot of all
	// three tables for the superstep batch — the drain below then runs
	// with no engine latch held, and a concurrent session's write
	// statement neither blocks on it nor mutates what it reads.
	snap, err := g.DB.AcquireSnapshot(g.VertexTable(), g.MessageTable(), g.EdgeTable())
	if err != nil {
		return nil, err
	}
	defer snap.Release()
	vt, err := snap.Table(g.VertexTable())
	if err != nil {
		return nil, err
	}
	mt, err := snap.Table(g.MessageTable())
	if err != nil {
		return nil, err
	}
	et, err := snap.Table(g.EdgeTable())
	if err != nil {
		return nil, err
	}
	// vertex(id,value,halted) ⟕ message+mid ON id=dst  → 3+4 cols
	// ... ⟕ edge+eid ON id=src                         → 7+6 cols
	j1 := &exec.HashJoin{
		Left:     exec.NewTableScan(vt),
		Right:    &exec.Ordinal{Input: exec.NewTableScan(mt), Name: "mid"},
		LeftKeys: []int{0}, RightKeys: []int{1},
		Type: exec.LeftJoin,
	}
	j2 := &exec.HashJoin{
		Left:     j1,
		Right:    &exec.Ordinal{Input: exec.NewTableScan(et), Name: "eid"},
		LeftKeys: []int{0}, RightKeys: []int{0},
		Type: exec.LeftJoin,
	}
	data, err := exec.Drain(j2)
	if err != nil {
		return nil, fmt.Errorf("core: join input: %w", err)
	}
	return partitionAndSort(data, 0, partitions, workers, g.DB.WorkerBudget(), []storage.SortKey{{Col: 0}}), nil
}

// partitionAndSort hash-partitions the batch on the given int64 column
// and sorts each partition — the paper's Vertex Batching optimization.
// Partition-local gather+sort runs on the worker pool, since in
// Vertexica that work happens inside each worker UDF's input feed.
func partitionAndSort(data *storage.Batch, idCol, partitions, workers int, budget *sched.Budget, keys []storage.SortKey) []*storage.Batch {
	ids := data.Cols[idCol].(*storage.Int64Column).Int64s()
	parts := storage.PartitionInt64(ids, partitions)
	nonEmpty := make([][]int, 0, len(parts))
	for _, idx := range parts {
		if len(idx) > 0 {
			nonEmpty = append(nonEmpty, idx)
		}
	}
	out := make([]*storage.Batch, len(nonEmpty))
	sched.ForEach(budget, len(nonEmpty), workers, func(i int) {
		out[i] = storage.SortBatch(data.Gather(nonEmpty[i]), keys)
	})
	return out
}

// parseUnionPartition walks a sorted union partition and reassembles
// one workUnit per vertex that appears in it. Tuples whose vertex row
// is missing (dangling messages) are counted, not processed.
func parseUnionPartition(b *storage.Batch) (units []workUnit, dangling int) {
	n := b.Len()
	ids := b.Cols[0].(*storage.Int64Column).Int64s()
	kinds := b.Cols[1].(*storage.Int64Column).Int64s()
	i1 := b.Cols[2].(*storage.Int64Column).Int64s()
	f1 := b.Cols[3].(*storage.Float64Column).Float64s()
	s1 := b.Cols[4].(*storage.StringColumn).Strings()
	i2 := b.Cols[5].(*storage.Int64Column).Int64s()

	for i := 0; i < n; {
		j := i
		id := ids[i]
		for j < n && ids[j] == id {
			j++
		}
		u := workUnit{id: id}
		sawVertex := false
		for k := i; k < j; k++ {
			switch kinds[k] {
			case kindVertex:
				sawVertex = true
				u.halted = i1[k] != 0
				u.value = s1[k]
			case kindEdge:
				u.edges = append(u.edges, Edge{
					Src: id, Dst: i1[k], Weight: f1[k], Type: s1[k], Created: i2[k],
				})
			case kindMessage:
				u.msgs = append(u.msgs, Message{Src: i1[k], Dst: id, Value: s1[k]})
			}
		}
		if sawVertex {
			units = append(units, u)
		} else {
			dangling += len(u.msgs)
		}
		i = j
	}
	return units, dangling
}

// parseJoinPartition reassembles workUnits from the 3-way-join product,
// deduplicating messages and edges via their ordinal columns.
// Join-output layout:
//
//	0:id 1:value 2:halted | 3:msrc 4:mdst 5:mval 6:mid | 7:esrc 8:edst 9:weight 10:etype 11:created 12:eid
func parseJoinPartition(b *storage.Batch) (units []workUnit, dangling int) {
	n := b.Len()
	ids := b.Cols[0].(*storage.Int64Column).Int64s()
	for i := 0; i < n; {
		j := i
		id := ids[i]
		for j < n && ids[j] == id {
			j++
		}
		u := workUnit{id: id}
		u.value = b.Cols[1].Value(i).S
		u.halted = b.Cols[2].Value(i).Bool()
		seenM := make(map[int64]bool)
		seenE := make(map[int64]bool)
		for k := i; k < j; k++ {
			if mid := b.Cols[6].Value(k); !mid.Null && !seenM[mid.I] {
				seenM[mid.I] = true
				src := b.Cols[3].Value(k)
				srcID := int64(-1)
				if !src.Null {
					srcID = src.I
				}
				u.msgs = append(u.msgs, Message{Src: srcID, Dst: id, Value: b.Cols[5].Value(k).S})
			}
			if eid := b.Cols[12].Value(k); !eid.Null && !seenE[eid.I] {
				seenE[eid.I] = true
				u.edges = append(u.edges, Edge{
					Src:     id,
					Dst:     b.Cols[8].Value(k).I,
					Weight:  b.Cols[9].Value(k).F,
					Type:    b.Cols[10].Value(k).S,
					Created: b.Cols[11].Value(k).I,
				})
			}
		}
		units = append(units, u)
		i = j
	}
	return units, 0
}
