package core

import (
	"fmt"
	"strconv"

	"repro/internal/engine"
	"repro/internal/storage"
)

// Graph binds a named graph to its three relational tables in the
// engine — exactly the physical design from §2.2 of the paper:
//
//	<name>_vertex(id, value, halted)
//	<name>_edge(src, dst, weight, etype, created)
//	<name>_message(src, dst, value)
//
// The edge table carries the three metadata attributes the paper adds
// to every edge (weight, creation timestamp, type).
type Graph struct {
	DB   *engine.DB
	Name string
}

// Table names for the graph.
func (g *Graph) VertexTable() string  { return g.Name + "_vertex" }
func (g *Graph) EdgeTable() string    { return g.Name + "_edge" }
func (g *Graph) MessageTable() string { return g.Name + "_message" }

// VertexSchema is the schema of every graph's vertex table.
func VertexSchema() storage.Schema {
	return storage.NewSchema(
		storage.NotNullCol("id", storage.TypeInt64),
		storage.Col("value", storage.TypeString),
		storage.NotNullCol("halted", storage.TypeBool),
	)
}

// EdgeSchema is the schema of every graph's edge table.
func EdgeSchema() storage.Schema {
	return storage.NewSchema(
		storage.NotNullCol("src", storage.TypeInt64),
		storage.NotNullCol("dst", storage.TypeInt64),
		storage.Col("weight", storage.TypeFloat64),
		storage.Col("etype", storage.TypeString),
		storage.Col("created", storage.TypeInt64),
	)
}

// MessageSchema is the schema of every graph's message table.
func MessageSchema() storage.Schema {
	return storage.NewSchema(
		storage.Col("src", storage.TypeInt64),
		storage.NotNullCol("dst", storage.TypeInt64),
		storage.Col("value", storage.TypeString),
	)
}

// validName reports whether a graph name is a safe SQL identifier:
// the coordinator embeds graph table names in generated SQL, so names
// must be letter-or-underscore followed by letters, digits or
// underscores.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z'):
		case '0' <= c && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// CreateGraph creates the three tables for a new graph, single-shard
// (the historical layout). Use CreateGraphSharded to hash-partition
// the tables for parallel superstep input assembly and writeback.
func CreateGraph(db *engine.DB, name string) (*Graph, error) {
	return CreateGraphSharded(db, name, 1)
}

// CreateGraphSharded creates the three tables for a new graph with
// each table hash-partitioned into the given number of shards, along
// the column the vertex runtime partitions work by: the vertex table
// by id, the edge table by src (out-edges of a vertex land in one
// shard), and the message table by dst (a vertex's inbox lands in one
// shard). All three use the same hash (storage.HashValue), so shard i
// of each table holds exactly the rows of the vertices the coordinator
// assigns to partition i when the partition count matches the shard
// count. shards <= 1 degenerates to the single-shard layout.
func CreateGraphSharded(db *engine.DB, name string, shards int) (*Graph, error) {
	if !validName(name) {
		return nil, fmt.Errorf("core: graph name %q is not a valid SQL identifier (letters, digits, underscores)", name)
	}
	if shards < 1 {
		shards = 1
	}
	g := &Graph{DB: db, Name: name}
	cat := db.Catalog()
	if cat.Has(g.VertexTable()) {
		return nil, fmt.Errorf("core: graph %q already exists", name)
	}
	create := func(tn string, schema storage.Schema, keyName string) error {
		key := -1
		if shards > 1 {
			key = schema.IndexOf(keyName)
		}
		_, err := cat.CreateSharded(tn, schema, key, shards)
		return err
	}
	if err := create(g.VertexTable(), VertexSchema(), "id"); err != nil {
		return nil, err
	}
	if err := create(g.EdgeTable(), EdgeSchema(), "src"); err != nil {
		return nil, err
	}
	if err := create(g.MessageTable(), MessageSchema(), "dst"); err != nil {
		return nil, err
	}
	return g, nil
}

// OpenGraph binds to an existing graph's tables.
func OpenGraph(db *engine.DB, name string) (*Graph, error) {
	g := &Graph{DB: db, Name: name}
	cat := db.Catalog()
	for _, tn := range []string{g.VertexTable(), g.EdgeTable(), g.MessageTable()} {
		if !cat.Has(tn) {
			return nil, fmt.Errorf("core: graph %q: missing table %s", name, tn)
		}
	}
	return g, nil
}

// DropGraph removes the graph's tables.
func DropGraph(db *engine.DB, name string) error {
	g := &Graph{DB: db, Name: name}
	cat := db.Catalog()
	var first error
	for _, tn := range []string{g.VertexTable(), g.EdgeTable(), g.MessageTable()} {
		if err := cat.Drop(tn); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// AddVertex inserts one vertex with an initial value.
//
// These helpers read and write the graph tables directly, bypassing
// the SQL statement path, so each takes the engine's statement latch
// (shared for reads, exclusive for writes) — a concurrent SQL
// statement never observes a half-applied mutation. They do NOT take
// the cross-session write gate: that is the caller's job (the facade's
// gated wrappers, the coordinator's gated run), since several of these
// run inside an already-gated scope and the gate is not reentrant.
func (g *Graph) AddVertex(id int64, value string) error {
	t, err := g.DB.Catalog().Get(g.VertexTable())
	if err != nil {
		return err
	}
	g.DB.LockExclusive()
	defer g.DB.UnlockExclusive()
	return t.AppendRow(storage.Int64(id), storage.Str(value), storage.Bool(false))
}

// AddEdge inserts one edge with metadata.
func (g *Graph) AddEdge(src, dst int64, weight float64, etype string, created int64) error {
	t, err := g.DB.Catalog().Get(g.EdgeTable())
	if err != nil {
		return err
	}
	g.DB.LockExclusive()
	defer g.DB.UnlockExclusive()
	return t.AppendRow(storage.Int64(src), storage.Int64(dst),
		storage.Float64(weight), storage.Str(etype), storage.Int64(created))
}

// BulkLoad loads vertices (id → initial value) and edges in one pass.
// Vertices referenced by edges but absent from values are created with
// the empty value.
func (g *Graph) BulkLoad(values map[int64]string, edges []Edge) error {
	g.DB.LockExclusive()
	defer g.DB.UnlockExclusive()
	seen := make(map[int64]bool, len(values))
	vt, err := g.DB.Catalog().Get(g.VertexTable())
	if err != nil {
		return err
	}
	vb := storage.NewBatch(VertexSchema())
	add := func(id int64, val string) error {
		if seen[id] {
			return nil
		}
		seen[id] = true
		return vb.AppendRow(storage.Int64(id), storage.Str(val), storage.Bool(false))
	}
	for id, val := range values {
		if err := add(id, val); err != nil {
			return err
		}
	}
	for _, e := range edges {
		if err := add(e.Src, ""); err != nil {
			return err
		}
		if err := add(e.Dst, ""); err != nil {
			return err
		}
	}
	if err := vt.AppendBatch(vb); err != nil {
		return err
	}

	et, err := g.DB.Catalog().Get(g.EdgeTable())
	if err != nil {
		return err
	}
	eb := storage.NewBatch(EdgeSchema())
	for _, e := range edges {
		if err := eb.AppendRow(storage.Int64(e.Src), storage.Int64(e.Dst),
			storage.Float64(e.Weight), storage.Str(e.Type), storage.Int64(e.Created)); err != nil {
			return err
		}
	}
	return et.AppendBatch(eb)
}

// EdgeVersion returns the edge table's mutation counter. The
// coordinator's superstep input cache is keyed on it: edges are
// expected to be immutable during a run, but if anything does mutate
// the edge table mid-run (a concurrent load, a program reaching back
// into the graph) the version moves and the cache is rebuilt rather
// than serving stale edges.
func (g *Graph) EdgeVersion() (uint64, error) {
	t, err := g.DB.Catalog().Get(g.EdgeTable())
	if err != nil {
		return 0, err
	}
	g.DB.LockShared()
	defer g.DB.UnlockShared()
	return t.Version(), nil
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() (int64, error) {
	t, err := g.DB.Catalog().Get(g.VertexTable())
	if err != nil {
		return 0, err
	}
	g.DB.LockShared()
	defer g.DB.UnlockShared()
	return int64(t.NumRows()), nil
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() (int64, error) {
	t, err := g.DB.Catalog().Get(g.EdgeTable())
	if err != nil {
		return 0, err
	}
	g.DB.LockShared()
	defer g.DB.UnlockShared()
	return int64(t.NumRows()), nil
}

// VertexValues returns every vertex's current value. The iteration
// runs over a pinned MVCC snapshot, holding no engine latch.
func (g *Graph) VertexValues() (map[int64]string, error) {
	snap, err := g.DB.AcquireSnapshot(g.VertexTable())
	if err != nil {
		return nil, err
	}
	defer snap.Release()
	t, err := snap.Table(g.VertexTable())
	if err != nil {
		return nil, err
	}
	data := t.Data()
	ids := data.Cols[0].(*storage.Int64Column).Int64s()
	out := make(map[int64]string, len(ids))
	for i, id := range ids {
		out[id] = data.Cols[1].Value(i).S
	}
	return out, nil
}

// FloatValues decodes every vertex value as float64 (the common case:
// PageRank ranks, SSSP distances). Vertices whose value does not parse
// are skipped.
func (g *Graph) FloatValues() (map[int64]float64, error) {
	vals, err := g.VertexValues()
	if err != nil {
		return nil, err
	}
	out := make(map[int64]float64, len(vals))
	for id, s := range vals {
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			out[id] = f
		}
	}
	return out, nil
}

// SetVertexValues overwrites the value of the given vertices (used by
// algorithms to set per-source initial state).
func (g *Graph) SetVertexValues(vals map[int64]string) error {
	t, err := g.DB.Catalog().Get(g.VertexTable())
	if err != nil {
		return err
	}
	g.DB.LockExclusive()
	defer g.DB.UnlockExclusive()
	data := t.Data()
	ids := data.Cols[0].(*storage.Int64Column).Int64s()
	var idx []int
	var newVals []storage.Value
	for i, id := range ids {
		if v, ok := vals[id]; ok {
			idx = append(idx, i)
			newVals = append(newVals, storage.Str(v))
		}
	}
	return t.UpdateInPlace(idx, 1, newVals)
}

// ResetForRun resets halted flags, clears the message table, and sets
// every vertex value to initial (if non-nil returns a value for the id).
func (g *Graph) ResetForRun(initial func(id int64) string) error {
	g.DB.LockExclusive()
	defer g.DB.UnlockExclusive()
	cat := g.DB.Catalog()
	vt, err := cat.Get(g.VertexTable())
	if err != nil {
		return err
	}
	data := vt.Data()
	ids := data.Cols[0].(*storage.Int64Column).Int64s()
	n := len(ids)
	idx := make([]int, n)
	halts := make([]storage.Value, n)
	for i := range idx {
		idx[i] = i
		halts[i] = storage.Bool(false)
	}
	if err := vt.UpdateInPlace(idx, 2, halts); err != nil {
		return err
	}
	if initial != nil {
		vals := make([]storage.Value, n)
		for i, id := range ids {
			vals[i] = storage.Str(initial(id))
		}
		if err := vt.UpdateInPlace(idx, 1, vals); err != nil {
			return err
		}
	}
	mt, err := cat.Get(g.MessageTable())
	if err != nil {
		return err
	}
	mt.Truncate()
	return nil
}

// OutEdges returns all out-edges grouped by source (a helper for the
// baselines and tests; the runtime itself reads edges through the
// table-union input path).
func (g *Graph) OutEdges() (map[int64][]Edge, error) {
	snap, err := g.DB.AcquireSnapshot(g.EdgeTable())
	if err != nil {
		return nil, err
	}
	defer snap.Release()
	t, err := snap.Table(g.EdgeTable())
	if err != nil {
		return nil, err
	}
	data := t.Data()
	srcs := data.Cols[0].(*storage.Int64Column).Int64s()
	dsts := data.Cols[1].(*storage.Int64Column).Int64s()
	out := make(map[int64][]Edge)
	for i := range srcs {
		e := Edge{
			Src:     srcs[i],
			Dst:     dsts[i],
			Weight:  data.Cols[2].Value(i).F,
			Type:    data.Cols[3].Value(i).S,
			Created: data.Cols[4].Value(i).I,
		}
		out[e.Src] = append(out[e.Src], e)
	}
	return out, nil
}
