package core

import (
	"context"
	"strconv"
	"testing"

	"repro/internal/engine"
)

// chainGraph builds 0→1→2→...→n-1.
func chainGraph(t *testing.T, n int) *Graph {
	t.Helper()
	db := engine.New()
	g, err := CreateGraph(db, "chain")
	if err != nil {
		t.Fatal(err)
	}
	var edges []Edge
	for i := 0; i < n-1; i++ {
		edges = append(edges, Edge{Src: int64(i), Dst: int64(i + 1), Weight: 1})
	}
	vals := make(map[int64]string)
	for i := 0; i < n; i++ {
		vals[int64(i)] = ""
	}
	if err := g.BulkLoad(vals, edges); err != nil {
		t.Fatal(err)
	}
	return g
}

// propagate is a tiny program: vertex 0 starts a counter that each
// vertex increments and forwards; every vertex stores what it saw.
type propagate struct{}

func (propagate) Compute(ctx *VertexContext, msgs []Message) error {
	if ctx.Superstep() == 0 {
		if ctx.Id() == 0 {
			ctx.ModifyVertexValue("0")
			ctx.SendMessageToAllNeighbors("1")
		}
		ctx.VoteToHalt()
		return nil
	}
	for _, m := range msgs {
		n, err := strconv.Atoi(m.Value)
		if err != nil {
			return err
		}
		ctx.ModifyVertexValue(strconv.Itoa(n))
		ctx.SendMessageToAllNeighbors(strconv.Itoa(n + 1))
	}
	ctx.VoteToHalt()
	return nil
}

func TestCreateOpenDropGraph(t *testing.T) {
	db := engine.New()
	g, err := CreateGraph(db, "g")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CreateGraph(db, "g"); err == nil {
		t.Error("duplicate graph should fail")
	}
	if _, err := OpenGraph(db, "g"); err != nil {
		t.Errorf("open existing: %v", err)
	}
	if _, err := OpenGraph(db, "nope"); err == nil {
		t.Error("open missing graph should fail")
	}
	if err := DropGraph(db, "g"); err != nil {
		t.Fatal(err)
	}
	if db.Catalog().Has(g.VertexTable()) {
		t.Error("drop left tables behind")
	}
}

func TestBulkLoadCreatesEndpoints(t *testing.T) {
	db := engine.New()
	g, _ := CreateGraph(db, "g")
	if err := g.BulkLoad(nil, []Edge{{Src: 5, Dst: 9}}); err != nil {
		t.Fatal(err)
	}
	n, _ := g.NumVertices()
	if n != 2 {
		t.Errorf("vertices = %d, want 2 (edge endpoints auto-created)", n)
	}
	m, _ := g.NumEdges()
	if m != 1 {
		t.Errorf("edges = %d", m)
	}
}

func TestPropagationAcrossSupersteps(t *testing.T) {
	g := chainGraph(t, 5)
	stats, err := Run(context.Background(), g, propagate{}, Options{Workers: 2, Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := g.VertexValues()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		want := strconv.Itoa(i)
		if vals[int64(i)] != want {
			t.Errorf("vertex %d value = %q, want %q", i, vals[int64(i)], want)
		}
	}
	if stats.Supersteps != 5 {
		t.Errorf("supersteps = %d, want 5", stats.Supersteps)
	}
}

func TestUnionAndJoinInputsAgree(t *testing.T) {
	for _, join := range []bool{false, true} {
		g := chainGraph(t, 6)
		_, err := Run(context.Background(), g, propagate{}, Options{
			Workers: 2, Partitions: 4, UseJoinInput: join,
		})
		if err != nil {
			t.Fatalf("join=%v: %v", join, err)
		}
		vals, _ := g.VertexValues()
		for i := 0; i < 6; i++ {
			if vals[int64(i)] != strconv.Itoa(i) {
				t.Errorf("join=%v vertex %d = %q", join, i, vals[int64(i)])
			}
		}
	}
}

func TestUpdateVsReplacePathsAgree(t *testing.T) {
	results := make([]map[int64]string, 2)
	for i, threshold := range []float64{-1 /* always replace */, 2 /* always update */} {
		g := chainGraph(t, 8)
		_, err := Run(context.Background(), g, propagate{}, Options{
			Workers: 2, Partitions: 4, UpdateThreshold: threshold,
		})
		if err != nil {
			t.Fatal(err)
		}
		results[i], _ = g.VertexValues()
	}
	for id, v := range results[0] {
		if results[1][id] != v {
			t.Errorf("vertex %d: replace=%q update=%q", id, v, results[1][id])
		}
	}
}

func TestSingleWorkerSinglePartition(t *testing.T) {
	g := chainGraph(t, 4)
	_, err := Run(context.Background(), g, propagate{}, Options{Workers: 1, Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	vals, _ := g.VertexValues()
	if vals[3] != "3" {
		t.Errorf("tail value = %q", vals[3])
	}
}

// panicky panics at a specific vertex to test worker recovery.
type panicky struct{}

func (panicky) Compute(ctx *VertexContext, _ []Message) error {
	if ctx.Id() == 2 {
		panic("kaboom")
	}
	ctx.VoteToHalt()
	return nil
}

func TestWorkerPanicIsRecovered(t *testing.T) {
	g := chainGraph(t, 4)
	_, err := Run(context.Background(), g, panicky{}, Options{Workers: 2})
	if err == nil {
		t.Fatal("panic in vertex program must surface as error")
	}
}

// failing returns an error from Compute.
type failing struct{}

func (failing) Compute(ctx *VertexContext, _ []Message) error {
	if ctx.Id() == 1 {
		return errTest
	}
	ctx.VoteToHalt()
	return nil
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }

func TestComputeErrorPropagates(t *testing.T) {
	g := chainGraph(t, 3)
	if _, err := Run(context.Background(), g, failing{}, Options{Workers: 2}); err == nil {
		t.Fatal("compute error must propagate")
	}
}

func TestContextCancellation(t *testing.T) {
	g := chainGraph(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, g, propagate{}, Options{}); err == nil {
		t.Fatal("cancelled context must abort the run")
	}
}

func TestMaxSuperstepsBound(t *testing.T) {
	g := chainGraph(t, 100)
	stats, err := Run(context.Background(), g, propagate{}, Options{MaxSupersteps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Supersteps != 3 {
		t.Errorf("supersteps = %d, want 3 (bounded)", stats.Supersteps)
	}
}

func TestDanglingMessageCounted(t *testing.T) {
	db := engine.New()
	g, _ := CreateGraph(db, "g")
	if err := g.BulkLoad(map[int64]string{1: ""}, nil); err != nil {
		t.Fatal(err)
	}
	// Vertex 1 sends to nonexistent vertex 99.
	prog := sendTo99{}
	stats, err := Run(context.Background(), g, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DanglingMessages != 1 {
		t.Errorf("dangling = %d, want 1", stats.DanglingMessages)
	}
}

type sendTo99 struct{}

func (sendTo99) Compute(ctx *VertexContext, _ []Message) error {
	if ctx.Superstep() == 0 {
		ctx.SendMessage(99, "hello")
	}
	ctx.VoteToHalt()
	return nil
}

// haltedVertexReactivation: vertex 2 halts in step 0, vertex 0 messages
// it in step 1 via the chain; it must wake up and record the message.
func TestHaltedVertexReactivation(t *testing.T) {
	g := chainGraph(t, 3)
	_, err := Run(context.Background(), g, propagate{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	vals, _ := g.VertexValues()
	if vals[2] != "2" {
		t.Errorf("reactivated vertex value = %q, want 2", vals[2])
	}
}

func TestRunStatsShape(t *testing.T) {
	g := chainGraph(t, 4)
	stats, err := Run(context.Background(), g, propagate{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Steps) != stats.Supersteps {
		t.Errorf("steps len %d != supersteps %d", len(stats.Steps), stats.Supersteps)
	}
	if stats.Steps[0].Computed != 4 {
		t.Errorf("superstep 0 computes all vertices; got %d", stats.Steps[0].Computed)
	}
	if stats.Steps[0].InputRows == 0 {
		t.Error("input rows should be recorded")
	}
}

func TestResetForRun(t *testing.T) {
	g := chainGraph(t, 3)
	if _, err := Run(context.Background(), g, propagate{}, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := g.ResetForRun(func(id int64) string { return "init" }); err != nil {
		t.Fatal(err)
	}
	vals, _ := g.VertexValues()
	for id, v := range vals {
		if v != "init" {
			t.Errorf("vertex %d = %q after reset", id, v)
		}
	}
	mt, _ := g.DB.Catalog().Get(g.MessageTable())
	if mt.NumRows() != 0 {
		t.Error("message table should be empty after reset")
	}
}

func TestSetVertexValues(t *testing.T) {
	g := chainGraph(t, 3)
	if err := g.SetVertexValues(map[int64]string{1: "special"}); err != nil {
		t.Fatal(err)
	}
	vals, _ := g.VertexValues()
	if vals[1] != "special" || vals[0] == "special" {
		t.Error("SetVertexValues applied wrong rows")
	}
}

func TestCombineMessages(t *testing.T) {
	sum := func(_ int64, a, b string) (string, bool) {
		x, _ := strconv.Atoi(a)
		y, _ := strconv.Atoi(b)
		return strconv.Itoa(x + y), true
	}
	msgs := []Message{{Dst: 1, Value: "1"}, {Dst: 2, Value: "5"}, {Dst: 1, Value: "2"}, {Dst: 1, Value: "3"}}
	out := combineMessages(msgs, sum)
	if len(out) != 2 {
		t.Fatalf("combined to %d messages, want 2", len(out))
	}
	byDst := map[int64]string{}
	for _, m := range out {
		byDst[m.Dst] = m.Value
	}
	if byDst[1] != "6" || byDst[2] != "5" {
		t.Errorf("combined values wrong: %v", byDst)
	}
}

func TestAggregatorUndeclaredErrors(t *testing.T) {
	g := chainGraph(t, 2)
	if _, err := Run(context.Background(), g, badAgg{}, Options{}); err == nil {
		t.Fatal("undeclared aggregator must error")
	}
}

type badAgg struct{}

func (badAgg) Compute(ctx *VertexContext, _ []Message) error {
	if err := ctx.Aggregate("nope", 1); err != nil {
		return err
	}
	ctx.VoteToHalt()
	return nil
}
