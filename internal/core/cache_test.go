package core

import (
	"context"
	"errors"
	"strconv"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/storage"
)

// TestCachedInputMatchesUncached runs the same program with the input
// cache on and off and demands identical vertex values and superstep
// counts.
func TestCachedInputMatchesUncached(t *testing.T) {
	results := make([]map[int64]string, 2)
	counts := make([]int, 2)
	for i, disable := range []bool{false, true} {
		g := chainGraph(t, 12)
		stats, err := Run(context.Background(), g, propagate{}, Options{
			Workers: 2, Partitions: 5, DisableInputCache: disable,
		})
		if err != nil {
			t.Fatalf("disable=%v: %v", disable, err)
		}
		results[i], _ = g.VertexValues()
		counts[i] = stats.Supersteps
	}
	if counts[0] != counts[1] {
		t.Errorf("supersteps differ: cached=%d uncached=%d", counts[0], counts[1])
	}
	for id, v := range results[1] {
		if results[0][id] != v {
			t.Errorf("vertex %d: cached=%q uncached=%q", id, results[0][id], v)
		}
	}
}

func TestCacheHitAndBuildCounters(t *testing.T) {
	g := chainGraph(t, 8)
	stats, err := Run(context.Background(), g, propagate{}, Options{Workers: 2, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheBuilds != 1 {
		t.Errorf("cache builds = %d, want 1 (edges never mutate)", stats.CacheBuilds)
	}
	if stats.CacheHits != stats.Supersteps-1 {
		t.Errorf("cache hits = %d, want %d", stats.CacheHits, stats.Supersteps-1)
	}
	if !stats.Steps[1].CacheHit || stats.Steps[0].CacheHit {
		t.Errorf("per-step CacheHit flags wrong: %+v", stats.Steps)
	}
}

func TestDisableInputCacheKeepsCountersZero(t *testing.T) {
	g := chainGraph(t, 8)
	stats, err := Run(context.Background(), g, propagate{}, Options{DisableInputCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheBuilds != 0 || stats.CacheHits != 0 || stats.SkippedParts != 0 {
		t.Errorf("ablation run should not touch the cache: %+v", stats)
	}
}

// TestActivePartitionSkipping drives a long chain: after the first few
// supersteps only the partitions holding the message frontier have any
// work, so most partitions must be skipped, and the answer must still
// be exact.
func TestActivePartitionSkipping(t *testing.T) {
	g := chainGraph(t, 24)
	stats, err := Run(context.Background(), g, propagate{}, Options{Workers: 2, Partitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SkippedParts == 0 {
		t.Error("expected quiescent partitions to be skipped on a chain frontier")
	}
	if stats.SkippedVerts == 0 {
		t.Error("expected halted vertices inside skipped partitions to be counted")
	}
	vals, _ := g.VertexValues()
	for i := 0; i < 24; i++ {
		if vals[int64(i)] != strconv.Itoa(i) {
			t.Errorf("vertex %d = %q, want %q", i, vals[int64(i)], strconv.Itoa(i))
		}
	}
	// A step late in the run must actually have skipped something.
	last := stats.Steps[len(stats.Steps)-2]
	if last.SkippedParts == 0 {
		t.Errorf("late superstep skipped no partitions: %+v", last)
	}
}

// edgeAdder propagates a counter along the chain and, while vertex 1
// computes in superstep 1, adds the edge 2→3 that the chain is missing.
// The run only reaches vertex 3 if the coordinator notices the edge
// table changed mid-run and rebuilds the cached edge partitions.
type edgeAdder struct {
	g *Graph
}

func (e edgeAdder) Compute(ctx *VertexContext, msgs []Message) error {
	if ctx.Superstep() == 1 && ctx.Id() == 1 {
		if err := e.g.AddEdge(2, 3, 1, "", 0); err != nil {
			return err
		}
	}
	return propagate{}.Compute(ctx, msgs)
}

func TestEdgeCacheInvalidationOnMidRunMutation(t *testing.T) {
	db := engine.New()
	g, err := CreateGraph(db, "mut")
	if err != nil {
		t.Fatal(err)
	}
	// Chain 0→1→2 plus isolated vertex 3; edge 2→3 arrives mid-run.
	if err := g.BulkLoad(map[int64]string{0: "", 1: "", 2: "", 3: ""},
		[]Edge{{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	stats, err := Run(context.Background(), g, edgeAdder{g: g}, Options{Workers: 2, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	vals, _ := g.VertexValues()
	if vals[3] != "3" {
		t.Errorf("vertex 3 = %q, want %q (stale edge cache?)", vals[3], "3")
	}
	if stats.CacheBuilds < 2 {
		t.Errorf("cache builds = %d, want >=2 (mid-run edge mutation must rebuild)", stats.CacheBuilds)
	}
}

// sleeper burns wall-clock per vertex so one superstep takes seconds —
// long enough to observe cancellation landing inside it.
type sleeper struct{}

func (sleeper) Compute(ctx *VertexContext, _ []Message) error {
	time.Sleep(2 * time.Millisecond)
	ctx.VoteToHalt()
	return nil
}

func TestCancelMidSuperstep(t *testing.T) {
	db := engine.New()
	g, err := CreateGraph(db, "slow")
	if err != nil {
		t.Fatal(err)
	}
	vals := make(map[int64]string, 1000)
	for i := int64(0); i < 1000; i++ {
		vals[i] = ""
	}
	if err := g.BulkLoad(vals, nil); err != nil {
		t.Fatal(err)
	}
	// Single worker, single partition: superstep 0 alone needs ~2s.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = Run(ctx, g, sleeper{}, Options{Workers: 1, Partitions: 1})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed > time.Second {
		t.Errorf("cancellation took %v — ctx is not observed inside the superstep", elapsed)
	}
}

// TestCachedInputAssemblyUnits checks the cached assembly path
// reconstructs exactly the units the uncached path does on the shared
// input fixture (vertices, edges with metadata, and a pending message).
func TestCachedInputAssemblyUnits(t *testing.T) {
	g := inputFixture(t)
	cache, err := buildEdgeCache(g, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	in, err := buildCachedUnionInput(g, cache, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkFixtureUnits(t, collectUnits(t, in.parts, false), "cached-union")
}

// TestCachedSkipAccounting builds a fully-halted graph with no messages
// and checks every populated partition is skipped.
func TestCachedSkipAccounting(t *testing.T) {
	g := inputFixture(t)
	vt, _ := g.DB.Catalog().Get(g.VertexTable())
	n := vt.NumRows()
	idx := make([]int, n)
	halts := make([]storage.Value, n)
	for i := range idx {
		idx[i] = i
		halts[i] = storage.Bool(true)
	}
	if err := vt.UpdateInPlace(idx, 2, halts); err != nil {
		t.Fatal(err)
	}
	mt, _ := g.DB.Catalog().Get(g.MessageTable())
	mt.Truncate()

	cache, err := buildEdgeCache(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := buildCachedUnionInput(g, cache, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.parts) != 0 {
		t.Errorf("dispatched %d partitions, want 0 (all quiescent)", len(in.parts))
	}
	if in.skippedVerts != 3 {
		t.Errorf("skipped vertices = %d, want 3", in.skippedVerts)
	}
	if in.skippedParts == 0 {
		t.Error("skipped partition count not recorded")
	}
}
