package core

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/storage"
)

// inputFixture builds a graph with one pending message so both
// assembly paths have all three tuple kinds to reassemble.
func inputFixture(t *testing.T) *Graph {
	t.Helper()
	db := engine.New()
	g, err := CreateGraph(db, "in")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.BulkLoad(map[int64]string{1: "v1", 2: "v2", 3: "v3"}, []Edge{
		{Src: 1, Dst: 2, Weight: 0.5, Type: "friend", Created: 42},
		{Src: 1, Dst: 3, Weight: 1.5, Type: "family", Created: 43},
		{Src: 2, Dst: 3, Weight: 2.5, Type: "friend", Created: 44},
	}); err != nil {
		t.Fatal(err)
	}
	mt, _ := db.Catalog().Get(g.MessageTable())
	if err := mt.AppendRow(storage.Int64(3), storage.Int64(1), storage.Str("hello")); err != nil {
		t.Fatal(err)
	}
	return g
}

func collectUnits(t *testing.T, parts []*storage.Batch, join bool) map[int64]workUnit {
	t.Helper()
	units := map[int64]workUnit{}
	for _, p := range parts {
		var us []workUnit
		if join {
			us, _ = parseJoinPartition(p)
		} else {
			us, _ = parseUnionPartition(p)
		}
		for _, u := range us {
			if _, dup := units[u.id]; dup {
				t.Fatalf("vertex %d appears in two partitions", u.id)
			}
			units[u.id] = u
		}
	}
	return units
}

func checkFixtureUnits(t *testing.T, units map[int64]workUnit, path string) {
	t.Helper()
	if len(units) != 3 {
		t.Fatalf("%s: %d units, want 3", path, len(units))
	}
	u1 := units[1]
	if u1.value != "v1" || u1.halted {
		t.Errorf("%s: vertex 1 state = %q halted=%v", path, u1.value, u1.halted)
	}
	if len(u1.edges) != 2 {
		t.Fatalf("%s: vertex 1 edges = %d, want 2", path, len(u1.edges))
	}
	sortEdges(u1.edges)
	if u1.edges[0].Dst != 2 || u1.edges[0].Weight != 0.5 || u1.edges[0].Type != "friend" || u1.edges[0].Created != 42 {
		t.Errorf("%s: edge metadata lost: %+v", path, u1.edges[0])
	}
	if len(u1.msgs) != 1 || u1.msgs[0].Value != "hello" || u1.msgs[0].Src != 3 {
		t.Errorf("%s: vertex 1 messages = %+v", path, u1.msgs)
	}
	if len(units[2].msgs) != 0 || len(units[2].edges) != 1 {
		t.Errorf("%s: vertex 2 = %+v", path, units[2])
	}
	if len(units[3].edges) != 0 {
		t.Errorf("%s: vertex 3 should have no out-edges", path)
	}
}

func TestUnionInputAssembly(t *testing.T) {
	g := inputFixture(t)
	parts, err := buildUnionInput(g, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkFixtureUnits(t, collectUnits(t, parts, false), "union")
}

func TestJoinInputAssembly(t *testing.T) {
	g := inputFixture(t)
	parts, err := buildJoinInput(g, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkFixtureUnits(t, collectUnits(t, parts, true), "join")
}

func TestJoinInputProductBlowup(t *testing.T) {
	// A vertex with m messages and e edges yields m×e join rows but
	// only m+e+1 union rows — the quantitative heart of §2.3.
	db := engine.New()
	g, err := CreateGraph(db, "blow")
	if err != nil {
		t.Fatal(err)
	}
	var edges []Edge
	for i := int64(1); i <= 4; i++ {
		edges = append(edges, Edge{Src: 0, Dst: i})
	}
	if err := g.BulkLoad(nil, edges); err != nil {
		t.Fatal(err)
	}
	mt, _ := db.Catalog().Get(g.MessageTable())
	for i := int64(1); i <= 3; i++ {
		_ = mt.AppendRow(storage.Int64(i), storage.Int64(0), storage.Str("m"))
	}
	unionParts, err := buildUnionInput(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	joinParts, err := buildJoinInput(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	unionRows, joinRows := 0, 0
	for _, p := range unionParts {
		unionRows += p.Len()
	}
	for _, p := range joinParts {
		joinRows += p.Len()
	}
	// Vertex 0: 3 msgs × 4 edges = 12 join rows; the other 4 vertices
	// contribute 1 row each → 16. Union: 5 V + 4 E + 3 M = 12.
	if joinRows != 16 {
		t.Errorf("join rows = %d, want 16 (the m×e product)", joinRows)
	}
	if unionRows != 12 {
		t.Errorf("union rows = %d, want 12 (m+e+v)", unionRows)
	}
	// And despite the blowup both paths reconstruct identical units.
	uu := collectUnits(t, unionParts, false)
	ju := collectUnits(t, joinParts, true)
	if len(uu[0].msgs) != len(ju[0].msgs) || len(uu[0].edges) != len(ju[0].edges) {
		t.Errorf("paths disagree: union %d/%d join %d/%d msgs/edges",
			len(uu[0].msgs), len(uu[0].edges), len(ju[0].msgs), len(ju[0].edges))
	}
}

func TestPartitionAndSortParallelMatchesSerial(t *testing.T) {
	g := inputFixture(t)
	rows, err := g.DB.Query(unionInputSQL(g))
	if err != nil {
		t.Fatal(err)
	}
	data, err := rows.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	serial := partitionAndSort(data, 0, 4, 1, nil, []storage.SortKey{{Col: 0}, {Col: 1}})
	parallel := partitionAndSort(data, 0, 4, 8, nil, []storage.SortKey{{Col: 0}, {Col: 1}})
	if len(serial) != len(parallel) {
		t.Fatalf("partition counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Len() != parallel[i].Len() {
			t.Fatalf("partition %d sizes differ", i)
		}
		for r := 0; r < serial[i].Len(); r++ {
			a, b := serial[i].Row(r), parallel[i].Row(r)
			for c := range a {
				if storage.Compare(a[c], b[c]) != 0 {
					t.Fatalf("partition %d row %d differs", i, r)
				}
			}
		}
	}
}

func TestDanglingUnionMessageNotComputed(t *testing.T) {
	g := inputFixture(t)
	mt, _ := g.DB.Catalog().Get(g.MessageTable())
	_ = mt.AppendRow(storage.Int64(1), storage.Int64(999), storage.Str("ghost"))
	parts, err := buildUnionInput(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	dangling := 0
	for _, p := range parts {
		_, d := parseUnionPartition(p)
		dangling += d
	}
	if dangling != 1 {
		t.Errorf("dangling = %d, want 1", dangling)
	}
}
