// Package core implements Vertexica's contribution: a Pregel-style
// vertex-centric execution layer that runs entirely on the relational
// engine. Graphs live in three relational tables (vertex, edge,
// message); a coordinator "stored procedure" drives supersteps; worker
// "UDFs" execute the user's vertex-compute function over hash-
// partitioned, sorted unions of the three tables (§2.2–2.3 of the
// paper), with the paper's four optimizations implemented and
// individually switchable for ablation: Table Unions, Parallel Workers,
// Vertex Batching, and Update-vs-Replace.
package core

import (
	"fmt"
	"sort"
)

// Edge is one out-edge as seen by a vertex program, including the
// metadata attributes the paper's datasets carry (weight, creation
// timestamp, and type).
type Edge struct {
	Src     int64
	Dst     int64
	Weight  float64
	Type    string
	Created int64
}

// Message is a value in flight between two vertices across a superstep
// barrier. Values are strings: the vertex table stores the vertex value
// as VARCHAR and algorithms bring their own codecs, mirroring how the
// paper's UDFs parse untyped tuples.
type Message struct {
	Src   int64
	Dst   int64
	Value string
}

// VertexProgram is the user-supplied graph query: Compute runs once per
// superstep for every active vertex, exactly like Pregel.
type VertexProgram interface {
	// Compute receives the vertex context and this superstep's incoming
	// messages. Implementations mutate state through the context
	// (ModifyVertexValue, SendMessage, VoteToHalt).
	Compute(ctx *VertexContext, msgs []Message) error
}

// Combiner merges two messages headed to the same destination vertex
// (Pregel's message combiner, e.g. sum for PageRank, min for SSSP).
// Returning ok=false keeps the messages separate.
type Combiner func(dst int64, a, b string) (merged string, ok bool)

// AggregatorKind enumerates the global aggregators supported.
type AggregatorKind uint8

// Aggregator kinds.
const (
	AggregateSum AggregatorKind = iota
	AggregateMin
	AggregateMax
)

// AggregatorSpec declares a named global aggregator a program uses.
type AggregatorSpec struct {
	Name string
	Kind AggregatorKind
}

// HasAggregators is implemented by programs that use global aggregators.
type HasAggregators interface {
	Aggregators() []AggregatorSpec
}

// HasCombiner is implemented by programs that provide a message
// combiner.
type HasCombiner interface {
	Combiner() Combiner
}

// VertexContext exposes the worker API from the paper
// (getVertexValue, getMessages, getOutEdges, modifyVertexValue,
// sendMessage, voteToHalt) to the vertex program.
type VertexContext struct {
	id        int64
	superstep int
	value     string
	halted    bool
	outEdges  []Edge
	numVerts  int64

	valueChanged bool
	votedHalt    bool
	outbox       []Message

	aggPrev map[string]float64 // previous superstep's aggregate values
	aggCur  map[string]float64 // this vertex's contributions
	aggSeen map[string]bool
	aggKind map[string]AggregatorKind
}

// Id returns the vertex id.
func (c *VertexContext) Id() int64 { return c.id }

// Superstep returns the current superstep number (0-based).
func (c *VertexContext) Superstep() int { return c.superstep }

// NumVertices returns the number of vertices in the graph.
func (c *VertexContext) NumVertices() int64 { return c.numVerts }

// GetVertexValue returns the current vertex value.
func (c *VertexContext) GetVertexValue() string { return c.value }

// ModifyVertexValue sets the vertex value; the coordinator writes it
// back through the Update-vs-Replace policy after the superstep.
func (c *VertexContext) ModifyVertexValue(v string) {
	if v != c.value {
		c.value = v
		c.valueChanged = true
	}
}

// GetOutEdges returns the vertex's out-edges.
func (c *VertexContext) GetOutEdges() []Edge { return c.outEdges }

// OutDegree returns the number of out-edges.
func (c *VertexContext) OutDegree() int { return len(c.outEdges) }

// SendMessage sends a value to another vertex for the next superstep.
func (c *VertexContext) SendMessage(dst int64, value string) {
	c.outbox = append(c.outbox, Message{Src: c.id, Dst: dst, Value: value})
}

// SendMessageToAllNeighbors sends the value along every out-edge.
func (c *VertexContext) SendMessageToAllNeighbors(value string) {
	for _, e := range c.outEdges {
		c.SendMessage(e.Dst, value)
	}
}

// VoteToHalt marks the vertex halted; an incoming message reactivates
// it (Pregel semantics).
func (c *VertexContext) VoteToHalt() { c.votedHalt = true }

// Aggregate contributes a value to a named global aggregator; the
// merged result is visible to every vertex in the NEXT superstep.
func (c *VertexContext) Aggregate(name string, v float64) error {
	kind, ok := c.aggKind[name]
	if !ok {
		return fmt.Errorf("core: vertex %d aggregated to undeclared aggregator %q", c.id, name)
	}
	if !c.aggSeen[name] {
		c.aggSeen[name] = true
		c.aggCur[name] = v
		return nil
	}
	switch kind {
	case AggregateSum:
		c.aggCur[name] += v
	case AggregateMin:
		if v < c.aggCur[name] {
			c.aggCur[name] = v
		}
	case AggregateMax:
		if v > c.aggCur[name] {
			c.aggCur[name] = v
		}
	}
	return nil
}

// AggregatedValue returns the previous superstep's merged value of a
// named aggregator. ok is false in superstep 0 or for unknown names.
func (c *VertexContext) AggregatedValue(name string) (float64, bool) {
	v, ok := c.aggPrev[name]
	return v, ok
}

// sortEdges orders edges by destination for deterministic iteration.
func sortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool { return es[i].Dst < es[j].Dst })
}
