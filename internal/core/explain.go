package core

import (
	"fmt"
	"time"
)

// EXPLAIN rendering for vertex-centric runs. The SQL front end accepts
// EXPLAIN [ANALYZE] <verb> <args...> for graph verbs; the engine routes
// it to the graph runtime through a hook (the engine package cannot
// import core), and the facade's hook lands here. Plain EXPLAIN renders
// the schedule a run WOULD use — resolved options, shard/partition
// alignment, input-assembly mode, cache policy, write-back policy —
// without touching the graph tables beyond the catalog and row counts.

// ResolveOptions resolves opts the way a run would: defaults filled in
// with the graph's shard count so a defaulted partition count lands on
// a multiple of the shards (see withDefaultsSharded). It returns the
// resolved options and the vertex table's shard count.
func ResolveOptions(g *Graph, opts Options) (Options, int, error) {
	vt, err := g.DB.Catalog().Get(g.VertexTable())
	if err != nil {
		return opts, 0, err
	}
	shards := vt.NumShards()
	return opts.withDefaultsSharded(shards), shards, nil
}

// ExplainRun renders the superstep schedule for running program (a
// display name like "pagerank iterations=10") on g under opts.
func ExplainRun(g *Graph, program string, opts Options) ([]string, error) {
	o, shards, err := ResolveOptions(g, opts)
	if err != nil {
		return nil, err
	}
	nv, err := g.NumVertices()
	if err != nil {
		return nil, err
	}
	ne, err := g.NumEdges()
	if err != nil {
		return nil, err
	}

	lines := []string{
		fmt.Sprintf("%s on graph %q (vertex-centric)", program, g.Name),
		fmt.Sprintf("  graph: %d vertices, %d edges; tables sharded %d-way (vertex by id, edge by src, message by dst)",
			nv, ne, shards),
	}

	layout := fmt.Sprintf("  layout: %d hash partitions of the input union, %d workers", o.Partitions, o.Workers)
	if shards > 1 && o.Partitions%shards == 0 {
		layout += fmt.Sprintf("; partitions = %d x shards, so each partition reads one shard of each table (shard-local gathers)", o.Partitions/shards)
	} else if shards > 1 {
		layout += fmt.Sprintf("; partitions not a multiple of %d shards, gathers cross shard boundaries", shards)
	}
	lines = append(lines, layout)

	input := "  input: table union of vertex+message+edge (paper default)"
	if o.UseJoinInput {
		input = "  input: naive 3-way join of vertex x edge x message (ablation baseline)"
	}
	lines = append(lines, input)

	cache := "  input cache: edge side built once, reused every superstep; quiescent partitions skipped"
	if o.DisableInputCache {
		cache = "  input cache: disabled — full union re-assembled every superstep, no partition skipping"
	}
	lines = append(lines, cache)

	combiner := "  combiner: enabled (messages merged per destination before delivery)"
	if o.DisableCombiner {
		combiner = "  combiner: disabled (every message delivered individually)"
	}
	lines = append(lines, combiner)

	switch {
	case o.UpdateThreshold < 0:
		lines = append(lines, "  write-back: always replace the vertex table")
	case o.UpdateThreshold >= 1:
		lines = append(lines, "  write-back: always update tuples in place")
	default:
		lines = append(lines, fmt.Sprintf("  write-back: update in place when <%d%% of tuples changed, else replace the table",
			int(o.UpdateThreshold*100)))
	}

	lines = append(lines,
		fmt.Sprintf("  schedule: up to %d supersteps; each superstep:", o.MaxSupersteps),
		"    1. assemble partition inputs (cached edge side + fresh vertex/message rows)",
		fmt.Sprintf("    2. dispatch active partitions to %d workers; Compute runs per vertex", o.Workers),
		"    3. combine and route emitted messages into the message table",
		"    4. write back changed vertex values (update vs replace)",
		"  halt: every vertex halted and no messages pending, or the superstep bound",
	)
	return lines, nil
}

// ExplainSQL renders the plan shape of a SQL-flavored graph verb — the
// iterated relational implementation ("Vertexica (SQL)") that drives
// the engine with generated join+aggregate statements instead of the
// vertex-centric coordinator.
func ExplainSQL(g *Graph, program string, iterations int) ([]string, error) {
	nv, err := g.NumVertices()
	if err != nil {
		return nil, err
	}
	ne, err := g.NumEdges()
	if err != nil {
		return nil, err
	}
	lines := []string{
		fmt.Sprintf("%s on graph %q (iterated SQL)", program, g.Name),
		fmt.Sprintf("  graph: %d vertices, %d edges", nv, ne),
		"  plan: generated SQL per iteration — join the working table with the",
		"  edge table, aggregate per destination, swap the working table",
	}
	if iterations > 0 {
		lines = append(lines, fmt.Sprintf("  iterations: %d (fixed)", iterations))
	}
	return lines, nil
}

// ExplainStats folds a completed run's statistics into EXPLAIN ANALYZE
// output: a run summary, the cache economics, and one line per
// superstep.
func ExplainStats(rs *RunStats) []string {
	if rs == nil {
		return nil
	}
	lines := []string{
		fmt.Sprintf("  executed: supersteps=%d computed=%d messages=%d dangling=%d time=%s",
			rs.Supersteps, rs.TotalComputed, rs.TotalMessages, rs.DanglingMessages,
			rs.Duration.Round(time.Microsecond)),
		fmt.Sprintf("  cache: builds=%d hits=%d; skipped partitions=%d vertices=%d",
			rs.CacheBuilds, rs.CacheHits, rs.SkippedParts, rs.SkippedVerts),
	}
	for _, st := range rs.Steps {
		src := "build"
		if st.CacheHit {
			src = "hit"
		}
		wb := "update"
		if st.UsedReplace {
			wb = "replace"
		}
		lines = append(lines, fmt.Sprintf(
			"  superstep %2d: computed=%d messages=%d updated=%d input_rows=%d cache=%s write=%s skipped=%d/%d time=%s",
			st.Superstep, st.Computed, st.MessagesOut, st.Updated, st.InputRows,
			src, wb, st.SkippedParts, st.SkippedVerts, st.Duration.Round(time.Microsecond)))
	}
	return lines
}
