package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/storage"
)

// Options configures a vertex-centric run. The zero value selects the
// paper's defaults (union input, one worker per core, batching on,
// update-vs-replace threshold 10%).
type Options struct {
	// Workers is the number of parallel worker "UDF instances"
	// (§2.3 Parallel Workers). 0 means runtime.NumCPU().
	Workers int
	// Partitions is the number of hash partitions of the table union
	// (§2.3 Vertex Batching). 0 means 4× workers. 1 disables batching
	// parallelism (a single serial batch).
	Partitions int
	// MaxSupersteps bounds the run. 0 means 500.
	MaxSupersteps int
	// UseJoinInput switches input assembly from the paper's table
	// union to the naive 3-way join (the ablation baseline).
	UseJoinInput bool
	// UpdateThreshold is the changed-tuple fraction below which vertex
	// values are updated in place instead of rebuilding the table
	// (§2.3 Update Vs Replace). Negative forces replace always;
	// >=1 forces update always. 0 means the paper's default 0.10.
	UpdateThreshold float64
	// DisableCombiner ignores the program's message combiner (ablation).
	DisableCombiner bool
	// DisableInputCache re-assembles the full three-table union every
	// superstep instead of caching the immutable edge side once per run
	// (ablation baseline for the superstep input cache). It also turns
	// off active-partition skipping, which rides on the cached path.
	DisableInputCache bool
}

func (o Options) withDefaults() Options { return o.withDefaultsSharded(1) }

// withDefaultsSharded resolves defaults knowing the graph's shard count
// (the vertex table's; CreateGraphSharded gives all three tables the
// same). A defaulted partition count is rounded up to a multiple of the
// shard count: input partitioning and table sharding use the same hash
// (storage.HashInt64), so when partitions = k·shards every input
// partition draws its rows from exactly one shard of each graph table —
// partition-local work stays shard-local, and the per-partition gathers
// read contiguous shard-major runs of the assembled input.
func (o Options) withDefaultsSharded(shards int) Options {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.Partitions <= 0 {
		o.Partitions = o.Workers * 4
		if shards > 1 {
			o.Partitions = ((o.Partitions + shards - 1) / shards) * shards
		}
	}
	if o.MaxSupersteps <= 0 {
		o.MaxSupersteps = 500
	}
	if o.UpdateThreshold == 0 {
		o.UpdateThreshold = 0.10
	}
	return o
}

// SuperstepStats records one superstep's execution.
type SuperstepStats struct {
	Superstep    int
	Computed     int  // vertices whose Compute ran
	MessagesOut  int  // messages emitted (after combining)
	Updated      int  // vertex tuples changed
	UsedReplace  bool // replace (true) vs in-place update
	InputRows    int  // rows fed to workers (union or join product)
	CacheHit     bool // edge-side input cache reused without rebuild
	SkippedParts int  // quiescent partitions not dispatched to workers
	SkippedVerts int  // halted vertices inside skipped partitions
	Duration     time.Duration
}

// RunStats summarizes a full run of a vertex program.
type RunStats struct {
	Supersteps       int
	TotalComputed    int64
	TotalMessages    int64
	DanglingMessages int64
	CacheBuilds      int   // edge-side input cache (re)builds
	CacheHits        int   // supersteps served from the cache
	SkippedParts     int64 // quiescent partitions skipped across the run
	SkippedVerts     int64 // halted vertices inside skipped partitions
	Steps            []SuperstepStats
	Duration         time.Duration
}

// Coordinator drives supersteps over a graph — the stored procedure of
// Figure 1. It owns no state between runs; everything lives in the
// graph's relational tables.
type Coordinator struct {
	Graph   *Graph
	Program VertexProgram
	Opts    Options
}

// Run executes the program until every vertex has halted and no
// messages remain, or MaxSupersteps is reached.
func (c *Coordinator) Run(ctx context.Context) (*RunStats, error) {
	start := time.Now()
	stats := &RunStats{}

	g := c.Graph
	numVerts, err := g.NumVertices()
	if err != nil {
		return nil, err
	}
	if numVerts == 0 {
		return stats, nil
	}

	// Row index of each vertex id; stays valid because both write-back
	// paths preserve row order. Reading the table directly goes through
	// a pinned MVCC snapshot (concurrent SQL sessions may be writing),
	// so the iteration holds no engine latch.
	vt, err := g.DB.Catalog().Get(g.VertexTable())
	if err != nil {
		return nil, err
	}
	// Align defaulted input partitioning with the graph's shard layout.
	opts := c.Opts.withDefaultsSharded(vt.NumShards())
	rowOf := make(map[int64]int, numVerts)
	{
		snap, err := g.DB.AcquireSnapshot(g.VertexTable())
		if err != nil {
			return nil, err
		}
		vtd, err := snap.Table(g.VertexTable())
		if err != nil {
			snap.Release()
			return nil, err
		}
		ids := vtd.Data().Cols[0].(*storage.Int64Column).Int64s()
		for i, id := range ids {
			rowOf[id] = i
		}
		snap.Release()
	}

	var combiner Combiner
	if hc, ok := c.Program.(HasCombiner); ok && !opts.DisableCombiner {
		combiner = hc.Combiner()
	}
	aggKinds := make(map[string]AggregatorKind)
	if ha, ok := c.Program.(HasAggregators); ok {
		for _, spec := range ha.Aggregators() {
			aggKinds[spec.Name] = spec.Kind
		}
	}
	aggPrev := make(map[string]float64)

	// The edge side of the union input is immutable for the duration of
	// a run, so it is partitioned and sorted once here and each
	// superstep merges only the fresh vertex+message rows into it.
	var cache *inputCache
	useCache := !opts.UseJoinInput && !opts.DisableInputCache

	for step := 0; step < opts.MaxSupersteps; step++ {
		if err := ctxErr(ctx); err != nil {
			return stats, err
		}
		stepStart := time.Now()

		// 1. Assemble the superstep input: cached union (default),
		// full union re-sort (ablation), or 3-way join (ablation).
		var parts []*storage.Batch
		cacheHit := false
		skippedParts, skippedVerts := 0, 0
		switch {
		case opts.UseJoinInput:
			parts, err = buildJoinInput(g, opts.Partitions, opts.Workers)
		case !useCache:
			parts, err = buildUnionInput(g, opts.Partitions, opts.Workers)
		default:
			edgeVersion, verr := g.EdgeVersion()
			if verr != nil {
				return stats, verr
			}
			if cache == nil || cache.edgeVersion != edgeVersion {
				if cache, err = buildEdgeCache(g, opts.Partitions, opts.Workers); err != nil {
					return stats, err
				}
				stats.CacheBuilds++
			} else {
				cacheHit = true
				stats.CacheHits++
			}
			var in *cachedInputResult
			if in, err = buildCachedUnionInput(g, cache, step, opts.Workers); err == nil {
				// Vertices inside skipped partitions are all halted and
				// receive no messages, so they cannot affect the halt
				// vote or emit anything — skipping them is lossless.
				parts = in.parts
				skippedParts = in.skippedParts
				skippedVerts = in.skippedVerts
				stats.SkippedParts += int64(skippedParts)
				stats.SkippedVerts += int64(skippedVerts)
			}
		}
		if err != nil {
			return stats, err
		}
		inputRows := 0
		for _, p := range parts {
			inputRows += p.Len()
		}

		// 2. Run workers in parallel over the partitions.
		res, err := c.runWorkers(ctx, parts, step, numVerts, opts, aggPrev, aggKinds)
		if err != nil {
			return stats, err
		}
		stats.DanglingMessages += int64(res.dangling)

		// 3. Combine messages across workers. Combining folds float
		// values, so the fold order must not depend on which worker
		// produced which message: sort first, making the combined
		// values — and therefore the whole run — bit-identical at any
		// worker count or budget.
		outMsgs := res.msgs
		if combiner != nil {
			sortMessages(outMsgs)
			outMsgs = combineMessages(outMsgs, combiner)
		}

		// 4. Write back vertex state via Update-vs-Replace.
		updated, usedReplace, err := c.writeVertices(vt, rowOf, res.updates, opts.UpdateThreshold)
		if err != nil {
			return stats, err
		}

		// 5. Replace the message table with the new superstep's messages.
		if err := c.writeMessages(outMsgs); err != nil {
			return stats, err
		}

		// 6. Merge global aggregators for the next superstep.
		aggPrev = mergeAggregates(res.aggs, aggKinds)

		ss := SuperstepStats{
			Superstep:    step,
			Computed:     res.computed,
			MessagesOut:  len(outMsgs),
			Updated:      updated,
			UsedReplace:  usedReplace,
			InputRows:    inputRows,
			CacheHit:     cacheHit,
			SkippedParts: skippedParts,
			SkippedVerts: skippedVerts,
			Duration:     time.Since(stepStart),
		}
		stats.Steps = append(stats.Steps, ss)
		stats.Supersteps = step + 1
		stats.TotalComputed += int64(res.computed)
		stats.TotalMessages += int64(len(outMsgs))

		// 7. Halt when no messages remain and every vertex voted halt.
		if len(outMsgs) == 0 && res.allHalted {
			break
		}
	}
	stats.Duration = time.Since(start)
	return stats, nil
}

// vertexUpdate is one vertex's post-compute state.
type vertexUpdate struct {
	id      int64
	value   string
	halted  bool
	changed bool // value or halted differs from the pre-superstep state
}

// workerResult accumulates one worker's outputs. Aggregator values are
// NOT folded here — they are recorded per partition (see runWorkers)
// so the cross-partition float fold happens in partition order,
// independent of which worker ran which partition.
type workerResult struct {
	updates  []vertexUpdate
	msgs     []Message
	computed int
	dangling int
	halted   int
	seen     int
}

// mergedResult is the barrier-merged output of all workers.
type mergedResult struct {
	updates   []vertexUpdate
	msgs      []Message
	aggs      []map[string]float64
	computed  int
	dangling  int
	allHalted bool
}

// runWorkers fans the partitions out to a worker pool and merges the
// results at the synchronization barrier. The pool keeps one worker as
// the run's own entitlement and draws up to opts.Workers-1 extras from
// the engine's global worker budget, so a vertex-centric run and
// concurrent SQL statements share cores instead of oversubscribing
// them; results are partition-deterministic, so the pool size never
// changes the outcome. A panic inside a vertex program is recovered
// and surfaced as an error. Workers observe ctx between partitions
// (and periodically within one), so cancelling mid-superstep aborts
// the superstep instead of running it to the barrier.
func (c *Coordinator) runWorkers(ctx context.Context, parts []*storage.Batch, step int, numVerts int64,
	opts Options, aggPrev map[string]float64, aggKinds map[string]AggregatorKind) (*mergedResult, error) {

	type partWork struct {
		idx  int
		part *storage.Batch
	}
	partCh := make(chan partWork, len(parts))
	for i, p := range parts {
		partCh <- partWork{idx: i, part: p}
	}
	close(partCh)

	budget := c.Graph.DB.WorkerBudget()
	want := opts.Workers
	if want > len(parts) {
		want = len(parts)
	}
	extra := 0
	if want > 1 {
		extra = budget.TryAcquire(want - 1)
	}
	defer budget.Release(extra)
	pool := 1 + extra

	// Aggregator values are recorded per partition (each slot written
	// by exactly one worker) and merged in partition order below, so
	// float aggregates are bit-identical at any pool size.
	aggsByPart := make([]map[string]float64, len(parts))
	results := make([]*workerResult, pool)
	errs := make([]error, pool)
	var wg sync.WaitGroup
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[w] = fmt.Errorf("core: worker %d: vertex program panicked: %v", w, r)
				}
			}()
			res := &workerResult{}
			results[w] = res
			for pw := range partCh {
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				aggs := make(map[string]float64)
				if err := c.runPartition(ctx, pw.part, step, numVerts, opts, aggPrev, aggKinds, res, aggs); err != nil {
					errs[w] = err
					return
				}
				if len(aggs) > 0 {
					aggsByPart[pw.idx] = aggs
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	merged := &mergedResult{}
	haltedSeen := 0
	totalSeen := 0
	for _, r := range results {
		if r == nil {
			continue
		}
		merged.updates = append(merged.updates, r.updates...)
		merged.msgs = append(merged.msgs, r.msgs...)
		merged.computed += r.computed
		merged.dangling += r.dangling
		haltedSeen += r.halted
		totalSeen += r.seen
	}
	for _, aggs := range aggsByPart {
		if aggs != nil {
			merged.aggs = append(merged.aggs, aggs)
		}
	}
	merged.allHalted = haltedSeen == totalSeen
	return merged, nil
}

// ctxErr reports ctx cancellation, also honoring an already-expired
// deadline whose timer has not fired yet: under heavy load the runtime
// can deliver timer callbacks late, and a statement_timeout must bound
// a vertex run deterministically rather than at the timer's mercy.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if dl, ok := ctx.Deadline(); ok && !time.Now().Before(dl) {
		return context.DeadlineExceeded
	}
	return nil
}

// cancelCheckEvery is how many vertices a worker computes between
// context checks inside one partition, balancing cancellation latency
// against per-vertex overhead on the hot path.
const cancelCheckEvery = 64

// runPartition executes the vertex program serially over one partition
// — the worker "UDF" of Figure 1. Aggregator contributions fold into
// aggs (the partition's own map, merged across partitions in
// deterministic partition order by the caller).
func (c *Coordinator) runPartition(ctx context.Context, part *storage.Batch, step int, numVerts int64,
	opts Options, aggPrev map[string]float64, aggKinds map[string]AggregatorKind, res *workerResult, aggs map[string]float64) error {

	var units []workUnit
	var dangling int
	if opts.UseJoinInput {
		units, dangling = parseJoinPartition(part)
	} else {
		units, dangling = parseUnionPartition(part)
	}
	res.dangling += dangling

	for i := range units {
		if i%cancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		u := &units[i]
		res.seen++
		active := step == 0 || len(u.msgs) > 0 || !u.halted
		if !active {
			res.halted++
			continue
		}
		sortEdges(u.edges)
		vc := &VertexContext{
			id:        u.id,
			superstep: step,
			value:     u.value,
			halted:    u.halted,
			outEdges:  u.edges,
			numVerts:  numVerts,
			aggPrev:   aggPrev,
			aggCur:    make(map[string]float64),
			aggSeen:   make(map[string]bool),
			aggKind:   aggKinds,
		}
		if err := c.Program.Compute(vc, u.msgs); err != nil {
			return fmt.Errorf("core: vertex %d superstep %d: %w", u.id, step, err)
		}
		res.computed++
		newHalted := vc.votedHalt
		if newHalted {
			res.halted++
		}
		res.updates = append(res.updates, vertexUpdate{
			id:      u.id,
			value:   vc.value,
			halted:  newHalted,
			changed: vc.valueChanged || newHalted != u.halted,
		})
		res.msgs = append(res.msgs, vc.outbox...)
		for name, v := range vc.aggCur {
			if cur, ok := aggs[name]; ok {
				aggs[name] = foldAggregate(aggKinds[name], cur, v)
			} else {
				aggs[name] = v
			}
		}
	}
	return nil
}

func foldAggregate(kind AggregatorKind, a, b float64) float64 {
	switch kind {
	case AggregateSum:
		return a + b
	case AggregateMin:
		if b < a {
			return b
		}
		return a
	case AggregateMax:
		if b > a {
			return b
		}
		return a
	}
	return a
}

func mergeAggregates(parts []map[string]float64, kinds map[string]AggregatorKind) map[string]float64 {
	out := make(map[string]float64)
	seen := make(map[string]bool)
	for _, m := range parts {
		for name, v := range m {
			if !seen[name] {
				seen[name] = true
				out[name] = v
				continue
			}
			out[name] = foldAggregate(kinds[name], out[name], v)
		}
	}
	return out
}

// combineMessages merges messages per destination with the program's
// combiner (Pregel message combining).
func combineMessages(msgs []Message, combine Combiner) []Message {
	byDst := make(map[int64]int, len(msgs))
	out := make([]Message, 0, len(msgs))
	for _, m := range msgs {
		if i, ok := byDst[m.Dst]; ok {
			if merged, mok := combine(m.Dst, out[i].Value, m.Value); mok {
				out[i].Value = merged
				out[i].Src = -1 // combined messages lose their single source
				continue
			}
		}
		byDst[m.Dst] = len(out)
		out = append(out, m)
	}
	return out
}

// writeVertices applies the superstep's vertex updates using the
// Update-vs-Replace policy: below the threshold fraction of changed
// tuples the table is updated in place; above it a fresh column set is
// built (the "left join with the new values" of §2.3) and swapped in.
func (c *Coordinator) writeVertices(vt *storage.Table, rowOf map[int64]int,
	updates []vertexUpdate, threshold float64) (changedCount int, usedReplace bool, err error) {

	// Direct table mutation: hold the engine's exclusive latch so no
	// concurrent SQL reader observes a half-applied superstep.
	c.Graph.DB.LockExclusive()
	defer c.Graph.DB.UnlockExclusive()

	changed := updates[:0:0]
	for _, u := range updates {
		if u.changed {
			changed = append(changed, u)
		}
	}
	if len(changed) == 0 {
		return 0, false, nil
	}
	n := vt.NumRows()
	useReplace := float64(len(changed)) > threshold*float64(n)

	if !useReplace {
		idx := make([]int, len(changed))
		vals := make([]storage.Value, len(changed))
		halts := make([]storage.Value, len(changed))
		for i, u := range changed {
			row, ok := rowOf[u.id]
			if !ok {
				return 0, false, fmt.Errorf("core: update for unknown vertex %d", u.id)
			}
			idx[i] = row
			vals[i] = storage.Str(u.value)
			halts[i] = storage.Bool(u.halted)
		}
		if err := vt.UpdateInPlace(idx, 1, vals); err != nil {
			return 0, false, err
		}
		if err := vt.UpdateInPlace(idx, 2, halts); err != nil {
			return 0, false, err
		}
		return len(changed), false, nil
	}

	// Replace: rebuild the vertex table by "left joining" the old rows
	// with the new values, preserving row order.
	byID := make(map[int64]*vertexUpdate, len(changed))
	for i := range changed {
		byID[changed[i].id] = &changed[i]
	}
	old := vt.Data()
	ids := old.Cols[0].(*storage.Int64Column).Int64s()
	newBatch := storage.NewBatch(VertexSchema())
	for i, id := range ids {
		if u, ok := byID[id]; ok {
			if err := newBatch.AppendRow(storage.Int64(id), storage.Str(u.value), storage.Bool(u.halted)); err != nil {
				return 0, false, err
			}
		} else {
			if err := newBatch.AppendRow(old.Row(i)...); err != nil {
				return 0, false, err
			}
		}
	}
	if err := vt.Replace(newBatch); err != nil {
		return 0, false, err
	}
	return len(changed), true, nil
}

// sortMessages orders messages by (dst, src, value) — the canonical
// order used both for the message table and for the pre-combine sort
// that keeps float message combining deterministic.
func sortMessages(msgs []Message) {
	sort.Slice(msgs, func(i, j int) bool {
		if msgs[i].Dst != msgs[j].Dst {
			return msgs[i].Dst < msgs[j].Dst
		}
		if msgs[i].Src != msgs[j].Src {
			return msgs[i].Src < msgs[j].Src
		}
		return msgs[i].Value < msgs[j].Value
	})
}

// writeMessages replaces the message table contents with the new
// superstep's messages (sorted for determinism). Sorting and batch
// assembly happen before the exclusive latch is taken, so concurrent
// readers stall only for the table swap itself.
func (c *Coordinator) writeMessages(msgs []Message) error {
	mt, err := c.Graph.DB.Catalog().Get(c.Graph.MessageTable())
	if err != nil {
		return err
	}
	sortMessages(msgs)
	b := storage.NewBatch(MessageSchema())
	for _, m := range msgs {
		if err := b.AppendRow(storage.Int64(m.Src), storage.Int64(m.Dst), storage.Str(m.Value)); err != nil {
			return err
		}
	}
	c.Graph.DB.LockExclusive()
	defer c.Graph.DB.UnlockExclusive()
	return mt.Replace(b)
}

// Run is the package-level convenience: build a coordinator and run.
func Run(ctx context.Context, g *Graph, prog VertexProgram, opts Options) (*RunStats, error) {
	c := &Coordinator{Graph: g, Program: prog, Opts: opts}
	return c.Run(ctx)
}
