package client_test

import (
	"context"
	"errors"
	"testing"
	"time"

	vertexica "repro"
	"repro/internal/client"
	"repro/internal/server"
)

func startServer(t *testing.T) string {
	t.Helper()
	srv := server.New(vertexica.New(), server.Config{})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-done; err != nil && !errors.Is(err, server.ErrServerClosed) {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv.Addr()
}

func TestDialErrors(t *testing.T) {
	if _, err := client.Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to a closed port succeeded")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := client.DialContext(ctx, "127.0.0.1:1"); err == nil {
		t.Fatal("dial with cancelled ctx succeeded")
	}
}

func TestConnLifecycle(t *testing.T) {
	addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if c.SessionID() == 0 || c.ServerInfo() == "" {
		t.Fatalf("handshake metadata missing: id=%d info=%q", c.SessionID(), c.ServerInfo())
	}
	if _, err := c.Exec(ctx, "CREATE TABLE t (x INTEGER)"); err != nil {
		t.Fatal(err)
	}
	// RunSQL distinguishes row results from exec results in one trip.
	rows, n, err := c.RunSQL(ctx, "INSERT INTO t VALUES (1), (2)")
	if err != nil || rows != nil || n != 2 {
		t.Fatalf("RunSQL exec: rows=%v n=%d err=%v", rows, n, err)
	}
	rows, _, err = c.RunSQL(ctx, "SELECT x FROM t ORDER BY x")
	if err != nil || rows == nil || rows.Len() != 2 {
		t.Fatalf("RunSQL select: %v", err)
	}
	// Query on an exec-only statement reports a usable error.
	if _, err := c.Query(ctx, "INSERT INTO t VALUES (3)"); err == nil {
		t.Fatal("Query of INSERT should error client-side")
	}
	// A pre-cancelled context fails fast without poisoning the conn.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := c.Query(cctx, "SELECT x FROM t"); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled ctx: err=%v", err)
	}
	if rows, err := c.Query(ctx, "SELECT COUNT(*) FROM t"); err != nil || rows.Value(0, 0).I != 3 {
		t.Fatalf("conn poisoned after cancel: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(ctx, "SELECT 1"); err == nil {
		t.Fatal("query on closed conn succeeded")
	}
}
