package client_test

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	vertexica "repro"
	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/wire"
)

// startSeededServer boots a server over an engine with a seeded table
// of n rows (id 0..n-1, w = id*0.5).
func startSeededServer(t *testing.T, n int) string {
	addr, _ := startSeededServerEng(t, n)
	return addr
}

func startSeededServerEng(t *testing.T, n int) (string, *vertexica.Engine) {
	t.Helper()
	eng := vertexica.New()
	if _, err := eng.DB().Exec("CREATE TABLE st (id INTEGER NOT NULL, w DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	tb, err := eng.DB().Catalog().Get("st")
	if err != nil {
		t.Fatal(err)
	}
	b := storage.NewBatch(tb.Schema())
	for i := 0; i < n; i++ {
		if err := b.AppendRow(storage.Int64(int64(i)), storage.Float64(float64(i)*0.5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.AppendBatch(b); err != nil {
		t.Fatal(err)
	}
	srv := server.New(eng, server.Config{})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
	})
	return srv.Addr(), eng
}

// TestQueryStreamMatchesMaterialized drains a client-side stream batch
// by batch and asserts it is byte-identical to the materialized Query
// result for the same statement.
func TestQueryStreamMatchesMaterialized(t *testing.T) {
	const n = 20000
	addr := startSeededServer(t, n)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	const q = "SELECT id, w FROM st WHERE w >= 0.0"

	want, err := c.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := c.QueryStream(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	got := storage.NewBatch(rows.Schema())
	batches := 0
	for {
		b, err := rows.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		batches++
		if err := storage.Concat(got, b); err != nil {
			t.Fatal(err)
		}
	}
	if batches < 2 {
		t.Fatalf("stream arrived in %d batch(es); expected several for %d rows", batches, n)
	}
	if !wire.EqualBatches(got, want.Data) {
		t.Fatal("streamed result differs from materialized result")
	}
	// The connection slot is free again.
	if _, err := c.Query(ctx, "SELECT COUNT(*) FROM st"); err != nil {
		t.Fatalf("statement after drained stream: %v", err)
	}
}

// TestQueryStreamCloseEarlyFreesConnection closes a stream after one
// batch; the cancel must reach the server and the connection must be
// usable for the next statement.
func TestQueryStreamCloseEarlyFreesConnection(t *testing.T) {
	addr := startSeededServer(t, 50000)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	rows, err := c.QueryStream(ctx, "SELECT id, w FROM st")
	if err != nil {
		t.Fatal(err)
	}
	if b, err := rows.Next(); err != nil || b == nil {
		t.Fatalf("first batch: %v %v", b, err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	v, err := c.Query(ctx, "SELECT COUNT(*) FROM st")
	if err != nil {
		t.Fatalf("statement after early-closed stream: %v", err)
	}
	if v.Value(0, 0).I != 50000 {
		t.Fatalf("count %d after early close, want 50000", v.Value(0, 0).I)
	}
}

// TestQueryStreamMaterializeShim asserts the compatibility shim: a
// partially drained stream materializes the remainder, and the
// random-access API works on it.
func TestQueryStreamMaterializeShim(t *testing.T) {
	const n = 20000
	addr := startSeededServer(t, n)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	rows, err := c.QueryStream(ctx, "SELECT id FROM st")
	if err != nil {
		t.Fatal(err)
	}
	first, err := rows.Next()
	if err != nil || first == nil {
		t.Fatalf("first batch: %v %v", first, err)
	}
	rest, err := rows.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if first.Len()+rest.Len() != n {
		t.Fatalf("first %d + materialized rest %d != %d", first.Len(), rest.Len(), n)
	}
	if rows.Len() != rest.Len() {
		t.Fatalf("Len %d, want the materialized remainder %d", rows.Len(), rest.Len())
	}
}

// TestQueryStreamMidStreamError asserts a server-side failure mid-
// stream surfaces as the terminal error and frees the connection.
func TestQueryStreamMidStreamError(t *testing.T) {
	addr, eng := startSeededServerEng(t, 20000)
	// A UDF that detonates deep into the scan: the header and several
	// batches ship before the executor fails.
	err := eng.RegisterUDF(&vertexica.ScalarFunc{
		Name: "boom", MinArgs: 1, MaxArgs: 1,
		ReturnType: func([]storage.Type) (storage.Type, error) { return storage.TypeInt64, nil },
		Eval: func(args []storage.Value) (storage.Value, error) {
			if !args[0].Null && args[0].I == 15000 {
				return storage.Value{}, fmt.Errorf("boom at row %d", args[0].I)
			}
			return args[0], nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	rows, err := c.QueryStream(ctx, "SELECT BOOM(id) FROM st")
	if err != nil {
		t.Fatal(err)
	}
	sawErr := false
	for i := 0; i < 10000; i++ {
		b, nerr := rows.Next()
		if nerr != nil {
			sawErr = true
			if !strings.Contains(nerr.Error(), "boom") {
				t.Fatalf("unexpected stream error: %v", nerr)
			}
			break
		}
		if b == nil {
			break
		}
	}
	if !sawErr {
		t.Fatal("mid-stream executor error never surfaced")
	}
	if rows.Err() == nil {
		t.Fatal("Err() lost the terminal error")
	}
	if _, err := c.Query(ctx, "SELECT COUNT(*) FROM st"); err != nil {
		t.Fatalf("statement after errored stream: %v", err)
	}
}

// TestQueryStreamCancelMidDrain cancels the stream's context between
// batches; the statement dies server-side and Next reports the
// cancellation.
func TestQueryStreamCancelMidDrain(t *testing.T) {
	addr := startSeededServer(t, 50000)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	rows, err := c.QueryStream(ctx, "SELECT id, w FROM st")
	if err != nil {
		t.Fatal(err)
	}
	if b, err := rows.Next(); err != nil || b == nil {
		t.Fatalf("first batch: %v %v", b, err)
	}
	cancel()
	sawEnd := false
	for i := 0; i < 100000; i++ {
		b, err := rows.Next()
		if err != nil {
			if err != context.Canceled {
				t.Fatalf("cancelled stream error %v, want context.Canceled", err)
			}
			sawEnd = true
			break
		}
		if b == nil {
			sawEnd = true // drained before the cancel landed
			break
		}
	}
	if !sawEnd {
		t.Fatal("stream neither ended nor errored after cancel")
	}
}
