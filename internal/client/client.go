// Package client is the Go client for the Vertexica wire protocol:
// database/sql-style Query/Exec/Prepare over a TCP connection, plus
// the graph-algorithm RPCs (\pagerank and friends as server verbs).
// Results arrive as column-wise encoded batches; Query materializes
// them into a storage.Batch, so a client-side result is byte-identical
// to the in-process engine.Rows for the same statement — the
// differential harness asserts exactly that — while QueryStream
// extends the server's streaming execution to the last hop: Rows.Next
// decodes one frame at a time on demand, so the first batch is usable
// while the server is still producing the rest.
//
// A Conn runs one statement at a time (like a SQL session). Cancel a
// running statement through its context: the client sends a cancel
// frame keyed by the statement id and the server aborts the statement
// mid-execution, freeing its worker-budget slots.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/storage"
	"repro/internal/wire"
)

// Rows is a query result. From Query it is materialized (Data holds
// every row, the random-access API works immediately). From
// QueryStream it is an iterator: Next decodes one RowsBatch frame on
// demand; the connection's statement slot stays occupied until the
// stream finishes, so drain to nil or Close promptly. Materialize is
// the compatibility shim that drains whatever remains into Data.
type Rows struct {
	// Data holds all result rows once materialized (nil while
	// streaming); Schema gives names and types.
	Data *storage.Batch

	// Stats holds the Done frame's stats trailer, if the server sent
	// one (graph verbs report their RunStats this way: supersteps,
	// cache hits, skipped partitions, duration). Populated only once
	// the stream has finished cleanly; nil otherwise.
	Stats []wire.Stat

	c      *Conn
	ctx    context.Context
	id     uint32
	schema storage.Schema
	done   bool
	err    error
	finish func() // idempotent: stop the cancel watcher, free the statement slot
	pos    int    // Next cursor over materialized Data
}

// Schema returns the result schema (available before the first batch).
func (r *Rows) Schema() storage.Schema { return r.schema }

// Columns returns the result column names.
func (r *Rows) Columns() []string { return r.schema.Names() }

// Next returns the next batch of rows, or nil at end of stream. On a
// streaming result it decodes the next frame from the wire — the
// server may still be executing the statement. On a materialized
// result it serves storage.BatchSize slices of Data.
func (r *Rows) Next() (*storage.Batch, error) {
	if r.Data != nil {
		n := r.Data.Len()
		if r.pos >= n {
			return nil, nil
		}
		end := r.pos + storage.BatchSize
		if end > n {
			end = n
		}
		b := r.Data
		if r.pos != 0 || end != n {
			b = r.Data.Slice(r.pos, end)
		}
		r.pos = end
		return b, nil
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.done {
		return nil, nil
	}
	for {
		typ, payload, err := wire.ReadFrame(r.c.br)
		if err != nil {
			r.fail(err)
			return nil, r.err
		}
		rd := &wire.Reader{B: payload}
		if rd.U32() != r.id {
			continue // stale frame from an earlier, cancelled exchange
		}
		switch typ {
		case wire.FrameRowsBatch:
			b, err := wire.ReadBatch(rd, r.schema)
			if err != nil {
				r.fail(err)
				return nil, r.err
			}
			return b, nil
		case wire.FrameError:
			// Error is terminal: no Done follows it. Prefer the
			// caller's cancellation cause, like the materialized path.
			msg := rd.String()
			if cerr := r.ctx.Err(); cerr != nil {
				r.fail(cerr)
			} else {
				r.fail(&ServerError{Msg: msg})
			}
			return nil, r.err
		case wire.FrameDone:
			r.Stats = rd.Stats()
			r.done = true
			r.finish()
			return nil, nil
		}
	}
}

// fail terminates the stream with err and frees the statement slot.
func (r *Rows) fail(err error) {
	r.err = err
	r.finish()
}

// Err returns the error that terminated the stream, if any.
func (r *Rows) Err() error { return r.err }

// Stat returns the named stat from the Done frame's trailer. Valid only
// after the stream finished cleanly (Stats is nil before that).
func (r *Rows) Stat(name string) (int64, bool) {
	for _, s := range r.Stats {
		if s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}

// TraceID returns the server-assigned statement trace id, or 0 if the
// statement was not traced (sampling off) or the stream has not
// finished. The id joins against the server's vx$traces and
// vx$trace_spans system tables and its slow-query log.
func (r *Rows) TraceID() uint64 {
	v, _ := r.Stat("trace_id")
	return uint64(v)
}

// ServerTime returns the server-side elapsed time for the statement
// (admission to final frame), or 0 if the server sent no timing. The
// difference against the client's own measurement is time spent on the
// wire.
func (r *Rows) ServerTime() time.Duration {
	v, _ := r.Stat("server_us")
	return time.Duration(v) * time.Microsecond
}

// Close finishes a streaming result early: it asks the server to
// cancel the statement, drains the remaining frames (the statement
// slot is unusable until the server's terminal frame arrives), and
// frees the slot. It is a no-op on a finished or materialized result
// and safe to call multiple times.
func (r *Rows) Close() error {
	if r.c == nil || r.done || r.err != nil || r.Data != nil {
		return nil
	}
	// Best-effort cancel so a big remaining result dies server-side
	// instead of being shipped just to be discarded.
	var b wire.Buffer
	b.PutU32(r.id)
	r.c.writeFrame(wire.FrameCancel, b.B)
	for {
		batch, err := r.Next()
		if err != nil {
			return nil // terminal: the slot is already freed
		}
		if batch == nil {
			return nil
		}
	}
}

// Materialize drains whatever remains of the stream into Data and
// returns it — the compatibility shim for batch-at-once callers. On an
// already-materialized result it returns Data unchanged.
func (r *Rows) Materialize() (*storage.Batch, error) {
	if r.Data != nil {
		return r.Data, nil
	}
	if r.err != nil {
		return nil, r.err
	}
	out := storage.NewBatch(r.schema)
	for {
		b, err := r.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		if err := storage.Concat(out, b); err != nil {
			r.fail(err)
			return nil, err
		}
	}
	r.Data = out
	r.pos = 0 // Data holds only unconsumed batches; Next serves them
	return out, nil
}

// mustData returns the materialized batch, draining a stream on first
// use (errors surface as an empty result with Err set).
func (r *Rows) mustData() *storage.Batch {
	if r.Data == nil {
		if _, err := r.Materialize(); err != nil {
			return storage.NewBatch(r.schema)
		}
	}
	return r.Data
}

// Len returns the number of rows (materializing a stream).
func (r *Rows) Len() int { return r.mustData().Len() }

// Value returns the value at (row, col) (materializing a stream).
func (r *Rows) Value(row, col int) storage.Value { return r.mustData().Cols[col].Value(row) }

// ServerError is an error reported by the server for one statement.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return e.Msg }

// Conn is one client connection (= one server session).
type Conn struct {
	conn net.Conn
	br   *bufio.Reader

	wmu sync.Mutex // frame writes (cancel races the statement loop)
	smu sync.Mutex // one statement at a time

	nextStmt uint32
	nextPrep uint32

	sessionID  uint64
	serverInfo string
}

// Dial connects and handshakes with the server at addr.
func Dial(addr string) (*Conn, error) {
	return DialContext(context.Background(), addr)
}

// DialContext is Dial with connect cancellation.
func DialContext(ctx context.Context, addr string) (*Conn, error) {
	d := net.Dialer{}
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Conn{conn: nc, br: bufio.NewReader(nc)}
	var hello wire.Buffer
	hello.PutUvarint(wire.ProtocolVersion)
	hello.PutString("vertexica-go-client")
	if err := c.writeFrame(wire.FrameHello, hello.B); err != nil {
		nc.Close()
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		nc.SetReadDeadline(dl)
		defer nc.SetReadDeadline(time.Time{})
	}
	typ, payload, err := wire.ReadFrame(c.br)
	if err != nil {
		nc.Close()
		return nil, err
	}
	r := &wire.Reader{B: payload}
	switch typ {
	case wire.FrameHelloOK:
		c.sessionID = r.Uvarint()
		c.serverInfo = r.String()
		if r.Err != nil {
			nc.Close()
			return nil, r.Err
		}
		return c, nil
	case wire.FrameError:
		r.U32()
		msg := r.String()
		nc.Close()
		return nil, &ServerError{Msg: msg}
	default:
		nc.Close()
		return nil, fmt.Errorf("client: unexpected handshake frame %#x", typ)
	}
}

// SessionID returns the server-assigned session id.
func (c *Conn) SessionID() uint64 { return c.sessionID }

// ServerInfo returns the server's handshake banner.
func (c *Conn) ServerInfo() string { return c.serverInfo }

// Close says goodbye and closes the connection. An open transaction
// is rolled back server-side.
func (c *Conn) Close() error {
	c.wmu.Lock()
	wire.WriteFrame(c.conn, wire.FrameGoodbye, nil)
	c.wmu.Unlock()
	return c.conn.Close()
}

func (c *Conn) writeFrame(typ byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return wire.WriteFrame(c.conn, typ, payload)
}

// RunSQL executes any statement in one round trip: SELECT/SHOW (and
// graph-verb results) return rows with nil == no result set; DML and
// session control return nil rows and the affected count. This is the
// wire analogue of Engine.SQL.
func (c *Conn) RunSQL(ctx context.Context, sqlText string) (*Rows, int, error) {
	return c.roundTrip(ctx, func(id uint32) (byte, []byte) {
		var b wire.Buffer
		b.PutU32(id)
		b.PutString(sqlText)
		return wire.FrameQuery, b.B
	})
}

// Query runs a statement expected to return rows (SELECT, SHOW, or a
// graph verb result), materialized.
func (c *Conn) Query(ctx context.Context, sqlText string) (*Rows, error) {
	rows, _, err := c.RunSQL(ctx, sqlText)
	if err != nil {
		return nil, err
	}
	if rows == nil {
		return nil, errors.New("client: statement returned no rows; use Exec")
	}
	return rows, nil
}

// QueryStream runs a SELECT and returns an iterator over its result:
// Rows.Next decodes one batch frame at a time as the server ships it,
// so the first rows are usable in O(first batch) — streaming all the
// way from the executor to this process. The connection runs one
// statement at a time, so drain the rows to nil or Close them before
// issuing the next statement. ctx governs the whole stream: cancelling
// it aborts the statement server-side mid-drain.
func (c *Conn) QueryStream(ctx context.Context, sqlText string) (*Rows, error) {
	rows, _, err := c.startStmt(ctx, true, func(id uint32) (byte, []byte) {
		var b wire.Buffer
		b.PutU32(id)
		b.PutString(sqlText)
		return wire.FrameQuery, b.B
	})
	if err != nil {
		return nil, err
	}
	if rows == nil {
		return nil, errors.New("client: statement returned no rows; use Exec")
	}
	return rows, nil
}

// Exec runs a statement for its effect, returning the affected row
// count (SELECTs return their row count).
func (c *Conn) Exec(ctx context.Context, sqlText string) (int, error) {
	rows, affected, err := c.RunSQL(ctx, sqlText)
	if err != nil {
		return 0, err
	}
	if rows != nil {
		return rows.Len(), nil
	}
	return affected, nil
}

// Graph invokes a server-side graph verb (pagerank, sssp, components,
// triangles, load, graphs, ...) and returns its result rows.
func (c *Conn) Graph(ctx context.Context, verb string, args ...string) (*Rows, error) {
	rows, _, err := c.roundTrip(ctx, func(id uint32) (byte, []byte) {
		var b wire.Buffer
		b.PutU32(id)
		b.PutString(verb)
		b.PutUvarint(uint64(len(args)))
		for _, a := range args {
			b.PutString(a)
		}
		return wire.FrameGraph, b.B
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// PageRank runs server-side PageRank and returns id→rank.
func (c *Conn) PageRank(ctx context.Context, graph string, iters int) (map[int64]float64, error) {
	rows, err := c.Graph(ctx, "pagerank", graph, fmt.Sprint(iters))
	if err != nil {
		return nil, err
	}
	return floatMap(rows)
}

// floatMap converts an (id, value) result into a map.
func floatMap(rows *Rows) (map[int64]float64, error) {
	if len(rows.Data.Cols) != 2 {
		return nil, fmt.Errorf("client: expected (id, value) result, got %d columns", len(rows.Data.Cols))
	}
	out := make(map[int64]float64, rows.Len())
	for i := 0; i < rows.Len(); i++ {
		out[rows.Value(i, 0).I] = rows.Value(i, 1).F
	}
	return out, nil
}

// Stmt is a prepared statement with $1..$n parameters.
type Stmt struct {
	c  *Conn
	id uint32
}

// Prepare registers a parameterized statement on the server. If ctx
// is cancelled while waiting for the server's acknowledgement, the
// read is unblocked via a connection deadline and the context error
// returned (the connection is no longer usable afterwards — a
// half-read frame cannot be resynchronized).
func (c *Conn) Prepare(ctx context.Context, sqlText string) (*Stmt, error) {
	c.smu.Lock()
	defer c.smu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.nextPrep++
	id := c.nextPrep
	var b wire.Buffer
	b.PutU32(id)
	b.PutString(sqlText)
	if err := c.writeFrame(wire.FramePrepare, b.B); err != nil {
		return nil, err
	}
	watchDone := make(chan struct{})
	watcherExited := make(chan struct{})
	go func() {
		defer close(watcherExited)
		select {
		case <-ctx.Done():
			c.conn.SetReadDeadline(time.Now()) // unblock ReadFrame
		case <-watchDone:
		}
	}()
	// Stop the watcher BEFORE clearing the deadline: a context firing
	// right as Prepare succeeds must not re-install a past deadline
	// after the clear and poison every later read on this connection.
	defer func() {
		close(watchDone)
		<-watcherExited
		c.conn.SetReadDeadline(time.Time{})
	}()
	for {
		typ, payload, err := wire.ReadFrame(c.br)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			return nil, err
		}
		r := &wire.Reader{B: payload}
		switch typ {
		case wire.FramePrepareOK:
			if r.U32() == id {
				return &Stmt{c: c, id: id}, nil
			}
		case wire.FrameError:
			r.U32()
			return nil, &ServerError{Msg: r.String()}
		}
	}
}

// Query executes the prepared statement with args, returning rows.
func (s *Stmt) Query(ctx context.Context, args ...storage.Value) (*Rows, error) {
	rows, _, err := s.run(ctx, args)
	if err != nil {
		return nil, err
	}
	if rows == nil {
		return nil, errors.New("client: statement returned no rows; use Exec")
	}
	return rows, nil
}

// Exec executes the prepared statement with args for its effect.
func (s *Stmt) Exec(ctx context.Context, args ...storage.Value) (int, error) {
	rows, affected, err := s.run(ctx, args)
	if err != nil {
		return 0, err
	}
	if rows != nil {
		return rows.Len(), nil
	}
	return affected, nil
}

func (s *Stmt) run(ctx context.Context, args []storage.Value) (*Rows, int, error) {
	return s.c.roundTrip(ctx, func(id uint32) (byte, []byte) {
		var b wire.Buffer
		b.PutU32(id)
		b.PutU32(s.id)
		b.PutUvarint(uint64(len(args)))
		for _, a := range args {
			b.PutValue(a)
		}
		return wire.FrameBindExec, b.B
	})
}

// roundTrip runs one materialized statement exchange: write the
// request frame, watch ctx for cancellation (sending a cancel frame
// keyed by the statement id), and read response frames until Done.
func (c *Conn) roundTrip(ctx context.Context, build func(id uint32) (byte, []byte)) (*Rows, int, error) {
	return c.startStmt(ctx, false, build)
}

// startStmt is the shared statement machinery behind roundTrip and
// QueryStream. With stream set, it returns as soon as the result
// header arrives: the statement slot (smu) and the cancellation
// watcher stay alive, owned by the returned Rows, until the stream's
// terminal frame; without it, the result is drained and everything
// released before returning.
func (c *Conn) startStmt(ctx context.Context, stream bool, build func(id uint32) (byte, []byte)) (*Rows, int, error) {
	c.smu.Lock()
	released := false
	release := func() {
		if !released {
			released = true
			c.smu.Unlock()
		}
	}
	if err := ctx.Err(); err != nil {
		release()
		return nil, 0, err
	}
	c.nextStmt++
	id := c.nextStmt
	typ, payload := build(id)
	if err := c.writeFrame(typ, payload); err != nil {
		release()
		return nil, 0, err
	}

	watchDone := make(chan struct{})
	watchStopped := false
	go func() {
		select {
		case <-ctx.Done():
			var b wire.Buffer
			b.PutU32(id)
			c.writeFrame(wire.FrameCancel, b.B)
		case <-watchDone:
		}
	}()
	finish := func() {
		if !watchStopped {
			watchStopped = true
			close(watchDone)
		}
		release()
	}

	affected := 0
	for {
		ftyp, fpay, err := wire.ReadFrame(c.br)
		if err != nil {
			finish()
			return nil, 0, err
		}
		r := &wire.Reader{B: fpay}
		fid := r.U32()
		if fid != id {
			continue // stale frame from an earlier, cancelled exchange
		}
		switch ftyp {
		case wire.FrameRowsHeader:
			schema, err := wire.ReadSchema(r)
			if err != nil {
				finish()
				return nil, 0, err
			}
			rows := &Rows{c: c, ctx: ctx, id: id, schema: schema, finish: finish}
			if stream {
				// The caller iterates; finish runs at the terminal
				// frame (Done, Error, or a read failure).
				return rows, 0, nil
			}
			if _, err := rows.Materialize(); err != nil {
				return nil, 0, err // Materialize already finished the stream
			}
			return rows, 0, nil
		case wire.FrameExecOK:
			affected = int(r.Uvarint())
		case wire.FrameError:
			// Error is terminal: no Done follows it. Surface the
			// caller's cancellation cause when there is one.
			msg := r.String()
			finish()
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
			return nil, 0, &ServerError{Msg: msg}
		case wire.FrameDone:
			finish()
			return nil, affected, nil
		}
	}
}
