package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// The snapshot-isolation suite: readers pin a version and must see
// exactly that version — no read-uncommitted, no torn batches — while
// writers commit freely mid-drain. Run with -race: the copy-on-write
// detach in storage.Table is exactly the kind of machinery the race
// detector exists for.

// seedBatches inserts `batches` commits of `per` rows each, ids
// 0..batches*per-1 in order.
func seedBatches(t testing.TB, db *DB, batches, per int) {
	t.Helper()
	next := 0
	for b := 0; b < batches; b++ {
		stmt := "INSERT INTO iso VALUES "
		for i := 0; i < per; i++ {
			if i > 0 {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d)", next)
			next++
		}
		if _, err := db.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
}

// TestReadersPinTheirVersionWhileWriterCommits starts streaming
// readers that deliberately dawdle mid-drain while a writer keeps
// committing fixed-size batches. Every reader must observe a whole
// number of committed batches (count % per == 0 — a torn batch or an
// uncommitted row breaks that) and the exact prefix contents for that
// count (ids 0..n-1, checked via the sum's closed form).
func TestReadersPinTheirVersionWhileWriterCommits(t *testing.T) {
	const per = 100
	db := New()
	if _, err := db.Exec("CREATE TABLE iso (id INTEGER NOT NULL)"); err != nil {
		t.Fatal(err)
	}
	seedBatches(t, db, 3, per)

	stop := make(chan struct{})
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for b := 3; ; b++ {
			select {
			case <-stop:
				return
			default:
			}
			stmt := "INSERT INTO iso VALUES "
			for i := 0; i < per; i++ {
				if i > 0 {
					stmt += ", "
				}
				stmt += fmt.Sprintf("(%d)", b*per+i)
			}
			if _, err := db.Exec(stmt); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var readerWG sync.WaitGroup
	for r := 0; r < 4; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for k := 0; k < 30; k++ {
				rows, err := db.QueryStream(context.Background(), "SELECT id FROM iso")
				if err != nil {
					t.Error(err)
					return
				}
				var n, sum int64
				first := true
				for {
					b, err := rows.Next()
					if err != nil {
						t.Error(err)
						rows.Close()
						return
					}
					if b == nil {
						break
					}
					if first {
						// Dawdle with the stream open: several writer
						// commits land while this reader is mid-drain.
						time.Sleep(time.Millisecond)
						first = false
					}
					col := b.Cols[0]
					for i := 0; i < b.Len(); i++ {
						sum += col.Value(i).I
						n++
					}
				}
				if n%per != 0 {
					t.Errorf("reader saw %d rows — not a whole number of %d-row commits (torn batch or dirty read)", n, per)
				}
				if want := n * (n - 1) / 2; sum != want {
					t.Errorf("reader saw %d rows with id sum %d, want the 0..n-1 prefix sum %d", n, sum, want)
				}
			}
		}()
	}
	readerWG.Wait()
	close(stop)
	writerWG.Wait()
}

// TestStalledStreamDoesNotBlockWriter is the regression test for the
// PR 4 follow-up: a streaming SELECT that never drains must not delay
// a concurrent INSERT at all (it used to hold the read latch until the
// server's WriteTimeout unwound it). The stalled stream must then
// still yield its pinned version, byte for byte.
func TestStalledStreamDoesNotBlockWriter(t *testing.T) {
	const seeded = 20000
	db := New()
	if _, err := db.Exec("CREATE TABLE iso (id INTEGER NOT NULL)"); err != nil {
		t.Fatal(err)
	}
	seedBatches(t, db, seeded/500, 500)

	rows, err := db.QueryStream(context.Background(), "SELECT id FROM iso")
	if err != nil {
		t.Fatal(err)
	}
	firstBatch, err := rows.Next()
	if err != nil || firstBatch == nil {
		t.Fatalf("first batch: %v %v", firstBatch, err)
	}
	// The stream now stalls: nothing pulls it. A writer must commit
	// promptly regardless.
	start := time.Now()
	wctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := db.ExecContext(wctx, fmt.Sprintf("INSERT INTO iso VALUES (%d)", seeded)); err != nil {
		t.Fatalf("INSERT blocked behind a stalled stream: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("INSERT took %v behind a stalled stream", elapsed)
	}

	// Resume the stalled stream: it yields its pinned version.
	n := int64(firstBatch.Len())
	var sum int64
	col := firstBatch.Cols[0]
	for i := 0; i < firstBatch.Len(); i++ {
		sum += col.Value(i).I
	}
	for {
		b, err := rows.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		col := b.Cols[0]
		for i := 0; i < b.Len(); i++ {
			sum += col.Value(i).I
			n++
		}
	}
	if n != seeded {
		t.Fatalf("stalled stream yielded %d rows, want its pinned %d", n, seeded)
	}
	if want := int64(seeded) * (seeded - 1) / 2; sum != want {
		t.Fatalf("stalled stream contents drifted: sum %d, want %d", sum, want)
	}
}

// TestOpenTransactionInvisibleToReaders asserts snapshot isolation
// across sessions: a transaction's writes — DML and DDL — stay
// invisible to other sessions' statements until COMMIT, instead of the
// old read-uncommitted behavior between a transaction's statements.
func TestOpenTransactionInvisibleToReaders(t *testing.T) {
	db := New()
	if _, err := db.Exec("CREATE TABLE iso (id INTEGER NOT NULL)"); err != nil {
		t.Fatal(err)
	}
	seedBatches(t, db, 1, 10)

	writer := db.NewSession()
	defer writer.Close()
	ctx := context.Background()
	if _, err := writer.ExecContext(ctx, "BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.ExecContext(ctx, "INSERT INTO iso VALUES (100)"); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.ExecContext(ctx, "CREATE TABLE iso_new (x INTEGER)"); err != nil {
		t.Fatal(err)
	}

	// Another session's reads: pre-transaction state only.
	n, err := db.QueryScalar("SELECT COUNT(*) FROM iso")
	if err != nil {
		t.Fatal(err)
	}
	if n.I != 10 {
		t.Fatalf("reader saw %d rows of an uncommitted INSERT's table, want 10", n.I)
	}
	if _, err := db.Query("SELECT * FROM iso_new"); err == nil {
		t.Fatal("reader saw a table created by an uncommitted transaction")
	}
	// The writer's own statements read their writes.
	wn, err := writer.QueryContext(ctx, "SELECT COUNT(*) FROM iso")
	if err != nil {
		t.Fatal(err)
	}
	if wn.Value(0, 0).I != 11 {
		t.Fatalf("writer saw %d rows of its own transaction, want 11", wn.Value(0, 0).I)
	}

	if _, err := writer.ExecContext(ctx, "COMMIT"); err != nil {
		t.Fatal(err)
	}
	n, err = db.QueryScalar("SELECT COUNT(*) FROM iso")
	if err != nil {
		t.Fatal(err)
	}
	if n.I != 11 {
		t.Fatalf("post-commit reader saw %d rows, want 11", n.I)
	}
	if _, err := db.Query("SELECT * FROM iso_new"); err != nil {
		t.Fatalf("post-commit reader cannot see the committed table: %v", err)
	}
}

// TestDBLevelTransactionInvisibleToSessions asserts the visibility
// scoping of a DB-level transaction: the embedded caller's own reads
// see its staged writes (single-caller API), but an unrelated
// Session's reads keep the committed versions.
func TestDBLevelTransactionInvisibleToSessions(t *testing.T) {
	db := New()
	if _, err := db.Exec("CREATE TABLE iso (id INTEGER NOT NULL)"); err != nil {
		t.Fatal(err)
	}
	seedBatches(t, db, 1, 10)

	if _, err := db.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO iso VALUES (100)"); err != nil {
		t.Fatal(err)
	}
	// The embedded caller reads its own staged writes.
	n, err := db.QueryScalar("SELECT COUNT(*) FROM iso")
	if err != nil {
		t.Fatal(err)
	}
	if n.I != 11 {
		t.Fatalf("DB-level owner saw %d rows of its own transaction, want 11", n.I)
	}
	// A Session (a wire client, say) sees only committed state.
	s := db.NewSession()
	defer s.Close()
	sr, err := s.QueryContext(context.Background(), "SELECT COUNT(*) FROM iso")
	if err != nil {
		t.Fatal(err)
	}
	if got := sr.Value(0, 0).I; got != 10 {
		t.Fatalf("session saw %d rows of a DB-level uncommitted transaction, want 10", got)
	}
	if _, err := db.Exec("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	n, err = db.QueryScalar("SELECT COUNT(*) FROM iso")
	if err != nil {
		t.Fatal(err)
	}
	if n.I != 10 {
		t.Fatalf("post-rollback count %d, want 10", n.I)
	}
}

// TestRollbackRestoresSnapshots asserts the version-swap undo: a
// transaction's writes, truncates, drops and creates all unwind, and a
// reader pinned before the rollback is untouched by it.
func TestRollbackRestoresSnapshots(t *testing.T) {
	db := New()
	if _, err := db.Exec("CREATE TABLE iso (id INTEGER NOT NULL)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE gone (id INTEGER NOT NULL)"); err != nil {
		t.Fatal(err)
	}
	seedBatches(t, db, 1, 10)

	s := db.NewSession()
	defer s.Close()
	ctx := context.Background()
	for _, stmt := range []string{
		"BEGIN",
		"INSERT INTO iso VALUES (100), (101)",
		"DROP TABLE gone",
		"CREATE TABLE made (x INTEGER)",
		"TRUNCATE iso",
	} {
		if _, err := s.ExecContext(ctx, stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	rows, err := db.QueryStream(context.Background(), "SELECT id FROM iso")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecContext(ctx, "ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	data, err := rows.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if data.Len() != 10 {
		t.Fatalf("reader pinned across rollback saw %d rows, want 10", data.Len())
	}

	n, err := db.QueryScalar("SELECT COUNT(*) FROM iso")
	if err != nil {
		t.Fatal(err)
	}
	if n.I != 10 {
		t.Fatalf("rollback left %d rows, want 10", n.I)
	}
	if !db.Catalog().Has("gone") {
		t.Fatal("rollback did not restore the dropped table")
	}
	if db.Catalog().Has("made") {
		t.Fatal("rollback kept the created table")
	}
	if db.MVCC().LiveReaders() != 0 {
		t.Fatalf("%d snapshot pins leaked", db.MVCC().LiveReaders())
	}
}

// TestLegacyLatchModeStillWorks pins the ablation baseline: with
// snapshot reads off, results are identical (the differential harness
// asserts this at scale; here just a smoke check) and streams couple
// readers to writers again.
func TestLegacyLatchModeStillWorks(t *testing.T) {
	db := New()
	if _, err := db.Exec("CREATE TABLE iso (id INTEGER NOT NULL)"); err != nil {
		t.Fatal(err)
	}
	seedBatches(t, db, 2, 50)

	want, err := db.Query("SELECT id FROM iso ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	db.SetSnapshotReads(false)
	if db.SnapshotReads() {
		t.Fatal("SnapshotReads still true")
	}
	got, err := db.Query("SELECT id FROM iso ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("legacy mode returned %d rows, want %d", got.Len(), want.Len())
	}
	for i := 0; i < got.Len(); i++ {
		if got.Value(i, 0).I != want.Value(i, 0).I {
			t.Fatalf("row %d differs between modes", i)
		}
	}
}
