package engine

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Session is one client's scope over a shared DB: session variables
// (statement_timeout, parallelism), a transaction scope, and the
// cross-session write gate. The network server gives every connection
// its own Session; the embedded facade routes through a default one so
// SET works identically in the REPL and over the wire.
//
// A session runs one statement at a time and is not safe for
// concurrent use by multiple goroutines (cancel a running statement
// through its context instead).
type Session struct {
	db *DB

	// maxWorkers caps this session's per-statement parallelism
	// (server-side admission control). 0 = no cap.
	maxWorkers int

	timeout  time.Duration // statement_timeout; 0 = disabled
	workers  int           // SET parallelism; 0 = engine default
	workMem  int64         // SET work_mem (bytes); 0 = engine default
	ownsGate bool          // this session holds the write gate (open txn)

	info *sessionInfo // registry row (vx$sessions)
	// lastTrace and queueWait are atomics: a statement may run in one
	// goroutine while another (the server's writer, or a concurrent
	// caller blocked on the write gate) stamps the next statement's
	// queue wait or reads SHOW TRACE state.
	lastTrace atomic.Pointer[trace.Collector] // most recent traced statement (SHOW TRACE)
	queueWait atomic.Int64                    // pending admission wait (ns) for the next statement
}

// NewSession returns a fresh session over the database.
func (db *DB) NewSession() *Session {
	return &Session{db: db, info: db.registerSession(0)}
}

// NewSessionMaxWorkers returns a session whose per-statement
// parallelism is capped at max (the server's per-statement worker
// cap). max <= 0 means uncapped.
func (db *DB) NewSessionMaxWorkers(max int) *Session {
	if max < 0 {
		max = 0
	}
	return &Session{db: db, maxWorkers: max, info: db.registerSession(max)}
}

// StatementTimeout returns the session's statement_timeout (0 =
// disabled).
func (s *Session) StatementTimeout() time.Duration { return s.timeout }

// StatementContext applies the session's statement_timeout to a
// statement context — the server's graph verbs run under it too, so
// SET statement_timeout governs every statement type, not just SQL.
func (s *Session) StatementContext(ctx context.Context) (context.Context, context.CancelFunc) {
	return s.stmtCtx(ctx)
}

// EffectiveWorkers resolves the per-statement worker count (session
// override, engine default, admission cap) — what SHOW parallelism
// reports. The server passes it into graph-verb runs so the
// per-statement cap holds for the heaviest statements as well.
func (s *Session) EffectiveWorkers() int { return s.effectiveWorkers() }

// InTransaction reports whether this session holds an open
// transaction.
func (s *Session) InTransaction() bool { return s.ownsGate }

// Close releases the session's resources: an open transaction is
// rolled back, the write gate returned, and the session leaves the
// vx$sessions registry.
func (s *Session) Close() error {
	s.db.unregisterSession(s.info.id)
	if !s.ownsGate {
		return nil
	}
	s.ownsGate = false
	err := s.db.Rollback()
	s.db.ReleaseWriteGate()
	return err
}

// stmtCtx applies statement_timeout to a statement's context.
func (s *Session) stmtCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, s.timeout)
}

// effectiveWorkMem resolves the per-statement memory grant in bytes
// (session override or engine default; 0 = unlimited). The resolved
// value — not the "default" sentinel — flows into planning and the
// plan-cache key, so a SET work_mem on the engine default never
// revives a plan whose frozen grant no longer matches.
func (s *Session) effectiveWorkMem() int64 {
	if s.workMem > 0 {
		return s.workMem
	}
	return s.db.WorkMem()
}

// effectiveWorkers resolves the per-statement worker count from the
// session override, the engine default, and the admission cap.
func (s *Session) effectiveWorkers() int {
	w := s.workers
	if w == 0 {
		w = s.db.Parallelism()
	}
	if s.maxWorkers > 0 && w > s.maxWorkers {
		w = s.maxWorkers
	}
	return w
}

// Run executes one statement of any kind. SELECT and SHOW return
// materialized rows (and a Result whose RowsAffected is the row
// count); everything else returns nil rows. Embedded callers and the
// REPL dispatch through it; the wire server uses RunStream to avoid
// materializing results it is about to serialize.
func (s *Session) Run(ctx context.Context, text string) (*Rows, Result, error) {
	rows, res, err := s.RunStream(ctx, text)
	if err != nil || rows == nil {
		return rows, res, err
	}
	if _, err := rows.Materialize(); err != nil {
		rows.Close()
		return nil, Result{}, err
	}
	return rows, Result{RowsAffected: rows.Len()}, nil
}

// RunStream executes one statement of any kind without materializing
// its result: a SELECT returns streaming rows whose batches are
// produced as the caller pulls them (the read latch, operator tree
// and statement timeout live until the rows are drained or closed), so
// the first batch is available in O(first batch) time, not O(result).
// SHOW returns (small) materialized rows; everything else returns nil
// rows and runs to completion before returning. The returned Result's
// RowsAffected is meaningful only for non-SELECT statements.
func (s *Session) RunStream(ctx context.Context, text string) (*Rows, Result, error) {
	enter := time.Now()
	st, err := sql.Parse(text)
	parseDur := time.Since(enter)
	if err != nil {
		return nil, Result{}, err
	}
	s.db.countStmt(st)
	switch t := st.(type) {
	case *sql.ExplainStmt:
		sctx, cancel := s.stmtCtx(ctx)
		defer cancel()
		rows, err := s.runExplain(sctx, t, text)
		if err != nil {
			return nil, Result{}, err
		}
		return rows, Result{RowsAffected: rows.Len()}, nil
	case *sql.SetStmt:
		return nil, Result{}, s.applySet(t)
	case *sql.ShowStmt:
		rows, err := s.show(t.Name)
		if err != nil {
			return nil, Result{}, err
		}
		return rows, Result{RowsAffected: rows.Len()}, nil
	case *sql.BeginStmt:
		// BEGIN can block on the write gate, so statement_timeout
		// governs it like any other statement.
		bctx, cancel := s.stmtCtx(ctx)
		defer cancel()
		return nil, Result{}, s.begin(bctx)
	case *sql.CommitStmt:
		return nil, Result{}, s.endTxn(true)
	case *sql.RollbackStmt:
		return nil, Result{}, s.endTxn(false)
	}

	if sel, ok := st.(*sql.SelectStmt); ok {
		// The timeout context must outlive this call: it governs the
		// whole stream, so its cancel runs when the rows finish. A
		// session reading inside its own transaction sees its staged
		// writes; everyone else reads committed snapshots.
		kind := readerSession
		if s.ownsGate {
			kind = readerTxnOwner
		}
		start := time.Now()
		tc := s.startTrace(text, enter, parseDur)
		sctx, cancel := s.stmtCtx(ctx)
		sctx = trace.WithCollector(sctx, tc)
		rows, err := s.db.queryStreamParsed(sctx, sel, s.effectiveWorkers(), s.effectiveWorkMem(), kind)
		if err != nil {
			cancel()
			s.db.finishTrace(tc)
			return nil, Result{}, err
		}
		rows.cleanup = append(rows.cleanup, cancel)
		s.db.hookSlowQuery(rows, text, start, tc)
		return rows, Result{}, nil
	}

	start := time.Now()
	tc := s.startTrace(text, enter, parseDur)
	defer s.db.finishTrace(tc)
	sctx, cancel := s.stmtCtx(ctx)
	defer cancel()
	sctx = trace.WithCollector(sctx, tc)
	// Write statement. Outside a transaction it is an auto-commit
	// write: hold the cross-session gate for just this statement so it
	// cannot interleave with (and be undone by the rollback of)
	// another session's transaction.
	if !s.ownsGate {
		// Eligible auto-commit DML takes the sharded fast path: shared
		// gate + per-shard statement locks, so sessions writing disjoint
		// shards commit in parallel.
		if res, handled, err := s.db.tryFastWrite(sctx, st, text, nil); handled {
			s.db.observeStatement(text, time.Since(start), int64(res.RowsAffected), stmtKind(st), tc.ID())
			return nil, res, err
		}
		endGate := tc.Begin("gate")
		if err := s.db.AcquireWriteGate(sctx); err != nil {
			return nil, Result{}, err
		}
		endGate("exclusive write gate")
		defer s.db.ReleaseWriteGate()
	}
	endExec := tc.Begin("exec")
	res, err := s.db.execParsed(sctx, st, text, nil)
	endExec(fmt.Sprintf("rows=%d", res.RowsAffected))
	s.db.observeStatement(text, time.Since(start), int64(res.RowsAffected), stmtKind(st), tc.ID())
	return nil, res, err
}

// RunStreamBound is RunStream for a prepared execution: text contains
// $1..$n placeholders and args carries their values, which bind real
// Param nodes instead of being substituted into the text. A statement
// is parsed — and, for a cacheable SELECT, planned — at most once per
// (text, argument-type signature) pair across the whole DB; repeated
// executions just bind the arguments and run. Extra arguments beyond
// the statement's highest $n are permitted (and ignored), matching the
// substitution path.
func (s *Session) RunStreamBound(ctx context.Context, text string, args []storage.Value) (*Rows, Result, error) {
	enter := time.Now()
	key := cacheKey(text, args)
	st, nParams, err := s.db.plans.parse(text, key)
	parseDur := time.Since(enter)
	if err != nil {
		return nil, Result{}, err
	}
	if nParams > len(args) {
		return nil, Result{}, fmt.Errorf("engine: statement wants %d arguments, got %d", nParams, len(args))
	}

	switch st.(type) {
	case *sql.SetStmt, *sql.ShowStmt, *sql.BeginStmt, *sql.CommitStmt, *sql.RollbackStmt, *sql.ExplainStmt:
		// Session-control statements take no parameters and are cheap,
		// and EXPLAIN plans from scratch anyway; run them through the
		// plain-text path (which also counts them).
		return s.RunStream(ctx, text)
	}
	s.db.countStmt(st)

	if sel, ok := st.(*sql.SelectStmt); ok {
		kind := readerSession
		if s.ownsGate {
			kind = readerTxnOwner
		}
		start := time.Now()
		tc := s.startTrace(text, enter, parseDur)
		sctx, cancel := s.stmtCtx(ctx)
		sctx = trace.WithCollector(sctx, tc)
		rows, err := s.db.queryStreamBound(sctx, sel, key, args, s.effectiveWorkers(), s.effectiveWorkMem(), kind)
		if err != nil {
			cancel()
			s.db.finishTrace(tc)
			return nil, Result{}, err
		}
		rows.cleanup = append(rows.cleanup, cancel)
		s.db.hookSlowQuery(rows, text, start, tc)
		return rows, Result{}, nil
	}

	// Parameterized DML executes with bound Param nodes but WAL-logs the
	// substituted rendering: replay reads text alone, with no argument
	// stream alongside it.
	ps := plan.NewParams(args)
	walText := text
	if nParams > 0 {
		walText, err = sql.SubstituteParams(text, args)
		if err != nil {
			return nil, Result{}, err
		}
	}
	start := time.Now()
	tc := s.startTrace(walText, enter, parseDur)
	defer s.db.finishTrace(tc)
	sctx, cancel := s.stmtCtx(ctx)
	defer cancel()
	sctx = trace.WithCollector(sctx, tc)
	if !s.ownsGate {
		if res, handled, err := s.db.tryFastWrite(sctx, st, walText, ps); handled {
			s.db.observeStatement(walText, time.Since(start), int64(res.RowsAffected), stmtKind(st), tc.ID())
			return nil, res, err
		}
		endGate := tc.Begin("gate")
		if err := s.db.AcquireWriteGate(sctx); err != nil {
			return nil, Result{}, err
		}
		endGate("exclusive write gate")
		defer s.db.ReleaseWriteGate()
	}
	endExec := tc.Begin("exec")
	res, err := s.db.execParsed(sctx, st, walText, ps)
	endExec(fmt.Sprintf("rows=%d", res.RowsAffected))
	s.db.observeStatement(walText, time.Since(start), int64(res.RowsAffected), stmtKind(st), tc.ID())
	return nil, res, err
}

// QueryContext runs a SELECT (or SHOW) through the session.
func (s *Session) QueryContext(ctx context.Context, text string) (*Rows, error) {
	rows, _, err := s.Run(ctx, text)
	if err != nil {
		return nil, err
	}
	if rows == nil {
		return nil, fmt.Errorf("engine: statement returned no rows; use Exec")
	}
	return rows, nil
}

// ExecContext runs any non-SELECT statement through the session.
func (s *Session) ExecContext(ctx context.Context, text string) (Result, error) {
	_, res, err := s.Run(ctx, text)
	return res, err
}

func (s *Session) begin(ctx context.Context) error {
	if s.ownsGate {
		return fmt.Errorf("engine: transaction already open in this session")
	}
	if err := s.db.AcquireWriteGate(ctx); err != nil {
		return err
	}
	if err := s.db.beginSession(); err != nil {
		s.db.ReleaseWriteGate()
		return err
	}
	s.ownsGate = true
	s.info.inTxn.Store(true)
	return nil
}

func (s *Session) endTxn(commit bool) error {
	if !s.ownsGate {
		return fmt.Errorf("engine: no open transaction in this session")
	}
	var err error
	if commit {
		err = s.db.Commit()
	} else {
		err = s.db.Rollback()
	}
	if err != nil && s.db.InTransaction() {
		// COMMIT failed with the transaction still open (e.g. a WAL
		// write error): keep the gate and the session's ownership so
		// the client can retry or ROLLBACK — releasing here would
		// orphan an open undo scope that a later rollback could use
		// to clobber other sessions' committed writes.
		return err
	}
	s.ownsGate = false
	s.info.inTxn.Store(false)
	s.db.ReleaseWriteGate()
	return err
}

// Session variables. temp_tablespace, temp_file_limit and trace_sample
// configure engine-global state (spill placement is a process-wide
// filesystem; the tracer is per-DB) but are set through the session
// SET statement like everything else.
const (
	varStatementTimeout = "statement_timeout"
	varParallelism      = "parallelism"
	varWorkerBudget     = "worker_budget"
	varWorkMem          = "work_mem"
	varMemoryBudget     = "memory_budget"
	varTempTablespace   = "temp_tablespace"
	varTempFileLimit    = "temp_file_limit"
	varTraceSample      = "trace_sample"
)

// applySet assigns a session variable from SET <name> = <expr>.
func (s *Session) applySet(st *sql.SetStmt) error {
	v, err := evalConst(st.Value, s.db.Funcs())
	if err != nil {
		return fmt.Errorf("engine: SET %s: %w", st.Name, err)
	}
	switch strings.ToLower(st.Name) {
	case varStatementTimeout:
		ms := v.AsInt()
		if v.Null || ms < 0 {
			return fmt.Errorf("engine: SET statement_timeout wants milliseconds >= 0, got %s", v)
		}
		s.timeout = time.Duration(ms) * time.Millisecond
		return nil
	case varParallelism:
		n := v.AsInt()
		if v.Null || n < 0 {
			return fmt.Errorf("engine: SET parallelism wants a worker count >= 0, got %s", v)
		}
		s.workers = int(n)
		s.info.workers.Store(n)
		return nil
	case varWorkMem:
		n := v.AsInt()
		if v.Null || n < 0 {
			return fmt.Errorf("engine: SET work_mem wants bytes >= 0, got %s", v)
		}
		s.workMem = n // 0 restores the engine default
		s.info.workMem.Store(n)
		return nil
	case varTempTablespace:
		if v.Type != storage.TypeString || v.Null {
			return fmt.Errorf("engine: SET temp_tablespace wants a directory string, got %s", v)
		}
		return storage.SetSpillDir(v.S) // '' restores the system temp dir
	case varTempFileLimit:
		n := v.AsInt()
		if v.Null || n < 0 {
			return fmt.Errorf("engine: SET temp_file_limit wants bytes >= 0, got %s", v)
		}
		storage.SetSpillDiskCap(n) // 0 removes the cap
		return nil
	case varTraceSample:
		n := v.AsInt()
		if v.Null || n < 0 {
			return fmt.Errorf("engine: SET trace_sample wants a stride >= 0, got %s", v)
		}
		s.db.tracer.SetSampling(n)
		return nil
	default:
		return fmt.Errorf("engine: unknown session variable %q", st.Name)
	}
}

// show materializes a session variable as a one-row result, or the
// whole metrics registry for SHOW STATS.
func (s *Session) show(name string) (*Rows, error) {
	if strings.EqualFold(name, "stats") {
		return s.showStats()
	}
	if strings.EqualFold(name, "trace") {
		return s.showTrace()
	}
	var v int64
	switch strings.ToLower(name) {
	case varStatementTimeout:
		v = s.timeout.Milliseconds()
	case varParallelism:
		v = int64(s.effectiveWorkers())
	case varWorkerBudget:
		v = int64(s.db.budget.Capacity())
	case varWorkMem:
		v = s.effectiveWorkMem()
	case varMemoryBudget:
		v = s.db.memPool.Capacity()
	case varTempFileLimit:
		v = storage.SpillDiskCap()
	case varTraceSample:
		v = s.db.tracer.Sampling()
	case varTempTablespace:
		b := storage.NewBatch(storage.NewSchema(storage.Col(varTempTablespace, storage.TypeString)))
		if err := b.AppendRow(storage.Str(storage.SpillDirPath())); err != nil {
			return nil, err
		}
		return MaterializedRows(b), nil
	default:
		return nil, fmt.Errorf("engine: unknown session variable %q", name)
	}
	b := storage.NewBatch(storage.NewSchema(storage.Col(strings.ToLower(name), storage.TypeInt64)))
	if err := b.AppendRow(storage.Int64(v)); err != nil {
		return nil, err
	}
	return MaterializedRows(b), nil
}

// showTrace renders the session's most recent traced statement, one
// row per span in append order — the quick interactive view; the
// vx$trace_spans system table serves the queryable form.
func (s *Session) showTrace() (*Rows, error) {
	b := storage.NewBatch(storage.NewSchema(
		storage.Col("seq", storage.TypeInt64),
		storage.Col("depth", storage.TypeInt64),
		storage.Col("stage", storage.TypeString),
		storage.Col("start_us", storage.TypeInt64),
		storage.Col("dur_us", storage.TypeInt64),
		storage.Col("detail", storage.TypeString),
	))
	if tc := s.lastTrace.Load(); tc != nil {
		for i, sp := range tc.Spans() {
			if err := b.AppendRow(
				storage.Int64(int64(i)),
				storage.Int64(int64(sp.Depth)),
				storage.Str(sp.Stage),
				storage.Int64(sp.StartNs/1e3),
				storage.Int64(sp.DurNs/1e3),
				storage.Str(sp.Detail),
			); err != nil {
				return nil, err
			}
		}
	}
	return MaterializedRows(b), nil
}

// showStats materializes the metrics registry as a two-column result
// (name VARCHAR, value BIGINT), sorted by name — the SHOW STATS
// statement every client sees over the wire.
func (s *Session) showStats() (*Rows, error) {
	b := storage.NewBatch(storage.NewSchema(
		storage.Col("name", storage.TypeString),
		storage.Col("value", storage.TypeInt64),
	))
	for _, st := range s.db.obs.Snapshot() {
		if err := b.AppendRow(storage.Str(st.Name), storage.Int64(st.Value)); err != nil {
			return nil, err
		}
	}
	return MaterializedRows(b), nil
}

// evalConst evaluates a constant expression (no column references)
// against an empty scope — the same machinery INSERT VALUES rows use.
func evalConst(e sql.Expr, funcs *expr.Registry) (storage.Value, error) {
	bound, err := plan.BindExpr(e, &plan.Scope{}, funcs)
	if err != nil {
		return storage.Value{}, err
	}
	return bound.Eval(expr.Row{})
}
