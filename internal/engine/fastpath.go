package engine

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
)

// The sharded write fast path: an eligible auto-commit DML statement
// runs under the SHARED write gate and the SHARED engine latch,
// serializing against other writers only through the per-shard
// statement locks of the table it touches. Writers on disjoint shards
// of the same table — or on different tables — proceed in parallel,
// which is the point of partitioning the storage layer; the exclusive
// gate survives for transactions, DDL, and every statement shape the
// fast path declines.
//
// Eligibility: snapshot reads are on, no transaction is open, and the
// statement is a single-table INSERT ... VALUES (locks just the shards
// its rows hash to), UPDATE, or DELETE. An UPDATE or DELETE whose
// WHERE pins the partition key to a constant (or bound parameter)
// locks only that key's shard — point writes on disjoint keys commit
// in parallel; any other WHERE locks every shard of the table (its
// footprint is unknown before evaluation, and the
// read-match-then-mutate sequence must be atomic against concurrent
// writers). Readers never block on any of this: they pin MVCC
// snapshots, and ShardedTable.SnapshotShard's brief statement-lock
// acquisition guarantees each shard is captured whole — never mid-
// statement. Atomicity ACROSS shards is the per-shard-lock tradeoff:
// a reader pinning its snapshot while a fast-path statement is in
// flight may see some shards before and some after that statement
// (each shard internally consistent). Transactions keep full
// whole-database atomicity via the exclusive gate.
//
// WAL ordering: two concurrent fast-path statements append to the log
// in whatever order they finish. That is sound because they commute —
// overlapping footprints are serialized by the shard statement locks,
// so concurrent statements touch disjoint rows and replay in either
// order yields the same state.

// tryFastWrite attempts the fast path for st. It returns handled=false
// (and no error) when the statement is ineligible — the caller then
// falls back to the exclusive gate and serialized execution. When
// handled, the statement ran to completion (res/err are final). For a
// prepared execution ps carries the bound arguments and text must be
// the substituted rendering (the WAL replays text alone).
func (db *DB) tryFastWrite(ctx context.Context, st sql.Statement, text string, ps *plan.Params) (Result, bool, error) {
	switch s := st.(type) {
	case *sql.InsertStmt:
		if s.Select != nil {
			// INSERT ... SELECT may read the target table; keep it on
			// the serialized path.
			db.obs.Counter("engine.fastpath.declined").Inc()
			return Result{}, false, nil
		}
	case *sql.UpdateStmt, *sql.DeleteStmt:
	default:
		return Result{}, false, nil
	}
	// An already-cancelled statement must not commit. The gate select
	// below picks an arbitrary ready case, so without this check a
	// cancelled context could still slip through and run.
	if err := ctx.Err(); err != nil {
		return Result{}, true, err
	}
	if err := db.acquireSharedGate(ctx); err != nil {
		return Result{}, false, err
	}
	db.mu.RLock()
	if !db.snapshotReads || db.noFastWrites || db.txn != nil {
		// Legacy read mode wants the exclusive latch; an open DB-level
		// transaction must stage pre-images under db.mu. Fall back.
		db.mu.RUnlock()
		db.releaseSharedGate()
		db.obs.Counter("engine.fastpath.declined").Inc()
		return Result{}, false, nil
	}
	var res Result
	var err error
	switch s := st.(type) {
	case *sql.InsertStmt:
		res, err = db.fastInsert(ctx, s, ps)
	case *sql.UpdateStmt:
		res, err = db.fastUpdate(s, ps)
	case *sql.DeleteStmt:
		res, err = db.fastDelete(s, ps)
	}
	if err == nil {
		db.logStatement(ctx, text) // txn is nil: appends straight to the WAL
		db.mvcc.Publish()
	}
	db.mu.RUnlock()
	db.releaseSharedGate()
	db.obs.Counter("engine.fastpath.taken").Inc()
	return res, true, err
}

// fastInsert evaluates the VALUES rows, computes the set of shards they
// hash to, and appends under just those shards' statement locks.
func (db *DB) fastInsert(ctx context.Context, s *sql.InsertStmt, ps *plan.Params) (Result, error) {
	t, err := db.cat.Get(s.Table)
	if err != nil {
		return Result{}, err
	}
	colIdx, input, err := db.buildInsertInput(ctx, s, t, ps)
	if err != nil {
		return Result{}, err
	}
	shards := insertShardSet(t, colIdx, input)
	t.LockShards(shards)
	defer t.UnlockShards(shards)
	n, err := appendInsertRows(t, colIdx, input)
	if err != nil {
		return Result{}, err
	}
	return Result{RowsAffected: n}, nil
}

// insertShardSet returns the shards the input rows route to: the
// statement's write footprint, locked for its duration.
func insertShardSet(t *storage.Table, colIdx []int, input *storage.Batch) []int {
	if t.NumShards() == 1 {
		return []int{0}
	}
	key := t.ShardKey()
	kpos := -1
	for k, j := range colIdx {
		if j == key {
			kpos = k
		}
	}
	seen := make(map[int]bool)
	var shards []int
	nullKey := storage.Null(t.Schema().Cols[key].Type)
	for i := 0; i < input.Len(); i++ {
		v := nullKey // key column unspecified: the row carries NULL
		if kpos >= 0 {
			v = input.Cols[kpos].Value(i)
		}
		sh, err := t.ShardOf(v)
		if err != nil {
			// Uncoercible key: AppendRow will route it to shard 0 (and
			// likely fail); lock shard 0 so the failure is serialized.
			sh = 0
		}
		if !seen[sh] {
			seen[sh] = true
			shards = append(shards, sh)
		}
	}
	if len(shards) == 0 {
		shards = []int{0} // zero rows: lock something so the path is uniform
	}
	return shards
}

// fastUpdate runs UPDATE under shard statement locks. A WHERE that
// pins the partition key confines match and mutation to one shard —
// only it is locked, so point updates on disjoint keys run in
// parallel. Updating the key column itself falls back to the
// all-shards path (UpdateInPlace never re-routes rows, so semantics
// match either way; the conservative footprint keeps the invariant
// "a row's shard always agrees with its key hash" obviously intact).
func (db *DB) fastUpdate(s *sql.UpdateStmt, ps *plan.Params) (Result, error) {
	t, err := db.cat.Get(s.Table)
	if err != nil {
		return Result{}, err
	}
	if shard, ok := pinnedShard(t, s.Where, ps); ok && !updatesShardKey(t, s.Set) {
		one := []int{shard}
		t.LockShards(one)
		defer t.UnlockShards(one)
		return db.execUpdateShard(s, ps, t, shard)
	}
	all := t.AllShards()
	t.LockShards(all)
	defer t.UnlockShards(all)
	return db.execUpdate(s, ps)
}

// fastDelete mirrors fastUpdate for DELETE.
func (db *DB) fastDelete(s *sql.DeleteStmt, ps *plan.Params) (Result, error) {
	t, err := db.cat.Get(s.Table)
	if err != nil {
		return Result{}, err
	}
	if shard, ok := pinnedShard(t, s.Where, ps); ok {
		one := []int{shard}
		t.LockShards(one)
		defer t.UnlockShards(one)
		return db.execDeleteShard(s, ps, t, shard)
	}
	all := t.AllShards()
	t.LockShards(all)
	defer t.UnlockShards(all)
	return db.execDelete(s, ps)
}

// pinnedShard reports the single shard a WHERE clause confines the
// statement to: some AND-level conjunct equates the partition key with
// a literal (or bound parameter) whose type matches the key column
// under the same rules the planner's read-side routing applies.
func pinnedShard(t *storage.Table, where sql.Expr, ps *plan.Params) (int, bool) {
	if t.NumShards() < 2 || t.ShardKey() < 0 || where == nil {
		return 0, false
	}
	for _, cj := range conjuncts(where, nil) {
		b, ok := cj.(*sql.BinExpr)
		if !ok || b.Op != "=" {
			continue
		}
		if sh, ok := pinShard(t, b.L, b.R, ps); ok {
			return sh, true
		}
		if sh, ok := pinShard(t, b.R, b.L, ps); ok {
			return sh, true
		}
	}
	return 0, false
}

// conjuncts flattens a tree of ANDs into its conjunct list.
func conjuncts(e sql.Expr, into []sql.Expr) []sql.Expr {
	if b, ok := e.(*sql.BinExpr); ok && strings.EqualFold(b.Op, "AND") {
		return conjuncts(b.R, conjuncts(b.L, into))
	}
	return append(into, e)
}

// pinShard matches `<partition key> = <literal or parameter>`. The
// type rules mirror the planner's shardForConjunct: a value whose type
// does not hash identically to the key column's representation after
// coercion declines the pin (the comparison could still match rows in
// other shards under cross-type equality).
func pinShard(t *storage.Table, idExpr, valExpr sql.Expr, ps *plan.Params) (int, bool) {
	id, ok := idExpr.(*sql.Ident)
	if !ok || !strings.EqualFold(id.Name, t.Schema().Cols[t.ShardKey()].Name) {
		return 0, false
	}
	if id.Qualifier != "" && !strings.EqualFold(id.Qualifier, t.Name()) {
		return 0, false
	}
	kt := t.Schema().Cols[t.ShardKey()].Type
	var v storage.Value
	switch l := valExpr.(type) {
	case *sql.IntLit:
		if kt != storage.TypeInt64 && kt != storage.TypeFloat64 {
			return 0, false
		}
		v = storage.Int64(l.V)
	case *sql.FloatLit:
		if kt != storage.TypeFloat64 {
			return 0, false
		}
		v = storage.Float64(l.V)
	case *sql.StringLit:
		if kt != storage.TypeString {
			return 0, false
		}
		v = storage.Str(l.V)
	case *sql.BoolLit:
		if kt != storage.TypeBool {
			return 0, false
		}
		v = storage.Bool(l.V)
	case *sql.Param:
		if ps == nil || l.N < 1 || l.N > len(ps.Types) {
			return 0, false
		}
		av, ok := ps.Slot.Arg(l.N)
		if !ok || av.Null {
			// `key = NULL` matches nothing; all-shards is still correct
			// and the statement is a no-op either way.
			return 0, false
		}
		switch ps.Types[l.N-1] {
		case storage.TypeInt64:
			if kt != storage.TypeInt64 && kt != storage.TypeFloat64 {
				return 0, false
			}
		case storage.TypeFloat64:
			if kt != storage.TypeFloat64 {
				return 0, false
			}
		case storage.TypeString:
			if kt != storage.TypeString {
				return 0, false
			}
		case storage.TypeBool:
			if kt != storage.TypeBool {
				return 0, false
			}
		default:
			return 0, false
		}
		v = av
	default:
		return 0, false
	}
	sh, err := t.ShardOf(v)
	if err != nil {
		return 0, false
	}
	return sh, true
}

// updatesShardKey reports whether any SET assignment targets the
// partition key column.
func updatesShardKey(t *storage.Table, set []sql.Assignment) bool {
	for _, as := range set {
		if t.Schema().IndexOf(as.Column) == t.ShardKey() {
			return true
		}
	}
	return false
}

// matchShardRows is matchRows confined to one shard: the WHERE is
// evaluated over the shard's local rows and the returned indexes are
// shard-local (valid for UpdateShardInPlace / DeleteShardWhere), along
// with the batch they index into. The caller must hold the shard's
// statement lock across match and mutation.
func (db *DB) matchShardRows(t *storage.Table, shard int, where sql.Expr, ps *plan.Params) ([]int, *storage.Batch, error) {
	data := t.ShardBatch(shard)
	n := data.Len()
	if where == nil { // unreachable on the pruned path; kept total
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx, data, nil
	}
	sc := plan.NewScope(t.Name(), t.Schema())
	pred, err := plan.BindExprParams(where, sc, db.funcs, ps)
	if err != nil {
		return nil, nil, err
	}
	if pred.Type() != storage.TypeBool {
		return nil, nil, fmt.Errorf("engine: WHERE must be boolean, got %s", pred.Type())
	}
	var idx []int
	for i := 0; i < n; i++ {
		ok, err := expr.EvalBool(pred, expr.Row{Batch: data, Idx: i})
		if err != nil {
			return nil, nil, err
		}
		if ok {
			idx = append(idx, i)
		}
	}
	return idx, data, nil
}

// execUpdateShard is execUpdate confined to one locked shard.
func (db *DB) execUpdateShard(s *sql.UpdateStmt, ps *plan.Params, t *storage.Table, shard int) (Result, error) {
	schema := t.Schema()
	idx, data, err := db.matchShardRows(t, shard, s.Where, ps)
	if err != nil {
		return Result{}, err
	}
	if len(idx) == 0 {
		return Result{}, nil
	}
	sc := plan.NewScope(t.Name(), schema)
	type colUpdate struct {
		col  int
		vals []storage.Value
	}
	updates := make([]colUpdate, 0, len(s.Set))
	for _, as := range s.Set {
		j := schema.IndexOf(as.Column)
		if j < 0 {
			return Result{}, fmt.Errorf("engine: table %s has no column %q", s.Table, as.Column)
		}
		bound, err := plan.BindExprParams(as.E, sc, db.funcs, ps)
		if err != nil {
			return Result{}, err
		}
		vals := make([]storage.Value, len(idx))
		for k, i := range idx {
			v, err := bound.Eval(expr.Row{Batch: data, Idx: i})
			if err != nil {
				return Result{}, err
			}
			if v.Null && schema.Cols[j].NotNull {
				return Result{}, fmt.Errorf("engine: NOT NULL constraint violated on %s.%s", s.Table, as.Column)
			}
			cv, err := storage.Coerce(v, schema.Cols[j].Type)
			if err != nil {
				return Result{}, err
			}
			vals[k] = cv
		}
		updates = append(updates, colUpdate{col: j, vals: vals})
	}
	db.noteWrite(t)
	for _, u := range updates {
		if err := t.UpdateShardInPlace(shard, idx, u.col, u.vals); err != nil {
			return Result{}, err
		}
	}
	return Result{RowsAffected: len(idx)}, nil
}

// execDeleteShard is execDelete confined to one locked shard.
func (db *DB) execDeleteShard(s *sql.DeleteStmt, ps *plan.Params, t *storage.Table, shard int) (Result, error) {
	idx, _, err := db.matchShardRows(t, shard, s.Where, ps)
	if err != nil {
		return Result{}, err
	}
	if len(idx) == 0 {
		return Result{}, nil
	}
	db.noteWrite(t)
	t.DeleteShardWhere(shard, idx)
	return Result{RowsAffected: len(idx)}, nil
}
