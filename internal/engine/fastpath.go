package engine

import (
	"context"

	"repro/internal/sql"
	"repro/internal/storage"
)

// The sharded write fast path: an eligible auto-commit DML statement
// runs under the SHARED write gate and the SHARED engine latch,
// serializing against other writers only through the per-shard
// statement locks of the table it touches. Writers on disjoint shards
// of the same table — or on different tables — proceed in parallel,
// which is the point of partitioning the storage layer; the exclusive
// gate survives for transactions, DDL, and every statement shape the
// fast path declines.
//
// Eligibility: snapshot reads are on, no transaction is open, and the
// statement is a single-table INSERT ... VALUES (locks just the shards
// its rows hash to), UPDATE, or DELETE (lock every shard of the table:
// their WHERE footprint is unknown before evaluation, and the
// read-match-then-mutate sequence must be atomic against concurrent
// writers). Readers never block on any of this: they pin MVCC
// snapshots, and ShardedTable.SnapshotShard's brief statement-lock
// acquisition guarantees each shard is captured whole — never mid-
// statement. Atomicity ACROSS shards is the per-shard-lock tradeoff:
// a reader pinning its snapshot while a fast-path statement is in
// flight may see some shards before and some after that statement
// (each shard internally consistent). Transactions keep full
// whole-database atomicity via the exclusive gate.
//
// WAL ordering: two concurrent fast-path statements append to the log
// in whatever order they finish. That is sound because they commute —
// overlapping footprints are serialized by the shard statement locks,
// so concurrent statements touch disjoint rows and replay in either
// order yields the same state.

// tryFastWrite attempts the fast path for st. It returns handled=false
// (and no error) when the statement is ineligible — the caller then
// falls back to the exclusive gate and serialized execution. When
// handled, the statement ran to completion (res/err are final).
func (db *DB) tryFastWrite(ctx context.Context, st sql.Statement, text string) (Result, bool, error) {
	switch s := st.(type) {
	case *sql.InsertStmt:
		if s.Select != nil {
			// INSERT ... SELECT may read the target table; keep it on
			// the serialized path.
			return Result{}, false, nil
		}
	case *sql.UpdateStmt, *sql.DeleteStmt:
	default:
		return Result{}, false, nil
	}
	if err := db.acquireSharedGate(ctx); err != nil {
		return Result{}, false, err
	}
	db.mu.RLock()
	if !db.snapshotReads || db.noFastWrites || db.txn != nil {
		// Legacy read mode wants the exclusive latch; an open DB-level
		// transaction must stage pre-images under db.mu. Fall back.
		db.mu.RUnlock()
		db.releaseSharedGate()
		return Result{}, false, nil
	}
	var res Result
	var err error
	switch s := st.(type) {
	case *sql.InsertStmt:
		res, err = db.fastInsert(ctx, s)
	case *sql.UpdateStmt:
		res, err = db.fastUpdate(s)
	case *sql.DeleteStmt:
		res, err = db.fastDelete(s)
	}
	if err == nil {
		db.logStatement(text) // txn is nil: appends straight to the WAL
		db.mvcc.Publish()
	}
	db.mu.RUnlock()
	db.releaseSharedGate()
	return res, true, err
}

// fastInsert evaluates the VALUES rows, computes the set of shards they
// hash to, and appends under just those shards' statement locks.
func (db *DB) fastInsert(ctx context.Context, s *sql.InsertStmt) (Result, error) {
	t, err := db.cat.Get(s.Table)
	if err != nil {
		return Result{}, err
	}
	colIdx, input, err := db.buildInsertInput(ctx, s, t)
	if err != nil {
		return Result{}, err
	}
	shards := insertShardSet(t, colIdx, input)
	t.LockShards(shards)
	defer t.UnlockShards(shards)
	n, err := appendInsertRows(t, colIdx, input)
	if err != nil {
		return Result{}, err
	}
	return Result{RowsAffected: n}, nil
}

// insertShardSet returns the shards the input rows route to: the
// statement's write footprint, locked for its duration.
func insertShardSet(t *storage.Table, colIdx []int, input *storage.Batch) []int {
	if t.NumShards() == 1 {
		return []int{0}
	}
	key := t.ShardKey()
	kpos := -1
	for k, j := range colIdx {
		if j == key {
			kpos = k
		}
	}
	seen := make(map[int]bool)
	var shards []int
	nullKey := storage.Null(t.Schema().Cols[key].Type)
	for i := 0; i < input.Len(); i++ {
		v := nullKey // key column unspecified: the row carries NULL
		if kpos >= 0 {
			v = input.Cols[kpos].Value(i)
		}
		sh, err := t.ShardOf(v)
		if err != nil {
			// Uncoercible key: AppendRow will route it to shard 0 (and
			// likely fail); lock shard 0 so the failure is serialized.
			sh = 0
		}
		if !seen[sh] {
			seen[sh] = true
			shards = append(shards, sh)
		}
	}
	if len(shards) == 0 {
		shards = []int{0} // zero rows: lock something so the path is uniform
	}
	return shards
}

// fastUpdate runs UPDATE under every shard's statement lock: the WHERE
// clause's footprint is unknown until evaluated, and match + mutate
// must be atomic against other writers of the table.
func (db *DB) fastUpdate(s *sql.UpdateStmt) (Result, error) {
	t, err := db.cat.Get(s.Table)
	if err != nil {
		return Result{}, err
	}
	all := t.AllShards()
	t.LockShards(all)
	defer t.UnlockShards(all)
	return db.execUpdate(s)
}

// fastDelete mirrors fastUpdate for DELETE.
func (db *DB) fastDelete(s *sql.DeleteStmt) (Result, error) {
	t, err := db.cat.Get(s.Table)
	if err != nil {
		return Result{}, err
	}
	all := t.AllShards()
	t.LockShards(all)
	defer t.UnlockShards(all)
	return db.execDelete(s)
}
