package engine

import (
	"fmt"
	"strings"

	"repro/internal/mvcc"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Virtual system tables. Names starting with "vx$" resolve to
// materialized views over the engine's own state — the trace ring,
// active statements, the session registry — and are scanned by the
// normal executor, so they join, filter and sort like any table:
//
//	SELECT * FROM vx$traces ORDER BY total_ns DESC LIMIT 5
//
// Resolution happens in a TableSource wrapper in front of the MVCC
// snapshot: planning a vx$ name materializes the view into a batch at
// that moment (each scan sees fresh state), everything else falls
// through to the snapshot. The same wrapper serves as the bind-time
// lookup for cached plans, so a prepared SELECT over a system table
// re-materializes on every execution instead of replaying stale data.

// sysTablePrefix marks virtual system tables.
const sysTablePrefix = "vx$"

func isSysTable(name string) bool {
	return strings.HasPrefix(strings.ToLower(name), sysTablePrefix)
}

// sysSource wraps a snapshot's table resolution with system-table
// interception.
type sysSource struct {
	db   *DB
	base plan.TableSource
}

func (s sysSource) Table(name string) (storage.TableData, error) {
	if isSysTable(name) {
		return s.db.sysTable(name)
	}
	return s.base.Table(name)
}

// sysLookup is sysSource in bind-lookup form (cached-plan rebinding).
func (db *DB) sysLookup(snap *mvcc.Snapshot) func(string) (storage.TableData, error) {
	return func(name string) (storage.TableData, error) {
		if isSysTable(name) {
			return db.sysTable(name)
		}
		return snap.Table(name)
	}
}

// sysTableData adapts a freshly materialized batch to storage.TableData.
type sysTableData struct {
	name    string
	version uint64
	data    *storage.Batch
}

func (t *sysTableData) Name() string                { return t.name }
func (t *sysTableData) Schema() storage.Schema      { return t.data.Schema }
func (t *sysTableData) NumRows() int                { return t.data.Len() }
func (t *sysTableData) Version() uint64             { return t.version }
func (t *sysTableData) SortKey() []int              { return nil }
func (t *sysTableData) Column(i int) storage.Column { return t.data.Cols[i] }
func (t *sysTableData) Data() *storage.Batch        { return t.data }

// sysTable materializes one system view by (lower-cased) name.
func (db *DB) sysTable(name string) (storage.TableData, error) {
	lower := strings.ToLower(name)
	var (
		b   *storage.Batch
		err error
	)
	switch lower {
	case "vx$traces":
		b, err = db.sysTraces()
	case "vx$trace_spans":
		b, err = db.sysTraceSpans()
	case "vx$active_statements":
		b, err = db.sysActiveStatements()
	case "vx$sessions":
		b, err = db.sysSessions()
	default:
		return nil, fmt.Errorf("engine: unknown system table %q", name)
	}
	if err != nil {
		return nil, err
	}
	return &sysTableData{name: lower, version: sysTableVersion.Add(1), data: b}, nil
}

// sysTraces lists the retained completed traces, newest first.
func (db *DB) sysTraces() (*storage.Batch, error) {
	b := storage.NewBatch(storage.NewSchema(
		storage.Col("trace_id", storage.TypeInt64),
		storage.Col("session_id", storage.TypeInt64),
		storage.Col("stmt", storage.TypeString),
		storage.Col("start_us", storage.TypeInt64),
		storage.Col("total_ns", storage.TypeInt64),
		storage.Col("span_count", storage.TypeInt64),
		storage.Col("dropped_spans", storage.TypeInt64),
		storage.Col("slow", storage.TypeBool),
	))
	for _, tc := range db.tracer.Recent() {
		if err := b.AppendRow(
			storage.Int64(int64(tc.ID())),
			storage.Int64(int64(tc.Session())),
			storage.Str(tc.Text()),
			storage.Int64(tc.StartTime().UnixMicro()),
			storage.Int64(tc.TotalNs()),
			storage.Int64(int64(len(tc.Spans()))),
			storage.Int64(tc.DroppedSpans()),
			storage.Bool(tc.Slow()),
		); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// sysTraceSpans flattens every retained trace's spans, one row per
// span, joinable to vx$traces on trace_id.
func (db *DB) sysTraceSpans() (*storage.Batch, error) {
	b := storage.NewBatch(storage.NewSchema(
		storage.Col("trace_id", storage.TypeInt64),
		storage.Col("seq", storage.TypeInt64),
		storage.Col("depth", storage.TypeInt64),
		storage.Col("stage", storage.TypeString),
		storage.Col("start_us", storage.TypeInt64),
		storage.Col("dur_us", storage.TypeInt64),
		storage.Col("detail", storage.TypeString),
	))
	for _, tc := range db.tracer.Recent() {
		for i, sp := range tc.Spans() {
			if err := b.AppendRow(
				storage.Int64(int64(tc.ID())),
				storage.Int64(int64(i)),
				storage.Int64(int64(sp.Depth)),
				storage.Str(sp.Stage),
				storage.Int64(sp.StartNs/1e3),
				storage.Int64(sp.DurNs/1e3),
				storage.Str(sp.Detail),
			); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

// sysActiveStatements lists statements executing right now.
func (db *DB) sysActiveStatements() (*storage.Batch, error) {
	b := storage.NewBatch(storage.NewSchema(
		storage.Col("trace_id", storage.TypeInt64),
		storage.Col("session_id", storage.TypeInt64),
		storage.Col("stmt", storage.TypeString),
		storage.Col("elapsed_us", storage.TypeInt64),
		storage.Col("span_count", storage.TypeInt64),
	))
	for _, tc := range db.tracer.Active() {
		if err := b.AppendRow(
			storage.Int64(int64(tc.ID())),
			storage.Int64(int64(tc.Session())),
			storage.Str(tc.Text()),
			storage.Int64(tc.ElapsedNs()/1e3),
			storage.Int64(int64(len(tc.Spans()))),
		); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// sysSessions lists the live session registry.
func (db *DB) sysSessions() (*storage.Batch, error) {
	b := storage.NewBatch(storage.NewSchema(
		storage.Col("session_id", storage.TypeInt64),
		storage.Col("max_workers", storage.TypeInt64),
		storage.Col("parallelism", storage.TypeInt64),
		storage.Col("work_mem", storage.TypeInt64),
		storage.Col("in_txn", storage.TypeBool),
		storage.Col("statements", storage.TypeInt64),
		storage.Col("last_trace_id", storage.TypeInt64),
	))
	infos := db.sessionInfos()
	// Registry iteration order is map order; sort by id for stable output.
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && infos[j-1].id > infos[j].id; j-- {
			infos[j-1], infos[j] = infos[j], infos[j-1]
		}
	}
	for _, info := range infos {
		if err := b.AppendRow(
			storage.Int64(int64(info.id)),
			storage.Int64(info.maxWorkers),
			storage.Int64(info.workers.Load()),
			storage.Int64(info.workMem.Load()),
			storage.Bool(info.inTxn.Load()),
			storage.Int64(info.stmts.Load()),
			storage.Int64(int64(info.lastTrace.Load())),
		); err != nil {
			return nil, err
		}
	}
	return b, nil
}
