package engine

import (
	"context"
	"fmt"

	"repro/internal/storage"
	"repro/internal/trace"
)

// txnState tracks the statements of an open transaction for WAL
// replay. Undo lives in the MVCC manager now: the first write to a
// table stages an O(columns) copy-on-write pre-image snapshot there
// (replacing the old deep-copy undo clones), commit publishes the new
// table versions by discarding the overlay, and rollback restores the
// pre-images with a version swap. Readers resolve staged tables to
// their pre-images, so an open transaction's writes are invisible to
// other sessions until commit.
type txnState struct {
	log []string // statements to WAL on commit
}

// Begin starts a DB-level transaction (the embedded single-caller
// API: DB-level reads see its uncommitted state). Nested transactions
// are not supported.
func (db *DB) Begin() error { return db.begin(false) }

// beginSession starts a transaction owned by a Session: only that
// session's reads see the staged writes; every other reader keeps the
// committed versions.
func (db *DB) beginSession() error { return db.begin(true) }

func (db *DB) begin(sessionOwned bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.txn != nil {
		return fmt.Errorf("engine: transaction already open")
	}
	if err := db.mvcc.Begin(); err != nil {
		return err
	}
	db.txn = &txnState{}
	db.txnSessionOwned = sessionOwned
	return nil
}

// InTransaction reports whether a transaction is open.
func (db *DB) InTransaction() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.txn != nil
}

// Commit makes the transaction's changes durable (appending its
// statements to the WAL when persistence is enabled) and publishes the
// new table versions: from this point snapshots resolve the live
// tables again.
func (db *DB) Commit() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.txn == nil {
		return fmt.Errorf("engine: no open transaction")
	}
	if db.wal != nil {
		for _, stmt := range db.txn.log {
			if err := db.wal.append(stmt); err != nil {
				return fmt.Errorf("engine: commit: %w", err)
			}
		}
	}
	db.txn = nil
	return db.mvcc.Commit()
}

// Rollback undoes every change made since Begin by restoring the MVCC
// pre-image snapshots — a version swap per touched table.
func (db *DB) Rollback() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.txn == nil {
		return fmt.Errorf("engine: no open transaction")
	}
	db.txn = nil
	return db.mvcc.Rollback()
}

// noteWrite stages a pre-image for a table about to be mutated.
// Callers must hold db.mu.
func (db *DB) noteWrite(t *storage.Table) {
	if db.txn == nil {
		return
	}
	db.mvcc.StageWrite(t)
}

// noteCreate records a table created during the transaction.
func (db *DB) noteCreate(name string) {
	if db.txn == nil {
		return
	}
	db.mvcc.StageCreate(name)
}

// noteDrop records a dropped table for potential restore.
func (db *DB) noteDrop(t *storage.Table) {
	if db.txn == nil {
		return
	}
	db.mvcc.StageDrop(t)
}

// logStatement routes a successfully executed statement either into the
// transaction's pending log or straight to the WAL. Callers must hold
// db.mu. A traced statement (collector in ctx) gets a "wal" span
// covering the group-commit append — the durability wait a client
// experiences on an auto-commit write.
func (db *DB) logStatement(ctx context.Context, text string) {
	if db.txn != nil {
		db.txn.log = append(db.txn.log, text)
		return
	}
	if db.wal == nil {
		return
	}
	end := trace.FromContext(ctx).Begin("wal")
	_ = db.wal.append(text)
	end("group-commit append+fsync")
}
