package engine

import (
	"fmt"

	"repro/internal/storage"
)

// txnState tracks undo information for an open transaction. The engine
// uses table-level undo images: the first write to a table inside the
// transaction clones it; rollback restores the clones, drops tables
// created by the transaction, and re-registers tables it dropped.
type txnState struct {
	undo    map[string]*storage.Table // pre-image clones, keyed by name
	created []string                  // tables created in this txn
	dropped []*storage.Table          // table objects dropped in this txn
	log     []string                  // statements to WAL on commit
}

// Begin starts a transaction. Nested transactions are not supported.
func (db *DB) Begin() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.txn != nil {
		return fmt.Errorf("engine: transaction already open")
	}
	db.txn = &txnState{undo: make(map[string]*storage.Table)}
	return nil
}

// InTransaction reports whether a transaction is open.
func (db *DB) InTransaction() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.txn != nil
}

// Commit makes the transaction's changes durable (appending its
// statements to the WAL when persistence is enabled).
func (db *DB) Commit() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.txn == nil {
		return fmt.Errorf("engine: no open transaction")
	}
	if db.wal != nil {
		for _, stmt := range db.txn.log {
			if err := db.wal.append(stmt); err != nil {
				return fmt.Errorf("engine: commit: %w", err)
			}
		}
	}
	db.txn = nil
	return nil
}

// Rollback undoes every change made since Begin.
func (db *DB) Rollback() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.txn == nil {
		return fmt.Errorf("engine: no open transaction")
	}
	t := db.txn
	db.txn = nil
	// Undo writes.
	for name, pre := range t.undo {
		cur, err := db.cat.Get(name)
		if err == nil {
			cur.RestoreFrom(pre)
		} else {
			// Table was dropped after being written; restore the clone.
			db.cat.Put(pre)
		}
	}
	// Drop tables created inside the transaction.
	for _, name := range t.created {
		_ = db.cat.Drop(name)
	}
	// Restore tables dropped inside the transaction (unless a write
	// clone already restored them).
	for _, tb := range t.dropped {
		if !db.cat.Has(tb.Name()) {
			db.cat.Put(tb)
		}
	}
	return nil
}

// noteWrite records an undo image for a table about to be mutated.
// Callers must hold db.mu.
func (db *DB) noteWrite(t *storage.Table) {
	if db.txn == nil {
		return
	}
	key := t.Name()
	if _, ok := db.txn.undo[key]; !ok {
		db.txn.undo[key] = t.Clone()
	}
}

// noteCreate records a table created during the transaction.
func (db *DB) noteCreate(name string) {
	if db.txn == nil {
		return
	}
	db.txn.created = append(db.txn.created, name)
}

// noteDrop records a dropped table for potential restore.
func (db *DB) noteDrop(t *storage.Table) {
	if db.txn == nil {
		return
	}
	db.txn.dropped = append(db.txn.dropped, t)
}

// logStatement routes a successfully executed statement either into the
// transaction's pending log or straight to the WAL. Callers must hold
// db.mu.
func (db *DB) logStatement(text string) {
	if db.txn != nil {
		db.txn.log = append(db.txn.log, text)
		return
	}
	if db.wal != nil {
		_ = db.wal.append(text)
	}
}
