package engine

import (
	"container/list"
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/trace"
)

// preparedCacheSize bounds the prepared-plan cache. Entries are small
// (an AST plus an operator tree), so the limit exists to cap pathological
// workloads that generate unbounded distinct statement texts, not memory
// in the steady state.
const preparedCacheSize = 128

// planCache is the bind-and-run statement cache: statement text (plus
// the argument type signature — parameter types are frozen into a plan)
// maps to a parsed AST and, for cacheable SELECTs, a prepared plan.
// A prepared plan mutates shared state when bound (ParamSlot, scan
// targets, context ref), so exactly one execution may hold it at a
// time; concurrent executions of the same statement bypass the cache
// with a fresh plan rather than queue.
type planCache struct {
	mu    sync.Mutex
	max   int
	lru   *list.List // of *cacheEntry, front = most recently used
	items map[string]*list.Element

	parses   atomic.Uint64 // statements actually parsed
	plans    atomic.Uint64 // SELECT plans actually built
	hits     atomic.Uint64 // executions served by a cached plan
	misses   atomic.Uint64 // plan lookups that found none (or a stale one)
	bypasses atomic.Uint64 // cached plan busy; execution planned fresh
}

type cacheEntry struct {
	key       string
	st        sql.Statement
	numParams int
	// prep is nil for DML, for SELECTs whose first execution has not
	// finished planning, and after invalidation (the parse is kept).
	prep    *plan.Prepared
	catVer  uint64 // catalog version prep was built against
	workers int    // parallelism prep was built for
	workMem int64  // per-statement memory grant frozen into prep
	busy    bool   // prep checked out by a running execution
}

func newPlanCache(max int) *planCache {
	return &planCache{max: max, lru: list.New(), items: make(map[string]*list.Element)}
}

// cacheKey derives the cache key for one execution: the normalized
// statement fingerprint plus the argument type signature. Parameter
// types are taken from the first execution's arguments and frozen into
// the plan, so the same text bound with differently-typed arguments
// needs a separate entry.
func cacheKey(text string, args []storage.Value) string {
	norm := normalizeStatement(text)
	if len(args) == 0 {
		return norm
	}
	b := make([]byte, 0, len(norm)+1+len(args))
	b = append(b, norm...)
	b = append(b, 0)
	for _, a := range args {
		b = append(b, byte(a.Type))
	}
	return string(b)
}

// normalizeStatement fingerprints statement text so trivially different
// spellings share one cache entry: runs of whitespace and SQL comments
// collapse to a single space, and bare words that are reserved words of
// the dialect case-fold to upper case. Quoted regions — '...' string
// literals (with ” escapes) and "..." identifiers — are copied
// verbatim, so `select  1` and `SELECT 1` share an entry while the
// literals 'a b' and 'a  b' stay distinct.
func normalizeStatement(text string) string {
	var b strings.Builder
	b.Grow(len(text))
	needSpace := false
	i, n := 0, len(text)
	for i < n {
		c := text[i]
		// Skippable regions: whitespace and comments become one space
		// (emitted lazily, so leading/trailing runs vanish).
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f':
			i++
			needSpace = b.Len() > 0
			continue
		case c == '-' && i+1 < n && text[i+1] == '-':
			for i < n && text[i] != '\n' {
				i++
			}
			needSpace = b.Len() > 0
			continue
		case c == '/' && i+1 < n && text[i+1] == '*':
			end := strings.Index(text[i+2:], "*/")
			if end < 0 {
				i = n // unterminated: the parse will reject it anyway
			} else {
				i += end + 4
			}
			needSpace = b.Len() > 0
			continue
		}
		if needSpace {
			b.WriteByte(' ')
			needSpace = false
		}
		switch {
		case c == '\'': // string literal; '' escapes a quote
			j := i + 1
			for j < n {
				if text[j] == '\'' {
					if j+1 < n && text[j+1] == '\'' {
						j += 2
						continue
					}
					j++
					break
				}
				j++
			}
			b.WriteString(text[i:j])
			i = j
		case c == '"': // quoted identifier, no escapes
			j := i + 1
			for j < n && text[j] != '"' {
				j++
			}
			if j < n {
				j++
			}
			b.WriteString(text[i:j])
			i = j
		case c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z'):
			j := i
			for j < n {
				w := text[j]
				if w == '_' || ('a' <= w && w <= 'z') || ('A' <= w && w <= 'Z') || ('0' <= w && w <= '9') {
					j++
					continue
				}
				break
			}
			word := text[i:j]
			if up := strings.ToUpper(word); sql.IsKeyword(up) {
				b.WriteString(up)
			} else {
				b.WriteString(word)
			}
			i = j
		default:
			b.WriteByte(c)
			i++
		}
	}
	return b.String()
}

// parse returns the cached AST for key, parsing and caching text on a
// miss. The AST is read-only and shared freely across executions.
func (pc *planCache) parse(text, key string) (sql.Statement, int, error) {
	pc.mu.Lock()
	if el, ok := pc.items[key]; ok {
		e := el.Value.(*cacheEntry)
		pc.lru.MoveToFront(el)
		st, n := e.st, e.numParams
		pc.mu.Unlock()
		return st, n, nil
	}
	pc.mu.Unlock()

	st, err := sql.Parse(text)
	if err != nil {
		return nil, 0, err
	}
	pc.parses.Add(1)
	n := sql.NumParams(st)

	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.items[key]; ok { // a concurrent execution parsed first
		e := el.Value.(*cacheEntry)
		pc.lru.MoveToFront(el)
		return e.st, e.numParams, nil
	}
	pc.items[key] = pc.lru.PushFront(&cacheEntry{key: key, st: st, numParams: n})
	pc.evictLocked()
	return st, n, nil
}

// checkoutPlan claims the cached prepared plan under key for exclusive
// use by one execution. It returns nil when there is no plan yet, the
// plan is stale (catalog version, worker count or work_mem changed —
// the parse is kept, the plan dropped), or another execution holds it
// (bypass).
func (pc *planCache) checkoutPlan(key string, catVer uint64, workers int, workMem int64) *cacheEntry {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.items[key]
	if !ok {
		pc.misses.Add(1)
		return nil
	}
	e := el.Value.(*cacheEntry)
	if e.prep == nil {
		pc.misses.Add(1)
		return nil
	}
	if e.busy {
		pc.bypasses.Add(1)
		return nil
	}
	if e.catVer != catVer || e.workers != workers || e.workMem != workMem {
		e.prep = nil
		pc.misses.Add(1)
		return nil
	}
	e.busy = true
	pc.lru.MoveToFront(el)
	pc.hits.Add(1)
	return e
}

// peek reports whether a usable prepared plan is cached under key —
// without touching the hit/miss counters, the LRU order, or the busy
// flag. EXPLAIN uses it to report plan-cache state for a statement
// while leaving the cache exactly as it found it.
func (pc *planCache) peek(key string, catVer uint64, workers int, workMem int64) bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.items[key]
	if !ok {
		return false
	}
	e := el.Value.(*cacheEntry)
	return e.prep != nil && e.catVer == catVer && e.workers == workers && e.workMem == workMem
}

// attach installs a freshly built plan on key's entry, checked out by
// the calling execution (release it when the run ends). It returns nil —
// and the plan stays single-use — when the entry was evicted since
// parse or a concurrent execution already attached one.
func (pc *planCache) attach(key string, prep *plan.Prepared, catVer uint64, workers int, workMem int64) *cacheEntry {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.items[key]
	if !ok {
		return nil
	}
	e := el.Value.(*cacheEntry)
	if e.busy || e.prep != nil {
		return nil
	}
	e.prep, e.catVer, e.workers, e.workMem, e.busy = prep, catVer, workers, workMem, true
	return e
}

// release returns a checked-out plan to the cache. The entry pointer
// stays valid after eviction; releasing an evicted entry is a no-op.
func (pc *planCache) release(e *cacheEntry) {
	pc.mu.Lock()
	e.busy = false
	pc.mu.Unlock()
}

// evictLocked drops least-recently-used entries over capacity, skipping
// plans currently checked out.
func (pc *planCache) evictLocked() {
	for el := pc.lru.Back(); el != nil && pc.lru.Len() > pc.max; {
		prev := el.Prev()
		if e := el.Value.(*cacheEntry); !e.busy {
			pc.lru.Remove(el)
			delete(pc.items, e.key)
		}
		el = prev
	}
}

// PreparedStats are cumulative plan-cache counters. A steady-state
// prepared workload shows Hits advancing while Parses and Plans stand
// still: repeated executions do no parse or plan work.
type PreparedStats struct {
	Parses   uint64
	Plans    uint64
	Hits     uint64
	Misses   uint64
	Bypasses uint64
}

// PreparedStats returns the plan-cache counters.
func (db *DB) PreparedStats() PreparedStats {
	return PreparedStats{
		Parses:   db.plans.parses.Load(),
		Plans:    db.plans.plans.Load(),
		Hits:     db.plans.hits.Load(),
		Misses:   db.plans.misses.Load(),
		Bypasses: db.plans.bypasses.Load(),
	}
}

// queryStreamBound streams a parameterized SELECT bind-and-run: under
// snapshot reads a cached prepared plan is bound to this execution's
// snapshot and arguments (zero parse/plan work on a hit); on a miss the
// fresh plan is attached to the cache for the next execution. The
// legacy latch-coupled mode plans fresh every time — its plans resolve
// live catalog tables under the database latch and cannot be rebound.
func (db *DB) queryStreamBound(ctx context.Context, sel *sql.SelectStmt, key string, args []storage.Value, workers int, workMem int64, kind readerKind) (*Rows, error) {
	db.mu.RLock()
	if !db.snapshotReads {
		op, err := db.planner.PlanSelectMem(sel, workers, workMem, nil, plan.NewParams(args))
		if err != nil {
			db.mu.RUnlock()
			return nil, err
		}
		db.plans.plans.Add(1)
		return OperatorRows(exec.WithContext(ctx, op), db.mu.RUnlock)
	}

	own := kind == readerTxnOwner || (kind == readerDBLevel && db.txn != nil && !db.txnSessionOwned)
	acquire := db.mvcc.Acquire
	if own {
		acquire = db.mvcc.AcquireOwn
	}
	snap, err := acquire()
	if err != nil {
		db.mu.RUnlock()
		return nil, err
	}
	fail := func(err error) (*Rows, error) {
		snap.Release()
		db.mu.RUnlock()
		return nil, err
	}

	tc := trace.FromContext(ctx)
	catVer := db.cat.Version()
	probe := time.Now()
	entry := db.plans.checkoutPlan(key, catVer, workers, workMem)
	var prep *plan.Prepared
	if entry != nil {
		tc.Add("plan_cache", probe, time.Since(probe), "hit")
		prep = entry.prep
		// Repoint the cached scans at this snapshot's table versions.
		// Snapshot resolution needs the engine latch, so Bind must run
		// before Seal (a sealed snapshot serves only what it has pinned).
		// System tables (vx$…) resolve through the wrapper so a cached
		// plan re-materializes them fresh on every execution.
		endBind := tc.Begin("bind")
		if err := prep.Bind(ctx, args, db.sysLookup(snap)); err != nil {
			db.plans.release(entry)
			return fail(err)
		}
		endBind("rebind cached plan")
	} else {
		tc.Add("plan_cache", probe, time.Since(probe), "miss")
		endPlan := tc.Begin("plan")
		prep, err = db.planner.PrepareSelectMem(sel, workers, workMem, sysSource{db: db, base: snap}, plan.NewParams(args))
		endPlan(fmt.Sprintf("workers=%d", workers))
		if err != nil {
			return fail(err)
		}
		db.plans.plans.Add(1)
		// Tables are already resolved (planned against snap); bind the
		// context, the arguments and the parameter-keyed scan routes.
		endBind := tc.Begin("bind")
		if err := prep.Bind(ctx, args, nil); err != nil {
			return fail(err)
		}
		endBind("bind fresh plan")
		if prep.Cacheable {
			entry = db.plans.attach(key, prep, catVer, workers, workMem)
		}
	}
	snap.Seal()
	db.mu.RUnlock()
	tc.Add("grant", time.Now(), 0, fmt.Sprintf("work_mem=%d pool %s", workMem, db.memPool.Describe()))

	cleanup := []func(){snap.Release}
	if entry != nil {
		e := entry
		cleanup = append(cleanup, func() { db.plans.release(e) })
	}
	endOpen := tc.Begin("open")
	rows, err := OperatorRows(prep.Root, cleanup...)
	if err != nil {
		endOpen("failed")
		return nil, err
	}
	endOpen("operator tree opened")
	return rows, nil
}
