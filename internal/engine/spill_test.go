package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/storage"
)

// Out-of-core acceptance tests: a 64KB per-statement memory grant over
// inputs several times that size must complete every statement with
// results byte-identical to unlimited memory at workers 1, 2 and 8,
// surface per-node spill counters in EXPLAIN ANALYZE, and route budget
// exhaustion on non-spillable operators to a clean error.

const forceSpillWorkMem = 64 << 10

// outOfCoreDB builds a database whose working sets are several times
// the force-spill grant: ~20k-row fact table (~1MB resident) plus a
// small dimension table to join against.
func outOfCoreDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec(t, db,
		"CREATE TABLE fact (id INTEGER NOT NULL, grp INTEGER, val DOUBLE, tag VARCHAR)",
		"CREATE TABLE dim (grp INTEGER NOT NULL, label VARCHAR)",
	)
	fact, err := db.Catalog().Get("fact")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		grp := storage.Int64(int64(rng.Intn(500)))
		if rng.Intn(60) == 0 {
			grp = storage.Null(storage.TypeInt64)
		}
		if err := fact.AppendRow(
			storage.Int64(int64(i)), grp,
			storage.Float64(rng.NormFloat64()*100),
			storage.Str(fmt.Sprintf("tag-%04d", rng.Intn(1500))),
		); err != nil {
			t.Fatal(err)
		}
	}
	dim, err := db.Catalog().Get("dim")
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 500; g++ {
		if err := dim.AppendRow(storage.Int64(int64(g)), storage.Str(fmt.Sprintf("label-%03d", g%23))); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// sessionQuery runs q on a fresh session configured with the given
// worker count and work_mem (0 = engine default/unlimited).
func sessionQuery(t *testing.T, db *DB, q string, workers int, workMem int64) *Rows {
	t.Helper()
	s := db.NewSession()
	defer s.Close()
	mustSet(t, s, fmt.Sprintf("SET parallelism = %d", workers))
	mustSet(t, s, fmt.Sprintf("SET work_mem = %d", workMem))
	rows, err := s.QueryContext(context.Background(), q)
	if err != nil {
		t.Fatalf("workers=%d work_mem=%d %s: %v", workers, workMem, q, err)
	}
	return rows
}

func mustSet(t *testing.T, s *Session, stmt string) {
	t.Helper()
	if _, _, err := s.Run(context.Background(), stmt); err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
}

func TestOutOfCoreAcceptance64KB(t *testing.T) {
	oldMorsels := exec.MinMorselRows
	exec.MinMorselRows = 64
	defer func() { exec.MinMorselRows = oldMorsels }()
	db := outOfCoreDB(t)

	// ORDER BY + GROUP BY + join in one statement over inputs several
	// times the 64KB grant.
	q := `SELECT f.tag, d.label, COUNT(*) AS c, SUM(f.val) AS s
		FROM fact f JOIN dim d ON f.grp = d.grp
		GROUP BY f.tag, d.label
		ORDER BY s, c DESC, f.tag`
	want := sessionQuery(t, db, q, 1, 0)
	if want.Len() < 1000 {
		t.Fatalf("degenerate fixture: %d result rows", want.Len())
	}
	for _, workers := range []int{1, 2, 8} {
		got := sessionQuery(t, db, q, workers, forceSpillWorkMem)
		if err := diffRows(fmt.Sprintf("workers=%d", workers), got, want); err != nil {
			t.Error(err)
		}
	}

	// The spill totals must have advanced, and SHOW STATS must carry
	// them over the wire path.
	runs, bytes := storage.SpillTotals()
	if runs == 0 || bytes == 0 {
		t.Fatalf("force-spill runs left no totals: runs=%d bytes=%d", runs, bytes)
	}
	s := db.NewSession()
	defer s.Close()
	stats, err := s.QueryContext(context.Background(), "SHOW STATS")
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]int64{}
	for i := 0; i < stats.Len(); i++ {
		found[stats.Value(i, 0).S] = stats.Value(i, 1).I
	}
	if found["spill.runs"] <= 0 || found["spill.bytes"] <= 0 {
		t.Errorf("SHOW STATS spill counters = %d runs / %d bytes", found["spill.runs"], found["spill.bytes"])
	}
	if _, ok := found["mem.pool_capacity"]; !ok {
		t.Error("SHOW STATS is missing the memory-pool gauges")
	}
}

func TestExplainAnalyzeReportsSpill(t *testing.T) {
	db := outOfCoreDB(t)
	s := db.NewSession()
	defer s.Close()
	mustSet(t, s, fmt.Sprintf("SET work_mem = %d", forceSpillWorkMem))
	rows, err := s.QueryContext(context.Background(),
		"EXPLAIN ANALYZE SELECT id, tag FROM fact ORDER BY tag, id")
	if err != nil {
		t.Fatal(err)
	}
	var plan strings.Builder
	for i := 0; i < rows.Len(); i++ {
		plan.WriteString(rows.Value(i, 0).S)
		plan.WriteByte('\n')
	}
	if !strings.Contains(plan.String(), "spilled=") {
		t.Fatalf("EXPLAIN ANALYZE under a 64KB grant shows no spilled= annotation:\n%s", plan.String())
	}
}

// TestSpillDifferentialCorpus force-spills the whole parallel feature
// corpus and compares byte-for-byte against unlimited memory at
// workers 1, 2 and 8.
func TestSpillDifferentialCorpus(t *testing.T) {
	oldMorsels := exec.MinMorselRows
	exec.MinMorselRows = 64
	defer func() { exec.MinMorselRows = oldMorsels }()
	db := corpusDB(t)
	for _, q := range featureCorpus {
		want := sessionQuery(t, db, q, 1, 0)
		for _, workers := range []int{1, 2, 8} {
			got := sessionQuery(t, db, q, workers, forceSpillWorkMem)
			if err := diffRows(fmt.Sprintf("workers=%d %s", workers, q), got, want); err != nil {
				t.Error(err)
			}
		}
	}
}

func TestOutOfMemoryBudgetError(t *testing.T) {
	db := outOfCoreDB(t)
	s := db.NewSession()
	defer s.Close()
	// DISTINCT's seen-set has no spill path: a tiny grant must fail
	// cleanly, not OOM or hang.
	mustSet(t, s, "SET work_mem = 2048")
	_, err := s.QueryContext(context.Background(), "SELECT DISTINCT id, tag FROM fact")
	if !errors.Is(err, exec.ErrOutOfMemoryBudget) {
		t.Fatalf("distinct under 2KB grant: %v", err)
	}
	// Raising work_mem on the same session recovers. Force the engine
	// default to unlimited so a VXDB_WORK_MEM seed can't keep the grant tiny.
	db.SetWorkMem(0)
	mustSet(t, s, "SET work_mem = 0")
	if _, err := s.QueryContext(context.Background(), "SELECT DISTINCT id, tag FROM fact LIMIT 5"); err != nil {
		t.Fatal(err)
	}
}

func TestProcessMemoryPoolBindsStatements(t *testing.T) {
	db := outOfCoreDB(t)
	db.SetMemoryBudget(2048)
	defer db.SetMemoryBudget(0)
	if _, err := db.Query("SELECT DISTINCT id, tag FROM fact"); !errors.Is(err, exec.ErrOutOfMemoryBudget) {
		t.Fatalf("distinct under a 2KB process pool: %v", err)
	}
	// Spillable statements still complete under the same pool.
	rows, err := db.Query("SELECT id FROM fact ORDER BY tag, id LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 10 {
		t.Fatalf("sorted rows under tiny pool: %d", rows.Len())
	}
}

func TestSetAndShowWorkMem(t *testing.T) {
	db := New()
	s := db.NewSession()
	defer s.Close()
	show := func(name string) int64 {
		t.Helper()
		rows, err := s.QueryContext(context.Background(), "SHOW "+name)
		if err != nil {
			t.Fatal(err)
		}
		return rows.Value(0, 0).I
	}
	if got := show("work_mem"); got != db.WorkMem() {
		// VXDB_WORK_MEM may seed a non-zero engine default; the session
		// must report whatever the engine resolved.
		t.Fatalf("default work_mem = %d, want engine default %d", got, db.WorkMem())
	}
	mustSet(t, s, "SET work_mem = 4096")
	if got := show("work_mem"); got != 4096 {
		t.Fatalf("work_mem after SET = %d", got)
	}
	db.SetWorkMem(1 << 20)
	mustSet(t, s, "SET work_mem = 0") // back to the engine default
	if got := show("work_mem"); got != 1<<20 {
		t.Fatalf("work_mem after reset = %d, want engine default", got)
	}
	db.SetMemoryBudget(1 << 21)
	if got := show("memory_budget"); got != 1<<21 {
		t.Fatalf("memory_budget = %d", got)
	}
	if _, _, err := s.Run(context.Background(), "SET work_mem = -1"); err == nil {
		t.Fatal("negative work_mem accepted")
	}
}

// TestParallelPlanCacheHitWithSpool is the prepared-cache half of the
// out-of-core work: a parallel plan whose join result rides a shared
// spool must be cacheable — repeated bound executions hit the cache and
// replay the spool against fresh bindings instead of serving stale
// rows (or bypassing the cache entirely, as before).
func TestParallelPlanCacheHitWithSpool(t *testing.T) {
	oldMorsels := exec.MinMorselRows
	exec.MinMorselRows = 64
	defer func() { exec.MinMorselRows = oldMorsels }()
	db := corpusDB(t)
	s := db.NewSession()
	defer s.Close()
	mustSet(t, s, "SET parallelism = 4")
	ctx := context.Background()

	// The projection over a join is the spool shape: the join runs once
	// into a spool and the projection fans out over its parts.
	q := "SELECT e.dst + $1 FROM edges e JOIN ranks r ON e.src = r.id"
	explain, err := s.QueryContext(ctx, "EXPLAIN SELECT e.dst + 0 FROM edges e JOIN ranks r ON e.src = r.id")
	if err != nil {
		t.Fatal(err)
	}
	var plan strings.Builder
	for i := 0; i < explain.Len(); i++ {
		plan.WriteString(explain.Value(i, 0).S)
		plan.WriteByte('\n')
	}
	if !strings.Contains(plan.String(), "Spool") {
		t.Fatalf("fixture no longer plans a spool at workers=4:\n%s", plan.String())
	}

	run := func(arg int64) *Rows {
		t.Helper()
		rows, _, err := s.RunStreamBound(ctx, q, vals(storage.Int64(arg)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rows.Materialize(); err != nil {
			t.Fatal(err)
		}
		return rows
	}
	first := run(0)
	hits0 := db.PreparedStats().Hits
	second := run(0)
	if db.PreparedStats().Hits <= hits0 {
		t.Fatalf("second execution of a spooled parallel plan missed the cache: %+v", db.PreparedStats())
	}
	if err := diffRows(q, second, first); err != nil {
		t.Fatal(err)
	}
	// Fresh bindings must replay the base, not serve the spooled drain.
	shifted := run(1000)
	if shifted.Len() != first.Len() {
		t.Fatalf("rebound run: %d rows, want %d", shifted.Len(), first.Len())
	}
	for i := 0; i < first.Len(); i++ {
		if shifted.Value(i, 0).I != first.Value(i, 0).I+1000 {
			t.Fatalf("row %d: %d, want %d", i, shifted.Value(i, 0).I, first.Value(i, 0).I+1000)
		}
	}
}

// TestPlanCacheKeysOnWorkMem: the statement grant's capacity is frozen
// into the plan, so changing work_mem must invalidate instead of reuse.
func TestPlanCacheKeysOnWorkMem(t *testing.T) {
	db := corpusDB(t)
	s := db.NewSession()
	defer s.Close()
	ctx := context.Background()
	q := "SELECT id FROM big WHERE id < $1 ORDER BY id"
	run := func() *Rows {
		t.Helper()
		rows, _, err := s.RunStreamBound(ctx, q, vals(storage.Int64(50)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rows.Materialize(); err != nil {
			t.Fatal(err)
		}
		return rows
	}
	run()
	hits0 := db.PreparedStats().Hits
	run()
	if db.PreparedStats().Hits <= hits0 {
		t.Fatal("same work_mem did not hit the cache")
	}
	misses0 := db.PreparedStats().Misses
	// Pick a grant guaranteed to differ from the current effective value
	// (VXDB_WORK_MEM may already seed the engine default to forceSpillWorkMem).
	newWM := int64(forceSpillWorkMem)
	if newWM == db.WorkMem() {
		newWM *= 2
	}
	mustSet(t, s, fmt.Sprintf("SET work_mem = %d", newWM))
	want := run()
	if db.PreparedStats().Misses <= misses0 {
		t.Fatal("changed work_mem reused a plan with a stale memory grant")
	}
	if want.Len() != 50 {
		t.Fatalf("rows after work_mem change: %d", want.Len())
	}
}
