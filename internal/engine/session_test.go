package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/storage"
)

func sessionFixture(t *testing.T) (*DB, *Session) {
	t.Helper()
	db := New()
	mustExec(t, db, "CREATE TABLE t (id INTEGER, v DOUBLE)")
	for i := 0; i < 10; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d, %d.5)", i, i))
	}
	return db, db.NewSession()
}

func TestSessionSetShow(t *testing.T) {
	_, s := sessionFixture(t)
	ctx := context.Background()

	if _, _, err := s.Run(ctx, "SET statement_timeout = 250"); err != nil {
		t.Fatalf("SET statement_timeout: %v", err)
	}
	if got := s.StatementTimeout(); got != 250*time.Millisecond {
		t.Fatalf("timeout = %v, want 250ms", got)
	}
	rows, err := s.QueryContext(ctx, "SHOW statement_timeout")
	if err != nil {
		t.Fatalf("SHOW: %v", err)
	}
	if rows.Len() != 1 || rows.Value(0, 0).I != 250 {
		t.Fatalf("SHOW statement_timeout = %v", rows.Value(0, 0))
	}
	if cols := rows.Columns(); cols[0] != "statement_timeout" {
		t.Fatalf("SHOW column name = %q", cols[0])
	}

	if _, _, err := s.Run(ctx, "SET statement_timeout = -1"); err == nil {
		t.Fatal("negative timeout should be rejected")
	}
	if _, _, err := s.Run(ctx, "SET no_such_var = 1"); err == nil {
		t.Fatal("unknown variable should be rejected")
	}
	if _, err := s.QueryContext(ctx, "SHOW no_such_var"); err == nil {
		t.Fatal("SHOW of unknown variable should be rejected")
	}
}

func TestSessionParallelismCap(t *testing.T) {
	db := New()
	db.SetParallelism(8)
	s := db.NewSessionMaxWorkers(2)
	ctx := context.Background()

	// Uncapped session variable, capped by admission control.
	rows, err := s.QueryContext(ctx, "SHOW parallelism")
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Value(0, 0).I; got != 2 {
		t.Fatalf("effective parallelism = %d, want cap 2", got)
	}
	if _, _, err := s.Run(ctx, "SET parallelism = 1"); err != nil {
		t.Fatal(err)
	}
	rows, _ = s.QueryContext(ctx, "SHOW parallelism")
	if got := rows.Value(0, 0).I; got != 1 {
		t.Fatalf("effective parallelism = %d, want 1", got)
	}
}

func TestSessionStatementTimeout(t *testing.T) {
	db, _ := sessionFixture(t)
	err := db.RegisterUDF(&expr.ScalarFunc{
		Name: "slow", MinArgs: 1, MaxArgs: 1,
		ReturnType: func(args []storage.Type) (storage.Type, error) { return storage.TypeInt64, nil },
		Eval: func(args []storage.Value) (storage.Value, error) {
			time.Sleep(30 * time.Millisecond)
			return args[0], nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	ctx := context.Background()
	if _, _, err := s.Run(ctx, "SET statement_timeout = 40"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, _, err = s.Run(ctx, "SELECT slow(id) FROM t")
	if err == nil {
		t.Fatal("expected statement_timeout to cancel the query")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v; cancellation did not land mid-statement", elapsed)
	}
	// Disabling the timeout lets the same query finish.
	if _, _, err := s.Run(ctx, "SET statement_timeout = 0"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Run(ctx, "SELECT slow(id) FROM t LIMIT 1"); err != nil {
		t.Fatalf("query after disabling timeout: %v", err)
	}
}

func TestSessionTransactionSQL(t *testing.T) {
	db, s := sessionFixture(t)
	ctx := context.Background()

	for _, stmt := range []string{"BEGIN", "INSERT INTO t VALUES (100, 1.0)", "ROLLBACK"} {
		if _, _, err := s.Run(ctx, stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	v, err := db.QueryScalar("SELECT COUNT(*) FROM t WHERE id = 100")
	if err != nil || v.I != 0 {
		t.Fatalf("rollback did not undo insert: count=%v err=%v", v, err)
	}

	for _, stmt := range []string{"BEGIN", "INSERT INTO t VALUES (101, 1.0)", "COMMIT"} {
		if _, _, err := s.Run(ctx, stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	v, _ = db.QueryScalar("SELECT COUNT(*) FROM t WHERE id = 101")
	if v.I != 1 {
		t.Fatal("commit lost the insert")
	}

	if _, _, err := s.Run(ctx, "COMMIT"); err == nil {
		t.Fatal("COMMIT without BEGIN should fail")
	}
	if _, _, err := s.Run(ctx, "BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Run(ctx, "BEGIN"); err == nil {
		t.Fatal("nested BEGIN should fail")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close with open txn: %v", err)
	}
	if db.InTransaction() {
		t.Fatal("Close should roll back the open transaction")
	}
}

// TestSessionWriteGate: while one session holds a transaction, another
// session's auto-commit write must wait for COMMIT — otherwise the
// first session's rollback images could clobber it.
func TestSessionWriteGate(t *testing.T) {
	db, a := sessionFixture(t)
	b := db.NewSession()
	ctx := context.Background()

	if _, _, err := a.Run(ctx, "BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Run(ctx, "UPDATE t SET v = 0.0 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		_, _, err := b.Run(ctx, "INSERT INTO t VALUES (200, 2.0)")
		done <- err
	}()
	<-started
	// B must still be blocked on the gate while A's txn is open.
	select {
	case err := <-done:
		t.Fatalf("write slipped past an open transaction (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	// Reads are NOT blocked by the gate (read-uncommitted).
	if _, err := b.QueryContext(ctx, "SELECT COUNT(*) FROM t"); err != nil {
		t.Fatalf("concurrent read during txn: %v", err)
	}
	if _, _, err := a.Run(ctx, "ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("gated write failed after rollback: %v", err)
	}
	v, _ := db.QueryScalar("SELECT COUNT(*) FROM t WHERE id = 200")
	if v.I != 1 {
		t.Fatal("B's write lost")
	}
	// A's rollback must not have clobbered B's row, and A's update is gone.
	v, _ = db.QueryScalar("SELECT v FROM t WHERE id = 1")
	if v.F != 1.5 {
		t.Fatalf("rollback state wrong: v=%v", v)
	}
	// A blocked gated write honours context cancellation.
	if _, _, err := a.Run(ctx, "BEGIN"); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	defer cancel()
	if _, _, err := b.Run(cctx, "INSERT INTO t VALUES (201, 2.0)"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("gated write under cancelled ctx: err=%v", err)
	}
	if _, _, err := a.Run(ctx, "COMMIT"); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentReaders drives many concurrent read statements (the
// multi-reader RWMutex path) under -race.
func TestConcurrentReaders(t *testing.T) {
	db, _ := sessionFixture(t)
	want, err := db.Query("SELECT id, v FROM t ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := db.NewSession()
			for j := 0; j < 20; j++ {
				got, err := s.QueryContext(context.Background(), "SELECT id, v FROM t ORDER BY id")
				if err != nil {
					errs[i] = err
					return
				}
				if got.Len() != want.Len() {
					errs[i] = fmt.Errorf("row count %d != %d", got.Len(), want.Len())
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestDBLevelTxnSQL(t *testing.T) {
	db, _ := sessionFixture(t)
	for _, stmt := range []string{"BEGIN", "DELETE FROM t", "ROLLBACK"} {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	v, _ := db.QueryScalar("SELECT COUNT(*) FROM t")
	if v.I != 10 {
		t.Fatalf("rows after rollback = %d, want 10", v.I)
	}
	if _, err := db.Exec("SET statement_timeout = 5"); err == nil ||
		!strings.Contains(err.Error(), "session statement") {
		t.Fatalf("DB-level SET should point at sessions, got %v", err)
	}

	// A DB-level BEGIN holds the cross-session write gate like a
	// session transaction would: a concurrent session's auto-commit
	// write must wait for COMMIT/ROLLBACK instead of landing inside
	// the open undo scope.
	if _, err := db.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	cctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, _, err := s.Run(cctx, "INSERT INTO t VALUES (300, 3.0)"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("session write slipped past a DB-level transaction: %v", err)
	}
	if _, err := db.Exec("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Run(context.Background(), "INSERT INTO t VALUES (300, 3.0)"); err != nil {
		t.Fatalf("gated write failed after DB-level rollback: %v", err)
	}
	// And the reverse: a session transaction gates DB-level BEGIN.
	if _, _, err := s.Run(context.Background(), "BEGIN"); err != nil {
		t.Fatal(err)
	}
	cctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel2()
	if _, err := db.ExecContext(cctx2, "BEGIN"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("DB-level BEGIN slipped past a session transaction: %v", err)
	}
	if _, _, err := s.Run(context.Background(), "COMMIT"); err != nil {
		t.Fatal(err)
	}
}
