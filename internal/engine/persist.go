package engine

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/obs"
	"repro/internal/storage"
)

// Persistence: a full-database snapshot file (columnar, using the
// storage encodings — delta/RLE for integers, dictionary for strings)
// plus a statement-granularity write-ahead log. Open loads the snapshot
// and replays the WAL; Checkpoint rewrites the snapshot and truncates
// the WAL. This is the engine-level durability story the paper cites as
// a reason to keep graphs in the RDBMS.

const (
	snapshotFile    = "snapshot.vxc"
	walFile         = "wal.sql"
	snapshotMagicV1 = uint32(0x56585831) // "VXX1": no partition metadata
	snapshotMagicV2 = uint32(0x56585832) // "VXX2": + per-table shard count and key
)

// Open returns a database persisted under dir, creating it if empty and
// recovering (snapshot + WAL replay) if files exist.
func Open(dir string) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: open: %w", err)
	}
	db := New()
	db.dir = dir

	snapPath := filepath.Join(dir, snapshotFile)
	if _, err := os.Stat(snapPath); err == nil {
		if err := db.loadSnapshot(snapPath); err != nil {
			return nil, fmt.Errorf("engine: recover snapshot: %w", err)
		}
	}
	walPath := filepath.Join(dir, walFile)
	if _, err := os.Stat(walPath); err == nil {
		if err := db.replayWAL(walPath); err != nil {
			return nil, fmt.Errorf("engine: replay wal: %w", err)
		}
	}
	w, err := newWALWriter(walPath)
	if err != nil {
		return nil, err
	}
	w.fsyncs = db.obs.Counter("wal.fsyncs")
	w.syncedRecords = db.obs.Counter("wal.synced_records")
	db.wal = w
	return db, nil
}

// Close flushes and closes the WAL (no-op for in-memory databases).
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal != nil {
		return db.wal.close()
	}
	return nil
}

// Checkpoint writes a full snapshot and truncates the WAL. The vertex
// runtime calls this after a graph-algorithm run so direct (non-SQL)
// table mutations become durable.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.dir == "" {
		return fmt.Errorf("engine: checkpoint requires a persistent database (use Open)")
	}
	if db.txn != nil {
		return fmt.Errorf("engine: cannot checkpoint during a transaction")
	}
	tmp := filepath.Join(db.dir, snapshotFile+".tmp")
	if err := db.writeSnapshot(tmp); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(db.dir, snapshotFile)); err != nil {
		return err
	}
	return db.wal.truncate()
}

func (db *DB) writeSnapshot(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := db.encodeSnapshot(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeUvarint(w io.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeBytes(w io.Writer, b []byte) error {
	if err := writeUvarint(w, uint64(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func writeString(w io.Writer, s string) error { return writeBytes(w, []byte(s)) }

func (db *DB) encodeSnapshot(w io.Writer) error {
	var magic [4]byte
	binary.LittleEndian.PutUint32(magic[:], snapshotMagicV2)
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	names := db.cat.Names()
	if err := writeUvarint(w, uint64(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		t, err := db.cat.Get(name)
		if err != nil {
			return err
		}
		if err := encodeTable(w, t); err != nil {
			return fmt.Errorf("table %s: %w", name, err)
		}
	}
	return nil
}

func encodeTable(w io.Writer, t *storage.Table) error {
	if err := writeString(w, t.Name()); err != nil {
		return err
	}
	schema := t.Schema()
	if err := writeUvarint(w, uint64(schema.Len())); err != nil {
		return err
	}
	for _, c := range schema.Cols {
		if err := writeString(w, c.Name); err != nil {
			return err
		}
		flags := uint64(c.Type) << 1
		if c.NotNull {
			flags |= 1
		}
		if err := writeUvarint(w, flags); err != nil {
			return err
		}
	}
	// V2: partition metadata. keyCol is stored +1 so 0 means "none".
	if err := writeUvarint(w, uint64(t.NumShards())); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(t.ShardKey()+1)); err != nil {
		return err
	}
	data := t.Data()
	n := data.Len()
	if err := writeUvarint(w, uint64(n)); err != nil {
		return err
	}
	for _, col := range data.Cols {
		if err := encodeColumn(w, col, n); err != nil {
			return err
		}
	}
	return nil
}

func encodeColumn(w io.Writer, col storage.Column, n int) error {
	// Null bitmap first.
	nulls := storage.NullsOf(col)
	words := nulls.Words()
	if err := writeUvarint(w, uint64(len(words))); err != nil {
		return err
	}
	var wb [8]byte
	for _, word := range words {
		binary.LittleEndian.PutUint64(wb[:], word)
		if _, err := w.Write(wb[:]); err != nil {
			return err
		}
	}
	switch c := col.(type) {
	case *storage.Int64Column:
		enc, _ := storage.CompressedSize(c.Int64s())
		var payload []byte
		if enc == storage.EncRLE {
			payload = storage.EncodeInt64RLE(c.Int64s())
		} else {
			payload = storage.EncodeInt64Delta(c.Int64s())
		}
		return writeBytes(w, payload)
	case *storage.Float64Column:
		return writeBytes(w, storage.EncodeFloat64Plain(c.Float64s()))
	case *storage.StringColumn:
		return writeBytes(w, storage.EncodeStringDict(c.Strings()))
	case *storage.BoolColumn:
		ints := make([]int64, n)
		for i, b := range c.Bools() {
			if b {
				ints[i] = 1
			}
		}
		return writeBytes(w, storage.EncodeInt64RLE(ints))
	default:
		return fmt.Errorf("engine: cannot encode column type %T", col)
	}
}

func readUvarint(r *bufio.Reader) (uint64, error) { return binary.ReadUvarint(r) }

func readBytes(r *bufio.Reader) ([]byte, error) {
	n, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

func readString(r *bufio.Reader) (string, error) {
	b, err := readBytes(r)
	return string(b), err
}

func (db *DB) loadSnapshot(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return err
	}
	var version int
	switch binary.LittleEndian.Uint32(magic[:]) {
	case snapshotMagicV1:
		version = 1 // pre-sharding snapshot: every table single-shard
	case snapshotMagicV2:
		version = 2
	default:
		return fmt.Errorf("bad snapshot magic")
	}
	nt, err := readUvarint(r)
	if err != nil {
		return err
	}
	for i := uint64(0); i < nt; i++ {
		if err := db.decodeTable(r, version); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) decodeTable(r *bufio.Reader, version int) error {
	name, err := readString(r)
	if err != nil {
		return err
	}
	nc, err := readUvarint(r)
	if err != nil {
		return err
	}
	cols := make([]storage.ColumnDef, nc)
	for i := range cols {
		cname, err := readString(r)
		if err != nil {
			return err
		}
		flags, err := readUvarint(r)
		if err != nil {
			return err
		}
		cols[i] = storage.ColumnDef{Name: cname, Type: storage.Type(flags >> 1), NotNull: flags&1 != 0}
	}
	nShards, keyCol := 1, -1
	if version >= 2 {
		ns, err := readUvarint(r)
		if err != nil {
			return err
		}
		kc, err := readUvarint(r)
		if err != nil {
			return err
		}
		nShards, keyCol = int(ns), int(kc)-1
		if nShards < 1 || nShards > 1<<16 {
			return fmt.Errorf("table %s: bad shard count %d", name, nShards)
		}
		if nShards > 1 && (keyCol < 0 || keyCol >= int(nc)) {
			return fmt.Errorf("table %s: bad partition column %d", name, keyCol)
		}
	}
	n, err := readUvarint(r)
	if err != nil {
		return err
	}
	schema := storage.NewSchema(cols...)
	batch := &storage.Batch{Schema: schema, Cols: make([]storage.Column, nc)}
	for i := range batch.Cols {
		col, err := decodeColumn(r, cols[i].Type, int(n))
		if err != nil {
			return fmt.Errorf("table %s column %s: %w", name, cols[i].Name, err)
		}
		batch.Cols[i] = col
	}
	// Replace re-partitions the concatenated rows by the same hash that
	// produced them, so the rebuilt table has the identical per-shard
	// layout (and therefore identical scan order) as before the save.
	t := storage.NewShardedTable(name, schema, keyCol, nShards)
	if err := t.Replace(batch); err != nil {
		return err
	}
	db.cat.Put(t)
	return nil
}

func decodeColumn(r *bufio.Reader, typ storage.Type, n int) (storage.Column, error) {
	nw, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	var nulls *storage.Bitmap
	if nw > 0 {
		words := make([]uint64, nw)
		var wb [8]byte
		for i := range words {
			if _, err := io.ReadFull(r, wb[:]); err != nil {
				return nil, err
			}
			words[i] = binary.LittleEndian.Uint64(wb[:])
		}
		nulls = storage.BitmapFromWords(words, n)
	}
	payload, err := readBytes(r)
	if err != nil {
		return nil, err
	}
	var col storage.Column
	switch typ {
	case storage.TypeInt64:
		var vals []int64
		if len(payload) > 0 && storage.Encoding(payload[0]) == storage.EncRLE {
			vals, err = storage.DecodeInt64RLEMax(payload, n)
		} else {
			vals, err = storage.DecodeInt64Delta(payload)
		}
		if err != nil {
			return nil, err
		}
		if vals == nil {
			vals = []int64{}
		}
		col = storage.NewInt64Column(vals)
	case storage.TypeFloat64:
		vals, err := storage.DecodeFloat64Plain(payload)
		if err != nil {
			return nil, err
		}
		col = storage.NewFloat64Column(vals)
	case storage.TypeString:
		vals, err := storage.DecodeStringDict(payload)
		if err != nil {
			return nil, err
		}
		col = storage.NewStringColumn(vals)
	case storage.TypeBool:
		ints, err := storage.DecodeInt64RLEMax(payload, n)
		if err != nil {
			return nil, err
		}
		bools := make([]bool, len(ints))
		for i, v := range ints {
			bools[i] = v != 0
		}
		col = storage.NewBoolColumn(bools)
	default:
		return nil, fmt.Errorf("unknown column type %d", typ)
	}
	if col.Len() != n {
		return nil, fmt.Errorf("column has %d rows, expected %d", col.Len(), n)
	}
	if nulls != nil {
		storage.SetNulls(col, nulls)
	}
	return col, nil
}

// --- WAL ---

// walWriter appends length-prefixed SQL statements to the log. It has
// its own mutex because sharded fast-path statements append while
// holding only the shared engine latch — concurrent appends must not
// interleave their length prefix and payload.
//
// Durability uses group commit: the record is written to the OS page
// cache under the lock (cheap), then one caller syncs the file on
// behalf of every record written so far while later arrivals wait for
// a sync generation covering theirs. Concurrent fast-path commits —
// the sharded write path lets several run at once — thereby amortize
// one fsync over a batch of statements instead of queueing a sync per
// statement behind the lock. A lone writer degenerates to write+sync,
// exactly the old behavior.
type walWriter struct {
	mu        sync.Mutex
	syncDone  *sync.Cond // broadcast when an in-flight sync finishes
	path      string
	f         *os.File
	writeGen  uint64 // generation of the latest appended record
	syncedGen uint64 // latest generation covered by a finished sync
	syncing   bool
	err       error // sticky: a failed sync poisons the log

	// Metrics (nil when the owning DB has no registry, e.g. in narrow
	// tests): fsync count and total records covered by those fsyncs.
	// synced_records / fsyncs is the average group-commit batch size.
	fsyncs        *obs.Counter
	syncedRecords *obs.Counter
}

func newWALWriter(path string) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	w := &walWriter{path: path, f: f}
	w.syncDone = sync.NewCond(&w.mu)
	return w, nil
}

func (w *walWriter) append(stmt string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(stmt)))
	if _, err := w.f.Write(buf[:n]); err != nil {
		return err
	}
	if _, err := w.f.Write([]byte(stmt)); err != nil {
		return err
	}
	w.writeGen++
	gen := w.writeGen
	for w.syncedGen < gen {
		if w.err != nil {
			return w.err
		}
		if w.syncing {
			w.syncDone.Wait()
			continue
		}
		// Become the syncer for everything appended so far. The lock is
		// released during the fsync, so more records land in the page
		// cache meanwhile; their writers wait for the next sync round.
		w.syncing = true
		target := w.writeGen
		w.mu.Unlock()
		err := w.f.Sync()
		w.mu.Lock()
		w.syncing = false
		if err != nil {
			w.err = err
		} else {
			if w.fsyncs != nil {
				w.fsyncs.Inc()
				w.syncedRecords.Add(target - w.syncedGen)
			}
			if w.syncedGen < target {
				w.syncedGen = target
			}
		}
		w.syncDone.Broadcast()
	}
	return nil
}

func (w *walWriter) truncate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.syncing {
		w.syncDone.Wait()
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	f, err := os.Create(w.path)
	if err != nil {
		return err
	}
	w.f = f
	w.err = nil
	w.syncedGen = w.writeGen // fresh log: nothing pending
	return nil
}

func (w *walWriter) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.syncing {
		w.syncDone.Wait()
	}
	return w.f.Close()
}

// replayWAL re-executes logged statements against the recovered
// snapshot. A truncated trailing record (torn write) ends replay
// cleanly.
func (db *DB) replayWAL(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	for {
		n, err := binary.ReadUvarint(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return nil // torn length prefix: stop replay
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil // torn record: stop replay
		}
		if _, err := db.Exec(string(buf)); err != nil {
			return fmt.Errorf("replaying %q: %w", string(buf), err)
		}
	}
}
