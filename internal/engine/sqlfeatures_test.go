package engine

import (
	"testing"
)

// End-to-end SQL feature coverage: every construct the SQL graph
// algorithms and the §3.4 metadata queries rely on, run through parse →
// plan → execute.

func featureDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec(t, db,
		"CREATE TABLE people (id INTEGER NOT NULL, name VARCHAR, age INTEGER, score DOUBLE, vip BOOLEAN)",
		`INSERT INTO people VALUES
			(1, 'ada', 36, 9.5, TRUE),
			(2, 'bob', 25, 4.5, FALSE),
			(3, 'cyd', NULL, 7.25, FALSE),
			(4, 'dee', 25, NULL, TRUE)`,
	)
	return db
}

func TestSQLCaseExpression(t *testing.T) {
	db := featureDB(t)
	rows, err := db.Query(`SELECT name, CASE WHEN age IS NULL THEN 'unknown'
		WHEN age < 30 THEN 'young' ELSE 'adult' END AS bucket FROM people ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"adult", "young", "unknown", "young"}
	for i, w := range want {
		if rows.Value(i, 1).S != w {
			t.Errorf("bucket[%d] = %q, want %q", i, rows.Value(i, 1).S, w)
		}
	}
}

func TestSQLLikeAndIn(t *testing.T) {
	db := featureDB(t)
	v, err := db.QueryScalar("SELECT COUNT(*) FROM people WHERE name LIKE '%d%'")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 3 { // ada, cyd, dee
		t.Errorf("LIKE matched %v, want 3", v)
	}
	v, err = db.QueryScalar("SELECT COUNT(*) FROM people WHERE age IN (25, 36)")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 3 {
		t.Errorf("IN matched %v, want 3", v)
	}
	v, err = db.QueryScalar("SELECT COUNT(*) FROM people WHERE age NOT IN (25)")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 1 { // NULL age is neither in nor not-in
		t.Errorf("NOT IN matched %v, want 1", v)
	}
}

func TestSQLBetweenAndBooleans(t *testing.T) {
	db := featureDB(t)
	v, err := db.QueryScalar("SELECT COUNT(*) FROM people WHERE score BETWEEN 5.0 AND 10.0")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 2 {
		t.Errorf("BETWEEN matched %v, want 2", v)
	}
	v, err = db.QueryScalar("SELECT COUNT(*) FROM people WHERE vip")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 2 {
		t.Errorf("bare boolean matched %v, want 2", v)
	}
	v, err = db.QueryScalar("SELECT COUNT(*) FROM people WHERE NOT vip AND score > 5.0")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 1 {
		t.Errorf("NOT + AND matched %v, want 1", v)
	}
}

func TestSQLCastAndArithmetic(t *testing.T) {
	db := featureDB(t)
	v, err := db.QueryScalar("SELECT CAST(score AS INTEGER) FROM people WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 7 {
		t.Errorf("cast = %v", v)
	}
	v, err = db.QueryScalar("SELECT age % 10 FROM people WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 6 {
		t.Errorf("modulo = %v", v)
	}
	v, err = db.QueryScalar("SELECT name || '!' FROM people WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if v.S != "bob!" {
		t.Errorf("concat = %v", v)
	}
}

func TestSQLNullAggregation(t *testing.T) {
	db := featureDB(t)
	rows, err := db.Query("SELECT COUNT(*), COUNT(age), AVG(age), MIN(score), MAX(score) FROM people")
	if err != nil {
		t.Fatal(err)
	}
	r := rows.Row(0)
	if r[0].I != 4 || r[1].I != 3 {
		t.Errorf("counts = %v, %v", r[0], r[1])
	}
	if r[2].F != (36.0+25+25)/3 {
		t.Errorf("avg skips NULLs: %v", r[2])
	}
	if r[3].F != 4.5 || r[4].F != 9.5 {
		t.Errorf("min/max = %v, %v", r[3], r[4])
	}
}

func TestSQLGroupByMultipleKeys(t *testing.T) {
	db := featureDB(t)
	rows, err := db.Query(`SELECT vip, age, COUNT(*) AS c FROM people
		GROUP BY vip, age ORDER BY 3 DESC, 2`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 4 {
		t.Fatalf("groups = %d", rows.Len())
	}
	if rows.Value(0, 2).I != 1 {
		t.Errorf("every (vip,age) group is unique here: %v", rows.Row(0))
	}
}

func TestSQLOrderByMultipleKeysAndNulls(t *testing.T) {
	db := featureDB(t)
	rows, err := db.Query("SELECT id, age FROM people ORDER BY age, id DESC")
	if err != nil {
		t.Fatal(err)
	}
	// NULL sorts first, then 25 (ids 4,2 desc), then 36.
	wantIDs := []int64{3, 4, 2, 1}
	for i, w := range wantIDs {
		if rows.Value(i, 0).I != w {
			t.Errorf("row %d id = %v, want %d", i, rows.Value(i, 0), w)
		}
	}
}

func TestSQLScalarFunctionsInQueries(t *testing.T) {
	db := featureDB(t)
	v, err := db.QueryScalar("SELECT UPPER(SUBSTR(name, 1, 2)) FROM people WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if v.S != "AD" {
		t.Errorf("nested funcs = %v", v)
	}
	v, err = db.QueryScalar("SELECT COALESCE(age, 0) + LENGTH(name) FROM people WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 3 {
		t.Errorf("coalesce+length = %v", v)
	}
}

func TestSQLSelfJoinWithInequality(t *testing.T) {
	db := featureDB(t)
	// Pairs of distinct people with the same age (the strong-overlap
	// join shape: equi key + inequality residual).
	rows, err := db.Query(`SELECT a.name, b.name FROM people a
		JOIN people b ON a.age = b.age AND a.id < b.id`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 || rows.Value(0, 0).S != "bob" || rows.Value(0, 1).S != "dee" {
		t.Errorf("self join = %d rows", rows.Len())
	}
}

func TestSQLInsertCoercion(t *testing.T) {
	db := featureDB(t)
	// Integer literal into DOUBLE column, string into VARCHAR.
	mustExec(t, db, "INSERT INTO people VALUES (5, 'eve', 30, 8, FALSE)")
	v, err := db.QueryScalar("SELECT score FROM people WHERE id = 5")
	if err != nil {
		t.Fatal(err)
	}
	if v.Type.String() != "DOUBLE" || v.F != 8 {
		t.Errorf("coerced insert = %v (%s)", v, v.Type)
	}
}

func TestSQLUnionAllTypeCoercionRejected(t *testing.T) {
	db := featureDB(t)
	if _, err := db.Query("SELECT name FROM people UNION ALL SELECT age FROM people"); err == nil {
		t.Error("VARCHAR / INTEGER union must be rejected")
	}
}

func TestSQLDivisionSemantics(t *testing.T) {
	db := featureDB(t)
	v, err := db.QueryScalar("SELECT 1 / 4")
	if err != nil {
		t.Fatal(err)
	}
	if v.F != 0.25 {
		t.Errorf("integer division must not truncate (rank/outdeg!): %v", v)
	}
	v, err = db.QueryScalar("SELECT 1.0 / 0.0")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Null {
		t.Errorf("division by zero = %v, want NULL", v)
	}
}
