package engine

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/trace"
)

// Statement-lifecycle tracing glue: the DB owns one trace.Tracer, every
// session registers itself for the vx$sessions view, and statement
// entry points stamp lifecycle spans (admission, parse, plan-cache,
// plan, bind, grant, gate, exec, wal, drain) into the statement's
// collector. The collector travels by context into layers that would
// otherwise need signature churn (WAL append), and its ring is what the
// vx$traces / vx$trace_spans system views scan.

// sessionInfo is one session's registry row. System-view scans read it
// from other goroutines while the session runs statements, so every
// mutable field is an atomic.
type sessionInfo struct {
	id         uint64
	maxWorkers int64        // admission cap fixed at session creation
	workers    atomic.Int64 // SET parallelism (0 = engine default)
	workMem    atomic.Int64 // SET work_mem (0 = engine default)
	inTxn      atomic.Bool
	stmts      atomic.Int64  // data statements started
	lastTrace  atomic.Uint64 // trace id of the most recent traced statement
}

// registerSession adds a session to the registry (vx$sessions).
func (db *DB) registerSession(maxWorkers int) *sessionInfo {
	db.sessMu.Lock()
	defer db.sessMu.Unlock()
	db.sessSeq++
	info := &sessionInfo{id: db.sessSeq, maxWorkers: int64(maxWorkers)}
	db.sessions[info.id] = info
	return info
}

// unregisterSession drops a closed session from the registry.
func (db *DB) unregisterSession(id uint64) {
	db.sessMu.Lock()
	delete(db.sessions, id)
	db.sessMu.Unlock()
}

// sessionInfos snapshots the registry rows in id order.
func (db *DB) sessionInfos() []*sessionInfo {
	db.sessMu.Lock()
	defer db.sessMu.Unlock()
	out := make([]*sessionInfo, 0, len(db.sessions))
	for _, info := range db.sessions {
		out = append(out, info)
	}
	return out
}

// Tracer exposes the statement tracer (sampling knob, recent ring).
func (db *DB) Tracer() *trace.Tracer { return db.tracer }

// traceHooksOn gates the statement-trace entry point, mirroring
// exec.SetStatsEnabled for operator counters: benchmarks flip it off to
// measure what the disabled tracing fabric costs relative to an engine
// with no tracing at all. It is process-wide and exists for
// measurement, not operation — use SET trace_sample = 0 to turn
// tracing off.
var traceHooksOn atomic.Bool

func init() { traceHooksOn.Store(true) }

// SetTraceHooks enables or disables the statement-trace entry point.
func SetTraceHooks(on bool) { traceHooksOn.Store(on) }

// NoteQueueWait records how long the next statement waited in the
// server's per-connection admission queue before reaching the session;
// the session folds it into that statement's trace as the admission
// span. One statement consumes it.
func (s *Session) NoteQueueWait(d time.Duration) {
	if d > 0 {
		s.queueWait.Store(int64(d))
	}
}

// startTrace opens a trace for one data statement: the trace starts at
// engine entry shifted earlier by any admission-queue wait (so the wait
// is inside the trace), and the parse span is stamped from the caller's
// measurement. Returns nil when tracing is off.
func (s *Session) startTrace(text string, enter time.Time, parseDur time.Duration) *trace.Collector {
	s.info.stmts.Add(1)
	wait := time.Duration(s.queueWait.Swap(0))
	if !traceHooksOn.Load() {
		return nil
	}
	tc := s.db.tracer.StartAt(s.info.id, text, enter.Add(-wait))
	if tc == nil {
		return nil
	}
	if wait > 0 {
		tc.Add("admission", enter.Add(-wait), wait, "server statement queue")
	}
	tc.Add("parse", enter, parseDur, "")
	s.lastTrace.Store(tc)
	s.info.lastTrace.Store(tc.ID())
	return tc
}

// finishTrace completes a statement's trace (nil-safe).
func (db *DB) finishTrace(tc *trace.Collector) {
	if tc == nil {
		return
	}
	db.tracer.Finish(tc, time.Since(tc.StartTime()))
}

// LastTraceID returns the trace id of the session's most recent traced
// statement (0 when tracing is off). The wire server reports it in the
// Done-frame trailer so clients can join their statement against
// vx$traces.
func (s *Session) LastTraceID() uint64 {
	return s.info.lastTrace.Load()
}

// addOperatorSpans folds the executor's per-operator counters into the
// trace as depth-1+ spans nested inside the drain stage. Operator time
// includes child pulls, so these spans are detail, not addends: only
// depth-0 lifecycle spans sum to the statement duration. Operators that
// spilled get an extra explicit spill span.
func addOperatorSpans(tc *trace.Collector, root exec.Operator, drainStart time.Time) {
	if tc == nil || root == nil {
		return
	}
	off := int64(drainStart.Sub(tc.StartTime()))
	for _, r := range exec.StatsReport(root) {
		tc.AddSpan(trace.Span{
			Stage:   "op:" + r.Name,
			Detail:  fmt.Sprintf("rows=%d batches=%d", r.Rows, r.Batches),
			StartNs: off,
			DurNs:   r.Nanos,
			Depth:   int32(1 + r.Depth),
		})
		if r.SpillRuns > 0 {
			tc.AddSpan(trace.Span{
				Stage:   "spill",
				Detail:  fmt.Sprintf("op=%s runs=%d bytes=%d", r.Name, r.SpillRuns, r.SpillBytes),
				StartNs: off,
				DurNs:   0,
				Depth:   int32(1 + r.Depth),
			})
		}
	}
}

// sysTableVersion hands out distinct versions for system-table
// materializations (every scan sees fresh data).
var sysTableVersion atomic.Uint64
