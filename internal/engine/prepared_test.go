package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
)

// prepDB builds the prepared-statement corpus database: a plain table
// with every column type (and NULLs) plus a hash-partitioned edge
// table for routing and pruning coverage.
func prepDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec(t, db,
		"CREATE TABLE people (id INTEGER NOT NULL, name VARCHAR, age INTEGER, score DOUBLE, vip BOOLEAN)",
		`INSERT INTO people VALUES
			(1, 'ada', 36, 9.5, TRUE),
			(2, 'bob', 25, 4.5, FALSE),
			(3, 'cyd', NULL, 7.25, FALSE),
			(4, 'it''s', 25, NULL, TRUE)`,
		"CREATE TABLE edges (src INTEGER NOT NULL, dst INTEGER, w DOUBLE) PARTITION BY HASH(src) SHARDS 4",
	)
	var ins strings.Builder
	ins.WriteString("INSERT INTO edges VALUES ")
	for i := 0; i < 200; i++ {
		if i > 0 {
			ins.WriteString(", ")
		}
		fmt.Fprintf(&ins, "(%d, %d, %d.5)", i%20, i, i%7)
	}
	mustExec(t, db, ins.String())
	return db
}

// rowLines renders a result to one string per row for comparison.
func rowLines(t *testing.T, rows *Rows) []string {
	t.Helper()
	if _, err := rows.Materialize(); err != nil {
		t.Fatal(err)
	}
	out := make([]string, rows.Len())
	for i := 0; i < rows.Len(); i++ {
		parts := make([]string, rows.Schema().Len())
		for j := range parts {
			parts[j] = rows.Value(i, j).String()
		}
		out[i] = strings.Join(parts, "\x1f")
	}
	return out
}

// preparedCorpus pairs parameterized statements with their
// inline-literal equivalents. Every SQL feature the sqlfeatures tests
// exercise appears with at least one injected parameter.
var preparedCorpus = []struct {
	bound string
	args  []storage.Value
	lit   string
}{
	{"SELECT id, name FROM people WHERE id = $1", vals(storage.Int64(2)),
		"SELECT id, name FROM people WHERE id = 2"},
	{"SELECT $1, $2, $3, $4", vals(storage.Int64(7), storage.Str("it's"), storage.Float64(1.5), storage.Bool(true)),
		"SELECT 7, 'it''s', 1.5, TRUE"},
	{"SELECT name FROM people WHERE age > $1 AND score < $2 ORDER BY id", vals(storage.Int64(20), storage.Float64(9.0)),
		"SELECT name FROM people WHERE age > 20 AND score < 9.0 ORDER BY id"},
	{"SELECT name FROM people WHERE name = $1", vals(storage.Str("it's")),
		"SELECT name FROM people WHERE name = 'it''s'"},
	{"SELECT name, CASE WHEN score > $1 THEN 'hi' ELSE 'lo' END FROM people ORDER BY id", vals(storage.Float64(5.0)),
		"SELECT name, CASE WHEN score > 5.0 THEN 'hi' ELSE 'lo' END FROM people ORDER BY id"},
	{"SELECT COUNT(*), AVG(age) FROM people WHERE age >= $1", vals(storage.Int64(25)),
		"SELECT COUNT(*), AVG(age) FROM people WHERE age >= 25"},
	{"SELECT COUNT(*) FROM people WHERE age IN ($1, $2)", vals(storage.Int64(25), storage.Int64(36)),
		"SELECT COUNT(*) FROM people WHERE age IN (25, 36)"},
	{"SELECT COUNT(*) FROM people WHERE name LIKE $1", vals(storage.Str("%d%")),
		"SELECT COUNT(*) FROM people WHERE name LIKE '%d%'"},
	{"SELECT COUNT(*) FROM people WHERE age = $1", vals(storage.Null(storage.TypeInt64)),
		"SELECT COUNT(*) FROM people WHERE age = NULL"},
	{"SELECT dst FROM edges WHERE src = $1 ORDER BY dst", vals(storage.Int64(7)),
		"SELECT dst FROM edges WHERE src = 7 ORDER BY dst"},
	{"SELECT p.name, e.dst FROM people p, edges e WHERE p.id = e.src AND e.w > $1 ORDER BY p.id, e.dst", vals(storage.Float64(4.0)),
		"SELECT p.name, e.dst FROM people p, edges e WHERE p.id = e.src AND e.w > 4.0 ORDER BY p.id, e.dst"},
	{"SELECT src, COUNT(*) AS deg FROM edges GROUP BY src HAVING COUNT(*) > $1 ORDER BY src", vals(storage.Int64(9)),
		"SELECT src, COUNT(*) AS deg FROM edges GROUP BY src HAVING COUNT(*) > 9 ORDER BY src"},
	{"SELECT DISTINCT w FROM edges WHERE src < $1", vals(storage.Int64(10)),
		"SELECT DISTINCT w FROM edges WHERE src < 10"},
	{"WITH big AS (SELECT src, dst FROM edges WHERE w > $1) SELECT COUNT(*) FROM big", vals(storage.Float64(3.0)),
		"WITH big AS (SELECT src, dst FROM edges WHERE w > 3.0) SELECT COUNT(*) FROM big"},
	{"SELECT dst FROM edges WHERE src = $1 UNION ALL SELECT id FROM people WHERE id = $2 ORDER BY 1", vals(storage.Int64(3), storage.Int64(1)),
		"SELECT dst FROM edges WHERE src = 3 UNION ALL SELECT id FROM people WHERE id = 1 ORDER BY 1"},
}

func vals(vs ...storage.Value) []storage.Value { return vs }

// TestPreparedParamLiteralDifferential runs every corpus statement
// twice through bind-and-run (the second execution reuses the cached
// plan) and once with inline literals, at parallelism 1, 2 and 8: all
// three results must be identical, proving a bound Param behaves
// exactly like the literal the substitution path would have rendered.
func TestPreparedParamLiteralDifferential(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{1, 2, 8} {
		db := prepDB(t)
		sess := db.NewSession()
		if _, _, err := sess.RunStream(ctx, fmt.Sprintf("SET parallelism = %d", workers)); err != nil {
			t.Fatal(err)
		}
		for _, tc := range preparedCorpus {
			want := func() []string {
				rows, _, err := sess.RunStream(ctx, tc.lit)
				if err != nil {
					t.Fatalf("w=%d literal %q: %v", workers, tc.lit, err)
				}
				return rowLines(t, rows)
			}()
			for run := 0; run < 2; run++ {
				rows, _, err := sess.RunStreamBound(ctx, tc.bound, tc.args)
				if err != nil {
					t.Fatalf("w=%d run=%d bound %q: %v", workers, run, tc.bound, err)
				}
				got := rowLines(t, rows)
				if !strings.Contains(tc.bound, "ORDER BY") {
					sort.Strings(got)
					w := append([]string(nil), want...)
					sort.Strings(w)
					want = w
				}
				if strings.Join(got, "\n") != strings.Join(want, "\n") {
					t.Errorf("w=%d run=%d %q:\n got %q\nwant %q", workers, run, tc.bound, got, want)
				}
			}
		}
	}
}

// TestPreparedCacheHits asserts the tentpole contract: after the first
// execution of a statement, repeated executions do zero parse and zero
// plan work — only cache hits — while still re-binding arguments (each
// execution returns the rows for ITS key).
func TestPreparedCacheHits(t *testing.T) {
	db := prepDB(t)
	sess := db.NewSession()
	ctx := context.Background()
	const stmt = "SELECT dst FROM edges WHERE src = $1 ORDER BY dst"

	const execs = 6
	for i := 0; i < execs; i++ {
		src := int64(i % 3) // cycle keys: each exec must see its own rows
		rows, _, err := sess.RunStreamBound(ctx, stmt, vals(storage.Int64(src)))
		if err != nil {
			t.Fatal(err)
		}
		lines := rowLines(t, rows)
		if len(lines) != 10 {
			t.Fatalf("exec %d: %d rows, want 10", i, len(lines))
		}
		if lines[0] != storage.Int64(src).String() {
			t.Errorf("exec %d: first dst = %s, want %d", i, lines[0], src)
		}
	}

	st := db.PreparedStats()
	if st.Parses != 1 {
		t.Errorf("Parses = %d, want 1 (re-parse on the hot path)", st.Parses)
	}
	if st.Plans != 1 {
		t.Errorf("Plans = %d, want 1 (re-plan on the hot path)", st.Plans)
	}
	if st.Hits != execs-1 {
		t.Errorf("Hits = %d, want %d", st.Hits, execs-1)
	}
	if st.Misses != 1 || st.Bypasses != 0 {
		t.Errorf("Misses/Bypasses = %d/%d, want 1/0", st.Misses, st.Bypasses)
	}
}

// TestPreparedCacheDDLInvalidation drops and recreates a table between
// executions: the cached plan must be invalidated (catalog version
// key), and the next execution re-plans against the new table.
func TestPreparedCacheDDLInvalidation(t *testing.T) {
	db := New()
	mustExec(t, db,
		"CREATE TABLE t (id INTEGER NOT NULL, v INTEGER)",
		"INSERT INTO t VALUES (1, 10), (2, 20)",
	)
	sess := db.NewSession()
	ctx := context.Background()
	const stmt = "SELECT v FROM t WHERE id = $1"

	read := func(id int64) []string {
		t.Helper()
		rows, _, err := sess.RunStreamBound(ctx, stmt, vals(storage.Int64(id)))
		if err != nil {
			t.Fatal(err)
		}
		return rowLines(t, rows)
	}

	if got := read(1); len(got) != 1 || got[0] != "10" {
		t.Fatalf("before DDL: %q", got)
	}
	if got := read(2); len(got) != 1 || got[0] != "20" {
		t.Fatalf("cached exec: %q", got)
	}

	mustExec(t, db,
		"DROP TABLE t",
		"CREATE TABLE t (id INTEGER NOT NULL, v INTEGER)",
		"INSERT INTO t VALUES (1, 111)",
	)
	if got := read(1); len(got) != 1 || got[0] != "111" {
		t.Fatalf("after DDL, cached plan served stale table: %q", got)
	}

	st := db.PreparedStats()
	if st.Parses != 1 {
		t.Errorf("Parses = %d, want 1 (DDL keeps the parse)", st.Parses)
	}
	if st.Plans != 2 {
		t.Errorf("Plans = %d, want 2 (one re-plan after DDL)", st.Plans)
	}

	// Dropping the table without recreating it must surface an error,
	// not a stale result.
	mustExec(t, db, "DROP TABLE t")
	if _, _, err := sess.RunStreamBound(ctx, stmt, vals(storage.Int64(1))); err == nil {
		t.Error("bound execution of a dropped table succeeded")
	}
}

// TestPreparedConcurrentExec hammers one cached statement from many
// goroutines (with a parameterized fast-path writer running alongside)
// under the race detector: the single-checkout discipline must keep
// every execution correct, with concurrent holders bypassing to fresh
// plans rather than sharing mutable state.
func TestPreparedConcurrentExec(t *testing.T) {
	db := prepDB(t)
	ctx := context.Background()
	const stmt = "SELECT dst FROM edges WHERE src = $1 ORDER BY dst"
	const goroutines = 8
	const iters = 40

	var wg sync.WaitGroup
	errs := make(chan error, goroutines+1)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := db.NewSession()
			for i := 0; i < iters; i++ {
				src := int64((g + i) % 20)
				rows, _, err := sess.RunStreamBound(ctx, stmt, vals(storage.Int64(src)))
				if err != nil {
					errs <- fmt.Errorf("g%d i%d: %w", g, i, err)
					return
				}
				var n int
				for {
					b, err := rows.Next()
					if err != nil {
						errs <- fmt.Errorf("g%d i%d next: %w", g, i, err)
						return
					}
					if b == nil {
						break
					}
					for r := 0; r < b.Len(); r++ {
						if b.Cols[0].Value(r).I%20 != src {
							errs <- fmt.Errorf("g%d i%d: dst %d not from src %d", g, i, b.Cols[0].Value(r).I, src)
							return
						}
						n++
					}
				}
				if n != 10 {
					errs <- fmt.Errorf("g%d i%d: %d rows, want 10", g, i, n)
					return
				}
			}
		}(g)
	}
	// A concurrent parameterized fast-path writer on a disjoint table.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess := db.NewSession()
		for i := 0; i < iters; i++ {
			if _, _, err := sess.RunStreamBound(ctx,
				"UPDATE people SET age = $1 WHERE id = $2",
				vals(storage.Int64(int64(30+i)), storage.Int64(1))); err != nil {
				errs <- fmt.Errorf("writer i%d: %w", i, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := db.PreparedStats()
	if total := st.Hits + st.Misses + st.Bypasses; total != goroutines*iters {
		t.Errorf("hit+miss+bypass = %d, want %d", total, goroutines*iters)
	}
	if st.Parses != 2 { // one SELECT text, one UPDATE text
		t.Errorf("Parses = %d, want 2", st.Parses)
	}
}

// TestPreparedDML runs parameterized INSERT / UPDATE / DELETE through
// bind-and-run on a persistent database, then reopens it: the WAL
// records the substituted rendering, so replay reproduces the exact
// state the bound executions produced.
func TestPreparedDML(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE p (id INTEGER NOT NULL, name VARCHAR, score DOUBLE) PARTITION BY HASH(id) SHARDS 4")
	sess := db.NewSession()
	ctx := context.Background()

	exec := func(stmt string, args ...storage.Value) Result {
		t.Helper()
		_, res, err := sess.RunStreamBound(ctx, stmt, args)
		if err != nil {
			t.Fatalf("%q: %v", stmt, err)
		}
		return res
	}
	for i := int64(1); i <= 8; i++ {
		exec("INSERT INTO p VALUES ($1, $2, $3)",
			storage.Int64(i), storage.Str(fmt.Sprintf("n%d's", i)), storage.Float64(float64(i)/2))
	}
	if res := exec("UPDATE p SET score = $1 WHERE id = $2", storage.Float64(99.5), storage.Int64(3)); res.RowsAffected != 1 {
		t.Fatalf("UPDATE affected %d rows", res.RowsAffected)
	}
	if res := exec("DELETE FROM p WHERE id = $1", storage.Int64(7)); res.RowsAffected != 1 {
		t.Fatalf("DELETE affected %d rows", res.RowsAffected)
	}
	// INSERT ... SELECT with a parameter in the source query.
	exec("INSERT INTO p SELECT id + $1, name, score FROM p WHERE id = $2",
		storage.Int64(100), storage.Int64(3))

	check := func(db *DB, label string) {
		t.Helper()
		rows, err := db.Query("SELECT id, name, score FROM p ORDER BY id")
		if err != nil {
			t.Fatal(err)
		}
		if rows.Len() != 8 {
			t.Fatalf("%s: %d rows, want 8", label, rows.Len())
		}
		if v := rows.Value(2, 2); v.F != 99.5 {
			t.Errorf("%s: updated score = %v", label, v)
		}
		last := rows.Value(7, 0)
		if last.I != 103 {
			t.Errorf("%s: INSERT..SELECT row id = %v, want 103", label, last)
		}
		if n := rows.Value(0, 1); n.S != "n1's" {
			t.Errorf("%s: name round trip = %q", label, n.S)
		}
	}
	check(db, "live")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	check(db2, "replayed")
}

// TestPreparedArgValidation: too few arguments fail cleanly; extra
// arguments are ignored (matching the substitution path's contract).
func TestPreparedArgValidation(t *testing.T) {
	db := prepDB(t)
	sess := db.NewSession()
	ctx := context.Background()
	if _, _, err := sess.RunStreamBound(ctx, "SELECT id FROM people WHERE id = $2", vals(storage.Int64(1))); err == nil {
		t.Error("missing argument accepted")
	}
	rows, _, err := sess.RunStreamBound(ctx, "SELECT id FROM people WHERE id = $1",
		vals(storage.Int64(1), storage.Int64(99)))
	if err != nil {
		t.Fatalf("extra argument rejected: %v", err)
	}
	if got := rowLines(t, rows); len(got) != 1 || got[0] != "1" {
		t.Errorf("got %q", got)
	}
}

// TestFastPathShardPruning checks the pruning decision and its
// semantics: a WHERE pinning the partition key (literal or bound
// parameter) resolves to the key's shard, ineligible shapes decline,
// and the pruned execution mutates exactly the matching rows.
func TestFastPathShardPruning(t *testing.T) {
	db := New()
	mustExec(t, db,
		"CREATE TABLE t (id INTEGER NOT NULL, v INTEGER) PARTITION BY HASH(id) SHARDS 4",
	)
	k1, k2 := pickDisjointKeys(t, 4)
	mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d, 1), (%d, 2), (%d, 3)", k1, k1, k2))
	tbl, err := db.cat.Get("t")
	if err != nil {
		t.Fatal(err)
	}

	whereOf := func(text string) sql.Expr {
		t.Helper()
		st, err := sql.Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		switch s := st.(type) {
		case *sql.UpdateStmt:
			return s.Where
		case *sql.DeleteStmt:
			return s.Where
		}
		t.Fatalf("not DML: %q", text)
		return nil
	}

	wantShard := int(storage.HashValue(storage.Int64(k1)) % 4)
	if sh, ok := pinnedShard(tbl, whereOf(fmt.Sprintf("DELETE FROM t WHERE id = %d AND v > 0", k1)), nil); !ok || sh != wantShard {
		t.Errorf("literal pin = %d/%v, want %d/true", sh, ok, wantShard)
	}
	ps := plan.NewParams(vals(storage.Int64(k1)))
	if sh, ok := pinnedShard(tbl, whereOf("DELETE FROM t WHERE id = $1"), ps); !ok || sh != wantShard {
		t.Errorf("param pin = %d/%v, want %d/true", sh, ok, wantShard)
	}
	for _, text := range []string{
		"DELETE FROM t WHERE id > 1",           // not an equality
		"DELETE FROM t WHERE v = 1",            // not the key column
		"DELETE FROM t WHERE id = 'x'",         // cross-type key
		"DELETE FROM t WHERE id = 1 OR id = 2", // disjunction
		"DELETE FROM t WHERE other.id = 1",     // wrong qualifier
	} {
		if _, ok := pinnedShard(tbl, whereOf(text), nil); ok {
			t.Errorf("%q wrongly pinned a shard", text)
		}
	}

	// Pruned UPDATE touches only its key's rows.
	res, err := db.Exec(fmt.Sprintf("UPDATE t SET v = v + 10 WHERE id = %d", k1))
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 2 {
		t.Errorf("pruned UPDATE affected %d rows, want 2", res.RowsAffected)
	}
	v, err := db.QueryScalar(fmt.Sprintf("SELECT v FROM t WHERE id = %d", k2))
	if err != nil || v.I != 3 {
		t.Errorf("other shard's row changed: %v %v", v, err)
	}
	// SET on the key column must decline pruning but stay correct.
	if _, err := db.Exec(fmt.Sprintf("UPDATE t SET id = %d WHERE id = %d", k2, k2)); err != nil {
		t.Fatal(err)
	}
	// Pruned DELETE removes only its key's rows.
	res, err = db.Exec(fmt.Sprintf("DELETE FROM t WHERE id = %d", k1))
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 2 {
		t.Errorf("pruned DELETE affected %d rows, want 2", res.RowsAffected)
	}
	if n, err := db.QueryScalar("SELECT COUNT(*) FROM t"); err != nil || n.I != 1 {
		t.Errorf("table left with %v rows, want 1 (err %v)", n, err)
	}
}

// TestShardPrunedParallelUpdates drives two sessions updating disjoint
// keys of one table concurrently. With pruning, each statement locks
// only its key's shard; under the race detector this proves the
// shard-local match+mutate path shares nothing across shards, and the
// final values prove no update was lost.
func TestShardPrunedParallelUpdates(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (id INTEGER NOT NULL, v INTEGER) PARTITION BY HASH(id) SHARDS 4")
	k1, k2 := pickDisjointKeys(t, 4)
	mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d, 0), (%d, 0)", k1, k2))

	const iters = 60
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, key := range []int64{k1, k2} {
		wg.Add(1)
		go func(i int, key int64) {
			defer wg.Done()
			sess := db.NewSession()
			for n := 0; n < iters; n++ {
				// Alternate literal and bound executions so both pruned
				// entry points run concurrently.
				var err error
				if n%2 == 0 {
					_, _, err = sess.RunStream(ctx, fmt.Sprintf("UPDATE t SET v = v + 1 WHERE id = %d", key))
				} else {
					_, _, err = sess.RunStreamBound(ctx, "UPDATE t SET v = v + 1 WHERE id = $1", vals(storage.Int64(key)))
				}
				if err != nil {
					errs[i] = err
					return
				}
			}
		}(i, key)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, key := range []int64{k1, k2} {
		v, err := db.QueryScalar(fmt.Sprintf("SELECT v FROM t WHERE id = %d", key))
		if err != nil {
			t.Fatal(err)
		}
		if v.I != iters {
			t.Errorf("key %d: v = %d, want %d (lost updates)", key, v.I, iters)
		}
	}
}
