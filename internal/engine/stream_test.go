package engine

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// bigTable seeds a table large enough to produce several result
// batches.
func bigTable(t *testing.T, rows int) *DB {
	t.Helper()
	db := New()
	mustExec(t, db, "CREATE TABLE big (id INTEGER NOT NULL, w DOUBLE)")
	for lo := 0; lo < rows; {
		stmt := "INSERT INTO big VALUES "
		for i := 0; i < 500 && lo < rows; i++ {
			if i > 0 {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, %d.5)", lo, lo)
			lo++
		}
		mustExec(t, db, stmt)
	}
	return db
}

// TestOffsetWithoutLimitAndLimitZero is the parser-to-executor
// regression for the Limit operator's sentinels: OFFSET alone must
// return everything past the offset (the planner installs a max-int
// sentinel, not zero), and LIMIT 0 must return no rows.
func TestOffsetWithoutLimitAndLimitZero(t *testing.T) {
	db := newGraphDB(t)

	all := queryInts(t, db, "SELECT id FROM vertex ORDER BY id")
	if len(all) != 4 {
		t.Fatalf("fixture: %v", all)
	}
	got := queryInts(t, db, "SELECT id FROM vertex ORDER BY id OFFSET 2")
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("OFFSET 2 without LIMIT: got %v, want [3 4]", got)
	}
	if got := queryInts(t, db, "SELECT id FROM vertex OFFSET 0"); len(got) != 4 {
		t.Fatalf("OFFSET 0: got %d rows, want 4", len(got))
	}
	if got := queryInts(t, db, "SELECT id FROM vertex LIMIT 0"); len(got) != 0 {
		t.Fatalf("LIMIT 0: got %d rows, want 0", len(got))
	}
	got = queryInts(t, db, "SELECT id FROM vertex ORDER BY id LIMIT 2 OFFSET 1")
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("LIMIT 2 OFFSET 1: got %v, want [2 3]", got)
	}
	// OFFSET past the end is empty, not an error.
	if got := queryInts(t, db, "SELECT id FROM vertex OFFSET 99"); len(got) != 0 {
		t.Fatalf("OFFSET 99: got %d rows, want 0", len(got))
	}
}

// TestQueryStreamYieldsBeforeDrain asserts the streaming result
// produces its first batch while the statement is still running, and
// that under snapshot isolation an open stream blocks no writer: the
// INSERT commits mid-drain and the stream still yields exactly its
// pinned version.
func TestQueryStreamYieldsBeforeDrain(t *testing.T) {
	const rowsSeeded = 5000
	db := bigTable(t, rowsSeeded)
	rows, err := db.QueryStream(context.Background(), "SELECT id, w FROM big WHERE w > 0.0")
	if err != nil {
		t.Fatal(err)
	}
	first, err := rows.Next()
	if err != nil || first == nil || first.Len() == 0 {
		t.Fatalf("first batch: %v %v", first, err)
	}
	got := first.Len()

	// A write commits immediately while the stream is mid-drain — the
	// reader holds a snapshot pin, not the engine latch.
	done := make(chan struct{})
	go func() {
		mustExec(t, db, "INSERT INTO big VALUES (99999, 1.0)")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("write blocked behind an open result stream")
	}

	// The stream keeps yielding its pinned version: the committed row
	// must not appear, and the total matches the pre-insert count.
	for {
		b, err := rows.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		ids := b.Cols[0]
		for i := 0; i < b.Len(); i++ {
			if ids.Value(i).I == 99999 {
				t.Fatal("stream observed a row committed after its snapshot was pinned")
			}
		}
		got += b.Len()
	}
	if got != rowsSeeded {
		t.Fatalf("stream yielded %d rows, want the pinned version's %d", got, rowsSeeded)
	}
	// A fresh statement sees the committed write.
	n, err := db.QueryScalar("SELECT COUNT(*) FROM big")
	if err != nil {
		t.Fatal(err)
	}
	if n.I != rowsSeeded+1 {
		t.Fatalf("post-commit count %d, want %d", n.I, rowsSeeded+1)
	}
}

// TestRunStreamMatchesMaterialized drains a session stream and checks
// it reproduces the materialized result batch for batch.
func TestRunStreamMatchesMaterialized(t *testing.T) {
	db := bigTable(t, 4000)
	want, err := db.Query("SELECT id, w FROM big WHERE id > 100")
	if err != nil {
		t.Fatal(err)
	}
	wantData, err := want.Materialize()
	if err != nil {
		t.Fatal(err)
	}

	s := db.NewSession()
	defer s.Close()
	rows, _, err := s.RunStream(context.Background(), "SELECT id, w FROM big WHERE id > 100")
	if err != nil {
		t.Fatal(err)
	}
	got, err := rows.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != wantData.Len() {
		t.Fatalf("stream rows %d, materialized %d", got.Len(), wantData.Len())
	}
	for i := 0; i < got.Len(); i++ {
		if got.Cols[0].Value(i).I != wantData.Cols[0].Value(i).I {
			t.Fatalf("row %d differs", i)
		}
	}
}

// TestQueryStreamCancelReleasesLatch cancels a stream mid-iteration
// and checks the error surfaces and the latch is released.
func TestQueryStreamCancelReleasesLatch(t *testing.T) {
	db := bigTable(t, 5000)
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := db.QueryStream(ctx, "SELECT id FROM big")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows.Next(); err != nil {
		t.Fatal(err)
	}
	cancel()
	sawErr := false
	for i := 0; i < 100; i++ {
		b, err := rows.Next()
		if err != nil {
			sawErr = true
			break
		}
		if b == nil {
			break
		}
	}
	if !sawErr {
		t.Log("stream drained before cancellation landed (small table); continuing")
	}
	rows.Close()
	// Latch must be free: a write completes promptly.
	doneCh := make(chan struct{})
	go func() {
		mustExec(t, db, "INSERT INTO big VALUES (88888, 1.0)")
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(2 * time.Second):
		t.Fatal("latch leaked after cancelled stream was closed")
	}
}
