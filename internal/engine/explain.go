package engine

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/exec"
	"repro/internal/sql"
	"repro/internal/storage"
)

// EXPLAIN [ANALYZE] execution. The result is a one-column VARCHAR
// ("plan") stream, one row per rendered line, so it travels over the
// wire protocol like any other SELECT result. Plain EXPLAIN plans the
// statement (pinning and releasing a read snapshot) without running it;
// ANALYZE runs it to completion and annotates every plan node with the
// operator counters the executor accumulated.

// runExplain dispatches EXPLAIN over the inner statement kind. text is
// the full statement as the client sent it: the plan-cache probe wants
// the inner statement's own fingerprint, which the canonical AST
// rendering need not match.
func (s *Session) runExplain(ctx context.Context, ex *sql.ExplainStmt, text string) (*Rows, error) {
	var (
		lines []string
		err   error
	)
	switch inner := ex.Stmt.(type) {
	case *sql.SelectStmt:
		lines, err = s.explainSelect(ctx, inner, innerStatementKey(text), ex.Analyze)
	case *sql.InsertStmt, *sql.UpdateStmt, *sql.DeleteStmt,
		*sql.CreateTableStmt, *sql.DropTableStmt, *sql.TruncateStmt:
		lines, err = s.explainWrite(ctx, ex)
	case *sql.GraphStmt:
		lines, err = s.explainGraph(ctx, inner, ex.Analyze)
	default:
		return nil, fmt.Errorf("engine: EXPLAIN does not support %T", ex.Stmt)
	}
	if err != nil {
		return nil, err
	}
	b := storage.NewBatch(storage.NewSchema(storage.Col("plan", storage.TypeString)))
	for _, l := range lines {
		if err := b.AppendRow(storage.Str(l)); err != nil {
			return nil, err
		}
	}
	return MaterializedRows(b), nil
}

// explainSelect plans (and for ANALYZE, executes) a SELECT and renders
// its plan tree. The header line reports the planning context EXPLAIN
// exists to surface: the worker count the plan was built for, the read
// mode, and whether the plan cache holds a usable plan for this
// statement's fingerprint.
func (s *Session) explainSelect(ctx context.Context, sel *sql.SelectStmt, key string, analyze bool) ([]string, error) {
	db := s.db
	workers := s.effectiveWorkers()
	kind := readerSession
	if s.ownsGate {
		kind = readerTxnOwner
	}

	db.mu.RLock()
	mode := "snapshot"
	cache := "miss"
	if db.plans.peek(key, db.cat.Version(), workers, s.effectiveWorkMem()) {
		cache = "hit"
	}
	if !db.snapshotReads {
		// Legacy latch-coupled mode: plans resolve live catalog tables
		// under the latch and are never cached.
		mode, cache = "legacy", "bypass"
		op, err := db.planner.PlanSelectWorkers(sel, workers)
		if err != nil {
			db.mu.RUnlock()
			return nil, err
		}
		if !analyze {
			lines := explainHeader(workers, mode, cache)
			lines = append(lines, exec.Explain(op, false)...)
			db.mu.RUnlock()
			return lines, nil
		}
		start := time.Now()
		wrapped := exec.WithContext(ctx, op)
		release := exec.MarkTimed(wrapped)
		data, err := exec.Drain(wrapped)
		release()
		db.mu.RUnlock()
		if err != nil {
			return nil, err
		}
		lines := explainHeader(workers, mode, cache)
		lines = append(lines, execedLine(data.Len(), time.Since(start)))
		return append(lines, exec.Explain(wrapped, true)...), nil
	}

	op, snap, err := db.planSnapshotLocked(sel, workers, s.effectiveWorkMem(), kind)
	db.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	defer snap.Release()

	lines := explainHeader(workers, mode, cache)
	if !analyze {
		// The tree was never opened, so there is nothing to close: the
		// plan holds only the snapshot pin released above.
		return append(lines, exec.Explain(op, false)...), nil
	}
	start := time.Now()
	wrapped := exec.WithContext(ctx, op)
	release := exec.MarkTimed(wrapped)
	data, err := exec.Drain(wrapped)
	release()
	if err != nil {
		return nil, err
	}
	lines = append(lines, execedLine(data.Len(), time.Since(start)))
	return append(lines, exec.Explain(wrapped, true)...), nil
}

// innerStatementKey fingerprints the statement EXPLAIN wraps: the full
// text normalizes to "EXPLAIN [ANALYZE] <inner>", and stripping the
// prefix of the normalized form leaves exactly cacheKey(inner, nil) —
// the key an argument-less execution of the inner statement would use.
func innerStatementKey(text string) string {
	norm := strings.TrimPrefix(normalizeStatement(text), "EXPLAIN ")
	return strings.TrimPrefix(norm, "ANALYZE ")
}

func explainHeader(workers int, mode, cache string) []string {
	return []string{fmt.Sprintf("plan (workers=%d, mode=%s, plan-cache=%s)", workers, mode, cache)}
}

func execedLine(rows int, d time.Duration) string {
	return fmt.Sprintf("executed: rows=%d time=%s", rows, d.Round(time.Microsecond))
}

// explainWrite describes how a write statement would be admitted —
// sharded fast path versus the serialized exclusive gate — and under
// ANALYZE actually runs it through the session's normal write path (the
// statement commits; ANALYZE of a write is a real write, as in
// PostgreSQL).
func (s *Session) explainWrite(ctx context.Context, ex *sql.ExplainStmt) ([]string, error) {
	st := ex.Stmt
	db := s.db

	route := "serialized (exclusive write gate)"
	if fastWriteShapeEligible(st) {
		db.mu.RLock()
		blocked := !db.snapshotReads || db.noFastWrites || db.txn != nil
		db.mu.RUnlock()
		if s.ownsGate || blocked {
			route = "fast-path shape, but serialized (transaction open or fast path disabled)"
		} else {
			route = "sharded fast path (shared gate + per-shard statement locks)"
		}
	}
	lines := []string{fmt.Sprintf("write %s: %s", stmtKind(st), route)}
	if !ex.Analyze {
		return lines, nil
	}

	text := st.String()
	start := time.Now()
	if !s.ownsGate {
		if res, handled, err := db.tryFastWrite(ctx, st, text, nil); handled {
			if err != nil {
				return nil, err
			}
			return append(lines, fmt.Sprintf("executed via fast path: rows=%d time=%s",
				res.RowsAffected, time.Since(start).Round(time.Microsecond))), nil
		}
		if err := db.AcquireWriteGate(ctx); err != nil {
			return nil, err
		}
		defer db.ReleaseWriteGate()
	}
	res, err := db.execParsed(ctx, st, text, nil)
	if err != nil {
		return nil, err
	}
	return append(lines, fmt.Sprintf("executed serialized: rows=%d time=%s",
		res.RowsAffected, time.Since(start).Round(time.Microsecond))), nil
}

// explainGraph renders EXPLAIN for a graph verb (PAGERANK, SSSP, …)
// through the hook the graph runtime installed with SetGraphExplainer:
// superstep schedule, input-cache decision, and partition layout; with
// ANALYZE the verb actually runs and the real run statistics fold in.
func (s *Session) explainGraph(ctx context.Context, g *sql.GraphStmt, analyze bool) ([]string, error) {
	s.db.mu.RLock()
	fn := s.db.graphExplainer
	s.db.mu.RUnlock()
	if fn == nil {
		return nil, fmt.Errorf("engine: EXPLAIN %s: no graph runtime attached", strings.ToUpper(g.Verb))
	}
	// ANALYZE runs the verb under the cross-session write gate; a
	// session that already owns the gate (open transaction) would
	// deadlock against itself, exactly like the wire server's graph
	// verbs — refuse the same way.
	if analyze && s.ownsGate {
		return nil, fmt.Errorf("engine: cannot EXPLAIN ANALYZE %s inside a transaction", strings.ToUpper(g.Verb))
	}
	return fn(ctx, analyze, g.Verb, g.Args, s.EffectiveWorkers())
}

// fastWriteShapeEligible mirrors tryFastWrite's statement-shape check:
// INSERT ... VALUES, UPDATE and DELETE qualify; INSERT ... SELECT and
// DDL never do.
func fastWriteShapeEligible(st sql.Statement) bool {
	switch s := st.(type) {
	case *sql.InsertStmt:
		return s.Select == nil
	case *sql.UpdateStmt, *sql.DeleteStmt:
		return true
	}
	return false
}
