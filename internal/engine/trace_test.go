package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/trace"
)

// Statement-lifecycle tracing: span coverage on a forced-spill
// statement, the slow-log ↔ trace join, the vx$ system tables through
// plain SQL, SHOW TRACE, and the tracing/spill-placement knobs.

// traceByID finds a retained trace in the ring.
func traceByID(db *DB, id uint64) *trace.Collector {
	for _, tc := range db.Tracer().Recent() {
		if tc.ID() == id {
			return tc
		}
	}
	return nil
}

// stagesOf collects span stages by depth: depth-0 lifecycle stages as a
// set, and whether any operator/spill detail exists.
func stagesOf(spans []trace.Span) (lifecycle map[string]bool, opSpans, spillSpans int, depth0Sum int64) {
	lifecycle = map[string]bool{}
	for _, sp := range spans {
		if sp.Depth == 0 {
			lifecycle[sp.Stage] = true
			depth0Sum += sp.DurNs
			continue
		}
		if strings.HasPrefix(sp.Stage, "op:") {
			opSpans++
		}
		if sp.Stage == "spill" {
			spillSpans++
		}
	}
	return lifecycle, opSpans, spillSpans, depth0Sum
}

// TestTraceForcedSpillSpans runs a statement that spills under a 64KB
// grant and checks its trace end to end: the lifecycle stages are all
// present, per-operator and spill detail rides at depth >= 1, the
// depth-0 spans sum to roughly the slow-query-log duration, and the
// slow-log record joins the retained trace by id and fingerprint.
func TestTraceForcedSpillSpans(t *testing.T) {
	db := outOfCoreDB(t)

	var captured []SlowQuery
	db.SetSlowQueryLog(func(q SlowQuery) { captured = append(captured, q) })
	defer db.SetSlowQueryLog(nil)
	db.SetSlowQueryThreshold(time.Nanosecond)
	defer db.SetSlowQueryThreshold(0)

	s := db.NewSession()
	defer s.Close()
	mustSet(t, s, "SET parallelism = 2")
	mustSet(t, s, fmt.Sprintf("SET work_mem = %d", forceSpillWorkMem))

	// The bound path exercises the full lifecycle: plan-cache probe,
	// plan, bind, grant, drain.
	const q = `SELECT f.tag, COUNT(*) AS c, SUM(f.val) AS sm
		FROM fact f GROUP BY f.tag ORDER BY sm, c DESC, f.tag`
	rows, _, err := s.RunStreamBound(context.Background(), q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows.Materialize(); err != nil {
		t.Fatal(err)
	}
	rows.Close()

	if len(captured) != 1 {
		t.Fatalf("captured %d slow-query records, want 1", len(captured))
	}
	rec := captured[0]
	if rec.TraceID == 0 {
		t.Fatal("slow-query record has no trace id")
	}
	if want := normalizeStatement(q); rec.Fingerprint != want {
		t.Errorf("Fingerprint = %q, want %q", rec.Fingerprint, want)
	}
	tc := traceByID(db, rec.TraceID)
	if tc == nil {
		t.Fatalf("trace %d not retained in the ring", rec.TraceID)
	}
	if tc.Text() != q {
		t.Errorf("trace text = %q, want the statement", tc.Text())
	}
	if !tc.Slow() {
		t.Error("trace not marked slow despite 1ns threshold")
	}

	lifecycle, opSpans, spillSpans, depth0Sum := stagesOf(tc.Spans())
	for _, stage := range []string{"parse", "plan_cache", "plan", "bind", "grant", "open", "drain"} {
		if !lifecycle[stage] {
			t.Errorf("lifecycle span %q missing (have %v)", stage, lifecycle)
		}
	}
	if opSpans == 0 {
		t.Error("no per-operator spans recorded")
	}
	if spillSpans == 0 {
		t.Error("no spill spans recorded for a forced-spill statement")
	}

	// The depth-0 stages partition the statement's life: their sum must
	// land near the slow-log duration (gaps between stages are the only
	// slack, and they are tiny next to a spilling aggregation).
	d := int64(rec.Duration)
	if diff := depth0Sum - d; diff < -d/4 || diff > d/4 {
		t.Errorf("depth-0 span sum = %s vs slow-log duration %s (off by more than 25%%)",
			time.Duration(depth0Sum), rec.Duration)
	}
	if tc.TotalNs() < depth0Sum {
		t.Errorf("trace total %s < span sum %s", time.Duration(tc.TotalNs()), time.Duration(depth0Sum))
	}
}

// TestTraceAdmissionSpan: a recorded queue wait becomes the trace's
// leading admission span, and the trace total absorbs it.
func TestTraceAdmissionSpan(t *testing.T) {
	db := observeDB(t)
	s := db.NewSession()
	defer s.Close()

	const wait = 5 * time.Millisecond
	s.NoteQueueWait(wait)
	rows, _, err := s.RunStream(context.Background(), "SELECT * FROM nv")
	if err != nil {
		t.Fatal(err)
	}
	rowLines(t, rows)

	tc := traceByID(db, s.LastTraceID())
	if tc == nil {
		t.Fatalf("trace %d not retained", s.LastTraceID())
	}
	spans := tc.Spans()
	if len(spans) == 0 || spans[0].Stage != "admission" {
		t.Fatalf("first span = %+v, want admission", spans)
	}
	if spans[0].StartNs != 0 {
		t.Errorf("admission StartNs = %d, want 0 (trace starts at enqueue)", spans[0].StartNs)
	}
	if got := time.Duration(spans[0].DurNs); got < wait || got > wait*3 {
		t.Errorf("admission span = %v, want ~%v", got, wait)
	}
	if tc.TotalNs() < int64(wait) {
		t.Errorf("trace total %v < admission wait %v", time.Duration(tc.TotalNs()), wait)
	}

	// The wait is consumed: the next statement starts clean.
	rows, _, err = s.RunStream(context.Background(), "SELECT * FROM nv")
	if err != nil {
		t.Fatal(err)
	}
	rowLines(t, rows)
	next := traceByID(db, s.LastTraceID())
	if next == nil {
		t.Fatal("second trace not retained")
	}
	if sp := next.Spans(); len(sp) > 0 && sp[0].Stage == "admission" {
		t.Error("queue wait leaked into the next statement's trace")
	}
}

// TestSysTablesSQL: the vx$ views answer plain SQL — filters, ORDER BY,
// LIMIT, and joins between vx$traces and vx$trace_spans.
func TestSysTablesSQL(t *testing.T) {
	db := observeDB(t)
	s := db.NewSession()
	defer s.Close()
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		rows, _, err := s.RunStream(ctx, "SELECT * FROM ev")
		if err != nil {
			t.Fatal(err)
		}
		rowLines(t, rows)
	}

	// The ISSUE's acceptance query.
	rows, _, err := s.RunStream(ctx, "SELECT * FROM vx$traces ORDER BY total_ns DESC LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	b, err := rows.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() < 3 {
		t.Fatalf("vx$traces has %d rows, want >= 3", b.Len())
	}
	var last int64 = 1 << 62
	idx := b.Schema.IndexOf("total_ns")
	for i := 0; i < b.Len(); i++ {
		v := b.Row(i)[idx].I
		if v > last {
			t.Fatalf("vx$traces not ordered by total_ns DESC: row %d", i)
		}
		last = v
	}

	// Join the span table against the trace table.
	rows, _, err = s.RunStream(ctx, `SELECT sp.stage, sp.dur_us
		FROM vx$trace_spans sp JOIN vx$traces tr ON sp.trace_id = tr.trace_id
		WHERE sp.depth = 0 ORDER BY sp.trace_id, sp.seq`)
	if err != nil {
		t.Fatal(err)
	}
	joined := rowLines(t, rows)
	if len(joined) == 0 {
		t.Fatal("vx$trace_spans ⋈ vx$traces returned nothing")
	}
	var sawDrain bool
	for _, l := range joined {
		if strings.HasPrefix(l, "drain") {
			sawDrain = true
		}
	}
	if !sawDrain {
		t.Errorf("no drain span in joined output: %q", joined)
	}

	// vx$active_statements sees the statement that scans it (the view
	// materializes while the scan's own trace is live).
	rows, _, err = s.RunStream(ctx, "SELECT stmt FROM vx$active_statements")
	if err != nil {
		t.Fatal(err)
	}
	active := rowLines(t, rows)
	if len(active) < 1 || !strings.Contains(active[0], "vx$active_statements") {
		t.Errorf("vx$active_statements = %q, want the scanning statement itself", active)
	}

	// vx$sessions reflects this session's settings.
	mustSet(t, s, "SET parallelism = 3")
	mustSet(t, s, "SET work_mem = 123456")
	rows, _, err = s.RunStream(ctx, "SELECT parallelism, work_mem FROM vx$sessions ORDER BY session_id")
	if err != nil {
		t.Fatal(err)
	}
	sess := rowLines(t, rows)
	found := false
	for _, l := range sess {
		if l == "3\x1f123456" {
			found = true
		}
	}
	if !found {
		t.Errorf("vx$sessions rows %q lack parallelism=3 work_mem=123456", sess)
	}

	// Unknown vx$ names fail cleanly.
	if _, _, err := s.RunStream(ctx, "SELECT * FROM vx$nope"); err == nil {
		t.Fatal("SELECT from vx$nope succeeded")
	}
}

// TestShowTrace: the interactive view of the last statement's spans.
func TestShowTrace(t *testing.T) {
	db := observeDB(t)
	s := db.NewSession()
	defer s.Close()
	ctx := context.Background()

	rows, _, err := s.RunStream(ctx, "SELECT * FROM ev ORDER BY src")
	if err != nil {
		t.Fatal(err)
	}
	rowLines(t, rows)

	show, _, err := s.RunStream(ctx, "SHOW TRACE")
	if err != nil {
		t.Fatal(err)
	}
	lines := rowLines(t, show)
	if len(lines) < 2 {
		t.Fatalf("SHOW TRACE returned %d spans", len(lines))
	}
	var sawDrain bool
	for _, l := range lines {
		if strings.Contains(l, "drain") {
			sawDrain = true
		}
	}
	if !sawDrain {
		t.Errorf("SHOW TRACE lacks a drain span: %q", lines)
	}
	// SHOW TRACE is a control statement: running it again shows the
	// same SELECT, not the SHOW itself.
	again, _, err := s.RunStream(ctx, "SHOW TRACE")
	if err != nil {
		t.Fatal(err)
	}
	if got := rowLines(t, again); len(got) != len(lines) {
		t.Errorf("second SHOW TRACE = %d spans, want %d (unchanged)", len(got), len(lines))
	}
}

// TestTraceSamplingOff: SET trace_sample = 0 turns collection off —
// statements run untraced (no ring growth, LastTraceID 0) and SET
// trace_sample = 1 restores full tracing.
func TestTraceSamplingOff(t *testing.T) {
	db := observeDB(t)
	s := db.NewSession()
	defer s.Close()
	ctx := context.Background()

	mustSet(t, s, "SET trace_sample = 0")
	before := db.Tracer().RingLen()
	rows, _, err := s.RunStream(ctx, "SELECT * FROM nv")
	if err != nil {
		t.Fatal(err)
	}
	rowLines(t, rows)
	if s.LastTraceID() != 0 {
		t.Errorf("LastTraceID = %d with tracing off, want 0", s.LastTraceID())
	}
	if got := db.Tracer().RingLen(); got != before {
		t.Errorf("ring grew %d -> %d with tracing off", before, got)
	}

	mustSet(t, s, "SET trace_sample = 1")
	rows, _, err = s.RunStream(ctx, "SELECT * FROM nv")
	if err != nil {
		t.Fatal(err)
	}
	rowLines(t, rows)
	if s.LastTraceID() == 0 {
		t.Error("LastTraceID = 0 after re-enabling tracing")
	}
}

// TestSpillPlacementKnobs: SET temp_tablespace routes spill runs into
// the chosen directory, SHOW reads the knobs back, and temp_file_limit
// caps disk usage with a clean statement error.
func TestSpillPlacementKnobs(t *testing.T) {
	db := outOfCoreDB(t)
	s := db.NewSession()
	defer s.Close()
	ctx := context.Background()

	dir := t.TempDir()
	mustSet(t, s, fmt.Sprintf("SET temp_tablespace = '%s'", dir))
	defer storage.SetSpillDir("")
	if got := storage.SpillDirPath(); got != dir {
		t.Fatalf("SpillDirPath = %q, want %q", got, dir)
	}
	show, _, err := s.RunStream(ctx, "SHOW temp_tablespace")
	if err != nil {
		t.Fatal(err)
	}
	if lines := rowLines(t, show); len(lines) != 1 || lines[0] != dir {
		t.Errorf("SHOW temp_tablespace = %q, want %q", lines, dir)
	}

	mustSet(t, s, "SET parallelism = 2")
	mustSet(t, s, fmt.Sprintf("SET work_mem = %d", forceSpillWorkMem))
	const q = "SELECT tag, SUM(val) AS sm FROM fact GROUP BY tag ORDER BY sm, tag"

	runsBefore, _ := storage.SpillTotals()
	rows, err := s.QueryContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() == 0 {
		t.Fatal("degenerate fixture")
	}
	if runs, _ := storage.SpillTotals(); runs <= runsBefore {
		t.Fatalf("statement did not spill (runs %d -> %d)", runsBefore, runs)
	}
	// Spill files are statement-scoped: the directory drains back to
	// empty accounting once the statement finishes.
	if got := storage.SpillDirBytes(); got != 0 {
		t.Errorf("spill.dir_bytes = %d after statement end, want 0", got)
	}

	// A 1-byte cap refuses the first spill write; the statement fails
	// with the cap error and the session stays usable.
	mustSet(t, s, "SET temp_file_limit = 1")
	defer storage.SetSpillDiskCap(0)
	if _, err := s.QueryContext(ctx, q); err == nil || !strings.Contains(err.Error(), "temp_file_limit") {
		t.Fatalf("capped spill error = %v, want temp_file_limit refusal", err)
	}
	mustSet(t, s, "SET temp_file_limit = 0")
	mustSet(t, s, "SET work_mem = 0")
	if _, err := s.QueryContext(ctx, q); err != nil {
		t.Fatalf("session unusable after cap error: %v", err)
	}

	// The gauges surface through the registry.
	if v := statValue(t, db, "spill.dir_bytes"); v != 0 {
		t.Errorf("spill.dir_bytes gauge = %d, want 0 at rest", v)
	}
	statValue(t, db, "spill.disk_cap")
	statValue(t, db, "trace.ring_len")
	statValue(t, db, "trace.sampling")
}
