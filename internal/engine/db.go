// Package engine is the embedded relational database Vertexica runs
// on: a catalog of columnar tables, a SQL interface (parser → planner →
// vectorized executor), scalar UDF registration, statement-level
// transactions with rollback, and snapshot + write-ahead-log
// persistence. It plays the role Vertica plays in the paper.
package engine

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/mvcc"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sched"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/trace"
)

// DB is an embedded relational database instance.
//
// Concurrency model (snapshot isolation): a read statement briefly
// takes mu.RLock to plan, pins an immutable MVCC snapshot of every
// table it reads (internal/mvcc; copy-on-write at the column level),
// then releases the latch and drains the snapshot latch-free — a slow
// or stalled reader never blocks a writer. Write statements, DDL and
// transaction control take mu.Lock and serialize; an open
// transaction's writes stay invisible to other sessions until COMMIT
// publishes the new table versions (readers resolve staged tables to
// their pre-commit snapshots). Cross-session write/transaction
// ordering is the write gate's job — see AcquireWriteGate — which
// Sessions hold for the duration of a transaction so concurrent
// writers do not interleave undo scopes (per-table write locks are the
// roadmap follow-up). SetSnapshotReads(false) restores the legacy
// latch-coupled read path (the ablation baseline vxbench study C
// measures against).
type DB struct {
	mu      sync.RWMutex // readers share; writes/txns serialize
	cat     *catalog.Catalog
	funcs   *expr.Registry
	planner *plan.Planner // planner.Parallelism is guarded by mu

	budget  *sched.Budget    // global worker budget (shared with the vertex runtime)
	memPool *sched.MemBudget // process-wide executor memory pool (0 = unlimited)
	mvcc    *mvcc.Manager    // version store: reader snapshots + txn pre-images

	snapshotReads bool // guarded by mu; false = legacy latch-coupled reads
	noFastWrites  bool // guarded by mu; true forces every write through the exclusive gate

	// The write gate is a two-channel reader/writer lock over the
	// cross-session write path. Exclusive mode (transactions, DDL, any
	// statement outside the sharded fast path) drains every slot, so it
	// sees no concurrent writer at all — the historical serialized
	// behavior. Shared mode (the auto-commit sharded-DML fast path)
	// holds one slot; disjoint-shard writers proceed in parallel and
	// conflicts are resolved by the per-shard statement locks
	// (storage.ShardedTable.LockShards). Shared acquisition briefly
	// takes the exclusive token, giving a waiting exclusive acquirer
	// preference over new shared entrants.
	gateExcl  chan struct{} // capacity 1: exclusive token / shared entry ticket
	gateSlots chan struct{} // capacity gateSlotCount: shared-mode slots
	txn       *txnState     // non-nil while a transaction is open
	// txnSessionOwned marks the open transaction as belonging to a
	// Session (whose own reads then resolve staged tables live). A
	// DB-level transaction (db.Begin / ExecContext BEGIN) is owned by
	// "the embedded caller": DB-level reads see its uncommitted state,
	// matching that API's documented single-caller assumption.
	txnSessionOwned bool

	execGateMu   sync.Mutex
	execGateHeld bool // gate held by a DB-level ExecContext("BEGIN")

	dir string // persistence directory; "" = in-memory only
	wal *walWriter

	plans *planCache // prepared-statement AST + plan cache (self-locking)

	obs *obs.Registry // engine-wide metrics (self-locking; see Stats)

	tracer *trace.Tracer // statement-lifecycle tracer (self-locking)

	// Session registry (vx$sessions): every live Session's info row.
	sessMu   sync.Mutex
	sessSeq  uint64
	sessions map[uint64]*sessionInfo

	// graphExplainer renders EXPLAIN <graph verb> plans. The engine
	// cannot import the vertex runtime (the dependency points the other
	// way), so the facade that wires both installs this hook. Guarded by
	// mu.
	graphExplainer func(ctx context.Context, analyze bool, verb string, args []string, workers int) ([]string, error)

	// Slow-query log: statements slower than slowThreshold are reported
	// to slowLog. Both fields are guarded by slowMu so the hot path pays
	// one uncontended mutex probe only when a threshold is set.
	slowMu        sync.Mutex
	slowThreshold time.Duration
	slowLog       func(SlowQuery)
}

// New returns an in-memory database.
func New() *DB {
	cat := catalog.New()
	funcs := expr.NewRegistry()
	db := &DB{
		cat:           cat,
		funcs:         funcs,
		planner:       plan.New(cat, funcs),
		budget:        sched.NewBudget(0),    // unlimited until SetWorkerBudget
		memPool:       sched.NewMemBudget(0), // unlimited until SetMemoryBudget
		mvcc:          mvcc.NewManager(cat),
		snapshotReads: true,
		gateExcl:      make(chan struct{}, 1),
		gateSlots:     make(chan struct{}, gateSlotCount),
		plans:         newPlanCache(preparedCacheSize),
		tracer:        trace.New(),
		sessions:      make(map[uint64]*sessionInfo),
	}
	db.gateExcl <- struct{}{}
	for i := 0; i < gateSlotCount; i++ {
		db.gateSlots <- struct{}{}
	}
	db.planner.Parallelism = runtime.NumCPU()
	db.planner.Budget = db.budget
	db.planner.Mem = db.memPool
	// VXDB_WORK_MEM seeds the default per-statement memory grant, in
	// bytes (0 or unset = unlimited). CI runs the suite under a tiny
	// value to force every spill path.
	if v, err := strconv.ParseInt(os.Getenv("VXDB_WORK_MEM"), 10, 64); err == nil && v > 0 {
		db.planner.WorkMem = v
	}
	// VXDB_SPILL_DIR points spill files at a managed directory (the env
	// form of SET temp_tablespace). The spill filesystem is process-wide,
	// so the last engine to set it wins — in practice there is one.
	if d := os.Getenv("VXDB_SPILL_DIR"); d != "" {
		_ = storage.SetSpillDir(d)
	}
	db.obs = obs.New()
	db.tracer.Started = db.obs.Counter("trace.started")
	db.tracer.Retained = db.obs.Counter("trace.retained")
	db.tracer.Dropped = db.obs.Counter("trace.dropped_spans")
	db.registerGauges()
	return db
}

// registerGauges wires the pull-style gauges: subsystems that already
// keep their own thread-safe counters (MVCC manager, plan cache, worker
// budget) are read on demand at Snapshot time instead of double-counting
// into the registry.
func (db *DB) registerGauges() {
	r, m, b, p := db.obs, db.mvcc, db.budget, db.plans
	r.Gauge("mvcc.epoch", func() int64 { return int64(m.Epoch()) })
	r.Gauge("mvcc.live_readers", func() int64 { return int64(m.LiveReaders()) })
	r.Gauge("mvcc.peak_readers", func() int64 { return int64(m.PeakReaders()) })
	r.Gauge("mvcc.snapshot_age_epochs", func() int64 {
		oldest, ok := m.OldestPinnedEpoch()
		if !ok {
			return 0
		}
		return int64(m.Epoch() - oldest)
	})
	r.Gauge("sched.budget_capacity", func() int64 { return int64(b.Capacity()) })
	r.Gauge("sched.budget_in_use", func() int64 { return int64(b.InUse()) })
	r.Gauge("sched.budget_high_water", func() int64 { return int64(b.HighWater()) })
	r.Gauge("sched.budget_waits", func() int64 { return int64(b.Waits()) })
	mp := db.memPool
	r.Gauge("mem.pool_capacity", func() int64 { return mp.Capacity() })
	r.Gauge("mem.pool_in_use", func() int64 { return mp.InUse() })
	r.Gauge("mem.pool_high_water", func() int64 { return mp.HighWater() })
	r.Gauge("mem.pool_denials", func() int64 { return int64(mp.Denials()) })
	r.Gauge("spill.runs", func() int64 { n, _ := storage.SpillTotals(); return n })
	r.Gauge("spill.bytes", func() int64 { _, b := storage.SpillTotals(); return b })
	r.Gauge("spill.dir_bytes", storage.SpillDirBytes)
	r.Gauge("spill.disk_cap", storage.SpillDiskCap)
	tr := db.tracer
	r.Gauge("trace.ring_len", func() int64 { return int64(tr.RingLen()) })
	r.Gauge("trace.active_statements", func() int64 { return int64(tr.ActiveLen()) })
	r.Gauge("trace.sampling", tr.Sampling)
	r.Gauge("plancache.parses", func() int64 { return int64(p.parses.Load()) })
	r.Gauge("plancache.plans", func() int64 { return int64(p.plans.Load()) })
	r.Gauge("plancache.hits", func() int64 { return int64(p.hits.Load()) })
	r.Gauge("plancache.misses", func() int64 { return int64(p.misses.Load()) })
	r.Gauge("plancache.bypasses", func() int64 { return int64(p.bypasses.Load()) })
}

// Stats exposes the engine-wide metrics registry: statement counters,
// fast-path admission, WAL group-commit behavior, MVCC reader gauges,
// worker-budget pressure, and plan-cache effectiveness. SHOW STATS and
// the server's debug endpoint render its Snapshot.
func (db *DB) Stats() *obs.Registry { return db.obs }

// SetGraphExplainer installs the renderer EXPLAIN <graph verb> calls:
// given the verb, its arguments and the effective worker count, it
// returns the plan lines (superstep schedule, input-cache decision,
// partition layout; with analyze it runs the verb and folds in the run
// statistics). The graph runtime's facade installs it — the engine
// cannot depend on the vertex layer directly.
func (db *DB) SetGraphExplainer(fn func(ctx context.Context, analyze bool, verb string, args []string, workers int) ([]string, error)) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.graphExplainer = fn
}

// SetParallelism sets how many worker goroutines one SQL statement may
// use (morsel-parallel scans and filters, parallel hash-join probes,
// partitioned aggregation). The default is runtime.NumCPU(); 1
// restores fully serial execution (the ablation baseline); n <= 0
// resets to the default. Results are identical — row for row, byte for
// byte — at every setting.
func (db *DB) SetParallelism(n int) {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.planner.Parallelism = n
}

// Parallelism returns the current per-statement worker budget.
func (db *DB) Parallelism() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.planner.Parallelism
}

// SetWorkerBudget caps the total number of extra worker goroutines the
// engine may run at once, across all concurrent SQL statements and
// vertex-centric runs. Every parallel construct keeps its calling
// goroutine for free and draws extras from this shared budget, so at
// budget n the process runs at most (concurrent statements + n)
// executor workers and a statement always makes progress — under load
// execution degrades toward serial instead of oversubscribing cores.
// n <= 0 removes the cap (the default).
func (db *DB) SetWorkerBudget(n int) { db.budget.Resize(n) }

// WorkerBudget exposes the shared budget (the vertex coordinator draws
// from it; benchmarks and tests read its gauges).
func (db *DB) WorkerBudget() *sched.Budget { return db.budget }

// SetMemoryBudget caps the total bytes the executor may hold in
// blocking operators (sorts, hash tables, aggregate state, spools)
// across all concurrent statements. Operators that would exceed it
// spill to disk and produce byte-identical results; operators with no
// spill path fail cleanly with an out-of-memory-budget error. n <= 0
// removes the cap (the default).
func (db *DB) SetMemoryBudget(n int64) { db.memPool.Resize(n) }

// MemoryBudget exposes the executor memory pool (capacity, in-use and
// high-water gauges, denial counts).
func (db *DB) MemoryBudget() *sched.MemBudget { return db.memPool }

// SetWorkMem sets the default per-statement memory grant in bytes:
// each statement's blocking operators share at most this much memory
// before spilling (and never more than the pool has free). n <= 0
// means unlimited. Sessions override it with SET work_mem.
func (db *DB) SetWorkMem(n int64) {
	if n < 0 {
		n = 0
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.planner.WorkMem = n
}

// WorkMem returns the default per-statement memory grant (0 =
// unlimited).
func (db *DB) WorkMem() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.planner.WorkMem
}

// LockShared takes the statement latch in shared (reader) mode.
// Subsystems that read storage tables directly — bypassing both the
// SQL statement path and snapshot pinning, like the graph layer's
// small metadata reads — hold it briefly so no write statement
// mutates a table mid-read; bulk direct reads should pin a snapshot
// via AcquireSnapshot instead. Do not call Query/Exec while holding
// it.
func (db *DB) LockShared() { db.mu.RLock() }

// UnlockShared releases LockShared.
func (db *DB) UnlockShared() { db.mu.RUnlock() }

// LockExclusive takes the statement latch in exclusive (writer) mode,
// blocking all SQL statements; the vertex coordinator holds it while
// writing vertex/message tables back. Do not call Query/Exec while
// holding it.
func (db *DB) LockExclusive() { db.mu.Lock() }

// UnlockExclusive releases LockExclusive.
func (db *DB) UnlockExclusive() { db.mu.Unlock() }

// gateSlotCount bounds how many shared-mode (fast path) writers run at
// once; an exclusive acquirer drains all of them. 64 comfortably
// exceeds any realistic session count while keeping the drain cheap.
const gateSlotCount = 64

// AcquireWriteGate claims the cross-session write gate in exclusive
// mode, blocking while another session holds it exclusively (an open
// transaction or a serialized write) and draining every shared-mode
// slot, so no fast-path writer is in flight once it returns. Sessions
// hold it for a single serialized auto-commit write statement or from
// BEGIN to COMMIT/ROLLBACK, which keeps concurrent writers out of each
// other's undo scopes.
func (db *DB) AcquireWriteGate(ctx context.Context) error {
	select {
	case <-db.gateExcl:
	case <-ctx.Done():
		return ctx.Err()
	}
	for i := 0; i < gateSlotCount; i++ {
		select {
		case <-db.gateSlots:
		case <-ctx.Done():
			// Undo: return the slots taken so far, then the token.
			for ; i > 0; i-- {
				db.gateSlots <- struct{}{}
			}
			db.gateExcl <- struct{}{}
			return ctx.Err()
		}
	}
	return nil
}

// ReleaseWriteGate returns the exclusive gate taken by
// AcquireWriteGate.
func (db *DB) ReleaseWriteGate() {
	for i := 0; i < gateSlotCount; i++ {
		db.gateSlots <- struct{}{}
	}
	db.gateExcl <- struct{}{}
}

// acquireSharedGate claims one shared-mode slot of the write gate (the
// sharded fast path's admission). It briefly holds the exclusive token
// while taking the slot so a waiting exclusive acquirer is not starved
// by a stream of new shared entrants.
func (db *DB) acquireSharedGate(ctx context.Context) error {
	select {
	case <-db.gateExcl:
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case <-db.gateSlots:
	case <-ctx.Done():
		db.gateExcl <- struct{}{}
		return ctx.Err()
	}
	db.gateExcl <- struct{}{}
	return nil
}

// releaseSharedGate returns the slot taken by acquireSharedGate.
func (db *DB) releaseSharedGate() { db.gateSlots <- struct{}{} }

// gateKey marks a context whose caller chain already holds the write
// gate, so nested write statements (a graph driver's scratch-table
// DDL, say) must not re-acquire it — the gate is not reentrant.
type gateKey struct{}

// WithGateHeld marks ctx as running under an already-acquired write
// gate. The facade's graph-algorithm wrappers use it: they take the
// gate once for a whole multi-statement run and every write statement
// issued under that ctx skips the per-statement acquisition.
func WithGateHeld(ctx context.Context) context.Context {
	return context.WithValue(ctx, gateKey{}, true)
}

// GateHeld reports whether ctx carries the WithGateHeld marker.
func GateHeld(ctx context.Context) bool {
	held, _ := ctx.Value(gateKey{}).(bool)
	return held
}

// MVCC exposes the version-store manager (reader gauges, tests, the
// mixed-workload benchmark).
func (db *DB) MVCC() *mvcc.Manager { return db.mvcc }

// SetSnapshotReads toggles MVCC snapshot isolation for read
// statements. It is on by default; off restores the legacy
// latch-coupled path — readers hold the shared statement latch for the
// lifetime of their result stream and see live (possibly uncommitted)
// table state — which survives as the ablation baseline for vxbench
// study C. Transaction undo always uses version swap regardless.
func (db *DB) SetSnapshotReads(on bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.snapshotReads = on
}

// SetFastPathWrites toggles the sharded auto-commit write fast path
// (on by default). Off forces every write statement through the
// exclusive write gate — the fully serialized historical behavior,
// kept as the ablation baseline the vxbench shard study measures
// against.
func (db *DB) SetFastPathWrites(on bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.noFastWrites = !on
}

// SnapshotReads reports whether reads run against pinned snapshots.
func (db *DB) SnapshotReads() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.snapshotReads
}

// AcquireSnapshot pins a consistent committed snapshot of the named
// tables and seals it: the caller reads the returned handle's tables
// with no engine latch held, and must Release it when done. Subsystems
// that read storage directly — the vertex coordinator's input
// assembly — use it where they used to hold LockShared for the whole
// read.
func (db *DB) AcquireSnapshot(names ...string) (*mvcc.Snapshot, error) {
	db.mu.RLock()
	snap, err := db.mvcc.Acquire(names...)
	db.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	snap.Seal()
	return snap, nil
}

// Catalog exposes the table namespace (used by the vertex runtime).
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Funcs exposes the scalar-function registry (the UDF hook).
func (db *DB) Funcs() *expr.Registry { return db.funcs }

// RegisterUDF registers a scalar user-defined function usable from SQL.
func (db *DB) RegisterUDF(f *expr.ScalarFunc) error { return db.funcs.Register(f) }

// Rows is a query result: an iterator over result batches. Streaming
// rows (from QueryStream / Session.RunStream) yield batches as the
// executor produces them and hold the statement's MVCC snapshot pin
// plus the open operator tree until the stream finishes — call Close
// (or drain to nil) when done; an unfinished stream wastes the pinned
// versions' memory but blocks no writer. Materialized rows (from
// Query / Session.Run, or MaterializedRows) hold everything in memory
// and keep the historical random-access API: Len, Row, Value.
//
// Materialize drains whatever remains of the stream into one batch —
// the shim existing batch-at-once callers use. Do not mix Next with
// the random-access methods on the same Rows.
type Rows struct {
	schema  storage.Schema
	op      exec.Operator // non-nil while streaming
	root    exec.Operator // the stream's operator tree; survives finish (slow-query log)
	emitted int64         // rows yielded by the stream so far
	cleanup []func()      // run once, in reverse, when the stream finishes
	err     error

	data *storage.Batch // result batch once materialized
	pos  int            // Next cursor over data
}

// MaterializedRows wraps a finished batch as a result (session
// variables, graph verbs, tests).
func MaterializedRows(b *storage.Batch) *Rows {
	return &Rows{schema: b.Schema, data: b}
}

// OperatorRows streams an operator's output as a result: the operator
// is opened immediately and closed (with any extra cleanup functions,
// last-added-first) when the stream ends. Subsystems that feed
// operator output straight to a consumer — the wire server, tests —
// use it; SQL callers go through QueryStream.
func OperatorRows(op exec.Operator, cleanup ...func()) (*Rows, error) {
	r := &Rows{schema: op.Schema(), op: op, root: op, cleanup: cleanup}
	r.cleanup = append(r.cleanup, func() { op.Close() })
	if err := op.Open(); err != nil {
		r.finish()
		return nil, err
	}
	return r, nil
}

// Schema returns the result schema (available before the first batch).
func (r *Rows) Schema() storage.Schema { return r.schema }

// Columns returns the result column names.
func (r *Rows) Columns() []string { return r.schema.Names() }

// Next returns the next result batch, or nil at end of stream. On a
// streaming result the executor produces the batch on demand; the
// latch and operator tree are released when the stream ends (nil or
// error). On a materialized result the batch is a storage.BatchSize
// slice of the data.
func (r *Rows) Next() (*storage.Batch, error) {
	if r.op != nil {
		b, err := r.op.Next()
		if err != nil {
			r.err = err
			r.finish()
			return nil, err
		}
		if b == nil {
			r.finish()
			return nil, nil
		}
		r.emitted += int64(b.Len())
		return b, nil
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.data == nil {
		return nil, nil
	}
	return exec.NextChunk(r.data, &r.pos, r.data.Len()), nil
}

// Close releases a streaming result's latch and operators; it is a
// no-op once the stream has finished (or on materialized rows). It is
// safe to call multiple times.
func (r *Rows) Close() error {
	r.finish()
	return nil
}

// finish runs the cleanup chain exactly once, newest first.
func (r *Rows) finish() {
	r.op = nil
	for i := len(r.cleanup) - 1; i >= 0; i-- {
		r.cleanup[i]()
	}
	r.cleanup = nil
}

// Materialize drains the remaining stream into a single batch and
// returns it (releasing the latch), or returns the already-
// materialized batch. This is the shim for callers that want the
// whole result at once.
func (r *Rows) Materialize() (*storage.Batch, error) {
	if r.data != nil {
		return r.data, nil
	}
	if r.err != nil {
		return nil, r.err
	}
	out := storage.NewBatch(r.schema)
	for {
		b, err := r.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		if err := storage.Concat(out, b); err != nil {
			r.err = err
			r.finish()
			return nil, err
		}
	}
	r.data = out
	r.pos = 0 // data holds only unconsumed batches; Next serves them
	return out, nil
}

// mustData returns the materialized batch, materializing a stream on
// first use. The random-access accessors funnel through it; an
// iteration error surfaces as an empty result with Err set.
func (r *Rows) mustData() *storage.Batch {
	if r.data == nil {
		if _, err := r.Materialize(); err != nil {
			return storage.NewBatch(r.schema)
		}
	}
	return r.data
}

// Err returns the error that terminated the stream, if any.
func (r *Rows) Err() error { return r.err }

// Len returns the number of result rows (materializing a stream).
func (r *Rows) Len() int { return r.mustData().Len() }

// Row materializes row i.
func (r *Rows) Row(i int) []storage.Value { return r.mustData().Row(i) }

// Value returns the value at (row, col).
func (r *Rows) Value(row, col int) storage.Value { return r.mustData().Cols[col].Value(row) }

// Result reports the effect of a DML/DDL statement.
type Result struct {
	RowsAffected int
}

// Query parses, plans and executes a SELECT, returning materialized
// rows.
func (db *DB) Query(text string) (*Rows, error) {
	return db.QueryContext(context.Background(), text)
}

// QueryContext is Query with cancellation: ctx is checked before every
// result batch, so a cancelled context aborts mid-scan rather than
// after the statement completes. Read statements share the latch, so
// any number of QueryContext calls run concurrently.
func (db *DB) QueryContext(ctx context.Context, text string) (*Rows, error) {
	return db.QueryContextWorkers(ctx, text, 0)
}

// QueryContextWorkers is QueryContext with a per-statement worker
// override: workers > 0 caps this one statement's parallelism below
// the engine default (sessions use it for SET parallelism and the
// server's per-statement cap). 0 means the engine default.
func (db *DB) QueryContextWorkers(ctx context.Context, text string, workers int) (*Rows, error) {
	st, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("engine: Query requires a SELECT; use Exec for %T", st)
	}
	return db.queryMaterializedParsed(ctx, sel, workers, -1, readerDBLevel)
}

// readerKind identifies who is asking for a read snapshot, which
// decides whether an open transaction's staged writes are visible.
type readerKind int

const (
	// readerDBLevel: a DB-level entry point (Query/QueryStream). Sees
	// a DB-level transaction's staged writes — that API assumes one
	// embedded caller — but never a Session-owned transaction's.
	readerDBLevel readerKind = iota
	// readerSession: a Session that does NOT own the open transaction.
	// Always reads committed versions.
	readerSession
	// readerTxnOwner: the Session that owns the open transaction.
	// Reads its own staged writes.
	readerTxnOwner
)

// queryMaterializedParsed runs a parsed SELECT to a materialized
// result. Under snapshot isolation the shared latch is held only while
// planning pins the statement's snapshot; the drain runs latch-free.
func (db *DB) queryMaterializedParsed(ctx context.Context, sel *sql.SelectStmt, workers int, workMem int64, kind readerKind) (*Rows, error) {
	db.mu.RLock()
	if !db.snapshotReads {
		defer db.mu.RUnlock()
		return db.querySelectLockedWorkers(ctx, sel, workers)
	}
	op, snap, err := db.planSnapshotLocked(sel, workers, workMem, kind)
	db.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	defer snap.Release()
	data, err := exec.Drain(exec.WithContext(ctx, op))
	if err != nil {
		return nil, err
	}
	return MaterializedRows(data), nil
}

// planSnapshotLocked pins a fresh MVCC snapshot and plans the SELECT
// against it. Callers hold (at least) the shared latch; on success
// they own the sealed snapshot and must Release it when the statement
// finishes. The snapshot resolves staged (uncommitted) tables live
// only for the transaction's owner: the Session that opened it, or a
// DB-level read during a DB-level transaction. A session that does
// not own the transaction always reads committed versions.
func (db *DB) planSnapshotLocked(sel *sql.SelectStmt, workers int, workMem int64, kind readerKind) (exec.Operator, *mvcc.Snapshot, error) {
	own := kind == readerTxnOwner ||
		(kind == readerDBLevel && db.txn != nil && !db.txnSessionOwned)
	acquire := db.mvcc.Acquire
	if own {
		acquire = db.mvcc.AcquireOwn
	}
	snap, err := acquire()
	if err != nil {
		return nil, nil, err
	}
	op, err := db.planner.PlanSelectMem(sel, workers, workMem, sysSource{db: db, base: snap}, nil)
	snap.Seal()
	if err != nil {
		snap.Release()
		return nil, nil, err
	}
	return op, snap, nil
}

func (db *DB) querySelectLocked(ctx context.Context, sel *sql.SelectStmt) (*Rows, error) {
	return db.querySelectLockedWorkers(ctx, sel, 0)
}

func (db *DB) querySelectLockedWorkers(ctx context.Context, sel *sql.SelectStmt, workers int) (*Rows, error) {
	op, err := db.planner.PlanSelectWorkers(sel, workers)
	if err != nil {
		return nil, err
	}
	data, err := exec.Drain(exec.WithContext(ctx, op))
	if err != nil {
		return nil, err
	}
	return MaterializedRows(data), nil
}

// QueryStream parses, plans and executes a SELECT, returning a
// streaming result: batches are produced on demand from the
// statement's pinned snapshot, with no engine latch held — a stalled
// consumer delays no writer, and the stream still yields exactly the
// version set it pinned at plan time. The caller must drain or Close
// the rows (that releases the snapshot pin). This is the serving
// layer's hot path — first-batch latency is O(first batch), not
// O(result) — while Query keeps the materialized contract for embedded
// callers.
func (db *DB) QueryStream(ctx context.Context, text string) (*Rows, error) {
	st, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("engine: QueryStream requires a SELECT; use Exec for %T", st)
	}
	return db.queryStreamParsed(ctx, sel, 0, -1, readerDBLevel)
}

// queryStreamParsed plans an already-parsed SELECT and returns
// streaming rows. Under snapshot isolation the shared latch is
// released as soon as planning has pinned the snapshot; the rows hold
// only the snapshot pin (released when the stream finishes). With
// SetSnapshotReads(false) the legacy behavior applies: the latch is
// held until the stream is drained or closed.
func (db *DB) queryStreamParsed(ctx context.Context, sel *sql.SelectStmt, workers int, workMem int64, kind readerKind) (*Rows, error) {
	db.mu.RLock()
	if !db.snapshotReads {
		op, err := db.planner.PlanSelectWorkers(sel, workers)
		if err != nil {
			db.mu.RUnlock()
			return nil, err
		}
		rows, err := OperatorRows(exec.WithContext(ctx, op), db.mu.RUnlock)
		if err != nil {
			return nil, err // OperatorRows already ran the cleanup chain
		}
		return rows, nil
	}
	tc := trace.FromContext(ctx)
	endPlan := tc.Begin("plan")
	op, snap, err := db.planSnapshotLocked(sel, workers, workMem, kind)
	db.mu.RUnlock()
	endPlan(fmt.Sprintf("workers=%d", workers))
	if err != nil {
		return nil, err
	}
	tc.Add("grant", time.Now(), 0, fmt.Sprintf("work_mem=%d pool %s", workMem, db.memPool.Describe()))
	// Open is where pipeline-breaking operators (sort, aggregate) do
	// their work — it gets its own lifecycle span so the trace covers
	// eager execution, not just the drain.
	endOpen := tc.Begin("open")
	rows, err := OperatorRows(exec.WithContext(ctx, op), snap.Release)
	if err != nil {
		endOpen("failed")
		return nil, err // OperatorRows already ran the cleanup chain
	}
	endOpen("operator tree opened")
	return rows, nil
}

// QueryScalar runs a query expected to produce exactly one value.
func (db *DB) QueryScalar(text string) (storage.Value, error) {
	return db.QueryScalarContext(context.Background(), text)
}

// QueryScalarContext is QueryScalar with cancellation.
func (db *DB) QueryScalarContext(ctx context.Context, text string) (storage.Value, error) {
	rows, err := db.QueryContext(ctx, text)
	if err != nil {
		return storage.Value{}, err
	}
	if rows.Len() != 1 || rows.schema.Len() != 1 {
		return storage.Value{}, fmt.Errorf("engine: scalar query returned %dx%d result", rows.Len(), rows.schema.Len())
	}
	return rows.Value(0, 0), nil
}

// Exec parses and executes a DML or DDL statement.
func (db *DB) Exec(text string) (Result, error) {
	return db.ExecContext(context.Background(), text)
}

// ExecContext is Exec with cancellation; for INSERT ... SELECT the
// context reaches the SELECT's executor. Transaction control parses
// here too (BEGIN / COMMIT / ROLLBACK) so text-only embedded callers
// can manage transactions; a DB-level BEGIN takes the cross-session
// write gate exactly like a Session's BEGIN does, so it cannot
// interleave with (or be clobbered by the rollback of) a concurrent
// session's work. These statements are not WAL-logged (the WAL
// records only committed data statements). SET/SHOW are
// session-scoped and rejected at the DB layer; run them through a
// Session.
func (db *DB) ExecContext(ctx context.Context, text string) (Result, error) {
	st, err := sql.Parse(text)
	if err != nil {
		return Result{}, err
	}
	switch st.(type) {
	case *sql.BeginStmt:
		if err := db.AcquireWriteGate(ctx); err != nil {
			return Result{}, err
		}
		if err := db.Begin(); err != nil {
			db.ReleaseWriteGate()
			return Result{}, err
		}
		db.execGateMu.Lock()
		db.execGateHeld = true
		db.execGateMu.Unlock()
		return Result{}, nil
	case *sql.CommitStmt:
		return Result{}, db.endExecTxn(db.Commit)
	case *sql.RollbackStmt:
		return Result{}, db.endExecTxn(db.Rollback)
	case *sql.SetStmt, *sql.ShowStmt:
		return Result{}, fmt.Errorf("engine: %s is a session statement; run it through a Session", st)
	}
	// A DB-level auto-commit write takes the gate for the statement —
	// like a Session's — so another session's rollback cannot clobber
	// it. Skipped when a DB-level ExecContext("BEGIN") transaction or
	// a gate-holding caller chain (WithGateHeld) already owns the
	// gate, and for plain SELECTs (reads never take the gate).
	// execGateHeld is DB-global, so the DB-level transaction API
	// assumes a single DB-level caller, exactly like db.Begin always
	// has — concurrent writers must each use their own Session, whose
	// gate ownership is per-session.
	if _, isSelect := st.(*sql.SelectStmt); !isSelect && !GateHeld(ctx) {
		db.execGateMu.Lock()
		held := db.execGateHeld
		db.execGateMu.Unlock()
		if !held {
			// Eligible auto-commit DML takes the sharded fast path:
			// shared gate + per-shard statement locks instead of the
			// exclusive gate + exclusive latch.
			if res, handled, err := db.tryFastWrite(ctx, st, text, nil); handled {
				return res, err
			}
			if err := db.AcquireWriteGate(ctx); err != nil {
				return Result{}, err
			}
			defer db.ReleaseWriteGate()
		}
	}
	return db.execParsed(ctx, st, text, nil)
}

// endExecTxn finishes a transaction opened by ExecContext("BEGIN"),
// releasing the write gate only if that path acquired it (a direct
// db.Begin() caller never touched the gate and must not release it).
func (db *DB) endExecTxn(end func() error) error {
	err := end()
	if err != nil {
		return err
	}
	db.execGateMu.Lock()
	held := db.execGateHeld
	db.execGateHeld = false
	db.execGateMu.Unlock()
	if held {
		db.ReleaseWriteGate()
	}
	return nil
}

// execParsed runs an already-parsed data statement under the exclusive
// latch and WAL-logs it on success. An auto-commit statement (no open
// transaction) publishes its table versions immediately; inside a
// transaction, publication waits for COMMIT. ps carries bound
// parameter values for a prepared execution (nil for plain text); text
// must then be the substituted rendering, since the WAL replays text
// without an argument stream.
func (db *DB) execParsed(ctx context.Context, st sql.Statement, text string, ps *plan.Params) (Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	res, err := db.execLocked(ctx, st, ps)
	if err != nil {
		return Result{}, err
	}
	db.logStatement(ctx, text)
	if db.txn == nil {
		db.mvcc.Publish()
	}
	return res, nil
}

func (db *DB) execLocked(ctx context.Context, st sql.Statement, ps *plan.Params) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	switch s := st.(type) {
	case *sql.SelectStmt:
		rows, err := db.querySelectLocked(ctx, s)
		if err != nil {
			return Result{}, err
		}
		return Result{RowsAffected: rows.Len()}, nil
	case *sql.CreateTableStmt:
		return db.execCreate(s)
	case *sql.DropTableStmt:
		return db.execDrop(s)
	case *sql.TruncateStmt:
		return db.execTruncate(s)
	case *sql.InsertStmt:
		return db.execInsert(ctx, s, ps)
	case *sql.UpdateStmt:
		return db.execUpdate(s, ps)
	case *sql.DeleteStmt:
		return db.execDelete(s, ps)
	default:
		return Result{}, fmt.Errorf("engine: unsupported statement %T", st)
	}
}

// DefaultShards is the shard count a PARTITION BY HASH table gets when
// the statement omits the SHARDS clause. It is a fixed constant — not
// NumCPU — so the same DDL produces the same physical layout (and the
// same row order) on every machine, which the differential tests and
// snapshot round-trips rely on.
const DefaultShards = 8

func (db *DB) execCreate(s *sql.CreateTableStmt) (Result, error) {
	if db.cat.Has(s.Name) {
		if s.IfNotExists {
			return Result{}, nil
		}
		return Result{}, fmt.Errorf("engine: table %q already exists", s.Name)
	}
	cols := make([]storage.ColumnDef, len(s.Cols))
	for i, c := range s.Cols {
		t, err := typeFromName(c.TypeName)
		if err != nil {
			return Result{}, err
		}
		cols[i] = storage.ColumnDef{Name: c.Name, Type: t, NotNull: c.NotNull}
	}
	schema := storage.NewSchema(cols...)
	keyCol, shards := -1, 1
	if s.PartitionBy != "" {
		keyCol = schema.IndexOf(s.PartitionBy)
		if keyCol < 0 {
			return Result{}, fmt.Errorf("engine: PARTITION BY column %q is not a column of %s", s.PartitionBy, s.Name)
		}
		shards = s.Shards
		if shards <= 0 {
			shards = DefaultShards
		}
	}
	if _, err := db.cat.CreateSharded(s.Name, schema, keyCol, shards); err != nil {
		return Result{}, err
	}
	db.noteCreate(s.Name)
	return Result{}, nil
}

func typeFromName(name string) (storage.Type, error) {
	switch strings.ToUpper(name) {
	case "INTEGER":
		return storage.TypeInt64, nil
	case "DOUBLE":
		return storage.TypeFloat64, nil
	case "VARCHAR":
		return storage.TypeString, nil
	case "BOOLEAN":
		return storage.TypeBool, nil
	}
	return 0, fmt.Errorf("engine: unknown type %q", name)
}

func (db *DB) execDrop(s *sql.DropTableStmt) (Result, error) {
	t, err := db.cat.Get(s.Name)
	if err != nil {
		if s.IfExists {
			return Result{}, nil
		}
		return Result{}, err
	}
	db.noteDrop(t)
	return Result{}, db.cat.Drop(s.Name)
}

func (db *DB) execTruncate(s *sql.TruncateStmt) (Result, error) {
	t, err := db.cat.Get(s.Name)
	if err != nil {
		return Result{}, err
	}
	n := t.NumRows()
	db.noteWrite(t)
	t.Truncate()
	return Result{RowsAffected: n}, nil
}

func (db *DB) execInsert(ctx context.Context, s *sql.InsertStmt, ps *plan.Params) (Result, error) {
	t, err := db.cat.Get(s.Table)
	if err != nil {
		return Result{}, err
	}
	colIdx, input, err := db.buildInsertInput(ctx, s, t, ps)
	if err != nil {
		return Result{}, err
	}
	db.noteWrite(t)
	n, err := appendInsertRows(t, colIdx, input)
	if err != nil {
		return Result{}, err
	}
	return Result{RowsAffected: n}, nil
}

// buildInsertInput maps the statement's column list to table positions
// and evaluates the source rows (VALUES expressions or the SELECT) into
// a batch whose columns line up with colIdx. It only reads — safe under
// the shared latch — so both the serialized path and the sharded fast
// path use it.
func (db *DB) buildInsertInput(ctx context.Context, s *sql.InsertStmt, t *storage.Table, ps *plan.Params) (colIdx []int, input *storage.Batch, err error) {
	schema := t.Schema()
	// Map statement columns to table positions.
	if len(s.Columns) == 0 {
		colIdx = make([]int, schema.Len())
		for i := range colIdx {
			colIdx[i] = i
		}
	} else {
		colIdx = make([]int, len(s.Columns))
		for i, name := range s.Columns {
			j := schema.IndexOf(name)
			if j < 0 {
				return nil, nil, fmt.Errorf("engine: table %s has no column %q", s.Table, name)
			}
			colIdx[i] = j
		}
	}

	if s.Select != nil {
		op, err := db.planner.PlanSelectParams(s.Select, 0, nil, ps)
		if err != nil {
			return nil, nil, err
		}
		input, err = exec.Drain(exec.WithContext(ctx, op))
		if err != nil {
			return nil, nil, err
		}
	} else {
		defs := make([]storage.ColumnDef, len(colIdx))
		for i, j := range colIdx {
			defs[i] = storage.Col(fmt.Sprintf("c%d", i), schema.Cols[j].Type)
		}
		input = storage.NewBatch(storage.NewSchema(defs...))
		// VALUES rows are evaluated against an empty scope.
		emptyScope := &plan.Scope{}
		for _, astRow := range s.Rows {
			if len(astRow) != len(colIdx) {
				return nil, nil, fmt.Errorf("engine: INSERT row has %d values, expected %d", len(astRow), len(colIdx))
			}
			vals := make([]storage.Value, len(astRow))
			for i, e := range astRow {
				bound, err := plan.BindExprParams(e, emptyScope, db.funcs, ps)
				if err != nil {
					return nil, nil, err
				}
				v, err := bound.Eval(expr.Row{})
				if err != nil {
					return nil, nil, err
				}
				vals[i] = v
			}
			if err := input.AppendRow(vals...); err != nil {
				return nil, nil, err
			}
		}
	}

	if len(input.Cols) != len(colIdx) {
		return nil, nil, fmt.Errorf("engine: INSERT source has %d columns, expected %d", len(input.Cols), len(colIdx))
	}
	return colIdx, input, nil
}

// appendInsertRows assembles full-width rows from the evaluated input
// batch (unspecified columns become NULL) and appends them to the
// table, which routes each row to its shard. Returns the row count.
func appendInsertRows(t *storage.Table, colIdx []int, input *storage.Batch) (int, error) {
	schema := t.Schema()
	n := input.Len()
	for i := 0; i < n; i++ {
		row := make([]storage.Value, schema.Len())
		for j := range row {
			row[j] = storage.Null(schema.Cols[j].Type)
		}
		for k, j := range colIdx {
			row[j] = input.Cols[k].Value(i)
		}
		if err := t.AppendRow(row...); err != nil {
			return 0, err
		}
	}
	return n, nil
}

// matchRows returns the indexes of rows matching the WHERE clause (all
// rows when where is nil).
func (db *DB) matchRows(t *storage.Table, where sql.Expr, ps *plan.Params) ([]int, error) {
	data := t.Data()
	n := data.Len()
	if where == nil {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx, nil
	}
	sc := plan.NewScope(t.Name(), t.Schema())
	pred, err := plan.BindExprParams(where, sc, db.funcs, ps)
	if err != nil {
		return nil, err
	}
	if pred.Type() != storage.TypeBool {
		return nil, fmt.Errorf("engine: WHERE must be boolean, got %s", pred.Type())
	}
	var idx []int
	for i := 0; i < n; i++ {
		ok, err := expr.EvalBool(pred, expr.Row{Batch: data, Idx: i})
		if err != nil {
			return nil, err
		}
		if ok {
			idx = append(idx, i)
		}
	}
	return idx, nil
}

func (db *DB) execUpdate(s *sql.UpdateStmt, ps *plan.Params) (Result, error) {
	t, err := db.cat.Get(s.Table)
	if err != nil {
		return Result{}, err
	}
	schema := t.Schema()
	idx, err := db.matchRows(t, s.Where, ps)
	if err != nil {
		return Result{}, err
	}
	if len(idx) == 0 {
		return Result{}, nil
	}
	sc := plan.NewScope(t.Name(), schema)
	data := t.Data()
	type colUpdate struct {
		col  int
		vals []storage.Value
	}
	updates := make([]colUpdate, 0, len(s.Set))
	for _, as := range s.Set {
		j := schema.IndexOf(as.Column)
		if j < 0 {
			return Result{}, fmt.Errorf("engine: table %s has no column %q", s.Table, as.Column)
		}
		bound, err := plan.BindExprParams(as.E, sc, db.funcs, ps)
		if err != nil {
			return Result{}, err
		}
		vals := make([]storage.Value, len(idx))
		for k, i := range idx {
			v, err := bound.Eval(expr.Row{Batch: data, Idx: i})
			if err != nil {
				return Result{}, err
			}
			if v.Null && schema.Cols[j].NotNull {
				return Result{}, fmt.Errorf("engine: NOT NULL constraint violated on %s.%s", s.Table, as.Column)
			}
			cv, err := storage.Coerce(v, schema.Cols[j].Type)
			if err != nil {
				return Result{}, err
			}
			vals[k] = cv
		}
		updates = append(updates, colUpdate{col: j, vals: vals})
	}
	db.noteWrite(t)
	for _, u := range updates {
		if err := t.UpdateInPlace(idx, u.col, u.vals); err != nil {
			return Result{}, err
		}
	}
	return Result{RowsAffected: len(idx)}, nil
}

func (db *DB) execDelete(s *sql.DeleteStmt, ps *plan.Params) (Result, error) {
	t, err := db.cat.Get(s.Table)
	if err != nil {
		return Result{}, err
	}
	idx, err := db.matchRows(t, s.Where, ps)
	if err != nil {
		return Result{}, err
	}
	if len(idx) == 0 {
		return Result{}, nil
	}
	db.noteWrite(t)
	t.DeleteWhere(idx)
	return Result{RowsAffected: len(idx)}, nil
}
