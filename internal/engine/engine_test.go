package engine

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/expr"
	"repro/internal/storage"
)

func openAppend(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
}

func mustExec(t *testing.T, db *DB, stmts ...string) {
	t.Helper()
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("exec %q: %v", s, err)
		}
	}
}

func queryInts(t *testing.T, db *DB, q string) []int64 {
	t.Helper()
	rows, err := db.Query(q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	out := make([]int64, rows.Len())
	for i := range out {
		out[i] = rows.Value(i, 0).AsInt()
	}
	return out
}

func newGraphDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec(t, db,
		"CREATE TABLE vertex (id INTEGER NOT NULL, value VARCHAR)",
		"CREATE TABLE edge (src INTEGER NOT NULL, dst INTEGER NOT NULL, weight DOUBLE)",
		"INSERT INTO vertex VALUES (1, 'a'), (2, 'b'), (3, 'c'), (4, 'd')",
		"INSERT INTO edge VALUES (1, 2, 1.0), (2, 3, 0.5), (3, 1, 2.0), (1, 3, 1.5), (4, 1, 1.0)",
	)
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := newGraphDB(t)
	got := queryInts(t, db, "SELECT id FROM vertex ORDER BY id")
	want := []int64{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ids = %v", got)
		}
	}
}

func TestWhereAndProjection(t *testing.T) {
	db := newGraphDB(t)
	rows, err := db.Query("SELECT src, dst FROM edge WHERE weight > 0.9 ORDER BY src, dst")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 4 {
		t.Fatalf("rows = %d, want 4", rows.Len())
	}
	if rows.Columns()[0] != "src" || rows.Columns()[1] != "dst" {
		t.Errorf("columns = %v", rows.Columns())
	}
}

func TestJoinQuery(t *testing.T) {
	db := newGraphDB(t)
	rows, err := db.Query(`SELECT v.value FROM edge AS e JOIN vertex AS v ON e.dst = v.id
		WHERE e.src = 1 ORDER BY v.value`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 || rows.Value(0, 0).S != "b" || rows.Value(1, 0).S != "c" {
		t.Fatalf("join wrong: %d rows", rows.Len())
	}
}

func TestGroupByOutDegree(t *testing.T) {
	db := newGraphDB(t)
	rows, err := db.Query("SELECT src, COUNT(*) AS outdeg FROM edge GROUP BY src ORDER BY src")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 4 {
		t.Fatalf("groups = %d", rows.Len())
	}
	if rows.Value(0, 1).I != 2 { // src=1 has 2 out-edges
		t.Errorf("outdeg(1) = %v", rows.Value(0, 1))
	}
}

func TestHavingAndAggregateExpr(t *testing.T) {
	db := newGraphDB(t)
	rows, err := db.Query(`SELECT src FROM edge GROUP BY src HAVING COUNT(*) > 1 ORDER BY src`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 || rows.Value(0, 0).I != 1 {
		t.Fatalf("having wrong: %d rows", rows.Len())
	}
	v, err := db.QueryScalar("SELECT SUM(weight) / COUNT(*) FROM edge")
	if err != nil {
		t.Fatal(err)
	}
	if v.F != 6.0/5.0 {
		t.Errorf("avg weight = %v", v)
	}
}

func TestUnionAllQuery(t *testing.T) {
	db := newGraphDB(t)
	got := queryInts(t, db, "SELECT src FROM edge UNION ALL SELECT dst FROM edge")
	if len(got) != 10 {
		t.Fatalf("union rows = %d", len(got))
	}
}

func TestCTEAndDerivedTable(t *testing.T) {
	db := newGraphDB(t)
	rows, err := db.Query(`WITH deg AS (SELECT src, COUNT(*) AS d FROM edge GROUP BY src)
		SELECT v.id, deg.d FROM vertex AS v JOIN deg ON v.id = deg.src ORDER BY v.id`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 4 || rows.Value(0, 1).I != 2 {
		t.Fatalf("cte join wrong: %d rows", rows.Len())
	}
	v, err := db.QueryScalar("SELECT MAX(t.d) FROM (SELECT src, COUNT(*) AS d FROM edge GROUP BY src) AS t")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 2 {
		t.Errorf("max degree = %v", v)
	}
}

func TestUpdateDelete(t *testing.T) {
	db := newGraphDB(t)
	res, err := db.Exec("UPDATE vertex SET value = 'z' WHERE id > 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 2 {
		t.Errorf("updated %d rows", res.RowsAffected)
	}
	v, _ := db.QueryScalar("SELECT COUNT(*) FROM vertex WHERE value = 'z'")
	if v.I != 2 {
		t.Error("update did not apply")
	}
	res, err = db.Exec("DELETE FROM edge WHERE weight < 1.0")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 {
		t.Errorf("deleted %d rows", res.RowsAffected)
	}
}

func TestInsertSelectAndColumnSubset(t *testing.T) {
	db := newGraphDB(t)
	mustExec(t, db, "CREATE TABLE hub (id INTEGER, outdeg INTEGER)")
	mustExec(t, db, "INSERT INTO hub SELECT src, COUNT(*) FROM edge GROUP BY src")
	v, _ := db.QueryScalar("SELECT COUNT(*) FROM hub")
	if v.I != 4 {
		t.Errorf("insert-select rows = %v", v)
	}
	// Column-subset insert leaves unlisted columns NULL.
	mustExec(t, db, "INSERT INTO hub (id) VALUES (99)")
	rows, _ := db.Query("SELECT outdeg FROM hub WHERE id = 99")
	if rows.Len() != 1 || !rows.Value(0, 0).Null {
		t.Error("unlisted column should be NULL")
	}
}

func TestNotNullEnforced(t *testing.T) {
	db := newGraphDB(t)
	if _, err := db.Exec("INSERT INTO vertex VALUES (NULL, 'x')"); err == nil {
		t.Error("NOT NULL insert should fail")
	}
	if _, err := db.Exec("UPDATE vertex SET id = NULL WHERE id = 1"); err == nil {
		t.Error("NOT NULL update should fail")
	}
}

func TestTransactionRollback(t *testing.T) {
	db := newGraphDB(t)
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db,
		"UPDATE vertex SET value = 'mutated'",
		"DELETE FROM edge",
		"CREATE TABLE scratch (x INTEGER)",
		"DROP TABLE vertex",
	)
	if err := db.Rollback(); err != nil {
		t.Fatal(err)
	}
	v, err := db.QueryScalar("SELECT COUNT(*) FROM vertex WHERE value = 'a'")
	if err != nil {
		t.Fatalf("vertex table gone after rollback: %v", err)
	}
	if v.I != 1 {
		t.Error("update not rolled back")
	}
	v, _ = db.QueryScalar("SELECT COUNT(*) FROM edge")
	if v.I != 5 {
		t.Error("delete not rolled back")
	}
	if db.Catalog().Has("scratch") {
		t.Error("created table should vanish on rollback")
	}
}

func TestTransactionCommit(t *testing.T) {
	db := newGraphDB(t)
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "DELETE FROM edge WHERE src = 1")
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	v, _ := db.QueryScalar("SELECT COUNT(*) FROM edge")
	if v.I != 3 {
		t.Errorf("edges after commit = %v", v)
	}
	if err := db.Commit(); err == nil {
		t.Error("commit without begin should fail")
	}
}

func TestUDFFromSQL(t *testing.T) {
	db := newGraphDB(t)
	err := db.RegisterUDF(&expr.ScalarFunc{
		Name: "damping", MinArgs: 1, MaxArgs: 1,
		ReturnType: func([]storage.Type) (storage.Type, error) { return storage.TypeFloat64, nil },
		Eval: expr.NullSafe(storage.TypeFloat64, func(a []storage.Value) (storage.Value, error) {
			return storage.Float64(0.15 + 0.85*a[0].AsFloat()), nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := db.QueryScalar("SELECT DAMPING(1.0)")
	if err != nil {
		t.Fatal(err)
	}
	if v.F != 1.0 {
		t.Errorf("damping(1) = %v", v)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db,
		"CREATE TABLE vertex (id INTEGER NOT NULL, value VARCHAR, rank DOUBLE, active BOOLEAN)",
		"INSERT INTO vertex VALUES (1, 'a', 0.25, TRUE), (2, NULL, 0.75, FALSE)",
	)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "INSERT INTO vertex VALUES (3, 'c', 0.5, TRUE)") // lands in WAL only
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	v, err := db2.QueryScalar("SELECT COUNT(*) FROM vertex")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 3 {
		t.Fatalf("recovered %v rows, want 3 (snapshot + WAL replay)", v)
	}
	rows, err := db2.Query("SELECT value, rank, active FROM vertex WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Value(0, 0).Null || rows.Value(0, 1).F != 0.75 || rows.Value(0, 2).Bool() {
		t.Errorf("recovered row 2 wrong: %v", rows.Row(0))
	}
}

func TestRecoveryIgnoresTornWALRecord(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (x INTEGER)", "INSERT INTO t VALUES (1)")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the WAL tail with a torn record: a length prefix promising
	// more bytes than exist.
	walPath := filepath.Join(dir, "wal.sql")
	f, err := openAppend(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0x01, 'S', 'E'}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	db2, err := Open(dir)
	if err != nil {
		t.Fatalf("recovery should survive a torn WAL tail: %v", err)
	}
	defer db2.Close()
	v, err := db2.QueryScalar("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 1 {
		t.Errorf("recovered %v rows, want 1", v)
	}
}

func TestExecRejectsGarbage(t *testing.T) {
	db := New()
	if _, err := db.Exec("FLY ME TO THE MOON"); err == nil {
		t.Error("garbage should fail to parse")
	}
	if _, err := db.Query("INSERT INTO t VALUES (1)"); err == nil {
		t.Error("Query should reject non-SELECT")
	}
	if _, err := db.Query("SELECT * FROM missing"); err == nil {
		t.Error("unknown table should fail")
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	db := New()
	v, err := db.QueryScalar("SELECT 2 + 3 * 4")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 14 {
		t.Errorf("scalar = %v", v)
	}
}

func TestOrderByOrdinalAndAlias(t *testing.T) {
	db := newGraphDB(t)
	got := queryInts(t, db, "SELECT id AS n FROM vertex ORDER BY n DESC")
	if got[0] != 4 {
		t.Error("order by alias failed")
	}
	got = queryInts(t, db, "SELECT id FROM vertex ORDER BY 1 DESC")
	if got[0] != 4 {
		t.Error("order by ordinal failed")
	}
}

func TestDistinctQuery(t *testing.T) {
	db := newGraphDB(t)
	got := queryInts(t, db, "SELECT DISTINCT src FROM edge ORDER BY src")
	if len(got) != 4 {
		t.Errorf("distinct srcs = %v", got)
	}
}
