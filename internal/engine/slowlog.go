package engine

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/exec"
	"repro/internal/sql"
	"repro/internal/trace"
)

// SlowQuery is one slow-statement record: what ran, how long it took,
// how many rows it produced (SELECT) or affected (writes), and the
// compact plan shape (exec.Summary) so a log line identifies the access
// path without re-running EXPLAIN. TraceID joins the record against
// vx$traces / vx$trace_spans (0 when tracing is off), and Fingerprint
// is the plan-cache normalization of the statement text, so a log line
// groups with its cache entry and with other spellings of the same
// statement.
type SlowQuery struct {
	Text        string
	Duration    time.Duration
	Rows        int64
	Plan        string
	TraceID     uint64
	Fingerprint string
}

// String renders the record as the structured single-line format the
// default log sink writes.
func (q SlowQuery) String() string {
	return fmt.Sprintf("slow-query duration=%s rows=%d trace_id=%d fingerprint=%s plan=%s text=%s",
		q.Duration.Round(time.Microsecond), q.Rows, q.TraceID,
		strconv.Quote(q.Fingerprint), q.Plan, strconv.Quote(q.Text))
}

// SetSlowQueryThreshold enables the slow-query log: statements that run
// longer than d are reported to the configured sink (stderr unless
// SetSlowQueryLog installed one). d <= 0 disables logging (the
// default). For a streaming SELECT the measured duration spans from
// planning to the moment the stream finishes — what the client
// experienced, not just executor time.
func (db *DB) SetSlowQueryThreshold(d time.Duration) {
	db.slowMu.Lock()
	if d < 0 {
		d = 0
	}
	db.slowThreshold = d
	db.slowMu.Unlock()
	// Retention coupling: a statement slow enough to be logged always
	// keeps its trace, whatever the sampling stride says.
	db.tracer.SetSlowThreshold(d)
}

// SetSlowQueryLog installs fn as the slow-query sink. fn must be safe
// for concurrent use; it is called synchronously on the statement's
// goroutine. nil restores the default sink (one line to stderr).
func (db *DB) SetSlowQueryLog(fn func(SlowQuery)) {
	db.slowMu.Lock()
	defer db.slowMu.Unlock()
	db.slowLog = fn
}

// observeStatement records one finished statement: the engine-wide
// latency histogram always, and a slow-query record when a threshold is
// set and exceeded. traceID ties the log line to its vx$traces row
// (0 when the statement was not traced); the fingerprint is computed
// only for statements slow enough to log.
func (db *DB) observeStatement(text string, d time.Duration, rows int64, plan string, traceID uint64) {
	db.obs.Histogram("engine.statement_latency").Observe(d)
	db.slowMu.Lock()
	th, fn := db.slowThreshold, db.slowLog
	db.slowMu.Unlock()
	if th <= 0 || d < th {
		return
	}
	db.obs.Counter("engine.slow_queries").Inc()
	q := SlowQuery{
		Text:        text,
		Duration:    d,
		Rows:        rows,
		Plan:        plan,
		TraceID:     traceID,
		Fingerprint: normalizeStatement(text),
	}
	if fn != nil {
		fn(q)
		return
	}
	fmt.Fprintln(os.Stderr, q.String())
}

// hookSlowQuery arranges for a streaming SELECT to be observed when its
// stream finishes (drained, closed, or failed): a cleanup closure
// captures the start time and reads the rows' emitted count and root
// operator once the drain is over, so the recorded duration is what the
// client experienced end to end. The same closure completes the
// statement's trace: it stamps the drain span and the per-operator
// detail, then publishes the collector into the tracer's ring. Traced
// statements run with per-operator timing enabled (MarkTimed) so the
// operator spans carry real nanosecond counts.
func (db *DB) hookSlowQuery(rows *Rows, text string, start time.Time, tc *trace.Collector) {
	var release func()
	if tc != nil && rows.root != nil {
		release = exec.MarkTimed(rows.root)
	}
	drainStart := time.Now()
	rows.cleanup = append(rows.cleanup, func() {
		if release != nil {
			release()
		}
		plan := ""
		if rows.root != nil {
			plan = exec.Summary(rows.root)
		}
		if tc != nil {
			tc.Add("drain", drainStart, time.Since(drainStart), fmt.Sprintf("rows=%d", rows.emitted))
			addOperatorSpans(tc, rows.root, drainStart)
			db.finishTrace(tc)
		}
		db.observeStatement(text, time.Since(start), rows.emitted, plan, tc.ID())
	})
}

// stmtKind maps a statement to its counter label.
func stmtKind(st sql.Statement) string {
	switch st.(type) {
	case *sql.SelectStmt:
		return "select"
	case *sql.InsertStmt:
		return "insert"
	case *sql.UpdateStmt:
		return "update"
	case *sql.DeleteStmt:
		return "delete"
	case *sql.CreateTableStmt:
		return "create"
	case *sql.DropTableStmt:
		return "drop"
	case *sql.TruncateStmt:
		return "truncate"
	case *sql.SetStmt:
		return "set"
	case *sql.ShowStmt:
		return "show"
	case *sql.BeginStmt, *sql.CommitStmt, *sql.RollbackStmt:
		return "txn"
	case *sql.ExplainStmt:
		return "explain"
	}
	return "other"
}

// countStmt feeds the per-kind statement counters SHOW STATS reports
// (engine.statements.<kind>). Sessions call it once per statement run;
// WAL replay does not go through Sessions, so recovery does not inflate
// the counts.
func (db *DB) countStmt(st sql.Statement) {
	db.obs.Counter("engine.statements." + stmtKind(st)).Inc()
}
