package engine

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"
)

// Observability coverage: EXPLAIN / EXPLAIN ANALYZE renderings, the
// plan-cache key normalization, SHOW STATS, and the slow-query log.

func observeDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec(t, db,
		"CREATE TABLE ev (src INTEGER NOT NULL, dst INTEGER NOT NULL) PARTITION BY HASH(src) SHARDS 4",
		"CREATE TABLE nv (id INTEGER NOT NULL, label VARCHAR)",
		"INSERT INTO ev VALUES (1, 2), (1, 3), (2, 3), (3, 1)",
		"INSERT INTO nv VALUES (1, 'a'), (2, 'b'), (3, 'c')",
	)
	return db
}

func observeSession(t *testing.T, db *DB, workers int) *Session {
	t.Helper()
	sess := db.NewSession()
	t.Cleanup(func() { sess.Close() })
	if _, _, err := sess.RunStream(context.Background(),
		fmt.Sprintf("SET parallelism = %d", workers)); err != nil {
		t.Fatal(err)
	}
	return sess
}

func explainLines(t *testing.T, sess *Session, stmt string) []string {
	t.Helper()
	rows, _, err := sess.RunStream(context.Background(), stmt)
	if err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
	return rowLines(t, rows)
}

// TestExplainGolden pins the plain-EXPLAIN renderings for the plan
// shapes the executor produces: serial scans, shard-pruned point
// lookups, parallel aggregation and joins, and write routing. The
// worker count is fixed by SET parallelism, so the fragment counts are
// machine-independent.
func TestExplainGolden(t *testing.T) {
	db := observeDB(t)
	sess := observeSession(t, db, 2)

	golden := []struct {
		stmt string
		want []string
	}{
		{"EXPLAIN SELECT * FROM nv", []string{
			"plan (workers=2, mode=snapshot, plan-cache=miss)",
			"Project (id, label)",
			"  Scan nv",
		}},
		{"EXPLAIN SELECT dst FROM ev WHERE src = 1", []string{
			"plan (workers=2, mode=snapshot, plan-cache=miss)",
			"Project (dst)",
			"  Filter ((src = 1))",
			"    Scan ev [shard 1/4]",
		}},
		{"EXPLAIN SELECT src, COUNT(*) FROM ev GROUP BY src", []string{
			"plan (workers=2, mode=snapshot, plan-cache=miss)",
			"Gather (fragments=2)",
			"  Project (src, COUNT(*))",
			"    Spool (parts=2)",
			"      HashAggregate (src, COUNT(*)) [workers=2]",
			"        Scan ev [4 shards]",
		}},
		{"EXPLAIN SELECT n.label FROM ev e JOIN nv n ON n.id = e.dst WHERE e.src = 1 ORDER BY n.label LIMIT 2", []string{
			"plan (workers=2, mode=snapshot, plan-cache=miss)",
			"Limit 2",
			"  Sort (label) [workers=2]",
			"    Gather (fragments=2)",
			"      Project (label)",
			"        Filter ((e.src = 1))",
			"          Spool (parts=2)",
			"            HashJoin inner (dst = id) [workers=2]",
			"              Scan nv",
			"              Scan ev [4 shards]",
		}},
		{"EXPLAIN INSERT INTO nv VALUES (4, 'd')", []string{
			"write insert: sharded fast path (shared gate + per-shard statement locks)",
		}},
		{"EXPLAIN CREATE TABLE zz (x INTEGER)", []string{
			"write create: serialized (exclusive write gate)",
		}},
	}
	for _, g := range golden {
		got := explainLines(t, sess, g.stmt)
		if len(got) != len(g.want) {
			t.Errorf("%s:\n got %d lines %q\nwant %d lines %q", g.stmt, len(got), got, len(g.want), g.want)
			continue
		}
		for i := range got {
			if got[i] != g.want[i] {
				t.Errorf("%s: line %d = %q, want %q", g.stmt, i, got[i], g.want[i])
			}
		}
	}
}

// TestExplainPlanCacheHit: once a SELECT has run, EXPLAIN of the same
// text (same fingerprint, same workers) reports the cached plan.
func TestExplainPlanCacheHit(t *testing.T) {
	db := observeDB(t)
	sess := observeSession(t, db, 2)
	ctx := context.Background()

	const q = "SELECT dst FROM ev WHERE src = 1"
	head := explainLines(t, sess, "EXPLAIN "+q)[0]
	if !strings.Contains(head, "plan-cache=miss") {
		t.Fatalf("before running: header %q, want plan-cache=miss", head)
	}
	// The prepared/bound path populates the plan cache (plain text
	// queries re-plan per statement).
	rows, _, err := sess.RunStreamBound(ctx, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	rowLines(t, rows)
	head = explainLines(t, sess, "EXPLAIN "+q)[0]
	if !strings.Contains(head, "plan-cache=hit") {
		t.Errorf("after running: header %q, want plan-cache=hit", head)
	}
	// Worker-count change invalidates: the cached plan was built for 2.
	sessW := observeSession(t, db, 3)
	head = explainLines(t, sessW, "EXPLAIN "+q)[0]
	if !strings.Contains(head, "plan-cache=miss") {
		t.Errorf("other worker count: header %q, want plan-cache=miss", head)
	}
}

// explainRowCounts extracts per-operator output rows from an ANALYZE
// rendering: operator name (first token of the trimmed line) → summed
// rows. Structure varies with the worker count (serial plans have no
// Gather/Spool), but every logical operator's row flow must not.
func explainRowCounts(t *testing.T, lines []string) (map[string]int64, int64) {
	t.Helper()
	counts := map[string]int64{}
	var executed int64 = -1
	for _, l := range lines {
		trimmed := strings.TrimSpace(l)
		if strings.HasPrefix(trimmed, "executed:") {
			fmt.Sscanf(trimmed, "executed: rows=%d", &executed)
			continue
		}
		i := strings.Index(trimmed, "(rows=")
		if i < 0 {
			continue
		}
		var rows int64
		if _, err := fmt.Sscanf(trimmed[i:], "(rows=%d", &rows); err != nil {
			t.Fatalf("unparseable stats suffix in %q: %v", l, err)
		}
		op, _, _ := strings.Cut(trimmed, " ")
		counts[op] += rows
	}
	return counts, executed
}

// TestExplainAnalyzeRowsInvariance: per-operator row counts in EXPLAIN
// ANALYZE are deterministic — identical at any parallelism, because
// clone sets are summed into one logical node.
func TestExplainAnalyzeRowsInvariance(t *testing.T) {
	db := observeDB(t)
	const q = "EXPLAIN ANALYZE SELECT n.label, COUNT(*) FROM ev e JOIN nv n ON n.id = e.dst GROUP BY n.label ORDER BY n.label"

	var base map[string]int64
	var baseExecuted int64
	for _, workers := range []int{1, 2, 8} {
		sess := observeSession(t, db, workers)
		counts, executed := explainRowCounts(t, explainLines(t, sess, q))
		if executed < 0 {
			t.Fatalf("workers=%d: no executed line", workers)
		}
		if base == nil {
			base, baseExecuted = counts, executed
			if base["Scan"] != 4+3 { // ev rows + nv rows
				t.Errorf("workers=%d: Scan rows = %d, want 7", workers, base["Scan"])
			}
			continue
		}
		if executed != baseExecuted {
			t.Errorf("workers=%d: executed rows = %d, want %d", workers, executed, baseExecuted)
		}
		// Parallel plans add plumbing (Gather, Spool) a serial plan has
		// no use for; the logical operators they share must move
		// identical row counts.
		for op, n := range base {
			if counts[op] != n {
				t.Errorf("workers=%d: %s rows = %d, want %d (workers=1)", workers, op, counts[op], n)
			}
		}
	}
}

// TestExplainAnalyzeWrite: ANALYZE of a write is a real write, routed
// and reported through the same admission paths the engine uses.
func TestExplainAnalyzeWrite(t *testing.T) {
	db := observeDB(t)
	sess := observeSession(t, db, 2)

	lines := explainLines(t, sess, "EXPLAIN ANALYZE INSERT INTO nv VALUES (9, 'z')")
	if len(lines) != 2 {
		t.Fatalf("lines = %q, want route + executed", lines)
	}
	if !strings.HasPrefix(lines[1], "executed via fast path: rows=1") {
		t.Errorf("executed line = %q", lines[1])
	}
	v, err := db.QueryScalar("SELECT COUNT(*) FROM nv WHERE id = 9")
	if err != nil || v.I != 1 {
		t.Errorf("ANALYZE insert not visible: %v %v", v, err)
	}
}

// TestPlanCacheNormalization: statements that differ only in
// whitespace, keyword case, or comments share one cache entry; string
// literals stay byte-significant.
func TestPlanCacheNormalization(t *testing.T) {
	db := observeDB(t)
	sess := observeSession(t, db, 2)
	ctx := context.Background()

	// The bound/prepared path is the one that consults the cache; a
	// parameterless statement still gets a cache entry there.
	runQ := func(q string) {
		t.Helper()
		rows, _, err := sess.RunStreamBound(ctx, q, nil)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		rowLines(t, rows)
	}

	// A serial single-table shape: parallel plans spool and are not
	// cacheable, which would mask the normalization under test.
	before := db.PreparedStats()
	runQ("SELECT * FROM nv WHERE label = 'a'")
	runQ("select  *   from nv where label = 'a'")
	runQ("SELECT * -- trailing note\nFROM nv WHERE label = 'a'")
	runQ("SELECT /* hint? no. */ * FROM nv WHERE label = 'a'")
	after := db.PreparedStats()
	if parses := after.Parses - before.Parses; parses != 1 {
		t.Errorf("equivalent spellings: %d parses, want 1 (one cache entry)", parses)
	}
	if hits := after.Hits - before.Hits; hits != 3 {
		t.Errorf("equivalent spellings: %d hits, want 3", hits)
	}

	// Literal bytes are not normalized: 'a b' and 'a  b' are different
	// queries, and keyword-case folding must not reach into them.
	before = after
	runQ("SELECT * FROM nv WHERE label = 'a b'")
	runQ("SELECT * FROM nv WHERE label = 'a  b'")
	runQ("SELECT * FROM nv WHERE label = 'A B'")
	after = db.PreparedStats()
	if parses := after.Parses - before.Parses; parses != 3 {
		t.Errorf("distinct literals: %d parses, want 3", parses)
	}
}

// TestShowStats: the registry snapshot surfaces as a two-column result
// with the counters this session's own activity fed.
func TestShowStats(t *testing.T) {
	db := observeDB(t)
	sess := observeSession(t, db, 2)
	ctx := context.Background()

	rows, _, err := sess.RunStream(ctx, "SELECT COUNT(*) FROM ev")
	if err != nil {
		t.Fatal(err)
	}
	rowLines(t, rows)
	if _, _, err := sess.RunStream(ctx, "INSERT INTO nv VALUES (5, 'e')"); err != nil {
		t.Fatal(err)
	}
	// A bound execution touches the plan cache (plain text does not).
	bound, _, err := sess.RunStreamBound(ctx, "SELECT COUNT(*) FROM nv", nil)
	if err != nil {
		t.Fatal(err)
	}
	rowLines(t, bound)

	stats, _, err := sess.RunStream(ctx, "SHOW STATS")
	if err != nil {
		t.Fatal(err)
	}
	batch, err := stats.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for i := 0; i < batch.Len(); i++ {
		row := batch.Row(i)
		got[row[0].S] = row[1].I
	}
	checks := []struct {
		name string
		min  int64
	}{
		{"engine.statements.select", 2},
		{"engine.statements.insert", 1},
		{"engine.statements.show", 1}, // SHOW STATS counts itself
		{"engine.fastpath.taken", 1},
		{"plancache.parses", 1},
		{"sched.budget_capacity", 0},
		{"mvcc.epoch", 1},
		{"engine.statement_latency.count", 1},
	}
	for _, c := range checks {
		v, ok := got[c.name]
		if !ok {
			t.Errorf("SHOW STATS: %s missing", c.name)
			continue
		}
		if v < c.min {
			t.Errorf("SHOW STATS: %s = %d, want >= %d", c.name, v, c.min)
		}
	}
}

// TestSlowQueryLog: statements over the threshold reach the installed
// sink with their duration, row count, and plan summary; fast
// statements (threshold disabled) do not.
func TestSlowQueryLog(t *testing.T) {
	db := observeDB(t)
	sess := observeSession(t, db, 2)
	ctx := context.Background()

	var captured []SlowQuery
	db.SetSlowQueryLog(func(q SlowQuery) { captured = append(captured, q) })
	defer db.SetSlowQueryLog(nil)

	// Threshold unset: nothing is logged.
	rows, _, err := sess.RunStream(ctx, "SELECT * FROM nv")
	if err != nil {
		t.Fatal(err)
	}
	rowLines(t, rows)
	if len(captured) != 0 {
		t.Fatalf("threshold disabled, but %d records captured", len(captured))
	}

	db.SetSlowQueryThreshold(time.Nanosecond)
	defer db.SetSlowQueryThreshold(0)

	const q = "SELECT * FROM nv ORDER BY id"
	rows, _, err = sess.RunStream(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	rowLines(t, rows)
	if len(captured) != 1 {
		t.Fatalf("captured %d records, want 1", len(captured))
	}
	rec := captured[0]
	if rec.Text != q {
		t.Errorf("Text = %q, want %q", rec.Text, q)
	}
	if rec.Rows != 3 {
		t.Errorf("Rows = %d, want 3", rec.Rows)
	}
	if rec.Duration <= 0 {
		t.Errorf("Duration = %v, want > 0", rec.Duration)
	}
	if !strings.Contains(rec.Plan, "Scan") {
		t.Errorf("Plan = %q, want a Scan in the summary", rec.Plan)
	}
	if !strings.Contains(rec.String(), strconv.Quote(q)) {
		t.Errorf("String() = %q, want quoted statement text", rec.String())
	}

	// Writes are observed too; the plan field degrades to the kind.
	captured = nil
	if _, _, err := sess.RunStream(ctx, "INSERT INTO nv VALUES (7, 'g')"); err != nil {
		t.Fatal(err)
	}
	if len(captured) != 1 {
		t.Fatalf("write: captured %d records, want 1", len(captured))
	}
	if captured[0].Rows != 1 {
		t.Errorf("write Rows = %d, want 1", captured[0].Rows)
	}

	// Counter: slow queries feed engine.slow_queries.
	if v := statValue(t, db, "engine.slow_queries"); v < 2 {
		t.Errorf("engine.slow_queries = %d, want >= 2", v)
	}
}

func statValue(t *testing.T, db *DB, name string) int64 {
	t.Helper()
	for _, s := range db.Stats().Snapshot() {
		if s.Name == name {
			return s.Value
		}
	}
	t.Fatalf("stat %s not in registry snapshot", name)
	return 0
}

// TestSlowQueryStreamDuration: the logged duration of a streaming
// SELECT covers the drain, not just planning.
func TestSlowQueryStreamDuration(t *testing.T) {
	db := observeDB(t)
	sess := observeSession(t, db, 2)
	ctx := context.Background()

	var captured []SlowQuery
	db.SetSlowQueryLog(func(q SlowQuery) { captured = append(captured, q) })
	defer db.SetSlowQueryLog(nil)
	db.SetSlowQueryThreshold(time.Nanosecond)
	defer db.SetSlowQueryThreshold(0)

	rows, _, err := sess.RunStream(ctx, "SELECT * FROM ev")
	if err != nil {
		t.Fatal(err)
	}
	if len(captured) != 0 {
		t.Fatal("record logged before the stream was drained")
	}
	time.Sleep(5 * time.Millisecond)
	if _, err := rows.Materialize(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if len(captured) != 1 {
		t.Fatalf("captured %d records, want 1", len(captured))
	}
	if captured[0].Duration < 5*time.Millisecond {
		t.Errorf("Duration = %v, want >= 5ms (spans the stream)", captured[0].Duration)
	}
}

// TestExplainRejectsUnsupported: EXPLAIN of session-control statements
// is a clean error, not a panic or silent no-op.
func TestExplainRejectsUnsupported(t *testing.T) {
	db := observeDB(t)
	sess := observeSession(t, db, 2)
	if _, _, err := sess.RunStream(context.Background(), "EXPLAIN SET parallelism = 1"); err == nil {
		t.Fatal("EXPLAIN SET succeeded, want error")
	}
}
