package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/storage"
)

// pickDisjointKeys returns two int64 keys that hash to different
// shards at the given shard count.
func pickDisjointKeys(t *testing.T, shards int) (int64, int64) {
	t.Helper()
	s0 := storage.HashValue(storage.Int64(0)) % uint64(shards)
	for k := int64(1); k < 1000; k++ {
		if storage.HashValue(storage.Int64(k))%uint64(shards) != s0 {
			return 0, k
		}
	}
	t.Fatal("no disjoint keys found")
	return 0, 0
}

// TestShardConcurrentDisjointWriters drives two sessions that commit
// auto-commit inserts to disjoint shards of one table concurrently (the
// sharded fast path: shared write gate + per-shard statement locks),
// while a reader continuously pins MVCC snapshots. The reader must see
// whole-shard-atomic state: every pinned snapshot holds a multiple of
// the per-statement row count for each key — never a torn statement —
// and the final table holds every committed row exactly once.
func TestShardConcurrentDisjointWriters(t *testing.T) {
	db := New()
	if _, err := db.Exec("CREATE TABLE t (id INTEGER NOT NULL, seq INTEGER) PARTITION BY HASH(id) SHARDS 4"); err != nil {
		t.Fatal(err)
	}
	k1, k2 := pickDisjointKeys(t, 4)

	const stmts = 50
	const rowsPerStmt = 5
	ctx := context.Background()

	writer := func(key int64) error {
		sess := db.NewSession()
		defer sess.Close()
		for i := 0; i < stmts; i++ {
			stmt := "INSERT INTO t VALUES "
			for r := 0; r < rowsPerStmt; r++ {
				if r > 0 {
					stmt += ", "
				}
				stmt += fmt.Sprintf("(%d, %d)", key, i*rowsPerStmt+r)
			}
			if _, err := sess.ExecContext(ctx, stmt); err != nil {
				return err
			}
		}
		return nil
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	done := make(chan struct{})
	for i, key := range []int64{k1, k2} {
		wg.Add(1)
		go func(i int, key int64) {
			defer wg.Done()
			errs[i] = writer(key)
		}(i, key)
	}

	// Reader: pin snapshots mid-commit and assert atomicity per key.
	readerErr := make(chan error, 1)
	go func() {
		defer close(readerErr)
		for {
			select {
			case <-done:
				return
			default:
			}
			for _, key := range []int64{k1, k2} {
				rows, err := db.Query(fmt.Sprintf("SELECT COUNT(*) FROM t WHERE id = %d", key))
				if err != nil {
					readerErr <- err
					return
				}
				n := rows.Value(0, 0).I
				if n%rowsPerStmt != 0 {
					readerErr <- fmt.Errorf("torn statement visible: key %d count %d not a multiple of %d", key, n, rowsPerStmt)
					return
				}
			}
		}
	}()

	wg.Wait()
	close(done)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	if err, ok := <-readerErr; ok && err != nil {
		t.Fatal(err)
	}

	for _, key := range []int64{k1, k2} {
		rows, err := db.Query(fmt.Sprintf("SELECT COUNT(*) FROM t WHERE id = %d", key))
		if err != nil {
			t.Fatal(err)
		}
		if got := rows.Value(0, 0).I; got != stmts*rowsPerStmt {
			t.Errorf("key %d: %d rows, want %d", key, got, stmts*rowsPerStmt)
		}
		// Every sequence number exactly once: no lost or doubled writes.
		rows, err = db.Query(fmt.Sprintf("SELECT COUNT(DISTINCT seq) FROM t WHERE id = %d", key))
		if err != nil {
			t.Fatal(err)
		}
		if got := rows.Value(0, 0).I; got != stmts*rowsPerStmt {
			t.Errorf("key %d: %d distinct seqs, want %d", key, got, stmts*rowsPerStmt)
		}
	}
}

// TestShardFastPathFallbacks checks the statements the fast path must
// decline still work: writes inside a transaction (exclusive gate,
// undo via MVCC pre-images) and mixed DML against a sharded table.
func TestShardFastPathFallbacks(t *testing.T) {
	db := New()
	mustExec := func(q string) {
		t.Helper()
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	mustExec("CREATE TABLE s (id INTEGER NOT NULL, v VARCHAR) PARTITION BY HASH(id) SHARDS 4")
	mustExec("INSERT INTO s VALUES (1, 'a'), (2, 'b'), (3, 'c'), (4, 'd')")
	mustExec("UPDATE s SET v = 'x' WHERE id = 2")
	mustExec("DELETE FROM s WHERE id = 3")

	sess := db.NewSession()
	defer sess.Close()
	ctx := context.Background()
	run := func(q string) {
		t.Helper()
		if _, err := sess.ExecContext(ctx, q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	run("BEGIN")
	run("INSERT INTO s VALUES (10, 'txn')")
	run("UPDATE s SET v = 'y' WHERE id = 1")
	run("ROLLBACK")

	rows, err := db.Query("SELECT id, v FROM s ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]string{{"1", "a"}, {"2", "x"}, {"4", "d"}}
	if rows.Len() != len(want) {
		t.Fatalf("got %d rows, want %d", rows.Len(), len(want))
	}
	for i, w := range want {
		if got := rows.Value(i, 0).String(); got != w[0] {
			t.Errorf("row %d id = %s, want %s", i, got, w[0])
		}
		if got := rows.Value(i, 1).S; got != w[1] {
			t.Errorf("row %d v = %s, want %s", i, got, w[1])
		}
	}
}
