package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/sql"
	"repro/internal/storage"
)

// The parallelism property: every plan produces identical rows — same
// values, same order — with Parallelism=1 and Parallelism=8. The
// executor's morsel design makes parallel execution deterministic
// (fragment-ordered gather, key-partitioned aggregation), so the
// comparison below is exact, not merely set-equal after sorting.

// corpusDB builds the property-test database: the sqlfeatures tables
// plus generated tables large enough for the planner to actually split
// morsels (MinMorselRows is lowered for the duration).
func corpusDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec(t, db,
		"CREATE TABLE people (id INTEGER NOT NULL, name VARCHAR, age INTEGER, score DOUBLE, vip BOOLEAN)",
		`INSERT INTO people VALUES
			(1, 'ada', 36, 9.5, TRUE),
			(2, 'bob', 25, 4.5, FALSE),
			(3, 'cyd', NULL, 7.25, FALSE),
			(4, 'dee', 25, NULL, TRUE)`,
		"CREATE TABLE big (id INTEGER NOT NULL, grp INTEGER, val DOUBLE, tag VARCHAR)",
		"CREATE TABLE edges (src INTEGER NOT NULL, dst INTEGER NOT NULL, w DOUBLE NOT NULL)",
		"CREATE TABLE ranks (id INTEGER NOT NULL, rank DOUBLE NOT NULL)",
	)
	rng := rand.New(rand.NewSource(20260726))
	big, err := db.Catalog().Get("big")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		grp := storage.Int64(int64(rng.Intn(37)))
		if rng.Intn(50) == 0 {
			grp = storage.Null(storage.TypeInt64)
		}
		val := storage.Float64(rng.NormFloat64() * 10)
		if rng.Intn(40) == 0 {
			val = storage.Null(storage.TypeFloat64)
		}
		if err := big.AppendRow(storage.Int64(int64(i)), grp, val,
			storage.Str(fmt.Sprintf("t%d", rng.Intn(5)))); err != nil {
			t.Fatal(err)
		}
	}
	et, err := db.Catalog().Get("edges")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := db.Catalog().Get("ranks")
	if err != nil {
		t.Fatal(err)
	}
	const nodes = 600
	for i := 0; i < 3000; i++ {
		if err := et.AppendRow(storage.Int64(int64(rng.Intn(nodes))),
			storage.Int64(int64(rng.Intn(nodes))),
			storage.Float64(0.5+rng.Float64())); err != nil {
			t.Fatal(err)
		}
	}
	for v := 0; v < nodes; v++ {
		if err := rt.AppendRow(storage.Int64(int64(v)), storage.Float64(rng.Float64())); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// featureCorpus is the query corpus: every construct the sqlfeatures
// tests cover, re-run over both the small fixture and the generated
// tables, plus graph-algorithm-shaped joins and aggregates.
var featureCorpus = []string{
	// sqlfeatures constructs over the small fixture.
	`SELECT name, CASE WHEN age IS NULL THEN 'unknown' WHEN age < 30 THEN 'young' ELSE 'adult' END AS bucket FROM people ORDER BY id`,
	`SELECT COUNT(*) FROM people WHERE name LIKE '%d%'`,
	`SELECT COUNT(*) FROM people WHERE age IN (25, 36)`,
	`SELECT COUNT(*) FROM people WHERE age NOT IN (25)`,
	`SELECT COUNT(*) FROM people WHERE score BETWEEN 5.0 AND 10.0`,
	`SELECT COUNT(*) FROM people WHERE NOT vip AND score > 5.0`,
	`SELECT CAST(score AS INTEGER) FROM people WHERE id = 3`,
	`SELECT name || '!' FROM people ORDER BY 1`,
	`SELECT COUNT(*), COUNT(age), AVG(age), MIN(score), MAX(score) FROM people`,
	`SELECT vip, age, COUNT(*) AS c FROM people GROUP BY vip, age ORDER BY 3 DESC, 2`,
	`SELECT id, age FROM people ORDER BY age, id DESC`,
	`SELECT UPPER(SUBSTR(name, 1, 2)) FROM people ORDER BY id`,
	`SELECT a.name, b.name FROM people a JOIN people b ON a.age = b.age AND a.id < b.id`,
	`SELECT 1 / 4`,
	// Scans, filters and projections over the generated table.
	`SELECT id, val * 2.0 + 1.0 FROM big WHERE val > 0.0`,
	`SELECT id, tag FROM big WHERE tag LIKE 't%' AND id % 7 = 0`,
	`SELECT DISTINCT tag FROM big ORDER BY tag`,
	`SELECT id FROM big WHERE grp IS NULL ORDER BY id`,
	`SELECT id, COALESCE(val, 0.0) FROM big ORDER BY id LIMIT 100 OFFSET 37`,
	// Aggregation: int64 fast path, NULL keys, multi-key, DISTINCT, HAVING.
	`SELECT grp, COUNT(*), SUM(val), AVG(val), MIN(val), MAX(val) FROM big GROUP BY grp`,
	`SELECT grp, tag, COUNT(*) FROM big GROUP BY grp, tag`,
	`SELECT tag, COUNT(DISTINCT grp) FROM big GROUP BY tag ORDER BY tag`,
	`SELECT grp, SUM(val) AS s FROM big GROUP BY grp HAVING COUNT(*) > 100`,
	`SELECT COUNT(*), SUM(val) FROM big`,
	// Joins: fast path (single int key), left join, multi-key, residual.
	`SELECT COUNT(*) FROM edges e JOIN ranks r ON e.src = r.id`,
	`SELECT e.dst, SUM(r.rank / e.w) AS acc FROM edges e JOIN ranks r ON e.src = r.id GROUP BY e.dst`,
	`SELECT r.id, COUNT(e.src) FROM ranks r LEFT JOIN edges e ON r.id = e.src GROUP BY r.id`,
	`SELECT COUNT(*) FROM edges a JOIN edges b ON a.dst = b.src AND a.src < b.dst`,
	`SELECT COUNT(*) FROM edges a JOIN edges b ON a.src = b.src AND a.dst = b.dst`,
	// The PageRank iteration shape: left join against a grouped subquery.
	`SELECT v.id, 0.15 / 600 + 0.85 * COALESCE(s.acc, 0.0) AS nr
		FROM ranks v LEFT JOIN (
			SELECT e.dst AS id, SUM(p.rank / d.deg) AS acc
			FROM edges e
			JOIN ranks p ON e.src = p.id
			JOIN (SELECT src, COUNT(*) AS deg FROM edges GROUP BY src) AS d ON e.src = d.src
			GROUP BY e.dst
		) AS s ON v.id = s.id`,
	// Set operations, CTEs, derived tables.
	`SELECT id FROM big WHERE id < 50 UNION ALL SELECT id FROM big WHERE id >= 3950`,
	`WITH hot AS (SELECT grp, COUNT(*) AS c FROM big GROUP BY grp)
		SELECT h.grp, h.c FROM hot h WHERE h.c > 90 ORDER BY h.c DESC, h.grp`,
	`SELECT t.tag, t.c FROM (SELECT tag, COUNT(*) AS c FROM big GROUP BY tag) AS t ORDER BY t.tag`,
}

// diffRows compares two results exactly: schema, cardinality, and
// every value (NULLs and float bits included).
func diffRows(q string, a, b *Rows) error {
	if got, want := len(a.Columns()), len(b.Columns()); got != want {
		return fmt.Errorf("%s: column count %d vs %d", q, got, want)
	}
	if a.Len() != b.Len() {
		return fmt.Errorf("%s: row count %d vs %d", q, a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		for j := 0; j < len(a.Columns()); j++ {
			av, bv := a.Value(i, j), b.Value(i, j)
			if av.Null != bv.Null {
				return fmt.Errorf("%s: row %d col %d: NULL mismatch (%v vs %v)", q, i, j, av, bv)
			}
			if !av.Null && storage.Compare(av, bv) != 0 {
				return fmt.Errorf("%s: row %d col %d: %v vs %v", q, i, j, av, bv)
			}
		}
	}
	return nil
}

func TestParallelismInvariance(t *testing.T) {
	oldMorsels := exec.MinMorselRows
	exec.MinMorselRows = 64
	defer func() { exec.MinMorselRows = oldMorsels }()

	db := corpusDB(t)
	for _, q := range featureCorpus {
		db.SetParallelism(1)
		serial, err := db.Query(q)
		if err != nil {
			t.Fatalf("serial %s: %v", q, err)
		}
		for _, w := range []int{2, 8} {
			db.SetParallelism(w)
			parallel, err := db.Query(q)
			if err != nil {
				t.Fatalf("workers=%d %s: %v", w, q, err)
			}
			if err := diffRows(q, parallel, serial); err != nil {
				t.Errorf("workers=%d: %v", w, err)
			}
		}
	}
}

// TestParallelPlansActuallyParallelize guards the rewrite itself: with
// a lowered morsel threshold, a filtered scan must plan as a Gather,
// not silently stay serial.
func TestParallelPlansActuallyParallelize(t *testing.T) {
	oldMorsels := exec.MinMorselRows
	exec.MinMorselRows = 64
	defer func() { exec.MinMorselRows = oldMorsels }()

	db := corpusDB(t)
	db.SetParallelism(4)
	st, err := sql.Parse("SELECT id, val FROM big WHERE val > 0.0")
	if err != nil {
		t.Fatal(err)
	}
	op, err := db.planner.PlanSelect(st.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op.(*exec.Gather); !ok {
		t.Fatalf("plan root = %T, want *exec.Gather", op)
	}
}

// TestQueryContextCancellation asserts cancellation lands inside a
// statement: a context cancelled mid-query aborts the scan.
func TestQueryContextCancellation(t *testing.T) {
	db := corpusDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, "SELECT COUNT(*) FROM big"); !errors.Is(err, context.Canceled) {
		t.Errorf("QueryContext after cancel: err = %v, want context.Canceled", err)
	}
	if _, err := db.ExecContext(ctx, "DELETE FROM big WHERE id = 0"); !errors.Is(err, context.Canceled) {
		t.Errorf("ExecContext after cancel: err = %v, want context.Canceled", err)
	}
	// A deadline that expires mid-statement must abort the cross join
	// (600×3000 rows probed row-at-a-time) long before completion. The
	// join build must not be starved first by a VXDB_WORK_MEM seed — the
	// test is about cancellation, not memory accounting.
	db.SetWorkMem(0)
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	start := time.Now()
	_, err := db.QueryContext(ctx2, "SELECT COUNT(*) FROM edges a, big b WHERE a.w < b.val")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline query: err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v; should abort mid-statement", elapsed)
	}
}
