// Package temporal implements the dynamic-graph analyses of §3.3:
// as-of snapshots over the edge creation timestamps, time-series runs
// of a graph algorithm across snapshots, continuous re-analysis after
// mutations, and diffing of algorithm results across versions ("which
// nodes' PageRanks changed over the last year", "which node pairs came
// closer").
package temporal

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
)

// Snapshot materializes the graph as of the given timestamp: edges with
// created <= asOf, vertices as currently present. The snapshot is a
// full graph (vertex/edge/message tables) named <name>.
func Snapshot(g *core.Graph, name string, asOf int64) (*core.Graph, error) {
	db := g.DB
	if db.Catalog().Has(name + "_vertex") {
		if err := core.DropGraph(db, name); err != nil {
			return nil, err
		}
	}
	snap, err := core.CreateGraph(db, name)
	if err != nil {
		return nil, err
	}
	if _, err := db.Exec(fmt.Sprintf(
		"INSERT INTO %s SELECT src, dst, weight, etype, created FROM %s WHERE created <= %d",
		snap.EdgeTable(), g.EdgeTable(), asOf)); err != nil {
		return nil, err
	}
	if _, err := db.Exec(fmt.Sprintf(
		"INSERT INTO %s SELECT id, value, FALSE FROM %s",
		snap.VertexTable(), g.VertexTable())); err != nil {
		return nil, err
	}
	return snap, nil
}

// Series is one time-series result: per snapshot timestamp, the scores
// computed by the algorithm.
type Series struct {
	Times  []int64
	Scores []map[int64]float64
}

// TimeSeries runs algo on a snapshot of the graph at every timestamp
// (the demo's "time series run" mode). Snapshots are dropped afterward.
func TimeSeries(ctx context.Context, g *core.Graph, times []int64,
	algo func(context.Context, *core.Graph) (map[int64]float64, error)) (*Series, error) {

	out := &Series{}
	for i, ts := range times {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		name := fmt.Sprintf("%s_snap%d", g.Name, i)
		snap, err := Snapshot(g, name, ts)
		if err != nil {
			return nil, err
		}
		scores, err := algo(ctx, snap)
		if err != nil {
			_ = core.DropGraph(g.DB, name)
			return nil, err
		}
		if err := core.DropGraph(g.DB, name); err != nil {
			return nil, err
		}
		out.Times = append(out.Times, ts)
		out.Scores = append(out.Scores, scores)
	}
	return out, nil
}

// Delta is one vertex's score change between two runs.
type Delta struct {
	ID       int64
	Old, New float64
}

// Diff returns per-vertex changes between two score maps, largest
// absolute change first — "the nodes whose PageRanks have changed over
// the last one year" (§3.3). Vertices absent from a map count as 0.
func Diff(old, new map[int64]float64) []Delta {
	ids := make(map[int64]bool, len(old)+len(new))
	for id := range old {
		ids[id] = true
	}
	for id := range new {
		ids[id] = true
	}
	out := make([]Delta, 0, len(ids))
	for id := range ids {
		d := Delta{ID: id, Old: old[id], New: new[id]}
		if d.Old != d.New {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := abs(out[i].New-out[i].Old), abs(out[j].New-out[j].Old)
		if ai != aj {
			return ai > aj
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// Closer returns vertex pairs whose distance shrank by at least
// threshold between two SSSP result maps — "node-pairs whose shortest
// paths have decreased" (§3.3). The source is implicit in the maps.
func Closer(oldDist, newDist map[int64]float64, threshold float64) []Delta {
	var out []Delta
	for id, nd := range newDist {
		od, ok := oldDist[id]
		if !ok {
			continue
		}
		if od-nd >= threshold {
			out = append(out, Delta{ID: id, Old: od, New: nd})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := out[i].Old-out[i].New, out[j].Old-out[j].New
		if di != dj {
			return di > dj
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Monitor re-runs an analysis after every mutation batch — the demo's
// "continuous run" mode (§4.2.3).
type Monitor struct {
	Graph *core.Graph
	// Algo computes the monitored scores.
	Algo func(context.Context, *core.Graph) (map[int64]float64, error)

	last map[int64]float64
}

// Run computes the current scores and remembers them.
func (m *Monitor) Run(ctx context.Context) (map[int64]float64, error) {
	scores, err := m.Algo(ctx, m.Graph)
	if err != nil {
		return nil, err
	}
	m.last = scores
	return scores, nil
}

// ApplyAndRerun executes mutation statements (SQL against the graph's
// tables) and re-runs the analysis, returning the score deltas.
func (m *Monitor) ApplyAndRerun(ctx context.Context, mutations ...string) ([]Delta, error) {
	if m.last == nil {
		if _, err := m.Run(ctx); err != nil {
			return nil, err
		}
	}
	prev := m.last
	for _, stmt := range mutations {
		if _, err := m.Graph.DB.Exec(stmt); err != nil {
			return nil, fmt.Errorf("temporal: mutation %q: %w", stmt, err)
		}
	}
	cur, err := m.Run(ctx)
	if err != nil {
		return nil, err
	}
	return Diff(prev, cur), nil
}
