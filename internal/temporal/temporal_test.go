package temporal

import (
	"context"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/engine"
)

// timedGraph: edges appear at t=100 (1↔2), t=200 (2↔3), t=300 (3↔4).
func timedGraph(t *testing.T) *core.Graph {
	t.Helper()
	db := engine.New()
	g, err := core.CreateGraph(db, "tg")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(a, b int64, ts int64) []core.Edge {
		return []core.Edge{
			{Src: a, Dst: b, Weight: 1, Created: ts},
			{Src: b, Dst: a, Weight: 1, Created: ts},
		}
	}
	var edges []core.Edge
	edges = append(edges, mk(1, 2, 100)...)
	edges = append(edges, mk(2, 3, 200)...)
	edges = append(edges, mk(3, 4, 300)...)
	if err := g.BulkLoad(nil, edges); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSnapshotFiltersEdgesByTime(t *testing.T) {
	g := timedGraph(t)
	snap, err := Snapshot(g, "asof150", 150)
	if err != nil {
		t.Fatal(err)
	}
	ne, _ := snap.NumEdges()
	if ne != 2 {
		t.Errorf("edges as of 150 = %d, want 2", ne)
	}
	nv, _ := snap.NumVertices()
	if nv != 4 {
		t.Errorf("snapshot keeps all vertices, got %d", nv)
	}
	// Re-snapshotting under the same name replaces.
	snap2, err := Snapshot(g, "asof150", 250)
	if err != nil {
		t.Fatal(err)
	}
	ne2, _ := snap2.NumEdges()
	if ne2 != 4 {
		t.Errorf("edges as of 250 = %d, want 4", ne2)
	}
}

func ssspFrom1(ctx context.Context, g *core.Graph) (map[int64]float64, error) {
	d, _, err := algorithms.RunSSSP(ctx, g, 1, true, core.Options{})
	return d, err
}

func TestTimeSeriesDistancesShrink(t *testing.T) {
	g := timedGraph(t)
	series, err := TimeSeries(context.Background(), g, []int64{150, 350}, ssspFrom1)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Scores) != 2 {
		t.Fatalf("series length = %d", len(series.Scores))
	}
	early, late := series.Scores[0], series.Scores[1]
	if !isInf(early[4]) {
		t.Errorf("at t=150 vertex 4 should be unreachable, got %v", early[4])
	}
	if late[4] != 3 {
		t.Errorf("at t=350 dist(4) = %v, want 3", late[4])
	}
	// Snapshots cleaned up.
	for _, n := range g.DB.Catalog().Names() {
		if len(n) > 7 && n[:7] == "tg_snap" {
			t.Errorf("snapshot %s not dropped", n)
		}
	}
}

func isInf(f float64) bool { return f > 1e17 }

func TestDiffOrdersByMagnitude(t *testing.T) {
	old := map[int64]float64{1: 1.0, 2: 2.0, 3: 5.0}
	new := map[int64]float64{1: 1.1, 2: 4.0, 3: 5.0, 4: 0.5}
	d := Diff(old, new)
	if len(d) != 3 {
		t.Fatalf("deltas = %v", d)
	}
	if d[0].ID != 2 { // |4-2| = 2 is the biggest change
		t.Errorf("largest delta first: %v", d)
	}
	for _, x := range d {
		if x.ID == 3 {
			t.Error("unchanged vertex must not appear")
		}
	}
}

func TestCloser(t *testing.T) {
	old := map[int64]float64{2: 5, 3: 4, 4: 9}
	new := map[int64]float64{2: 1, 3: 4, 4: 7}
	got := Closer(old, new, 2)
	if len(got) != 2 || got[0].ID != 2 || got[1].ID != 4 {
		t.Errorf("closer = %v", got)
	}
	if len(Closer(old, new, 5)) != 0 {
		t.Error("threshold 5 should exclude all")
	}
}

func TestMonitorContinuousMode(t *testing.T) {
	g := timedGraph(t)
	m := &Monitor{Graph: g, Algo: ssspFrom1}
	base, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !isInf(base[5]) && base[5] != 0 {
		t.Logf("vertex 5 not present yet: %v", base[5])
	}
	// Mutate: connect 4→5 both ways (new vertex 5 via direct SQL).
	deltas, err := m.ApplyAndRerun(context.Background(),
		"INSERT INTO tg_vertex VALUES (5, '', FALSE)",
		"INSERT INTO tg_edge VALUES (4, 5, 1.0, 'friend', 400), (5, 4, 1.0, 'friend', 400)",
	)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range deltas {
		if d.ID == 5 && d.New == 4 {
			found = true
		}
	}
	if !found {
		t.Errorf("mutation should bring vertex 5 to distance 4: %v", deltas)
	}
}
