package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// Concurrency hammers: every registry surface is documented as safe for
// concurrent use, and the engine leans on that (statements observe
// latencies while SHOW STATS snapshots the registry and vx$ scans read
// gauges). These tests put that contract under the race detector.

func TestHistogramConcurrentObserveQuantile(t *testing.T) {
	h := &Histogram{}
	const writers, readers, perG = 8, 4, 2000

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(seed*perG+i+1) * time.Microsecond)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				for _, q := range []float64{0.5, 0.95, 0.99} {
					if v := h.Quantile(q); v < 0 {
						t.Errorf("Quantile(%v) = %d", q, v)
						return
					}
				}
				_ = h.Count()
			}
		}()
	}
	wg.Wait()

	if got := h.Count(); got != writers*perG {
		t.Fatalf("count = %d, want %d", got, writers*perG)
	}
	if h.Quantile(0.99) <= 0 {
		t.Fatal("p99 is zero after observations")
	}
}

func TestRegistryConcurrentSnapshot(t *testing.T) {
	r := New()
	const workers, perG = 6, 1000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Mix registrations (new and re-fetched names) with writes
			// while other goroutines snapshot.
			c := r.Counter(fmt.Sprintf("c.%d", id%3))
			h := r.Histogram(fmt.Sprintf("h.%d", id%3))
			r.Gauge(fmt.Sprintf("g.%d", id), func() int64 { return int64(id) })
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(time.Duration(i+1) * time.Microsecond)
				if i%64 == 0 {
					for _, st := range r.Snapshot() {
						if st.Name == "" {
							t.Error("snapshot produced an unnamed stat")
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var total int64
	for _, st := range r.Snapshot() {
		if st.Name == "c.0" || st.Name == "c.1" || st.Name == "c.2" {
			total += st.Value
		}
	}
	if total != workers*perG {
		t.Fatalf("counter sum = %d, want %d", total, workers*perG)
	}
}
