// Package obs is the engine-wide metrics registry: named counters,
// callback gauges, and fixed-bucket latency histograms that every
// subsystem (engine, plan cache, WAL, MVCC, scheduler, server) feeds.
// The registry is the single surface behind `SHOW STATS`, the expvar
// debug endpoint, and the slow-query log's context — one place to look
// when asking where a server's time goes.
//
// Counters and histograms are lock-free on the hot path (atomics);
// gauges are pull-only closures evaluated at snapshot time, so a
// subsystem exposes live state (sessions, queue depth, live readers)
// without pushing updates. Snapshot output is sorted by name, so
// `SHOW STATS` is deterministic row-for-row.
package obs

import (
	"expvar"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// histBounds are the histogram bucket upper bounds in microseconds:
// a coarse log scale from 50µs to 10s, wide enough for statement
// latencies without per-observation allocation. The last bucket is
// unbounded.
var histBounds = [numHistBounds]int64{
	50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000, 2_500_000, 10_000_000,
}

const numHistBounds = 16

// Histogram is a fixed-bucket latency histogram. Quantile estimates
// report the upper bound of the bucket holding the requested rank —
// coarse, allocation-free, and monotone.
type Histogram struct {
	counts [numHistBounds + 1]atomic.Uint64
	total  atomic.Uint64
	sumUS  atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	i := 0
	for i < len(histBounds) && us > histBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sumUS.Add(us)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Quantile returns the q-quantile estimate in microseconds (the upper
// bound of the covering bucket; the overflow bucket reports the sum
// bound 10s). q outside (0,1] and an empty histogram report 0.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.total.Load()
	if n == 0 || q <= 0 || q > 1 {
		return 0
	}
	rank := uint64(q * float64(n))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			if i < len(histBounds) {
				return histBounds[i]
			}
			return histBounds[len(histBounds)-1]
		}
	}
	return histBounds[len(histBounds)-1]
}

// Stat is one snapshot row.
type Stat struct {
	Name  string
	Value int64
}

// Registry holds named metrics. The zero value is not usable; call New.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]func() int64
	hists    map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Safe for concurrent callers; the same name always yields
// the same counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge registers (or replaces) a pull gauge: fn is evaluated at every
// snapshot. fn must be safe to call from any goroutine.
func (r *Registry) Gauge(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = fn
}

// Histogram returns the histogram registered under name, creating it
// on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot evaluates every metric and returns the rows sorted by name.
// Histograms expand to .count, .p50, .p95 and .p99 (microseconds).
func (r *Registry) Snapshot() []Stat {
	r.mu.Lock()
	out := make([]Stat, 0, len(r.counters)+len(r.gauges)+4*len(r.hists))
	for name, c := range r.counters {
		out = append(out, Stat{name, int64(c.Load())})
	}
	gauges := make(map[string]func() int64, len(r.gauges))
	for name, fn := range r.gauges {
		gauges[name] = fn
	}
	for name, h := range r.hists {
		out = append(out,
			Stat{name + ".count", int64(h.Count())},
			Stat{name + ".p50_us", h.Quantile(0.50)},
			Stat{name + ".p95_us", h.Quantile(0.95)},
			Stat{name + ".p99_us", h.Quantile(0.99)},
		)
	}
	r.mu.Unlock()
	// Gauges run outside the registry lock: they may read subsystem
	// locks of their own, and nothing stops them registering metrics.
	for name, fn := range gauges {
		out = append(out, Stat{name, fn()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PublishExpvar exports the registry snapshot as one expvar map under
// the given top-level name (the `vxserve -debug-addr` endpoint).
// Publishing the same name twice is a no-op (expvar panics on
// duplicates; restart-in-process tests must not).
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() interface{} {
		snap := r.Snapshot()
		m := make(map[string]int64, len(snap))
		for _, s := range snap {
			m[s.Name] = s.Value
		}
		return m
	}))
}
