package obs

import (
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := New()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if c2 := r.Counter("a.count"); c2 != c {
		t.Fatal("same name must return the same counter")
	}
	v := int64(7)
	r.Gauge("b.gauge", func() int64 { return v })

	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot rows = %d, want 2", len(snap))
	}
	// Sorted by name: a.count before b.gauge.
	if snap[0].Name != "a.count" || snap[0].Value != 5 {
		t.Errorf("snap[0] = %+v", snap[0])
	}
	if snap[1].Name != "b.gauge" || snap[1].Value != 7 {
		t.Errorf("snap[1] = %+v", snap[1])
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	for i := 0; i < 90; i++ {
		h.Observe(80 * time.Microsecond) // bucket <=100µs
	}
	for i := 0; i < 10; i++ {
		h.Observe(40 * time.Millisecond) // bucket <=50ms
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Quantile(0.50); got != 100 {
		t.Errorf("p50 = %dµs, want 100", got)
	}
	if got := h.Quantile(0.99); got != 50_000 {
		t.Errorf("p99 = %dµs, want 50000", got)
	}
	snap := r.Snapshot()
	want := []string{"lat.count", "lat.p50_us", "lat.p95_us", "lat.p99_us"}
	if len(snap) != len(want) {
		t.Fatalf("snapshot rows = %d", len(snap))
	}
	for i, n := range want {
		if snap[i].Name != n {
			t.Errorf("snap[%d].Name = %s, want %s", i, snap[i].Name, n)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram must report 0")
	}
}
