package expr

import (
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

func testRow(vals ...storage.Value) Row {
	cols := make([]storage.ColumnDef, len(vals))
	for i, v := range vals {
		cols[i] = storage.Col("c", v.Type)
	}
	b := storage.NewBatch(storage.NewSchema(cols...))
	if err := b.AppendRow(vals...); err != nil {
		panic(err)
	}
	return Row{Batch: b, Idx: 0}
}

func lit(v storage.Value) Expr { return &Literal{Val: v} }

func mustBinary(t *testing.T, op BinOp, l, r Expr) Expr {
	t.Helper()
	b, err := NewBinary(op, l, r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func evalOne(t *testing.T, e Expr) storage.Value {
	t.Helper()
	v, err := e.Eval(testRow())
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		op   BinOp
		l, r storage.Value
		want storage.Value
	}{
		{OpAdd, storage.Int64(2), storage.Int64(3), storage.Int64(5)},
		{OpSub, storage.Int64(2), storage.Int64(3), storage.Int64(-1)},
		{OpMul, storage.Int64(4), storage.Int64(3), storage.Int64(12)},
		{OpAdd, storage.Float64(1.5), storage.Int64(1), storage.Float64(2.5)},
		{OpDiv, storage.Int64(1), storage.Int64(2), storage.Float64(0.5)},
		{OpMod, storage.Int64(7), storage.Int64(3), storage.Int64(1)},
		{OpConcat, storage.Str("a"), storage.Str("b"), storage.Str("ab")},
	}
	for _, c := range cases {
		got := evalOne(t, mustBinary(t, c.op, lit(c.l), lit(c.r)))
		if !storage.Equal(got, c.want) {
			t.Errorf("%v %v %v = %v, want %v", c.l, c.op, c.r, got, c.want)
		}
	}
}

func TestDivisionByZeroIsNull(t *testing.T) {
	got := evalOne(t, mustBinary(t, OpDiv, lit(storage.Int64(1)), lit(storage.Int64(0))))
	if !got.Null {
		t.Errorf("1/0 = %v, want NULL", got)
	}
	got = evalOne(t, mustBinary(t, OpMod, lit(storage.Int64(1)), lit(storage.Int64(0))))
	if !got.Null {
		t.Errorf("1%%0 = %v, want NULL", got)
	}
}

func TestComparisons(t *testing.T) {
	lt := evalOne(t, mustBinary(t, OpLt, lit(storage.Int64(1)), lit(storage.Int64(2))))
	if !lt.IsTrue() {
		t.Error("1 < 2 should be true")
	}
	eq := evalOne(t, mustBinary(t, OpEq, lit(storage.Str("x")), lit(storage.Str("x"))))
	if !eq.IsTrue() {
		t.Error("'x' = 'x' should be true")
	}
	mixed := evalOne(t, mustBinary(t, OpGe, lit(storage.Float64(2.0)), lit(storage.Int64(2))))
	if !mixed.IsTrue() {
		t.Error("2.0 >= 2 should be true")
	}
}

func TestNullPropagation(t *testing.T) {
	n := lit(storage.Null(storage.TypeInt64))
	add := evalOne(t, mustBinary(t, OpAdd, n, lit(storage.Int64(1))))
	if !add.Null {
		t.Error("NULL + 1 should be NULL")
	}
	cmp := evalOne(t, mustBinary(t, OpEq, n, n))
	if !cmp.Null {
		t.Error("NULL = NULL should be NULL (not true)")
	}
}

func TestKleeneLogic(t *testing.T) {
	tr := lit(storage.Bool(true))
	fa := lit(storage.Bool(false))
	nu := lit(storage.Null(storage.TypeBool))
	cases := []struct {
		op       BinOp
		l, r     Expr
		wantNull bool
		want     bool
	}{
		{OpAnd, fa, nu, false, false}, // FALSE AND NULL = FALSE
		{OpAnd, nu, fa, false, false},
		{OpAnd, tr, nu, true, false}, // TRUE AND NULL = NULL
		{OpOr, tr, nu, false, true},  // TRUE OR NULL = TRUE
		{OpOr, nu, tr, false, true},
		{OpOr, fa, nu, true, false}, // FALSE OR NULL = NULL
		{OpAnd, tr, tr, false, true},
		{OpOr, fa, fa, false, false},
	}
	for _, c := range cases {
		got := evalOne(t, mustBinary(t, c.op, c.l, c.r))
		if got.Null != c.wantNull || (!got.Null && got.Bool() != c.want) {
			t.Errorf("%v %v %v = %v", c.l, c.op, c.r, got)
		}
	}
}

func TestBinaryTypeErrors(t *testing.T) {
	if _, err := NewBinary(OpAdd, lit(storage.Str("a")), lit(storage.Int64(1))); err == nil {
		t.Error("string + int should fail to bind")
	}
	if _, err := NewBinary(OpAnd, lit(storage.Int64(1)), lit(storage.Bool(true))); err == nil {
		t.Error("int AND bool should fail to bind")
	}
	if _, err := NewBinary(OpEq, lit(storage.Str("a")), lit(storage.Int64(1))); err == nil {
		t.Error("string = int should fail to bind")
	}
}

func TestColumnRefAndCast(t *testing.T) {
	r := testRow(storage.Int64(41), storage.Str("7"))
	cr := &ColumnRef{Name: "a", Index: 0, Typ: storage.TypeInt64}
	v, err := cr.Eval(r)
	if err != nil || v.I != 41 {
		t.Fatalf("colref = %v, %v", v, err)
	}
	cast := &Cast{Input: &ColumnRef{Name: "b", Index: 1, Typ: storage.TypeString}, To: storage.TypeInt64}
	v, err = cast.Eval(r)
	if err != nil || v.I != 7 {
		t.Fatalf("cast = %v, %v", v, err)
	}
}

func TestIsNullAndInList(t *testing.T) {
	n := lit(storage.Null(storage.TypeInt64))
	if !evalOne(t, &IsNull{Input: n}).IsTrue() {
		t.Error("NULL IS NULL should be true")
	}
	if evalOne(t, &IsNull{Input: lit(storage.Int64(1))}).IsTrue() {
		t.Error("1 IS NULL should be false")
	}
	if !evalOne(t, &IsNull{Input: lit(storage.Int64(1)), Negate: true}).IsTrue() {
		t.Error("1 IS NOT NULL should be true")
	}
	in := &InList{Input: lit(storage.Int64(2)), List: []Expr{lit(storage.Int64(1)), lit(storage.Int64(2))}}
	if !evalOne(t, in).IsTrue() {
		t.Error("2 IN (1,2) should be true")
	}
	notIn := &InList{Input: lit(storage.Int64(9)), List: []Expr{lit(storage.Int64(1)), n}}
	if v := evalOne(t, notIn); !v.Null {
		t.Errorf("9 IN (1, NULL) = %v, want NULL", v)
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"family", "fam%", true},
		{"family", "%ily", true},
		{"family", "f_mily", true},
		{"family", "friend", false},
		{"", "%", true},
		{"abc", "%b%", true},
		{"abc", "a%c%", true},
		{"abc", "_", false},
		{"a", "_", true},
	}
	for _, c := range cases {
		got := evalOne(t, &Like{Input: lit(storage.Str(c.s)), Pattern: lit(storage.Str(c.p))})
		if got.Bool() != c.want {
			t.Errorf("%q LIKE %q = %v, want %v", c.s, c.p, got.Bool(), c.want)
		}
	}
}

func TestCaseExpr(t *testing.T) {
	c := &Case{
		Whens: []When{
			{Cond: lit(storage.Bool(false)), Then: lit(storage.Int64(1))},
			{Cond: lit(storage.Bool(true)), Then: lit(storage.Int64(2))},
		},
		Else: lit(storage.Int64(3)),
		Typ:  storage.TypeInt64,
	}
	if v := evalOne(t, c); v.I != 2 {
		t.Errorf("case = %v, want 2", v)
	}
	noMatch := &Case{Whens: []When{{Cond: lit(storage.Bool(false)), Then: lit(storage.Int64(1))}}, Typ: storage.TypeInt64}
	if v := evalOne(t, noMatch); !v.Null {
		t.Errorf("case without else = %v, want NULL", v)
	}
}

func TestUnary(t *testing.T) {
	neg, err := NewNeg(lit(storage.Int64(5)))
	if err != nil {
		t.Fatal(err)
	}
	if v := evalOne(t, neg); v.I != -5 {
		t.Errorf("-5 = %v", v)
	}
	not, err := NewNot(lit(storage.Bool(true)))
	if err != nil {
		t.Fatal(err)
	}
	if v := evalOne(t, not); v.Bool() {
		t.Error("NOT true should be false")
	}
	if _, err := NewNot(lit(storage.Int64(1))); err == nil {
		t.Error("NOT int should fail")
	}
	if _, err := NewNeg(lit(storage.Str("x"))); err == nil {
		t.Error("-string should fail")
	}
}

func TestAdditionCommutative(t *testing.T) {
	f := func(a, b int32) bool {
		l := mustBinaryQuick(OpAdd, lit(storage.Int64(int64(a))), lit(storage.Int64(int64(b))))
		r := mustBinaryQuick(OpAdd, lit(storage.Int64(int64(b))), lit(storage.Int64(int64(a))))
		lv, _ := l.Eval(Row{})
		rv, _ := r.Eval(Row{})
		return lv.I == rv.I
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mustBinaryQuick(op BinOp, l, r Expr) Expr {
	b, err := NewBinary(op, l, r)
	if err != nil {
		panic(err)
	}
	return b
}
