package expr

import (
	"fmt"

	"repro/internal/storage"
)

// AggKind identifies an aggregate function.
type AggKind uint8

// Aggregate kinds.
const (
	AggCount AggKind = iota // COUNT(expr) — non-null rows
	AggCountStar
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String renders the aggregate name.
func (k AggKind) String() string {
	switch k {
	case AggCount, AggCountStar:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggKind(%d)", uint8(k))
	}
}

// AggKindByName resolves an aggregate by SQL name.
func AggKindByName(name string) (AggKind, bool) {
	switch {
	case equalFold(name, "count"):
		return AggCount, true
	case equalFold(name, "sum"):
		return AggSum, true
	case equalFold(name, "avg"):
		return AggAvg, true
	case equalFold(name, "min"):
		return AggMin, true
	case equalFold(name, "max"):
		return AggMax, true
	}
	return 0, false
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Aggregate is a bound aggregate over an input expression (nil for
// COUNT(*)). Distinct applies COUNT(DISTINCT x) semantics.
type Aggregate struct {
	Kind     AggKind
	Input    Expr // nil for COUNT(*)
	Distinct bool
}

// ResultType returns the output type of the aggregate.
func (a *Aggregate) ResultType() (storage.Type, error) {
	switch a.Kind {
	case AggCount, AggCountStar:
		return storage.TypeInt64, nil
	case AggAvg:
		return storage.TypeFloat64, nil
	case AggSum:
		if a.Input == nil {
			return 0, fmt.Errorf("expr: SUM requires an argument")
		}
		if !a.Input.Type().Numeric() {
			return 0, fmt.Errorf("expr: SUM over non-numeric %s", a.Input.Type())
		}
		return a.Input.Type(), nil
	case AggMin, AggMax:
		if a.Input == nil {
			return 0, fmt.Errorf("expr: %s requires an argument", a.Kind)
		}
		return a.Input.Type(), nil
	}
	return 0, fmt.Errorf("expr: unknown aggregate")
}

// String renders the aggregate as SQL.
func (a *Aggregate) String() string {
	if a.Kind == AggCountStar {
		return "COUNT(*)"
	}
	d := ""
	if a.Distinct {
		d = "DISTINCT "
	}
	return fmt.Sprintf("%s(%s%s)", a.Kind, d, a.Input)
}

// Accumulator is the running state of one aggregate for one group.
type Accumulator struct {
	kind     AggKind
	typ      storage.Type
	count    int64
	sumI     int64
	sumF     float64
	best     storage.Value
	hasBest  bool
	distinct map[string]struct{} // nil unless DISTINCT
}

// NewAccumulator returns a fresh accumulator for the aggregate.
func (a *Aggregate) NewAccumulator() *Accumulator {
	t := storage.TypeInt64
	if a.Input != nil {
		t = a.Input.Type()
	}
	acc := &Accumulator{kind: a.Kind, typ: t}
	if a.Distinct {
		acc.distinct = make(map[string]struct{})
	}
	return acc
}

// Add folds one row's value into the accumulator. For COUNT(*) pass any
// value; it is ignored.
func (c *Accumulator) Add(v storage.Value) {
	if c.kind == AggCountStar {
		c.count++
		return
	}
	if v.Null {
		return // SQL aggregates skip NULLs
	}
	if c.distinct != nil {
		key := v.Type.String() + ":" + v.String()
		if _, dup := c.distinct[key]; dup {
			return
		}
		c.distinct[key] = struct{}{}
	}
	switch c.kind {
	case AggCount:
		c.count++
	case AggSum, AggAvg:
		c.count++
		if v.Type == storage.TypeFloat64 {
			c.sumF += v.F
		} else {
			c.sumI += v.I
			c.sumF += float64(v.I)
		}
	case AggMin:
		if !c.hasBest || storage.Compare(v, c.best) < 0 {
			c.best, c.hasBest = v, true
		}
	case AggMax:
		if !c.hasBest || storage.Compare(v, c.best) > 0 {
			c.best, c.hasBest = v, true
		}
	}
}

// Result returns the final aggregate value. Empty groups yield NULL for
// SUM/AVG/MIN/MAX and 0 for COUNT, per SQL.
func (c *Accumulator) Result() storage.Value {
	switch c.kind {
	case AggCount, AggCountStar:
		return storage.Int64(c.count)
	case AggSum:
		if c.count == 0 {
			return storage.Null(c.typ)
		}
		if c.typ == storage.TypeFloat64 {
			return storage.Float64(c.sumF)
		}
		return storage.Int64(c.sumI)
	case AggAvg:
		if c.count == 0 {
			return storage.Null(storage.TypeFloat64)
		}
		return storage.Float64(c.sumF / float64(c.count))
	case AggMin, AggMax:
		if !c.hasBest {
			return storage.Null(c.typ)
		}
		return c.best
	}
	return storage.Value{}
}
