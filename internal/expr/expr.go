// Package expr implements bound (schema-resolved) expression trees with
// SQL three-valued-logic evaluation, plus the scalar-function registry
// that backs Vertexica's user-defined functions (UDFs).
//
// Expressions are bound to column indexes at plan time and evaluated
// row-at-a-time against record batches at execution time.
package expr

import (
	"fmt"
	"strings"

	"repro/internal/storage"
)

// Row is a cursor over one row of a batch, the evaluation context for
// bound expressions.
type Row struct {
	Batch *storage.Batch
	Idx   int
}

// Col returns the value of column i in the current row.
func (r Row) Col(i int) storage.Value { return r.Batch.Cols[i].Value(r.Idx) }

// Expr is a bound, type-checked expression.
type Expr interface {
	// Eval evaluates the expression for the given row.
	Eval(r Row) (storage.Value, error)
	// Type returns the static result type.
	Type() storage.Type
	// String renders the expression roughly as SQL (for EXPLAIN and
	// error messages).
	String() string
}

// ColumnRef reads column Index of the input row.
type ColumnRef struct {
	Name  string
	Index int
	Typ   storage.Type
}

// Eval implements Expr.
func (c *ColumnRef) Eval(r Row) (storage.Value, error) { return r.Col(c.Index), nil }

// Type implements Expr.
func (c *ColumnRef) Type() storage.Type { return c.Typ }

// String implements Expr.
func (c *ColumnRef) String() string { return c.Name }

// Literal is a constant value.
type Literal struct {
	Val storage.Value
}

// Eval implements Expr.
func (l *Literal) Eval(Row) (storage.Value, error) { return l.Val, nil }

// Type implements Expr.
func (l *Literal) Type() storage.Type { return l.Val.Type }

// String implements Expr.
func (l *Literal) String() string {
	if l.Val.Type == storage.TypeString && !l.Val.Null {
		return "'" + l.Val.S + "'"
	}
	return l.Val.String()
}

// Cast converts its input to a target type with SQL CAST semantics.
type Cast struct {
	Input Expr
	To    storage.Type
}

// Eval implements Expr.
func (c *Cast) Eval(r Row) (storage.Value, error) {
	v, err := c.Input.Eval(r)
	if err != nil {
		return storage.Value{}, err
	}
	return storage.Coerce(v, c.To)
}

// Type implements Expr.
func (c *Cast) Type() storage.Type { return c.To }

// String implements Expr.
func (c *Cast) String() string {
	return fmt.Sprintf("CAST(%s AS %s)", c.Input, c.To)
}

// IsNull implements `x IS NULL` and `x IS NOT NULL`.
type IsNull struct {
	Input  Expr
	Negate bool
}

// Eval implements Expr.
func (n *IsNull) Eval(r Row) (storage.Value, error) {
	v, err := n.Input.Eval(r)
	if err != nil {
		return storage.Value{}, err
	}
	return storage.Bool(v.Null != n.Negate), nil
}

// Type implements Expr.
func (n *IsNull) Type() storage.Type { return storage.TypeBool }

// String implements Expr.
func (n *IsNull) String() string {
	if n.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", n.Input)
	}
	return fmt.Sprintf("(%s IS NULL)", n.Input)
}

// InList implements `x IN (a, b, ...)` and its negation.
type InList struct {
	Input  Expr
	List   []Expr
	Negate bool
}

// Eval implements Expr. NULL input yields NULL, per SQL.
func (in *InList) Eval(r Row) (storage.Value, error) {
	v, err := in.Input.Eval(r)
	if err != nil {
		return storage.Value{}, err
	}
	if v.Null {
		return storage.Null(storage.TypeBool), nil
	}
	sawNull := false
	for _, e := range in.List {
		ev, err := e.Eval(r)
		if err != nil {
			return storage.Value{}, err
		}
		if ev.Null {
			sawNull = true
			continue
		}
		if storage.Compare(v, ev) == 0 {
			return storage.Bool(!in.Negate), nil
		}
	}
	if sawNull {
		return storage.Null(storage.TypeBool), nil
	}
	return storage.Bool(in.Negate), nil
}

// Type implements Expr.
func (in *InList) Type() storage.Type { return storage.TypeBool }

// String implements Expr.
func (in *InList) String() string {
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.String()
	}
	op := "IN"
	if in.Negate {
		op = "NOT IN"
	}
	return fmt.Sprintf("(%s %s (%s))", in.Input, op, strings.Join(parts, ", "))
}

// Like implements `x LIKE pattern` with % and _ wildcards.
type Like struct {
	Input   Expr
	Pattern Expr
	Negate  bool
}

// Eval implements Expr.
func (l *Like) Eval(r Row) (storage.Value, error) {
	v, err := l.Input.Eval(r)
	if err != nil {
		return storage.Value{}, err
	}
	p, err := l.Pattern.Eval(r)
	if err != nil {
		return storage.Value{}, err
	}
	if v.Null || p.Null {
		return storage.Null(storage.TypeBool), nil
	}
	m := likeMatch(v.S, p.S)
	return storage.Bool(m != l.Negate), nil
}

// Type implements Expr.
func (l *Like) Type() storage.Type { return storage.TypeBool }

// String implements Expr.
func (l *Like) String() string {
	op := "LIKE"
	if l.Negate {
		op = "NOT LIKE"
	}
	return fmt.Sprintf("(%s %s %s)", l.Input, op, l.Pattern)
}

// likeMatch matches s against a SQL LIKE pattern (% = any run,
// _ = any single byte) with an iterative two-pointer algorithm.
func likeMatch(s, pat string) bool {
	si, pi := 0, 0
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '%':
			star, match = pi, si
			pi++
		case star != -1:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

// When is one WHEN/THEN arm of a CASE expression.
type When struct {
	Cond Expr
	Then Expr
}

// Case implements searched CASE WHEN ... THEN ... ELSE ... END.
type Case struct {
	Whens []When
	Else  Expr // may be nil, meaning ELSE NULL
	Typ   storage.Type
}

// Eval implements Expr.
func (c *Case) Eval(r Row) (storage.Value, error) {
	for _, w := range c.Whens {
		cond, err := w.Cond.Eval(r)
		if err != nil {
			return storage.Value{}, err
		}
		if cond.IsTrue() {
			v, err := w.Then.Eval(r)
			if err != nil {
				return storage.Value{}, err
			}
			return storage.Coerce(v, c.Typ)
		}
	}
	if c.Else != nil {
		v, err := c.Else.Eval(r)
		if err != nil {
			return storage.Value{}, err
		}
		return storage.Coerce(v, c.Typ)
	}
	return storage.Null(c.Typ), nil
}

// Type implements Expr.
func (c *Case) Type() storage.Type { return c.Typ }

// String implements Expr.
func (c *Case) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range c.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.Cond, w.Then)
	}
	if c.Else != nil {
		fmt.Fprintf(&b, " ELSE %s", c.Else)
	}
	b.WriteString(" END")
	return b.String()
}

// EvalBool evaluates e and reports whether the result is a non-null
// TRUE — the predicate semantics used by WHERE and HAVING.
func EvalBool(e Expr, r Row) (bool, error) {
	v, err := e.Eval(r)
	if err != nil {
		return false, err
	}
	return v.IsTrue(), nil
}
