package expr

import (
	"repro/internal/storage"
)

// Vectorized evaluation. EvalVector evaluates an expression over a
// whole batch at once, with typed fast paths for the hot shapes the
// SQL graph algorithms produce (column refs, arithmetic and comparisons
// over numeric columns, constants). Everything else falls back to the
// row-at-a-time interpreter. This is the column-store advantage the
// paper's "Vertexica (SQL)" numbers come from.

// EvalVector evaluates e over every row of b, returning a column with
// b.Len() rows.
func EvalVector(e Expr, b *storage.Batch) (storage.Column, error) {
	n := b.Len()
	switch node := e.(type) {
	case *ColumnRef:
		return b.Cols[node.Index], nil
	case *Literal:
		return constColumn(node.Val, n), nil
	case *Param:
		v, err := node.Value()
		if err != nil {
			return nil, err
		}
		return constColumn(v, n), nil
	case *Cast:
		in, err := EvalVector(node.Input, b)
		if err != nil {
			return nil, err
		}
		if c, ok := castVector(in, node.To, n); ok {
			return c, nil
		}
	case *IsNull:
		in, err := EvalVector(node.Input, b)
		if err != nil {
			return nil, err
		}
		out := storage.NewBoolColumn(make([]bool, n))
		vals := out.Bools()
		for i := 0; i < n; i++ {
			vals[i] = in.IsNull(i) != node.Negate
		}
		return out, nil
	case *Binary:
		if c, err, ok := evalBinaryVector(node, b, n); ok {
			return c, err
		}
	}
	return evalRowFallback(e, b, n)
}

func evalRowFallback(e Expr, b *storage.Batch, n int) (storage.Column, error) {
	out := storage.NewColumn(e.Type(), n)
	for i := 0; i < n; i++ {
		v, err := e.Eval(Row{Batch: b, Idx: i})
		if err != nil {
			return nil, err
		}
		if err := out.Append(v); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// constColumn materializes a constant column of n rows.
func constColumn(v storage.Value, n int) storage.Column {
	out := storage.NewColumn(v.Type, n)
	for i := 0; i < n; i++ {
		if v.Null {
			out.AppendNull()
		} else {
			_ = out.Append(v)
		}
	}
	return out
}

// castVector handles the hot INT↔DOUBLE casts.
func castVector(in storage.Column, to storage.Type, n int) (storage.Column, bool) {
	if in.Type() == to {
		return in, true
	}
	switch src := in.(type) {
	case *storage.Int64Column:
		if to == storage.TypeFloat64 {
			vals := src.Int64s()
			out := make([]float64, n)
			for i := range out {
				out[i] = float64(vals[i])
			}
			c := storage.NewFloat64Column(out)
			copyNulls(in, c, n)
			return c, true
		}
	case *storage.Float64Column:
		if to == storage.TypeInt64 {
			vals := src.Float64s()
			out := make([]int64, n)
			for i := range out {
				out[i] = int64(vals[i])
			}
			c := storage.NewInt64Column(out)
			copyNulls(in, c, n)
			return c, true
		}
	}
	return nil, false
}

func copyNulls(from, to storage.Column, n int) {
	nb := storage.NullsOf(from)
	if nb != nil {
		storage.SetNulls(to, nb.Clone())
	}
}

// asFloats views a numeric column as float64s plus a null check fn.
func asFloats(c storage.Column, n int) ([]float64, bool) {
	switch col := c.(type) {
	case *storage.Float64Column:
		return col.Float64s(), true
	case *storage.Int64Column:
		vals := col.Int64s()
		out := make([]float64, n)
		for i := range out {
			out[i] = float64(vals[i])
		}
		return out, true
	}
	return nil, false
}

// evalBinaryVector vectorizes arithmetic and comparisons over numeric
// inputs and boolean AND/OR. ok=false means "no fast path".
func evalBinaryVector(node *Binary, b *storage.Batch, n int) (storage.Column, error, bool) {
	op := node.Op
	switch {
	case op == OpAdd || op == OpSub || op == OpMul || op == OpDiv || op.Comparison():
	default:
		return nil, nil, false
	}
	if !node.L.Type().Numeric() || !node.R.Type().Numeric() {
		return nil, nil, false
	}
	lc, err := EvalVector(node.L, b)
	if err != nil {
		return nil, err, true
	}
	rc, err := EvalVector(node.R, b)
	if err != nil {
		return nil, err, true
	}
	lf, okL := asFloats(lc, n)
	rf, okR := asFloats(rc, n)
	if !okL || !okR {
		return nil, nil, false
	}
	ln, rn := storage.NullsOf(lc), storage.NullsOf(rc)
	anyNull := ln.Any() || rn.Any()
	nullAt := func(i int) bool { return ln.Get(i) || rn.Get(i) }

	// Integer-preserving arithmetic: +,-,* over two int columns.
	if (op == OpAdd || op == OpSub || op == OpMul) && node.Typ == storage.TypeInt64 {
		li := lc.(*storage.Int64Column).Int64s()
		ri := rc.(*storage.Int64Column).Int64s()
		out := make([]int64, n)
		switch op {
		case OpAdd:
			for i := range out {
				out[i] = li[i] + ri[i]
			}
		case OpSub:
			for i := range out {
				out[i] = li[i] - ri[i]
			}
		case OpMul:
			for i := range out {
				out[i] = li[i] * ri[i]
			}
		}
		c := storage.NewInt64Column(out)
		setNullsUnion(c, ln, rn, n, anyNull)
		return c, nil, true
	}

	if op.Comparison() {
		out := make([]bool, n)
		switch op {
		case OpEq:
			for i := range out {
				out[i] = lf[i] == rf[i]
			}
		case OpNe:
			for i := range out {
				out[i] = lf[i] != rf[i]
			}
		case OpLt:
			for i := range out {
				out[i] = lf[i] < rf[i]
			}
		case OpLe:
			for i := range out {
				out[i] = lf[i] <= rf[i]
			}
		case OpGt:
			for i := range out {
				out[i] = lf[i] > rf[i]
			}
		case OpGe:
			for i := range out {
				out[i] = lf[i] >= rf[i]
			}
		}
		c := storage.NewBoolColumn(out)
		setNullsUnion(c, ln, rn, n, anyNull)
		return c, nil, true
	}

	out := make([]float64, n)
	switch op {
	case OpAdd:
		for i := range out {
			out[i] = lf[i] + rf[i]
		}
	case OpSub:
		for i := range out {
			out[i] = lf[i] - rf[i]
		}
	case OpMul:
		for i := range out {
			out[i] = lf[i] * rf[i]
		}
	case OpDiv:
		c := storage.NewFloat64Column(out)
		nulls := storage.NewBitmap(n)
		hasNull := false
		for i := range out {
			if (anyNull && nullAt(i)) || rf[i] == 0 {
				nulls.Set(i)
				hasNull = true
				continue
			}
			out[i] = lf[i] / rf[i]
		}
		if hasNull {
			storage.SetNulls(c, nulls)
		}
		return c, nil, true
	}
	c := storage.NewFloat64Column(out)
	setNullsUnion(c, ln, rn, n, anyNull)
	return c, nil, true
}

// setNullsUnion marks output rows null where either input was null.
func setNullsUnion(c storage.Column, ln, rn *storage.Bitmap, n int, anyNull bool) {
	if !anyNull {
		return
	}
	nulls := storage.NewBitmap(n)
	for i := 0; i < n; i++ {
		if ln.Get(i) || rn.Get(i) {
			nulls.Set(i)
		}
	}
	storage.SetNulls(c, nulls)
}
