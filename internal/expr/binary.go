package expr

import (
	"fmt"
	"math"

	"repro/internal/storage"
)

// BinOp identifies a binary operator.
type BinOp uint8

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpConcat
)

// String renders the operator as SQL.
func (o BinOp) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpConcat:
		return "||"
	default:
		return fmt.Sprintf("BinOp(%d)", uint8(o))
	}
}

// Comparison reports whether the operator yields a boolean comparison.
func (o BinOp) Comparison() bool { return o >= OpEq && o <= OpGe }

// Binary is a bound binary-operator expression.
type Binary struct {
	Op   BinOp
	L, R Expr
	Typ  storage.Type
}

// NewBinary builds a Binary with the inferred result type, validating
// operand types. Division always yields DOUBLE (the SQL graph
// algorithms divide ranks by out-degrees and must not truncate).
func NewBinary(op BinOp, l, r Expr) (*Binary, error) {
	lt, rt := l.Type(), r.Type()
	var typ storage.Type
	switch {
	case op.Comparison():
		if lt != rt && !(lt.Numeric() && rt.Numeric()) {
			return nil, fmt.Errorf("expr: cannot compare %s with %s", lt, rt)
		}
		typ = storage.TypeBool
	case op == OpAnd || op == OpOr:
		if lt != storage.TypeBool || rt != storage.TypeBool {
			return nil, fmt.Errorf("expr: %s requires booleans, got %s and %s", op, lt, rt)
		}
		typ = storage.TypeBool
	case op == OpConcat:
		typ = storage.TypeString
	case op == OpDiv:
		if !lt.Numeric() || !rt.Numeric() {
			return nil, fmt.Errorf("expr: %s requires numeric operands, got %s and %s", op, lt, rt)
		}
		typ = storage.TypeFloat64
	case op == OpMod:
		if lt != storage.TypeInt64 || rt != storage.TypeInt64 {
			return nil, fmt.Errorf("expr: %% requires integers, got %s and %s", lt, rt)
		}
		typ = storage.TypeInt64
	default: // + - *
		if !lt.Numeric() || !rt.Numeric() {
			return nil, fmt.Errorf("expr: %s requires numeric operands, got %s and %s", op, lt, rt)
		}
		if lt == storage.TypeFloat64 || rt == storage.TypeFloat64 {
			typ = storage.TypeFloat64
		} else {
			typ = storage.TypeInt64
		}
	}
	return &Binary{Op: op, L: l, R: r, Typ: typ}, nil
}

// Eval implements Expr with SQL NULL semantics: any NULL operand makes
// an arithmetic or comparison result NULL; AND/OR use Kleene logic.
func (b *Binary) Eval(r Row) (storage.Value, error) {
	// Kleene logic needs special casing before generic NULL handling.
	if b.Op == OpAnd || b.Op == OpOr {
		return b.evalLogic(r)
	}
	lv, err := b.L.Eval(r)
	if err != nil {
		return storage.Value{}, err
	}
	rv, err := b.R.Eval(r)
	if err != nil {
		return storage.Value{}, err
	}
	if lv.Null || rv.Null {
		return storage.Null(b.Typ), nil
	}
	if b.Op.Comparison() {
		c := storage.Compare(lv, rv)
		var res bool
		switch b.Op {
		case OpEq:
			res = c == 0
		case OpNe:
			res = c != 0
		case OpLt:
			res = c < 0
		case OpLe:
			res = c <= 0
		case OpGt:
			res = c > 0
		case OpGe:
			res = c >= 0
		}
		return storage.Bool(res), nil
	}
	switch b.Op {
	case OpConcat:
		ls, _ := storage.Coerce(lv, storage.TypeString)
		rs, _ := storage.Coerce(rv, storage.TypeString)
		return storage.Str(ls.S + rs.S), nil
	case OpDiv:
		den := rv.AsFloat()
		if den == 0 {
			return storage.Null(storage.TypeFloat64), nil
		}
		return storage.Float64(lv.AsFloat() / den), nil
	case OpMod:
		if rv.I == 0 {
			return storage.Null(storage.TypeInt64), nil
		}
		return storage.Int64(lv.I % rv.I), nil
	}
	if b.Typ == storage.TypeFloat64 {
		lf, rf := lv.AsFloat(), rv.AsFloat()
		switch b.Op {
		case OpAdd:
			return storage.Float64(lf + rf), nil
		case OpSub:
			return storage.Float64(lf - rf), nil
		case OpMul:
			return storage.Float64(lf * rf), nil
		}
	}
	switch b.Op {
	case OpAdd:
		return storage.Int64(lv.I + rv.I), nil
	case OpSub:
		return storage.Int64(lv.I - rv.I), nil
	case OpMul:
		return storage.Int64(lv.I * rv.I), nil
	}
	return storage.Value{}, fmt.Errorf("expr: unhandled operator %s", b.Op)
}

func (b *Binary) evalLogic(r Row) (storage.Value, error) {
	lv, err := b.L.Eval(r)
	if err != nil {
		return storage.Value{}, err
	}
	// Short-circuit where Kleene logic allows.
	if b.Op == OpAnd && !lv.Null && lv.I == 0 {
		return storage.Bool(false), nil
	}
	if b.Op == OpOr && !lv.Null && lv.I != 0 {
		return storage.Bool(true), nil
	}
	rv, err := b.R.Eval(r)
	if err != nil {
		return storage.Value{}, err
	}
	if b.Op == OpAnd {
		switch {
		case !rv.Null && rv.I == 0:
			return storage.Bool(false), nil
		case lv.Null || rv.Null:
			return storage.Null(storage.TypeBool), nil
		default:
			return storage.Bool(true), nil
		}
	}
	switch {
	case !rv.Null && rv.I != 0:
		return storage.Bool(true), nil
	case lv.Null || rv.Null:
		return storage.Null(storage.TypeBool), nil
	default:
		return storage.Bool(false), nil
	}
}

// Type implements Expr.
func (b *Binary) Type() storage.Type { return b.Typ }

// String implements Expr.
func (b *Binary) String() string { return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R) }

// Unary implements NOT and numeric negation.
type Unary struct {
	Not   bool // true for NOT, false for unary minus
	Input Expr
}

// NewNot returns a logical negation of a boolean expression.
func NewNot(e Expr) (*Unary, error) {
	if e.Type() != storage.TypeBool {
		return nil, fmt.Errorf("expr: NOT requires a boolean, got %s", e.Type())
	}
	return &Unary{Not: true, Input: e}, nil
}

// NewNeg returns an arithmetic negation of a numeric expression.
func NewNeg(e Expr) (*Unary, error) {
	if !e.Type().Numeric() {
		return nil, fmt.Errorf("expr: unary - requires a number, got %s", e.Type())
	}
	return &Unary{Not: false, Input: e}, nil
}

// Eval implements Expr.
func (u *Unary) Eval(r Row) (storage.Value, error) {
	v, err := u.Input.Eval(r)
	if err != nil {
		return storage.Value{}, err
	}
	if v.Null {
		return storage.Null(u.Type()), nil
	}
	if u.Not {
		return storage.Bool(v.I == 0), nil
	}
	if v.Type == storage.TypeFloat64 {
		return storage.Float64(-v.F), nil
	}
	return storage.Int64(-v.I), nil
}

// Type implements Expr.
func (u *Unary) Type() storage.Type {
	if u.Not {
		return storage.TypeBool
	}
	return u.Input.Type()
}

// String implements Expr.
func (u *Unary) String() string {
	if u.Not {
		return fmt.Sprintf("(NOT %s)", u.Input)
	}
	return fmt.Sprintf("(-%s)", u.Input)
}

// Float guards against overflow-to-NaN in benchmark arithmetic; kept
// here so the executor does not import math directly.
func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }
