package expr

import (
	"fmt"
	"strconv"

	"repro/internal/storage"
)

// ParamSlot holds the argument values of one execution of a
// parameterized plan. Every Param node of the plan shares one slot;
// Bind is called before the plan is opened, and the tree then reads
// arguments through its Params. A cached plan is checked out by one
// execution at a time, so the slot needs no locking.
type ParamSlot struct {
	vals []storage.Value
}

// Bind installs the argument values for the next execution.
func (s *ParamSlot) Bind(args []storage.Value) { s.vals = args }

// Args returns the currently bound argument values.
func (s *ParamSlot) Args() []storage.Value { return s.vals }

// Arg returns the bound value of parameter n (1-based), when present.
func (s *ParamSlot) Arg(n int) (storage.Value, bool) {
	if n < 1 || n > len(s.vals) {
		return storage.Value{}, false
	}
	return s.vals[n-1], true
}

// Param reads positional argument N (1-based) from its slot, coerced
// to the type recorded at plan time — the type of the argument the
// plan was first bound with, which makes a bound Param behave exactly
// like the literal the legacy substitution path would have rendered.
type Param struct {
	N    int
	Typ  storage.Type
	Slot *ParamSlot
}

// Value returns the bound argument, coerced to the planned type.
func (p *Param) Value() (storage.Value, error) {
	if p.Slot == nil || p.N > len(p.Slot.vals) {
		return storage.Value{}, fmt.Errorf("expr: parameter $%d unbound", p.N)
	}
	v := p.Slot.vals[p.N-1]
	if v.Null {
		return storage.Null(p.Typ), nil
	}
	return storage.Coerce(v, p.Typ)
}

// Eval implements Expr.
func (p *Param) Eval(Row) (storage.Value, error) { return p.Value() }

// Type implements Expr.
func (p *Param) Type() storage.Type { return p.Typ }

// String implements Expr.
func (p *Param) String() string { return "$" + strconv.Itoa(p.N) }
