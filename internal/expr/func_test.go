package expr

import (
	"testing"

	"repro/internal/storage"
)

func callBuiltin(t *testing.T, reg *Registry, name string, args ...storage.Value) storage.Value {
	t.Helper()
	fn, ok := reg.Lookup(name)
	if !ok {
		t.Fatalf("builtin %s not found", name)
	}
	exprs := make([]Expr, len(args))
	for i, a := range args {
		exprs[i] = lit(a)
	}
	c, err := NewCall(fn, exprs)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	v, err := c.Eval(testRow())
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return v
}

func TestBuiltins(t *testing.T) {
	reg := NewRegistry()
	cases := []struct {
		name string
		args []storage.Value
		want storage.Value
	}{
		{"abs", []storage.Value{storage.Int64(-4)}, storage.Int64(4)},
		{"abs", []storage.Value{storage.Float64(-2.5)}, storage.Float64(2.5)},
		{"sqrt", []storage.Value{storage.Float64(9)}, storage.Float64(3)},
		{"pow", []storage.Value{storage.Float64(2), storage.Float64(10)}, storage.Float64(1024)},
		{"floor", []storage.Value{storage.Float64(2.7)}, storage.Float64(2)},
		{"ceil", []storage.Value{storage.Float64(2.1)}, storage.Float64(3)},
		{"round", []storage.Value{storage.Float64(2.46), storage.Int64(1)}, storage.Float64(2.5)},
		{"least", []storage.Value{storage.Int64(3), storage.Int64(1), storage.Int64(2)}, storage.Int64(1)},
		{"greatest", []storage.Value{storage.Int64(3), storage.Int64(9), storage.Int64(2)}, storage.Int64(9)},
		{"coalesce", []storage.Value{storage.Null(storage.TypeInt64), storage.Int64(5)}, storage.Int64(5)},
		{"nullif", []storage.Value{storage.Int64(5), storage.Int64(6)}, storage.Int64(5)},
		{"length", []storage.Value{storage.Str("hello")}, storage.Int64(5)},
		{"upper", []storage.Value{storage.Str("ab")}, storage.Str("AB")},
		{"lower", []storage.Value{storage.Str("AB")}, storage.Str("ab")},
		{"substr", []storage.Value{storage.Str("hello"), storage.Int64(2), storage.Int64(3)}, storage.Str("ell")},
		{"concat", []storage.Value{storage.Str("a"), storage.Int64(1)}, storage.Str("a1")},
		{"sign", []storage.Value{storage.Float64(-0.5)}, storage.Int64(-1)},
	}
	for _, c := range cases {
		got := callBuiltin(t, reg, c.name, c.args...)
		if !storage.Equal(got, c.want) {
			t.Errorf("%s(%v) = %v, want %v", c.name, c.args, got, c.want)
		}
	}
}

func TestBuiltinNullHandling(t *testing.T) {
	reg := NewRegistry()
	if v := callBuiltin(t, reg, "abs", storage.Null(storage.TypeInt64)); !v.Null {
		t.Error("abs(NULL) should be NULL")
	}
	if v := callBuiltin(t, reg, "sqrt", storage.Float64(-1)); !v.Null {
		t.Error("sqrt(-1) should be NULL")
	}
	if v := callBuiltin(t, reg, "nullif", storage.Int64(3), storage.Int64(3)); !v.Null {
		t.Error("nullif(3,3) should be NULL")
	}
}

func TestCallArityCheck(t *testing.T) {
	reg := NewRegistry()
	fn, _ := reg.Lookup("abs")
	if _, err := NewCall(fn, nil); err == nil {
		t.Error("abs() should fail arity check")
	}
	if _, err := NewCall(fn, []Expr{lit(storage.Int64(1)), lit(storage.Int64(2))}); err == nil {
		t.Error("abs(1,2) should fail arity check")
	}
}

func TestUDFRegistration(t *testing.T) {
	reg := NewRegistry()
	err := reg.Register(&ScalarFunc{
		Name: "double_it", MinArgs: 1, MaxArgs: 1,
		ReturnType: fixedType(storage.TypeInt64),
		Eval: NullSafe(storage.TypeInt64, func(a []storage.Value) (storage.Value, error) {
			return storage.Int64(a[0].I * 2), nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := callBuiltin(t, reg, "DOUBLE_IT", storage.Int64(21)); v.I != 42 {
		t.Errorf("udf = %v, want 42", v)
	}
	if err := reg.Register(&ScalarFunc{Name: ""}); err == nil {
		t.Error("invalid registration should fail")
	}
	names := reg.Names()
	found := false
	for _, n := range names {
		if n == "double_it" {
			found = true
		}
	}
	if !found {
		t.Error("Names() should list registered UDFs")
	}
}

func TestAggregates(t *testing.T) {
	in := []storage.Value{
		storage.Int64(3), storage.Int64(1), storage.Null(storage.TypeInt64), storage.Int64(3),
	}
	check := func(kind AggKind, distinct bool, want storage.Value) {
		t.Helper()
		agg := &Aggregate{Kind: kind, Input: lit(storage.Int64(0)), Distinct: distinct}
		acc := agg.NewAccumulator()
		for _, v := range in {
			acc.Add(v)
		}
		got := acc.Result()
		if !storage.Equal(got, want) || got.Null != want.Null {
			t.Errorf("%v(distinct=%v) = %v, want %v", kind, distinct, got, want)
		}
	}
	check(AggCount, false, storage.Int64(3))
	check(AggCountStar, false, storage.Int64(4))
	check(AggSum, false, storage.Int64(7))
	check(AggAvg, false, storage.Float64(7.0/3.0))
	check(AggMin, false, storage.Int64(1))
	check(AggMax, false, storage.Int64(3))
	check(AggCount, true, storage.Int64(2))
	check(AggSum, true, storage.Int64(4))
}

func TestAggregateEmptyGroups(t *testing.T) {
	sum := (&Aggregate{Kind: AggSum, Input: lit(storage.Int64(0))}).NewAccumulator()
	if v := sum.Result(); !v.Null {
		t.Error("SUM of empty group should be NULL")
	}
	cnt := (&Aggregate{Kind: AggCountStar}).NewAccumulator()
	if v := cnt.Result(); v.I != 0 {
		t.Error("COUNT(*) of empty group should be 0")
	}
}

func TestAggKindByName(t *testing.T) {
	for name, want := range map[string]AggKind{"count": AggCount, "SUM": AggSum, "Avg": AggAvg, "MIN": AggMin, "max": AggMax} {
		got, ok := AggKindByName(name)
		if !ok || got != want {
			t.Errorf("AggKindByName(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := AggKindByName("median"); ok {
		t.Error("median should not resolve")
	}
}

func TestAggregateResultTypes(t *testing.T) {
	a := &Aggregate{Kind: AggAvg, Input: lit(storage.Int64(1))}
	rt, err := a.ResultType()
	if err != nil || rt != storage.TypeFloat64 {
		t.Errorf("AVG type = %v, %v", rt, err)
	}
	bad := &Aggregate{Kind: AggSum, Input: lit(storage.Str("x"))}
	if _, err := bad.ResultType(); err == nil {
		t.Error("SUM over string should fail")
	}
}
