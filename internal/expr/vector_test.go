package expr

import (
	"math/rand"
	"testing"

	"repro/internal/storage"
)

// randomBatch builds a batch with int64, float64 and occasional nulls.
func randomBatch(rng *rand.Rand, n int) *storage.Batch {
	s := storage.NewSchema(
		storage.Col("a", storage.TypeInt64),
		storage.Col("b", storage.TypeInt64),
		storage.Col("x", storage.TypeFloat64),
		storage.Col("y", storage.TypeFloat64),
	)
	b := storage.NewBatch(s)
	for i := 0; i < n; i++ {
		row := []storage.Value{
			storage.Int64(int64(rng.Intn(20) - 10)),
			storage.Int64(int64(rng.Intn(20) - 10)),
			storage.Float64(rng.Float64()*10 - 5),
			storage.Float64(rng.Float64()*10 - 5),
		}
		for j := range row {
			if rng.Intn(10) == 0 {
				row[j] = storage.Null(row[j].Type)
			}
		}
		if err := b.AppendRow(row...); err != nil {
			panic(err)
		}
	}
	return b
}

func ref(name string, idx int, t storage.Type) Expr {
	return &ColumnRef{Name: name, Index: idx, Typ: t}
}

// TestEvalVectorMatchesRowEval is the fast-path oracle: for a family of
// expressions over random data, vectorized evaluation must agree
// exactly with the row-at-a-time interpreter, nulls included.
func TestEvalVectorMatchesRowEval(t *testing.T) {
	rng := rand.New(rand.NewSource(2014))
	a := ref("a", 0, storage.TypeInt64)
	bcol := ref("b", 1, storage.TypeInt64)
	x := ref("x", 2, storage.TypeFloat64)
	y := ref("y", 3, storage.TypeFloat64)
	mk := func(op BinOp, l, r Expr) Expr {
		e, err := NewBinary(op, l, r)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	exprs := []Expr{
		a,
		x,
		&Literal{Val: storage.Int64(7)},
		&Literal{Val: storage.Null(storage.TypeFloat64)},
		mk(OpAdd, a, bcol),
		mk(OpSub, a, bcol),
		mk(OpMul, a, bcol),
		mk(OpAdd, x, y),
		mk(OpMul, x, a),
		mk(OpDiv, x, y),
		mk(OpDiv, a, bcol), // division by zero → NULL
		mk(OpLt, a, bcol),
		mk(OpGe, x, y),
		mk(OpEq, a, bcol),
		mk(OpNe, x, a),
		&Cast{Input: a, To: storage.TypeFloat64},
		&Cast{Input: x, To: storage.TypeInt64},
		&IsNull{Input: x},
		&IsNull{Input: a, Negate: true},
		mk(OpAnd, mk(OpLt, a, bcol), mk(OpGt, x, y)),
		mk(OpAdd, mk(OpMul, x, y), &Literal{Val: storage.Float64(0.5)}),
	}
	for trial := 0; trial < 5; trial++ {
		batch := randomBatch(rng, 200)
		for _, e := range exprs {
			vec, err := EvalVector(e, batch)
			if err != nil {
				t.Fatalf("EvalVector(%s): %v", e, err)
			}
			if vec.Len() != batch.Len() {
				t.Fatalf("EvalVector(%s): %d rows, want %d", e, vec.Len(), batch.Len())
			}
			for i := 0; i < batch.Len(); i++ {
				want, err := e.Eval(Row{Batch: batch, Idx: i})
				if err != nil {
					t.Fatalf("Eval(%s): %v", e, err)
				}
				got := vec.Value(i)
				if want.Null != got.Null {
					t.Fatalf("%s row %d: null mismatch vec=%v row=%v", e, i, got, want)
				}
				if !want.Null && storage.Compare(got, want) != 0 {
					t.Fatalf("%s row %d: vec=%v row=%v", e, i, got, want)
				}
			}
		}
	}
}

func TestEvalVectorColumnRefShares(t *testing.T) {
	b := randomBatch(rand.New(rand.NewSource(1)), 8)
	c, err := EvalVector(ref("a", 0, storage.TypeInt64), b)
	if err != nil {
		t.Fatal(err)
	}
	if c != b.Cols[0] {
		t.Error("column refs should pass through without copying")
	}
}

func TestEvalVectorFallback(t *testing.T) {
	// String concat has no fast path; it must still work via fallback.
	b := storage.NewBatch(storage.NewSchema(storage.Col("s", storage.TypeString)))
	_ = b.AppendRow(storage.Str("a"))
	_ = b.AppendRow(storage.Str("b"))
	e, err := NewBinary(OpConcat, ref("s", 0, storage.TypeString), &Literal{Val: storage.Str("!")})
	if err != nil {
		t.Fatal(err)
	}
	c, err := EvalVector(e, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Value(0).S != "a!" || c.Value(1).S != "b!" {
		t.Errorf("fallback wrong: %v %v", c.Value(0), c.Value(1))
	}
}
