package expr

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/storage"
)

// ScalarFunc describes a scalar function (built-in or user-defined).
// This is the engine's UDF extension point: Vertexica registers its
// helper functions here and users can add their own.
type ScalarFunc struct {
	Name    string
	MinArgs int
	MaxArgs int // -1 means variadic
	// ReturnType infers the result type from argument types.
	ReturnType func(args []storage.Type) (storage.Type, error)
	// Eval computes the result. NULL handling is up to the function;
	// use NullSafe to get the usual any-NULL-in, NULL-out behaviour.
	Eval func(args []storage.Value) (storage.Value, error)
}

// Registry maps function names (case-insensitive) to implementations.
// The zero value is unusable; use NewRegistry, which pre-loads the
// built-ins.
type Registry struct {
	mu    sync.RWMutex
	funcs map[string]*ScalarFunc
}

// NewRegistry returns a registry populated with the built-in functions.
func NewRegistry() *Registry {
	r := &Registry{funcs: make(map[string]*ScalarFunc)}
	for _, f := range builtins() {
		r.funcs[strings.ToLower(f.Name)] = f
	}
	return r
}

// Register adds or replaces a scalar function (the UDF hook).
func (r *Registry) Register(f *ScalarFunc) error {
	if f == nil || f.Name == "" || f.Eval == nil || f.ReturnType == nil {
		return fmt.Errorf("expr: invalid scalar function registration")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[strings.ToLower(f.Name)] = f
	return nil
}

// Lookup finds a function by name.
func (r *Registry) Lookup(name string) (*ScalarFunc, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.funcs[strings.ToLower(name)]
	return f, ok
}

// Names lists registered function names, sorted (for the console's
// \functions command).
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.funcs))
	for n := range r.funcs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Call is a bound invocation of a scalar function.
type Call struct {
	Fn   *ScalarFunc
	Args []Expr
	Typ  storage.Type
}

// NewCall binds a function invocation, checking arity and inferring the
// result type.
func NewCall(fn *ScalarFunc, args []Expr) (*Call, error) {
	n := len(args)
	if n < fn.MinArgs || (fn.MaxArgs >= 0 && n > fn.MaxArgs) {
		return nil, fmt.Errorf("expr: %s expects %d..%d args, got %d", fn.Name, fn.MinArgs, fn.MaxArgs, n)
	}
	ats := make([]storage.Type, n)
	for i, a := range args {
		ats[i] = a.Type()
	}
	rt, err := fn.ReturnType(ats)
	if err != nil {
		return nil, fmt.Errorf("expr: %s: %w", fn.Name, err)
	}
	return &Call{Fn: fn, Args: args, Typ: rt}, nil
}

// Eval implements Expr.
func (c *Call) Eval(r Row) (storage.Value, error) {
	vals := make([]storage.Value, len(c.Args))
	for i, a := range c.Args {
		v, err := a.Eval(r)
		if err != nil {
			return storage.Value{}, err
		}
		vals[i] = v
	}
	out, err := c.Fn.Eval(vals)
	if err != nil {
		return storage.Value{}, fmt.Errorf("expr: %s: %w", c.Fn.Name, err)
	}
	return out, nil
}

// Type implements Expr.
func (c *Call) Type() storage.Type { return c.Typ }

// String implements Expr.
func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Fn.Name, strings.Join(parts, ", "))
}

// NullSafe wraps an eval func with any-NULL-in, NULL-out semantics.
func NullSafe(t storage.Type, f func(args []storage.Value) (storage.Value, error)) func([]storage.Value) (storage.Value, error) {
	return func(args []storage.Value) (storage.Value, error) {
		for _, a := range args {
			if a.Null {
				return storage.Null(t), nil
			}
		}
		return f(args)
	}
}

func fixedType(t storage.Type) func([]storage.Type) (storage.Type, error) {
	return func([]storage.Type) (storage.Type, error) { return t, nil }
}

func numericPassThrough(args []storage.Type) (storage.Type, error) {
	if len(args) == 0 {
		return storage.TypeFloat64, nil
	}
	out := storage.TypeInt64
	for _, a := range args {
		if !a.Numeric() {
			return 0, fmt.Errorf("numeric argument required, got %s", a)
		}
		if a == storage.TypeFloat64 {
			out = storage.TypeFloat64
		}
	}
	return out, nil
}

func sameAsFirst(args []storage.Type) (storage.Type, error) {
	if len(args) == 0 {
		return 0, fmt.Errorf("at least one argument required")
	}
	return args[0], nil
}

func builtins() []*ScalarFunc {
	return []*ScalarFunc{
		{
			Name: "abs", MinArgs: 1, MaxArgs: 1,
			ReturnType: numericPassThrough,
			Eval: NullSafe(storage.TypeFloat64, func(a []storage.Value) (storage.Value, error) {
				if a[0].Type == storage.TypeInt64 {
					v := a[0].I
					if v < 0 {
						v = -v
					}
					return storage.Int64(v), nil
				}
				return storage.Float64(math.Abs(a[0].F)), nil
			}),
		},
		{
			Name: "sqrt", MinArgs: 1, MaxArgs: 1,
			ReturnType: fixedType(storage.TypeFloat64),
			Eval: NullSafe(storage.TypeFloat64, func(a []storage.Value) (storage.Value, error) {
				v := math.Sqrt(a[0].AsFloat())
				if !isFinite(v) {
					return storage.Null(storage.TypeFloat64), nil
				}
				return storage.Float64(v), nil
			}),
		},
		{
			Name: "pow", MinArgs: 2, MaxArgs: 2,
			ReturnType: fixedType(storage.TypeFloat64),
			Eval: NullSafe(storage.TypeFloat64, func(a []storage.Value) (storage.Value, error) {
				v := math.Pow(a[0].AsFloat(), a[1].AsFloat())
				if !isFinite(v) {
					return storage.Null(storage.TypeFloat64), nil
				}
				return storage.Float64(v), nil
			}),
		},
		{
			Name: "ln", MinArgs: 1, MaxArgs: 1,
			ReturnType: fixedType(storage.TypeFloat64),
			Eval: NullSafe(storage.TypeFloat64, func(a []storage.Value) (storage.Value, error) {
				v := math.Log(a[0].AsFloat())
				if !isFinite(v) {
					return storage.Null(storage.TypeFloat64), nil
				}
				return storage.Float64(v), nil
			}),
		},
		{
			Name: "floor", MinArgs: 1, MaxArgs: 1,
			ReturnType: fixedType(storage.TypeFloat64),
			Eval: NullSafe(storage.TypeFloat64, func(a []storage.Value) (storage.Value, error) {
				return storage.Float64(math.Floor(a[0].AsFloat())), nil
			}),
		},
		{
			Name: "ceil", MinArgs: 1, MaxArgs: 1,
			ReturnType: fixedType(storage.TypeFloat64),
			Eval: NullSafe(storage.TypeFloat64, func(a []storage.Value) (storage.Value, error) {
				return storage.Float64(math.Ceil(a[0].AsFloat())), nil
			}),
		},
		{
			Name: "round", MinArgs: 1, MaxArgs: 2,
			ReturnType: fixedType(storage.TypeFloat64),
			Eval: NullSafe(storage.TypeFloat64, func(a []storage.Value) (storage.Value, error) {
				scale := 0.0
				if len(a) == 2 {
					scale = a[1].AsFloat()
				}
				m := math.Pow(10, scale)
				return storage.Float64(math.Round(a[0].AsFloat()*m) / m), nil
			}),
		},
		{
			Name: "least", MinArgs: 1, MaxArgs: -1,
			ReturnType: sameAsFirst,
			Eval: NullSafe(storage.TypeFloat64, func(a []storage.Value) (storage.Value, error) {
				best := a[0]
				for _, v := range a[1:] {
					if storage.Compare(v, best) < 0 {
						best = v
					}
				}
				return best, nil
			}),
		},
		{
			Name: "greatest", MinArgs: 1, MaxArgs: -1,
			ReturnType: sameAsFirst,
			Eval: NullSafe(storage.TypeFloat64, func(a []storage.Value) (storage.Value, error) {
				best := a[0]
				for _, v := range a[1:] {
					if storage.Compare(v, best) > 0 {
						best = v
					}
				}
				return best, nil
			}),
		},
		{
			Name: "coalesce", MinArgs: 1, MaxArgs: -1,
			ReturnType: sameAsFirst,
			Eval: func(a []storage.Value) (storage.Value, error) {
				for _, v := range a {
					if !v.Null {
						return v, nil
					}
				}
				return a[0], nil
			},
		},
		{
			Name: "nullif", MinArgs: 2, MaxArgs: 2,
			ReturnType: sameAsFirst,
			Eval: func(a []storage.Value) (storage.Value, error) {
				if !a[0].Null && !a[1].Null && storage.Compare(a[0], a[1]) == 0 {
					return storage.Null(a[0].Type), nil
				}
				return a[0], nil
			},
		},
		{
			Name: "length", MinArgs: 1, MaxArgs: 1,
			ReturnType: fixedType(storage.TypeInt64),
			Eval: NullSafe(storage.TypeInt64, func(a []storage.Value) (storage.Value, error) {
				return storage.Int64(int64(len(a[0].S))), nil
			}),
		},
		{
			Name: "upper", MinArgs: 1, MaxArgs: 1,
			ReturnType: fixedType(storage.TypeString),
			Eval: NullSafe(storage.TypeString, func(a []storage.Value) (storage.Value, error) {
				return storage.Str(strings.ToUpper(a[0].S)), nil
			}),
		},
		{
			Name: "lower", MinArgs: 1, MaxArgs: 1,
			ReturnType: fixedType(storage.TypeString),
			Eval: NullSafe(storage.TypeString, func(a []storage.Value) (storage.Value, error) {
				return storage.Str(strings.ToLower(a[0].S)), nil
			}),
		},
		{
			Name: "substr", MinArgs: 2, MaxArgs: 3,
			ReturnType: fixedType(storage.TypeString),
			Eval: NullSafe(storage.TypeString, func(a []storage.Value) (storage.Value, error) {
				s := a[0].S
				start := int(a[1].AsInt()) - 1 // SQL is 1-based
				if start < 0 {
					start = 0
				}
				if start > len(s) {
					start = len(s)
				}
				end := len(s)
				if len(a) == 3 {
					end = start + int(a[2].AsInt())
					if end > len(s) {
						end = len(s)
					}
					if end < start {
						end = start
					}
				}
				return storage.Str(s[start:end]), nil
			}),
		},
		{
			Name: "concat", MinArgs: 1, MaxArgs: -1,
			ReturnType: fixedType(storage.TypeString),
			Eval: func(a []storage.Value) (storage.Value, error) {
				var b strings.Builder
				for _, v := range a {
					if v.Null {
						continue
					}
					b.WriteString(v.String())
				}
				return storage.Str(b.String()), nil
			},
		},
		{
			Name: "sign", MinArgs: 1, MaxArgs: 1,
			ReturnType: fixedType(storage.TypeInt64),
			Eval: NullSafe(storage.TypeInt64, func(a []storage.Value) (storage.Value, error) {
				f := a[0].AsFloat()
				switch {
				case f > 0:
					return storage.Int64(1), nil
				case f < 0:
					return storage.Int64(-1), nil
				default:
					return storage.Int64(0), nil
				}
			}),
		},
	}
}
