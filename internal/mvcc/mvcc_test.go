package mvcc

import (
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/storage"
)

func newTable(t *testing.T, cat *catalog.Catalog, name string, rows int) *storage.Table {
	t.Helper()
	tb, err := cat.Create(name, storage.NewSchema(
		storage.NotNullCol("id", storage.TypeInt64),
		storage.Col("v", storage.TypeFloat64),
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := tb.AppendRow(storage.Int64(int64(i)), storage.Float64(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// sumIDs folds the id column of a table view (snapshot or live).
func sumIDs(td storage.TableData) int64 {
	var s int64
	col := td.Column(0)
	for i := 0; i < td.NumRows(); i++ {
		s += col.Value(i).I
	}
	return s
}

// TestSnapshotImmuneToEveryMutator pins a snapshot and runs every
// in-place and swapping mutator against the live table; the snapshot's
// contents must not move.
func TestSnapshotImmuneToEveryMutator(t *testing.T) {
	cat := catalog.New()
	tb := newTable(t, cat, "t", 10)
	m := NewManager(cat)

	snap, err := m.Acquire("t")
	if err != nil {
		t.Fatal(err)
	}
	snap.Seal()
	td, err := snap.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	wantRows, wantSum := td.NumRows(), sumIDs(td)

	if err := tb.AppendRow(storage.Int64(100), storage.Float64(1)); err != nil {
		t.Fatal(err)
	}
	if err := tb.UpdateInPlace([]int{0}, 0, []storage.Value{storage.Int64(-50)}); err != nil {
		t.Fatal(err)
	}
	tb.DeleteWhere([]int{1, 2})
	b := storage.NewBatch(tb.Schema())
	if err := b.AppendRow(storage.Int64(7), storage.Float64(7)); err != nil {
		t.Fatal(err)
	}
	if err := tb.Replace(b); err != nil {
		t.Fatal(err)
	}
	tb.Truncate()

	if got := td.NumRows(); got != wantRows {
		t.Fatalf("snapshot rows %d, want %d", got, wantRows)
	}
	if got := sumIDs(td); got != wantSum {
		t.Fatalf("snapshot id sum %d, want %d", got, wantSum)
	}
	snap.Release()
}

// TestOverlayHidesUncommittedWrites asserts readers resolve staged
// tables to their pre-images until Commit publishes.
func TestOverlayHidesUncommittedWrites(t *testing.T) {
	cat := catalog.New()
	tb := newTable(t, cat, "t", 5)
	m := NewManager(cat)

	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	m.StageWrite(tb)
	if err := tb.AppendRow(storage.Int64(99), storage.Float64(9)); err != nil {
		t.Fatal(err)
	}

	snap, err := m.Acquire("t")
	if err != nil {
		t.Fatal(err)
	}
	td, _ := snap.Table("t")
	if td.NumRows() != 5 {
		t.Fatalf("mid-transaction reader sees %d rows, want pre-image 5", td.NumRows())
	}
	snap.Release()

	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	snap2, _ := m.Acquire("t")
	td2, _ := snap2.Table("t")
	if td2.NumRows() != 6 {
		t.Fatalf("post-commit reader sees %d rows, want 6", td2.NumRows())
	}
	snap2.Release()
}

// TestOverlayHidesCreatedAndKeepsDropped asserts DDL visibility: a
// table created inside a transaction is invisible to readers, and a
// dropped one remains visible until commit.
func TestOverlayHidesCreatedAndKeepsDropped(t *testing.T) {
	cat := catalog.New()
	tb := newTable(t, cat, "old", 3)
	m := NewManager(cat)

	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	m.StageCreate("fresh")
	if _, err := cat.Create("fresh", storage.NewSchema(storage.Col("x", storage.TypeInt64))); err != nil {
		t.Fatal(err)
	}
	m.StageDrop(tb)
	if err := cat.Drop("old"); err != nil {
		t.Fatal(err)
	}

	snap, _ := m.Acquire()
	if _, err := snap.Table("fresh"); err == nil {
		t.Fatal("reader sees a table created by an uncommitted transaction")
	}
	td, err := snap.Table("old")
	if err != nil {
		t.Fatalf("reader lost a table dropped by an uncommitted transaction: %v", err)
	}
	if td.NumRows() != 3 {
		t.Fatalf("dropped pre-image has %d rows, want 3", td.NumRows())
	}
	snap.Release()

	if err := m.Rollback(); err != nil {
		t.Fatal(err)
	}
	if cat.Has("fresh") {
		t.Fatal("rollback kept a transaction-created table")
	}
	restored, err := cat.Get("old")
	if err != nil {
		t.Fatal("rollback did not re-register the dropped table")
	}
	if restored.NumRows() != 3 {
		t.Fatalf("restored table has %d rows, want 3", restored.NumRows())
	}
}

// TestRollbackIsVersionSwap asserts rollback restores staged tables to
// their pre-images (contents and row count), including the
// drop-then-recreate-with-another-shape corner.
func TestRollbackIsVersionSwap(t *testing.T) {
	cat := catalog.New()
	tb := newTable(t, cat, "t", 4)
	m := NewManager(cat)

	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	m.StageWrite(tb)
	if err := tb.AppendRow(storage.Int64(50), storage.Float64(5)); err != nil {
		t.Fatal(err)
	}
	m.StageDrop(tb)
	if err := cat.Drop("t"); err != nil {
		t.Fatal(err)
	}
	m.StageCreate("t") // recreate under the same name, different shape
	if _, err := cat.Create("t", storage.NewSchema(storage.Col("other", storage.TypeString))); err != nil {
		t.Fatal(err)
	}

	if err := m.Rollback(); err != nil {
		t.Fatal(err)
	}
	got, err := cat.Get("t")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 4 || got.Schema().Cols[0].Name != "id" {
		t.Fatalf("rollback restored %d rows / schema %v, want the 4-row pre-image", got.NumRows(), got.Schema().Names())
	}
}

// TestSealedSnapshotRejectsLateResolution pins only one table; a
// post-seal miss must fail loudly instead of reading live state.
func TestSealedSnapshotRejectsLateResolution(t *testing.T) {
	cat := catalog.New()
	newTable(t, cat, "a", 1)
	newTable(t, cat, "b", 1)
	m := NewManager(cat)
	snap, err := m.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	snap.Seal()
	if _, err := snap.Table("a"); err != nil {
		t.Fatalf("pinned table unavailable after seal: %v", err)
	}
	if _, err := snap.Table("b"); err == nil {
		t.Fatal("sealed snapshot resolved a table it never pinned")
	}
	snap.Release()
}

// TestReaderTracking exercises the live/peak/oldest-epoch gauges and
// Release idempotence under concurrency.
func TestReaderTracking(t *testing.T) {
	cat := catalog.New()
	newTable(t, cat, "t", 1)
	m := NewManager(cat)

	s1, _ := m.Acquire("t")
	m.Publish()
	s2, _ := m.Acquire("t")
	if got := m.LiveReaders(); got != 2 {
		t.Fatalf("live readers %d, want 2", got)
	}
	if e, ok := m.OldestPinnedEpoch(); !ok || e != s1.Epoch() {
		t.Fatalf("oldest pinned epoch %d/%v, want %d", e, ok, s1.Epoch())
	}
	s1.Release()
	s1.Release() // idempotent
	if e, ok := m.OldestPinnedEpoch(); !ok || e != s2.Epoch() {
		t.Fatalf("oldest pinned epoch %d/%v after release, want %d", e, ok, s2.Epoch())
	}
	s2.Release()
	if got := m.LiveReaders(); got != 0 {
		t.Fatalf("live readers %d after releases, want 0", got)
	}
	if got := m.PeakReaders(); got != 2 {
		t.Fatalf("peak readers %d, want 2", got)
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s, err := m.Acquire("t")
				if err != nil {
					t.Error(err)
					return
				}
				s.Release()
			}
		}()
	}
	wg.Wait()
	if got := m.LiveReaders(); got != 0 {
		t.Fatalf("live readers %d after concurrent churn, want 0", got)
	}
}

// TestConcurrentReadersSeeStableSnapshots hammers a table with an
// appender while readers pin and fold snapshots — the -race workhorse
// for the copy-on-write machinery. Each reader's sum must match the
// closed form for the row count it pinned.
func TestConcurrentReadersSeeStableSnapshots(t *testing.T) {
	cat := catalog.New()
	tb := newTable(t, cat, "t", 100)
	m := NewManager(cat)

	done := make(chan struct{})
	var writerErr error
	go func() {
		defer close(done)
		for i := 100; i < 1100; i++ {
			if err := tb.AppendRow(storage.Int64(int64(i)), storage.Float64(0)); err != nil {
				writerErr = err
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				snap, err := m.Acquire("t")
				if err != nil {
					t.Error(err)
					return
				}
				td, err := snap.Table("t")
				if err != nil {
					t.Error(err)
					snap.Release()
					return
				}
				n := int64(td.NumRows())
				if got, want := sumIDs(td), n*(n-1)/2; got != want {
					t.Errorf("torn snapshot: %d rows sum %d, want %d", n, got, want)
				}
				snap.Release()
			}
		}()
	}
	wg.Wait()
	<-done
	if writerErr != nil {
		t.Fatal(writerErr)
	}
}

// TestReaderPinnedAcrossRollbackSurvivesLaterWrites is the regression
// for rollback adopting the pre-image's column objects: a reader still
// pinned on the pre-image must not observe rows appended to the table
// AFTER the rollback restored it (appends skip copy-on-write by
// design, so RestoreSnapshot must install re-frozen copies).
func TestReaderPinnedAcrossRollbackSurvivesLaterWrites(t *testing.T) {
	cat := catalog.New()
	tb := newTable(t, cat, "t", 1)
	m := NewManager(cat)

	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	m.StageWrite(tb)
	if err := tb.AppendRow(storage.Int64(50), storage.Float64(5)); err != nil {
		t.Fatal(err)
	}
	// Reader pins mid-transaction: it resolves to the 1-row pre-image.
	snap, err := m.Acquire("t")
	if err != nil {
		t.Fatal(err)
	}
	td, err := snap.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if td.NumRows() != 1 {
		t.Fatalf("pinned pre-image has %d rows, want 1", td.NumRows())
	}
	if err := m.Rollback(); err != nil {
		t.Fatal(err)
	}
	// Post-rollback appends land in the restored table; the pinned
	// pre-image view must not move.
	for i := 0; i < 100; i++ {
		if err := tb.AppendRow(storage.Int64(int64(100+i)), storage.Float64(1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := td.NumRows(); got != 1 {
		t.Fatalf("pinned reader saw %d rows after rollback+appends, want its pinned 1", got)
	}
	if got := tb.NumRows(); got != 101 {
		t.Fatalf("restored table has %d rows, want 101", got)
	}
	snap.Release()

	// Same defect through the drop arm: TableFromSnapshot must also
	// copy, so a reader pinned on the dropped pre-image is immune to
	// appends on the re-registered table.
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	m.StageDrop(tb)
	snap2, err := m.Acquire("t")
	if err != nil {
		t.Fatal(err)
	}
	td2, err := snap2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	pinned := td2.NumRows()
	if err := cat.Drop("t"); err != nil {
		t.Fatal(err)
	}
	if err := m.Rollback(); err != nil {
		t.Fatal(err)
	}
	restored, err := cat.Get("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.AppendRow(storage.Int64(9999), storage.Float64(9)); err != nil {
		t.Fatal(err)
	}
	if got := td2.NumRows(); got != pinned {
		t.Fatalf("pinned reader saw %d rows after drop-rollback+append, want %d", got, pinned)
	}
	snap2.Release()
}

func TestDoubleBeginAndBareCommit(t *testing.T) {
	m := NewManager(catalog.New())
	if err := m.Commit(); err == nil {
		t.Fatal("commit without begin succeeded")
	}
	if err := m.Rollback(); err == nil {
		t.Fatal("rollback without begin succeeded")
	}
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(); err == nil {
		t.Fatal("nested begin succeeded")
	}
	if !m.InTransaction() {
		t.Fatal("InTransaction false with open scope")
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := m.Epoch(); got == 0 {
		t.Fatal("commit did not advance the epoch")
	}
}

func BenchmarkSnapshotAcquire(b *testing.B) {
	cat := catalog.New()
	tb, _ := cat.Create("t", storage.NewSchema(storage.NotNullCol("id", storage.TypeInt64)))
	for i := 0; i < 10000; i++ {
		_ = tb.AppendRow(storage.Int64(int64(i)))
	}
	m := NewManager(cat)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := m.Acquire("t")
		if err != nil {
			b.Fatal(err)
		}
		s.Release()
	}
}
