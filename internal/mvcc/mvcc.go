// Package mvcc is the version-store subsystem that unhooks readers
// from writers: every read statement (and every vertex-centric
// superstep batch) pins an immutable Snapshot of the catalog's tables
// and drains it with no engine latch held, while writers keep mutating
// the live tables — copy-on-write at the column level (see
// storage.Table.Snapshot) guarantees a pinned snapshot never changes.
// This is the reproduction's analogue of Vertica running queries
// against consistent snapshots, which the paper leans on to mix graph
// analytics with continuous updates.
//
// The Manager also owns transaction visibility: an open transaction
// stages a pre-image snapshot of every table it touches (version swap,
// replacing the old deep-copy undo images), readers resolve staged
// tables to their pre-images so uncommitted work is invisible
// (snapshot isolation, not read-uncommitted), commit publishes the new
// versions atomically by discarding the overlay and bumping the
// epoch, and rollback restores the pre-images — an O(columns) pointer
// swap per table, not an O(rows) copy.
//
// Locking contract: Begin/Stage*/Commit/Rollback run on the writer
// path and must be called under the engine's exclusive latch;
// Acquire's table resolution must complete under (at least) the shared
// latch — the engine resolves during planning and then Seals the
// handle before releasing the latch. Release and the gauges are
// latch-free. The Manager carries its own internal locks as well, so
// misuse degrades to stale reads, never to data races.
package mvcc

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/catalog"
	"repro/internal/storage"
)

// Manager hands out per-statement snapshots over a catalog, tracks
// live readers, and stages transaction pre-images.
type Manager struct {
	cat *catalog.Catalog

	// latch guards the overlay. The engine's statement latch already
	// serializes stagers against resolvers; this inner lock keeps the
	// Manager self-consistent even without it.
	latch   sync.RWMutex
	txnOpen bool
	// overlay maps (lower-cased) table names touched by the open
	// transaction to their committed pre-image. A nil value records
	// that the table did not exist when the transaction first touched
	// the name (it was created inside the transaction).
	overlay map[string]*storage.Snapshot

	mu      sync.Mutex // guards the reader/epoch bookkeeping below
	epoch   uint64     // bumped on every publish (commit or auto-commit write)
	readers map[uint64]int
	live    int
	peak    int
}

// NewManager returns a manager over the catalog.
func NewManager(cat *catalog.Catalog) *Manager {
	return &Manager{cat: cat, readers: make(map[uint64]int)}
}

func key(name string) string { return strings.ToLower(name) }

// Begin opens a transaction scope. Nested transactions are rejected.
func (m *Manager) Begin() error {
	m.latch.Lock()
	defer m.latch.Unlock()
	if m.txnOpen {
		return fmt.Errorf("mvcc: transaction already open")
	}
	m.txnOpen = true
	m.overlay = make(map[string]*storage.Snapshot)
	return nil
}

// InTransaction reports whether a transaction scope is open.
func (m *Manager) InTransaction() bool {
	m.latch.RLock()
	defer m.latch.RUnlock()
	return m.txnOpen
}

// StageWrite records the pre-image of a table about to be mutated
// inside the open transaction (first touch only — O(columns), the
// copy-on-write machinery does the rest). A no-op outside a
// transaction: auto-commit statements publish directly.
func (m *Manager) StageWrite(t *storage.Table) {
	m.latch.Lock()
	defer m.latch.Unlock()
	if !m.txnOpen {
		return
	}
	k := key(t.Name())
	if _, ok := m.overlay[k]; !ok {
		m.overlay[k] = t.Snapshot()
	}
}

// StageCreate records that the named table is being created inside the
// open transaction: readers must not see it, and rollback drops it.
func (m *Manager) StageCreate(name string) {
	m.latch.Lock()
	defer m.latch.Unlock()
	if !m.txnOpen {
		return
	}
	k := key(name)
	if _, ok := m.overlay[k]; !ok {
		m.overlay[k] = nil // did not exist at first touch
	}
}

// StageDrop records the pre-image of a table being dropped inside the
// open transaction: readers keep seeing it, and rollback re-registers
// it.
func (m *Manager) StageDrop(t *storage.Table) {
	m.StageWrite(t)
}

// Commit publishes the transaction's versions atomically: the overlay
// is discarded (readers now resolve the live tables) and the epoch
// advances. Callers hold the engine's exclusive latch, so no reader
// can be mid-resolution.
func (m *Manager) Commit() error {
	m.latch.Lock()
	if !m.txnOpen {
		m.latch.Unlock()
		return fmt.Errorf("mvcc: no open transaction")
	}
	m.txnOpen = false
	m.overlay = nil
	m.latch.Unlock()
	m.Publish()
	return nil
}

// Rollback restores every staged table to its pre-image: a version
// swap per table (RestoreSnapshot / TableFromSnapshot), not a data
// copy. Tables created inside the transaction are dropped; tables
// dropped inside it are re-registered.
func (m *Manager) Rollback() error {
	m.latch.Lock()
	defer m.latch.Unlock()
	if !m.txnOpen {
		return fmt.Errorf("mvcc: no open transaction")
	}
	for k, pre := range m.overlay {
		if pre == nil {
			// Created inside the transaction: remove (it may already be
			// gone if the transaction also dropped it).
			if m.cat.Has(k) {
				_ = m.cat.Drop(k)
			}
			continue
		}
		if t, err := m.cat.Get(k); err == nil && t.Schema().Equal(pre.Schema()) {
			t.RestoreSnapshot(pre)
		} else {
			// Dropped (or recreated with another shape) inside the
			// transaction: reinstall a table built from the pre-image.
			m.cat.Put(storage.TableFromSnapshot(pre))
		}
	}
	m.txnOpen = false
	m.overlay = nil
	return nil
}

// Publish advances the commit epoch — called after every auto-commit
// write statement (Commit calls it itself). The epoch labels reader
// pins; it is bookkeeping for the garbage-collection follow-up, not a
// correctness input.
func (m *Manager) Publish() {
	m.mu.Lock()
	m.epoch++
	m.mu.Unlock()
}

// Acquire pins a new reader snapshot at the current epoch and eagerly
// resolves the given table names (callers that resolve lazily during
// planning pass none). Resolution must finish under the engine's
// shared latch; Seal the handle when the latch is released.
func (m *Manager) Acquire(names ...string) (*Snapshot, error) {
	return m.acquire(false, names)
}

// AcquireOwn is Acquire for the transaction owner's own reads: staged
// tables resolve to their live (uncommitted) contents instead of their
// pre-images, so a transaction reads its own writes while everyone
// else keeps reading the committed versions.
func (m *Manager) AcquireOwn(names ...string) (*Snapshot, error) {
	return m.acquire(true, names)
}

func (m *Manager) acquire(own bool, names []string) (*Snapshot, error) {
	m.mu.Lock()
	m.live++
	if m.live > m.peak {
		m.peak = m.live
	}
	m.readers[m.epoch]++
	s := &Snapshot{m: m, epoch: m.epoch, own: own, tables: make(map[string]*storage.Snapshot)}
	m.mu.Unlock()
	for _, n := range names {
		if _, err := s.Table(n); err != nil {
			s.Release()
			return nil, err
		}
	}
	return s, nil
}

// resolve returns the committed view of a table: the open
// transaction's pre-image if the table is staged, otherwise a fresh
// copy-on-write snapshot of the live table. With own set, the overlay
// is skipped — the transaction owner reads its own writes.
func (m *Manager) resolve(name string, own bool) (*storage.Snapshot, error) {
	if !own {
		m.latch.RLock()
		pre, staged := m.overlay[key(name)]
		m.latch.RUnlock()
		if staged {
			if pre == nil {
				return nil, fmt.Errorf("mvcc: no table %q", name)
			}
			return pre, nil
		}
	}
	t, err := m.cat.Get(name)
	if err != nil {
		return nil, err
	}
	return t.Snapshot(), nil
}

// release returns a reader pin.
func (m *Manager) release(epoch uint64) {
	m.mu.Lock()
	m.live--
	if m.readers[epoch]--; m.readers[epoch] <= 0 {
		delete(m.readers, epoch)
	}
	m.mu.Unlock()
}

// Epoch returns the current commit epoch.
func (m *Manager) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// LiveReaders returns the number of currently pinned snapshots.
func (m *Manager) LiveReaders() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.live
}

// PeakReaders returns the high-water mark of concurrently pinned
// snapshots.
func (m *Manager) PeakReaders() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peak
}

// OldestPinnedEpoch returns the lowest epoch any live reader is pinned
// at (ok == false when no reader is live) — the input a future
// version-garbage collector needs.
func (m *Manager) OldestPinnedEpoch() (uint64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var min uint64
	found := false
	for e := range m.readers {
		if !found || e < min {
			min, found = e, true
		}
	}
	return min, found
}

// Snapshot is one reader's pinned, consistent view. Table resolution
// caches per handle, so a statement that references a table twice sees
// the same version; after Seal, unresolved names are errors rather
// than racy live reads.
//
// A Snapshot is resolved by one goroutine (the planner) but may be
// read by many executor workers afterwards; the internal lock covers
// the resolution cache only.
type Snapshot struct {
	m     *Manager
	epoch uint64
	own   bool // transaction owner: resolve staged tables live

	mu       sync.Mutex
	tables   map[string]*storage.Snapshot
	sealed   bool
	released bool
}

// Table resolves the committed view of a table, caching the result so
// repeated references agree. On a sealed handle only cached entries
// are served — resolution requires the engine latch the sealer has
// already given up.
func (s *Snapshot) Table(name string) (storage.TableData, error) {
	k := key(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tables[k]; ok {
		return t, nil
	}
	if s.sealed {
		return nil, fmt.Errorf("mvcc: table %q not pinned by this snapshot", name)
	}
	t, err := s.m.resolve(name, s.own)
	if err != nil {
		return nil, err
	}
	s.tables[k] = t
	return t, nil
}

// Seal freezes the handle's table set. The engine calls it when the
// shared latch is released: everything the statement reads is resolved
// by then, and any later (buggy) resolution attempt fails loudly
// instead of reading a torn live table.
func (s *Snapshot) Seal() {
	s.mu.Lock()
	s.sealed = true
	s.mu.Unlock()
}

// Epoch returns the commit epoch the snapshot is pinned at.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Release unpins the snapshot (idempotent, latch-free). Streaming
// results call it when the stream finishes.
func (s *Snapshot) Release() {
	s.mu.Lock()
	done := s.released
	s.released = true
	s.mu.Unlock()
	if !done {
		s.m.release(s.epoch)
	}
}
