// Package mvcc is the version-store subsystem that unhooks readers
// from writers: every read statement (and every vertex-centric
// superstep batch) pins an immutable Snapshot of the catalog's tables
// and drains it with no engine latch held, while writers keep mutating
// the live tables — copy-on-write at the column level (see
// storage.Table.Snapshot) guarantees a pinned snapshot never changes.
// This is the reproduction's analogue of Vertica running queries
// against consistent snapshots, which the paper leans on to mix graph
// analytics with continuous updates.
//
// The Manager also owns transaction visibility: an open transaction
// stages a pre-image snapshot of every table it touches (version swap,
// replacing the old deep-copy undo images), readers resolve staged
// tables to their pre-images so uncommitted work is invisible
// (snapshot isolation, not read-uncommitted), commit publishes the new
// versions atomically by discarding the overlay and bumping the
// epoch, and rollback restores the pre-images — an O(columns) pointer
// swap per table, not an O(rows) copy.
//
// Locking contract: Begin/Stage*/Commit/Rollback run on the writer
// path and must be called under the engine's exclusive latch;
// Acquire's table resolution must complete under (at least) the shared
// latch — the engine resolves during planning and then Seals the
// handle before releasing the latch. Release and the gauges are
// latch-free. The Manager carries its own internal locks as well, so
// misuse degrades to stale reads, never to data races.
package mvcc

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/catalog"
	"repro/internal/storage"
)

// Manager hands out per-statement snapshots over a catalog, tracks
// live readers, and stages transaction pre-images.
type Manager struct {
	cat *catalog.Catalog

	// latch guards the overlay. The engine's statement latch already
	// serializes stagers against resolvers; this inner lock keeps the
	// Manager self-consistent even without it.
	latch   sync.RWMutex
	txnOpen bool
	// overlay maps (lower-cased) table names touched by the open
	// transaction to their per-shard pre-images. A nil value records
	// that the table did not exist when the transaction first touched
	// the name (it was created inside the transaction).
	overlay map[string]*preImage

	mu      sync.Mutex // guards the reader/epoch bookkeeping below
	epoch   uint64     // bumped on every publish (commit or auto-commit write)
	readers map[uint64]int
	live    int
	peak    int
}

// NewManager returns a manager over the catalog.
func NewManager(cat *catalog.Catalog) *Manager {
	return &Manager{cat: cat, readers: make(map[uint64]int)}
}

func key(name string) string { return strings.ToLower(name) }

// preImage is the staged pre-image of one table: the shape captured at
// first touch plus one frozen view per shard, staged lazily — a
// shard's slot stays nil until the transaction first touches that
// shard. Rollback restores (and resolve composes) shard by shard.
type preImage struct {
	name    string // original-cased table name
	schema  storage.Schema
	keyCol  int
	nShards int
	sortKey []int
	views   []*storage.ShardView
}

// staged reports whether every shard has a staged view.
func (p *preImage) full() bool {
	for _, v := range p.views {
		if v == nil {
			return false
		}
	}
	return true
}

// snapshot composes the pre-image into a whole-table snapshot, filling
// unstaged shard slots from the live table (an unstaged shard is by
// definition untouched by the transaction, so its live view IS the
// pre-transaction view). t may be nil only when the image is full.
func (p *preImage) snapshot(t *storage.Table) *storage.Snapshot {
	views := make([]*storage.ShardView, len(p.views))
	for i, v := range p.views {
		if v == nil {
			v = t.SnapshotShard(i)
		}
		views[i] = v
	}
	return storage.NewSnapshotFromViews(p.name, p.schema, p.keyCol, p.sortKey, views)
}

// Begin opens a transaction scope. Nested transactions are rejected.
func (m *Manager) Begin() error {
	m.latch.Lock()
	defer m.latch.Unlock()
	if m.txnOpen {
		return fmt.Errorf("mvcc: transaction already open")
	}
	m.txnOpen = true
	m.overlay = make(map[string]*preImage)
	return nil
}

// InTransaction reports whether a transaction scope is open.
func (m *Manager) InTransaction() bool {
	m.latch.RLock()
	defer m.latch.RUnlock()
	return m.txnOpen
}

// StageWrite records the pre-image of a table about to be mutated
// inside the open transaction: every not-yet-staged shard gets its
// frozen view staged (first touch per shard only — O(columns), the
// copy-on-write machinery does the rest). A no-op outside a
// transaction: auto-commit statements publish directly.
func (m *Manager) StageWrite(t *storage.Table) {
	m.StageWriteShards(t, nil)
}

// StageWriteShards stages pre-images for just the given shards of a
// table the open transaction is about to mutate (nil means all
// shards). Statements whose shard footprint is known — a point UPDATE
// on the partition key — stage only what they touch; later statements
// widen the staged set incrementally.
func (m *Manager) StageWriteShards(t *storage.Table, shards []int) {
	m.latch.Lock()
	defer m.latch.Unlock()
	if !m.txnOpen {
		return
	}
	k := key(t.Name())
	pre, ok := m.overlay[k]
	if ok && pre == nil {
		// Created inside the transaction: there is no pre-image to stage.
		return
	}
	if !ok {
		pre = &preImage{
			name:    t.Name(),
			schema:  t.Schema(),
			keyCol:  t.ShardKey(),
			nShards: t.NumShards(),
			sortKey: t.SortKey(),
			views:   make([]*storage.ShardView, t.NumShards()),
		}
		m.overlay[k] = pre
	}
	if pre.nShards != t.NumShards() || !pre.schema.Equal(t.Schema()) {
		// The name was dropped and recreated with another shape inside
		// the transaction; the original (fully staged) pre-image stands.
		return
	}
	if shards == nil {
		for i := range pre.views {
			if pre.views[i] == nil {
				pre.views[i] = t.SnapshotShard(i)
			}
		}
		return
	}
	for _, i := range shards {
		if i >= 0 && i < len(pre.views) && pre.views[i] == nil {
			pre.views[i] = t.SnapshotShard(i)
		}
	}
}

// StageCreate records that the named table is being created inside the
// open transaction: readers must not see it, and rollback drops it.
func (m *Manager) StageCreate(name string) {
	m.latch.Lock()
	defer m.latch.Unlock()
	if !m.txnOpen {
		return
	}
	k := key(name)
	if _, ok := m.overlay[k]; !ok {
		m.overlay[k] = nil // did not exist at first touch
	}
}

// StageDrop records the pre-image of a table being dropped inside the
// open transaction: readers keep seeing it, and rollback re-registers
// it.
func (m *Manager) StageDrop(t *storage.Table) {
	m.StageWrite(t)
}

// Commit publishes the transaction's versions atomically: the overlay
// is discarded (readers now resolve the live tables) and the epoch
// advances. Callers hold the engine's exclusive latch, so no reader
// can be mid-resolution.
func (m *Manager) Commit() error {
	m.latch.Lock()
	if !m.txnOpen {
		m.latch.Unlock()
		return fmt.Errorf("mvcc: no open transaction")
	}
	m.txnOpen = false
	m.overlay = nil
	m.latch.Unlock()
	m.Publish()
	return nil
}

// Rollback restores every staged table to its pre-image shard by
// shard: a version swap per touched shard (RestoreShard /
// TableFromSnapshot), not a data copy — shards whose version counter
// never moved are skipped entirely. Tables created inside the
// transaction are dropped; tables dropped inside it are re-registered.
func (m *Manager) Rollback() error {
	m.latch.Lock()
	defer m.latch.Unlock()
	if !m.txnOpen {
		return fmt.Errorf("mvcc: no open transaction")
	}
	for k, pre := range m.overlay {
		if pre == nil {
			// Created inside the transaction: remove (it may already be
			// gone if the transaction also dropped it).
			if m.cat.Has(k) {
				_ = m.cat.Drop(k)
			}
			continue
		}
		t, err := m.cat.Get(k)
		if err == nil && t.Schema().Equal(pre.schema) &&
			t.NumShards() == pre.nShards && t.ShardKey() == pre.keyCol {
			for i, v := range pre.views {
				if v != nil && t.ShardVersion(i) != v.Version() {
					t.RestoreShard(i, v)
				}
			}
			continue
		}
		// Dropped (or recreated with another shape) inside the
		// transaction: reinstall a table built from the pre-image. DDL
		// stages every shard, so the image is full here.
		m.cat.Put(storage.TableFromSnapshot(pre.snapshot(nil)))
	}
	m.txnOpen = false
	m.overlay = nil
	return nil
}

// Publish advances the commit epoch — called after every auto-commit
// write statement (Commit calls it itself). The epoch labels reader
// pins; it is bookkeeping for the garbage-collection follow-up, not a
// correctness input.
func (m *Manager) Publish() {
	m.mu.Lock()
	m.epoch++
	m.mu.Unlock()
}

// Acquire pins a new reader snapshot at the current epoch and eagerly
// resolves the given table names (callers that resolve lazily during
// planning pass none). Resolution must finish under the engine's
// shared latch; Seal the handle when the latch is released.
func (m *Manager) Acquire(names ...string) (*Snapshot, error) {
	return m.acquire(false, names)
}

// AcquireOwn is Acquire for the transaction owner's own reads: staged
// tables resolve to their live (uncommitted) contents instead of their
// pre-images, so a transaction reads its own writes while everyone
// else keeps reading the committed versions.
func (m *Manager) AcquireOwn(names ...string) (*Snapshot, error) {
	return m.acquire(true, names)
}

func (m *Manager) acquire(own bool, names []string) (*Snapshot, error) {
	m.mu.Lock()
	m.live++
	if m.live > m.peak {
		m.peak = m.live
	}
	m.readers[m.epoch]++
	s := &Snapshot{m: m, epoch: m.epoch, own: own, tables: make(map[string]*storage.Snapshot)}
	m.mu.Unlock()
	for _, n := range names {
		if _, err := s.Table(n); err != nil {
			s.Release()
			return nil, err
		}
	}
	return s, nil
}

// resolve returns the committed view of a table: a composition of the
// open transaction's staged per-shard pre-images (unstaged shards fall
// through to their live views — they are untouched by definition) if
// the table is staged, otherwise a fresh copy-on-write snapshot of the
// live table. With own set, the overlay is skipped — the transaction
// owner reads its own writes.
func (m *Manager) resolve(name string, own bool) (*storage.Snapshot, error) {
	if !own {
		m.latch.RLock()
		pre, staged := m.overlay[key(name)]
		m.latch.RUnlock()
		if staged {
			if pre == nil {
				return nil, fmt.Errorf("mvcc: no table %q", name)
			}
			if pre.full() {
				return pre.snapshot(nil), nil
			}
			t, err := m.cat.Get(name)
			if err != nil {
				return nil, err
			}
			return pre.snapshot(t), nil
		}
	}
	t, err := m.cat.Get(name)
	if err != nil {
		return nil, err
	}
	return t.Snapshot(), nil
}

// release returns a reader pin.
func (m *Manager) release(epoch uint64) {
	m.mu.Lock()
	m.live--
	if m.readers[epoch]--; m.readers[epoch] <= 0 {
		delete(m.readers, epoch)
	}
	m.mu.Unlock()
}

// Epoch returns the current commit epoch.
func (m *Manager) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// LiveReaders returns the number of currently pinned snapshots.
func (m *Manager) LiveReaders() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.live
}

// PeakReaders returns the high-water mark of concurrently pinned
// snapshots.
func (m *Manager) PeakReaders() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peak
}

// OldestPinnedEpoch returns the lowest epoch any live reader is pinned
// at (ok == false when no reader is live) — the input a future
// version-garbage collector needs.
func (m *Manager) OldestPinnedEpoch() (uint64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var min uint64
	found := false
	for e := range m.readers {
		if !found || e < min {
			min, found = e, true
		}
	}
	return min, found
}

// Snapshot is one reader's pinned, consistent view. Table resolution
// caches per handle, so a statement that references a table twice sees
// the same version; after Seal, unresolved names are errors rather
// than racy live reads.
//
// A Snapshot is resolved by one goroutine (the planner) but may be
// read by many executor workers afterwards; the internal lock covers
// the resolution cache only.
type Snapshot struct {
	m     *Manager
	epoch uint64
	own   bool // transaction owner: resolve staged tables live

	mu       sync.Mutex
	tables   map[string]*storage.Snapshot
	sealed   bool
	released bool
}

// Table resolves the committed view of a table, caching the result so
// repeated references agree. On a sealed handle only cached entries
// are served — resolution requires the engine latch the sealer has
// already given up.
func (s *Snapshot) Table(name string) (storage.TableData, error) {
	k := key(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tables[k]; ok {
		return t, nil
	}
	if s.sealed {
		return nil, fmt.Errorf("mvcc: table %q not pinned by this snapshot", name)
	}
	t, err := s.m.resolve(name, s.own)
	if err != nil {
		return nil, err
	}
	s.tables[k] = t
	return t, nil
}

// Seal freezes the handle's table set. The engine calls it when the
// shared latch is released: everything the statement reads is resolved
// by then, and any later (buggy) resolution attempt fails loudly
// instead of reading a torn live table.
func (s *Snapshot) Seal() {
	s.mu.Lock()
	s.sealed = true
	s.mu.Unlock()
}

// Epoch returns the commit epoch the snapshot is pinned at.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Release unpins the snapshot (idempotent, latch-free). Streaming
// results call it when the stream finishes.
func (s *Snapshot) Release() {
	s.mu.Lock()
	done := s.released
	s.released = true
	s.mu.Unlock()
	if !done {
		s.m.release(s.epoch)
	}
}
