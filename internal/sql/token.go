// Package sql implements the SQL front end of the engine: a lexer, an
// AST, a recursive-descent parser for the dialect the Vertexica layer
// generates, and an AST printer (so parse→print→parse round-trips,
// which the property tests rely on).
//
// Supported statements: SELECT (joins, comma cross-joins, WHERE,
// GROUP BY/HAVING, ORDER BY, LIMIT/OFFSET, DISTINCT, UNION ALL, WITH
// CTEs, derived tables), INSERT (VALUES and SELECT forms), UPDATE,
// DELETE, CREATE TABLE, DROP TABLE, TRUNCATE, EXPLAIN [ANALYZE]
// <statement>, and the session-control statements BEGIN / COMMIT /
// ROLLBACK / SET <var> = <expr> / SHOW <var>.
package sql

import "fmt"

// TokenKind classifies lexer tokens.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokSymbol
	TokParam // $1, $2, ... — positional parameter placeholder
)

// Token is one lexical token with its source position (1-based).
type Token struct {
	Kind TokenKind
	Text string // normalized: keywords upper-cased, idents as written
	Pos  int    // byte offset in the input
	Line int
	Col  int
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return t.Text
	}
}

// keywords is the reserved-word list. Identifiers matching these (case-
// insensitively) lex as TokKeyword.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"OFFSET": true, "AS": true, "AND": true, "OR": true, "NOT": true,
	"NULL": true, "TRUE": true, "FALSE": true, "IN": true, "IS": true,
	"LIKE": true, "BETWEEN": true, "CASE": true, "WHEN": true, "THEN": true,
	"ELSE": true, "END": true, "CAST": true, "JOIN": true, "INNER": true,
	"LEFT": true, "RIGHT": true, "FULL": true, "OUTER": true, "CROSS": true,
	"ON": true, "UNION": true, "ALL": true, "DISTINCT": true, "WITH": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "CREATE": true, "TABLE": true, "DROP": true, "IF": true,
	"EXISTS": true, "TRUNCATE": true, "INTEGER": true, "BIGINT": true,
	"DOUBLE": true, "FLOAT": true, "VARCHAR": true, "TEXT": true,
	"BOOLEAN": true, "PRECISION": true, "BEGIN": true, "COMMIT": true,
	"ROLLBACK": true, "SHOW": true, "PARTITION": true, "HASH": true,
	"SHARDS": true, "EXPLAIN": true, "ANALYZE": true,
}

// IsKeyword reports whether word (already upper-cased) is a reserved
// word of the dialect. The plan-cache fingerprint uses it to case-fold
// keywords without touching identifiers or literals.
func IsKeyword(upper string) bool { return keywords[upper] }

// symbols lists multi-char symbols first so the lexer prefers the
// longest match.
var symbols = []string{
	"<>", "!=", "<=", ">=", "||", "(", ")", ",", ".", "*", "/", "%",
	"+", "-", "=", "<", ">", ";",
}
