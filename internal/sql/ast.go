package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Statement is any parsed SQL statement. String renders it back to SQL
// (round-trippable through the parser).
type Statement interface {
	String() string
	stmt()
}

// Expr is an unbound (pre-planning) expression AST node.
type Expr interface {
	String() string
	expr()
}

// --- expressions ---

// Ident is a possibly qualified column reference (t.c or c).
type Ident struct {
	Qualifier string // "" if unqualified
	Name      string
}

func (*Ident) expr() {}

// String implements Expr.
func (e *Ident) String() string {
	if e.Qualifier != "" {
		return e.Qualifier + "." + e.Name
	}
	return e.Name
}

// IntLit is an integer literal.
type IntLit struct{ V int64 }

func (*IntLit) expr() {}

// String implements Expr.
func (e *IntLit) String() string { return strconv.FormatInt(e.V, 10) }

// FloatLit is a floating-point literal.
type FloatLit struct{ V float64 }

func (*FloatLit) expr() {}

// String implements Expr.
func (e *FloatLit) String() string {
	s := strconv.FormatFloat(e.V, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0" // keep it lexing as a float on round trip
	}
	return s
}

// StringLit is a string literal.
type StringLit struct{ V string }

func (*StringLit) expr() {}

// String implements Expr.
func (e *StringLit) String() string {
	return "'" + strings.ReplaceAll(e.V, "'", "''") + "'"
}

// BoolLit is TRUE or FALSE.
type BoolLit struct{ V bool }

func (*BoolLit) expr() {}

// String implements Expr.
func (e *BoolLit) String() string {
	if e.V {
		return "TRUE"
	}
	return "FALSE"
}

// Param is a positional parameter placeholder ($1, $2, ...). N is
// 1-based; the value arrives at bind time, after parsing and planning.
type Param struct{ N int }

func (*Param) expr() {}

// String implements Expr.
func (e *Param) String() string { return "$" + strconv.Itoa(e.N) }

// NullLit is the NULL literal.
type NullLit struct{}

func (*NullLit) expr() {}

// String implements Expr.
func (*NullLit) String() string { return "NULL" }

// BinExpr is a binary operation; Op is the SQL spelling (+, -, AND, ...).
type BinExpr struct {
	Op   string
	L, R Expr
}

func (*BinExpr) expr() {}

// String implements Expr.
func (e *BinExpr) String() string { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }

// UnExpr is NOT or unary minus.
type UnExpr struct {
	Op string // "NOT" or "-"
	E  Expr
}

func (*UnExpr) expr() {}

// String implements Expr.
func (e *UnExpr) String() string {
	if e.Op == "NOT" {
		return fmt.Sprintf("(NOT %s)", e.E)
	}
	return fmt.Sprintf("(-%s)", e.E)
}

// FuncExpr is a function or aggregate call. Star marks COUNT(*).
type FuncExpr struct {
	Name     string
	Args     []Expr
	Star     bool
	Distinct bool
}

func (*FuncExpr) expr() {}

// String implements Expr.
func (e *FuncExpr) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return fmt.Sprintf("%s(%s%s)", e.Name, d, strings.Join(parts, ", "))
}

// CaseExpr is a searched CASE.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr // may be nil
}

// CaseWhen is one WHEN/THEN arm.
type CaseWhen struct {
	Cond Expr
	Then Expr
}

func (*CaseExpr) expr() {}

// String implements Expr.
func (e *CaseExpr) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range e.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.Cond, w.Then)
	}
	if e.Else != nil {
		fmt.Fprintf(&b, " ELSE %s", e.Else)
	}
	b.WriteString(" END")
	return b.String()
}

// IsNullExpr is `x IS [NOT] NULL`.
type IsNullExpr struct {
	E   Expr
	Not bool
}

func (*IsNullExpr) expr() {}

// String implements Expr.
func (e *IsNullExpr) String() string {
	if e.Not {
		return fmt.Sprintf("(%s IS NOT NULL)", e.E)
	}
	return fmt.Sprintf("(%s IS NULL)", e.E)
}

// InExpr is `x [NOT] IN (list)`.
type InExpr struct {
	E    Expr
	List []Expr
	Not  bool
}

func (*InExpr) expr() {}

// String implements Expr.
func (e *InExpr) String() string {
	parts := make([]string, len(e.List))
	for i, a := range e.List {
		parts[i] = a.String()
	}
	op := "IN"
	if e.Not {
		op = "NOT IN"
	}
	return fmt.Sprintf("(%s %s (%s))", e.E, op, strings.Join(parts, ", "))
}

// LikeExpr is `x [NOT] LIKE pattern`.
type LikeExpr struct {
	E, Pattern Expr
	Not        bool
}

func (*LikeExpr) expr() {}

// String implements Expr.
func (e *LikeExpr) String() string {
	op := "LIKE"
	if e.Not {
		op = "NOT LIKE"
	}
	return fmt.Sprintf("(%s %s %s)", e.E, op, e.Pattern)
}

// CastExpr is CAST(x AS TYPE).
type CastExpr struct {
	E        Expr
	TypeName string // normalized: INTEGER, DOUBLE, VARCHAR, BOOLEAN
}

func (*CastExpr) expr() {}

// String implements Expr.
func (e *CastExpr) String() string { return fmt.Sprintf("CAST(%s AS %s)", e.E, e.TypeName) }

// --- SELECT ---

// CTE is one WITH binding.
type CTE struct {
	Name   string
	Select *SelectStmt
}

// OrderItem is one ORDER BY criterion.
type OrderItem struct {
	E    Expr
	Desc bool
}

// SelectItem is one projection item. Star renders `*` (or `t.*` when
// StarTable is set).
type SelectItem struct {
	Star      bool
	StarTable string
	E         Expr
	Alias     string
}

// JoinKind enumerates join types.
type JoinKind uint8

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinCross
)

// String renders the join keyword.
func (k JoinKind) String() string {
	switch k {
	case JoinInner:
		return "JOIN"
	case JoinLeft:
		return "LEFT JOIN"
	case JoinCross:
		return "CROSS JOIN"
	default:
		return "JOIN"
	}
}

// TableRef is a FROM-clause item.
type TableRef interface {
	String() string
	tableRef()
}

// BaseTable references a named table, optionally aliased.
type BaseTable struct {
	Name  string
	Alias string
}

func (*BaseTable) tableRef() {}

// String implements TableRef.
func (t *BaseTable) String() string {
	if t.Alias != "" {
		return t.Name + " AS " + t.Alias
	}
	return t.Name
}

// DerivedTable is a parenthesized subquery with a mandatory alias.
type DerivedTable struct {
	Select *SelectStmt
	Alias  string
}

func (*DerivedTable) tableRef() {}

// String implements TableRef.
func (t *DerivedTable) String() string {
	return "(" + t.Select.String() + ") AS " + t.Alias
}

// JoinTable is an explicit join between two table refs.
type JoinTable struct {
	Left, Right TableRef
	Kind        JoinKind
	On          Expr // nil for CROSS JOIN
}

func (*JoinTable) tableRef() {}

// String implements TableRef.
func (t *JoinTable) String() string {
	s := t.Left.String() + " " + t.Kind.String() + " " + t.Right.String()
	if t.On != nil {
		s += " ON " + t.On.String()
	}
	return s
}

// SelectCore is one SELECT ... FROM ... block (no ORDER BY/LIMIT, which
// attach to the whole statement).
type SelectCore struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef // comma-separated list; empty means SELECT without FROM
	Where    Expr
	GroupBy  []Expr
	Having   Expr
}

// String renders the core as SQL.
func (c *SelectCore) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if c.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range c.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case it.Star && it.StarTable != "":
			b.WriteString(it.StarTable + ".*")
		case it.Star:
			b.WriteString("*")
		default:
			b.WriteString(it.E.String())
			if it.Alias != "" {
				b.WriteString(" AS " + it.Alias)
			}
		}
	}
	if len(c.From) > 0 {
		b.WriteString(" FROM ")
		for i, f := range c.From {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(f.String())
		}
	}
	if c.Where != nil {
		b.WriteString(" WHERE " + c.Where.String())
	}
	if len(c.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range c.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if c.Having != nil {
		b.WriteString(" HAVING " + c.Having.String())
	}
	return b.String()
}

// SelectStmt is a full select: optional CTEs, one or more cores joined
// by UNION ALL, and statement-level ORDER BY/LIMIT/OFFSET.
type SelectStmt struct {
	With    []CTE
	Cores   []*SelectCore
	OrderBy []OrderItem
	Limit   *int64
	Offset  *int64
}

func (*SelectStmt) stmt() {}

// String implements Statement.
func (s *SelectStmt) String() string {
	var b strings.Builder
	if len(s.With) > 0 {
		b.WriteString("WITH ")
		for i, c := range s.With {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.Name + " AS (" + c.Select.String() + ")")
		}
		b.WriteString(" ")
	}
	for i, c := range s.Cores {
		if i > 0 {
			b.WriteString(" UNION ALL ")
		}
		b.WriteString(c.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.E.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit != nil {
		fmt.Fprintf(&b, " LIMIT %d", *s.Limit)
	}
	if s.Offset != nil {
		fmt.Fprintf(&b, " OFFSET %d", *s.Offset)
	}
	return b.String()
}

// --- DML / DDL ---

// InsertStmt inserts literal rows or the result of a select.
type InsertStmt struct {
	Table   string
	Columns []string // empty = schema order
	Rows    [][]Expr // VALUES form
	Select  *SelectStmt
}

func (*InsertStmt) stmt() {}

// String implements Statement.
func (s *InsertStmt) String() string {
	var b strings.Builder
	b.WriteString("INSERT INTO " + s.Table)
	if len(s.Columns) > 0 {
		b.WriteString(" (" + strings.Join(s.Columns, ", ") + ")")
	}
	if s.Select != nil {
		b.WriteString(" " + s.Select.String())
		return b.String()
	}
	b.WriteString(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		parts := make([]string, len(row))
		for j, e := range row {
			parts[j] = e.String()
		}
		b.WriteString("(" + strings.Join(parts, ", ") + ")")
	}
	return b.String()
}

// Assignment is one SET clause of an UPDATE.
type Assignment struct {
	Column string
	E      Expr
}

// UpdateStmt updates rows matching Where.
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where Expr
}

func (*UpdateStmt) stmt() {}

// String implements Statement.
func (s *UpdateStmt) String() string {
	var b strings.Builder
	b.WriteString("UPDATE " + s.Table + " SET ")
	for i, a := range s.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Column + " = " + a.E.String())
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	return b.String()
}

// DeleteStmt deletes rows matching Where (all rows if nil).
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*DeleteStmt) stmt() {}

// String implements Statement.
func (s *DeleteStmt) String() string {
	out := "DELETE FROM " + s.Table
	if s.Where != nil {
		out += " WHERE " + s.Where.String()
	}
	return out
}

// ColumnSpec is one column of a CREATE TABLE.
type ColumnSpec struct {
	Name     string
	TypeName string
	NotNull  bool
}

// CreateTableStmt creates a table. PartitionBy names the hash-partition
// column when the statement carries a PARTITION BY HASH(col) clause;
// Shards is the requested shard count (0 = engine default).
type CreateTableStmt struct {
	Name        string
	IfNotExists bool
	Cols        []ColumnSpec
	PartitionBy string
	Shards      int
}

func (*CreateTableStmt) stmt() {}

// String implements Statement.
func (s *CreateTableStmt) String() string {
	var b strings.Builder
	b.WriteString("CREATE TABLE ")
	if s.IfNotExists {
		b.WriteString("IF NOT EXISTS ")
	}
	b.WriteString(s.Name + " (")
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name + " " + c.TypeName)
		if c.NotNull {
			b.WriteString(" NOT NULL")
		}
	}
	b.WriteString(")")
	if s.PartitionBy != "" {
		b.WriteString(" PARTITION BY HASH(" + s.PartitionBy + ")")
		if s.Shards > 0 {
			b.WriteString(" SHARDS " + strconv.Itoa(s.Shards))
		}
	}
	return b.String()
}

// DropTableStmt drops a table.
type DropTableStmt struct {
	Name     string
	IfExists bool
}

func (*DropTableStmt) stmt() {}

// String implements Statement.
func (s *DropTableStmt) String() string {
	if s.IfExists {
		return "DROP TABLE IF EXISTS " + s.Name
	}
	return "DROP TABLE " + s.Name
}

// TruncateStmt removes all rows from a table.
type TruncateStmt struct {
	Name string
}

func (*TruncateStmt) stmt() {}

// String implements Statement.
func (s *TruncateStmt) String() string { return "TRUNCATE " + s.Name }

// --- session control ---

// BeginStmt opens a transaction.
type BeginStmt struct{}

func (*BeginStmt) stmt() {}

// String implements Statement.
func (*BeginStmt) String() string { return "BEGIN" }

// CommitStmt commits the open transaction.
type CommitStmt struct{}

func (*CommitStmt) stmt() {}

// String implements Statement.
func (*CommitStmt) String() string { return "COMMIT" }

// RollbackStmt rolls back the open transaction.
type RollbackStmt struct{}

func (*RollbackStmt) stmt() {}

// String implements Statement.
func (*RollbackStmt) String() string { return "ROLLBACK" }

// SetStmt assigns a session variable (SET statement_timeout = 500).
// The value is an expression so numeric and string settings parse
// uniformly; sessions evaluate it against an empty scope.
type SetStmt struct {
	Name  string
	Value Expr
}

func (*SetStmt) stmt() {}

// String implements Statement.
func (s *SetStmt) String() string { return "SET " + s.Name + " = " + s.Value.String() }

// ShowStmt reads a session variable (SHOW statement_timeout).
type ShowStmt struct {
	Name string
}

func (*ShowStmt) stmt() {}

// String implements Statement.
func (s *ShowStmt) String() string { return "SHOW " + s.Name }

// GraphStmt is a graph-verb reference inside EXPLAIN (EXPLAIN
// PAGERANK g 10): the verb name plus its space-separated arguments,
// the same argv shape the server's graph RPC takes. It only parses as
// the inner statement of EXPLAIN — graph verbs execute through the
// wire protocol's Graph frames, not as SQL.
type GraphStmt struct {
	Verb string
	Args []string
}

func (*GraphStmt) stmt() {}

// String implements Statement.
func (s *GraphStmt) String() string {
	out := strings.ToUpper(s.Verb)
	for _, a := range s.Args {
		out += " " + a
	}
	return out
}

// ExplainStmt renders a statement's plan (EXPLAIN <stmt>) or executes
// the statement and annotates the plan with per-operator counters
// (EXPLAIN ANALYZE <stmt>).
type ExplainStmt struct {
	Analyze bool
	Stmt    Statement
}

func (*ExplainStmt) stmt() {}

// String implements Statement.
func (s *ExplainStmt) String() string {
	if s.Analyze {
		return "EXPLAIN ANALYZE " + s.Stmt.String()
	}
	return "EXPLAIN " + s.Stmt.String()
}
