package sql

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/storage"
)

// Positional parameters. The parser emits Param nodes for $1..$n; this
// file holds the helpers shared by the bind-and-run path (NumParams,
// used to validate argument counts before planning) and the legacy
// textual-substitution path (SubstituteParams/RenderLiteral, kept for
// old clients, WAL rendering of parameterized DML, and as the ablation
// baseline in the prepare benchmark).

// NumParams walks st and returns the highest $n referenced (0 when the
// statement has no parameters).
func NumParams(st Statement) int {
	w := &paramWalker{}
	w.stmt(st)
	return w.max
}

// HasParams reports whether st references any positional parameter.
func HasParams(st Statement) bool { return NumParams(st) > 0 }

type paramWalker struct{ max int }

func (w *paramWalker) stmt(st Statement) {
	switch s := st.(type) {
	case *SelectStmt:
		w.selectStmt(s)
	case *InsertStmt:
		for _, row := range s.Rows {
			for _, e := range row {
				w.expr(e)
			}
		}
		if s.Select != nil {
			w.selectStmt(s.Select)
		}
	case *UpdateStmt:
		for _, a := range s.Set {
			w.expr(a.E)
		}
		w.expr(s.Where)
	case *DeleteStmt:
		w.expr(s.Where)
	case *SetStmt:
		w.expr(s.Value)
	}
}

func (w *paramWalker) selectStmt(s *SelectStmt) {
	for _, c := range s.With {
		w.selectStmt(c.Select)
	}
	for _, core := range s.Cores {
		for _, it := range core.Items {
			w.expr(it.E)
		}
		for _, f := range core.From {
			w.tableRef(f)
		}
		w.expr(core.Where)
		for _, g := range core.GroupBy {
			w.expr(g)
		}
		w.expr(core.Having)
	}
	for _, o := range s.OrderBy {
		w.expr(o.E)
	}
}

func (w *paramWalker) tableRef(t TableRef) {
	switch r := t.(type) {
	case *DerivedTable:
		w.selectStmt(r.Select)
	case *JoinTable:
		w.tableRef(r.Left)
		w.tableRef(r.Right)
		w.expr(r.On)
	}
}

func (w *paramWalker) expr(e Expr) {
	switch x := e.(type) {
	case nil:
	case *Param:
		if x.N > w.max {
			w.max = x.N
		}
	case *BinExpr:
		w.expr(x.L)
		w.expr(x.R)
	case *UnExpr:
		w.expr(x.E)
	case *FuncExpr:
		for _, a := range x.Args {
			w.expr(a)
		}
	case *CaseExpr:
		for _, arm := range x.Whens {
			w.expr(arm.Cond)
			w.expr(arm.Then)
		}
		w.expr(x.Else)
	case *IsNullExpr:
		w.expr(x.E)
	case *InExpr:
		w.expr(x.E)
		for _, it := range x.List {
			w.expr(it)
		}
	case *LikeExpr:
		w.expr(x.E)
		w.expr(x.Pattern)
	case *CastExpr:
		w.expr(x.E)
	}
}

// SubstituteParams renders args into the $1..$n references of text.
// Substitution is quote-aware on both quoting forms the lexer knows: a
// $n inside a '...' string literal (with ” escapes) or a "..."
// quoted identifier is data, not a parameter.
func SubstituteParams(text string, args []storage.Value) (string, error) {
	var b strings.Builder
	b.Grow(len(text) + 16*len(args))
	inStr, inIdent := false, false
	for i := 0; i < len(text); i++ {
		c := text[i]
		if inStr {
			b.WriteByte(c)
			if c == '\'' {
				inStr = false // '' escapes re-enter on the next quote
			}
			continue
		}
		if inIdent {
			b.WriteByte(c)
			if c == '"' {
				inIdent = false
			}
			continue
		}
		switch {
		case c == '\'':
			inStr = true
			b.WriteByte(c)
		case c == '"':
			inIdent = true
			b.WriteByte(c)
		case c == '$' && i+1 < len(text) && text[i+1] >= '0' && text[i+1] <= '9':
			j := i + 1
			for j < len(text) && text[j] >= '0' && text[j] <= '9' {
				j++
			}
			n, err := strconv.Atoi(text[i+1 : j])
			if err != nil || n < 1 || n > len(args) {
				return "", fmt.Errorf("sql: parameter $%s out of range (%d arguments bound)", text[i+1:j], len(args))
			}
			lit, err := RenderLiteral(args[n-1])
			if err != nil {
				return "", fmt.Errorf("sql: parameter $%d: %w", n, err)
			}
			b.WriteString(lit)
			i = j - 1
		default:
			b.WriteByte(c)
		}
	}
	return b.String(), nil
}

// RenderLiteral formats a value as a SQL literal that parses back to
// exactly the same value.
func RenderLiteral(v storage.Value) (string, error) {
	if v.Null {
		return "NULL", nil
	}
	switch v.Type {
	case storage.TypeInt64:
		return strconv.FormatInt(v.I, 10), nil
	case storage.TypeFloat64:
		if math.IsNaN(v.F) || math.IsInf(v.F, 0) {
			return "", fmt.Errorf("%v has no SQL literal", v.F)
		}
		// FormatFloat 'g' emits forms like -1.5e-07; the parser folds a
		// leading minus into the literal and the lexer accepts e±NN
		// exponents, so every form round-trips to the identical float64.
		// Integral values (and negative zero) come out bare — "5", "-0"
		// — which would lex as INTEGER and change the value's type;
		// keep them floats the same way FloatLit.String does.
		s := strconv.FormatFloat(v.F, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s, nil
	case storage.TypeString:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'", nil
	case storage.TypeBool:
		if v.I != 0 {
			return "TRUE", nil
		}
		return "FALSE", nil
	}
	return "", fmt.Errorf("unsupported parameter type %v", v.Type)
}
