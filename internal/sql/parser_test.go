package sql

import (
	"strings"
	"testing"
)

// roundTrip asserts parse(print(parse(src))) == print(parse(src)): the
// printer emits SQL the parser accepts, with a stable fixpoint.
func roundTrip(t *testing.T, src string) Statement {
	t.Helper()
	st1, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	printed := st1.String()
	st2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse %q (printed from %q): %v", printed, src, err)
	}
	if st2.String() != printed {
		t.Fatalf("round trip unstable:\n first: %s\nsecond: %s", printed, st2.String())
	}
	return st1
}

func TestParseSimpleSelect(t *testing.T) {
	st := roundTrip(t, "SELECT id, value FROM vertex WHERE id > 10 ORDER BY id DESC LIMIT 5 OFFSET 2")
	sel := st.(*SelectStmt)
	core := sel.Cores[0]
	if len(core.Items) != 2 || core.Items[0].E.(*Ident).Name != "id" {
		t.Errorf("select items wrong: %+v", core.Items)
	}
	if core.Where == nil || len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Error("where/order missing")
	}
	if sel.Limit == nil || *sel.Limit != 5 || sel.Offset == nil || *sel.Offset != 2 {
		t.Error("limit/offset wrong")
	}
}

func TestParseJoins(t *testing.T) {
	st := roundTrip(t, "SELECT e.src, v.value FROM edge AS e JOIN vertex AS v ON e.dst = v.id")
	core := st.(*SelectStmt).Cores[0]
	j, ok := core.From[0].(*JoinTable)
	if !ok || j.Kind != JoinInner || j.On == nil {
		t.Fatalf("join not parsed: %+v", core.From[0])
	}
	roundTrip(t, "SELECT * FROM a LEFT JOIN b ON a.x = b.y")
	roundTrip(t, "SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y")
	roundTrip(t, "SELECT * FROM a CROSS JOIN b")
	roundTrip(t, "SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y")
}

func TestParseCommaJoinTriangleQuery(t *testing.T) {
	// The triangle-counting self-join shape from the paper's SQL algorithms.
	st := roundTrip(t, `SELECT COUNT(*) FROM edge e1, edge e2, edge e3
		WHERE e1.dst = e2.src AND e2.dst = e3.src AND e3.dst = e1.src
		AND e1.src < e2.src AND e2.src < e3.src`)
	core := st.(*SelectStmt).Cores[0]
	if len(core.From) != 3 {
		t.Fatalf("expected 3 from items, got %d", len(core.From))
	}
	f, ok := core.Items[0].E.(*FuncExpr)
	if !ok || !f.Star || !strings.EqualFold(f.Name, "count") {
		t.Error("COUNT(*) not parsed")
	}
}

func TestParseGroupByHaving(t *testing.T) {
	st := roundTrip(t, "SELECT src, COUNT(*) AS c FROM edge GROUP BY src HAVING COUNT(*) > 3")
	core := st.(*SelectStmt).Cores[0]
	if len(core.GroupBy) != 1 || core.Having == nil {
		t.Error("group by/having missing")
	}
	if core.Items[1].Alias != "c" {
		t.Error("alias missing")
	}
}

func TestParseUnionAll(t *testing.T) {
	st := roundTrip(t, "SELECT id FROM vertex UNION ALL SELECT src FROM edge UNION ALL SELECT dst FROM edge")
	if len(st.(*SelectStmt).Cores) != 3 {
		t.Error("union all chain not parsed")
	}
	if _, err := Parse("SELECT id FROM a UNION SELECT id FROM b"); err == nil {
		t.Error("plain UNION should be rejected (only UNION ALL)")
	}
}

func TestParseWithCTE(t *testing.T) {
	st := roundTrip(t, "WITH deg AS (SELECT src, COUNT(*) AS d FROM edge GROUP BY src) SELECT * FROM deg WHERE d > 2")
	sel := st.(*SelectStmt)
	if len(sel.With) != 1 || sel.With[0].Name != "deg" {
		t.Error("CTE not parsed")
	}
}

func TestParseDerivedTable(t *testing.T) {
	roundTrip(t, "SELECT t.a FROM (SELECT id AS a FROM vertex) AS t")
	if _, err := Parse("SELECT a FROM (SELECT id AS a FROM vertex)"); err == nil {
		t.Error("derived table without alias should fail")
	}
}

func TestParseDistinctAndImplicitAlias(t *testing.T) {
	st := roundTrip(t, "SELECT DISTINCT src s FROM edge")
	core := st.(*SelectStmt).Cores[0]
	if !core.Distinct || core.Items[0].Alias != "s" {
		t.Error("distinct/implicit alias not parsed")
	}
}

func TestParseExpressions(t *testing.T) {
	cases := []string{
		"SELECT 1 + 2 * 3 FROM t",
		"SELECT (1 + 2) * 3 FROM t",
		"SELECT -x FROM t",
		"SELECT a || 'suffix' FROM t",
		"SELECT a % 4 FROM t",
		"SELECT x IS NULL, y IS NOT NULL FROM t",
		"SELECT x IN (1, 2, 3) FROM t",
		"SELECT x NOT IN (1, 2) FROM t",
		"SELECT name LIKE 'fam%' FROM t",
		"SELECT name NOT LIKE '%x_' FROM t",
		"SELECT CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END FROM t",
		"SELECT CAST(x AS DOUBLE) FROM t",
		"SELECT CAST(x AS VARCHAR) FROM t",
		"SELECT COALESCE(a, b, 0) FROM t",
		"SELECT COUNT(DISTINCT src) FROM edge",
		"SELECT TRUE, FALSE, NULL FROM t",
		"SELECT 1.5e3 FROM t",
		"SELECT x = 1 OR y = 2 AND NOT z = 3 FROM t",
	}
	for _, c := range cases {
		roundTrip(t, c)
	}
}

func TestParseBetweenDesugars(t *testing.T) {
	st, err := Parse("SELECT * FROM t WHERE x BETWEEN 1 AND 5")
	if err != nil {
		t.Fatal(err)
	}
	w := st.(*SelectStmt).Cores[0].Where.(*BinExpr)
	if w.Op != "AND" {
		t.Fatalf("BETWEEN should desugar to AND, got %s", w.Op)
	}
	if w.L.(*BinExpr).Op != ">=" || w.R.(*BinExpr).Op != "<=" {
		t.Error("BETWEEN bounds wrong")
	}
	roundTrip(t, "SELECT * FROM t WHERE x NOT BETWEEN 1 AND 5")
}

func TestParsePrecedence(t *testing.T) {
	st, err := Parse("SELECT a + b * c FROM t")
	if err != nil {
		t.Fatal(err)
	}
	e := st.(*SelectStmt).Cores[0].Items[0].E.(*BinExpr)
	if e.Op != "+" {
		t.Fatalf("expected + at root, got %s", e.Op)
	}
	if e.R.(*BinExpr).Op != "*" {
		t.Error("* should bind tighter than +")
	}
	st2, _ := Parse("SELECT a OR b AND c FROM t")
	e2 := st2.(*SelectStmt).Cores[0].Items[0].E.(*BinExpr)
	if e2.Op != "OR" {
		t.Error("AND should bind tighter than OR")
	}
}

func TestParseInsert(t *testing.T) {
	st := roundTrip(t, "INSERT INTO vertex (id, value) VALUES (1, 'a'), (2, NULL)")
	ins := st.(*InsertStmt)
	if ins.Table != "vertex" || len(ins.Rows) != 2 || len(ins.Columns) != 2 {
		t.Errorf("insert parsed wrong: %+v", ins)
	}
	st2 := roundTrip(t, "INSERT INTO backup SELECT * FROM vertex WHERE id < 100")
	if st2.(*InsertStmt).Select == nil {
		t.Error("insert-select not parsed")
	}
}

func TestParseUpdateDelete(t *testing.T) {
	st := roundTrip(t, "UPDATE vertex SET value = 'x', halted = TRUE WHERE id = 7")
	up := st.(*UpdateStmt)
	if len(up.Set) != 2 || up.Where == nil {
		t.Error("update parsed wrong")
	}
	st2 := roundTrip(t, "DELETE FROM message WHERE superstep < 3")
	if st2.(*DeleteStmt).Where == nil {
		t.Error("delete where missing")
	}
	roundTrip(t, "DELETE FROM message")
}

func TestParseDDL(t *testing.T) {
	st := roundTrip(t, "CREATE TABLE vertex (id INTEGER NOT NULL, value VARCHAR, rank DOUBLE, halted BOOLEAN)")
	ct := st.(*CreateTableStmt)
	if len(ct.Cols) != 4 || !ct.Cols[0].NotNull || ct.Cols[2].TypeName != "DOUBLE" {
		t.Errorf("create table parsed wrong: %+v", ct)
	}
	roundTrip(t, "CREATE TABLE IF NOT EXISTS t (x INTEGER)")
	roundTrip(t, "DROP TABLE vertex")
	roundTrip(t, "DROP TABLE IF EXISTS vertex")
	roundTrip(t, "TRUNCATE message")
	// Type synonyms normalize.
	st2, err := Parse("CREATE TABLE t (a BIGINT, b FLOAT, c DOUBLE PRECISION, d TEXT, e VARCHAR(42))")
	if err != nil {
		t.Fatal(err)
	}
	ct2 := st2.(*CreateTableStmt)
	want := []string{"INTEGER", "DOUBLE", "DOUBLE", "VARCHAR", "VARCHAR"}
	for i, w := range want {
		if ct2.Cols[i].TypeName != w {
			t.Errorf("col %d type = %s, want %s", i, ct2.Cols[i].TypeName, w)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM t",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"INSERT INTO t VALUES",
		"CREATE TABLE t ()",
		"CREATE TABLE t (x WIBBLE)",
		"SELECT * FROM t GROUP",
		"SELECT 'unterminated FROM t",
		"SELECT * FROM t; SELECT 1",
		"SELECT CASE END FROM t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseComments(t *testing.T) {
	roundTrip(t, "SELECT id -- line comment\nFROM vertex /* block\ncomment */ WHERE id > 0")
}

func TestParseStringEscapes(t *testing.T) {
	st, err := Parse("SELECT 'it''s' FROM t")
	if err != nil {
		t.Fatal(err)
	}
	lit := st.(*SelectStmt).Cores[0].Items[0].E.(*StringLit)
	if lit.V != "it's" {
		t.Errorf("escaped string = %q", lit.V)
	}
	roundTrip(t, "SELECT 'it''s' FROM t")
}

func TestParseQuotedIdent(t *testing.T) {
	st, err := Parse(`SELECT "select" FROM "table"`)
	if err != nil {
		t.Fatal(err)
	}
	if st.(*SelectStmt).Cores[0].Items[0].E.(*Ident).Name != "select" {
		t.Error("quoted identifier not parsed")
	}
}

func TestParseExprStandalone(t *testing.T) {
	e, err := ParseExpr("weight > 0.5 AND etype = 'family'")
	if err != nil {
		t.Fatal(err)
	}
	if e.(*BinExpr).Op != "AND" {
		t.Error("standalone expression parsed wrong")
	}
	if _, err := ParseExpr("a +"); err == nil {
		t.Error("trailing operator should fail")
	}
	if _, err := ParseExpr("a b c"); err == nil {
		t.Error("junk after expression should fail")
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := Tokenize("SELECT\n  id")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("positions wrong: %+v", toks[:2])
	}
}

func TestSemicolonTolerated(t *testing.T) {
	if _, err := Parse("SELECT 1;"); err != nil {
		t.Errorf("trailing semicolon should parse: %v", err)
	}
}

func TestParseSessionControl(t *testing.T) {
	if _, ok := roundTrip(t, "BEGIN").(*BeginStmt); !ok {
		t.Error("BEGIN not parsed")
	}
	if _, ok := roundTrip(t, "commit;").(*CommitStmt); !ok {
		t.Error("COMMIT not parsed")
	}
	if _, ok := roundTrip(t, "ROLLBACK").(*RollbackStmt); !ok {
		t.Error("ROLLBACK not parsed")
	}
	set := roundTrip(t, "SET statement_timeout = 250").(*SetStmt)
	if set.Name != "statement_timeout" {
		t.Errorf("SET name = %q", set.Name)
	}
	if lit, ok := set.Value.(*IntLit); !ok || lit.V != 250 {
		t.Errorf("SET value = %#v", set.Value)
	}
	show := roundTrip(t, "SHOW parallelism").(*ShowStmt)
	if show.Name != "parallelism" {
		t.Errorf("SHOW name = %q", show.Name)
	}
	if _, err := Parse("SET = 3"); err == nil {
		t.Error("SET without a variable name should fail")
	}
}
