package sql

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/storage"
)

func TestParamLexAndParse(t *testing.T) {
	st, err := Parse("SELECT $1, $2 + $1 FROM t WHERE x = $3")
	if err != nil {
		t.Fatal(err)
	}
	if n := NumParams(st); n != 3 {
		t.Errorf("NumParams = %d, want 3", n)
	}
	if !HasParams(st) {
		t.Error("HasParams = false")
	}
	sel := st.(*SelectStmt)
	p, ok := sel.Cores[0].Items[0].E.(*Param)
	if !ok || p.N != 1 {
		t.Errorf("first item = %#v, want Param $1", sel.Cores[0].Items[0].E)
	}

	if _, err := Parse("SELECT $0"); err == nil {
		t.Error("$0 accepted")
	}
	st, err = Parse("SELECT 'a $1 b'")
	if err != nil {
		t.Fatal(err)
	}
	if NumParams(st) != 0 {
		t.Error("$1 inside a string literal counted as a parameter")
	}
}

// Regression: a single quote inside a double-quoted identifier must not
// flip the in-string state, and a $n inside a quoted identifier is part
// of the name, not a parameter.
func TestSubstituteParamsQuoteTracking(t *testing.T) {
	args := []storage.Value{storage.Int64(42)}

	// The apostrophe in "it's" previously opened a phantom string
	// region, so the $1 after it was treated as data and survived.
	got, err := SubstituteParams(`SELECT "it's", $1 FROM t`, args)
	if err != nil {
		t.Fatal(err)
	}
	if want := `SELECT "it's", 42 FROM t`; got != want {
		t.Errorf("got %q, want %q", got, want)
	}

	// A $1 inside a quoted identifier is part of the identifier.
	got, err = SubstituteParams(`SELECT "a$1" FROM t WHERE x = $1`, args)
	if err != nil {
		t.Fatal(err)
	}
	if want := `SELECT "a$1" FROM t WHERE x = 42`; got != want {
		t.Errorf("got %q, want %q", got, want)
	}

	// The two quoting forms nest through each other: a double quote
	// inside a string is data, and vice versa.
	got, err = SubstituteParams(`SELECT '"', $1, "x'y", $1`, args)
	if err != nil {
		t.Fatal(err)
	}
	if want := `SELECT '"', 42, "x'y", 42`; got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

// litFloat extracts the float a rendered literal parses back to,
// folding the unary-minus path the parser uses for negative mantissas.
func litFloat(t *testing.T, e Expr) float64 {
	t.Helper()
	switch x := e.(type) {
	case *FloatLit:
		return x.V
	case *UnExpr:
		if x.Op == "-" {
			return -litFloat(t, x.E)
		}
	}
	t.Fatalf("rendered float parsed to %#v, not a float literal", e)
	return 0
}

// Property: every FormatFloat(…, 'g', -1, 64) form RenderLiteral emits
// — negative mantissas, e+NN / e-NN exponents, integral values — must
// lex and parse back to the bit-identical float64, and stay a FLOAT
// (an integral float that rendered bare would come back as an INTEGER
// and change the statement's types).
func TestRenderLiteralFloatRoundTrip(t *testing.T) {
	cases := []float64{
		0, math.Copysign(0, -1), 1, -1, 5, -5, 1e21, -1e21, 1e-7, -1.5e-7,
		6.25e22, -6.25e22, 1e300, -1e300, 5e-324, -5e-324,
		math.MaxFloat64, -math.MaxFloat64, 0.1, -0.1, 3.14159265358979,
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		f := math.Float64frombits(rng.Uint64())
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue // rejected by RenderLiteral, by design
		}
		cases = append(cases, f)
	}
	for _, f := range cases {
		lit, err := RenderLiteral(storage.Float64(f))
		if err != nil {
			t.Fatalf("RenderLiteral(%g): %v", f, err)
		}
		st, err := Parse("SELECT " + lit)
		if err != nil {
			t.Fatalf("rendered %q does not parse: %v", lit, err)
		}
		got := litFloat(t, st.(*SelectStmt).Cores[0].Items[0].E)
		if math.Float64bits(got) != math.Float64bits(f) {
			t.Errorf("round trip %g -> %q -> %g (bits %x != %x)",
				f, lit, got, math.Float64bits(f), math.Float64bits(got))
		}
	}

	// NaN and infinities have no SQL literal; the renderer must refuse
	// rather than emit text that fails to parse.
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := RenderLiteral(storage.Float64(f)); err == nil {
			t.Errorf("RenderLiteral(%g) accepted", f)
		}
	}
}

func TestRenderLiteralKinds(t *testing.T) {
	for _, tc := range []struct {
		v    storage.Value
		want string
	}{
		{storage.Int64(-9), "-9"},
		{storage.Null(storage.TypeString), "NULL"},
		{storage.Str("it's"), "'it''s'"},
		{storage.Bool(true), "TRUE"},
		{storage.Bool(false), "FALSE"},
		{storage.Float64(5), "5.0"},
	} {
		got, err := RenderLiteral(tc.v)
		if err != nil {
			t.Fatalf("RenderLiteral(%v): %v", tc.v, err)
		}
		if got != tc.want {
			t.Errorf("RenderLiteral(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
	if !strings.Contains(mustSub(t, "SELECT $1", storage.Float64(5)), "5.0") {
		t.Error("integral float substituted without a float marker")
	}
}

func mustSub(t *testing.T, text string, args ...storage.Value) string {
	t.Helper()
	s, err := SubstituteParams(text, args)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
