package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser is a recursive-descent parser over the token stream.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a single SQL statement (an optional trailing semicolon is
// allowed).
func Parse(src string) (Statement, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.matchSymbol(";")
	if p.peek().Kind != TokEOF {
		return nil, p.errf("unexpected %s after statement", p.peek())
	}
	return st, nil
}

// ParseExpr parses a standalone expression (used by the pipeline layer
// for filter predicates).
func ParseExpr(src string) (Expr, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != TokEOF {
		return nil, p.errf("unexpected %s after expression", p.peek())
	}
	return e, nil
}

func (p *Parser) peek() Token { return p.toks[p.pos] }

func (p *Parser) peekAt(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) errf(format string, args ...interface{}) error {
	t := p.peek()
	return fmt.Errorf("sql: line %d col %d: %s", t.Line, t.Col, fmt.Sprintf(format, args...))
}

func (p *Parser) matchKeyword(kw string) bool {
	if t := p.peek(); t.Kind == TokKeyword && t.Text == kw {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.matchKeyword(kw) {
		return p.errf("expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *Parser) matchSymbol(s string) bool {
	if t := p.peek(); t.Kind == TokSymbol && t.Text == s {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expectSymbol(s string) error {
	if !p.matchSymbol(s) {
		return p.errf("expected %q, found %s", s, p.peek())
	}
	return nil
}

func (p *Parser) expectIdent() (string, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return "", p.errf("expected identifier, found %s", t)
	}
	p.next()
	return t.Text, nil
}

func (p *Parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.Kind != TokKeyword {
		return nil, p.errf("expected a statement, found %s", t)
	}
	switch t.Text {
	case "SELECT", "WITH":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		return p.parseCreateTable()
	case "DROP":
		return p.parseDropTable()
	case "TRUNCATE":
		return p.parseTruncate()
	case "BEGIN":
		p.next()
		return &BeginStmt{}, nil
	case "COMMIT":
		p.next()
		return &CommitStmt{}, nil
	case "ROLLBACK":
		p.next()
		return &RollbackStmt{}, nil
	case "SET":
		return p.parseSet()
	case "SHOW":
		return p.parseShow()
	case "EXPLAIN":
		return p.parseExplain()
	default:
		return nil, p.errf("unsupported statement %s", t.Text)
	}
}

// parseExplain parses EXPLAIN [ANALYZE] <statement>, where the inner
// statement may also be a graph verb (EXPLAIN PAGERANK g 10): graph
// verbs are bare identifiers followed by space-separated arguments, so
// an identifier in statement position after EXPLAIN is taken as a
// verb. Nesting EXPLAIN inside EXPLAIN is rejected (the inner parse
// would accept it, but no engine behavior is defined for it).
func (p *Parser) parseExplain() (Statement, error) {
	if err := p.expectKeyword("EXPLAIN"); err != nil {
		return nil, err
	}
	analyze := p.matchKeyword("ANALYZE")
	if p.peek().Kind == TokIdent {
		return p.parseExplainGraphVerb(analyze)
	}
	inner, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if _, ok := inner.(*ExplainStmt); ok {
		return nil, p.errf("EXPLAIN cannot be nested")
	}
	return &ExplainStmt{Analyze: analyze, Stmt: inner}, nil
}

// parseExplainGraphVerb parses the graph-verb form of EXPLAIN: a bare
// verb identifier (pagerank, sssp, components, ...) followed by
// space-separated arguments — identifiers, numbers, or string
// literals, exactly the argv shape the server's graph-verb RPC takes.
func (p *Parser) parseExplainGraphVerb(analyze bool) (Statement, error) {
	verb := p.next().Text
	st := &GraphStmt{Verb: strings.ToLower(verb)}
	for {
		t := p.peek()
		switch t.Kind {
		case TokIdent, TokString:
			p.next()
			st.Args = append(st.Args, t.Text)
			continue
		case TokNumber:
			p.next()
			st.Args = append(st.Args, t.Text)
			continue
		case TokSymbol:
			if t.Text == "-" && p.peekAt(1).Kind == TokNumber {
				p.next()
				n := p.next()
				st.Args = append(st.Args, "-"+n.Text)
				continue
			}
		}
		break
	}
	return &ExplainStmt{Analyze: analyze, Stmt: st}, nil
}

// parseSet parses SET <var> = <expr> and the SQL-flavored form without
// the equals sign (SET temp_tablespace '/dir'); UPDATE's SET clause is
// handled inside parseUpdate.
func (p *Parser) parseSet() (Statement, error) {
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	p.matchSymbol("=") // optional: SET name value and SET name = value both parse
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &SetStmt{Name: name, Value: e}, nil
}

func (p *Parser) parseShow() (Statement, error) {
	if err := p.expectKeyword("SHOW"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &ShowStmt{Name: name}, nil
}

// --- SELECT ---

func (p *Parser) parseSelect() (*SelectStmt, error) {
	st := &SelectStmt{}
	if p.matchKeyword("WITH") {
		for {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AS"); err != nil {
				return nil, err
			}
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			st.With = append(st.With, CTE{Name: name, Select: sub})
			if !p.matchSymbol(",") {
				break
			}
		}
	}
	core, err := p.parseSelectCore()
	if err != nil {
		return nil, err
	}
	st.Cores = append(st.Cores, core)
	for p.matchKeyword("UNION") {
		if err := p.expectKeyword("ALL"); err != nil {
			return nil, fmt.Errorf("%w (only UNION ALL is supported)", err)
		}
		c, err := p.parseSelectCore()
		if err != nil {
			return nil, err
		}
		st.Cores = append(st.Cores, c)
	}
	if p.matchKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{E: e}
			if p.matchKeyword("DESC") {
				item.Desc = true
			} else {
				p.matchKeyword("ASC")
			}
			st.OrderBy = append(st.OrderBy, item)
			if !p.matchSymbol(",") {
				break
			}
		}
	}
	if p.matchKeyword("LIMIT") {
		n, err := p.parseIntToken()
		if err != nil {
			return nil, err
		}
		st.Limit = &n
	}
	if p.matchKeyword("OFFSET") {
		n, err := p.parseIntToken()
		if err != nil {
			return nil, err
		}
		st.Offset = &n
	}
	return st, nil
}

func (p *Parser) parseIntToken() (int64, error) {
	t := p.peek()
	if t.Kind != TokNumber {
		return 0, p.errf("expected integer, found %s", t)
	}
	n, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return 0, p.errf("expected integer, found %s", t)
	}
	p.next()
	return n, nil
}

func (p *Parser) parseSelectCore() (*SelectCore, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	core := &SelectCore{}
	if p.matchKeyword("DISTINCT") {
		core.Distinct = true
	} else {
		p.matchKeyword("ALL")
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		core.Items = append(core.Items, item)
		if !p.matchSymbol(",") {
			break
		}
	}
	if p.matchKeyword("FROM") {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			core.From = append(core.From, ref)
			if !p.matchSymbol(",") {
				break
			}
		}
	}
	if p.matchKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		core.Where = e
	}
	if p.matchKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			core.GroupBy = append(core.GroupBy, e)
			if !p.matchSymbol(",") {
				break
			}
		}
	}
	if p.matchKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		core.Having = e
	}
	return core, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	// `*`
	if p.peek().Kind == TokSymbol && p.peek().Text == "*" {
		p.next()
		return SelectItem{Star: true}, nil
	}
	// `t.*`
	if p.peek().Kind == TokIdent && p.peekAt(1).Kind == TokSymbol && p.peekAt(1).Text == "." &&
		p.peekAt(2).Kind == TokSymbol && p.peekAt(2).Text == "*" {
		tbl := p.next().Text
		p.next()
		p.next()
		return SelectItem{Star: true, StarTable: tbl}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{E: e}
	if p.matchKeyword("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.peek().Kind == TokIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *Parser) parseTableRef() (TableRef, error) {
	left, err := p.parsePrimaryTableRef()
	if err != nil {
		return nil, err
	}
	for {
		var kind JoinKind
		switch {
		case p.matchKeyword("CROSS"):
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = JoinCross
		case p.matchKeyword("INNER"):
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = JoinInner
		case p.matchKeyword("LEFT"):
			p.matchKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = JoinLeft
		case p.matchKeyword("JOIN"):
			kind = JoinInner
		default:
			return left, nil
		}
		right, err := p.parsePrimaryTableRef()
		if err != nil {
			return nil, err
		}
		j := &JoinTable{Left: left, Right: right, Kind: kind}
		if kind != JoinCross {
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			j.On = on
		}
		left = j
	}
}

func (p *Parser) parsePrimaryTableRef() (TableRef, error) {
	if p.matchSymbol("(") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		alias, err := p.parseAlias(true)
		if err != nil {
			return nil, err
		}
		return &DerivedTable{Select: sub, Alias: alias}, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	alias, err := p.parseAlias(false)
	if err != nil {
		return nil, err
	}
	return &BaseTable{Name: name, Alias: alias}, nil
}

func (p *Parser) parseAlias(required bool) (string, error) {
	if p.matchKeyword("AS") {
		return p.expectIdent()
	}
	if p.peek().Kind == TokIdent {
		return p.next().Text, nil
	}
	if required {
		return "", p.errf("derived table requires an alias")
	}
	return "", nil
}

// --- DML / DDL ---

func (p *Parser) parseInsert() (Statement, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name}
	if p.matchSymbol("(") {
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, c)
			if !p.matchSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if t := p.peek(); t.Kind == TokKeyword && (t.Text == "SELECT" || t.Text == "WITH") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		st.Select = sub
		return st, nil
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.matchSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if !p.matchSymbol(",") {
			break
		}
	}
	return st, nil
}

func (p *Parser) parseUpdate() (Statement, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: name}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, Assignment{Column: col, E: e})
		if !p.matchSymbol(",") {
			break
		}
	}
	if p.matchKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *Parser) parseDelete() (Statement, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: name}
	if p.matchKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *Parser) parseCreateTable() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	st := &CreateTableStmt{}
	if p.matchKeyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		st.IfNotExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		tn, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		spec := ColumnSpec{Name: col, TypeName: tn}
		if p.matchKeyword("NOT") {
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			spec.NotNull = true
		}
		st.Cols = append(st.Cols, spec)
		if !p.matchSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if p.matchKeyword("PARTITION") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("HASH"); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		st.PartitionBy = col
		if p.matchKeyword("SHARDS") {
			n, err := p.parseIntToken()
			if err != nil {
				return nil, err
			}
			if n < 1 || n > 1<<16 {
				return nil, p.errf("SHARDS must be between 1 and 65536, got %d", n)
			}
			st.Shards = int(n)
		}
	}
	return st, nil
}

// parseTypeName consumes a type, normalizing synonyms (BIGINT→INTEGER,
// FLOAT/DOUBLE PRECISION→DOUBLE, TEXT/VARCHAR(n)→VARCHAR).
func (p *Parser) parseTypeName() (string, error) {
	t := p.peek()
	if t.Kind != TokKeyword {
		return "", p.errf("expected type name, found %s", t)
	}
	p.next()
	switch t.Text {
	case "INTEGER", "BIGINT":
		return "INTEGER", nil
	case "DOUBLE":
		p.matchKeyword("PRECISION")
		return "DOUBLE", nil
	case "FLOAT":
		return "DOUBLE", nil
	case "BOOLEAN":
		return "BOOLEAN", nil
	case "TEXT":
		return "VARCHAR", nil
	case "VARCHAR":
		if p.matchSymbol("(") {
			if _, err := p.parseIntToken(); err != nil {
				return "", err
			}
			if err := p.expectSymbol(")"); err != nil {
				return "", err
			}
		}
		return "VARCHAR", nil
	default:
		return "", p.errf("unsupported type %s", t.Text)
	}
}

func (p *Parser) parseDropTable() (Statement, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	st := &DropTableStmt{}
	if p.matchKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		st.IfExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Name = name
	return st, nil
}

func (p *Parser) parseTruncate() (Statement, error) {
	if err := p.expectKeyword("TRUNCATE"); err != nil {
		return nil, err
	}
	p.matchKeyword("TABLE")
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &TruncateStmt{Name: name}, nil
}

// --- expressions ---

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.matchKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.matchKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.matchKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: "NOT", E: e}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.matchKeyword("IS") {
		not := p.matchKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{E: l, Not: not}, nil
	}
	// [NOT] IN / LIKE / BETWEEN
	not := false
	if t := p.peek(); t.Kind == TokKeyword && t.Text == "NOT" {
		nt := p.peekAt(1)
		if nt.Kind == TokKeyword && (nt.Text == "IN" || nt.Text == "LIKE" || nt.Text == "BETWEEN") {
			p.next()
			not = true
		}
	}
	switch {
	case p.matchKeyword("IN"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.matchSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InExpr{E: l, List: list, Not: not}, nil
	case p.matchKeyword("LIKE"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &LikeExpr{E: l, Pattern: pat, Not: not}, nil
	case p.matchKeyword("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		// Desugar to (l >= lo AND l <= hi); BETWEEN does not survive
		// printing, but the desugared form round-trips fine.
		rng := &BinExpr{Op: "AND",
			L: &BinExpr{Op: ">=", L: l, R: lo},
			R: &BinExpr{Op: "<=", L: l, R: hi}}
		if not {
			return &UnExpr{Op: "NOT", E: rng}, nil
		}
		return rng, nil
	}
	if t := p.peek(); t.Kind == TokSymbol {
		op := t.Text
		switch op {
		case "=", "<>", "!=", "<", "<=", ">", ">=":
			p.next()
			if op == "!=" {
				op = "<>"
			}
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokSymbol || (t.Text != "+" && t.Text != "-" && t.Text != "||") {
			return l, nil
		}
		p.next()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: t.Text, L: l, R: r}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokSymbol || (t.Text != "*" && t.Text != "/" && t.Text != "%") {
			return l, nil
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: t.Text, L: l, R: r}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.matchSymbol("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negative literals so -1 prints back as -1, not (-1).
		switch lit := e.(type) {
		case *IntLit:
			return &IntLit{V: -lit.V}, nil
		case *FloatLit:
			return &FloatLit{V: -lit.V}, nil
		}
		return &UnExpr{Op: "-", E: e}, nil
	}
	if p.matchSymbol("+") {
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.next()
		if !strings.ContainsAny(t.Text, ".eE") {
			v, err := strconv.ParseInt(t.Text, 10, 64)
			if err == nil {
				return &IntLit{V: v}, nil
			}
		}
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.Text)
		}
		return &FloatLit{V: f}, nil
	case TokString:
		p.next()
		return &StringLit{V: t.Text}, nil
	case TokParam:
		p.next()
		n, err := strconv.Atoi(t.Text[1:])
		if err != nil || n < 1 {
			return nil, p.errf("bad parameter %q", t.Text)
		}
		return &Param{N: n}, nil
	case TokKeyword:
		switch t.Text {
		case "TRUE":
			p.next()
			return &BoolLit{V: true}, nil
		case "FALSE":
			p.next()
			return &BoolLit{V: false}, nil
		case "NULL":
			p.next()
			return &NullLit{}, nil
		case "CASE":
			return p.parseCase()
		case "CAST":
			return p.parseCast()
		}
		return nil, p.errf("unexpected keyword %s in expression", t.Text)
	case TokIdent:
		// Function call?
		if p.peekAt(1).Kind == TokSymbol && p.peekAt(1).Text == "(" {
			return p.parseFuncCall()
		}
		p.next()
		if p.matchSymbol(".") {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &Ident{Qualifier: t.Text, Name: name}, nil
		}
		return &Ident{Name: t.Text}, nil
	case TokSymbol:
		if t.Text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected %s in expression", t)
}

func (p *Parser) parseFuncCall() (Expr, error) {
	name := p.next().Text
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	f := &FuncExpr{Name: name}
	if p.matchSymbol("*") {
		f.Star = true
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	if p.matchSymbol(")") {
		return f, nil
	}
	if p.matchKeyword("DISTINCT") {
		f.Distinct = true
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Args = append(f.Args, e)
		if !p.matchSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return f, nil
}

func (p *Parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &CaseExpr{}
	for p.matchKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN arm")
	}
	if p.matchKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *Parser) parseCast() (Expr, error) {
	if err := p.expectKeyword("CAST"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	tn, err := p.parseTypeName()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &CastExpr{E: e, TypeName: tn}, nil
}
