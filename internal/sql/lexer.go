package sql

import (
	"fmt"
	"strings"
)

// Lexer turns SQL text into tokens.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over the given SQL text.
func NewLexer(src string) *Lexer { return &Lexer{src: src, line: 1, col: 1} }

// Tokenize lexes the whole input.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

func (l *Lexer) advance(n int) {
	for i := 0; i < n; i++ {
		if l.pos < len(l.src) && l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance(1)
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return fmt.Errorf("sql: unterminated block comment at line %d", l.line)
			}
			l.advance(end + 4)
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

// isIdentPart admits '$' so system-table names like vx$traces lex as
// one identifier. Positional parameters are unaffected: $N only lexes
// as a parameter when '$' STARTS a token (see Next), and a '$' inside
// an identifier never starts one.
func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) || c == '$' }

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	start, line, col := l.pos, l.line, l.col
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: start, Line: line, Col: col}, nil
	}
	c := l.src[l.pos]

	// Identifiers and keywords.
	if isIdentStart(c) {
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.advance(1)
		}
		word := l.src[start:l.pos]
		up := strings.ToUpper(word)
		if keywords[up] {
			return Token{Kind: TokKeyword, Text: up, Pos: start, Line: line, Col: col}, nil
		}
		return Token{Kind: TokIdent, Text: word, Pos: start, Line: line, Col: col}, nil
	}

	// Quoted identifiers: "name".
	if c == '"' {
		l.advance(1)
		s := l.pos
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			l.advance(1)
		}
		if l.pos >= len(l.src) {
			return Token{}, fmt.Errorf("sql: unterminated quoted identifier at line %d", line)
		}
		word := l.src[s:l.pos]
		l.advance(1)
		return Token{Kind: TokIdent, Text: word, Pos: start, Line: line, Col: col}, nil
	}

	// Numbers: integer or decimal, with optional exponent.
	if isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])) {
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.advance(1)
		}
		if l.pos < len(l.src) && l.src[l.pos] == '.' {
			l.advance(1)
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.advance(1)
			}
		}
		if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
			save := l.pos
			l.advance(1)
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.advance(1)
			}
			if l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
					l.advance(1)
				}
			} else {
				// Not an exponent after all (e.g. "1e" then ident); back out.
				l.pos = save
			}
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start, Line: line, Col: col}, nil
	}

	// Strings: 'text' with '' as the escape for a single quote.
	if c == '\'' {
		l.advance(1)
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("sql: unterminated string literal at line %d", line)
			}
			if l.src[l.pos] == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.advance(2)
					continue
				}
				l.advance(1)
				break
			}
			b.WriteByte(l.src[l.pos])
			l.advance(1)
		}
		return Token{Kind: TokString, Text: b.String(), Pos: start, Line: line, Col: col}, nil
	}

	// Positional parameters: $1, $2, ...
	if c == '$' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
		l.advance(1)
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.advance(1)
		}
		return Token{Kind: TokParam, Text: l.src[start:l.pos], Pos: start, Line: line, Col: col}, nil
	}

	// Symbols, longest match first.
	for _, s := range symbols {
		if strings.HasPrefix(l.src[l.pos:], s) {
			l.advance(len(s))
			return Token{Kind: TokSymbol, Text: s, Pos: start, Line: line, Col: col}, nil
		}
	}
	return Token{}, fmt.Errorf("sql: unexpected character %q at line %d col %d", c, line, col)
}
