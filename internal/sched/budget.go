// Package sched provides the global worker budget: a weighted
// counting semaphore shared by every parallel construct in the process
// — the SQL executor's Gather pools, hash-join probes and partitioned
// aggregates, and the vertex-centric coordinator's worker pool. Each
// construct is entitled to run on its caller's goroutine for free and
// asks the budget for *extra* workers, so a statement always makes
// progress even when the budget is exhausted: under load the system
// degrades toward serial execution instead of oversubscribing cores.
package sched

import (
	"sync"
	"sync/atomic"
)

// Budget is a weighted semaphore over "extra worker" slots. The zero
// capacity means unlimited (every request is granted in full), so an
// embedded engine without an explicit budget behaves exactly as
// before. All methods are safe for concurrent use.
type Budget struct {
	mu        sync.Mutex
	capacity  int // 0 = unlimited
	inUse     int
	highWater int
	waits     uint64 // requests granted zero slots while a cap was set
}

// NewBudget returns a budget with the given capacity. capacity <= 0
// means unlimited.
func NewBudget(capacity int) *Budget {
	if capacity < 0 {
		capacity = 0
	}
	return &Budget{capacity: capacity}
}

// TryAcquire grants up to max extra worker slots without blocking and
// returns how many were granted (possibly 0). A nil budget grants
// everything, so call sites need no nil checks.
func (b *Budget) TryAcquire(max int) int {
	if max <= 0 {
		return 0
	}
	if b == nil {
		return max
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.capacity == 0 {
		b.inUse += max
		if b.inUse > b.highWater {
			b.highWater = b.inUse
		}
		return max
	}
	got := b.capacity - b.inUse
	if got <= 0 {
		b.waits++
		return 0
	}
	if got > max {
		got = max
	}
	b.inUse += got
	if b.inUse > b.highWater {
		b.highWater = b.inUse
	}
	return got
}

// Release returns n slots to the budget. Releasing more than acquired
// is a programming error and clamps to zero rather than corrupting the
// gauge.
func (b *Budget) Release(n int) {
	if b == nil || n <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.inUse -= n
	if b.inUse < 0 {
		b.inUse = 0
	}
}

// Resize changes the capacity. Shrinking does not preempt slots
// already granted; the budget simply grants nothing new until in-use
// drops below the new capacity. n <= 0 means unlimited.
func (b *Budget) Resize(n int) {
	if b == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.capacity = n
}

// Capacity returns the current capacity (0 = unlimited).
func (b *Budget) Capacity() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.capacity
}

// InUse returns the number of slots currently granted.
func (b *Budget) InUse() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inUse
}

// HighWater returns the maximum concurrent in-use slot count observed
// since the last ResetHighWater.
func (b *Budget) HighWater() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.highWater
}

// Waits returns how many acquisition attempts were turned away with
// zero slots while a capacity cap was in force — the "statements
// degraded to serial under load" counter the metrics registry exposes.
func (b *Budget) Waits() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.waits
}

// ResetHighWater clears the high-water mark (benchmarks reset it
// between phases).
func (b *Budget) ResetHighWater() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.highWater = b.inUse
}

// ForEach runs fn(0..n-1) on up to `workers` concurrent workers and
// waits for completion. The calling goroutine always participates;
// the extra workers (up to workers-1) are drawn from the budget, so
// under a tight global budget the loop degrades gracefully toward
// serial execution. A nil budget grants everything. This is the one
// shared fan-out helper: the SQL executor's probe/fold loops and the
// vertex runtime's input assembly all spawn through it, so budget
// semantics live in exactly one place.
func ForEach(b *Budget, n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	extra := 0
	if workers > 1 {
		extra = b.TryAcquire(workers - 1)
	}
	if extra == 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	defer b.Release(extra)
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	wg.Add(extra)
	for w := 0; w < extra; w++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}
