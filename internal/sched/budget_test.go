package sched

import (
	"sync"
	"testing"
)

func TestBudgetBasic(t *testing.T) {
	b := NewBudget(4)
	if got := b.TryAcquire(3); got != 3 {
		t.Fatalf("TryAcquire(3) = %d, want 3", got)
	}
	if got := b.TryAcquire(3); got != 1 {
		t.Fatalf("TryAcquire(3) at 3/4 = %d, want 1", got)
	}
	if got := b.TryAcquire(1); got != 0 {
		t.Fatalf("TryAcquire(1) at 4/4 = %d, want 0", got)
	}
	if b.InUse() != 4 || b.HighWater() != 4 {
		t.Fatalf("InUse=%d HighWater=%d, want 4/4", b.InUse(), b.HighWater())
	}
	b.Release(4)
	if b.InUse() != 0 {
		t.Fatalf("InUse after release = %d, want 0", b.InUse())
	}
	if b.HighWater() != 4 {
		t.Fatalf("HighWater after release = %d, want 4", b.HighWater())
	}
	b.ResetHighWater()
	if b.HighWater() != 0 {
		t.Fatalf("HighWater after reset = %d, want 0", b.HighWater())
	}
}

func TestBudgetUnlimited(t *testing.T) {
	b := NewBudget(0)
	if got := b.TryAcquire(1000); got != 1000 {
		t.Fatalf("unlimited TryAcquire(1000) = %d", got)
	}
	b.Release(1000)

	var nilB *Budget
	if got := nilB.TryAcquire(7); got != 7 {
		t.Fatalf("nil TryAcquire(7) = %d", got)
	}
	nilB.Release(7) // must not panic
	if nilB.InUse() != 0 || nilB.Capacity() != 0 {
		t.Fatal("nil budget gauges should read 0")
	}
}

func TestBudgetResize(t *testing.T) {
	b := NewBudget(2)
	if got := b.TryAcquire(2); got != 2 {
		t.Fatalf("TryAcquire(2) = %d", got)
	}
	b.Resize(1) // shrink below in-use: nothing new granted
	if got := b.TryAcquire(1); got != 0 {
		t.Fatalf("TryAcquire after shrink = %d, want 0", got)
	}
	b.Release(2)
	if got := b.TryAcquire(5); got != 1 {
		t.Fatalf("TryAcquire(5) at capacity 1 = %d, want 1", got)
	}
	b.Release(1)
}

func TestBudgetReleaseClamp(t *testing.T) {
	b := NewBudget(2)
	b.Release(10)
	if b.InUse() != 0 {
		t.Fatalf("over-release corrupted gauge: InUse=%d", b.InUse())
	}
	if got := b.TryAcquire(2); got != 2 {
		t.Fatalf("TryAcquire after over-release = %d, want 2", got)
	}
}

// TestBudgetNeverOvershoots hammers the budget from many goroutines
// and asserts the high-water mark never exceeds capacity.
func TestBudgetNeverOvershoots(t *testing.T) {
	const cap = 5
	b := NewBudget(cap)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				got := b.TryAcquire(3)
				if in := b.InUse(); in > cap {
					t.Errorf("in-use %d exceeds capacity %d", in, cap)
				}
				b.Release(got)
			}
		}()
	}
	wg.Wait()
	if hw := b.HighWater(); hw > cap {
		t.Fatalf("high water %d exceeds capacity %d", hw, cap)
	}
	if b.InUse() != 0 {
		t.Fatalf("leaked slots: InUse=%d", b.InUse())
	}
}
