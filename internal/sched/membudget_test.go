package sched

import (
	"sync"
	"testing"
)

func TestMemBudgetUnlimited(t *testing.T) {
	m := NewMemBudget(0)
	if !m.Reserve(1 << 40) {
		t.Fatal("unlimited budget denied a reservation")
	}
	if m.InUse() != 1<<40 {
		t.Fatalf("in-use = %d", m.InUse())
	}
	m.Release(1 << 40)
	if m.InUse() != 0 {
		t.Fatalf("in-use after release = %d", m.InUse())
	}
}

func TestMemBudgetNilGrantsEverything(t *testing.T) {
	var m *MemBudget
	if !m.Reserve(1 << 50) {
		t.Fatal("nil budget must grant")
	}
	m.Release(1) // must not panic
	m.Resize(10)
	if m.Capacity() != 0 || m.InUse() != 0 || m.HighWater() != 0 || m.Denials() != 0 {
		t.Fatal("nil budget gauges must read zero")
	}
}

func TestMemBudgetDenialAndHighWater(t *testing.T) {
	m := NewMemBudget(100)
	if !m.Reserve(60) || !m.Reserve(40) {
		t.Fatal("reservations within capacity denied")
	}
	if m.Reserve(1) {
		t.Fatal("over-capacity reservation granted")
	}
	if m.Denials() != 1 {
		t.Fatalf("denials = %d", m.Denials())
	}
	m.Release(40)
	if !m.Reserve(30) {
		t.Fatal("reservation after release denied")
	}
	if m.HighWater() != 100 {
		t.Fatalf("high water = %d", m.HighWater())
	}
	if m.InUse() != 90 {
		t.Fatalf("in-use = %d", m.InUse())
	}
}

func TestMemBudgetOverReleaseClamps(t *testing.T) {
	m := NewMemBudget(10)
	m.Reserve(5)
	m.Release(50)
	if m.InUse() != 0 {
		t.Fatalf("in-use = %d, want clamped 0", m.InUse())
	}
}

func TestMemBudgetResize(t *testing.T) {
	m := NewMemBudget(10)
	if m.Reserve(20) {
		t.Fatal("over-capacity granted")
	}
	m.Resize(0) // unlimited
	if !m.Reserve(20) {
		t.Fatal("unlimited after resize still denies")
	}
	m.Resize(5) // shrink below in-use: no reclaim, but new reservations fail
	if m.InUse() != 20 {
		t.Fatalf("resize reclaimed bytes: in-use = %d", m.InUse())
	}
	if m.Reserve(1) {
		t.Fatal("reservation above shrunk capacity granted")
	}
}

func TestStatementMemDrawsFromPool(t *testing.T) {
	pool := NewMemBudget(100)
	a := StatementMem(pool, 80)
	b := StatementMem(pool, 80)
	if !a.Reserve(60) {
		t.Fatal("first grant denied within both caps")
	}
	// b's own cap (80) has room, but the pool has only 40 left.
	if b.Reserve(50) {
		t.Fatal("pool exhaustion not enforced through the grant")
	}
	if b.Denials() != 1 {
		t.Fatalf("grant denials = %d", b.Denials())
	}
	if !b.Reserve(40) {
		t.Fatal("remaining pool capacity denied")
	}
	if pool.InUse() != 100 {
		t.Fatalf("pool in-use = %d", pool.InUse())
	}
	a.Release(60)
	if pool.InUse() != 40 {
		t.Fatalf("release did not propagate to pool: %d", pool.InUse())
	}
}

func TestStatementMemGrantCapBinds(t *testing.T) {
	pool := NewMemBudget(0) // unlimited pool
	g := StatementMem(pool, 10)
	if g.Reserve(11) {
		t.Fatal("grant cap not enforced")
	}
	if !g.Reserve(10) {
		t.Fatal("exact-cap reservation denied")
	}
}

func TestStatementMemFullyUnlimitedIsNil(t *testing.T) {
	if StatementMem(nil, 0) != nil {
		t.Fatal("unlimited statement over no pool should skip accounting")
	}
	if StatementMem(nil, -1) != nil {
		t.Fatal("negative workMem normalizes to unlimited")
	}
	if StatementMem(NewMemBudget(5), 0) == nil {
		t.Fatal("a pooled statement must account even with unlimited work_mem")
	}
	if StatementMem(nil, 5) == nil {
		t.Fatal("a capped statement must account even without a pool")
	}
}

func TestMemBudgetConcurrentNeverOversubscribes(t *testing.T) {
	pool := NewMemBudget(1000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			grant := StatementMem(pool, 500)
			held := int64(0)
			for i := 0; i < 1000; i++ {
				if grant.Reserve(7) {
					held += 7
				} else if held > 0 {
					grant.Release(held)
					held = 0
				}
			}
			grant.Release(held)
		}()
	}
	wg.Wait()
	if pool.InUse() != 0 {
		t.Fatalf("pool leaked %d bytes", pool.InUse())
	}
	if pool.HighWater() > 1000 {
		t.Fatalf("pool oversubscribed: high water %d", pool.HighWater())
	}
}
