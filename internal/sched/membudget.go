package sched

import (
	"fmt"
	"sync"
)

// MemBudget is a byte-granular memory budget, the accounting side of
// out-of-core execution. The engine owns one pool-level budget (the
// process-wide cap, DB.SetMemoryBudget); every statement gets a child
// grant capped at its work_mem whose reservations also draw down the
// pool, so concurrent statements share the pool instead of each
// assuming it is alone.
//
// Reservations are all-or-nothing and never block: a blocking operator
// asks before it buffers, and a denial is the signal to spill (sorts,
// joins, aggregates, spools) or to fail with ErrOutOfMemoryBudget
// (operators with no spill path). Zero capacity means unlimited and a
// nil *MemBudget grants everything, so unbudgeted embedded engines pay
// nothing — the same idiom as Budget.
type MemBudget struct {
	mu        sync.Mutex
	capacity  int64 // 0 = unlimited
	inUse     int64
	highWater int64
	denials   uint64 // reservations denied (each one is a spill trigger)
	parent    *MemBudget
}

// NewMemBudget returns a budget with the given byte capacity.
// capacity <= 0 means unlimited.
func NewMemBudget(capacity int64) *MemBudget {
	if capacity < 0 {
		capacity = 0
	}
	return &MemBudget{capacity: capacity}
}

// StatementMem returns a per-statement grant of up to workMem bytes
// whose reservations also draw from the pool (either may be nil /
// unlimited). A reservation succeeds only when both the grant and the
// pool have room.
func StatementMem(pool *MemBudget, workMem int64) *MemBudget {
	if workMem < 0 {
		workMem = 0
	}
	if workMem == 0 && pool == nil {
		return nil // fully unlimited: skip the accounting entirely
	}
	return &MemBudget{capacity: workMem, parent: pool}
}

// Reserve requests n more bytes. It returns false — reserving nothing —
// when the grant or any ancestor pool would exceed its capacity; the
// caller then spills or fails. A nil budget always grants.
func (m *MemBudget) Reserve(n int64) bool {
	if m == nil || n <= 0 {
		return true
	}
	m.mu.Lock()
	if m.capacity > 0 && m.inUse+n > m.capacity {
		m.denials++
		m.mu.Unlock()
		return false
	}
	m.mu.Unlock()
	// Child-to-parent order is acyclic, so holding no lock across the
	// parent call keeps the ordering trivially safe; the re-check below
	// closes the race window against concurrent reservations.
	if !m.parent.Reserve(n) {
		m.mu.Lock()
		m.denials++
		m.mu.Unlock()
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.capacity > 0 && m.inUse+n > m.capacity {
		m.denials++
		m.mu.Unlock()
		m.parent.Release(n)
		m.mu.Lock()
		return false
	}
	m.inUse += n
	if m.inUse > m.highWater {
		m.highWater = m.inUse
	}
	return true
}

// Release returns n bytes to the grant and every ancestor pool.
// Over-releasing clamps to zero rather than corrupting the gauge.
func (m *MemBudget) Release(n int64) {
	if m == nil || n <= 0 {
		return
	}
	m.mu.Lock()
	m.inUse -= n
	if m.inUse < 0 {
		m.inUse = 0
	}
	m.mu.Unlock()
	m.parent.Release(n)
}

// Resize changes the capacity; n <= 0 means unlimited. Shrinking does
// not reclaim bytes already reserved.
func (m *MemBudget) Resize(n int64) {
	if m == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	m.mu.Lock()
	m.capacity = n
	m.mu.Unlock()
}

// Capacity returns the current capacity (0 = unlimited).
func (m *MemBudget) Capacity() int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.capacity
}

// InUse returns the bytes currently reserved.
func (m *MemBudget) InUse() int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inUse
}

// HighWater returns the maximum concurrent reservation observed.
func (m *MemBudget) HighWater() int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.highWater
}

// Describe renders the budget's state as one compact line — the
// memory-grant span detail in statement traces.
func (m *MemBudget) Describe() string {
	if m == nil {
		return "unlimited"
	}
	m.mu.Lock()
	c, u, hw, d := m.capacity, m.inUse, m.highWater, m.denials
	m.mu.Unlock()
	cap := "unlimited"
	if c > 0 {
		cap = fmt.Sprintf("%d", c)
	}
	return fmt.Sprintf("cap=%s in_use=%d high_water=%d denials=%d", cap, u, hw, d)
}

// Denials returns how many reservations were turned away — each one a
// spill (or out-of-memory-budget error) somewhere in the executor.
func (m *MemBudget) Denials() uint64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.denials
}
