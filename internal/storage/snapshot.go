package storage

import "sync"

// TableData is the read surface shared by live tables and immutable
// snapshots: everything a scan (or the vertex runtime's input
// assembly) needs to read a column set. *Table implements it for
// latch-disciplined live reads; *Snapshot implements it for MVCC
// readers that hold no latch at all.
type TableData interface {
	// Name returns the table name.
	Name() string
	// Schema returns the column definitions.
	Schema() Schema
	// NumRows returns the row count.
	NumRows() int
	// Version returns the mutation counter of the contents.
	Version() uint64
	// SortKey returns the declared sort order, if any.
	SortKey() []int
	// Column returns column i.
	Column(i int) Column
	// Data returns the contents as one batch in shard-major row order.
	Data() *Batch
}

// Sharded is the partition-aware extension of TableData. Both *Table
// and *Snapshot implement it (an unpartitioned table is the one-shard
// case); the executor asserts it to morselize scans shard by shard and
// partition hash-join builds, and the planner to route point lookups
// to the owning shard.
type Sharded interface {
	TableData
	// NumShards returns the number of hash partitions (>= 1).
	NumShards() int
	// ShardKey returns the partition key column index, or -1.
	ShardKey() int
	// ShardRows returns the row count of shard i.
	ShardRows(i int) int
	// ShardBatch returns shard i's contents sharing column storage.
	ShardBatch(i int) *Batch
}

var (
	_ TableData = (*Table)(nil)
	_ TableData = (*Snapshot)(nil)
	_ Sharded   = (*Table)(nil)
	_ Sharded   = (*Snapshot)(nil)
)

// ShardView is the immutable copy-on-write view of a single shard's
// contents at one shard version. It shares the value arrays with the
// shard it was taken from — freezing is O(columns), not O(rows) — and
// the shard's next in-place mutation copies the columns it touches
// first (see ShardedTable.SnapshotShard), so a view's contents never
// change. The MVCC layer stages ShardViews as per-shard transaction
// pre-images.
type ShardView struct {
	cols    []Column
	version uint64
}

// Version returns the shard version the view was frozen at.
func (v *ShardView) Version() uint64 { return v.version }

// NumRows returns the view's row count.
func (v *ShardView) NumRows() int {
	if len(v.cols) == 0 {
		return 0
	}
	return v.cols[0].Len()
}

// Snapshot is an immutable view of a whole table at a single point:
// one frozen ShardView per shard. Readers iterate it with no lock
// whatsoever.
type Snapshot struct {
	name    string
	schema  Schema
	keyCol  int
	sortKey []int
	views   []*ShardView

	// dataOnce caches the shard-major concatenation for multi-shard
	// snapshots; the single-shard case shares columns directly.
	dataOnce sync.Once
	data     *Batch
}

// NewSnapshotFromViews assembles a snapshot from per-shard views — the
// MVCC layer uses it to compose a transaction pre-image from staged
// shard views plus live views of untouched shards.
func NewSnapshotFromViews(name string, schema Schema, keyCol int, sortKey []int, views []*ShardView) *Snapshot {
	return &Snapshot{
		name:    name,
		schema:  schema,
		keyCol:  keyCol,
		sortKey: append([]int(nil), sortKey...),
		views:   views,
	}
}

// Name implements TableData.
func (s *Snapshot) Name() string { return s.name }

// Schema implements TableData.
func (s *Snapshot) Schema() Schema { return s.schema }

// NumRows implements TableData.
func (s *Snapshot) NumRows() int {
	n := 0
	for _, v := range s.views {
		n += v.NumRows()
	}
	return n
}

// Version implements TableData: the sum of the frozen shard versions
// (matching ShardedTable.Version).
func (s *Snapshot) Version() uint64 {
	var sum uint64
	for _, v := range s.views {
		sum += v.version
	}
	return sum
}

// SortKey implements TableData.
func (s *Snapshot) SortKey() []int { return append([]int(nil), s.sortKey...) }

// Column implements TableData (shard-major concatenation).
func (s *Snapshot) Column(i int) Column {
	if len(s.views) == 1 {
		return s.views[0].cols[i]
	}
	return s.Data().Cols[i]
}

// Data implements TableData. For a single-shard snapshot the batch
// shares the frozen column storage; multi-shard snapshots concatenate
// once and cache.
func (s *Snapshot) Data() *Batch {
	if len(s.views) == 1 {
		return &Batch{Schema: s.schema, Cols: append([]Column(nil), s.views[0].cols...)}
	}
	s.dataOnce.Do(func() {
		cols := make([]Column, s.schema.Len())
		for j := range cols {
			parts := make([]Column, len(s.views))
			for i, v := range s.views {
				parts[i] = v.cols[j]
			}
			cols[j] = concatColumns(parts)
		}
		s.data = &Batch{Schema: s.schema, Cols: cols}
	})
	return s.data
}

// NumShards implements Sharded.
func (s *Snapshot) NumShards() int { return len(s.views) }

// ShardKey implements Sharded.
func (s *Snapshot) ShardKey() int { return s.keyCol }

// ShardRows implements Sharded.
func (s *Snapshot) ShardRows(i int) int { return s.views[i].NumRows() }

// ShardBatch implements Sharded; the batch shares the frozen columns.
func (s *Snapshot) ShardBatch(i int) *Batch {
	return &Batch{Schema: s.schema, Cols: append([]Column(nil), s.views[i].cols...)}
}

// View returns the frozen view of shard i.
func (s *Snapshot) View(i int) *ShardView { return s.views[i] }

// TableFromSnapshot materializes a snapshot back into a table object —
// the transaction layer uses it to re-register a table that was
// dropped (or recreated with another shape) inside a rolled-back
// transaction. The table keeps the snapshot's shard layout and gets
// re-frozen copies of each view's columns, never the views' own
// objects: the snapshot may still be pinned by readers, and appends
// mutate a column object in place. The shared flags make in-place
// updates copy the value arrays.
func TableFromSnapshot(s *Snapshot) *Table {
	t := NewShardedTable(s.name, s.schema.Clone(), s.keyCol, len(s.views))
	t.sortKey = append([]int(nil), s.sortKey...)
	for i, v := range s.views {
		sh := t.shards[i]
		sh.cols = make([]Column, len(v.cols))
		for j, c := range v.cols {
			sh.cols[j] = freezeColumn(c)
			sh.shared[j] = true
		}
		sh.version = v.version + 1
	}
	return t
}
