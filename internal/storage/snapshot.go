package storage

// TableData is the read surface shared by live tables and immutable
// snapshots: everything a scan (or the vertex runtime's input
// assembly) needs to read a column set. *Table implements it for
// latch-disciplined live reads; *Snapshot implements it for MVCC
// readers that hold no latch at all.
type TableData interface {
	// Name returns the table name.
	Name() string
	// Schema returns the column definitions.
	Schema() Schema
	// NumRows returns the row count.
	NumRows() int
	// Version returns the mutation counter of the contents.
	Version() uint64
	// SortKey returns the declared sort order, if any.
	SortKey() []int
	// Column returns column i.
	Column(i int) Column
	// Data returns the contents as one batch sharing column storage.
	Data() *Batch
}

var (
	_ TableData = (*Table)(nil)
	_ TableData = (*Snapshot)(nil)
)

// Snapshot is an immutable copy-on-write view of a table's contents at
// a single version. It shares the column storage with the table it was
// taken from: taking one is O(columns), not O(rows). The table marks
// those columns shared, and its next in-place mutation copies the
// columns it touches first (see Table.Snapshot), so a snapshot's
// contents never change — readers iterate it with no lock whatsoever.
type Snapshot struct {
	name    string
	schema  Schema
	cols    []Column
	sortKey []int
	version uint64
}

// Name implements TableData.
func (s *Snapshot) Name() string { return s.name }

// Schema implements TableData.
func (s *Snapshot) Schema() Schema { return s.schema }

// NumRows implements TableData.
func (s *Snapshot) NumRows() int {
	if len(s.cols) == 0 {
		return 0
	}
	return s.cols[0].Len()
}

// Version implements TableData.
func (s *Snapshot) Version() uint64 { return s.version }

// SortKey implements TableData.
func (s *Snapshot) SortKey() []int { return append([]int(nil), s.sortKey...) }

// Column implements TableData.
func (s *Snapshot) Column(i int) Column { return s.cols[i] }

// Data implements TableData. The batch shares the snapshot's (frozen)
// column storage.
func (s *Snapshot) Data() *Batch {
	return &Batch{Schema: s.schema, Cols: append([]Column(nil), s.cols...)}
}

// TableFromSnapshot materializes a snapshot back into a table object —
// the transaction layer uses it to re-register a table that was
// dropped (or recreated with another shape) inside a rolled-back
// transaction. The table gets re-frozen copies of the snapshot's
// columns, never the snapshot's own objects: the snapshot may still
// be pinned by readers, and appends mutate a column object in place.
// The shared flag makes in-place updates copy the value arrays.
func TableFromSnapshot(s *Snapshot) *Table {
	cols := make([]Column, len(s.cols))
	for i, c := range s.cols {
		cols[i] = freezeColumn(c)
	}
	return &Table{
		name:    s.name,
		schema:  s.schema.Clone(),
		cols:    cols,
		sortKey: append([]int(nil), s.sortKey...),
		version: s.version + 1,
		shared:  true,
	}
}
