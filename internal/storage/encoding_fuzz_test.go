package storage

import (
	"encoding/binary"
	"testing"
)

// Corrupt-input regression tests: a hostile length header must fail
// with errCorrupt before any allocation proportional to the claimed
// (rather than actual) size happens. Each crafted input is a handful of
// bytes claiming gigabytes of decoded data.

func TestDecodeStringDictHugeDictCount(t *testing.T) {
	buf := []byte{byte(EncDict)}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], 1<<40) // dictionary "contains" 2^40 strings
	buf = append(buf, tmp[:n]...)
	if _, err := DecodeStringDict(buf); err == nil {
		t.Fatal("huge dictionary count must be rejected")
	}
}

func TestDecodeStringDictHugeCodeCount(t *testing.T) {
	// Valid one-entry dictionary, then a code count far beyond the input.
	buf := []byte{byte(EncDict)}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], 1) // 1 dict entry
	buf = append(buf, tmp[:n]...)
	n = binary.PutUvarint(tmp[:], 1) // of length 1
	buf = append(buf, tmp[:n]...)
	buf = append(buf, 'x')
	n = binary.PutUvarint(tmp[:], 1<<40) // 2^40 codes
	buf = append(buf, tmp[:n]...)
	if _, err := DecodeStringDict(buf); err == nil {
		t.Fatal("huge code count must be rejected")
	}
}

func TestDecodeInt64RLEHugeRun(t *testing.T) {
	buf := []byte{byte(EncRLE)}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], 1<<50) // run of 2^50 values
	buf = append(buf, tmp[:n]...)
	n = binary.PutVarint(tmp[:], 42)
	buf = append(buf, tmp[:n]...)
	if _, err := DecodeInt64RLE(buf); err == nil {
		t.Fatal("absurd run length must be rejected")
	}
}

func TestDecodeInt64RLEMaxBound(t *testing.T) {
	enc := EncodeInt64RLE([]int64{5, 5, 5, 7})
	if vals, err := DecodeInt64RLEMax(enc, 4); err != nil || len(vals) != 4 {
		t.Fatalf("exact bound: vals=%v err=%v", vals, err)
	}
	if _, err := DecodeInt64RLEMax(enc, 3); err == nil {
		t.Fatal("decode exceeding max must fail")
	}
	if _, err := DecodeInt64RLEMax(enc, -1); err == nil {
		t.Fatal("negative max must fail")
	}
}

func TestDecodeInt64RLEZeroRun(t *testing.T) {
	buf := []byte{byte(EncRLE)}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], 0) // zero-length run: never emitted
	buf = append(buf, tmp[:n]...)
	n = binary.PutVarint(tmp[:], 1)
	buf = append(buf, tmp[:n]...)
	if _, err := DecodeInt64RLE(buf); err == nil {
		t.Fatal("zero-length run must be rejected")
	}
}

// Fuzzers: decoders must never panic or over-allocate on arbitrary
// bytes, and must round-trip anything the encoders produce.

func FuzzDecodeInt64RLE(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeInt64RLE([]int64{1, 1, 2, 3, 3, 3}))
	f.Add([]byte{byte(EncRLE), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, err := DecodeInt64RLE(data)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode and decode to the same values.
		rt, err := DecodeInt64RLE(EncodeInt64RLE(vals))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(rt) != len(vals) {
			t.Fatalf("round trip %d != %d values", len(rt), len(vals))
		}
	})
}

func FuzzDecodeInt64Delta(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeInt64Delta([]int64{10, 20, 30}))
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, err := DecodeInt64Delta(data)
		if err != nil {
			return
		}
		if len(vals) > len(data) {
			t.Fatalf("delta decoded %d values from %d bytes", len(vals), len(data))
		}
	})
}

func FuzzDecodeStringDict(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeStringDict([]string{"a", "b", "a"}))
	f.Add([]byte{byte(EncDict), 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, err := DecodeStringDict(data)
		if err != nil {
			return
		}
		// Allocation-safety invariant: entries are bounded by input size.
		if len(vals) > len(data) {
			t.Fatalf("dict decoded %d values from %d bytes", len(vals), len(data))
		}
	})
}

func FuzzDecodeFloat64Plain(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeFloat64Plain([]float64{1.5, -2.25}))
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, err := DecodeFloat64Plain(data)
		if err != nil {
			return
		}
		if len(vals)*8 > len(data) {
			t.Fatalf("plain decoded %d floats from %d bytes", len(vals), len(data))
		}
	})
}
