package storage

import (
	"math/rand"
	"testing"
)

func mergeFixtureSchema() Schema {
	return NewSchema(
		NotNullCol("id", TypeInt64),
		NotNullCol("kind", TypeInt64),
		Col("payload", TypeString),
		Col("weight", TypeFloat64),
	)
}

func appendRows(t *testing.T, b *Batch, rows [][4]interface{}) {
	t.Helper()
	for _, r := range rows {
		if err := b.AppendRow(Int64(int64(r[0].(int))), Int64(int64(r[1].(int))),
			Str(r[2].(string)), Float64(r[3].(float64))); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMergeSortedBatches(t *testing.T) {
	keys := []SortKey{{Col: 0}, {Col: 1}}
	a := NewBatch(mergeFixtureSchema())
	appendRows(t, a, [][4]interface{}{
		{1, 0, "v1", 0.0}, {1, 2, "m", 0.0}, {3, 0, "v3", 0.0}, {7, 2, "m", 0.0},
	})
	b := NewBatch(mergeFixtureSchema())
	appendRows(t, b, [][4]interface{}{
		{1, 1, "e", 0.5}, {1, 1, "e", 1.5}, {3, 1, "e", 2.5}, {9, 1, "e", 3.5},
	})
	out := MergeSortedBatches(a, b, keys)
	if out.Len() != 8 {
		t.Fatalf("merged len = %d, want 8", out.Len())
	}
	wantIDs := []int64{1, 1, 1, 1, 3, 3, 7, 9}
	wantKinds := []int64{0, 1, 1, 2, 0, 1, 2, 1}
	ids := out.Cols[0].(*Int64Column).Int64s()
	kinds := out.Cols[1].(*Int64Column).Int64s()
	for i := range wantIDs {
		if ids[i] != wantIDs[i] || kinds[i] != wantKinds[i] {
			t.Fatalf("row %d = (%d,%d), want (%d,%d)", i, ids[i], kinds[i], wantIDs[i], wantKinds[i])
		}
	}
}

func TestMergeSortedBatchesEmptySides(t *testing.T) {
	keys := []SortKey{{Col: 0}}
	a := NewBatch(mergeFixtureSchema())
	appendRows(t, a, [][4]interface{}{{2, 0, "x", 0.0}})
	empty := NewBatch(mergeFixtureSchema())

	if out := MergeSortedBatches(a, empty, keys); out.Len() != 1 {
		t.Errorf("a+empty len = %d, want 1", out.Len())
	}
	if out := MergeSortedBatches(empty, a, keys); out.Len() != 1 {
		t.Errorf("empty+a len = %d, want 1", out.Len())
	}
	if out := MergeSortedBatches(a, nil, keys); out.Len() != 1 {
		t.Errorf("a+nil len = %d, want 1", out.Len())
	}
	if out := MergeSortedBatches(empty, empty, keys); out.Len() != 0 {
		t.Errorf("empty+empty len = %d, want 0", out.Len())
	}
}

func TestMergeSortedBatchesPreservesNulls(t *testing.T) {
	s := NewSchema(NotNullCol("id", TypeInt64), Col("v", TypeString))
	a := &Batch{Schema: s, Cols: []Column{NewColumn(TypeInt64, 0), NewColumn(TypeString, 0)}}
	_ = a.Cols[0].Append(Int64(1))
	a.Cols[1].AppendNull()
	b := &Batch{Schema: s, Cols: []Column{NewColumn(TypeInt64, 0), NewColumn(TypeString, 0)}}
	_ = b.Cols[0].Append(Int64(2))
	_ = b.Cols[1].Append(Str("x"))

	out := MergeSortedBatches(a, b, []SortKey{{Col: 0}})
	if !out.Cols[1].IsNull(0) {
		t.Error("null lost in merge")
	}
	if out.Cols[1].IsNull(1) || out.Cols[1].Value(1).S != "x" {
		t.Error("non-null corrupted in merge")
	}
}

// TestMergeSortedBatchesMatchesFullSort cross-checks the merge against
// sorting the concatenation, on random pre-sorted inputs.
func TestMergeSortedBatchesMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := []SortKey{{Col: 0}, {Col: 1}}
	for trial := 0; trial < 20; trial++ {
		a := NewBatch(mergeFixtureSchema())
		b := NewBatch(mergeFixtureSchema())
		for i := 0; i < rng.Intn(40); i++ {
			appendRows(t, a, [][4]interface{}{{rng.Intn(10), rng.Intn(3), "a", float64(i)}})
		}
		for i := 0; i < rng.Intn(40); i++ {
			appendRows(t, b, [][4]interface{}{{rng.Intn(10), rng.Intn(3), "b", float64(i)}})
		}
		sa, sb := SortBatch(a, keys), SortBatch(b, keys)
		merged := MergeSortedBatches(sa, sb, keys)

		all := NewBatch(mergeFixtureSchema())
		if err := Concat(all, sa); err != nil {
			t.Fatal(err)
		}
		if err := Concat(all, sb); err != nil {
			t.Fatal(err)
		}
		want := SortBatch(all, keys)
		if merged.Len() != want.Len() {
			t.Fatalf("trial %d: len %d vs %d", trial, merged.Len(), want.Len())
		}
		for i := 0; i < want.Len(); i++ {
			mr, wr := merged.Row(i), want.Row(i)
			for c := 0; c < 2; c++ { // key columns must agree exactly
				if Compare(mr[c], wr[c]) != 0 {
					t.Fatalf("trial %d row %d col %d: %v vs %v", trial, i, c, mr[c], wr[c])
				}
			}
		}
	}
}

func TestTableVersionBumpsOnMutation(t *testing.T) {
	s := NewSchema(NotNullCol("id", TypeInt64), Col("v", TypeString))
	tbl := NewTable("t", s)
	v0 := tbl.Version()
	if err := tbl.AppendRow(Int64(1), Str("a")); err != nil {
		t.Fatal(err)
	}
	v1 := tbl.Version()
	if v1 == v0 {
		t.Error("AppendRow did not bump version")
	}
	if err := tbl.UpdateInPlace([]int{0}, 1, []Value{Str("b")}); err != nil {
		t.Fatal(err)
	}
	v2 := tbl.Version()
	if v2 == v1 {
		t.Error("UpdateInPlace did not bump version")
	}
	b := NewBatch(s)
	if err := b.AppendRow(Int64(2), Str("c")); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Replace(b); err != nil {
		t.Fatal(err)
	}
	if tbl.Version() == v2 {
		t.Error("Replace did not bump version")
	}
	v3 := tbl.Version()
	tbl.Truncate()
	if tbl.Version() == v3 {
		t.Error("Truncate did not bump version")
	}
	// Reads must not bump.
	v4 := tbl.Version()
	_ = tbl.Data()
	_ = tbl.NumRows()
	if tbl.Version() != v4 {
		t.Error("reads bumped version")
	}
}
