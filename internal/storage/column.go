package storage

import "fmt"

// Column is a typed, null-aware vector of values. Operators in the
// executor work on whole columns (vectorized execution); the vertex
// workers read them value-at-a-time through Value(i).
type Column interface {
	// Type returns the element type of the column.
	Type() Type
	// Len returns the number of rows.
	Len() int
	// IsNull reports whether row i is NULL.
	IsNull(i int) bool
	// Value returns the value at row i.
	Value(i int) Value
	// Append appends a value, coercing it to the column type.
	Append(v Value) error
	// AppendNull appends a NULL row.
	AppendNull()
	// Slice returns a copy of rows [from, to).
	Slice(from, to int) Column
	// Gather returns a new column with the rows at the given indexes,
	// in order. It is the core primitive behind filters, joins and
	// hash partitioning.
	Gather(idx []int) Column
}

// GatherPad is Gather with padding: index -1 yields a NULL row. The
// hash join's vectorized left-join path uses it to pad unmatched rows.
func GatherPad(c Column, idx []int) Column {
	hasPad := false
	for _, i := range idx {
		if i < 0 {
			hasPad = true
			break
		}
	}
	if !hasPad {
		return c.Gather(idx)
	}
	out := NewColumn(c.Type(), len(idx))
	for _, i := range idx {
		if i < 0 {
			out.AppendNull()
			continue
		}
		if c.IsNull(i) {
			out.AppendNull()
			continue
		}
		_ = out.Append(c.Value(i))
	}
	return out
}

// NullsOf exposes a column's null bitmap (nil when no row is NULL);
// used by the persistence layer.
func NullsOf(c Column) *Bitmap {
	switch col := c.(type) {
	case *Int64Column:
		return col.nulls
	case *Float64Column:
		return col.nulls
	case *StringColumn:
		return col.nulls
	case *BoolColumn:
		return col.nulls
	default:
		return nil
	}
}

// SetNulls installs a null bitmap on a column (persistence layer).
func SetNulls(c Column, b *Bitmap) {
	switch col := c.(type) {
	case *Int64Column:
		col.nulls = b
	case *Float64Column:
		col.nulls = b
	case *StringColumn:
		col.nulls = b
	case *BoolColumn:
		col.nulls = b
	}
}

// NewColumn allocates an empty column of type t with capacity hint n.
func NewColumn(t Type, n int) Column {
	switch t {
	case TypeInt64:
		return &Int64Column{vals: make([]int64, 0, n)}
	case TypeFloat64:
		return &Float64Column{vals: make([]float64, 0, n)}
	case TypeString:
		return &StringColumn{vals: make([]string, 0, n)}
	case TypeBool:
		return &BoolColumn{vals: make([]bool, 0, n)}
	default:
		panic(fmt.Sprintf("storage: unknown type %v", t))
	}
}

// Int64Column is a vector of INTEGER values.
type Int64Column struct {
	vals  []int64
	nulls *Bitmap
}

// NewInt64Column wraps the given values in a column (no copy).
func NewInt64Column(vals []int64) *Int64Column { return &Int64Column{vals: vals} }

// Int64s exposes the raw backing slice for vectorized operators.
func (c *Int64Column) Int64s() []int64 { return c.vals }

// Type implements Column.
func (c *Int64Column) Type() Type { return TypeInt64 }

// Len implements Column.
func (c *Int64Column) Len() int { return len(c.vals) }

// IsNull implements Column.
func (c *Int64Column) IsNull(i int) bool { return c.nulls.Get(i) }

// Value implements Column.
func (c *Int64Column) Value(i int) Value {
	if c.nulls.Get(i) {
		return Null(TypeInt64)
	}
	return Int64(c.vals[i])
}

// Append implements Column.
func (c *Int64Column) Append(v Value) error {
	cv, err := Coerce(v, TypeInt64)
	if err != nil {
		return err
	}
	if cv.Null {
		c.AppendNull()
		return nil
	}
	c.vals = append(c.vals, cv.I)
	if c.nulls != nil {
		c.nulls.Append(false)
	}
	return nil
}

// AppendInt64 appends a raw non-null value without coercion.
func (c *Int64Column) AppendInt64(v int64) {
	c.vals = append(c.vals, v)
	if c.nulls != nil {
		c.nulls.Append(false)
	}
}

// AppendNull implements Column.
func (c *Int64Column) AppendNull() {
	if c.nulls == nil {
		c.nulls = NewBitmap(len(c.vals))
	}
	c.vals = append(c.vals, 0)
	c.nulls.Resize(len(c.vals))
	c.nulls.Set(len(c.vals) - 1)
}

// Slice implements Column.
func (c *Int64Column) Slice(from, to int) Column {
	out := &Int64Column{vals: append([]int64(nil), c.vals[from:to]...)}
	if c.nulls != nil {
		out.nulls = c.nulls.Slice(from, to)
	}
	return out
}

// Gather implements Column.
func (c *Int64Column) Gather(idx []int) Column {
	out := &Int64Column{vals: make([]int64, len(idx))}
	for j, i := range idx {
		out.vals[j] = c.vals[i]
	}
	if c.nulls != nil && c.nulls.Any() {
		out.nulls = NewBitmap(len(idx))
		for j, i := range idx {
			if c.nulls.Get(i) {
				out.nulls.Set(j)
			}
		}
	}
	return out
}

// Float64Column is a vector of DOUBLE values.
type Float64Column struct {
	vals  []float64
	nulls *Bitmap
}

// NewFloat64Column wraps the given values in a column (no copy).
func NewFloat64Column(vals []float64) *Float64Column { return &Float64Column{vals: vals} }

// Float64s exposes the raw backing slice for vectorized operators.
func (c *Float64Column) Float64s() []float64 { return c.vals }

// Type implements Column.
func (c *Float64Column) Type() Type { return TypeFloat64 }

// Len implements Column.
func (c *Float64Column) Len() int { return len(c.vals) }

// IsNull implements Column.
func (c *Float64Column) IsNull(i int) bool { return c.nulls.Get(i) }

// Value implements Column.
func (c *Float64Column) Value(i int) Value {
	if c.nulls.Get(i) {
		return Null(TypeFloat64)
	}
	return Float64(c.vals[i])
}

// Append implements Column.
func (c *Float64Column) Append(v Value) error {
	cv, err := Coerce(v, TypeFloat64)
	if err != nil {
		return err
	}
	if cv.Null {
		c.AppendNull()
		return nil
	}
	c.vals = append(c.vals, cv.F)
	if c.nulls != nil {
		c.nulls.Append(false)
	}
	return nil
}

// AppendFloat64 appends a raw non-null value without coercion.
func (c *Float64Column) AppendFloat64(v float64) {
	c.vals = append(c.vals, v)
	if c.nulls != nil {
		c.nulls.Append(false)
	}
}

// AppendNull implements Column.
func (c *Float64Column) AppendNull() {
	if c.nulls == nil {
		c.nulls = NewBitmap(len(c.vals))
	}
	c.vals = append(c.vals, 0)
	c.nulls.Resize(len(c.vals))
	c.nulls.Set(len(c.vals) - 1)
}

// Slice implements Column.
func (c *Float64Column) Slice(from, to int) Column {
	out := &Float64Column{vals: append([]float64(nil), c.vals[from:to]...)}
	if c.nulls != nil {
		out.nulls = c.nulls.Slice(from, to)
	}
	return out
}

// Gather implements Column.
func (c *Float64Column) Gather(idx []int) Column {
	out := &Float64Column{vals: make([]float64, len(idx))}
	for j, i := range idx {
		out.vals[j] = c.vals[i]
	}
	if c.nulls != nil && c.nulls.Any() {
		out.nulls = NewBitmap(len(idx))
		for j, i := range idx {
			if c.nulls.Get(i) {
				out.nulls.Set(j)
			}
		}
	}
	return out
}

// StringColumn is a vector of VARCHAR values.
type StringColumn struct {
	vals  []string
	nulls *Bitmap
}

// NewStringColumn wraps the given values in a column (no copy).
func NewStringColumn(vals []string) *StringColumn { return &StringColumn{vals: vals} }

// Strings exposes the raw backing slice for vectorized operators.
func (c *StringColumn) Strings() []string { return c.vals }

// Type implements Column.
func (c *StringColumn) Type() Type { return TypeString }

// Len implements Column.
func (c *StringColumn) Len() int { return len(c.vals) }

// IsNull implements Column.
func (c *StringColumn) IsNull(i int) bool { return c.nulls.Get(i) }

// Value implements Column.
func (c *StringColumn) Value(i int) Value {
	if c.nulls.Get(i) {
		return Null(TypeString)
	}
	return Str(c.vals[i])
}

// Append implements Column.
func (c *StringColumn) Append(v Value) error {
	cv, err := Coerce(v, TypeString)
	if err != nil {
		return err
	}
	if cv.Null {
		c.AppendNull()
		return nil
	}
	c.vals = append(c.vals, cv.S)
	if c.nulls != nil {
		c.nulls.Append(false)
	}
	return nil
}

// AppendString appends a raw non-null value without coercion.
func (c *StringColumn) AppendString(v string) {
	c.vals = append(c.vals, v)
	if c.nulls != nil {
		c.nulls.Append(false)
	}
}

// AppendNull implements Column.
func (c *StringColumn) AppendNull() {
	if c.nulls == nil {
		c.nulls = NewBitmap(len(c.vals))
	}
	c.vals = append(c.vals, "")
	c.nulls.Resize(len(c.vals))
	c.nulls.Set(len(c.vals) - 1)
}

// Slice implements Column.
func (c *StringColumn) Slice(from, to int) Column {
	out := &StringColumn{vals: append([]string(nil), c.vals[from:to]...)}
	if c.nulls != nil {
		out.nulls = c.nulls.Slice(from, to)
	}
	return out
}

// Gather implements Column.
func (c *StringColumn) Gather(idx []int) Column {
	out := &StringColumn{vals: make([]string, len(idx))}
	for j, i := range idx {
		out.vals[j] = c.vals[i]
	}
	if c.nulls != nil && c.nulls.Any() {
		out.nulls = NewBitmap(len(idx))
		for j, i := range idx {
			if c.nulls.Get(i) {
				out.nulls.Set(j)
			}
		}
	}
	return out
}

// BoolColumn is a vector of BOOLEAN values.
type BoolColumn struct {
	vals  []bool
	nulls *Bitmap
}

// NewBoolColumn wraps the given values in a column (no copy).
func NewBoolColumn(vals []bool) *BoolColumn { return &BoolColumn{vals: vals} }

// Bools exposes the raw backing slice for vectorized operators.
func (c *BoolColumn) Bools() []bool { return c.vals }

// Type implements Column.
func (c *BoolColumn) Type() Type { return TypeBool }

// Len implements Column.
func (c *BoolColumn) Len() int { return len(c.vals) }

// IsNull implements Column.
func (c *BoolColumn) IsNull(i int) bool { return c.nulls.Get(i) }

// Value implements Column.
func (c *BoolColumn) Value(i int) Value {
	if c.nulls.Get(i) {
		return Null(TypeBool)
	}
	return Bool(c.vals[i])
}

// Append implements Column.
func (c *BoolColumn) Append(v Value) error {
	cv, err := Coerce(v, TypeBool)
	if err != nil {
		return err
	}
	if cv.Null {
		c.AppendNull()
		return nil
	}
	c.vals = append(c.vals, cv.I != 0)
	if c.nulls != nil {
		c.nulls.Append(false)
	}
	return nil
}

// AppendBool appends a raw non-null value without coercion.
func (c *BoolColumn) AppendBool(v bool) {
	c.vals = append(c.vals, v)
	if c.nulls != nil {
		c.nulls.Append(false)
	}
}

// AppendNull implements Column.
func (c *BoolColumn) AppendNull() {
	if c.nulls == nil {
		c.nulls = NewBitmap(len(c.vals))
	}
	c.vals = append(c.vals, false)
	c.nulls.Resize(len(c.vals))
	c.nulls.Set(len(c.vals) - 1)
}

// Slice implements Column.
func (c *BoolColumn) Slice(from, to int) Column {
	out := &BoolColumn{vals: append([]bool(nil), c.vals[from:to]...)}
	if c.nulls != nil {
		out.nulls = c.nulls.Slice(from, to)
	}
	return out
}

// Gather implements Column.
func (c *BoolColumn) Gather(idx []int) Column {
	out := &BoolColumn{vals: make([]bool, len(idx))}
	for j, i := range idx {
		out.vals[j] = c.vals[i]
	}
	if c.nulls != nil && c.nulls.Any() {
		out.nulls = NewBitmap(len(idx))
		for j, i := range idx {
			if c.nulls.Get(i) {
				out.nulls.Set(j)
			}
		}
	}
	return out
}
