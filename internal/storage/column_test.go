package storage

import (
	"testing"
	"testing/quick"
)

func TestColumnAppendValue(t *testing.T) {
	for _, typ := range []Type{TypeInt64, TypeFloat64, TypeString, TypeBool} {
		c := NewColumn(typ, 4)
		if c.Type() != typ {
			t.Errorf("NewColumn(%v).Type() = %v", typ, c.Type())
		}
		var v Value
		switch typ {
		case TypeInt64:
			v = Int64(7)
		case TypeFloat64:
			v = Float64(1.5)
		case TypeString:
			v = Str("x")
		case TypeBool:
			v = Bool(true)
		}
		if err := c.Append(v); err != nil {
			t.Fatalf("append %v: %v", typ, err)
		}
		c.AppendNull()
		if c.Len() != 2 {
			t.Fatalf("%v: len = %d, want 2", typ, c.Len())
		}
		if !Equal(c.Value(0), v) {
			t.Errorf("%v: Value(0) = %v, want %v", typ, c.Value(0), v)
		}
		if !c.IsNull(1) || !c.Value(1).Null {
			t.Errorf("%v: row 1 should be NULL", typ)
		}
		if c.IsNull(0) {
			t.Errorf("%v: row 0 should not be NULL", typ)
		}
	}
}

func TestColumnGather(t *testing.T) {
	c := NewColumn(TypeInt64, 8)
	for i := int64(0); i < 8; i++ {
		if err := c.Append(Int64(i * 10)); err != nil {
			t.Fatal(err)
		}
	}
	g := c.Gather([]int{7, 0, 3, 3})
	want := []int64{70, 0, 30, 30}
	for i, w := range want {
		if g.Value(i).I != w {
			t.Errorf("gather[%d] = %d, want %d", i, g.Value(i).I, w)
		}
	}
}

func TestColumnGatherPreservesNulls(t *testing.T) {
	c := NewColumn(TypeString, 4)
	_ = c.Append(Str("a"))
	c.AppendNull()
	_ = c.Append(Str("c"))
	g := c.Gather([]int{2, 1, 0})
	if g.IsNull(0) || !g.IsNull(1) || g.IsNull(2) {
		t.Errorf("null positions after gather wrong: %v %v %v", g.IsNull(0), g.IsNull(1), g.IsNull(2))
	}
}

func TestColumnSliceIsCopy(t *testing.T) {
	c := NewColumn(TypeInt64, 4)
	for i := int64(0); i < 4; i++ {
		_ = c.Append(Int64(i))
	}
	s := c.Slice(1, 3)
	if s.Len() != 2 || s.Value(0).I != 1 || s.Value(1).I != 2 {
		t.Fatalf("slice contents wrong: %v", s)
	}
	// Mutating the original must not affect the slice.
	if err := SetValue(c, 1, Int64(99)); err != nil {
		t.Fatal(err)
	}
	if s.Value(0).I != 1 {
		t.Error("Slice must deep-copy")
	}
}

func TestSetValue(t *testing.T) {
	c := NewColumn(TypeFloat64, 2)
	_ = c.Append(Float64(1))
	_ = c.Append(Float64(2))
	if err := SetValue(c, 1, Float64(9.5)); err != nil {
		t.Fatal(err)
	}
	if c.Value(1).F != 9.5 {
		t.Errorf("after set, Value(1) = %v", c.Value(1))
	}
	if err := SetValue(c, 0, Null(TypeFloat64)); err != nil {
		t.Fatal(err)
	}
	if !c.IsNull(0) {
		t.Error("SetValue NULL did not mark null")
	}
	// Overwriting a null clears the bit.
	if err := SetValue(c, 0, Int64(3)); err != nil {
		t.Fatal(err)
	}
	if c.IsNull(0) || c.Value(0).F != 3 {
		t.Error("overwriting null failed")
	}
	if err := SetValue(c, 5, Float64(0)); err == nil {
		t.Error("out-of-range set should error")
	}
}

func TestColumnRoundTripProperty(t *testing.T) {
	f := func(vals []int64) bool {
		c := NewColumn(TypeInt64, len(vals))
		for _, v := range vals {
			if err := c.Append(Int64(v)); err != nil {
				return false
			}
		}
		if c.Len() != len(vals) {
			return false
		}
		for i, v := range vals {
			if c.Value(i).I != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTypedAppendHelpers(t *testing.T) {
	ic := &Int64Column{}
	ic.AppendInt64(4)
	fc := &Float64Column{}
	fc.AppendFloat64(2.5)
	sc := &StringColumn{}
	sc.AppendString("hi")
	bc := &BoolColumn{}
	bc.AppendBool(true)
	if ic.Value(0).I != 4 || fc.Value(0).F != 2.5 || sc.Value(0).S != "hi" || !bc.Value(0).Bool() {
		t.Error("typed append helpers broken")
	}
	// Typed appends after a null must keep the bitmap in sync.
	ic.AppendNull()
	ic.AppendInt64(5)
	if ic.IsNull(2) || !ic.IsNull(1) {
		t.Error("null bitmap out of sync after typed append")
	}
}
