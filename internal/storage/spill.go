package storage

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync/atomic"
)

// Spill runs: the on-disk format for out-of-core execution. A run is a
// sequence of frames, one encoded batch per frame, written through the
// same RLE/delta/dict codecs that compress table segments — so the
// spill path reuses their capped, fuzz-tested decoders instead of
// growing a second serialization surface. Frame metadata (offsets, row
// counts) lives in memory with the run handle; the file itself is just
// concatenated length-prefixed frames, read back with pread so several
// consumers can walk one run concurrently.
//
// Frame layout (after the uvarint payload-length prefix):
//
//	uvarint rows
//	per column: uvarint segLen, seg bytes, uvarint nullsLen, nulls bytes
//
// int64 columns take the better of RLE/delta (the segment's leading tag
// byte says which), float64 is plain fixed-width, strings are
// dictionary-coded, bools ride as 0/1 int64 RLE, and null bitmaps as
// 0/1 int64 RLE with zero length meaning "no nulls".

// SpillFile is what a run writes to and reads from. *os.File satisfies
// it; test filesystems return failing implementations to exercise the
// error paths.
type SpillFile interface {
	io.Writer
	io.ReaderAt
	io.Closer
	Name() string
}

// SpillFS creates spill files. The default implementation hands out
// anonymous temp files; tests inject failures or count creations.
type SpillFS interface {
	CreateTemp() (SpillFile, error)
}

// OSSpillFS spills to temp files under Dir ("" = the system temp dir).
type OSSpillFS struct {
	Dir string
}

type osSpillFile struct {
	*os.File
}

// Close removes the file along with closing it: spill runs never
// outlive the query that wrote them.
func (f osSpillFile) Close() error {
	err := f.File.Close()
	if rmErr := os.Remove(f.File.Name()); err == nil {
		err = rmErr
	}
	return err
}

// CreateTemp implements SpillFS.
func (fs OSSpillFS) CreateTemp() (SpillFile, error) {
	f, err := os.CreateTemp(fs.Dir, "vx-spill-*.run")
	if err != nil {
		return nil, err
	}
	return osSpillFile{f}, nil
}

// DefaultSpillFS is where operators spill when the plan does not
// inject a filesystem of its own: the managed spill directory
// (SetSpillDir / SetSpillDiskCap), which accounts every live spill
// byte and enforces the optional disk-usage cap.
var DefaultSpillFS SpillFS = spillDir

// Engine-wide spill counters, surfaced as obs gauges / SHOW STATS.
var (
	spillRunsTotal  atomic.Int64
	spillBytesTotal atomic.Int64
)

// SpillTotals reports cumulative finished spill runs and bytes written
// since process start.
func SpillTotals() (runs, bytes int64) {
	return spillRunsTotal.Load(), spillBytesTotal.Load()
}

// BatchBytes estimates the in-memory footprint of a batch for memory
// accounting: fixed-width columns at machine width, strings at header
// plus payload. It deliberately overcounts a little (budget accounting
// should err toward spilling early, not OOMing late).
func BatchBytes(b *Batch) int64 {
	if b == nil {
		return 0
	}
	var total int64
	for _, c := range b.Cols {
		n := int64(c.Len())
		switch col := c.(type) {
		case *Int64Column:
			total += 8 * n
		case *Float64Column:
			total += 8 * n
		case *BoolColumn:
			total += n
		case *StringColumn:
			total += 16 * n
			for _, s := range col.vals {
				total += int64(len(s))
			}
		default:
			total += 16 * n
		}
		if nulls := NullsOf(c); nulls != nil {
			total += n / 8
		}
	}
	return total
}

// EncodeSpillBatch encodes one batch as a spill frame payload (without
// the outer length prefix the run writer adds).
func EncodeSpillBatch(b *Batch) []byte {
	var tmp [binary.MaxVarintLen64]byte
	buf := make([]byte, 0, 64)
	n := binary.PutUvarint(tmp[:], uint64(b.Len()))
	buf = append(buf, tmp[:n]...)
	for _, c := range b.Cols {
		seg := encodeSpillColumn(c)
		n = binary.PutUvarint(tmp[:], uint64(len(seg)))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, seg...)
		nulls := encodeSpillNulls(c)
		n = binary.PutUvarint(tmp[:], uint64(len(nulls)))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, nulls...)
	}
	return buf
}

func encodeSpillColumn(c Column) []byte {
	switch col := c.(type) {
	case *Int64Column:
		if enc, _ := CompressedSize(col.vals); enc == EncRLE {
			return EncodeInt64RLE(col.vals)
		}
		return EncodeInt64Delta(col.vals)
	case *Float64Column:
		return EncodeFloat64Plain(col.vals)
	case *StringColumn:
		return EncodeStringDict(col.vals)
	case *BoolColumn:
		vals := make([]int64, len(col.vals))
		for i, v := range col.vals {
			if v {
				vals[i] = 1
			}
		}
		return EncodeInt64RLE(vals)
	default:
		panic(fmt.Sprintf("storage: cannot spill column type %T", c))
	}
}

func encodeSpillNulls(c Column) []byte {
	nulls := NullsOf(c)
	if nulls == nil || !nulls.Any() {
		return nil
	}
	vals := make([]int64, c.Len())
	for i := range vals {
		if nulls.Get(i) {
			vals[i] = 1
		}
	}
	return EncodeInt64RLE(vals)
}

// DecodeSpillBatch decodes a spill frame payload against the schema it
// was written with. Every length is validated against the declared row
// count before allocation, so truncated or hostile frames fail with
// errCorrupt instead of over-allocating — the same contract as the
// segment decoders underneath.
func DecodeSpillBatch(data []byte, schema Schema) (*Batch, error) {
	rows64, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, errCorrupt
	}
	data = data[n:]
	// A row consumes at least one encoded byte somewhere; a frame
	// claiming more rows than bytes remaining is corrupt. Schemas with
	// zero columns carry no evidence either way, so cap those too.
	if rows64 > uint64(len(data))*8+1 || rows64 > maxRLEElements {
		return nil, errCorrupt
	}
	rows := int(rows64)
	out := &Batch{Schema: schema, Cols: make([]Column, schema.Len())}
	for ci, sc := range schema.Cols {
		seg, rest, err := spillSegment(data)
		if err != nil {
			return nil, err
		}
		data = rest
		col, err := decodeSpillColumn(seg, sc.Type, rows)
		if err != nil {
			return nil, err
		}
		nullsSeg, rest, err := spillSegment(data)
		if err != nil {
			return nil, err
		}
		data = rest
		if len(nullsSeg) > 0 {
			flags, err := DecodeInt64RLEMax(nullsSeg, rows)
			if err != nil {
				return nil, err
			}
			if len(flags) != rows {
				return nil, errCorrupt
			}
			bm := NewBitmap(rows)
			any := false
			for i, f := range flags {
				switch f {
				case 0:
				case 1:
					bm.Set(i)
					any = true
				default:
					return nil, errCorrupt
				}
			}
			if any {
				SetNulls(col, bm)
			}
		}
		out.Cols[ci] = col
	}
	if len(data) != 0 {
		return nil, errCorrupt
	}
	return out, nil
}

// spillSegment splits one length-prefixed segment off data.
func spillSegment(data []byte) (seg, rest []byte, err error) {
	l, n := binary.Uvarint(data)
	if n <= 0 || l > uint64(len(data)-n) {
		return nil, nil, errCorrupt
	}
	return data[n : n+int(l)], data[n+int(l):], nil
}

func decodeSpillColumn(seg []byte, t Type, rows int) (Column, error) {
	switch t {
	case TypeInt64:
		vals, err := decodeSpillInt64(seg, rows)
		if err != nil {
			return nil, err
		}
		return &Int64Column{vals: vals}, nil
	case TypeFloat64:
		vals, err := DecodeFloat64Plain(seg)
		if err != nil {
			return nil, err
		}
		if len(vals) != rows {
			return nil, errCorrupt
		}
		return &Float64Column{vals: vals}, nil
	case TypeString:
		vals, err := DecodeStringDict(seg)
		if err != nil {
			return nil, err
		}
		if len(vals) != rows {
			return nil, errCorrupt
		}
		return &StringColumn{vals: vals}, nil
	case TypeBool:
		raw, err := decodeSpillInt64(seg, rows)
		if err != nil {
			return nil, err
		}
		vals := make([]bool, len(raw))
		for i, v := range raw {
			switch v {
			case 0:
			case 1:
				vals[i] = true
			default:
				return nil, errCorrupt
			}
		}
		return &BoolColumn{vals: vals}, nil
	default:
		return nil, errCorrupt
	}
}

func decodeSpillInt64(seg []byte, rows int) ([]int64, error) {
	if len(seg) == 0 {
		return nil, errCorrupt
	}
	var (
		vals []int64
		err  error
	)
	switch Encoding(seg[0]) {
	case EncRLE:
		vals, err = DecodeInt64RLEMax(seg, rows)
	case EncDelta:
		vals, err = DecodeInt64Delta(seg)
	default:
		return nil, errCorrupt
	}
	if err != nil {
		return nil, err
	}
	if len(vals) != rows {
		return nil, errCorrupt
	}
	return vals, nil
}

// frameMeta locates one frame inside a run file.
type frameMeta struct {
	off   int64 // payload offset (past the length prefix)
	size  int64 // payload length
	rows  int   // rows in the frame
	start int64 // global row offset of the frame within the run
}

// RunWriter streams batches into a new spill run.
type RunWriter struct {
	f      SpillFile
	schema Schema
	off    int64
	frames []frameMeta
	rows   int64
}

// NewRunWriter opens a fresh run on fs for batches of the given schema.
func NewRunWriter(fs SpillFS, schema Schema) (*RunWriter, error) {
	if fs == nil {
		fs = DefaultSpillFS
	}
	f, err := fs.CreateTemp()
	if err != nil {
		return nil, fmt.Errorf("storage: create spill run: %w", err)
	}
	return &RunWriter{f: f, schema: schema}, nil
}

// Write appends one batch as a frame. Empty batches are skipped.
func (w *RunWriter) Write(b *Batch) error {
	if b.Len() == 0 {
		return nil
	}
	payload := EncodeSpillBatch(b)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(payload)))
	if _, err := w.f.Write(tmp[:n]); err != nil {
		return fmt.Errorf("storage: write spill run: %w", err)
	}
	if _, err := w.f.Write(payload); err != nil {
		return fmt.Errorf("storage: write spill run: %w", err)
	}
	w.frames = append(w.frames, frameMeta{
		off:   w.off + int64(n),
		size:  int64(len(payload)),
		rows:  b.Len(),
		start: w.rows,
	})
	w.off += int64(n) + int64(len(payload))
	w.rows += int64(b.Len())
	return nil
}

// Frames returns the number of frames written so far.
func (w *RunWriter) Frames() int { return len(w.frames) }

// FrameRows returns the row count of written frame i.
func (w *RunWriter) FrameRows(i int) int { return w.frames[i].rows }

// FrameStart returns the global row offset of written frame i.
func (w *RunWriter) FrameStart(i int) int64 { return w.frames[i].start }

// Rows returns the rows written so far.
func (w *RunWriter) Rows() int64 { return w.rows }

// Bytes returns the bytes written so far.
func (w *RunWriter) Bytes() int64 { return w.off }

// ReadFrame decodes an already-written frame of the in-progress run.
// Reads are positional, so a reader may consume sealed frames while the
// writer keeps appending (the spool streams its disk overflow this
// way); the caller serializes access to the frame metadata itself.
func (w *RunWriter) ReadFrame(i int) (*Batch, error) {
	fm := w.frames[i]
	buf := make([]byte, fm.size)
	if _, err := w.f.ReadAt(buf, fm.off); err != nil {
		return nil, fmt.Errorf("storage: read spill run: %w", err)
	}
	b, err := DecodeSpillBatch(buf, w.schema)
	if err != nil {
		return nil, fmt.Errorf("storage: read spill run: %w", err)
	}
	return b, nil
}

// Finish seals the run and returns its read handle. The writer must
// not be used afterwards.
func (w *RunWriter) Finish() (*SpillRun, error) {
	run := &SpillRun{f: w.f, schema: w.schema, frames: w.frames, rows: w.rows, bytes: w.off}
	spillRunsTotal.Add(1)
	spillBytesTotal.Add(w.off)
	return run, nil
}

// Abort discards a half-written run.
func (w *RunWriter) Abort() {
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
}

// SpillRun is a sealed on-disk run: encoded frames plus in-memory
// metadata. Frames may be read in any order and from multiple
// goroutines (reads are positional).
type SpillRun struct {
	f      SpillFile
	schema Schema
	frames []frameMeta
	rows   int64
	bytes  int64
}

// Rows returns the total row count of the run.
func (r *SpillRun) Rows() int64 { return r.rows }

// Bytes returns the encoded size of the run on disk.
func (r *SpillRun) Bytes() int64 { return r.bytes }

// Frames returns the number of frames in the run.
func (r *SpillRun) Frames() int { return len(r.frames) }

// FrameRows returns the row count of frame i.
func (r *SpillRun) FrameRows(i int) int { return r.frames[i].rows }

// FrameStart returns the global row offset of frame i within the run.
func (r *SpillRun) FrameStart(i int) int64 { return r.frames[i].start }

// Schema returns the schema the run was written with.
func (r *SpillRun) Schema() Schema { return r.schema }

// ReadFrame decodes frame i.
func (r *SpillRun) ReadFrame(i int) (*Batch, error) {
	fm := r.frames[i]
	buf := make([]byte, fm.size)
	if _, err := r.f.ReadAt(buf, fm.off); err != nil {
		return nil, fmt.Errorf("storage: read spill run: %w", err)
	}
	b, err := DecodeSpillBatch(buf, r.schema)
	if err != nil {
		return nil, fmt.Errorf("storage: read spill run: %w", err)
	}
	return b, nil
}

// Close releases the run's file (removing it, for the OS filesystem).
func (r *SpillRun) Close() error {
	if r == nil || r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}

// Reader returns a sequential frame iterator over the run.
func (r *SpillRun) Reader() *RunReader { return &RunReader{run: r} }

// RunReader iterates a run's frames in order.
type RunReader struct {
	run *SpillRun
	i   int
}

// Next returns the next frame, or (nil, nil) at end of run.
func (rr *RunReader) Next() (*Batch, error) {
	if rr.i >= rr.run.Frames() {
		return nil, nil
	}
	b, err := rr.run.ReadFrame(rr.i)
	if err != nil {
		return nil, err
	}
	rr.i++
	return b, nil
}

// runChunker accumulates merge output and writes exact BatchSize-row
// frames (plus one trailing partial), so external and in-memory sort
// paths emit identically-shaped batches downstream.
type runChunker struct {
	w       *RunWriter
	pending *Batch
}

func (c *runChunker) add(b *Batch) error {
	if b.Len() == 0 {
		return nil
	}
	if c.pending != nil && c.pending.Len() > 0 {
		need := BatchSize - c.pending.Len()
		take := b.Len()
		if take > need {
			take = need
		}
		if err := Concat(c.pending, b.Slice(0, take)); err != nil {
			return err
		}
		b = b.Slice(take, b.Len())
		if c.pending.Len() == BatchSize {
			if err := c.w.Write(c.pending); err != nil {
				return err
			}
			c.pending = nil
		}
	}
	for b.Len() >= BatchSize {
		if err := c.w.Write(b.Slice(0, BatchSize)); err != nil {
			return err
		}
		b = b.Slice(BatchSize, b.Len())
	}
	if b.Len() > 0 {
		c.pending = b.Slice(0, b.Len())
	}
	return nil
}

func (c *runChunker) flush() error {
	if c.pending != nil && c.pending.Len() > 0 {
		if err := c.w.Write(c.pending); err != nil {
			return err
		}
		c.pending = nil
	}
	return nil
}

// MergeSpillRuns streams two sorted runs into one sorted run, holding
// only a few frames in memory. Stability matches MergeSortedBatches:
// on equal keys, rows of a precede rows of b — so a ladder of pairwise
// merges over runs cut from contiguous input regions reproduces the
// in-memory stable sort byte for byte.
//
// Each iteration finalizes whichever buffered frame ends lower — only
// its rows can have every interleaving partner in view. Rows of the
// other frame at or above the finalized frame's last row are withheld:
// a future row of the finalized side equal to them must still precede
// (a wins ties).
func MergeSpillRuns(fs SpillFS, a, b *SpillRun, keys []SortKey) (*SpillRun, error) {
	w, err := NewRunWriter(fs, a.schema)
	if err != nil {
		return nil, err
	}
	out, err := mergeSpillRuns(w, a, b, keys)
	if err != nil {
		w.Abort()
		return nil, err
	}
	return out, nil
}

func mergeSpillRuns(w *RunWriter, a, b *SpillRun, keys []SortKey) (*SpillRun, error) {
	ra, rb := a.Reader(), b.Reader()
	ch := runChunker{w: w}
	pa, err := ra.Next()
	if err != nil {
		return nil, err
	}
	pb, err := rb.Next()
	if err != nil {
		return nil, err
	}
	for pa != nil {
		if pb == nil || pb.Len() == 0 {
			if pb, err = rb.Next(); err != nil {
				return nil, err
			}
			if pb == nil {
				// b exhausted: the rest of a passes through.
				for pa != nil {
					if err := ch.add(pa); err != nil {
						return nil, err
					}
					if pa, err = ra.Next(); err != nil {
						return nil, err
					}
				}
				break
			}
			continue
		}
		lastA, lastB := pa.Len()-1, pb.Len()-1
		if compareRows(pa, lastA, pb, lastB, keys) <= 0 {
			// a's frame ends lowest: every future b-row is at or above
			// b's frame last, hence above a's last, so the whole a-frame
			// finalizes now. Only the b-prefix strictly below a's last
			// row joins it — a future a-row equal to a withheld b-row
			// must still precede it.
			cut := searchBatch(pb, func(i int) bool {
				return compareRows(pb, i, pa, lastA, keys) >= 0
			})
			if err := ch.add(MergeSortedBatches(pa, pb.Slice(0, cut), keys)); err != nil {
				return nil, err
			}
			pb = pb.Slice(cut, pb.Len())
			if pa, err = ra.Next(); err != nil {
				return nil, err
			}
		} else {
			// b's frame ends lower: it finalizes, taking the a-prefix at
			// or below its last row along (equal a-rows go now — a wins
			// ties, so they cannot trail the b-rows they tie with).
			cut := searchBatch(pa, func(i int) bool {
				return compareRows(pa, i, pb, lastB, keys) > 0
			})
			if err := ch.add(MergeSortedBatches(pa.Slice(0, cut), pb, keys)); err != nil {
				return nil, err
			}
			pa = pa.Slice(cut, pa.Len())
			if pb, err = rb.Next(); err != nil {
				return nil, err
			}
		}
	}
	// a exhausted: flush the withheld tail of b.
	for {
		if pb != nil && pb.Len() > 0 {
			if err := ch.add(pb); err != nil {
				return nil, err
			}
		}
		if pb, err = rb.Next(); err != nil {
			return nil, err
		}
		if pb == nil {
			break
		}
	}
	if err := ch.flush(); err != nil {
		return nil, err
	}
	return w.Finish()
}

// searchBatch is sort.Search over batch rows without importing sort's
// closure allocation into the hot loop shape used above.
func searchBatch(b *Batch, pred func(int) bool) int {
	lo, hi := 0, b.Len()
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pred(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
