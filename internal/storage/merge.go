package storage

// Sorted-run merging. The superstep input cache keeps the immutable
// edge side of the table union partitioned and sorted once per run;
// each superstep then sorts only the small vertex+message run and
// merges it into the cached edge run — a linear merge instead of a
// full re-sort of V+E+M rows.

// MergeSortedBatches merges two batches, each already sorted on the
// given keys, into one batch sorted on the same keys (stable: on equal
// keys rows of a precede rows of b). The inputs are not modified; the
// result shares no column storage with them. Either input may be nil
// or empty.
func MergeSortedBatches(a, b *Batch, keys []SortKey) *Batch {
	na, nb := a.Len(), b.Len()
	if na == 0 {
		if b == nil {
			return a
		}
		return b.Gather(identity(nb))
	}
	if nb == 0 {
		return a.Gather(identity(na))
	}

	// order[k] < na selects row k of a; otherwise row order[k]-na of b.
	order := make([]int, 0, na+nb)
	i, j := 0, 0
	for i < na && j < nb {
		if compareRows(a, i, b, j, keys) <= 0 {
			order = append(order, i)
			i++
		} else {
			order = append(order, na+j)
			j++
		}
	}
	for ; i < na; i++ {
		order = append(order, i)
	}
	for ; j < nb; j++ {
		order = append(order, na+j)
	}

	out := &Batch{Schema: a.Schema, Cols: make([]Column, len(a.Cols))}
	for c := range a.Cols {
		out.Cols[c] = gatherTwo(a.Cols[c], b.Cols[c], order, na)
	}
	return out
}

func identity(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// compareRows compares row i of a against row j of b under the sort
// keys, returning <0, 0, >0.
func compareRows(a *Batch, i int, b *Batch, j int, keys []SortKey) int {
	for _, k := range keys {
		c := Compare(a.Cols[k.Col].Value(i), b.Cols[k.Col].Value(j))
		if c == 0 {
			continue
		}
		if k.Desc {
			return -c
		}
		return c
	}
	return 0
}

// gatherTwo builds one column from two source columns of the same type
// under a merged order: index < na reads a, index >= na reads b at
// index-na. Typed fast paths avoid per-value boxing on the merge path.
func gatherTwo(a, b Column, order []int, na int) Column {
	switch ac := a.(type) {
	case *Int64Column:
		bc := b.(*Int64Column)
		out := &Int64Column{vals: make([]int64, len(order))}
		for k, o := range order {
			if o < na {
				out.vals[k] = ac.vals[o]
			} else {
				out.vals[k] = bc.vals[o-na]
			}
		}
		mergeNulls(&out.nulls, ac.nulls, bc.nulls, order, na)
		return out
	case *Float64Column:
		bc := b.(*Float64Column)
		out := &Float64Column{vals: make([]float64, len(order))}
		for k, o := range order {
			if o < na {
				out.vals[k] = ac.vals[o]
			} else {
				out.vals[k] = bc.vals[o-na]
			}
		}
		mergeNulls(&out.nulls, ac.nulls, bc.nulls, order, na)
		return out
	case *StringColumn:
		bc := b.(*StringColumn)
		out := &StringColumn{vals: make([]string, len(order))}
		for k, o := range order {
			if o < na {
				out.vals[k] = ac.vals[o]
			} else {
				out.vals[k] = bc.vals[o-na]
			}
		}
		mergeNulls(&out.nulls, ac.nulls, bc.nulls, order, na)
		return out
	case *BoolColumn:
		bc := b.(*BoolColumn)
		out := &BoolColumn{vals: make([]bool, len(order))}
		for k, o := range order {
			if o < na {
				out.vals[k] = ac.vals[o]
			} else {
				out.vals[k] = bc.vals[o-na]
			}
		}
		mergeNulls(&out.nulls, ac.nulls, bc.nulls, order, na)
		return out
	default:
		// Unknown column type: fall back to boxed appends.
		out := NewColumn(a.Type(), len(order))
		for _, o := range order {
			if o < na {
				_ = out.Append(a.Value(o))
			} else {
				_ = out.Append(b.Value(o - na))
			}
		}
		return out
	}
}

// mergeNulls builds the merged null bitmap when either source has one.
func mergeNulls(dst **Bitmap, an, bn *Bitmap, order []int, na int) {
	if (an == nil || !an.Any()) && (bn == nil || !bn.Any()) {
		return
	}
	out := NewBitmap(len(order))
	for k, o := range order {
		if o < na {
			if an.Get(o) {
				out.Set(k)
			}
		} else if bn.Get(o - na) {
			out.Set(k)
		}
	}
	*dst = out
}
