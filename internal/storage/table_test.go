package storage

import (
	"testing"
	"testing/quick"
)

func vertexSchema() Schema {
	return NewSchema(NotNullCol("id", TypeInt64), Col("value", TypeString), Col("halted", TypeBool))
}

func TestTableAppendAndScan(t *testing.T) {
	tb := NewTable("vertex", vertexSchema())
	if err := tb.AppendRow(Int64(1), Str("0.25"), Bool(false)); err != nil {
		t.Fatal(err)
	}
	if err := tb.AppendRow(Int64(2), Null(TypeString), Bool(true)); err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", tb.NumRows())
	}
	d := tb.Data()
	if d.Row(0)[0].I != 1 || d.Row(1)[0].I != 2 {
		t.Error("scan order wrong")
	}
	if !d.Row(1)[1].Null {
		t.Error("null not preserved")
	}
}

func TestTableNotNullConstraint(t *testing.T) {
	tb := NewTable("vertex", vertexSchema())
	if err := tb.AppendRow(Null(TypeInt64), Str("x"), Bool(false)); err == nil {
		t.Fatal("NOT NULL violation not caught")
	}
	if tb.NumRows() != 0 {
		t.Error("failed insert must not leave partial rows")
	}
}

func TestTableArityMismatch(t *testing.T) {
	tb := NewTable("vertex", vertexSchema())
	if err := tb.AppendRow(Int64(1)); err == nil {
		t.Error("arity mismatch not caught")
	}
}

func TestTableReplace(t *testing.T) {
	tb := NewTable("vertex", vertexSchema())
	_ = tb.AppendRow(Int64(1), Str("a"), Bool(false))
	nb := NewBatch(vertexSchema())
	_ = nb.AppendRow(Int64(10), Str("b"), Bool(true))
	_ = nb.AppendRow(Int64(11), Str("c"), Bool(false))
	if err := tb.Replace(nb); err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 || tb.Data().Row(0)[0].I != 10 {
		t.Error("replace did not swap contents")
	}
}

func TestTableReplaceTypeMismatch(t *testing.T) {
	tb := NewTable("vertex", vertexSchema())
	bad := NewBatch(NewSchema(Col("id", TypeString), Col("value", TypeString), Col("halted", TypeBool)))
	if err := tb.Replace(bad); err == nil {
		t.Error("type mismatch in Replace not caught")
	}
}

func TestTableUpdateInPlace(t *testing.T) {
	tb := NewTable("vertex", vertexSchema())
	for i := int64(0); i < 5; i++ {
		_ = tb.AppendRow(Int64(i), Str("old"), Bool(false))
	}
	if err := tb.UpdateInPlace([]int{1, 3}, 1, []Value{Str("new1"), Str("new3")}); err != nil {
		t.Fatal(err)
	}
	d := tb.Data()
	if d.Row(1)[1].S != "new1" || d.Row(3)[1].S != "new3" || d.Row(2)[1].S != "old" {
		t.Error("in-place update wrong rows")
	}
}

func TestTableDeleteWhere(t *testing.T) {
	tb := NewTable("vertex", vertexSchema())
	for i := int64(0); i < 6; i++ {
		_ = tb.AppendRow(Int64(i), Str("v"), Bool(false))
	}
	tb.DeleteWhere([]int{0, 2, 4})
	if tb.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", tb.NumRows())
	}
	d := tb.Data()
	want := []int64{1, 3, 5}
	for i, w := range want {
		if d.Row(i)[0].I != w {
			t.Errorf("row %d id = %d, want %d", i, d.Row(i)[0].I, w)
		}
	}
}

func TestTableSnapshotRestore(t *testing.T) {
	tb := NewTable("vertex", vertexSchema())
	_ = tb.AppendRow(Int64(1), Str("a"), Bool(false))
	snap := tb.Snapshot()
	if err := tb.UpdateInPlace([]int{0}, 1, []Value{Str("mutated")}); err != nil {
		t.Fatal(err)
	}
	if snap.Data().Row(0)[1].S != "a" {
		t.Error("snapshot observed an in-place update")
	}
	tb.RestoreSnapshot(snap)
	if tb.Data().Row(0)[1].S != "a" {
		t.Error("RestoreSnapshot did not restore the pre-image")
	}
	// The restored table must not adopt the snapshot's column objects:
	// later appends and updates stay invisible to the pinned view.
	_ = tb.AppendRow(Int64(2), Str("b"), Bool(false))
	if err := tb.UpdateInPlace([]int{0}, 1, []Value{Str("again")}); err != nil {
		t.Fatal(err)
	}
	if snap.NumRows() != 1 || snap.Data().Row(0)[1].S != "a" {
		t.Error("pinned snapshot drifted after restore + writes")
	}
}

func TestTableTruncate(t *testing.T) {
	tb := NewTable("vertex", vertexSchema())
	_ = tb.AppendRow(Int64(1), Str("a"), Bool(false))
	tb.Truncate()
	if tb.NumRows() != 0 {
		t.Error("truncate left rows")
	}
	// Table must still be usable.
	if err := tb.AppendRow(Int64(2), Str("b"), Bool(true)); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionInt64Complete(t *testing.T) {
	f := func(vals []int64) bool {
		const n = 7
		parts := PartitionInt64(vals, n)
		seen := 0
		for p, idxs := range parts {
			for _, i := range idxs {
				if i < 0 || i >= len(vals) {
					return false
				}
				// Same value must always land in the same partition.
				if int(HashInt64(vals[i])%n) != p {
					return false
				}
				seen++
			}
		}
		return seen == len(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionSingle(t *testing.T) {
	parts := PartitionInt64([]int64{9, 8, 7}, 1)
	if len(parts) != 1 || len(parts[0]) != 3 {
		t.Fatal("single partition must keep all rows")
	}
	for i, idx := range parts[0] {
		if idx != i {
			t.Error("single partition must preserve order")
		}
	}
}

func TestHashDeterminism(t *testing.T) {
	if HashInt64(12345) != HashInt64(12345) || HashString("abc") != HashString("abc") {
		t.Error("hash must be deterministic")
	}
	if HashValue(Int64(7)) != HashValue(Float64(7.0)) {
		t.Error("integral float must hash like int for join keys")
	}
}

func TestSortBatch(t *testing.T) {
	s := NewSchema(Col("k", TypeInt64), Col("v", TypeString))
	b := NewBatch(s)
	_ = b.AppendRow(Int64(3), Str("c"))
	_ = b.AppendRow(Int64(1), Str("a"))
	_ = b.AppendRow(Int64(2), Str("b"))
	_ = b.AppendRow(Int64(1), Str("a2"))
	sorted := SortBatch(b, []SortKey{{Col: 0}})
	want := []int64{1, 1, 2, 3}
	for i, w := range want {
		if sorted.Row(i)[0].I != w {
			t.Fatalf("row %d = %d, want %d", i, sorted.Row(i)[0].I, w)
		}
	}
	// Stability: the two k=1 rows keep input order.
	if sorted.Row(0)[1].S != "a" || sorted.Row(1)[1].S != "a2" {
		t.Error("sort is not stable")
	}
	desc := SortBatch(b, []SortKey{{Col: 0, Desc: true}})
	if desc.Row(0)[0].I != 3 {
		t.Error("descending sort wrong")
	}
}

func TestBatchGatherSliceConcat(t *testing.T) {
	s := NewSchema(Col("k", TypeInt64))
	b := NewBatch(s)
	for i := int64(0); i < 10; i++ {
		_ = b.AppendRow(Int64(i))
	}
	g := b.Gather([]int{9, 0})
	if g.Len() != 2 || g.Row(0)[0].I != 9 {
		t.Error("batch gather wrong")
	}
	sl := b.Slice(2, 5)
	if sl.Len() != 3 || sl.Row(0)[0].I != 2 {
		t.Error("batch slice wrong")
	}
	if err := Concat(g, sl); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 5 || g.Row(4)[0].I != 4 {
		t.Error("concat wrong")
	}
}
