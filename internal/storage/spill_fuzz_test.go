package storage

import (
	"testing"
)

// Fuzzers for the spill-frame decoder, mirroring the segment-decoder
// fuzzers in encoding_fuzz_test.go: DecodeSpillBatch must never panic
// or allocate proportionally to a hostile header on arbitrary bytes,
// and must round-trip anything EncodeSpillBatch produces.

func fuzzSpillSchemas() []Schema {
	return []Schema{
		NewSchema(Col("i", TypeInt64)),
		NewSchema(Col("s", TypeString)),
		NewSchema(Col("i", TypeInt64), Col("f", TypeFloat64), Col("s", TypeString), Col("b", TypeBool)),
		NewSchema(), // zero columns: the row count alone must stay bounded
	}
}

func FuzzDecodeSpillBatch(f *testing.F) {
	seed := NewBatch(fuzzSpillSchemas()[2])
	for i := 0; i < 10; i++ {
		_ = seed.AppendRow(Int64(int64(i)), Float64(float64(i)), Str("abc"), Bool(i%2 == 0))
	}
	_ = seed.AppendRow(Null(TypeInt64), Null(TypeFloat64), Null(TypeString), Null(TypeBool))
	f.Add(EncodeSpillBatch(seed))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // absurd row count
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, schema := range fuzzSpillSchemas() {
			b, err := DecodeSpillBatch(data, schema)
			if err != nil {
				continue
			}
			// Allocation-safety invariant: decoded rows are bounded by the
			// evidence in the input (schemas with columns need at least one
			// encoded byte somewhere per row).
			if schema.Len() > 0 && b.Len() > len(data)*8+1 {
				t.Fatalf("decoded %d rows from %d bytes", b.Len(), len(data))
			}
			// Whatever decoded must re-encode and decode to the same rows.
			rt, err := DecodeSpillBatch(EncodeSpillBatch(b), schema)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if rt.Len() != b.Len() {
				t.Fatalf("round trip %d != %d rows", rt.Len(), b.Len())
			}
			for r := 0; r < b.Len(); r++ {
				br, rr := b.Row(r), rt.Row(r)
				for c := range br {
					if !valuesEqual(br[c], rr[c]) {
						t.Fatalf("row %d col %d: %v != %v", r, c, br[c], rr[c])
					}
				}
			}
		}
	})
}

func FuzzDecodeSpillBatchRandomSchemaBytes(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 1})
	f.Fuzz(func(t *testing.T, data, types []byte) {
		if len(types) > 8 {
			types = types[:8]
		}
		cols := make([]ColumnDef, len(types))
		kinds := []Type{TypeInt64, TypeFloat64, TypeString, TypeBool}
		for i, b := range types {
			cols[i] = Col(string(rune('a'+i)), kinds[int(b)%len(kinds)])
		}
		// Must not panic for any (bytes, schema) pairing.
		_, _ = DecodeSpillBatch(data, NewSchema(cols...))
	})
}
