package storage

import (
	"fmt"
	"sync"
)

// Table is an in-memory columnar table. Appends mutate in place under a
// write lock; the Update-vs-Replace optimization from the paper is
// exposed as UpdateInPlace (cheap for few rows) and Replace (swap in a
// rebuilt column set, cheap for many rows). Snapshot produces the
// immutable copy-on-write views the MVCC layer hands to readers.
type Table struct {
	mu     sync.RWMutex
	name   string
	schema Schema
	cols   []Column
	// sortKey records the column indexes the table data is ordered by,
	// if any (a Vertica-style sorted projection). Empty means unsorted.
	sortKey []int
	// version counts mutations. Caches keyed on table contents (the
	// coordinator's superstep input cache) compare versions to detect
	// staleness without diffing data.
	version uint64
	// shared marks the current columns' value arrays as referenced by
	// at least one Snapshot. In-place mutators (UpdateInPlace) must
	// detach — copy the columns — before writing; appends never need
	// to (they only touch rows past every snapshot's length), and
	// column-swapping mutators only replace the slice header, which
	// snapshots never share.
	shared bool
	// frozen caches the snapshot taken at frozenVersion: repeated
	// Snapshot() calls on an unchanged table return the same immutable
	// view for free instead of re-freezing the columns.
	frozen        *Snapshot
	frozenVersion uint64
}

// Version returns the table's mutation counter. It increments on every
// content-changing operation, so two equal versions imply unchanged
// contents.
func (t *Table) Version() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema Schema) *Table {
	t := &Table{name: name, schema: schema, cols: make([]Column, schema.Len())}
	for i, c := range schema.Cols {
		t.cols[i] = NewColumn(c.Type, 0)
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Snapshot freezes the table's current contents as an immutable view.
// The view's value arrays share the table's backing storage with
// capacity clamped to the frozen length — later appends either write
// past every view's reach or reallocate, so they cost the writer
// nothing — while the null bitmaps are copied (appends mutate their
// trailing word in place). In-place updates copy-on-write the columns
// first (see detachLocked), so the view's contents never change no
// matter what later statements do to the table. The snapshot for a
// given version is cached: re-snapshotting an unchanged table is
// O(1), and the version counter does not move — the contents are, by
// construction, identical.
func (t *Table) Snapshot() *Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.frozen != nil && t.frozenVersion == t.version {
		return t.frozen
	}
	cols := make([]Column, len(t.cols))
	for i, c := range t.cols {
		cols[i] = freezeColumn(c)
	}
	t.shared = true
	s := &Snapshot{
		name:    t.name,
		schema:  t.schema,
		cols:    cols,
		sortKey: append([]int(nil), t.sortKey...),
		version: t.version,
	}
	t.frozen, t.frozenVersion = s, t.version
	return s
}

// freezeColumn returns a read-only view of the column's current rows
// that stays valid while the original keeps appending: the value
// slice header is capped at the current length (appends to the
// original grow past the cap or reallocate, never into the view) and
// the null bitmap is copied (its trailing word mutates on append).
func freezeColumn(c Column) Column {
	switch col := c.(type) {
	case *Int64Column:
		n := len(col.vals)
		return &Int64Column{vals: col.vals[:n:n], nulls: col.nulls.Clone()}
	case *Float64Column:
		n := len(col.vals)
		return &Float64Column{vals: col.vals[:n:n], nulls: col.nulls.Clone()}
	case *StringColumn:
		n := len(col.vals)
		return &StringColumn{vals: col.vals[:n:n], nulls: col.nulls.Clone()}
	case *BoolColumn:
		n := len(col.vals)
		return &BoolColumn{vals: col.vals[:n:n], nulls: col.nulls.Clone()}
	default:
		// Unknown column type: fall back to a full copy.
		return c.Slice(0, c.Len())
	}
}

// detachLocked copies the column objects if any snapshot may still
// reference their value arrays, so an in-place element write cannot
// be observed by a pinned reader. Callers must hold t.mu. The copy
// preserves contents, so the version counter is untouched.
func (t *Table) detachLocked() {
	if !t.shared {
		return
	}
	for i, c := range t.cols {
		t.cols[i] = c.Slice(0, c.Len())
	}
	t.shared = false
}

// RestoreSnapshot swaps the snapshot's column set back into the table
// — the MVCC rollback path (version swap instead of a deep-copy undo
// image). The snapshot may still be pinned by readers, so the table
// must NOT adopt the snapshot's own Column objects (appends mutate a
// column object in place, and appends skip copy-on-write by design):
// it installs re-frozen copies, whose capped value slices force the
// first append to reallocate and whose null bitmaps are private. The
// shared flag still makes in-place updates copy the value arrays.
func (t *Table) RestoreSnapshot(s *Snapshot) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cols = make([]Column, len(s.cols))
	for i, c := range s.cols {
		t.cols[i] = freezeColumn(c)
	}
	t.sortKey = append([]int(nil), s.sortKey...)
	t.shared = true
	t.version++
	t.frozen = nil
}

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.schema }

// SortKey returns the declared sort order (column indexes), if any.
func (t *Table) SortKey() []int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]int(nil), t.sortKey...)
}

// SetSortKey declares the sort order of the table's data. It is the
// caller's responsibility that the data actually is sorted (the engine
// sorts on load for declared projections).
func (t *Table) SetSortKey(cols []int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sortKey = append([]int(nil), cols...)
	t.frozen = nil // the cached snapshot carries the old sort key
}

// NumRows returns the current row count.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.cols) == 0 {
		return 0
	}
	return t.cols[0].Len()
}

// AppendRow appends one row, enforcing NOT NULL constraints.
func (t *Table) AppendRow(vals ...Value) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.appendRowLocked(vals)
}

func (t *Table) appendRowLocked(vals []Value) error {
	if len(vals) != len(t.cols) {
		return fmt.Errorf("storage: table %s has %d columns, row has %d values", t.name, len(t.cols), len(vals))
	}
	for j, v := range vals {
		if t.schema.Cols[j].NotNull && v.Null {
			return fmt.Errorf("storage: NOT NULL constraint violated on %s.%s", t.name, t.schema.Cols[j].Name)
		}
	}
	// Appends need no copy-on-write: frozen snapshots clamp their view
	// to the pre-append length and own their null bitmaps.
	for j, v := range vals {
		if err := t.cols[j].Append(v); err != nil {
			return fmt.Errorf("storage: %s.%s: %w", t.name, t.schema.Cols[j].Name, err)
		}
	}
	t.version++
	t.frozen = nil
	return nil
}

// AppendBatch appends all rows of the batch.
func (t *Table) AppendBatch(b *Batch) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(b.Cols) != len(t.cols) {
		return fmt.Errorf("storage: table %s has %d columns, batch has %d", t.name, len(t.cols), len(b.Cols))
	}
	n := b.Len()
	for i := 0; i < n; i++ {
		if err := t.appendRowLocked(b.Row(i)); err != nil {
			return err
		}
	}
	return nil
}

// Data returns the table contents as a batch sharing the table's column
// storage. Callers must treat it as read-only; the engine serializes
// readers and writers at the statement level.
func (t *Table) Data() *Batch {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return &Batch{Schema: t.schema, Cols: append([]Column(nil), t.cols...)}
}

// Column returns column i (shared storage, read-only by convention).
func (t *Table) Column(i int) Column {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.cols[i]
}

// Replace swaps in an entirely new column set. This is the "replace"
// arm of the paper's Update-vs-Replace optimization: the coordinator
// builds the next-superstep vertex/message table by a left join and
// swaps it in, instead of updating tuples in place.
func (t *Table) Replace(b *Batch) error {
	if len(b.Cols) != t.schema.Len() {
		return fmt.Errorf("storage: replace arity mismatch on %s", t.name)
	}
	for j, c := range b.Cols {
		if c.Type() != t.schema.Cols[j].Type {
			return fmt.Errorf("storage: replace type mismatch on %s.%s: %s vs %s",
				t.name, t.schema.Cols[j].Name, c.Type(), t.schema.Cols[j].Type)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cols = append([]Column(nil), b.Cols...)
	// The batch's columns may share storage with whatever produced them
	// (an operator can pass a snapshot's column through untouched), so
	// treat them as shared until the first in-place write copies.
	t.shared = true
	t.version++
	t.frozen = nil
	return nil
}

// UpdateInPlace sets cols[colIdx] = vals[k] for each row in rowIdx.
// This is the "update" arm of Update-vs-Replace, used when the number
// of changed tuples is below the threshold.
func (t *Table) UpdateInPlace(rowIdx []int, colIdx int, vals []Value) error {
	if len(rowIdx) != len(vals) {
		return fmt.Errorf("storage: update arity mismatch on %s", t.name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(rowIdx) > 0 {
		t.detachLocked()
		t.version++
		t.frozen = nil
	}
	for k, i := range rowIdx {
		if err := SetValue(t.cols[colIdx], i, vals[k]); err != nil {
			return err
		}
	}
	return nil
}

// DeleteWhere removes the rows at the given indexes by rebuilding the
// columns without them.
func (t *Table) DeleteWhere(del []int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(del) == 0 {
		return
	}
	dead := make(map[int]bool, len(del))
	for _, i := range del {
		dead[i] = true
	}
	n := t.cols[0].Len()
	keep := make([]int, 0, n-len(del))
	for i := 0; i < n; i++ {
		if !dead[i] {
			keep = append(keep, i)
		}
	}
	for j, c := range t.cols {
		t.cols[j] = c.Gather(keep)
	}
	t.shared = false // Gather built fresh columns
	t.version++
	t.frozen = nil
}

// Truncate removes all rows.
func (t *Table) Truncate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, c := range t.schema.Cols {
		t.cols[i] = NewColumn(c.Type, 0)
	}
	t.shared = false // fresh empty columns
	t.version++
	t.frozen = nil
}

// SetValue sets row i of column c to v (coerced to the column type).
// It is a free function rather than a Column method so the read-mostly
// Column interface stays minimal.
func SetValue(c Column, i int, v Value) error {
	if i < 0 || i >= c.Len() {
		return fmt.Errorf("storage: set index %d out of range (%d rows)", i, c.Len())
	}
	cv, err := Coerce(v, c.Type())
	if err != nil {
		return err
	}
	switch col := c.(type) {
	case *Int64Column:
		if cv.Null {
			if col.nulls == nil {
				col.nulls = NewBitmap(len(col.vals))
			}
			col.nulls.Set(i)
		} else {
			col.vals[i] = cv.I
			col.nulls.Clear(i)
		}
	case *Float64Column:
		if cv.Null {
			if col.nulls == nil {
				col.nulls = NewBitmap(len(col.vals))
			}
			col.nulls.Set(i)
		} else {
			col.vals[i] = cv.F
			col.nulls.Clear(i)
		}
	case *StringColumn:
		if cv.Null {
			if col.nulls == nil {
				col.nulls = NewBitmap(len(col.vals))
			}
			col.nulls.Set(i)
		} else {
			col.vals[i] = cv.S
			col.nulls.Clear(i)
		}
	case *BoolColumn:
		if cv.Null {
			if col.nulls == nil {
				col.nulls = NewBitmap(len(col.vals))
			}
			col.nulls.Set(i)
		} else {
			col.vals[i] = cv.I != 0
			col.nulls.Clear(i)
		}
	default:
		return fmt.Errorf("storage: SetValue on unknown column type %T", c)
	}
	return nil
}
