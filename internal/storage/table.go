package storage

import (
	"fmt"
	"sort"
	"sync"
)

// ShardedTable is an in-memory columnar table hash-partitioned into N
// independent shards. Each shard owns its column set, mutation
// counter, copy-on-write bookkeeping and statement-scope write lock,
// so writers on disjoint shards never touch shared state — the
// single-node analogue of Vertica's segmented projections, and the
// seam a future multi-node layer scatters across. An unpartitioned
// table is simply the one-shard case; Table is an alias, and the
// whole type sits behind the TableData interface next to Snapshot.
//
// Rows are routed to shards by FNV-1a hash of the partition key
// column (see HashValue), the same hash the vertex runtime's batching
// uses, so table shards and superstep partitions can align. The
// logical row order of a sharded table is shard-major: shard 0's rows
// first, then shard 1's, each in insertion order. Global row indexes
// (UpdateInPlace, DeleteWhere) address that concatenated order.
//
// The Update-vs-Replace optimization from the paper is exposed as
// UpdateInPlace (cheap for few rows) and Replace (swap in a rebuilt
// column set, cheap for many rows). Snapshot produces the immutable
// copy-on-write views the MVCC layer hands to readers, assembled
// shard by shard.
type ShardedTable struct {
	name   string
	schema Schema
	// keyCol is the partition key column index; -1 when the table has a
	// single shard and no declared key.
	keyCol int
	shards []*shard

	// meta guards the mutable non-data metadata (sortKey) and the
	// cached cross-shard concatenation.
	meta    sync.RWMutex
	sortKey []int
	// concat caches the shard-major concatenation Data() returns for
	// multi-shard tables, keyed by the summed shard versions.
	concat        *Batch
	concatVersion uint64
}

// Table is the catalog's table type. Every table is a ShardedTable —
// an unpartitioned one has exactly one shard.
type Table = ShardedTable

// shard is one horizontal partition: a private column set with its own
// version counter, per-column copy-on-write flags, frozen-view cache
// and statement-scope write lock.
type shard struct {
	// mu guards the fields below for individual storage operations.
	mu   sync.RWMutex
	cols []Column
	// version counts this shard's mutations. The table-level version is
	// the sum over shards; since shard versions never decrease, equal
	// sums imply unchanged contents.
	version uint64
	// shared marks, per column, that the current value array is
	// referenced by at least one frozen view. In-place mutators detach
	// — copy — only the columns they touch before writing (appends
	// never need to: they only write past every view's clamped length).
	shared []bool
	// frozen caches the view taken at frozenVersion so re-snapshotting
	// an unchanged shard is O(1).
	frozen        *ShardView
	frozenVersion uint64
	// stmtMu is the statement-scope write lock. The engine's sharded
	// write fast path holds it for a whole statement (via LockShards)
	// while taking only the shared engine latch; freezing a view takes
	// it briefly, so a reader pinning a snapshot mid-statement sees the
	// shard either wholly before or wholly after that statement —
	// whole-shard atomicity. Lock order: stmtMu before mu.
	stmtMu sync.Mutex
}

func newShard(schema Schema) *shard {
	sh := &shard{cols: make([]Column, schema.Len()), shared: make([]bool, schema.Len())}
	for i, c := range schema.Cols {
		sh.cols[i] = NewColumn(c.Type, 0)
	}
	return sh
}

// rows returns the shard's row count. Callers hold sh.mu.
func (sh *shard) rows() int {
	if len(sh.cols) == 0 {
		return 0
	}
	return sh.cols[0].Len()
}

// NewTable creates an empty single-shard table with the given schema.
func NewTable(name string, schema Schema) *Table {
	return NewShardedTable(name, schema, -1, 1)
}

// NewShardedTable creates an empty table hash-partitioned on column
// keyCol into n shards. n < 1 is clamped to 1; a multi-shard table
// requires a valid key column (the engine validates before calling).
func NewShardedTable(name string, schema Schema, keyCol, n int) *ShardedTable {
	if n < 1 {
		n = 1
	}
	if keyCol < 0 || keyCol >= schema.Len() {
		if n > 1 {
			panic(fmt.Sprintf("storage: sharded table %s needs a valid partition column (got %d)", name, keyCol))
		}
		keyCol = -1
	}
	t := &ShardedTable{name: name, schema: schema, keyCol: keyCol, shards: make([]*shard, n)}
	for i := range t.shards {
		t.shards[i] = newShard(schema)
	}
	return t
}

// Name returns the table name.
func (t *ShardedTable) Name() string { return t.name }

// Schema returns the table schema.
func (t *ShardedTable) Schema() Schema { return t.schema }

// NumShards returns the number of hash partitions (1 for an
// unpartitioned table).
func (t *ShardedTable) NumShards() int { return len(t.shards) }

// ShardKey returns the partition key column index, or -1 when the
// table is unpartitioned.
func (t *ShardedTable) ShardKey() int { return t.keyCol }

// Version returns the table's mutation counter: the sum of the shard
// counters. Each shard counter increments on every content-changing
// operation and never decreases, so two equal versions imply unchanged
// contents.
func (t *ShardedTable) Version() uint64 {
	var sum uint64
	for _, sh := range t.shards {
		sh.mu.RLock()
		sum += sh.version
		sh.mu.RUnlock()
	}
	return sum
}

// SortKey returns the declared sort order (column indexes), if any.
func (t *ShardedTable) SortKey() []int {
	t.meta.RLock()
	defer t.meta.RUnlock()
	return append([]int(nil), t.sortKey...)
}

// SetSortKey declares the sort order of the table's data. It is the
// caller's responsibility that the data actually is sorted (the engine
// sorts on load for declared projections). On a multi-shard table the
// order is per shard.
func (t *ShardedTable) SetSortKey(cols []int) {
	t.meta.Lock()
	t.sortKey = append([]int(nil), cols...)
	t.meta.Unlock()
	for _, sh := range t.shards {
		sh.mu.Lock()
		sh.frozen = nil // the cached view feeds snapshots carrying the old sort key
		sh.mu.Unlock()
	}
}

// NumRows returns the current row count across all shards.
func (t *ShardedTable) NumRows() int {
	n := 0
	for _, sh := range t.shards {
		sh.mu.RLock()
		n += sh.rows()
		sh.mu.RUnlock()
	}
	return n
}

// ShardRows returns the row count of shard i.
func (t *ShardedTable) ShardRows(i int) int {
	sh := t.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.rows()
}

// ShardVersion returns the mutation counter of shard i. The rollback
// path compares it against a staged view's version to skip restoring
// shards the transaction never actually changed.
func (t *ShardedTable) ShardVersion(i int) uint64 {
	sh := t.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.version
}

// ShardBatch returns shard i's contents as a batch sharing the shard's
// column storage. Callers must treat it as read-only and follow the
// engine's latch discipline (latch-free readers use Snapshot instead).
func (t *ShardedTable) ShardBatch(i int) *Batch {
	sh := t.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return &Batch{Schema: t.schema, Cols: append([]Column(nil), sh.cols...)}
}

// shardForRow routes a row to its shard by hashing the partition key
// value, coerced to the key column type so literals and stored values
// agree. Unroutable values (coercion failures surface later as append
// errors) land in shard 0.
func (t *ShardedTable) shardForRow(vals []Value) int {
	if len(t.shards) == 1 {
		return 0
	}
	cv, err := Coerce(vals[t.keyCol], t.schema.Cols[t.keyCol].Type)
	if err != nil {
		return 0
	}
	return int(HashValue(cv) % uint64(len(t.shards)))
}

// ShardOf returns the shard a row with the given partition key value
// belongs to. The error is non-nil when the value cannot be coerced to
// the key column type (callers routing reads must then scan all
// shards).
func (t *ShardedTable) ShardOf(key Value) (int, error) {
	if len(t.shards) == 1 {
		return 0, nil
	}
	cv, err := Coerce(key, t.schema.Cols[t.keyCol].Type)
	if err != nil {
		return 0, err
	}
	return int(HashValue(cv) % uint64(len(t.shards))), nil
}

// checkRow validates arity and NOT NULL constraints for one row.
func (t *ShardedTable) checkRow(vals []Value) error {
	if len(vals) != t.schema.Len() {
		return fmt.Errorf("storage: table %s has %d columns, row has %d values", t.name, t.schema.Len(), len(vals))
	}
	for j, v := range vals {
		if t.schema.Cols[j].NotNull && v.Null {
			return fmt.Errorf("storage: NOT NULL constraint violated on %s.%s", t.name, t.schema.Cols[j].Name)
		}
	}
	return nil
}

// appendRowLocked appends one validated row to the shard. Callers hold
// sh.mu. Appends need no copy-on-write: frozen views clamp their value
// slices to the pre-append length and own their null bitmaps.
func (t *ShardedTable) appendRowLocked(sh *shard, vals []Value) error {
	for j, v := range vals {
		if err := sh.cols[j].Append(v); err != nil {
			return fmt.Errorf("storage: %s.%s: %w", t.name, t.schema.Cols[j].Name, err)
		}
	}
	sh.version++
	sh.frozen = nil
	return nil
}

// AppendRow appends one row, enforcing NOT NULL constraints and
// routing it to its hash shard.
func (t *ShardedTable) AppendRow(vals ...Value) error {
	if err := t.checkRow(vals); err != nil {
		return err
	}
	sh := t.shards[t.shardForRow(vals)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return t.appendRowLocked(sh, vals)
}

// AppendBatch appends all rows of the batch, routing each row to its
// shard. Rows land in their shards in batch order.
func (t *ShardedTable) AppendBatch(b *Batch) error {
	if len(b.Cols) != t.schema.Len() {
		return fmt.Errorf("storage: table %s has %d columns, batch has %d", t.name, t.schema.Len(), len(b.Cols))
	}
	n := b.Len()
	for i := 0; i < n; i++ {
		if err := t.AppendRow(b.Row(i)...); err != nil {
			return err
		}
	}
	return nil
}

// Data returns the table contents as one batch in shard-major row
// order. For a single-shard table the batch shares the table's column
// storage (read-only by convention, under the engine's statement-level
// serialization); for a multi-shard table it is a concatenated copy,
// cached until any shard mutates.
func (t *ShardedTable) Data() *Batch {
	if len(t.shards) == 1 {
		sh := t.shards[0]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return &Batch{Schema: t.schema, Cols: append([]Column(nil), sh.cols...)}
	}
	version := t.Version()
	t.meta.RLock()
	if t.concat != nil && t.concatVersion == version {
		b := t.concat
		t.meta.RUnlock()
		return b
	}
	t.meta.RUnlock()
	parts := make([][]Column, len(t.shards))
	for i, sh := range t.shards {
		sh.mu.RLock()
		parts[i] = append([]Column(nil), sh.cols...)
		sh.mu.RUnlock()
	}
	cols := make([]Column, t.schema.Len())
	for j := range cols {
		colParts := make([]Column, len(parts))
		for i := range parts {
			colParts[i] = parts[i][j]
		}
		cols[j] = concatColumns(colParts)
	}
	b := &Batch{Schema: t.schema, Cols: cols}
	t.meta.Lock()
	t.concat, t.concatVersion = b, version
	t.meta.Unlock()
	return b
}

// Column returns column i of the shard-major concatenation (shared
// storage for single-shard tables, read-only by convention).
func (t *ShardedTable) Column(i int) Column {
	if len(t.shards) == 1 {
		sh := t.shards[0]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return sh.cols[i]
	}
	return t.Data().Cols[i]
}

// concatColumns concatenates typed columns with bulk copies; the null
// bitmap is only materialized when a part actually has NULL rows.
func concatColumns(parts []Column) Column {
	if len(parts) == 1 {
		return parts[0]
	}
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	var nulls *Bitmap
	markNulls := func(p Column, off int) {
		pn := NullsOf(p)
		if pn == nil || !pn.Any() {
			return
		}
		if nulls == nil {
			nulls = NewBitmap(total)
		}
		for i := 0; i < p.Len(); i++ {
			if pn.Get(i) {
				nulls.Set(off + i)
			}
		}
	}
	switch parts[0].(type) {
	case *Int64Column:
		vals := make([]int64, 0, total)
		for _, p := range parts {
			markNulls(p, len(vals))
			vals = append(vals, p.(*Int64Column).vals...)
		}
		return &Int64Column{vals: vals, nulls: nulls}
	case *Float64Column:
		vals := make([]float64, 0, total)
		for _, p := range parts {
			markNulls(p, len(vals))
			vals = append(vals, p.(*Float64Column).vals...)
		}
		return &Float64Column{vals: vals, nulls: nulls}
	case *StringColumn:
		vals := make([]string, 0, total)
		for _, p := range parts {
			markNulls(p, len(vals))
			vals = append(vals, p.(*StringColumn).vals...)
		}
		return &StringColumn{vals: vals, nulls: nulls}
	case *BoolColumn:
		vals := make([]bool, 0, total)
		for _, p := range parts {
			markNulls(p, len(vals))
			vals = append(vals, p.(*BoolColumn).vals...)
		}
		return &BoolColumn{vals: vals, nulls: nulls}
	default:
		out := parts[0].Slice(0, parts[0].Len())
		for _, p := range parts[1:] {
			for i := 0; i < p.Len(); i++ {
				_ = out.Append(p.Value(i))
			}
		}
		return out
	}
}

// SnapshotShard freezes shard i's current contents as an immutable
// view. The view's value arrays share the shard's backing storage with
// capacity clamped to the frozen length — later appends either write
// past every view's reach or reallocate — while the null bitmaps are
// copied (appends mutate their trailing word in place). In-place
// updates copy-on-write the columns they touch first, so the view's
// contents never change. The view for a given shard version is
// cached, and freezing waits on the shard's statement-scope write lock
// so a mid-statement reader sees the shard wholly before or wholly
// after the statement.
func (t *ShardedTable) SnapshotShard(i int) *ShardView {
	sh := t.shards[i]
	sh.stmtMu.Lock()
	defer sh.stmtMu.Unlock()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return t.freezeShardLocked(sh)
}

func (t *ShardedTable) freezeShardLocked(sh *shard) *ShardView {
	if sh.frozen != nil && sh.frozenVersion == sh.version {
		return sh.frozen
	}
	cols := make([]Column, len(sh.cols))
	for j, c := range sh.cols {
		cols[j] = freezeColumn(c)
		sh.shared[j] = true
	}
	v := &ShardView{cols: cols, version: sh.version}
	sh.frozen, sh.frozenVersion = v, sh.version
	return v
}

// Snapshot freezes the table's current contents as an immutable view,
// one frozen ShardView per shard. Re-snapshotting an unchanged table
// is O(shards) cache hits. Shards are frozen one at a time, each
// waiting on that shard's statement-scope write lock, so concurrent
// disjoint-shard writers delay the snapshot only on the shards they
// are actually writing — whole-shard atomicity, not whole-table.
func (t *ShardedTable) Snapshot() *Snapshot {
	views := make([]*ShardView, len(t.shards))
	for i := range t.shards {
		views[i] = t.SnapshotShard(i)
	}
	t.meta.RLock()
	sortKey := append([]int(nil), t.sortKey...)
	t.meta.RUnlock()
	return &Snapshot{
		name:    t.name,
		schema:  t.schema,
		keyCol:  t.keyCol,
		sortKey: sortKey,
		views:   views,
	}
}

// freezeColumn returns a read-only view of the column's current rows
// that stays valid while the original keeps appending: the value
// slice header is capped at the current length (appends to the
// original grow past the cap or reallocate, never into the view) and
// the null bitmap is copied (its trailing word mutates on append).
func freezeColumn(c Column) Column {
	switch col := c.(type) {
	case *Int64Column:
		n := len(col.vals)
		return &Int64Column{vals: col.vals[:n:n], nulls: col.nulls.Clone()}
	case *Float64Column:
		n := len(col.vals)
		return &Float64Column{vals: col.vals[:n:n], nulls: col.nulls.Clone()}
	case *StringColumn:
		n := len(col.vals)
		return &StringColumn{vals: col.vals[:n:n], nulls: col.nulls.Clone()}
	case *BoolColumn:
		n := len(col.vals)
		return &BoolColumn{vals: col.vals[:n:n], nulls: col.nulls.Clone()}
	default:
		// Unknown column type: fall back to a full copy.
		return c.Slice(0, c.Len())
	}
}

// RestoreShard swaps a frozen view's column set back into shard i —
// the per-shard MVCC rollback path (version swap instead of a
// deep-copy undo image). The view may still be pinned by readers, so
// the shard must NOT adopt the view's own Column objects (appends
// mutate a column object in place, and appends skip copy-on-write by
// design): it installs re-frozen copies, whose capped value slices
// force the first append to reallocate and whose null bitmaps are
// private. The shared flags still make in-place updates copy.
func (t *ShardedTable) RestoreShard(i int, v *ShardView) {
	sh := t.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.cols = make([]Column, len(v.cols))
	for j, c := range v.cols {
		sh.cols[j] = freezeColumn(c)
		sh.shared[j] = true
	}
	sh.version++
	sh.frozen = nil
}

// RestoreSnapshot swaps the snapshot's column sets back into the table
// shard by shard — the whole-table MVCC rollback path. The snapshot
// must come from a table with the same shape (schema and shard
// layout); the transaction layer checks before calling.
func (t *ShardedTable) RestoreSnapshot(s *Snapshot) {
	for i, v := range s.views {
		t.RestoreShard(i, v)
	}
	t.meta.Lock()
	t.sortKey = append([]int(nil), s.sortKey...)
	t.meta.Unlock()
}

// Replace swaps in an entirely new column set, re-partitioning the
// rows across shards. This is the "replace" arm of the paper's
// Update-vs-Replace optimization: the coordinator builds the
// next-superstep vertex/message table by a left join and swaps it in,
// instead of updating tuples in place. Single-shard tables adopt the
// batch's columns directly (O(columns)); multi-shard tables gather
// each shard's rows (O(rows), the price of keeping the partitioning
// invariant — Vertica pays the same on segmented load).
func (t *ShardedTable) Replace(b *Batch) error {
	if len(b.Cols) != t.schema.Len() {
		return fmt.Errorf("storage: replace arity mismatch on %s", t.name)
	}
	for j, c := range b.Cols {
		if c.Type() != t.schema.Cols[j].Type {
			return fmt.Errorf("storage: replace type mismatch on %s.%s: %s vs %s",
				t.name, t.schema.Cols[j].Name, c.Type(), t.schema.Cols[j].Type)
		}
	}
	if len(t.shards) == 1 {
		sh := t.shards[0]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		sh.cols = append([]Column(nil), b.Cols...)
		// The batch's columns may share storage with whatever produced
		// them (an operator can pass a snapshot's column through
		// untouched), so treat them as shared until the first in-place
		// write copies.
		for j := range sh.shared {
			sh.shared[j] = true
		}
		sh.version++
		sh.frozen = nil
		return nil
	}
	for s, rows := range t.shardAssignment(b) {
		sh := t.shards[s]
		sh.mu.Lock()
		for j, c := range b.Cols {
			sh.cols[j] = c.Gather(rows)
			sh.shared[j] = false // Gather built fresh columns
		}
		sh.version++
		sh.frozen = nil
		sh.mu.Unlock()
	}
	return nil
}

// shardAssignment returns, per shard, the batch row indexes routed to
// it, using the same hash as AppendRow.
func (t *ShardedTable) shardAssignment(b *Batch) [][]int {
	n := len(t.shards)
	out := make([][]int, n)
	key := b.Cols[t.keyCol]
	if ic, ok := key.(*Int64Column); ok && (ic.nulls == nil || !ic.nulls.Any()) {
		return PartitionInt64(ic.vals, n)
	}
	for i := 0; i < key.Len(); i++ {
		cv, err := Coerce(key.Value(i), t.schema.Cols[t.keyCol].Type)
		s := 0
		if err == nil {
			s = int(HashValue(cv) % uint64(n))
		}
		out[s] = append(out[s], i)
	}
	return out
}

// shardOffsets returns each shard's starting global row index plus the
// total row count, under no lock — callers mutating by global index
// already hold the engine's exclusive latch or the shard write locks.
func (t *ShardedTable) shardOffsets() ([]int, int) {
	offs := make([]int, len(t.shards))
	n := 0
	for i := range t.shards {
		offs[i] = n
		n += t.ShardRows(i)
	}
	return offs, n
}

// locateRow maps a global (shard-major) row index to its shard and
// local index given the shard offsets.
func locateRow(offs []int, g int) (int, int) {
	s := sort.Search(len(offs), func(i int) bool { return offs[i] > g }) - 1
	return s, g - offs[s]
}

// UpdateInPlace sets cols[colIdx] = vals[k] for each global row index
// in rowIdx. This is the "update" arm of Update-vs-Replace, used when
// the number of changed tuples is below the threshold. Only the
// touched column of each touched shard is detached (copied) when a
// snapshot still shares it — column-granular copy-on-write.
func (t *ShardedTable) UpdateInPlace(rowIdx []int, colIdx int, vals []Value) error {
	if len(rowIdx) != len(vals) {
		return fmt.Errorf("storage: update arity mismatch on %s", t.name)
	}
	if len(rowIdx) == 0 {
		return nil
	}
	offs, total := t.shardOffsets()
	perShard := make([][]int, len(t.shards))    // local row indexes
	perShardVal := make([][]int, len(t.shards)) // positions into vals
	for k, g := range rowIdx {
		if g < 0 || g >= total {
			return fmt.Errorf("storage: set index %d out of range (%d rows)", g, total)
		}
		s, local := locateRow(offs, g)
		perShard[s] = append(perShard[s], local)
		perShardVal[s] = append(perShardVal[s], k)
	}
	for s, locals := range perShard {
		if len(locals) == 0 {
			continue
		}
		sh := t.shards[s]
		sh.mu.Lock()
		if sh.shared[colIdx] {
			c := sh.cols[colIdx]
			sh.cols[colIdx] = c.Slice(0, c.Len())
			sh.shared[colIdx] = false
		}
		sh.version++
		sh.frozen = nil
		for k, local := range locals {
			if err := SetValue(sh.cols[colIdx], local, vals[perShardVal[s][k]]); err != nil {
				sh.mu.Unlock()
				return err
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

// DeleteWhere removes the rows at the given global indexes by
// rebuilding each touched shard's columns without them.
func (t *ShardedTable) DeleteWhere(del []int) {
	if len(del) == 0 {
		return
	}
	offs, total := t.shardOffsets()
	perShard := make([]map[int]bool, len(t.shards))
	for _, g := range del {
		if g < 0 || g >= total {
			continue
		}
		s, local := locateRow(offs, g)
		if perShard[s] == nil {
			perShard[s] = make(map[int]bool)
		}
		perShard[s][local] = true
	}
	for s, deadRows := range perShard {
		if len(deadRows) == 0 {
			continue
		}
		sh := t.shards[s]
		sh.mu.Lock()
		n := sh.rows()
		keep := make([]int, 0, n-len(deadRows))
		for i := 0; i < n; i++ {
			if !deadRows[i] {
				keep = append(keep, i)
			}
		}
		for j, c := range sh.cols {
			sh.cols[j] = c.Gather(keep)
			sh.shared[j] = false // Gather built fresh columns
		}
		sh.version++
		sh.frozen = nil
		sh.mu.Unlock()
	}
}

// UpdateShardInPlace is UpdateInPlace restricted to one shard: it sets
// cols[colIdx] = vals[k] for each shard-local row index in localIdx.
// The engine's shard-pruned fast path uses it so a point UPDATE whose
// WHERE pins the partition key touches (and locks) only the owning
// shard while the others stay open to concurrent writers.
func (t *ShardedTable) UpdateShardInPlace(s int, localIdx []int, colIdx int, vals []Value) error {
	if len(localIdx) != len(vals) {
		return fmt.Errorf("storage: update arity mismatch on %s", t.name)
	}
	if len(localIdx) == 0 {
		return nil
	}
	sh := t.shards[s]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n := sh.rows()
	for _, local := range localIdx {
		if local < 0 || local >= n {
			return fmt.Errorf("storage: set index %d out of range (shard %d has %d rows)", local, s, n)
		}
	}
	if sh.shared[colIdx] {
		c := sh.cols[colIdx]
		sh.cols[colIdx] = c.Slice(0, c.Len())
		sh.shared[colIdx] = false
	}
	sh.version++
	sh.frozen = nil
	for k, local := range localIdx {
		if err := SetValue(sh.cols[colIdx], local, vals[k]); err != nil {
			return err
		}
	}
	return nil
}

// DeleteShardWhere is DeleteWhere restricted to one shard: it removes
// the rows at the given shard-local indexes by rebuilding the shard's
// columns without them.
func (t *ShardedTable) DeleteShardWhere(s int, localIdx []int) {
	if len(localIdx) == 0 {
		return
	}
	dead := make(map[int]bool, len(localIdx))
	for _, i := range localIdx {
		dead[i] = true
	}
	sh := t.shards[s]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n := sh.rows()
	keep := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !dead[i] {
			keep = append(keep, i)
		}
	}
	for j, c := range sh.cols {
		sh.cols[j] = c.Gather(keep)
		sh.shared[j] = false // Gather built fresh columns
	}
	sh.version++
	sh.frozen = nil
}

// Truncate removes all rows from every shard.
func (t *ShardedTable) Truncate() {
	for _, sh := range t.shards {
		sh.mu.Lock()
		for j, c := range t.schema.Cols {
			sh.cols[j] = NewColumn(c.Type, 0)
			sh.shared[j] = false // fresh empty columns
		}
		sh.version++
		sh.frozen = nil
		sh.mu.Unlock()
	}
}

// AllShards returns the full shard index list [0..N) — the lock set
// for statements whose shard footprint is unknown.
func (t *ShardedTable) AllShards() []int {
	idx := make([]int, len(t.shards))
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// LockShards takes the statement-scope write locks of the given shards
// in ascending order (deduplicated), so concurrent statements with
// overlapping footprints never deadlock. The engine's sharded write
// fast path brackets each auto-commit statement with
// LockShards/UnlockShards while holding only the shared engine latch;
// writers on disjoint shards proceed in parallel.
func (t *ShardedTable) LockShards(idx []int) {
	for _, s := range sortedUnique(idx) {
		t.shards[s].stmtMu.Lock()
	}
}

// UnlockShards releases the statement-scope write locks taken by
// LockShards with the same index set.
func (t *ShardedTable) UnlockShards(idx []int) {
	for _, s := range sortedUnique(idx) {
		t.shards[s].stmtMu.Unlock()
	}
}

func sortedUnique(idx []int) []int {
	out := append([]int(nil), idx...)
	sort.Ints(out)
	j := 0
	for i, s := range out {
		if i == 0 || s != out[j-1] {
			out[j] = s
			j++
		}
	}
	return out[:j]
}

// SetValue sets row i of column c to v (coerced to the column type).
// It is a free function rather than a Column method so the read-mostly
// Column interface stays minimal.
func SetValue(c Column, i int, v Value) error {
	if i < 0 || i >= c.Len() {
		return fmt.Errorf("storage: set index %d out of range (%d rows)", i, c.Len())
	}
	cv, err := Coerce(v, c.Type())
	if err != nil {
		return err
	}
	switch col := c.(type) {
	case *Int64Column:
		if cv.Null {
			if col.nulls == nil {
				col.nulls = NewBitmap(len(col.vals))
			}
			col.nulls.Set(i)
		} else {
			col.vals[i] = cv.I
			col.nulls.Clear(i)
		}
	case *Float64Column:
		if cv.Null {
			if col.nulls == nil {
				col.nulls = NewBitmap(len(col.vals))
			}
			col.nulls.Set(i)
		} else {
			col.vals[i] = cv.F
			col.nulls.Clear(i)
		}
	case *StringColumn:
		if cv.Null {
			if col.nulls == nil {
				col.nulls = NewBitmap(len(col.vals))
			}
			col.nulls.Set(i)
		} else {
			col.vals[i] = cv.S
			col.nulls.Clear(i)
		}
	case *BoolColumn:
		if cv.Null {
			if col.nulls == nil {
				col.nulls = NewBitmap(len(col.vals))
			}
			col.nulls.Set(i)
		} else {
			col.vals[i] = cv.I != 0
			col.nulls.Clear(i)
		}
	default:
		return fmt.Errorf("storage: SetValue on unknown column type %T", c)
	}
	return nil
}
