package storage

import (
	"fmt"
	"sync"
)

// Table is an in-memory columnar table. Appends mutate in place under a
// write lock; the Update-vs-Replace optimization from the paper is
// exposed as UpdateInPlace (cheap for few rows) and Replace (swap in a
// rebuilt column set, cheap for many rows). Clone produces the deep
// copies the transaction layer uses as undo images.
type Table struct {
	mu     sync.RWMutex
	name   string
	schema Schema
	cols   []Column
	// sortKey records the column indexes the table data is ordered by,
	// if any (a Vertica-style sorted projection). Empty means unsorted.
	sortKey []int
	// version counts mutations. Caches keyed on table contents (the
	// coordinator's superstep input cache) compare versions to detect
	// staleness without diffing data.
	version uint64
}

// Version returns the table's mutation counter. It increments on every
// content-changing operation, so two equal versions imply unchanged
// contents.
func (t *Table) Version() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema Schema) *Table {
	t := &Table{name: name, schema: schema, cols: make([]Column, schema.Len())}
	for i, c := range schema.Cols {
		t.cols[i] = NewColumn(c.Type, 0)
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.schema }

// SortKey returns the declared sort order (column indexes), if any.
func (t *Table) SortKey() []int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]int(nil), t.sortKey...)
}

// SetSortKey declares the sort order of the table's data. It is the
// caller's responsibility that the data actually is sorted (the engine
// sorts on load for declared projections).
func (t *Table) SetSortKey(cols []int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sortKey = append([]int(nil), cols...)
}

// NumRows returns the current row count.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.cols) == 0 {
		return 0
	}
	return t.cols[0].Len()
}

// AppendRow appends one row, enforcing NOT NULL constraints.
func (t *Table) AppendRow(vals ...Value) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.appendRowLocked(vals)
}

func (t *Table) appendRowLocked(vals []Value) error {
	if len(vals) != len(t.cols) {
		return fmt.Errorf("storage: table %s has %d columns, row has %d values", t.name, len(t.cols), len(vals))
	}
	for j, v := range vals {
		if t.schema.Cols[j].NotNull && v.Null {
			return fmt.Errorf("storage: NOT NULL constraint violated on %s.%s", t.name, t.schema.Cols[j].Name)
		}
	}
	for j, v := range vals {
		if err := t.cols[j].Append(v); err != nil {
			return fmt.Errorf("storage: %s.%s: %w", t.name, t.schema.Cols[j].Name, err)
		}
	}
	t.version++
	return nil
}

// AppendBatch appends all rows of the batch.
func (t *Table) AppendBatch(b *Batch) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(b.Cols) != len(t.cols) {
		return fmt.Errorf("storage: table %s has %d columns, batch has %d", t.name, len(t.cols), len(b.Cols))
	}
	n := b.Len()
	for i := 0; i < n; i++ {
		if err := t.appendRowLocked(b.Row(i)); err != nil {
			return err
		}
	}
	return nil
}

// Data returns the table contents as a batch sharing the table's column
// storage. Callers must treat it as read-only; the engine serializes
// readers and writers at the statement level.
func (t *Table) Data() *Batch {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return &Batch{Schema: t.schema, Cols: append([]Column(nil), t.cols...)}
}

// Column returns column i (shared storage, read-only by convention).
func (t *Table) Column(i int) Column {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.cols[i]
}

// Replace swaps in an entirely new column set. This is the "replace"
// arm of the paper's Update-vs-Replace optimization: the coordinator
// builds the next-superstep vertex/message table by a left join and
// swaps it in, instead of updating tuples in place.
func (t *Table) Replace(b *Batch) error {
	if len(b.Cols) != t.schema.Len() {
		return fmt.Errorf("storage: replace arity mismatch on %s", t.name)
	}
	for j, c := range b.Cols {
		if c.Type() != t.schema.Cols[j].Type {
			return fmt.Errorf("storage: replace type mismatch on %s.%s: %s vs %s",
				t.name, t.schema.Cols[j].Name, c.Type(), t.schema.Cols[j].Type)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cols = append([]Column(nil), b.Cols...)
	t.version++
	return nil
}

// UpdateInPlace sets cols[colIdx] = vals[k] for each row in rowIdx.
// This is the "update" arm of Update-vs-Replace, used when the number
// of changed tuples is below the threshold.
func (t *Table) UpdateInPlace(rowIdx []int, colIdx int, vals []Value) error {
	if len(rowIdx) != len(vals) {
		return fmt.Errorf("storage: update arity mismatch on %s", t.name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(rowIdx) > 0 {
		t.version++
	}
	for k, i := range rowIdx {
		if err := SetValue(t.cols[colIdx], i, vals[k]); err != nil {
			return err
		}
	}
	return nil
}

// DeleteWhere removes the rows at the given indexes by rebuilding the
// columns without them.
func (t *Table) DeleteWhere(del []int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(del) == 0 {
		return
	}
	dead := make(map[int]bool, len(del))
	for _, i := range del {
		dead[i] = true
	}
	n := t.cols[0].Len()
	keep := make([]int, 0, n-len(del))
	for i := 0; i < n; i++ {
		if !dead[i] {
			keep = append(keep, i)
		}
	}
	for j, c := range t.cols {
		t.cols[j] = c.Gather(keep)
	}
	t.version++
}

// Truncate removes all rows.
func (t *Table) Truncate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, c := range t.schema.Cols {
		t.cols[i] = NewColumn(c.Type, 0)
	}
	t.version++
}

// Clone returns a deep copy of the table (used as a transaction undo
// image and by temporal snapshots).
func (t *Table) Clone() *Table {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := &Table{name: t.name, schema: t.schema.Clone(), cols: make([]Column, len(t.cols)), sortKey: append([]int(nil), t.sortKey...)}
	for i, c := range t.cols {
		out.cols[i] = c.Slice(0, c.Len())
	}
	return out
}

// RestoreFrom swaps this table's contents with those of the given clone.
func (t *Table) RestoreFrom(src *Table) {
	t.mu.Lock()
	defer t.mu.Unlock()
	src.mu.RLock()
	defer src.mu.RUnlock()
	t.cols = append([]Column(nil), src.cols...)
	t.sortKey = append([]int(nil), src.sortKey...)
	t.version++
}

// SetValue sets row i of column c to v (coerced to the column type).
// It is a free function rather than a Column method so the read-mostly
// Column interface stays minimal.
func SetValue(c Column, i int, v Value) error {
	if i < 0 || i >= c.Len() {
		return fmt.Errorf("storage: set index %d out of range (%d rows)", i, c.Len())
	}
	cv, err := Coerce(v, c.Type())
	if err != nil {
		return err
	}
	switch col := c.(type) {
	case *Int64Column:
		if cv.Null {
			if col.nulls == nil {
				col.nulls = NewBitmap(len(col.vals))
			}
			col.nulls.Set(i)
		} else {
			col.vals[i] = cv.I
			col.nulls.Clear(i)
		}
	case *Float64Column:
		if cv.Null {
			if col.nulls == nil {
				col.nulls = NewBitmap(len(col.vals))
			}
			col.nulls.Set(i)
		} else {
			col.vals[i] = cv.F
			col.nulls.Clear(i)
		}
	case *StringColumn:
		if cv.Null {
			if col.nulls == nil {
				col.nulls = NewBitmap(len(col.vals))
			}
			col.nulls.Set(i)
		} else {
			col.vals[i] = cv.S
			col.nulls.Clear(i)
		}
	case *BoolColumn:
		if cv.Null {
			if col.nulls == nil {
				col.nulls = NewBitmap(len(col.vals))
			}
			col.nulls.Set(i)
		} else {
			col.vals[i] = cv.I != 0
			col.nulls.Clear(i)
		}
	default:
		return fmt.Errorf("storage: SetValue on unknown column type %T", c)
	}
	return nil
}
