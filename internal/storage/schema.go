package storage

import (
	"fmt"
	"strings"
)

// ColumnDef describes one column of a table schema.
type ColumnDef struct {
	Name string
	Type Type
	// NotNull marks an integrity constraint enforced on insert.
	NotNull bool
}

// Schema is an ordered list of column definitions.
type Schema struct {
	Cols []ColumnDef
}

// NewSchema builds a schema from (name, type) pairs.
func NewSchema(cols ...ColumnDef) Schema { return Schema{Cols: cols} }

// Col is a convenience constructor for a nullable column definition.
func Col(name string, t Type) ColumnDef { return ColumnDef{Name: name, Type: t} }

// NotNullCol is a convenience constructor for a NOT NULL column.
func NotNullCol(name string, t Type) ColumnDef {
	return ColumnDef{Name: name, Type: t, NotNull: true}
}

// Len returns the number of columns.
func (s Schema) Len() int { return len(s.Cols) }

// IndexOf returns the position of the named column or -1. Matching is
// case-insensitive, like SQL identifiers.
func (s Schema) IndexOf(name string) int {
	for i, c := range s.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Type returns the type of the named column.
func (s Schema) Type(name string) (Type, error) {
	i := s.IndexOf(name)
	if i < 0 {
		return 0, fmt.Errorf("storage: no column %q", name)
	}
	return s.Cols[i].Type, nil
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// String renders the schema as a CREATE TABLE column list.
func (s Schema) String() string {
	parts := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		parts[i] = c.Name + " " + c.Type.String()
		if c.NotNull {
			parts[i] += " NOT NULL"
		}
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Clone returns a copy of the schema that can be mutated independently.
func (s Schema) Clone() Schema {
	return Schema{Cols: append([]ColumnDef(nil), s.Cols...)}
}

// Equal reports whether two schemas have the same column names and types.
func (s Schema) Equal(o Schema) bool {
	if len(s.Cols) != len(o.Cols) {
		return false
	}
	for i := range s.Cols {
		if !strings.EqualFold(s.Cols[i].Name, o.Cols[i].Name) || s.Cols[i].Type != o.Cols[i].Type {
			return false
		}
	}
	return true
}
