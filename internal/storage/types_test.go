package storage

import (
	"testing"
	"testing/quick"
)

func TestValueConstructors(t *testing.T) {
	cases := []struct {
		v    Value
		typ  Type
		str  string
		null bool
	}{
		{Int64(42), TypeInt64, "42", false},
		{Int64(-7), TypeInt64, "-7", false},
		{Float64(2.5), TypeFloat64, "2.5", false},
		{Str("abc"), TypeString, "abc", false},
		{Bool(true), TypeBool, "true", false},
		{Bool(false), TypeBool, "false", false},
		{Null(TypeInt64), TypeInt64, "NULL", true},
		{Null(TypeString), TypeString, "NULL", true},
	}
	for _, c := range cases {
		if c.v.Type != c.typ {
			t.Errorf("%v: type = %v, want %v", c.v, c.v.Type, c.typ)
		}
		if c.v.String() != c.str {
			t.Errorf("%v: String() = %q, want %q", c.v, c.v.String(), c.str)
		}
		if c.v.Null != c.null {
			t.Errorf("%v: Null = %v, want %v", c.v, c.v.Null, c.null)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int64(1), Int64(2), -1},
		{Int64(2), Int64(1), 1},
		{Int64(5), Int64(5), 0},
		{Float64(1.5), Float64(2.5), -1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("a"), 1},
		{Bool(false), Bool(true), -1},
		{Null(TypeInt64), Int64(-100), -1},
		{Int64(-100), Null(TypeInt64), 1},
		{Null(TypeInt64), Null(TypeInt64), 0},
		{Int64(2), Float64(2.0), 0},
		{Int64(2), Float64(2.5), -1},
		{Float64(2.5), Int64(2), 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int64(a), Int64(b)) == -Compare(Int64(b), Int64(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		return Compare(Str(a), Str(b)) == -Compare(Str(b), Str(a))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestCoerce(t *testing.T) {
	cases := []struct {
		in   Value
		to   Type
		want Value
		err  bool
	}{
		{Int64(3), TypeFloat64, Float64(3), false},
		{Float64(3.7), TypeInt64, Int64(3), false},
		{Str("12"), TypeInt64, Int64(12), false},
		{Str("2.5"), TypeFloat64, Float64(2.5), false},
		{Str("true"), TypeBool, Bool(true), false},
		{Int64(0), TypeBool, Bool(false), false},
		{Int64(9), TypeString, Str("9"), false},
		{Str("xyz"), TypeInt64, Value{}, true},
		{Null(TypeString), TypeInt64, Null(TypeInt64), false},
	}
	for _, c := range cases {
		got, err := Coerce(c.in, c.to)
		if c.err {
			if err == nil {
				t.Errorf("Coerce(%v, %v): want error, got %v", c.in, c.to, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("Coerce(%v, %v): %v", c.in, c.to, err)
			continue
		}
		if !Equal(got, c.want) || got.Null != c.want.Null {
			t.Errorf("Coerce(%v, %v) = %v, want %v", c.in, c.to, got, c.want)
		}
	}
}

func TestCoerceRoundTripIntString(t *testing.T) {
	f := func(v int64) bool {
		s, err := Coerce(Int64(v), TypeString)
		if err != nil {
			return false
		}
		back, err := Coerce(s, TypeInt64)
		return err == nil && back.I == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTypeString(t *testing.T) {
	if TypeInt64.String() != "INTEGER" || TypeFloat64.String() != "DOUBLE" ||
		TypeString.String() != "VARCHAR" || TypeBool.String() != "BOOLEAN" {
		t.Error("type names do not match SQL names")
	}
	if !TypeInt64.Numeric() || !TypeFloat64.Numeric() || TypeString.Numeric() || TypeBool.Numeric() {
		t.Error("Numeric() misclassifies types")
	}
}
