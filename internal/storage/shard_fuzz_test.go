package storage

import (
	"fmt"
	"sort"
	"sync"
	"testing"
)

// FuzzShardedTable drives a fuzzed operation sequence — appends,
// predicate updates, predicate deletes, truncates, replaces, and
// snapshot/restore round-trips — against a ShardedTable at a fuzzed
// shard count and the same logical operations against a single-shard
// serial oracle. After every op the row counts must agree; at the end
// the two tables must hold the same row multiset, every row must sit
// in the shard its key hashes to, and the shard-major concatenation
// must account for every row. A final phase replays leftover entropy
// as appends from two concurrent goroutines (the latch-free per-shard
// append path) and re-checks the multiset.
func FuzzShardedTable(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0, 7, 1, 0, 12, 2, 1, 1, 9, 3, 2, 0, 4})
	f.Add([]byte{15, 0, 1, 0, 2, 0, 3, 5, 3, 200, 201, 202, 6, 0, 250})
	f.Add([]byte{1, 0, 5, 4, 0, 6, 2, 2, 1, 3, 5, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		pos := 0
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		schema := NewSchema(NotNullCol("id", TypeInt64), Col("v", TypeInt64))
		shards := 1 + int(next())%16
		st := NewShardedTable("f", schema, 0, shards)
		oracle := NewTable("f", schema)
		tables := []*ShardedTable{st, oracle}

		rowVal := func() (Value, Value) {
			id := Int64(int64(int8(next()))) // small signed keys: collisions likely
			v := Int64(int64(next()))
			if next()%4 == 0 {
				v = Null(TypeInt64)
			}
			return id, v
		}
		// matchIdx evaluates the predicate id mod m == r against a
		// table's own shard-major row order — global indexes differ
		// between the sharded table and the oracle for the same logical
		// rows, exactly like the engine matching a WHERE clause per scan.
		matchIdx := func(tb *ShardedTable, m, r int64) []int {
			col := tb.Data().Cols[0]
			var idx []int
			for i := 0; i < col.Len(); i++ {
				if ((col.Value(i).I%m)+m)%m == r {
					idx = append(idx, i)
				}
			}
			return idx
		}

		var snaps [2]*Snapshot
		ops := 0
		for pos < len(data) && ops < 200 {
			ops++
			switch next() % 7 {
			case 0: // append one row
				id, v := rowVal()
				for _, tb := range tables {
					if err := tb.AppendRow(id, v); err != nil {
						t.Fatalf("append: %v", err)
					}
				}
			case 1: // NOT NULL violation must reject on both, changing nothing
				for _, tb := range tables {
					if err := tb.AppendRow(Null(TypeInt64), Int64(1)); err == nil {
						t.Fatal("null key accepted")
					}
				}
			case 2: // predicate update of the nullable column
				m := 1 + int64(next()%5)
				r := int64(next()) % m
				nv := Int64(int64(next()))
				for _, tb := range tables {
					idx := matchIdx(tb, m, r)
					vals := make([]Value, len(idx))
					for k := range vals {
						vals[k] = nv
					}
					if err := tb.UpdateInPlace(idx, 1, vals); err != nil {
						t.Fatalf("update: %v", err)
					}
				}
			case 3: // predicate delete
				m := 1 + int64(next()%5)
				r := int64(next()) % m
				for _, tb := range tables {
					tb.DeleteWhere(matchIdx(tb, m, r))
				}
			case 4: // truncate
				for _, tb := range tables {
					tb.Truncate()
				}
			case 5: // replace contents with a fresh batch
				n := int(next()) % 8
				var newRows [][2]Value
				for i := 0; i < n; i++ {
					id, v := rowVal()
					newRows = append(newRows, [2]Value{id, v})
				}
				// Replace adopts the batch's column storage, so each
				// table needs its own batch — sharing one would alias
				// their columns (the engine builds one per call too).
				for _, tb := range tables {
					b := NewBatch(schema)
					for _, r := range newRows {
						if err := b.AppendRow(r[0], r[1]); err != nil {
							t.Fatalf("batch append: %v", err)
						}
					}
					if err := tb.Replace(b); err != nil {
						t.Fatalf("replace: %v", err)
					}
				}
			case 6: // snapshot, mutate on top, restore — frozen-view COW path
				for i, tb := range tables {
					snaps[i] = tb.Snapshot()
				}
				id, v := rowVal()
				for _, tb := range tables {
					if err := tb.AppendRow(id, v); err != nil {
						t.Fatalf("append over snapshot: %v", err)
					}
				}
				for i, tb := range tables {
					tb.RestoreSnapshot(snaps[i])
				}
			}
			if st.NumRows() != oracle.NumRows() {
				t.Fatalf("op %d: sharded has %d rows, oracle %d", ops, st.NumRows(), oracle.NumRows())
			}
		}
		checkShardAgreesWithOracle(t, st, oracle, shards)

		// Concurrent phase: split the remaining entropy's rows between
		// two goroutines appending to the sharded table at once; the
		// oracle gets them serially. AppendRow only takes the target
		// shard's latch, so this exercises genuinely parallel appends.
		var rows [][2]Value
		for i := 0; i < 32; i++ {
			id, v := rowVal()
			rows = append(rows, [2]Value{id, v})
		}
		var wg sync.WaitGroup
		for half := 0; half < 2; half++ {
			wg.Add(1)
			go func(part [][2]Value) {
				defer wg.Done()
				for _, r := range part {
					_ = st.AppendRow(r[0], r[1])
				}
			}(rows[half*16 : (half+1)*16])
		}
		for _, r := range rows {
			if err := oracle.AppendRow(r[0], r[1]); err != nil {
				t.Fatalf("oracle append: %v", err)
			}
		}
		wg.Wait()
		checkShardAgreesWithOracle(t, st, oracle, shards)
	})
}

// checkShardAgreesWithOracle asserts the sharded table and the oracle
// hold the same row multiset, that each row is placed in the shard its
// key hashes to, and that the per-shard counts sum to the total.
func checkShardAgreesWithOracle(t *testing.T, st, oracle *ShardedTable, shards int) {
	t.Helper()
	render := func(tb *ShardedTable) []string {
		d := tb.Data()
		out := make([]string, d.Len())
		for i := range out {
			r := d.Row(i)
			v := "null"
			if !r[1].Null {
				v = fmt.Sprint(r[1].I)
			}
			out[i] = fmt.Sprintf("%d|%s", r[0].I, v)
		}
		sort.Strings(out)
		return out
	}
	got, want := render(st), render(oracle)
	if len(got) != len(want) {
		t.Fatalf("sharded has %d rows, oracle %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row multiset diverged at %d: sharded %q, oracle %q", i, got[i], want[i])
		}
	}
	sum := 0
	for i := 0; i < st.NumShards(); i++ {
		b := st.ShardBatch(i)
		sum += b.Len()
		for r := 0; r < b.Len(); r++ {
			if h := int(HashValue(b.Row(r)[0]) % uint64(shards)); h != i {
				t.Fatalf("row with key %d in shard %d, hashes to %d", b.Row(r)[0].I, i, h)
			}
		}
	}
	if sum != st.NumRows() {
		t.Fatalf("shard rows sum to %d, NumRows is %d", sum, st.NumRows())
	}
}
