package storage

import (
	"fmt"
	"sort"
)

// BatchSize is the default number of rows in a record batch produced by
// the vectorized executor.
const BatchSize = 1024

// Batch is a set of equal-length columns: the unit of data flow between
// executor operators.
type Batch struct {
	Schema Schema
	Cols   []Column
}

// NewBatch allocates an empty batch with columns matching the schema.
func NewBatch(s Schema) *Batch {
	b := &Batch{Schema: s, Cols: make([]Column, s.Len())}
	for i, c := range s.Cols {
		b.Cols[i] = NewColumn(c.Type, BatchSize)
	}
	return b
}

// Len returns the number of rows in the batch (0 for an empty batch).
func (b *Batch) Len() int {
	if b == nil || len(b.Cols) == 0 {
		return 0
	}
	return b.Cols[0].Len()
}

// Row materializes row i as a slice of values (mostly for tests, result
// rendering, and the tuple-at-a-time vertex workers).
func (b *Batch) Row(i int) []Value {
	out := make([]Value, len(b.Cols))
	for j, c := range b.Cols {
		out[j] = c.Value(i)
	}
	return out
}

// AppendRow appends a row of values, coercing to the schema types.
func (b *Batch) AppendRow(vals ...Value) error {
	if len(vals) != len(b.Cols) {
		return fmt.Errorf("storage: row has %d values, schema has %d columns", len(vals), len(b.Cols))
	}
	for j, v := range vals {
		if err := b.Cols[j].Append(v); err != nil {
			return err
		}
	}
	return nil
}

// Gather returns a new batch containing the rows at the given indexes.
func (b *Batch) Gather(idx []int) *Batch {
	out := &Batch{Schema: b.Schema, Cols: make([]Column, len(b.Cols))}
	for j, c := range b.Cols {
		out.Cols[j] = c.Gather(idx)
	}
	return out
}

// Slice returns rows [from, to) as a new batch.
func (b *Batch) Slice(from, to int) *Batch {
	out := &Batch{Schema: b.Schema, Cols: make([]Column, len(b.Cols))}
	for j, c := range b.Cols {
		out.Cols[j] = c.Slice(from, to)
	}
	return out
}

// SortKey describes one sort criterion for SortBatch.
type SortKey struct {
	Col  int
	Desc bool
}

// SortBatch returns a new batch with rows reordered by the sort keys
// (stable). NULLs sort first, matching Compare.
func SortBatch(b *Batch, keys []SortKey) *Batch {
	n := b.Len()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		for _, k := range keys {
			c := Compare(b.Cols[k.Col].Value(idx[x]), b.Cols[k.Col].Value(idx[y]))
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return b.Gather(idx)
}

// Concat appends the rows of src to dst (schemas must be compatible).
func Concat(dst, src *Batch) error {
	if len(dst.Cols) != len(src.Cols) {
		return fmt.Errorf("storage: concat arity mismatch %d vs %d", len(dst.Cols), len(src.Cols))
	}
	for j := range dst.Cols {
		for i := 0; i < src.Cols[j].Len(); i++ {
			if err := dst.Cols[j].Append(src.Cols[j].Value(i)); err != nil {
				return err
			}
		}
	}
	return nil
}
