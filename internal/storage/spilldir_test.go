package storage

import (
	"errors"
	"path/filepath"
	"testing"
)

// resetSpillDir restores process-global spill placement state.
func resetSpillDir(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		SetSpillDir("")
		SetSpillDiskCap(0)
	})
}

func TestSpillDirPlacementAndAccounting(t *testing.T) {
	resetSpillDir(t)
	dir := t.TempDir()
	if err := SetSpillDir(dir); err != nil {
		t.Fatal(err)
	}
	if got := SpillDirPath(); got != dir {
		t.Fatalf("SpillDirPath = %q, want %q", got, dir)
	}
	f, err := DefaultSpillFS.CreateTemp()
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(f.Name()) != dir {
		t.Fatalf("spill file %q not under %q", f.Name(), dir)
	}
	payload := make([]byte, 1024)
	if _, err := f.Write(payload); err != nil {
		t.Fatal(err)
	}
	if got := SpillDirBytes(); got != 1024 {
		t.Fatalf("SpillDirBytes = %d, want 1024", got)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := SpillDirBytes(); got != 0 {
		t.Fatalf("SpillDirBytes after close = %d, want 0 (refund)", got)
	}
	// Close removed the file.
	if m, _ := filepath.Glob(filepath.Join(dir, "vx-spill-*")); len(m) != 0 {
		t.Fatalf("spill files left behind: %v", m)
	}
}

func TestSpillDiskCapFailsWriteCleanly(t *testing.T) {
	resetSpillDir(t)
	if err := SetSpillDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	SetSpillDiskCap(512)
	f, err := DefaultSpillFS.CreateTemp()
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(make([]byte, 256)); err != nil {
		t.Fatalf("write under cap: %v", err)
	}
	_, err = f.Write(make([]byte, 512))
	if !errors.Is(err, ErrSpillDiskCap) {
		t.Fatalf("write over cap = %v, want ErrSpillDiskCap", err)
	}
	// The refused write must not leak accounted bytes.
	if got := SpillDirBytes(); got != 256 {
		t.Fatalf("SpillDirBytes after refusal = %d, want 256", got)
	}
	// Raising the cap unblocks the same file.
	SetSpillDiskCap(0)
	if _, err := f.Write(make([]byte, 512)); err != nil {
		t.Fatalf("write after cap lift: %v", err)
	}
}

func TestSpillRunThroughManagedDirRefundsOnClose(t *testing.T) {
	resetSpillDir(t)
	if err := SetSpillDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	b := NewBatch(NewSchema(Col("v", TypeInt64)))
	for i := 0; i < 100; i++ {
		if err := b.AppendRow(Int64(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	w, err := NewRunWriter(nil, b.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(b); err != nil {
		t.Fatal(err)
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := SpillDirBytes(); got <= 0 {
		t.Fatalf("run bytes not accounted: %d", got)
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	if got := SpillDirBytes(); got != 0 {
		t.Fatalf("SpillDirBytes after run close = %d, want 0", got)
	}
}
