package storage

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRLERoundTrip(t *testing.T) {
	in := []int64{5, 5, 5, 1, 1, 9, 9, 9, 9, -3}
	out, err := DecodeInt64RLE(EncodeInt64RLE(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len %d, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], in[i])
		}
	}
}

func TestRLERoundTripProperty(t *testing.T) {
	f := func(in []int64) bool {
		out, err := DecodeInt64RLE(EncodeInt64RLE(in))
		if err != nil {
			return false
		}
		if len(out) != len(in) {
			return len(in) == 0 && len(out) == 0
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeltaRoundTripProperty(t *testing.T) {
	f := func(in []int64) bool {
		out, err := DecodeInt64Delta(EncodeInt64Delta(in))
		if err != nil {
			return false
		}
		if len(out) != len(in) {
			return len(in) == 0 && len(out) == 0
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDictRoundTripProperty(t *testing.T) {
	f := func(in []string) bool {
		out, err := DecodeStringDict(EncodeStringDict(in))
		if err != nil {
			return false
		}
		if len(out) != len(in) {
			return len(in) == 0 && len(out) == 0
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatPlainRoundTrip(t *testing.T) {
	in := []float64{0, 1.5, -2.25, math.MaxFloat64, math.SmallestNonzeroFloat64, math.Inf(1)}
	out, err := DecodeFloat64Plain(EncodeFloat64Plain(in))
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("out[%d] = %g, want %g", i, out[i], in[i])
		}
	}
}

func TestRLECompressesRuns(t *testing.T) {
	run := make([]int64, 10000)
	enc := EncodeInt64RLE(run)
	if len(enc) > 16 {
		t.Errorf("RLE of constant column is %d bytes, want tiny", len(enc))
	}
}

func TestDeltaCompressesSorted(t *testing.T) {
	sorted := make([]int64, 10000)
	for i := range sorted {
		sorted[i] = int64(i)
	}
	enc := EncodeInt64Delta(sorted)
	if len(enc) > len(sorted)*2 {
		t.Errorf("delta of sorted ids is %d bytes, want <= ~1/row", len(enc))
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeInt64RLE([]byte{0xff, 0x01}); err == nil {
		t.Error("RLE decode of wrong tag should fail")
	}
	if _, err := DecodeStringDict([]byte{byte(EncDict), 0x05}); err == nil {
		t.Error("dict decode of truncated data should fail")
	}
	if _, err := DecodeFloat64Plain([]byte{byte(EncPlain), 1, 2, 3}); err == nil {
		t.Error("plain float decode of misaligned data should fail")
	}
	if _, err := DecodeInt64Delta(nil); err == nil {
		t.Error("delta decode of empty data should fail")
	}
}

func TestCompressedSizePicksBest(t *testing.T) {
	constant := make([]int64, 1000)
	if enc, _ := CompressedSize(constant); enc != EncRLE {
		t.Errorf("constant column should pick RLE, got %v", enc)
	}
	seq := make([]int64, 1000)
	for i := range seq {
		seq[i] = int64(i) * 3
	}
	if enc, _ := CompressedSize(seq); enc != EncDelta {
		t.Errorf("sequential column should pick DELTA, got %v", enc)
	}
}
