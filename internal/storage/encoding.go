package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Column encodings. A Vertica-style column store keeps columns
// compressed at rest; this file implements the three classic encodings
// the paper's substrate relies on — run-length encoding for low-
// cardinality sorted columns, dictionary encoding for strings, and
// delta-varint encoding for monotone integer columns (vertex ids in a
// sorted projection). Encoded segments are byte slices with a one-byte
// tag so a table can persist heterogeneous segments.

// Encoding identifies a column encoding scheme.
type Encoding uint8

// Supported encodings.
const (
	EncPlain Encoding = iota
	EncRLE
	EncDict
	EncDelta
)

// String names the encoding.
func (e Encoding) String() string {
	switch e {
	case EncPlain:
		return "PLAIN"
	case EncRLE:
		return "RLE"
	case EncDict:
		return "DICT"
	case EncDelta:
		return "DELTA"
	default:
		return fmt.Sprintf("Encoding(%d)", uint8(e))
	}
}

var errCorrupt = errors.New("storage: corrupt encoded column")

// EncodeInt64RLE run-length encodes the values as (runLength, value)
// varint pairs. It shines on sorted low-cardinality data such as the
// `kind` discriminator column of the table union.
func EncodeInt64RLE(vals []int64) []byte {
	buf := []byte{byte(EncRLE)}
	var tmp [binary.MaxVarintLen64]byte
	i := 0
	for i < len(vals) {
		j := i
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		n := binary.PutUvarint(tmp[:], uint64(j-i))
		buf = append(buf, tmp[:n]...)
		n = binary.PutVarint(tmp[:], vals[i])
		buf = append(buf, tmp[:n]...)
		i = j
	}
	return buf
}

// maxRLEElements bounds how many values DecodeInt64RLE will expand
// when the caller does not know the expected row count. A single
// corrupt (runLength, value) pair can claim a run of 2^63 rows from a
// three-byte input; without a cap that is an allocation bomb. 2^24
// values (128 MiB of int64s) is far beyond any segment this engine
// writes while keeping the worst-case decode allocation modest.
const maxRLEElements = 1 << 24

// DecodeInt64RLE reverses EncodeInt64RLE. Output is capped at
// maxRLEElements; callers that know the expected row count (or expect
// columns above the cap) must use DecodeInt64RLEMax for a tight bound.
func DecodeInt64RLE(data []byte) ([]int64, error) {
	return DecodeInt64RLEMax(data, maxRLEElements)
}

// DecodeInt64RLEMax reverses EncodeInt64RLE, rejecting input that
// expands to more than max values as corrupt. Run lengths are
// validated against the remaining budget before any allocation grows,
// so a hostile length header cannot OOM the decoder.
func DecodeInt64RLEMax(data []byte, max int) ([]int64, error) {
	if len(data) == 0 || Encoding(data[0]) != EncRLE || max < 0 {
		return nil, errCorrupt
	}
	data = data[1:]
	var out []int64
	for len(data) > 0 {
		run, n := binary.Uvarint(data)
		if n <= 0 || run == 0 {
			return nil, errCorrupt
		}
		data = data[n:]
		v, n := binary.Varint(data)
		if n <= 0 {
			return nil, errCorrupt
		}
		data = data[n:]
		if run > uint64(max-len(out)) {
			return nil, errCorrupt
		}
		for k := uint64(0); k < run; k++ {
			out = append(out, v)
		}
	}
	return out, nil
}

// EncodeInt64Delta delta-encodes the values as varints: first value
// absolute, then differences. Sorted vertex-id columns compress to a
// byte or two per row.
func EncodeInt64Delta(vals []int64) []byte {
	buf := []byte{byte(EncDelta)}
	var tmp [binary.MaxVarintLen64]byte
	prev := int64(0)
	for _, v := range vals {
		n := binary.PutVarint(tmp[:], v-prev)
		buf = append(buf, tmp[:n]...)
		prev = v
	}
	return buf
}

// DecodeInt64Delta reverses EncodeInt64Delta.
func DecodeInt64Delta(data []byte) ([]int64, error) {
	if len(data) == 0 || Encoding(data[0]) != EncDelta {
		return nil, errCorrupt
	}
	data = data[1:]
	var out []int64
	prev := int64(0)
	for len(data) > 0 {
		d, n := binary.Varint(data)
		if n <= 0 {
			return nil, errCorrupt
		}
		data = data[n:]
		prev += d
		out = append(out, prev)
	}
	return out, nil
}

// EncodeStringDict dictionary-encodes the strings: a sorted-by-first-use
// dictionary followed by varint codes. Ideal for the edge `type`
// metadata column ("family" / "friend" / "classmate").
func EncodeStringDict(vals []string) []byte {
	dict := make(map[string]uint64)
	var order []string
	codes := make([]uint64, len(vals))
	for i, s := range vals {
		c, ok := dict[s]
		if !ok {
			c = uint64(len(order))
			dict[s] = c
			order = append(order, s)
		}
		codes[i] = c
	}
	buf := []byte{byte(EncDict)}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(order)))
	buf = append(buf, tmp[:n]...)
	for _, s := range order {
		n = binary.PutUvarint(tmp[:], uint64(len(s)))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, s...)
	}
	n = binary.PutUvarint(tmp[:], uint64(len(codes)))
	buf = append(buf, tmp[:n]...)
	for _, c := range codes {
		n = binary.PutUvarint(tmp[:], c)
		buf = append(buf, tmp[:n]...)
	}
	return buf
}

// DecodeStringDict reverses EncodeStringDict.
func DecodeStringDict(data []byte) ([]string, error) {
	if len(data) == 0 || Encoding(data[0]) != EncDict {
		return nil, errCorrupt
	}
	data = data[1:]
	dn, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, errCorrupt
	}
	data = data[n:]
	// Every dictionary entry consumes at least one byte (its length
	// varint), so a count exceeding the remaining input is corrupt —
	// validate before allocating from the untrusted header.
	if dn > uint64(len(data)) {
		return nil, errCorrupt
	}
	dict := make([]string, dn)
	for i := range dict {
		sl, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data)-n) < sl {
			return nil, errCorrupt
		}
		data = data[n:]
		dict[i] = string(data[:sl])
		data = data[sl:]
	}
	cn, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, errCorrupt
	}
	data = data[n:]
	// Each code is at least one byte; cap the allocation by what the
	// remaining input could possibly hold.
	if cn > uint64(len(data)) {
		return nil, errCorrupt
	}
	out := make([]string, cn)
	for i := range out {
		c, n := binary.Uvarint(data)
		if n <= 0 || c >= dn {
			return nil, errCorrupt
		}
		data = data[n:]
		out[i] = dict[c]
	}
	if len(data) != 0 {
		return nil, errCorrupt
	}
	return out, nil
}

// EncodeFloat64Plain stores float64 values as fixed-width little-endian
// words; floats rarely compress and Vertica stores them plain too.
func EncodeFloat64Plain(vals []float64) []byte {
	buf := make([]byte, 1, 1+8*len(vals))
	buf[0] = byte(EncPlain)
	var tmp [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
		buf = append(buf, tmp[:]...)
	}
	return buf
}

// DecodeFloat64Plain reverses EncodeFloat64Plain.
func DecodeFloat64Plain(data []byte) ([]float64, error) {
	if len(data) == 0 || Encoding(data[0]) != EncPlain || (len(data)-1)%8 != 0 {
		return nil, errCorrupt
	}
	data = data[1:]
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return out, nil
}

// CompressedSize reports the encoded size of an int64 column under the
// best of RLE/delta, used by the engine to pick an encoding per segment.
func CompressedSize(vals []int64) (enc Encoding, size int) {
	r := len(EncodeInt64RLE(vals))
	d := len(EncodeInt64Delta(vals))
	if r <= d {
		return EncRLE, r
	}
	return EncDelta, d
}
