package storage

// Deterministic hashing for partitioning and hash joins. We use FNV-1a
// so partition assignment is stable across runs and platforms — the
// vertex-batching tests depend on that determinism.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashInt64 hashes an int64 with FNV-1a over its little-endian bytes.
func HashInt64(v int64) uint64 {
	h := uint64(fnvOffset64)
	u := uint64(v)
	for i := 0; i < 8; i++ {
		h ^= u & 0xff
		h *= fnvPrime64
		u >>= 8
	}
	return h
}

// HashString hashes a string with FNV-1a.
func HashString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// HashValue hashes any Value; NULLs hash to a fixed sentinel.
func HashValue(v Value) uint64 {
	if v.Null {
		return 0x9e3779b97f4a7c15
	}
	switch v.Type {
	case TypeInt64, TypeBool:
		return HashInt64(v.I)
	case TypeFloat64:
		if v.F == float64(int64(v.F)) {
			// Hash integral floats like ints so INTEGER and DOUBLE
			// join keys agree.
			return HashInt64(int64(v.F))
		}
		return HashInt64(int64(v.F*1e9)) ^ 0xabcd
	case TypeString:
		return HashString(v.S)
	}
	return 0
}

// HashRow combines the hashes of several key values.
func HashRow(vals []Value) uint64 {
	h := uint64(fnvOffset64)
	for _, v := range vals {
		hv := HashValue(v)
		for i := 0; i < 8; i++ {
			h ^= hv & 0xff
			h *= fnvPrime64
			hv >>= 8
		}
	}
	return h
}

// PartitionInt64 assigns each value to one of n partitions by hash and
// returns, per partition, the row indexes assigned to it. This is the
// primitive behind the paper's Vertex Batching optimization: the table
// union is hash partitioned on the vertex id.
func PartitionInt64(vals []int64, n int) [][]int {
	out := make([][]int, n)
	if n == 1 {
		idx := make([]int, len(vals))
		for i := range idx {
			idx[i] = i
		}
		out[0] = idx
		return out
	}
	for i, v := range vals {
		p := int(HashInt64(v) % uint64(n))
		out[p] = append(out[p], i)
	}
	return out
}
