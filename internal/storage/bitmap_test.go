package storage

import (
	"testing"
	"testing/quick"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(10)
	if b.Len() != 10 || b.Count() != 0 || b.Any() {
		t.Fatal("fresh bitmap should be empty")
	}
	b.Set(3)
	b.Set(9)
	if !b.Get(3) || !b.Get(9) || b.Get(4) {
		t.Error("Set/Get mismatch")
	}
	if b.Count() != 2 {
		t.Errorf("Count = %d, want 2", b.Count())
	}
	b.Clear(3)
	if b.Get(3) || b.Count() != 1 {
		t.Error("Clear failed")
	}
}

func TestBitmapGrowth(t *testing.T) {
	b := &Bitmap{}
	b.Set(200)
	if !b.Get(200) || b.Len() != 201 {
		t.Errorf("growth: Get(200)=%v Len=%d", b.Get(200), b.Len())
	}
	b.Append(true)
	b.Append(false)
	if !b.Get(201) || b.Get(202) {
		t.Error("Append semantics wrong")
	}
}

func TestBitmapNilReceiver(t *testing.T) {
	var b *Bitmap
	if b.Get(5) {
		t.Error("nil bitmap Get should be false")
	}
	if b.Count() != 0 || b.Any() {
		t.Error("nil bitmap should be empty")
	}
	b.Clear(3) // must not panic
	if c := b.Clone(); c != nil {
		t.Error("nil Clone should be nil")
	}
}

func TestBitmapSlice(t *testing.T) {
	b := NewBitmap(16)
	for _, i := range []int{1, 5, 8, 15} {
		b.Set(i)
	}
	s := b.Slice(4, 12)
	if s.Len() != 8 {
		t.Fatalf("slice len = %d, want 8", s.Len())
	}
	if !s.Get(1) || !s.Get(4) || s.Get(0) || s.Get(7) {
		t.Error("slice bit positions wrong")
	}
}

func TestBitmapResizeShrinkClearsTail(t *testing.T) {
	b := NewBitmap(128)
	b.Set(100)
	b.Resize(50)
	b.Resize(128)
	if b.Get(100) {
		t.Error("shrink then grow must not resurrect bits")
	}
}

func TestBitmapCountMatchesSets(t *testing.T) {
	f := func(idx []uint8) bool {
		b := &Bitmap{}
		seen := map[int]bool{}
		for _, i := range idx {
			b.Set(int(i))
			seen[int(i)] = true
		}
		return b.Count() == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
