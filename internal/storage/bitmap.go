package storage

import "math/bits"

// Bitmap is a growable bitset used for null tracking and row selection.
// The zero value is an empty bitmap ready for use.
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap returns a bitmap sized for n bits, all clear.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the logical number of bits in the bitmap.
func (b *Bitmap) Len() int { return b.n }

// Resize grows (or shrinks) the bitmap to n bits. New bits are clear.
func (b *Bitmap) Resize(n int) {
	need := (n + 63) / 64
	for len(b.words) < need {
		b.words = append(b.words, 0)
	}
	if need < len(b.words) {
		b.words = b.words[:need]
	}
	if n < b.n {
		// Clear any bits beyond the new length in the last word.
		if rem := n % 64; rem != 0 && len(b.words) > 0 {
			b.words[len(b.words)-1] &= (1 << uint(rem)) - 1
		}
	}
	b.n = n
}

// Set sets bit i, growing the bitmap if needed.
func (b *Bitmap) Set(i int) {
	if i >= b.n {
		b.Resize(i + 1)
	}
	b.words[i/64] |= 1 << uint(i%64)
}

// Clear clears bit i. Clearing past the end (or on a nil bitmap, which
// has no set bits) is a no-op.
func (b *Bitmap) Clear(i int) {
	if b == nil || i >= b.n {
		return
	}
	b.words[i/64] &^= 1 << uint(i%64)
}

// Get reports whether bit i is set. Out-of-range bits are clear.
func (b *Bitmap) Get(i int) bool {
	if b == nil || i < 0 || i >= b.n {
		return false
	}
	return b.words[i/64]&(1<<uint(i%64)) != 0
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	if b == nil {
		return 0
	}
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (b *Bitmap) Any() bool {
	if b == nil {
		return false
	}
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the bitmap.
func (b *Bitmap) Clone() *Bitmap {
	if b == nil {
		return nil
	}
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitmap{words: w, n: b.n}
}

// Append appends a bit to the end of the bitmap.
func (b *Bitmap) Append(set bool) {
	i := b.n
	b.Resize(i + 1)
	if set {
		b.words[i/64] |= 1 << uint(i%64)
	}
}

// Words exposes the backing words for serialization.
func (b *Bitmap) Words() []uint64 {
	if b == nil {
		return nil
	}
	return b.words
}

// BitmapFromWords reconstructs a bitmap from serialized words.
func BitmapFromWords(words []uint64, n int) *Bitmap {
	return &Bitmap{words: append([]uint64(nil), words...), n: n}
}

// Slice returns a new bitmap holding bits [from, to).
func (b *Bitmap) Slice(from, to int) *Bitmap {
	out := NewBitmap(to - from)
	for i := from; i < to; i++ {
		if b.Get(i) {
			out.Set(i - from)
		}
	}
	return out
}
