// Package storage implements the column-oriented storage layer of the
// relational engine that Vertexica runs on: typed values, null-aware
// column vectors, record batches, lightweight column encodings (RLE,
// dictionary, delta), in-memory tables with copy-on-write snapshots, and
// hash partitioning used by the vertex-batching optimization.
//
// The design mirrors what the paper relies on from Vertica: columnar
// layout, sorted runs, cheap UNION ALL, and hash partitioning on the
// vertex id.
package storage

import (
	"fmt"
	"math"
	"strconv"
)

// Type enumerates the column types supported by the engine. The set is
// deliberately small — it matches what the paper's three graph tables
// (vertex, edge, message) and the metadata generator need.
type Type uint8

// Supported column types.
const (
	TypeInt64 Type = iota
	TypeFloat64
	TypeString
	TypeBool
)

// String returns the SQL-facing name of the type.
func (t Type) String() string {
	switch t {
	case TypeInt64:
		return "INTEGER"
	case TypeFloat64:
		return "DOUBLE"
	case TypeString:
		return "VARCHAR"
	case TypeBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Numeric reports whether the type supports arithmetic.
func (t Type) Numeric() bool { return t == TypeInt64 || t == TypeFloat64 }

// Value is a dynamically typed scalar. It is the tuple-at-a-time
// currency of the engine: expression evaluation and the vertex-compute
// UDFs both traffic in Values. Booleans are stored in I (0 or 1).
type Value struct {
	Type Type
	Null bool
	I    int64
	F    float64
	S    string
}

// Int64 returns a non-null INTEGER value.
func Int64(v int64) Value { return Value{Type: TypeInt64, I: v} }

// Float64 returns a non-null DOUBLE value.
func Float64(v float64) Value { return Value{Type: TypeFloat64, F: v} }

// Str returns a non-null VARCHAR value.
func Str(v string) Value { return Value{Type: TypeString, S: v} }

// Bool returns a non-null BOOLEAN value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{Type: TypeBool, I: i}
}

// Null returns the NULL value of the given type.
func Null(t Type) Value { return Value{Type: t, Null: true} }

// IsTrue reports whether the value is a non-null true boolean.
func (v Value) IsTrue() bool { return v.Type == TypeBool && !v.Null && v.I != 0 }

// AsFloat converts a numeric value to float64. Strings and bools are not
// converted; callers are expected to have type-checked already.
func (v Value) AsFloat() float64 {
	if v.Type == TypeInt64 {
		return float64(v.I)
	}
	return v.F
}

// AsInt converts a numeric value to int64, truncating floats.
func (v Value) AsInt() int64 {
	if v.Type == TypeFloat64 {
		return int64(v.F)
	}
	return v.I
}

// Bool reports the boolean payload (false for nulls and non-booleans).
func (v Value) Bool() bool { return v.Type == TypeBool && !v.Null && v.I != 0 }

// String renders the value the way the engine prints result rows.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Type {
	case TypeInt64:
		return strconv.FormatInt(v.I, 10)
	case TypeFloat64:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TypeString:
		return v.S
	case TypeBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Compare orders two values of the same type. NULL sorts before every
// non-null value; two NULLs compare equal. It returns -1, 0 or +1.
// Cross-numeric comparisons (INTEGER vs DOUBLE) are supported.
func Compare(a, b Value) int {
	if a.Null || b.Null {
		switch {
		case a.Null && b.Null:
			return 0
		case a.Null:
			return -1
		default:
			return 1
		}
	}
	if a.Type.Numeric() && b.Type.Numeric() && a.Type != b.Type {
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	switch a.Type {
	case TypeInt64, TypeBool:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
	case TypeFloat64:
		switch {
		case a.F < b.F || (math.IsNaN(a.F) && !math.IsNaN(b.F)):
			return -1
		case a.F > b.F || (!math.IsNaN(a.F) && math.IsNaN(b.F)):
			return 1
		}
	case TypeString:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		}
	}
	return 0
}

// Equal reports whether two values are equal under Compare semantics
// (NULL == NULL for grouping purposes).
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Coerce converts v to type t where a lossless or standard SQL cast
// exists. It returns an error for unsupported casts.
func Coerce(v Value, t Type) (Value, error) {
	if v.Null {
		return Null(t), nil
	}
	if v.Type == t {
		return v, nil
	}
	switch t {
	case TypeInt64:
		switch v.Type {
		case TypeFloat64:
			return Int64(int64(v.F)), nil
		case TypeBool:
			return Int64(v.I), nil
		case TypeString:
			i, err := strconv.ParseInt(v.S, 10, 64)
			if err != nil {
				return Value{}, fmt.Errorf("storage: cannot cast %q to INTEGER", v.S)
			}
			return Int64(i), nil
		}
	case TypeFloat64:
		switch v.Type {
		case TypeInt64:
			return Float64(float64(v.I)), nil
		case TypeBool:
			return Float64(float64(v.I)), nil
		case TypeString:
			f, err := strconv.ParseFloat(v.S, 64)
			if err != nil {
				return Value{}, fmt.Errorf("storage: cannot cast %q to DOUBLE", v.S)
			}
			return Float64(f), nil
		}
	case TypeString:
		return Str(v.String()), nil
	case TypeBool:
		switch v.Type {
		case TypeInt64:
			return Bool(v.I != 0), nil
		case TypeString:
			b, err := strconv.ParseBool(v.S)
			if err != nil {
				return Value{}, fmt.Errorf("storage: cannot cast %q to BOOLEAN", v.S)
			}
			return Bool(b), nil
		}
	}
	return Value{}, fmt.Errorf("storage: unsupported cast %s -> %s", v.Type, t)
}
