package storage

import (
	"errors"
	"fmt"
	"testing"
)

func spillSchema() Schema {
	return NewSchema(
		Col("i", TypeInt64),
		Col("f", TypeFloat64),
		Col("s", TypeString),
		Col("b", TypeBool),
	)
}

func spillBatch(t *testing.T, start, rows int) *Batch {
	t.Helper()
	b := NewBatch(spillSchema())
	for r := 0; r < rows; r++ {
		i := start + r
		vals := []Value{
			Int64(int64(i)),
			Float64(float64(i) / 4),
			Str(fmt.Sprintf("row-%04d", i%17)),
			Bool(i%3 == 0),
		}
		if i%7 == 0 {
			vals[1] = Null(TypeFloat64)
		}
		if i%11 == 0 {
			vals[2] = Null(TypeString)
		}
		if err := b.AppendRow(vals...); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func valuesEqual(a, b Value) bool {
	if a.Null != b.Null || a.Type != b.Type {
		return false
	}
	if a.Null {
		return true
	}
	return a.I == b.I && a.F == b.F && a.S == b.S
}

func requireSameRows(t *testing.T, got, want *Batch) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("rows = %d, want %d", got.Len(), want.Len())
	}
	for r := 0; r < want.Len(); r++ {
		gr, wr := got.Row(r), want.Row(r)
		for c := range wr {
			if !valuesEqual(gr[c], wr[c]) {
				t.Fatalf("row %d col %d = %v, want %v", r, c, gr[c], wr[c])
			}
		}
	}
}

func TestSpillBatchRoundTrip(t *testing.T) {
	want := spillBatch(t, 0, 100)
	got, err := DecodeSpillBatch(EncodeSpillBatch(want), want.Schema)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRows(t, got, want)
}

func TestSpillRunRoundTrip(t *testing.T) {
	w, err := NewRunWriter(nil, spillSchema())
	if err != nil {
		t.Fatal(err)
	}
	want := NewBatch(spillSchema())
	for i := 0; i < 5; i++ {
		b := spillBatch(t, i*1000, 700) // odd sizes force rechunking
		if err := w.Write(b); err != nil {
			t.Fatal(err)
		}
		if err := Concat(want, b); err != nil {
			t.Fatal(err)
		}
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	if run.Rows() != int64(want.Len()) {
		t.Fatalf("run rows = %d, want %d", run.Rows(), want.Len())
	}
	if run.Bytes() <= 0 {
		t.Fatal("finished run reports no bytes")
	}
	got := NewBatch(spillSchema())
	rr := run.Reader()
	for {
		b, err := rr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		if b.Len() > BatchSize {
			t.Fatalf("frame holds %d rows, over the %d batch cap", b.Len(), BatchSize)
		}
		if err := Concat(got, b); err != nil {
			t.Fatal(err)
		}
	}
	requireSameRows(t, got, want)
}

func TestSpillRunReadWhileWriting(t *testing.T) {
	w, err := NewRunWriter(nil, spillSchema())
	if err != nil {
		t.Fatal(err)
	}
	first := spillBatch(t, 0, BatchSize)
	if err := w.Write(first); err != nil {
		t.Fatal(err)
	}
	// The spool reads completed frames back while the producer is still
	// appending; positional reads must not disturb the write offset.
	got, err := w.ReadFrame(0)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRows(t, got, first)
	second := spillBatch(t, 5000, BatchSize)
	if err := w.Write(second); err != nil {
		t.Fatal(err)
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	if run.Frames() != 2 || run.Rows() != int64(2*BatchSize) {
		t.Fatalf("frames=%d rows=%d", run.Frames(), run.Rows())
	}
	got, err = run.ReadFrame(1)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRows(t, got, second)
}

func TestMergeSpillRunsStable(t *testing.T) {
	schema := NewSchema(Col("k", TypeInt64), Col("src", TypeInt64))
	writeRun := func(src int64, keys []int64) *SpillRun {
		w, err := NewRunWriter(nil, schema)
		if err != nil {
			t.Fatal(err)
		}
		b := NewBatch(schema)
		for _, k := range keys {
			if err := b.AppendRow(Int64(k), Int64(src)); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Write(b); err != nil {
			t.Fatal(err)
		}
		run, err := w.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return run
	}
	a := writeRun(0, []int64{1, 3, 3, 7})
	b := writeRun(1, []int64{2, 3, 7, 9})
	defer a.Close()
	defer b.Close()
	m, err := MergeSpillRuns(nil, a, b, []SortKey{{Col: 0}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	out := NewBatch(schema)
	rr := m.Reader()
	for {
		fb, err := rr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if fb == nil {
			break
		}
		if err := Concat(out, fb); err != nil {
			t.Fatal(err)
		}
	}
	wantK := []int64{1, 2, 3, 3, 3, 7, 7, 9}
	wantSrc := []int64{0, 1, 0, 0, 1, 0, 1, 1} // a wins ties
	if out.Len() != len(wantK) {
		t.Fatalf("merged %d rows", out.Len())
	}
	for i := range wantK {
		r := out.Row(i)
		if r[0].I != wantK[i] || r[1].I != wantSrc[i] {
			t.Fatalf("row %d = (%d,%d), want (%d,%d)", i, r[0].I, r[1].I, wantK[i], wantSrc[i])
		}
	}
}

func TestSpillTotalsAdvance(t *testing.T) {
	runs0, bytes0 := SpillTotals()
	w, err := NewRunWriter(nil, spillSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(spillBatch(t, 0, 64)); err != nil {
		t.Fatal(err)
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	runs1, bytes1 := SpillTotals()
	if runs1 <= runs0 || bytes1 <= bytes0 {
		t.Fatalf("totals did not advance: runs %d→%d bytes %d→%d", runs0, runs1, bytes0, bytes1)
	}
}

// failSpillFS injects write failures after a byte budget, exercising the
// executor's spill error paths without touching a real disk fault.
type failSpillFS struct {
	allow int // bytes accepted before writes start failing
}

type failSpillFile struct {
	fs      *failSpillFS
	written int
}

var errDiskFull = errors.New("spill-test: disk full")

func (f *failSpillFile) Write(p []byte) (int, error) {
	if f.written+len(p) > f.fs.allow {
		return 0, errDiskFull
	}
	f.written += len(p)
	return len(p), nil
}

func (f *failSpillFile) ReadAt(p []byte, off int64) (int, error) {
	return 0, errDiskFull
}
func (f *failSpillFile) Close() error { return nil }
func (f *failSpillFile) Name() string { return "fail-spill" }

func (fs *failSpillFS) CreateTemp() (SpillFile, error) {
	return &failSpillFile{fs: fs}, nil
}

func TestRunWriterSurfacesWriteFailure(t *testing.T) {
	w, err := NewRunWriter(&failSpillFS{allow: 0}, spillSchema())
	if err != nil {
		t.Fatal(err)
	}
	err = w.Write(spillBatch(t, 0, BatchSize))
	if err == nil {
		// The chunker may buffer a partial batch; Finish must then fail.
		_, err = w.Finish()
	}
	if !errors.Is(err, errDiskFull) {
		t.Fatalf("disk-full not surfaced: %v", err)
	}
	w.Abort()
}

func TestDecodeSpillBatchRejectsCorruption(t *testing.T) {
	want := spillBatch(t, 0, 50)
	enc := EncodeSpillBatch(want)
	if _, err := DecodeSpillBatch(enc[:len(enc)/2], want.Schema); err == nil {
		t.Fatal("truncated frame accepted")
	}
	if _, err := DecodeSpillBatch(append(append([]byte{}, enc...), 0xff), want.Schema); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f} // absurd row count
	if _, err := DecodeSpillBatch(huge, want.Schema); err == nil {
		t.Fatal("absurd row count accepted")
	}
}
