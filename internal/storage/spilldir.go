package storage

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// Managed spill placement: the process-wide default spill filesystem
// is a settable directory (SET temp_tablespace / VXDB_SPILL_DIR) with
// byte accounting and an optional disk-usage cap. Every spill file
// created through DefaultSpillFS counts its written bytes against the
// directory total; a write that would cross the cap fails with
// ErrSpillDiskCap before touching disk, which unwinds the operator's
// reservation cleanly (RunWriter.Abort removes the partial run).

// ErrSpillDiskCap reports a spill write refused by the disk-usage cap.
var ErrSpillDiskCap = fmt.Errorf("storage: spill disk usage would exceed temp_file_limit")

// spillDirFS is the managed SpillFS behind DefaultSpillFS.
type spillDirFS struct {
	mu   sync.RWMutex
	dir  string // "" = system temp dir
	cap  atomic.Int64
	used atomic.Int64
}

var spillDir = &spillDirFS{}

// SetSpillDir points the default spill filesystem at dir, creating it
// if needed. An empty dir restores the system temp directory.
func SetSpillDir(dir string) error {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("storage: temp_tablespace: %w", err)
		}
	}
	spillDir.mu.Lock()
	spillDir.dir = dir
	spillDir.mu.Unlock()
	return nil
}

// SpillDirPath returns the current spill directory ("" = system temp).
func SpillDirPath() string {
	spillDir.mu.RLock()
	defer spillDir.mu.RUnlock()
	return spillDir.dir
}

// SetSpillDiskCap bounds the bytes simultaneously resident in spill
// files created through the default filesystem. 0 removes the cap.
func SetSpillDiskCap(n int64) {
	if n < 0 {
		n = 0
	}
	spillDir.cap.Store(n)
}

// SpillDiskCap returns the current cap (0 = unlimited).
func SpillDiskCap() int64 { return spillDir.cap.Load() }

// SpillDirBytes reports the bytes currently resident in live spill
// files of the default filesystem (written minus closed), the
// spill.dir_bytes gauge.
func SpillDirBytes() int64 { return spillDir.used.Load() }

// CreateTemp implements SpillFS: an accounted temp file in the managed
// directory.
func (fs *spillDirFS) CreateTemp() (SpillFile, error) {
	fs.mu.RLock()
	dir := fs.dir
	fs.mu.RUnlock()
	f, err := os.CreateTemp(dir, "vx-spill-*.run")
	if err != nil {
		return nil, err
	}
	return &accountedSpillFile{File: f, fs: fs}, nil
}

// accountedSpillFile charges writes against the directory budget and
// refunds them when the run closes (spill files never outlive their
// statement, so close == delete == refund).
type accountedSpillFile struct {
	*os.File
	fs      *spillDirFS
	written int64
}

// Write implements io.Writer with cap admission: the bytes are charged
// before the write and refunded if the write fails or the cap refuses
// it. Failing the write (not the file creation) is what lets the
// operator's half-written run unwind through its normal Abort path.
func (f *accountedSpillFile) Write(p []byte) (int, error) {
	n := int64(len(p))
	used := f.fs.used.Add(n)
	if c := f.fs.cap.Load(); c > 0 && used > c {
		f.fs.used.Add(-n)
		return 0, fmt.Errorf("%w (in use %d + %d > cap %d)", ErrSpillDiskCap, used-n, n, c)
	}
	wrote, err := f.File.Write(p)
	if int64(wrote) < n {
		f.fs.used.Add(int64(wrote) - n) // refund the unwritten tail
	}
	f.written += int64(wrote)
	return wrote, err
}

// Close removes the file and refunds its bytes.
func (f *accountedSpillFile) Close() error {
	err := f.File.Close()
	if rmErr := os.Remove(f.File.Name()); err == nil {
		err = rmErr
	}
	f.fs.used.Add(-f.written)
	f.written = 0
	return err
}
