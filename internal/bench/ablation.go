package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/sqlgraph"
)

// Ablation studies for the §2.3 optimizations. Each returns rows
// suitable for PrintAblation; each maps to one design choice called out
// in DESIGN.md.

// AblationRow is one ablation measurement.
type AblationRow struct {
	Study   string
	Variant string
	Seconds float64
	Extra   string
}

// freshGraph loads the ablation dataset (Twitter-shaped by default).
func freshGraph(scale float64) (*core.Graph, error) {
	return loadVertexica(dataset.TwitterScale(scale))
}

func timedRun(g *core.Graph, iters int, opts core.Options) (float64, *core.RunStats, error) {
	start := time.Now()
	_, stats, err := algorithms.RunPageRank(context.Background(), g, iters, opts)
	return time.Since(start).Seconds(), stats, err
}

// AblationUnionVsJoin compares the paper's Table-Unions input assembly
// against the naive 3-way join (§2.3 "Table Unions").
func AblationUnionVsJoin(scale float64, iters int) ([]AblationRow, error) {
	var rows []AblationRow
	for _, join := range []bool{false, true} {
		g, err := freshGraph(scale)
		if err != nil {
			return nil, err
		}
		secs, stats, err := timedRun(g, iters, core.Options{UseJoinInput: join})
		if err != nil {
			return nil, err
		}
		variant := "union (paper)"
		if join {
			variant = "3-way join"
		}
		inputRows := 0
		for _, s := range stats.Steps {
			inputRows += s.InputRows
		}
		rows = append(rows, AblationRow{
			Study: "U: table unions", Variant: variant, Seconds: secs,
			Extra: fmt.Sprintf("%d input rows total", inputRows),
		})
	}
	return rows, nil
}

// AblationBatching sweeps the number of hash partitions (§2.3 "Vertex
// Batching"): 1 partition = one serial batch; many = finer batches.
func AblationBatching(scale float64, iters int, partitions []int) ([]AblationRow, error) {
	var rows []AblationRow
	for _, p := range partitions {
		g, err := freshGraph(scale)
		if err != nil {
			return nil, err
		}
		secs, _, err := timedRun(g, iters, core.Options{Partitions: p})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Study: "B: vertex batching", Variant: fmt.Sprintf("%d partitions", p), Seconds: secs,
		})
	}
	return rows, nil
}

// AblationWorkers sweeps worker parallelism (§2.3 "Parallel Workers").
// It uses collaborative filtering rather than PageRank: CF's per-vertex
// compute (latent-vector SGD) is heavy enough that worker scaling is
// visible, whereas PageRank's compute is dwarfed by input assembly at
// laptop scale (see EXPERIMENTS.md).
func AblationWorkers(scale float64, iters int, workers []int) ([]AblationRow, error) {
	var rows []AblationRow
	ds := dataset.MakeUndirected(dataset.TwitterScale(scale))
	for _, w := range workers {
		g, err := loadVertexica(ds)
		if err != nil {
			return nil, err
		}
		prog := algorithms.NewCollabFilter(16, iters)
		start := time.Now()
		if _, _, err := algorithms.RunCollabFilter(context.Background(), g, prog,
			core.Options{Workers: w}); err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Study:   "W: parallel workers (collaborative filtering, compute-bound)",
			Variant: fmt.Sprintf("%d workers", w), Seconds: time.Since(start).Seconds(),
		})
	}
	return rows, nil
}

// AblationUpdateVsReplace compares forced-update against forced-replace
// write-back on both a dense-update workload (PageRank: every vertex
// changes every superstep) and a sparse one (SSSP: few vertices change
// per superstep) — §2.3 "Update Vs Replace".
func AblationUpdateVsReplace(scale float64, iters int) ([]AblationRow, error) {
	var rows []AblationRow
	type variant struct {
		name      string
		threshold float64
	}
	variants := []variant{
		{"always update", 2},   // threshold above 100%: update in place
		{"always replace", -1}, // negative: rebuild + swap
		{"paper policy (10%)", 0.10},
	}
	for _, v := range variants {
		g, err := freshGraph(scale)
		if err != nil {
			return nil, err
		}
		secs, _, err := timedRun(g, iters, core.Options{UpdateThreshold: v.threshold})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Study: "R: update-vs-replace (PageRank, dense)", Variant: v.name, Seconds: secs,
		})
	}
	for _, v := range variants {
		g, err := freshGraph(scale)
		if err != nil {
			return nil, err
		}
		source := int64(0)
		start := time.Now()
		_, _, err = algorithms.RunSSSP(context.Background(), g, source, true,
			core.Options{UpdateThreshold: v.threshold})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Study: "R: update-vs-replace (SSSP, sparse)", Variant: v.name,
			Seconds: time.Since(start).Seconds(),
		})
	}
	return rows, nil
}

// AblationInputCache compares the superstep input cache (edge side
// partitioned+sorted once per run, per-superstep sorted-run merge,
// active-partition skipping) against full per-superstep union re-sort
// (DisableInputCache) on PageRank, SSSP and ConnectedComponents. Extra
// reports per-superstep time, cache hits and skipped partitions, so the
// per-superstep speedup is directly visible.
func AblationInputCache(scale float64, iters int) ([]AblationRow, error) {
	type algo struct {
		name string
		run  func(g *core.Graph, opts core.Options) (*core.RunStats, error)
	}
	algos := []algo{
		{"PageRank", func(g *core.Graph, opts core.Options) (*core.RunStats, error) {
			_, stats, err := algorithms.RunPageRank(context.Background(), g, iters, opts)
			return stats, err
		}},
		{"SSSP", func(g *core.Graph, opts core.Options) (*core.RunStats, error) {
			_, stats, err := algorithms.RunSSSP(context.Background(), g, 0, true, opts)
			return stats, err
		}},
		{"ConnectedComponents", func(g *core.Graph, opts core.Options) (*core.RunStats, error) {
			_, stats, err := algorithms.RunConnectedComponents(context.Background(), g, opts)
			return stats, err
		}},
	}
	var rows []AblationRow
	for _, a := range algos {
		for _, disable := range []bool{true, false} {
			g, err := freshGraph(scale)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			stats, err := a.run(g, core.Options{DisableInputCache: disable})
			if err != nil {
				return nil, err
			}
			secs := time.Since(start).Seconds()
			variant := "cached input"
			extra := fmt.Sprintf("%.1fms/superstep", 1e3*secs/float64(stats.Supersteps))
			if disable {
				variant = "full re-sort"
			} else {
				extra += fmt.Sprintf(", %d cache hits, %d skipped partitions",
					stats.CacheHits, stats.SkippedParts)
			}
			rows = append(rows, AblationRow{
				Study:   fmt.Sprintf("I: superstep input cache (%s)", a.name),
				Variant: variant, Seconds: secs, Extra: extra,
			})
		}
	}
	return rows, nil
}

// AblationSQLParallel sweeps the relational executor's per-statement
// worker budget over the hand-tuned SQL PageRank and SSSP drivers (the
// morsel-parallel tentpole: parallel scans/filters/projections,
// parallel hash-join probes, partitioned aggregation). The first entry
// of `workers` is the baseline (use 1); every other variant's results
// are checked byte-for-byte against it — the executor guarantees
// identical results at every parallelism level — and Extra reports the
// speedup.
func AblationSQLParallel(scale float64, iters int, workers []int) ([]AblationRow, error) {
	ds := dataset.TwitterScale(scale)
	type algo struct {
		name string
		run  func(g *core.Graph) (map[int64]float64, error)
	}
	algos := []algo{
		{"PageRank", func(g *core.Graph) (map[int64]float64, error) {
			return sqlgraph.PageRank(context.Background(), g, iters, 0.85)
		}},
		{"SSSP", func(g *core.Graph) (map[int64]float64, error) {
			return sqlgraph.ShortestPaths(context.Background(), g, 0, true)
		}},
	}
	var rows []AblationRow
	for _, a := range algos {
		var baseline map[int64]float64
		var baseSecs float64
		for i, w := range workers {
			g, err := loadVertexica(ds)
			if err != nil {
				return nil, err
			}
			g.DB.SetParallelism(w)
			start := time.Now()
			result, err := a.run(g)
			if err != nil {
				return nil, err
			}
			secs := time.Since(start).Seconds()
			extra := fmt.Sprintf("%d edges", len(ds.Edges))
			if i == 0 {
				baseline, baseSecs = result, secs
			} else {
				extra = fmt.Sprintf("%.2fx vs %d worker(s), %s", baseSecs/secs, workers[0], identicalFloatMaps(result, baseline))
			}
			rows = append(rows, AblationRow{
				Study:   fmt.Sprintf("P: morsel-parallel SQL (%s)", a.name),
				Variant: fmt.Sprintf("%d workers", w), Seconds: secs, Extra: extra,
			})
		}
	}
	return rows, nil
}

// identicalFloatMaps renders the byte-identity check for ablation rows.
func identicalFloatMaps(a, b map[int64]float64) string {
	if len(a) != len(b) {
		return fmt.Sprintf("RESULTS DIFFER (cardinality %d vs %d)", len(a), len(b))
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || av != bv {
			return fmt.Sprintf("RESULTS DIFFER at id %d", k)
		}
	}
	return "results byte-identical"
}

// AblationCombiner compares runs with the message combiner enabled and
// disabled (Pregel combiners; an extension beyond the paper's four
// optimizations).
func AblationCombiner(scale float64, iters int) ([]AblationRow, error) {
	var rows []AblationRow
	for _, disabled := range []bool{false, true} {
		g, err := freshGraph(scale)
		if err != nil {
			return nil, err
		}
		secs, stats, err := timedRun(g, iters, core.Options{DisableCombiner: disabled})
		if err != nil {
			return nil, err
		}
		variant := "combiner on"
		if disabled {
			variant = "combiner off"
		}
		rows = append(rows, AblationRow{
			Study: "C: message combiner", Variant: variant, Seconds: secs,
			Extra: fmt.Sprintf("%d messages total", stats.TotalMessages),
		})
	}
	return rows, nil
}

// PrintAblation renders ablation rows.
func PrintAblation(w io.Writer, rows []AblationRow) {
	study := ""
	for _, r := range rows {
		if r.Study != study {
			study = r.Study
			fmt.Fprintf(w, "\n%s\n", study)
		}
		fmt.Fprintf(w, "  %-24s %10.3fs  %s\n", r.Variant, r.Seconds, r.Extra)
	}
}
