// Package prepare holds study Q: prepared-execution throughput — the
// workload the plan cache and real Param binding exist for. A client
// re-issues the same two parameterized statements (a single-row point
// lookup on the shard key, and a 1-hop neighbor join) with varying
// arguments. Under the prepared path (Session.RunStreamBound) the
// statement text is parsed and planned once; each execution only binds
// arguments into the cached plan and, for the point lookup, routes the
// scan to the one shard the bound key hashes to. Under the ablation
// baseline — the legacy textual-substitution protocol — every execution
// renders the arguments into the SQL text and re-parses and re-plans
// the result from scratch. The study measures queries/s per (mode,
// query) cell and records the trajectory in a JSON file
// (BENCH_prepare.json) so the win is tracked across revisions.
package prepare

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/bench"
	"repro/internal/engine"
	execpkg "repro/internal/exec"
	"repro/internal/sql"
	"repro/internal/storage"
)

// tableShards partitions the edge table so the point lookup exercises
// bind-time single-shard routing, not just cached planning.
const tableShards = 8

// Graph size: numSrc source vertices with outDegree edges each. Small
// enough that per-query work is dominated by the fixed parse/plan/bind
// cost the study isolates.
const (
	numSrc    = 64
	outDegree = 8
)

// query is one of the two measured statements.
type query struct {
	Name string
	Text string
}

func queries() []query {
	return []query{
		{"point lookup", "SELECT dst FROM qedges WHERE src = $1"},
		{"1-hop neighbors", "SELECT n.label FROM qedges e JOIN qnodes n ON n.id = e.dst WHERE e.src = $1"},
	}
}

// Variant is one measured (mode, query) cell.
type Variant struct {
	Name  string `json:"name"`
	Query string `json:"query"`
	// Queries counts completed executions (drained result sets).
	Queries int64 `json:"queries"`
	// Rows counts result rows across all executions — a sanity check
	// that both modes computed the same workload.
	Rows int64 `json:"rows"`
	// DurationMicros is the measured wall-clock window.
	DurationMicros int64 `json:"duration_us"`
}

// QueriesPerSec is the variant's headline rate.
func (v Variant) QueriesPerSec() float64 {
	return float64(v.Queries) / (float64(v.DurationMicros) / 1e6)
}

// Report is the JSON document written to the trajectory file.
type Report struct {
	Study    string    `json:"study"`
	Shards   int       `json:"shards"`
	Variants []Variant `json:"variants"`
	// SpeedupPoint is prepared queries/s over re-parse queries/s on the
	// point lookup — the headline number.
	SpeedupPoint float64 `json:"speedup_point_lookup"`
	// SpeedupHop is the same ratio for the 1-hop neighbor join.
	SpeedupHop float64 `json:"speedup_one_hop"`
	// CounterOverheadPct is the throughput cost of the always-on
	// operator counters on the prepared point lookup: (off − on) / off
	// as a percentage. The study asserts it stays under
	// maxCounterOverheadPct.
	CounterOverheadPct float64 `json:"counter_overhead_pct"`
	// TraceOverheadPct is the cost of the disabled tracing fabric on
	// the same lookup: sampling=0 blocks (hooks run, collector nil)
	// versus blocks with the trace entry point skipped entirely — what
	// an engine built without tracing would do. The study asserts it
	// stays under maxTraceOverheadPct.
	TraceOverheadPct float64 `json:"trace_overhead_pct"`
}

// seed builds the in-memory graph both modes query. The study is
// read-only, so no WAL directory is needed.
func seed() (*engine.DB, error) {
	db := engine.New()
	stmts := []string{
		fmt.Sprintf("CREATE TABLE qedges (src INTEGER NOT NULL, dst INTEGER NOT NULL) PARTITION BY HASH(src) SHARDS %d", tableShards),
		"CREATE TABLE qnodes (id INTEGER NOT NULL, label TEXT)",
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			return nil, err
		}
	}
	for src := 0; src < numSrc; src++ {
		q := "INSERT INTO qedges VALUES "
		for d := 0; d < outDegree; d++ {
			if d > 0 {
				q += ", "
			}
			q += fmt.Sprintf("(%d, %d)", src, (src*outDegree+d)%numSrc)
		}
		if _, err := db.Exec(q); err != nil {
			return nil, err
		}
	}
	for id := 0; id < numSrc; id += 8 {
		q := "INSERT INTO qnodes VALUES "
		for j := 0; j < 8; j++ {
			if j > 0 {
				q += ", "
			}
			q += fmt.Sprintf("(%d, 'v%d')", id+j, id+j)
		}
		if _, err := db.Exec(q); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// exec runs one iteration of q in the given mode and returns the
// result-row count.
func exec(ctx context.Context, sess *engine.Session, q query, prepared bool, key int64) (int64, error) {
	args := []storage.Value{storage.Int64(key)}
	var rows *engine.Rows
	var err error
	if prepared {
		rows, _, err = sess.RunStreamBound(ctx, q.Text, args)
	} else {
		// The legacy protocol: render the argument into the text and
		// hand the engine a brand-new statement to parse and plan.
		var bound string
		bound, err = sql.SubstituteParams(q.Text, args)
		if err == nil {
			rows, _, err = sess.RunStream(ctx, bound)
		}
	}
	if err != nil {
		return 0, err
	}
	batch, err := rows.Materialize()
	if err != nil {
		rows.Close()
		return 0, err
	}
	n := int64(batch.Len())
	return n, rows.Close()
}

// run measures one (mode, query) cell over the window.
func run(db *engine.DB, name string, q query, prepared bool, window time.Duration) (Variant, error) {
	sess := db.NewSession()
	defer sess.Close()
	ctx := context.Background()

	// Warm-up: populate the plan cache (prepared mode) and fault in the
	// table so the first measured iteration is steady-state.
	if _, err := exec(ctx, sess, q, prepared, 0); err != nil {
		return Variant{}, err
	}

	start := time.Now()
	var queries, rows int64
	for i := int64(0); time.Since(start) < window; i++ {
		n, err := exec(ctx, sess, q, prepared, i%numSrc)
		if err != nil {
			return Variant{}, err
		}
		queries++
		rows += n
	}
	return Variant{
		Name:           name,
		Query:          q.Name,
		Queries:        queries,
		Rows:           rows,
		DurationMicros: time.Since(start).Microseconds(),
	}, nil
}

// maxCounterOverheadPct is the acceptance bound on operator-counter
// cost: the instrumentation exists to be always-on, so it must stay in
// the noise of the cheapest workload we have (the prepared point
// lookup).
const maxCounterOverheadPct = 2.0

// counterOverhead measures the throughput cost of operator counters on
// the prepared point lookup. A sub-10µs query drifts ±8% window to
// window (GC, frequency scaling, a 1-core scheduler), so coarse
// off-window/on-window comparison is hopeless; instead the two modes
// alternate in small blocks inside one loop — drift lands on both
// sides equally — and each mode's cost is the trimmed mean (middle
// 60%) of its block times, which ignores the GC-pause outliers.
func counterOverhead(db *engine.DB, window time.Duration) (float64, error) {
	defer execpkg.SetStatsEnabled(true)
	// Isolate the counters: with the lifecycle tracer sampling, the
	// stats-on blocks would also pay for per-operator span recording
	// (traces only attach op spans when counters run) and the
	// measurement would charge tracing's cost to the counters.
	tr := db.Tracer()
	prev := tr.Sampling()
	tr.SetSampling(0)
	defer tr.SetSampling(prev)
	q := queries()[0] // point lookup
	sess := db.NewSession()
	defer sess.Close()
	ctx := context.Background()

	total := 4 * window
	if total < 600*time.Millisecond {
		total = 600 * time.Millisecond
	}
	const block = 128
	times := map[bool][]float64{}
	// Warm-up: plan-cache fill and first-touch faults stay out of the
	// measured blocks.
	if _, err := exec(ctx, sess, q, true, 0); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := int64(0); time.Since(start) < total; i++ {
		for _, on := range []bool{false, true} {
			execpkg.SetStatsEnabled(on)
			t0 := time.Now()
			for j := int64(0); j < block; j++ {
				if _, err := exec(ctx, sess, q, true, (i*block+j)%numSrc); err != nil {
					return 0, err
				}
			}
			times[on] = append(times[on], float64(time.Since(t0).Nanoseconds()))
		}
	}
	off, on := trimmedMean(times[false]), trimmedMean(times[true])
	if off <= 0 {
		return 0, fmt.Errorf("prepare: counter-overhead baseline measured zero time")
	}
	return (on - off) / off * 100, nil
}

// maxTraceOverheadPct bounds what disabled statement tracing costs on
// the prepared point lookup. Full tracing (sampling every statement)
// allocates a span buffer and stamps a dozen clock reads per statement
// — real money on a microsecond-scale lookup, and exactly why the
// sampling knob exists. The bound certifies the other side of that
// bargain: with sampling off, the permanently-installed hooks and
// nil-collector checks must stay in the noise.
const maxTraceOverheadPct = 2.0

// traceOverhead measures the disabled-tracing fabric with the same
// alternating-block + trimmed-mean design as counterOverhead: blocks
// with tracing disabled by the sampling knob (hooks run, collector
// nil) interleave with blocks where engine.SetTraceHooks skips the
// trace entry point entirely — the closest runtime stand-in for an
// engine built without tracing.
func traceOverhead(db *engine.DB, window time.Duration) (float64, error) {
	tr := db.Tracer()
	prev := tr.Sampling()
	tr.SetSampling(0)
	defer tr.SetSampling(prev)
	defer engine.SetTraceHooks(true)
	q := queries()[0] // point lookup
	sess := db.NewSession()
	defer sess.Close()
	ctx := context.Background()

	total := 4 * window
	if total < 600*time.Millisecond {
		total = 600 * time.Millisecond
	}
	const block = 128
	times := map[bool][]float64{}
	if _, err := exec(ctx, sess, q, true, 0); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := int64(0); time.Since(start) < total; i++ {
		// on=false: hooks skipped (no-tracing baseline);
		// on=true: hooks installed, sampling 0 (shipped disabled mode).
		for _, on := range []bool{false, true} {
			engine.SetTraceHooks(on)
			t0 := time.Now()
			for j := int64(0); j < block; j++ {
				if _, err := exec(ctx, sess, q, true, (i*block+j)%numSrc); err != nil {
					return 0, err
				}
			}
			times[on] = append(times[on], float64(time.Since(t0).Nanoseconds()))
		}
	}
	off, on := trimmedMean(times[false]), trimmedMean(times[true])
	if off <= 0 {
		return 0, fmt.Errorf("prepare: trace-overhead baseline measured zero time")
	}
	return (on - off) / off * 100, nil
}

func trimmedMean(xs []float64) float64 {
	sort.Float64s(xs)
	lo, hi := len(xs)/5, len(xs)*4/5
	if hi <= lo {
		lo, hi = 0, len(xs)
	}
	sum := 0.0
	for _, x := range xs[lo:hi] {
		sum += x
	}
	return sum / float64(hi-lo)
}

// Study measures queries/s for the point lookup and the 1-hop join
// under the prepared-cached path and under re-parse-per-exec
// substitution, writes the report to outPath (skipped when empty), and
// returns printable rows. window is the measured interval per cell
// (0 means 300ms — CI smoke passes a smaller one).
func Study(window time.Duration, outPath string) ([]bench.AblationRow, error) {
	if window <= 0 {
		window = 300 * time.Millisecond
	}
	db, err := seed()
	if err != nil {
		return nil, err
	}
	defer db.Close()

	report := Report{Study: "prepare", Shards: tableShards}
	rates := map[string]float64{} // "mode/query" -> q/s
	for _, mode := range []struct {
		name     string
		prepared bool
	}{{"re-parse per exec", false}, {"prepared (cached)", true}} {
		for _, q := range queries() {
			v, err := run(db, mode.name, q, mode.prepared, window)
			if err != nil {
				return nil, err
			}
			report.Variants = append(report.Variants, v)
			rates[fmt.Sprintf("%t/%s", mode.prepared, q.Name)] = v.QueriesPerSec()
		}
	}
	if base := rates["false/point lookup"]; base > 0 {
		report.SpeedupPoint = rates["true/point lookup"] / base
	}
	if base := rates["false/1-hop neighbors"]; base > 0 {
		report.SpeedupHop = rates["true/1-hop neighbors"] / base
	}

	// Counter-overhead assertion, with one retry: a single noisy window
	// on a loaded machine must not fail the study, a reproducible
	// regression must.
	pct, err := counterOverhead(db, window)
	if err != nil {
		return nil, err
	}
	if pct > maxCounterOverheadPct {
		if pct, err = counterOverhead(db, window); err != nil {
			return nil, err
		}
	}
	report.CounterOverheadPct = pct
	if pct > maxCounterOverheadPct && !raceEnabled {
		return nil, fmt.Errorf("prepare: operator counters cost %.2f%% on the point lookup (budget %.1f%%)",
			pct, maxCounterOverheadPct)
	}

	// Trace-overhead assertion, same retry policy.
	tpct, err := traceOverhead(db, window)
	if err != nil {
		return nil, err
	}
	if tpct > maxTraceOverheadPct {
		if tpct, err = traceOverhead(db, window); err != nil {
			return nil, err
		}
	}
	report.TraceOverheadPct = tpct
	if tpct > maxTraceOverheadPct && !raceEnabled {
		return nil, fmt.Errorf("prepare: statement tracing cost %.2f%% on the point lookup (budget %.1f%%)",
			tpct, maxTraceOverheadPct)
	}

	if outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
	}

	out := make([]bench.AblationRow, 0, len(report.Variants)+1)
	for _, v := range report.Variants {
		out = append(out, bench.AblationRow{
			Study:   "Q: prepared execution (queries/s)",
			Variant: fmt.Sprintf("%s, %s", v.Name, v.Query),
			Seconds: float64(v.DurationMicros) / 1e6,
			Extra:   fmt.Sprintf("%.0f queries/s, %d rows", v.QueriesPerSec(), v.Rows),
		})
	}
	out = append(out, bench.AblationRow{
		Study:   "Q: prepared execution (queries/s)",
		Variant: "operator-counter overhead, point lookup",
		Seconds: window.Seconds(),
		Extra:   fmt.Sprintf("%.2f%% (budget %.1f%%)", pct, maxCounterOverheadPct),
	})
	out = append(out, bench.AblationRow{
		Study:   "Q: prepared execution (queries/s)",
		Variant: "statement-tracing overhead, point lookup",
		Seconds: window.Seconds(),
		Extra:   fmt.Sprintf("%.2f%% (budget %.1f%%)", tpct, maxTraceOverheadPct),
	})
	return out, nil
}
