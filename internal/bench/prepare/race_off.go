//go:build !race

package prepare

// raceEnabled is false in plain builds; see race_on.go.
const raceEnabled = false
