package prepare

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestStudySmoke runs a tiny window of the full (mode, query) grid and
// checks the trajectory file shape — the same invocation CI smoke uses.
func TestStudySmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_prepare.json")
	rows, err := Study(60*time.Millisecond, out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d printable rows, want 6 (2 modes x 2 queries + counter and trace overhead)", len(rows))
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Study != "prepare" || len(rep.Variants) != 4 {
		t.Fatalf("malformed report: %+v", rep)
	}
	for _, v := range rep.Variants {
		if v.Queries == 0 {
			t.Errorf("%s / %s: no queries completed", v.Name, v.Query)
		}
		if v.Rows == 0 {
			t.Errorf("%s / %s: result sets were empty", v.Name, v.Query)
		}
	}
	if rep.SpeedupPoint <= 0 || rep.SpeedupHop <= 0 {
		t.Errorf("speedups not computed: %+v", rep)
	}

	// Both modes must compute identical workloads: same per-exec row
	// yield for the same query.
	perExec := map[string]float64{}
	for _, v := range rep.Variants {
		perExec[v.Name+"/"+v.Query] = float64(v.Rows) / float64(v.Queries)
	}
	for _, q := range queries() {
		a := perExec["prepared (cached)/"+q.Name]
		b := perExec["re-parse per exec/"+q.Name]
		if a != b {
			t.Errorf("%s: rows/exec differ between modes: prepared %.2f vs re-parse %.2f", q.Name, a, b)
		}
	}
}
