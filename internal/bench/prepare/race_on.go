//go:build race

package prepare

// raceEnabled reports that this binary was built with the race
// detector, whose instrumentation inflates the very overheads the
// study budgets (its atomics cost an order of magnitude more). The
// study still measures and reports the percentages under race builds,
// but does not enforce the budgets; real enforcement happens in the
// plain-build test run and in vxbench -prepare.
const raceEnabled = true
