// Package stream holds the streaming-execution study: it measures
// what the iterator-based result path buys over full materialization —
// first-row latency and allocation volume for a big scan — and writes
// the numbers to a JSON trajectory file (BENCH_stream.json) so the
// gain is tracked across revisions. Serial (materialized) execution
// drains the whole result before the first row is visible; streamed
// execution hands the first batch over as soon as the executor
// produces it.
package stream

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/storage"
)

// Variant is one measured execution mode.
type Variant struct {
	Name string `json:"name"`
	// FirstRowMicros is the latency until the first result row is
	// available to the consumer.
	FirstRowMicros int64 `json:"first_row_us"`
	// TotalMicros is the latency until the result is fully consumed.
	TotalMicros int64 `json:"total_us"`
	// AllocBytes is the total allocation volume of the run
	// (runtime.MemStats.TotalAlloc delta).
	AllocBytes uint64 `json:"alloc_bytes"`
	// HeapPeakBytes is the highest HeapAlloc sample observed during
	// the run.
	HeapPeakBytes uint64 `json:"heap_peak_bytes"`
	Rows          int    `json:"rows"`
}

// Report is the JSON document written to the trajectory file.
type Report struct {
	Study    string    `json:"study"`
	Scale    float64   `json:"scale"`
	Rows     int       `json:"table_rows"`
	Variants []Variant `json:"variants"`
}

// buildDB seeds a table with n rows of (id INTEGER, w DOUBLE).
func buildDB(n int) (*engine.DB, error) {
	db := engine.New()
	if _, err := db.Exec("CREATE TABLE stream_t (id INTEGER NOT NULL, w DOUBLE)"); err != nil {
		return nil, err
	}
	tb, err := db.Catalog().Get("stream_t")
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if err := tb.AppendRow(storage.Int64(int64(i)), storage.Float64(float64(i)*0.5)); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// measure runs fn under allocation accounting. fn reports first-row
// and completion timestamps relative to its own start.
func measure(name string, rows int, fn func() (first, total time.Duration, n int, err error)) (Variant, error) {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	stop := make(chan struct{})
	peakCh := make(chan uint64)
	go func() {
		var peak uint64
		var ms runtime.MemStats
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				// Final sample: short runs may finish between ticks.
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
				peakCh <- peak
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()

	first, total, n, err := fn()
	close(stop)
	peak := <-peakCh
	if err != nil {
		return Variant{}, err
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	return Variant{
		Name:           name,
		FirstRowMicros: first.Microseconds(),
		TotalMicros:    total.Microseconds(),
		AllocBytes:     after.TotalAlloc - before.TotalAlloc,
		HeapPeakBytes:  peak,
		Rows:           n,
	}, nil
}

// Study measures materialized vs streamed execution of a full-table
// scan-filter at the given scale and writes the report to outPath
// (skipped when outPath is empty). It returns printable rows.
func Study(scale float64, outPath string) ([]bench.AblationRow, error) {
	rows := int(2_000_000 * scale)
	if rows < 20_000 {
		rows = 20_000
	}
	db, err := buildDB(rows)
	if err != nil {
		return nil, err
	}
	const query = "SELECT id, w FROM stream_t WHERE w >= 0.0"
	ctx := context.Background()

	materialized, err := measure("materialized", rows, func() (time.Duration, time.Duration, int, error) {
		start := time.Now()
		res, err := db.QueryContext(ctx, query)
		if err != nil {
			return 0, 0, 0, err
		}
		// The first row is reachable only after the full drain.
		n := res.Len()
		first := time.Since(start)
		return first, time.Since(start), n, nil
	})
	if err != nil {
		return nil, err
	}

	streamed, err := measure("streamed", rows, func() (time.Duration, time.Duration, int, error) {
		start := time.Now()
		res, err := db.QueryStream(ctx, query)
		if err != nil {
			return 0, 0, 0, err
		}
		defer res.Close()
		var first time.Duration
		n := 0
		for {
			b, err := res.Next()
			if err != nil {
				return 0, 0, 0, err
			}
			if b == nil {
				break
			}
			if n == 0 {
				first = time.Since(start)
			}
			n += b.Len()
		}
		return first, time.Since(start), n, nil
	})
	if err != nil {
		return nil, err
	}
	if streamed.Rows != materialized.Rows {
		return nil, fmt.Errorf("stream: row mismatch: streamed %d vs materialized %d", streamed.Rows, materialized.Rows)
	}

	report := Report{Study: "stream", Scale: scale, Rows: rows, Variants: []Variant{materialized, streamed}}
	if outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
	}

	out := make([]bench.AblationRow, 0, len(report.Variants))
	for _, v := range report.Variants {
		out = append(out, bench.AblationRow{
			Study:   "T: streaming execution (first-row latency + alloc)",
			Variant: v.Name,
			Seconds: float64(v.TotalMicros) / 1e6,
			Extra: fmt.Sprintf("first row %.3fms, %d rows, %.1f MB alloc, %.1f MB heap peak",
				float64(v.FirstRowMicros)/1e3, v.Rows,
				float64(v.AllocBytes)/(1<<20), float64(v.HeapPeakBytes)/(1<<20)),
		})
	}
	return out, nil
}
