// Package bench is the experiment harness: it regenerates every
// table/figure of the paper's evaluation (Figure 2a PageRank, Figure 2b
// Shortest Paths, across four systems and three datasets) plus the
// ablation studies for the §2.3 optimizations. cmd/vxbench and the
// root-level Go benchmarks both drive it.
package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/giraph"
	"repro/internal/graphdb"
	"repro/internal/sqlgraph"
)

// Systems compared in Figure 2.
const (
	SysGraphDB      = "GraphDB"
	SysGiraph       = "Giraph"
	SysVertexica    = "Vertexica"
	SysVertexicaSQL = "Vertexica(SQL)"
)

// Row is one measurement of the Figure 2 grid.
type Row struct {
	Figure  string
	Dataset string
	System  string
	Seconds float64
	Note    string // "DNF" etc.
}

// Fig2Config tunes a Figure 2 reproduction run.
type Fig2Config struct {
	// Scale shrinks the paper's dataset sizes (1.0 = full size).
	Scale float64
	// PageRankIters is the number of PageRank iterations (paper: 10).
	PageRankIters int
	// GraphDBEdgeLimit skips the graph-database baseline on datasets
	// with more edges (the paper's Neo4j only completed the smallest
	// graph). 0 means no limit.
	GraphDBEdgeLimit int
	// GiraphOverhead is the modeled per-superstep cluster coordination
	// latency. 0 means the default (80 ms); negative disables.
	GiraphOverhead time.Duration
}

// Defaults fills zero fields.
func (c Fig2Config) withDefaults() Fig2Config {
	if c.Scale == 0 {
		c.Scale = 0.01
	}
	if c.PageRankIters == 0 {
		c.PageRankIters = 10
	}
	return c
}

// Fig2Datasets generates the three paper-shaped datasets at the scale.
func Fig2Datasets(scale float64) []*dataset.Graph {
	return []*dataset.Graph{
		dataset.TwitterScale(scale),
		dataset.GPlusScale(scale / 2), // GPlus is dense; halve nodes to keep runs bounded
		dataset.LiveJournalScale(scale / 10),
	}
}

// loadVertexica loads a dataset into a fresh engine.
func loadVertexica(ds *dataset.Graph) (*core.Graph, error) {
	db := engine.New()
	g, err := core.CreateGraph(db, "bench")
	if err != nil {
		return nil, err
	}
	edges := make([]core.Edge, len(ds.Edges))
	for i, e := range ds.Edges {
		edges[i] = core.Edge{Src: e.Src, Dst: e.Dst, Weight: e.Weight, Type: e.Type, Created: e.Created}
	}
	vals := make(map[int64]string, ds.Nodes)
	for v := int64(0); v < ds.Nodes; v++ {
		vals[v] = ""
	}
	if err := g.BulkLoad(vals, edges); err != nil {
		return nil, err
	}
	return g, nil
}

// loadGiraph loads a dataset into the BSP baseline.
func loadGiraph(ds *dataset.Graph, overhead time.Duration) *giraph.Engine {
	e := giraph.New(giraph.Config{SuperstepOverhead: overhead})
	for v := int64(0); v < ds.Nodes; v++ {
		e.AddVertex(v)
	}
	for _, ed := range ds.Edges {
		e.AddEdge(ed.Src, ed.Dst, ed.Weight)
	}
	return e
}

// loadGraphDB loads a dataset into the transactional baseline.
func loadGraphDB(ds *dataset.Graph) (*graphdb.Store, error) {
	s := graphdb.New()
	rows := make([][3]float64, len(ds.Edges))
	for i, e := range ds.Edges {
		rows[i] = [3]float64{float64(e.Src), float64(e.Dst), e.Weight}
	}
	if err := s.Load(rows); err != nil {
		return nil, err
	}
	return s, nil
}

// timeIt measures fn.
func timeIt(fn func() error) (float64, error) {
	start := time.Now()
	err := fn()
	return time.Since(start).Seconds(), err
}

// RunFig2 reproduces one panel of Figure 2 ("pagerank" for 2a, "sssp"
// for 2b) and returns the measurement rows.
func RunFig2(ctx context.Context, panel string, cfg Fig2Config) ([]Row, error) {
	cfg = cfg.withDefaults()
	fig := map[string]string{"pagerank": "2a", "sssp": "2b"}[panel]
	if fig == "" {
		return nil, fmt.Errorf("bench: unknown panel %q (want pagerank or sssp)", panel)
	}
	var rows []Row
	for _, ds := range Fig2Datasets(cfg.Scale) {
		source := ds.MaxOutDegreeNode()

		// Graph database baseline (skipped above the edge limit, like
		// Neo4j in the paper).
		if cfg.GraphDBEdgeLimit > 0 && len(ds.Edges) > cfg.GraphDBEdgeLimit {
			rows = append(rows, Row{Figure: fig, Dataset: ds.Name, System: SysGraphDB, Note: "DNF (over edge limit, as Neo4j in the paper)"})
		} else {
			store, err := loadGraphDB(ds)
			if err != nil {
				return nil, err
			}
			secs, err := timeIt(func() error {
				if panel == "pagerank" {
					_, err := graphdb.PageRank(store, cfg.PageRankIters, 0.85)
					return err
				}
				_, err := graphdb.ShortestPaths(store, source, false)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("bench: graphdb on %s: %w", ds.Name, err)
			}
			rows = append(rows, Row{Figure: fig, Dataset: ds.Name, System: SysGraphDB, Seconds: secs})
		}

		// Giraph baseline.
		ge := loadGiraph(ds, cfg.GiraphOverhead)
		secs, err := timeIt(func() error {
			if panel == "pagerank" {
				_, _, err := giraph.PageRank(ge, cfg.PageRankIters)
				return err
			}
			_, _, err := giraph.SSSP(ge, source, false)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("bench: giraph on %s: %w", ds.Name, err)
		}
		rows = append(rows, Row{Figure: fig, Dataset: ds.Name, System: SysGiraph, Seconds: secs})

		// Vertexica vertex-centric.
		vg, err := loadVertexica(ds)
		if err != nil {
			return nil, err
		}
		secs, err = timeIt(func() error {
			if panel == "pagerank" {
				_, _, err := algorithms.RunPageRank(ctx, vg, cfg.PageRankIters, core.Options{})
				return err
			}
			_, _, err := algorithms.RunSSSP(ctx, vg, source, false, core.Options{})
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("bench: vertexica on %s: %w", ds.Name, err)
		}
		rows = append(rows, Row{Figure: fig, Dataset: ds.Name, System: SysVertexica, Seconds: secs})

		// Vertexica SQL.
		secs, err = timeIt(func() error {
			if panel == "pagerank" {
				_, err := sqlgraph.PageRank(ctx, vg, cfg.PageRankIters, 0.85)
				return err
			}
			_, err := sqlgraph.ShortestPaths(ctx, vg, source, false)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("bench: vertexica-sql on %s: %w", ds.Name, err)
		}
		rows = append(rows, Row{Figure: fig, Dataset: ds.Name, System: SysVertexicaSQL, Seconds: secs})
	}
	return rows, nil
}

// PrintRows renders measurement rows as the paper-style table.
func PrintRows(w io.Writer, title string, rows []Row) {
	fmt.Fprintf(w, "\n%s\n", title)
	fmt.Fprintf(w, "%-22s %-16s %12s  %s\n", "Dataset", "System", "Time (s)", "Note")
	for _, r := range rows {
		if r.Note != "" && r.Seconds == 0 {
			fmt.Fprintf(w, "%-22s %-16s %12s  %s\n", r.Dataset, r.System, "—", r.Note)
			continue
		}
		fmt.Fprintf(w, "%-22s %-16s %12.3f  %s\n", r.Dataset, r.System, r.Seconds, r.Note)
	}
}

// CheckFig2Shape validates the qualitative claims of Figure 2 against
// measured rows: the graph database is slowest (where it ran), the SQL
// path is fastest, and Vertexica(vertex) beats Giraph on the smallest
// dataset. It returns a list of violated expectations (empty = shape
// reproduced).
func CheckFig2Shape(rows []Row) []string {
	byKey := make(map[string]Row)
	datasets := []string{}
	seen := map[string]bool{}
	for _, r := range rows {
		byKey[r.Dataset+"/"+r.System] = r
		if !seen[r.Dataset] {
			seen[r.Dataset] = true
			datasets = append(datasets, r.Dataset)
		}
	}
	var violations []string
	for i, ds := range datasets {
		get := func(sys string) (Row, bool) {
			r, ok := byKey[ds+"/"+sys]
			return r, ok && r.Note == ""
		}
		sql, okSQL := get(SysVertexicaSQL)
		vx, okVX := get(SysVertexica)
		gir, okGir := get(SysGiraph)
		gdb, okGDB := get(SysGraphDB)
		if okSQL && okVX && sql.Seconds >= vx.Seconds {
			violations = append(violations, fmt.Sprintf("%s: SQL (%.3fs) not faster than vertex-centric (%.3fs)", ds, sql.Seconds, vx.Seconds))
		}
		if okGDB && okVX && gdb.Seconds <= vx.Seconds {
			violations = append(violations, fmt.Sprintf("%s: graph DB (%.3fs) not slower than Vertexica (%.3fs)", ds, gdb.Seconds, vx.Seconds))
		}
		if i == 0 && okGir && okVX && gir.Seconds <= vx.Seconds {
			violations = append(violations, fmt.Sprintf("%s: Giraph (%.3fs) should lose to Vertexica (%.3fs) on the smallest graph", ds, gir.Seconds, vx.Seconds))
		}
	}
	return violations
}
