// Package serve holds benchmark study "S" (serving throughput). It
// lives apart from internal/bench because it drives the full facade +
// network stack, which the root package's own tests (importing
// internal/bench) must not transitively depend on.
package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	vertexica "repro"
	"repro/internal/bench"
	"repro/internal/client"
	"repro/internal/dataset"
	"repro/internal/server"
)

// Study "S": serving throughput. Boots an in-process network server
// over a Twitter-shaped graph and drives it with N concurrent client
// connections issuing a mixed 1-hop / aggregate workload, reporting
// queries/sec at each client count. The engine runs under a fixed
// global worker budget; the study asserts the budget's high-water mark
// never exceeds its capacity (no oversubscription, however many
// clients pile on).

// serveWorkload returns the mixed query set for one client: 1-hop
// neighborhood joins keyed off a rotating vertex plus aggregate scans
// — the short-request shape a serving tier sees.
func serveWorkload(name string, v int64) []string {
	e := name + "_edge"
	return []string{
		fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE src = %d", e, v),
		fmt.Sprintf("SELECT e1.src, COUNT(*) FROM %s AS e1 JOIN %s AS e2 ON e1.dst = e2.src WHERE e1.src = %d GROUP BY e1.src", e, e, v),
		fmt.Sprintf("SELECT COUNT(*), SUM(weight) FROM %s WHERE weight > 1.0", e),
		fmt.Sprintf("SELECT dst, COUNT(*) FROM %s WHERE src < %d GROUP BY dst ORDER BY dst LIMIT 20", e, v%50+5),
	}
}

// Throughput runs study "S" and returns printable rows.
func Throughput(scale float64, clientCounts []int, opsPerClient int, budget int) ([]bench.AblationRow, error) {
	eng := vertexica.New()
	// Plan with several workers per statement even on small hosts: the
	// point of the study is contention for the shared budget, not
	// single-statement speed.
	eng.SetParallelism(4)
	ds := dataset.TwitterScale(scale)
	if _, err := eng.LoadDataset(ds); err != nil {
		return nil, err
	}
	srv := server.New(eng, server.Config{WorkerBudget: budget, MaxSessions: 64})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		return nil, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveDone
	}()

	b := eng.WorkerBudget()
	var rows []bench.AblationRow
	for _, nc := range clientCounts {
		b.ResetHighWater()
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, nc)
		for c := 0; c < nc; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				conn, err := client.Dial(srv.Addr())
				if err != nil {
					errs[c] = err
					return
				}
				defer conn.Close()
				ctx := context.Background()
				for op := 0; op < opsPerClient; op++ {
					qs := serveWorkload(ds.Name, int64(c*opsPerClient+op))
					q := qs[op%len(qs)]
					if _, err := conn.Query(ctx, q); err != nil {
						errs[c] = fmt.Errorf("client %d op %d: %w", c, op, err)
						return
					}
				}
			}(c)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		secs := time.Since(start).Seconds()
		totalOps := nc * opsPerClient
		hw := b.HighWater()
		extra := fmt.Sprintf("%.0f q/s, budget high-water %d/%d", float64(totalOps)/secs, hw, budget)
		// The semaphore clamps grants to capacity, so hw > budget means
		// gauge corruption (double release / missed acquire) — and
		// hw == 0 means no operator consulted the budget at all, which
		// would make the "no oversubscription" claim vacuous. Both are
		// reported. (Spawn paths that bypass the budget entirely are
		// what the byte-identity differential tests and the -race
		// acceptance test guard; a gauge cannot see them.)
		if hw > budget {
			extra += "  GAUGE CORRUPT"
			rows = append(rows, bench.AblationRow{Study: "S: serving throughput",
				Variant: fmt.Sprintf("%d clients", nc), Seconds: secs, Extra: extra})
			return rows, fmt.Errorf("bench: budget gauge corrupt: high-water %d > capacity %d", hw, budget)
		}
		if hw == 0 {
			extra += "  (budget never consulted — graph too small for parallel plans?)"
		}
		rows = append(rows, bench.AblationRow{Study: "S: serving throughput",
			Variant: fmt.Sprintf("%d clients", nc), Seconds: secs, Extra: extra})
	}
	return rows, nil
}
