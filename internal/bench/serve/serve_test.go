package serve

import "testing"

// TestThroughputSmoke runs study "S" at toy scale: the full
// server+client stack must survive concurrent clients, and the budget
// assertion inside Throughput must hold.
func TestThroughputSmoke(t *testing.T) {
	rows, err := Throughput(0.003, []int{1, 3}, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Seconds <= 0 {
			t.Errorf("%s %s: non-positive duration", r.Study, r.Variant)
		}
	}
}
