// Package mvcc holds study C: mixed-workload throughput under
// concurrent readers and a writer — the workload the MVCC version
// store exists for. N clients stream a full-table SELECT in a loop
// (consuming batch by batch, like wire clients) while one writer
// commits INSERTs as fast as the engine admits them. The study runs
// the same workload twice — latch-based reads (the legacy coupling,
// SetSnapshotReads(false)) versus snapshot-based reads — and records
// read and write throughput plus the writer's worst stall in a JSON
// trajectory file (BENCH_mvcc.json) so the decoupling is tracked
// across revisions.
package mvcc

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/storage"
)

// Variant is one measured concurrency mode.
type Variant struct {
	Name string `json:"name"`
	// ReaderStreams counts complete SELECT drains across all readers.
	ReaderStreams int64 `json:"reader_streams"`
	// ReaderRows counts rows consumed across all readers.
	ReaderRows int64 `json:"reader_rows"`
	// WriterCommits counts committed INSERT statements.
	WriterCommits int64 `json:"writer_commits"`
	// WriterMaxStallMicros is the slowest single INSERT — the writer
	// stall the latch coupling causes and snapshots remove.
	WriterMaxStallMicros int64 `json:"writer_max_stall_us"`
	// DurationMicros is the measured wall-clock window.
	DurationMicros int64 `json:"duration_us"`
	// PeakPinnedReaders is the MVCC manager's reader high-water mark.
	PeakPinnedReaders int `json:"peak_pinned_readers"`
}

// Report is the JSON document written to the trajectory file.
type Report struct {
	Study    string    `json:"study"`
	Scale    float64   `json:"scale"`
	Rows     int       `json:"table_rows"`
	Readers  int       `json:"readers"`
	Variants []Variant `json:"variants"`
}

// seedDB builds a table of n rows of (id INTEGER, w DOUBLE).
func seedDB(n int) (*engine.DB, error) {
	db := engine.New()
	if _, err := db.Exec("CREATE TABLE mvcc_t (id INTEGER NOT NULL, w DOUBLE)"); err != nil {
		return nil, err
	}
	tb, err := db.Catalog().Get("mvcc_t")
	if err != nil {
		return nil, err
	}
	b := storage.NewBatch(tb.Schema())
	for i := 0; i < n; i++ {
		if err := b.AppendRow(storage.Int64(int64(i)), storage.Float64(float64(i)*0.5)); err != nil {
			return nil, err
		}
	}
	if err := tb.AppendBatch(b); err != nil {
		return nil, err
	}
	return db, nil
}

// run executes the mixed workload for the window with snapshot reads
// on or off.
func run(name string, snapshots bool, rows, readers int, window time.Duration) (Variant, error) {
	db, err := seedDB(rows)
	if err != nil {
		return Variant{}, err
	}
	db.SetSnapshotReads(snapshots)

	ctx, cancel := context.WithTimeout(context.Background(), window)
	defer cancel()
	start := time.Now()

	var streams, rowsRead, commits, maxStall atomic.Int64
	var firstErr atomic.Value
	fail := func(err error) {
		if err != nil && ctx.Err() == nil {
			firstErr.CompareAndSwap(nil, err)
			cancel()
		}
	}

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				rs, err := db.QueryStream(ctx, "SELECT id, w FROM mvcc_t WHERE w >= 0.0")
				if err != nil {
					fail(err)
					return
				}
				for {
					b, err := rs.Next()
					if err != nil {
						fail(err)
						rs.Close()
						return
					}
					if b == nil {
						break
					}
					rowsRead.Add(int64(b.Len()))
				}
				streams.Add(1)
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ctx.Err() == nil; i++ {
			stmt := fmt.Sprintf("INSERT INTO mvcc_t VALUES (%d, 1.0)", rows+i)
			t0 := time.Now()
			if _, err := db.ExecContext(ctx, stmt); err != nil {
				fail(err)
				return
			}
			stall := time.Since(t0).Microseconds()
			for {
				cur := maxStall.Load()
				if stall <= cur || maxStall.CompareAndSwap(cur, stall) {
					break
				}
			}
			commits.Add(1)
		}
	}()
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return Variant{}, err
	}

	return Variant{
		Name:                 name,
		ReaderStreams:        streams.Load(),
		ReaderRows:           rowsRead.Load(),
		WriterCommits:        commits.Load(),
		WriterMaxStallMicros: maxStall.Load(),
		DurationMicros:       time.Since(start).Microseconds(),
		PeakPinnedReaders:    db.MVCC().PeakReaders(),
	}, nil
}

// Study runs the mixed workload at the given scale (table rows =
// 2M × scale, min 20k) in both modes and writes the report to outPath
// (skipped when empty). window is the measured interval per variant
// (0 means 500ms — CI smoke uses the default). It returns printable
// rows.
func Study(scale float64, readers int, window time.Duration, outPath string) ([]bench.AblationRow, error) {
	rows := int(2_000_000 * scale)
	if rows < 20_000 {
		rows = 20_000
	}
	if readers <= 0 {
		readers = 4
	}
	if window <= 0 {
		window = 500 * time.Millisecond
	}

	latch, err := run("latch-based reads", false, rows, readers, window)
	if err != nil {
		return nil, err
	}
	snap, err := run("snapshot-based reads", true, rows, readers, window)
	if err != nil {
		return nil, err
	}

	report := Report{Study: "mvcc", Scale: scale, Rows: rows, Readers: readers, Variants: []Variant{latch, snap}}
	if outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
	}

	out := make([]bench.AblationRow, 0, len(report.Variants))
	for _, v := range report.Variants {
		secs := float64(v.DurationMicros) / 1e6
		out = append(out, bench.AblationRow{
			Study:   fmt.Sprintf("C: mixed workload (%d streaming readers + 1 writer)", readers),
			Variant: v.Name,
			Seconds: secs,
			Extra: fmt.Sprintf("%.0f commits/s, %.1f Mrows/s read, writer max stall %.2fms, peak pins %d",
				float64(v.WriterCommits)/secs, float64(v.ReaderRows)/secs/1e6,
				float64(v.WriterMaxStallMicros)/1e3, v.PeakPinnedReaders),
		})
	}
	return out, nil
}
