package mvcc

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestStudySmoke runs a tiny window of both variants and checks the
// trajectory file shape — the same invocation CI smoke uses.
func TestStudySmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_mvcc.json")
	rows, err := Study(0.001, 2, 120*time.Millisecond, out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d printable rows, want 2 variants", len(rows))
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Study != "mvcc" || len(rep.Variants) != 2 {
		t.Fatalf("malformed report: %+v", rep)
	}
	for _, v := range rep.Variants {
		if v.WriterCommits == 0 {
			t.Errorf("%s: writer made no progress", v.Name)
		}
		if v.ReaderRows == 0 {
			t.Errorf("%s: readers made no progress", v.Name)
		}
	}
}
