// Package spill holds study M: out-of-core execution. The three
// blocking operator families — sort, hash join, hash aggregate — run
// over a generated fact table whose working set is several times a
// 64KB per-statement memory grant, once with unlimited memory and once
// under the grant (forcing external merge sort, Grace partitioned
// join, and aggregate spill-and-merge). The study measures rows/s per
// (mode, query) cell, records the spill-run and spill-byte deltas so
// the budgeted cells demonstrably went to disk, samples the Go heap
// during each cell and asserts the budgeted runs stay under a peak
// bound — the point of out-of-core execution is that peak memory does
// not track input size — and writes the trajectory to a JSON file
// (BENCH_spill.json) so the throughput cost of spilling is tracked
// across revisions.
package spill

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/storage"
)

// grantBytes is the per-statement memory budget of the spilled cells —
// the same 64KB the force-spill test matrix uses.
const grantBytes = 64 << 10

// dimRows is the small build side of the join cell.
const dimRows = 500

// query is one measured statement family.
type query struct {
	Name string
	Text string
}

func queries() []query {
	return []query{
		{"sort", "SELECT id, tag FROM mfact ORDER BY tag, id"},
		// The fact table sits on the build side so the join itself must
		// go out of core, not just probe a small in-memory dim table.
		{"join", "SELECT d.label, f.id FROM mdim d JOIN mfact f ON d.grp = f.grp"},
		{"aggregate", "SELECT tag, COUNT(*) AS c, SUM(val) AS s FROM mfact GROUP BY tag"},
	}
}

// Variant is one measured (mode, query) cell.
type Variant struct {
	Name  string `json:"name"`
	Query string `json:"query"`
	// Execs counts completed executions (fully drained result streams).
	Execs int64 `json:"execs"`
	// Rows counts result rows across all executions — a sanity check
	// that both modes computed the same workload.
	Rows int64 `json:"rows"`
	// DurationMicros is the measured wall-clock window.
	DurationMicros int64 `json:"duration_us"`
	// SpillRuns / SpillBytes are the process spill-counter deltas over
	// the cell: zero for in-memory, positive for budgeted cells.
	SpillRuns  int64 `json:"spill_runs"`
	SpillBytes int64 `json:"spill_bytes"`
	// PeakHeapDeltaBytes is the sampled peak of Go heap allocation over
	// the cell, relative to a post-GC baseline.
	PeakHeapDeltaBytes int64 `json:"peak_heap_delta_bytes"`
}

// RowsPerSec is the variant's headline rate.
func (v Variant) RowsPerSec() float64 {
	return float64(v.Rows) / (float64(v.DurationMicros) / 1e6)
}

// Report is the JSON document written to the trajectory file.
type Report struct {
	Study string `json:"study"`
	// GrantBytes is the per-statement budget of the spilled cells.
	GrantBytes int64 `json:"grant_bytes"`
	// InputBytes is the estimated resident footprint of the fact table.
	InputBytes int64 `json:"input_bytes"`
	// PeakBoundBytes is the asserted ceiling on the budgeted cells'
	// PeakHeapDeltaBytes.
	PeakBoundBytes int64     `json:"peak_bound_bytes"`
	Variants       []Variant `json:"variants"`
	// SlowdownSort etc. are budgeted rows/s over unlimited rows/s — the
	// throughput price of going out of core (≤ 1 in the common case).
	SlowdownSort      float64 `json:"throughput_ratio_sort"`
	SlowdownJoin      float64 `json:"throughput_ratio_join"`
	SlowdownAggregate float64 `json:"throughput_ratio_aggregate"`
}

// seed builds the fact and dimension tables. At scale 0.01 (CI smoke)
// the fact table holds 20k rows — roughly 1MB resident, sixteen times
// the grant; scale 1.0 is 2M rows.
func seed(scale float64) (*engine.DB, int64, error) {
	db := engine.New()
	db.SetWorkMem(0) // the study controls grants per session, not via env
	rows := int(2_000_000 * scale)
	if rows < 8_000 {
		rows = 8_000
	}
	stmts := []string{
		"CREATE TABLE mfact (id INTEGER NOT NULL, grp INTEGER, val DOUBLE, tag VARCHAR)",
		"CREATE TABLE mdim (grp INTEGER NOT NULL, label VARCHAR)",
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			return nil, 0, err
		}
	}
	fact, err := db.Catalog().Get("mfact")
	if err != nil {
		return nil, 0, err
	}
	for i := 0; i < rows; i++ {
		if err := fact.AppendRow(
			storage.Int64(int64(i)),
			storage.Int64(int64((i*2654435761)%dimRows)),
			storage.Float64(float64((i*7919)%10007)/7),
			storage.Str(fmt.Sprintf("tag-%04d", (i*104729)%1500)),
		); err != nil {
			return nil, 0, err
		}
	}
	dim, err := db.Catalog().Get("mdim")
	if err != nil {
		return nil, 0, err
	}
	for g := 0; g < dimRows; g++ {
		if err := dim.AppendRow(storage.Int64(int64(g)), storage.Str(fmt.Sprintf("label-%03d", g%23))); err != nil {
			return nil, 0, err
		}
	}

	// Estimate the resident input footprint by draining one scan.
	input, err := measureInput(db)
	if err != nil {
		return nil, 0, err
	}
	return db, input, nil
}

func measureInput(db *engine.DB) (int64, error) {
	rows, err := db.QueryStream(context.Background(), "SELECT id, grp, val, tag FROM mfact")
	if err != nil {
		return 0, err
	}
	defer rows.Close()
	var total int64
	for {
		b, err := rows.Next()
		if err != nil {
			return 0, err
		}
		if b == nil {
			return total, nil
		}
		total += storage.BatchBytes(b)
	}
}

// heapSampler polls the Go heap on a short period and tracks the peak,
// relative to a post-GC baseline taken at start.
type heapSampler struct {
	baseline uint64
	peak     uint64
	stop     chan struct{}
	done     sync.WaitGroup
}

func startHeapSampler() *heapSampler {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := &heapSampler{baseline: ms.HeapAlloc, peak: ms.HeapAlloc, stop: make(chan struct{})}
	s.done.Add(1)
	go func() {
		defer s.done.Done()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > s.peak {
					s.peak = ms.HeapAlloc
				}
			}
		}
	}()
	return s
}

// finish stops sampling and returns the peak delta over the baseline.
func (s *heapSampler) finish() int64 {
	close(s.stop)
	s.done.Wait()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > s.peak {
		s.peak = ms.HeapAlloc
	}
	return int64(s.peak - s.baseline)
}

// drain streams one execution of q and returns its result-row count
// without materializing — peak heap must reflect the executor, not a
// buffered result set.
func drain(ctx context.Context, sess *engine.Session, q query) (int64, error) {
	rows, _, err := sess.RunStream(ctx, q.Text)
	if err != nil {
		return 0, err
	}
	var n int64
	for {
		b, err := rows.Next()
		if err != nil {
			rows.Close()
			return 0, err
		}
		if b == nil {
			return n, rows.Close()
		}
		n += int64(b.Len())
	}
}

// run measures one (mode, query) cell over the window.
func run(db *engine.DB, name string, q query, workMem int64, window time.Duration) (Variant, error) {
	sess := db.NewSession()
	defer sess.Close()
	ctx := context.Background()
	if _, _, err := sess.Run(ctx, fmt.Sprintf("SET work_mem = %d", workMem)); err != nil {
		return Variant{}, err
	}
	// Warm-up: fault in the table and populate the plan cache so the
	// first measured iteration is steady-state.
	if _, err := drain(ctx, sess, q); err != nil {
		return Variant{}, err
	}

	runs0, bytes0 := storage.SpillTotals()
	sampler := startHeapSampler()
	start := time.Now()
	var execs, rows int64
	for time.Since(start) < window {
		n, err := drain(ctx, sess, q)
		if err != nil {
			return Variant{}, err
		}
		execs++
		rows += n
	}
	elapsed := time.Since(start)
	peak := sampler.finish()
	runs1, bytes1 := storage.SpillTotals()
	return Variant{
		Name:               name,
		Query:              q.Name,
		Execs:              execs,
		Rows:               rows,
		DurationMicros:     elapsed.Microseconds(),
		SpillRuns:          runs1 - runs0,
		SpillBytes:         bytes1 - bytes0,
		PeakHeapDeltaBytes: peak,
	}, nil
}

// Study measures rows/s for sort, join and aggregate with unlimited
// memory and under the 64KB grant, writes the report to outPath
// (skipped when empty), and returns printable rows. window is the
// measured interval per cell (0 means 500ms — CI smoke passes a
// smaller one).
func Study(scale float64, window time.Duration, outPath string) ([]bench.AblationRow, error) {
	if window <= 0 {
		window = 500 * time.Millisecond
	}
	db, input, err := seed(scale)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if input < 4*grantBytes {
		return nil, fmt.Errorf("spill: fixture too small to exceed the grant: input %d bytes, grant %d", input, grantBytes)
	}

	// The budgeted cells must not hold the input: allow the grant, the
	// executor's working floor and allocator churn, but never a heap
	// excursion proportional to a large input. The additive slack keeps
	// CI smoke (tiny inputs, GC pacing noise) out of the failure zone;
	// at full scale the input term dominates and the bound bites.
	peakBound := input/2 + 48<<20

	report := Report{Study: "spill", GrantBytes: grantBytes, InputBytes: input, PeakBoundBytes: peakBound}
	rates := map[string]float64{} // "budgeted?/query" -> rows/s
	rowsPerExec := map[string]float64{}
	for _, mode := range []struct {
		name    string
		workMem int64
	}{{"in-memory (unlimited)", 0}, {fmt.Sprintf("spilled (%dKB grant)", grantBytes>>10), grantBytes}} {
		for _, q := range queries() {
			v, err := run(db, mode.name, q, mode.workMem, window)
			if err != nil {
				return nil, err
			}
			budgeted := mode.workMem > 0
			if budgeted && v.SpillRuns == 0 {
				return nil, fmt.Errorf("spill: %s under the %d-byte grant never spilled", q.Name, grantBytes)
			}
			if budgeted && v.PeakHeapDeltaBytes > peakBound {
				return nil, fmt.Errorf("spill: %s peaked at %d heap bytes under the grant (bound %d)",
					q.Name, v.PeakHeapDeltaBytes, peakBound)
			}
			report.Variants = append(report.Variants, v)
			key := fmt.Sprintf("%t/%s", budgeted, q.Name)
			rates[key] = v.RowsPerSec()
			rowsPerExec[key] = float64(v.Rows) / float64(v.Execs)
		}
	}
	for _, q := range queries() {
		// Both modes must compute the same workload.
		if a, b := rowsPerExec["false/"+q.Name], rowsPerExec["true/"+q.Name]; a != b {
			return nil, fmt.Errorf("spill: %s rows/exec differ between modes: %.2f vs %.2f", q.Name, a, b)
		}
	}
	ratio := func(q string) float64 {
		if base := rates["false/"+q]; base > 0 {
			return rates["true/"+q] / base
		}
		return 0
	}
	report.SlowdownSort = ratio("sort")
	report.SlowdownJoin = ratio("join")
	report.SlowdownAggregate = ratio("aggregate")

	if outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
	}

	out := make([]bench.AblationRow, 0, len(report.Variants))
	for _, v := range report.Variants {
		extra := fmt.Sprintf("%.0f rows/s, %d execs", v.RowsPerSec(), v.Execs)
		if v.SpillRuns > 0 {
			extra += fmt.Sprintf(", %d spill runs / %d bytes, peak heap +%dKB",
				v.SpillRuns, v.SpillBytes, v.PeakHeapDeltaBytes>>10)
		}
		out = append(out, bench.AblationRow{
			Study:   "M: out-of-core execution (rows/s)",
			Variant: fmt.Sprintf("%s, %s", v.Name, v.Query),
			Seconds: float64(v.DurationMicros) / 1e6,
			Extra:   extra,
		})
	}
	return out, nil
}
