package spill

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestStudySmoke runs a tiny window of the full (mode, query) grid and
// checks the trajectory file shape — the same invocation CI smoke uses.
func TestStudySmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_spill.json")
	rows, err := Study(0.01, 60*time.Millisecond, out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d printable rows, want 6 (2 modes x 3 queries)", len(rows))
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Study != "spill" || len(rep.Variants) != 6 {
		t.Fatalf("malformed report: %+v", rep)
	}
	if rep.InputBytes <= 4*rep.GrantBytes {
		t.Fatalf("fixture does not exceed the grant: input=%d grant=%d", rep.InputBytes, rep.GrantBytes)
	}
	for _, v := range rep.Variants {
		if v.Execs == 0 || v.Rows == 0 {
			t.Errorf("%s / %s: empty cell (%d execs, %d rows)", v.Name, v.Query, v.Execs, v.Rows)
		}
	}
	if rep.SlowdownSort <= 0 || rep.SlowdownJoin <= 0 || rep.SlowdownAggregate <= 0 {
		t.Errorf("throughput ratios not computed: %+v", rep)
	}
}
