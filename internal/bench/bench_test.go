package bench

import (
	"context"
	"strings"
	"testing"
	"time"
)

// The harness itself is exercised end-to-end at tiny scale; real runs
// happen through cmd/vxbench and the root benchmarks.

func TestRunFig2TinyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all four systems")
	}
	cfg := Fig2Config{
		Scale:            0.002,
		PageRankIters:    3,
		GraphDBEdgeLimit: 5000,
		GiraphOverhead:   20 * time.Millisecond,
	}
	rows, err := RunFig2(context.Background(), "pagerank", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12 (3 datasets × 4 systems)", len(rows))
	}
	seenDNF := false
	for _, r := range rows {
		if r.Note != "" {
			seenDNF = true
		}
		if r.Figure != "2a" {
			t.Errorf("figure tag = %q", r.Figure)
		}
	}
	if !seenDNF {
		t.Error("graph DB should DNF on the big datasets at this limit")
	}
}

func TestRunFig2RejectsUnknownPanel(t *testing.T) {
	if _, err := RunFig2(context.Background(), "fig9", Fig2Config{}); err == nil {
		t.Error("unknown panel should error")
	}
}

func TestCheckFig2Shape(t *testing.T) {
	good := []Row{
		{Dataset: "d1", System: SysGraphDB, Seconds: 10},
		{Dataset: "d1", System: SysGiraph, Seconds: 5},
		{Dataset: "d1", System: SysVertexica, Seconds: 1},
		{Dataset: "d1", System: SysVertexicaSQL, Seconds: 0.5},
	}
	if v := CheckFig2Shape(good); len(v) != 0 {
		t.Errorf("good shape flagged: %v", v)
	}
	bad := []Row{
		{Dataset: "d1", System: SysGraphDB, Seconds: 0.1},
		{Dataset: "d1", System: SysGiraph, Seconds: 0.2},
		{Dataset: "d1", System: SysVertexica, Seconds: 1},
		{Dataset: "d1", System: SysVertexicaSQL, Seconds: 2},
	}
	v := CheckFig2Shape(bad)
	if len(v) != 3 {
		t.Errorf("want 3 violations (SQL, graphDB, giraph), got %v", v)
	}
	// DNF rows are excluded from comparisons.
	dnf := []Row{
		{Dataset: "d1", System: SysGraphDB, Note: "DNF"},
		{Dataset: "d1", System: SysVertexica, Seconds: 1},
		{Dataset: "d1", System: SysVertexicaSQL, Seconds: 0.5},
	}
	if v := CheckFig2Shape(dnf); len(v) != 0 {
		t.Errorf("DNF rows must not trigger violations: %v", v)
	}
}

func TestPrintRowsRendersDNF(t *testing.T) {
	var sb strings.Builder
	PrintRows(&sb, "T", []Row{
		{Dataset: "d", System: SysGraphDB, Note: "DNF (x)"},
		{Dataset: "d", System: SysVertexica, Seconds: 1.5},
	})
	out := sb.String()
	if !strings.Contains(out, "DNF") || !strings.Contains(out, "1.500") {
		t.Errorf("table rendering wrong:\n%s", out)
	}
}

func TestAblationsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations run several full analyses")
	}
	rows, err := AblationUnionVsJoin(0.001, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Seconds <= 0 {
		t.Errorf("union-vs-join rows = %+v", rows)
	}
	cRows, err := AblationCombiner(0.001, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cRows) != 2 {
		t.Errorf("combiner rows = %+v", cRows)
	}
	var sb strings.Builder
	PrintAblation(&sb, append(rows, cRows...))
	if !strings.Contains(sb.String(), "table unions") {
		t.Error("ablation printer lost study headers")
	}
}

func TestAblationSQLParallelTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full SQL analyses")
	}
	rows, err := AblationSQLParallel(0.001, 2, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 algorithms × 2 worker levels
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if strings.Contains(r.Extra, "RESULTS DIFFER") {
			t.Errorf("parallel SQL diverged from serial: %+v", r)
		}
	}
}
