package shard

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestStudySmoke runs a tiny window of the full (mode, writers) grid
// and checks the trajectory file shape — the same invocation CI smoke
// uses.
func TestStudySmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_shard.json")
	rows, err := Study([]int{1, 2}, 60*time.Millisecond, out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d printable rows, want 4 (2 modes x 2 writer counts)", len(rows))
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Study != "shard" || len(rep.Variants) != 4 {
		t.Fatalf("malformed report: %+v", rep)
	}
	for _, v := range rep.Variants {
		if v.Commits == 0 {
			t.Errorf("%s at %d writers: no commits", v.Name, v.Writers)
		}
	}
	if rep.SpeedupAt4 <= 0 {
		t.Errorf("speedup not computed: %+v", rep)
	}
}
