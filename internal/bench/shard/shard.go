// Package shard holds study P: disjoint-shard multi-writer commit
// throughput — the workload storage-layer sharding exists for. W
// sessions each commit durable multi-row INSERTs whose rows all hash
// to the writer's own shard of one partitioned table, so under the
// sharded write path (shared gate + per-shard statement locks) the
// writers never contend on data: their statement bodies overlap and
// their WAL syncs group-commit. Under the forced global gate (the
// ablation baseline, SetFastPathWrites(false)) every commit serializes
// end to end — statement body AND fsync — because the exclusive gate
// is held across both. The study measures commits/s at 1, 2 and 4
// writers in both modes and records the trajectory in a JSON file
// (BENCH_shard.json) so the scaling is tracked across revisions.
package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/storage"
)

// tableShards is the partition count of the bench table: comfortably
// more shards than writers, so disjoint keys are easy to find.
const tableShards = 16

// rowsPerStmt fattens each INSERT so the measured statement body
// (bind + eval + append) dominates the fixed gate/latch cost.
const rowsPerStmt = 16

// Variant is one measured (mode, writers) cell.
type Variant struct {
	Name    string `json:"name"`
	Writers int    `json:"writers"`
	// Commits counts committed INSERT statements across all writers.
	Commits int64 `json:"commits"`
	// MaxStallMicros is the slowest single INSERT across all writers.
	MaxStallMicros int64 `json:"max_stall_us"`
	// DurationMicros is the measured wall-clock window.
	DurationMicros int64 `json:"duration_us"`
}

// CommitsPerSec is the variant's headline rate.
func (v Variant) CommitsPerSec() float64 {
	return float64(v.Commits) / (float64(v.DurationMicros) / 1e6)
}

// Report is the JSON document written to the trajectory file.
type Report struct {
	Study    string    `json:"study"`
	Shards   int       `json:"shards"`
	Variants []Variant `json:"variants"`
	// SpeedupAt4 is sharded commits/s over global-gate commits/s at the
	// highest writer count — the headline scaling number.
	SpeedupAt4 float64 `json:"speedup_at_4_writers"`
}

// disjointKeys returns `n` int64 keys that hash to n distinct shards
// of a tableShards-way partitioned table.
func disjointKeys(n int) []int64 {
	keys := make([]int64, 0, n)
	seen := make(map[uint64]bool)
	for k := int64(0); len(keys) < n; k++ {
		s := storage.HashValue(storage.Int64(k)) % uint64(tableShards)
		if !seen[s] {
			seen[s] = true
			keys = append(keys, k)
		}
	}
	return keys
}

// run measures one (mode, writers) cell over the window against a
// durable (WAL-backed) database in a scratch directory, so each commit
// carries its real fsync cost.
func run(name string, fastPath bool, writers int, window time.Duration) (Variant, error) {
	dir, err := os.MkdirTemp("", "vxshard-*")
	if err != nil {
		return Variant{}, err
	}
	defer os.RemoveAll(dir)
	db, err := engine.Open(dir)
	if err != nil {
		return Variant{}, err
	}
	defer db.Close()
	db.SetFastPathWrites(fastPath)
	stmt := fmt.Sprintf("CREATE TABLE shard_t (id INTEGER NOT NULL, seq INTEGER) PARTITION BY HASH(id) SHARDS %d", tableShards)
	if _, err := db.Exec(stmt); err != nil {
		return Variant{}, err
	}
	keys := disjointKeys(writers)

	ctx, cancel := context.WithTimeout(context.Background(), window)
	defer cancel()
	start := time.Now()

	var commits, maxStall atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(key int64) {
			defer wg.Done()
			sess := db.NewSession()
			defer sess.Close()
			for i := 0; ctx.Err() == nil; i++ {
				q := "INSERT INTO shard_t VALUES "
				for r := 0; r < rowsPerStmt; r++ {
					if r > 0 {
						q += ", "
					}
					q += fmt.Sprintf("(%d, %d)", key, i*rowsPerStmt+r)
				}
				t0 := time.Now()
				if _, err := sess.ExecContext(ctx, q); err != nil {
					if ctx.Err() == nil {
						firstErr.CompareAndSwap(nil, err)
						cancel()
					}
					return
				}
				stall := time.Since(t0).Microseconds()
				for {
					cur := maxStall.Load()
					if stall <= cur || maxStall.CompareAndSwap(cur, stall) {
						break
					}
				}
				commits.Add(1)
			}
		}(keys[w])
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return Variant{}, err
	}
	return Variant{
		Name:           name,
		Writers:        writers,
		Commits:        commits.Load(),
		MaxStallMicros: maxStall.Load(),
		DurationMicros: time.Since(start).Microseconds(),
	}, nil
}

// Study measures commits/s at the given writer counts (nil means
// 1, 2, 4) under the sharded write path and under the forced global
// gate, writes the report to outPath (skipped when empty), and returns
// printable rows. window is the measured interval per cell (0 means
// 300ms — CI smoke passes a smaller one).
func Study(writerCounts []int, window time.Duration, outPath string) ([]bench.AblationRow, error) {
	if len(writerCounts) == 0 {
		writerCounts = []int{1, 2, 4}
	}
	if window <= 0 {
		window = 300 * time.Millisecond
	}

	report := Report{Study: "shard", Shards: tableShards}
	var shardedLast, globalLast Variant
	for _, mode := range []struct {
		name string
		fast bool
	}{{"global gate", false}, {"sharded gate", true}} {
		for _, wc := range writerCounts {
			v, err := run(mode.name, mode.fast, wc, window)
			if err != nil {
				return nil, err
			}
			report.Variants = append(report.Variants, v)
			if mode.fast {
				shardedLast = v
			} else {
				globalLast = v
			}
		}
	}
	if globalLast.Commits > 0 {
		report.SpeedupAt4 = shardedLast.CommitsPerSec() / globalLast.CommitsPerSec()
	}

	if outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
	}

	out := make([]bench.AblationRow, 0, len(report.Variants))
	for _, v := range report.Variants {
		secs := float64(v.DurationMicros) / 1e6
		out = append(out, bench.AblationRow{
			Study:   "P: disjoint-shard writers (commits/s)",
			Variant: fmt.Sprintf("%s, %d writer(s)", v.Name, v.Writers),
			Seconds: secs,
			Extra: fmt.Sprintf("%.0f commits/s, max stall %.2fms",
				v.CommitsPerSec(), float64(v.MaxStallMicros)/1e3),
		})
	}
	return out, nil
}
