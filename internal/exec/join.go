package exec

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/storage"
)

// JoinType enumerates the join semantics the executor supports.
type JoinType uint8

// Join types.
const (
	InnerJoin JoinType = iota
	LeftJoin
	CrossJoin
)

// joinSchema concatenates the schemas of the two join sides.
func joinSchema(l, r storage.Schema) storage.Schema {
	cols := make([]storage.ColumnDef, 0, l.Len()+r.Len())
	cols = append(cols, l.Cols...)
	cols = append(cols, r.Cols...)
	return storage.NewSchema(cols...)
}

// HashJoin is an equi-join: it builds a hash table on the right input's
// key columns and probes with the left input. LeftJoin emits unmatched
// left rows padded with NULLs. NULL keys never match, per SQL.
type HashJoin struct {
	Left, Right Operator
	// LeftKeys/RightKeys are column indexes into the respective schemas.
	LeftKeys, RightKeys []int
	Type                JoinType // InnerJoin or LeftJoin
	// Residual, if non-nil, is evaluated over the combined row and must
	// be TRUE for the match to survive (non-equi conjuncts of ON).
	Residual expr.Expr

	out    storage.Schema
	built  map[uint64][]int
	rdata  *storage.Batch
	ldata  *storage.Batch
	lpos   int
	rNulls []storage.Value

	// fast holds the fully materialized result when the vectorized
	// single-int64-key path applies; fastPos tracks emission.
	fast    *storage.Batch
	fastPos int
}

// Schema implements Operator.
func (j *HashJoin) Schema() storage.Schema {
	if j.out.Len() == 0 {
		j.out = joinSchema(j.Left.Schema(), j.Right.Schema())
	}
	return j.out
}

// Open implements Operator.
func (j *HashJoin) Open() error {
	if len(j.LeftKeys) != len(j.RightKeys) || len(j.LeftKeys) == 0 {
		return fmt.Errorf("exec: hash join requires matching non-empty key lists")
	}
	j.Schema()
	j.fast, j.fastPos = nil, 0
	var err error
	j.rdata, err = Drain(j.Right)
	if err != nil {
		return err
	}
	j.ldata, err = Drain(j.Left)
	if err != nil {
		return err
	}
	j.lpos = 0
	if j.tryFastPath() {
		return nil
	}
	j.built = make(map[uint64][]int, j.rdata.Len())
	for i := 0; i < j.rdata.Len(); i++ {
		key, ok := j.keyOf(j.rdata, i, j.RightKeys)
		if !ok {
			continue // NULL key never matches
		}
		j.built[key] = append(j.built[key], i)
	}
	rs := j.Right.Schema()
	j.rNulls = make([]storage.Value, rs.Len())
	for i, c := range rs.Cols {
		j.rNulls[i] = storage.Null(c.Type)
	}
	return nil
}

// tryFastPath materializes the join result vectorized when both key
// lists are a single null-free INTEGER column and there is no residual
// predicate — the shape every graph-table join in this system has. It
// builds index lists and gathers whole columns instead of assembling
// rows one value at a time.
func (j *HashJoin) tryFastPath() bool {
	if len(j.LeftKeys) != 1 || j.Residual != nil {
		return false
	}
	lk, lok := j.ldata.Cols[j.LeftKeys[0]].(*storage.Int64Column)
	rk, rok := j.rdata.Cols[j.RightKeys[0]].(*storage.Int64Column)
	if !lok || !rok {
		return false
	}
	if storage.NullsOf(lk).Any() || storage.NullsOf(rk).Any() {
		return false
	}
	rvals := rk.Int64s()
	built := make(map[int64][]int32, len(rvals))
	for i, v := range rvals {
		built[v] = append(built[v], int32(i))
	}
	lvals := lk.Int64s()
	leftIdx := make([]int, 0, len(lvals))
	rightIdx := make([]int, 0, len(lvals))
	for i, v := range lvals {
		matches := built[v]
		if len(matches) == 0 {
			if j.Type == LeftJoin {
				leftIdx = append(leftIdx, i)
				rightIdx = append(rightIdx, -1)
			}
			continue
		}
		for _, ri := range matches {
			leftIdx = append(leftIdx, i)
			rightIdx = append(rightIdx, int(ri))
		}
	}
	cols := make([]storage.Column, 0, j.out.Len())
	for _, c := range j.ldata.Cols {
		cols = append(cols, c.Gather(leftIdx))
	}
	for _, c := range j.rdata.Cols {
		cols = append(cols, storage.GatherPad(c, rightIdx))
	}
	j.fast = &storage.Batch{Schema: j.out, Cols: cols}
	j.ldata, j.rdata = nil, nil
	return true
}

func (j *HashJoin) keyOf(b *storage.Batch, row int, keys []int) (uint64, bool) {
	vals := make([]storage.Value, len(keys))
	for k, c := range keys {
		v := b.Cols[c].Value(row)
		if v.Null {
			return 0, false
		}
		vals[k] = v
	}
	return storage.HashRow(vals), true
}

func (j *HashJoin) keysEqual(lrow, rrow int) bool {
	for k := range j.LeftKeys {
		lv := j.ldata.Cols[j.LeftKeys[k]].Value(lrow)
		rv := j.rdata.Cols[j.RightKeys[k]].Value(rrow)
		if lv.Null || rv.Null || storage.Compare(lv, rv) != 0 {
			return false
		}
	}
	return true
}

// Next implements Operator.
func (j *HashJoin) Next() (*storage.Batch, error) {
	if j.fast != nil {
		if j.fastPos >= j.fast.Len() {
			return nil, nil
		}
		end := j.fastPos + storage.BatchSize
		if end > j.fast.Len() {
			end = j.fast.Len()
		}
		// Slice-free emission: share the materialized columns once.
		if j.fastPos == 0 && end == j.fast.Len() {
			j.fastPos = end
			return j.fast, nil
		}
		b := j.fast.Slice(j.fastPos, end)
		j.fastPos = end
		return b, nil
	}
	if j.ldata == nil {
		return nil, nil
	}
	out := storage.NewBatch(j.out)
	for out.Len() < storage.BatchSize && j.lpos < j.ldata.Len() {
		i := j.lpos
		j.lpos++
		lrow := j.ldata.Row(i)
		matched := false
		if key, ok := j.keyOf(j.ldata, i, j.LeftKeys); ok {
			for _, ri := range j.built[key] {
				if !j.keysEqual(i, ri) {
					continue // hash collision
				}
				combined := append(append([]storage.Value{}, lrow...), j.rdata.Row(ri)...)
				if j.Residual != nil {
					keep, err := j.evalResidual(combined)
					if err != nil {
						return nil, err
					}
					if !keep {
						continue
					}
				}
				matched = true
				if err := out.AppendRow(combined...); err != nil {
					return nil, err
				}
			}
		}
		if !matched && j.Type == LeftJoin {
			combined := append(append([]storage.Value{}, lrow...), j.rNulls...)
			if err := out.AppendRow(combined...); err != nil {
				return nil, err
			}
		}
	}
	if out.Len() == 0 {
		return nil, nil
	}
	return out, nil
}

func (j *HashJoin) evalResidual(row []storage.Value) (bool, error) {
	return evalPredOnRow(j.out, j.Residual, row)
}

// evalPredOnRow evaluates a predicate over one materialized row.
func evalPredOnRow(schema storage.Schema, pred expr.Expr, row []storage.Value) (bool, error) {
	b := storage.NewBatch(schema)
	if err := b.AppendRow(row...); err != nil {
		return false, err
	}
	return expr.EvalBool(pred, expr.Row{Batch: b, Idx: 0})
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	j.built = nil
	j.rdata = nil
	j.ldata = nil
	j.fast = nil
	return nil
}

// NestedLoopJoin handles cross joins and joins with arbitrary (non-equi)
// predicates. It is also the oracle the property tests compare HashJoin
// against.
type NestedLoopJoin struct {
	Left, Right Operator
	Type        JoinType
	On          expr.Expr // nil means always-true (cross join)

	out   storage.Schema
	rdata *storage.Batch
	ldata *storage.Batch
	lpos  int
}

// Schema implements Operator.
func (j *NestedLoopJoin) Schema() storage.Schema {
	if j.out.Len() == 0 {
		j.out = joinSchema(j.Left.Schema(), j.Right.Schema())
	}
	return j.out
}

// Open implements Operator.
func (j *NestedLoopJoin) Open() error {
	j.Schema()
	var err error
	j.rdata, err = Drain(j.Right)
	if err != nil {
		return err
	}
	j.ldata, err = Drain(j.Left)
	if err != nil {
		return err
	}
	j.lpos = 0
	return nil
}

// Next implements Operator.
func (j *NestedLoopJoin) Next() (*storage.Batch, error) {
	if j.ldata == nil {
		return nil, nil
	}
	out := storage.NewBatch(j.out)
	for out.Len() < storage.BatchSize && j.lpos < j.ldata.Len() {
		i := j.lpos
		j.lpos++
		lrow := j.ldata.Row(i)
		matched := false
		for ri := 0; ri < j.rdata.Len(); ri++ {
			combined := append(append([]storage.Value{}, lrow...), j.rdata.Row(ri)...)
			if j.On != nil {
				ok, err := evalPredOnRow(j.out, j.On, combined)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			matched = true
			if err := out.AppendRow(combined...); err != nil {
				return nil, err
			}
		}
		if !matched && j.Type == LeftJoin {
			rs := j.Right.Schema()
			combined := lrow
			for _, c := range rs.Cols {
				combined = append(combined, storage.Null(c.Type))
			}
			if err := out.AppendRow(combined...); err != nil {
				return nil, err
			}
		}
	}
	if out.Len() == 0 {
		return nil, nil
	}
	return out, nil
}

// Close implements Operator.
func (j *NestedLoopJoin) Close() error {
	j.rdata = nil
	j.ldata = nil
	return nil
}
