package exec

import (
	"fmt"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/sched"
	"repro/internal/storage"
)

// JoinType enumerates the join semantics the executor supports.
type JoinType uint8

// Join types.
const (
	InnerJoin JoinType = iota
	LeftJoin
	CrossJoin
)

// joinSchema concatenates the schemas of the two join sides.
func joinSchema(l, r storage.Schema) storage.Schema {
	cols := make([]storage.ColumnDef, 0, l.Len()+r.Len())
	cols = append(cols, l.Cols...)
	cols = append(cols, r.Cols...)
	return storage.NewSchema(cols...)
}

// HashJoin is an equi-join: it builds a hash table on the right input's
// key columns and probes with the left input. LeftJoin emits unmatched
// left rows padded with NULLs. NULL keys never match, per SQL.
type HashJoin struct {
	Left, Right Operator
	// LeftKeys/RightKeys are column indexes into the respective schemas.
	LeftKeys, RightKeys []int
	Type                JoinType // InnerJoin or LeftJoin
	// Residual, if non-nil, is evaluated over the combined row and must
	// be TRUE for the match to survive (non-equi conjuncts of ON).
	Residual expr.Expr
	// Workers caps probe-side parallelism. The hash table is built
	// once; probing splits the left input into contiguous morsels whose
	// match lists are concatenated in morsel order, so the output is
	// row-for-row identical to a serial probe. 0 or 1 probes serially.
	Workers int
	// Budget is the shared extra-worker budget (nil = unlimited).
	Budget *sched.Budget
	// Streaming makes Open build only the right side and pull the
	// probe (left) side batch by batch in Next — O(batch) probe memory
	// and true early exit for a LIMIT above the join, at the cost of
	// the vectorized fast path and the parallel probe. The planner
	// sets it on joins planned under a LIMIT. Row order is identical
	// to the materialized probe.
	Streaming bool
	// Mem is the statement memory grant (nil = unlimited). A build side
	// that outgrows it switches the join to the Grace partitioned path;
	// a probe side that outgrows it falls back to the streaming probe.
	// FS creates spill files (nil = the default temp-file filesystem).
	Mem *sched.MemBudget
	FS  storage.SpillFS

	out   storage.Schema
	built map[uint64][]int
	// builtParts is the partitioned generic build (Workers > 1): key
	// hash modulo the partition count routes both build and lookup.
	builtParts []map[uint64][]int
	// buildOffs holds the shard boundaries of rdata when the build side
	// is a whole-table scan of a sharded table keyed on its partition
	// column: buildOffs[s]..buildOffs[s+1] is shard s's index range.
	// The fast path then builds one hash map per shard concurrently —
	// no single global build map, no barrier between shard builds.
	buildOffs []int
	rdata     *storage.Batch
	ldata     *storage.Batch
	lpos      int
	lopen     bool // Streaming: left operator is open
	ldone     bool // Streaming: left exhausted
	rNulls    []storage.Value

	// fast holds the fully materialized result when the vectorized
	// single-int64-key path applies; fastPos tracks emission.
	fast    *storage.Batch
	fastPos int

	// slowOut holds the materialized result when the generic probe ran
	// in parallel (multi-key or residual joins); slowPos tracks
	// emission.
	slowOut []*storage.Batch
	slowPos int

	// grace is the K-way idx-merge over partition result runs when the
	// build side spilled; streamSpill marks the streaming-probe fallback
	// when only the probe side overflowed.
	grace       *graceState
	streamSpill bool
	mt          memTracker

	stats OpStats
	// buildRows/probeRows split the join's input accounting between the
	// hash-table build (right) and the probe (left) side; EXPLAIN
	// ANALYZE reports them because the output row count alone says
	// nothing about which side dominated. Captured before tryFastPath
	// releases the drained inputs.
	buildRows atomic.Int64
	probeRows atomic.Int64
}

// OpStats implements Instrumented.
func (j *HashJoin) OpStats() *OpStats { return &j.stats }

// BuildProbeRows reports the build-side and probe-side input row counts
// of the latest execution.
func (j *HashJoin) BuildProbeRows() (build, probe int64) {
	return j.buildRows.Load(), j.probeRows.Load()
}

// Schema implements Operator.
func (j *HashJoin) Schema() storage.Schema {
	if j.out.Len() == 0 {
		j.out = joinSchema(j.Left.Schema(), j.Right.Schema())
	}
	return j.out
}

// Open implements Operator.
func (j *HashJoin) Open() error {
	t0 := j.stats.begin()
	err := j.open()
	j.stats.opened(t0)
	return err
}

func (j *HashJoin) open() error {
	if len(j.LeftKeys) != len(j.RightKeys) || len(j.LeftKeys) == 0 {
		return fmt.Errorf("exec: hash join requires matching non-empty key lists")
	}
	j.Schema()
	j.fast, j.fastPos = nil, 0
	j.slowOut, j.slowPos = nil, 0
	j.lopen, j.ldone = false, false
	j.grace, j.streamSpill = nil, false
	j.mt = memTracker{mem: j.Mem}
	j.buildRows.Store(0)
	j.probeRows.Store(0)
	j.prepareNulls()
	rdata, rspill, err := j.drainAccounted(j.Right, &j.buildRows, &j.mt)
	if err != nil {
		return err
	}
	j.rdata = rdata
	if rspill {
		// The build side does not fit: Grace partitioned join. What is
		// buffered plus the rest of both streams goes to hash-partition
		// runs on disk, probed partition against partition.
		return j.openGrace()
	}
	j.buildOffs = j.shardBuildOffsets()
	if j.Streaming {
		j.buildTable()
		if err := j.Left.Open(); err != nil {
			return err
		}
		j.lopen = true
		j.ldata, j.lpos = nil, 0
		return nil
	}
	var lmt memTracker
	lmt.mem = j.Mem
	ldata, lspill, err := j.drainAccounted(j.Left, &j.probeRows, &lmt)
	if err != nil {
		return err
	}
	if lspill {
		// The build fits but the probe side does not. Drop the partial
		// drain, restart the left input and probe batch by batch at
		// O(batch) memory — the streaming probe visits left rows in
		// input order, which IS the materialized probe's output order,
		// so the result is byte-identical.
		lmt.releaseAll()
		if err := j.Left.Close(); err != nil {
			return err
		}
		j.probeRows.Store(0)
		j.buildTable()
		if err := j.Left.Open(); err != nil {
			return err
		}
		j.lopen = true
		j.ldata, j.lpos = nil, 0
		j.streamSpill = true
		return nil
	}
	j.mt.held += lmt.held
	lmt.held = 0
	j.ldata = ldata
	j.lpos = 0
	if j.tryFastPath() {
		return nil
	}
	j.buildTable()
	if w := splitParts(j.ldata.Len(), j.Workers); w > 1 {
		return j.probeSlowParallel(w)
	}
	return nil
}

// drainAccounted pulls every batch from op, reserving each batch's
// footprint against the grant through mt. A denied reservation stops
// the drain: the partial result is returned with spill=true and op
// still open, so the caller can stream the remainder straight to disk.
// On a full drain (or error) op is closed, matching Drain.
func (j *HashJoin) drainAccounted(op Operator, rows *atomic.Int64, mt *memTracker) (*storage.Batch, bool, error) {
	if err := op.Open(); err != nil {
		return nil, false, err
	}
	out := storage.NewBatch(op.Schema())
	for {
		b, err := op.Next()
		if err != nil {
			op.Close()
			return nil, false, err
		}
		if b == nil {
			break
		}
		rows.Add(int64(b.Len()))
		spill := !mt.reserve(storage.BatchBytes(b)) && out.Len() > 0
		if err := storage.Concat(out, b); err != nil {
			op.Close()
			return nil, false, err
		}
		if spill {
			return out, true, nil
		}
	}
	if err := op.Close(); err != nil {
		return nil, false, err
	}
	return out, false, nil
}

// shardBuildOffsets detects a shard-aligned build side: the right
// input is a whole-table scan of a multi-shard table and the single
// join key IS the partition key, so every row of the drained build
// side sits in the shard its key hashes to. It returns the shard
// boundaries within rdata (shard-major drain order), or nil when the
// build is not shard-aligned.
func (j *HashJoin) shardBuildOffsets() []int {
	if len(j.RightKeys) != 1 || j.Residual != nil {
		return nil
	}
	ts, ok := j.Right.(*TableScan)
	if !ok || ts.Shard != 0 || ts.parts > 1 {
		return nil
	}
	sh, ok := ts.Table.(storage.Sharded)
	if !ok || sh.NumShards() < 2 || sh.ShardKey() != j.RightKeys[0] {
		return nil
	}
	offs := make([]int, sh.NumShards()+1)
	for s := 0; s < sh.NumShards(); s++ {
		offs[s+1] = offs[s] + sh.ShardRows(s)
	}
	if offs[len(offs)-1] != j.rdata.Len() {
		return nil // shard layout moved under a live scan; fall back
	}
	return offs
}

// prepareNulls builds the NULL pad row left joins append to unmatched
// rows.
func (j *HashJoin) prepareNulls() {
	rs := j.Right.Schema()
	j.rNulls = make([]storage.Value, rs.Len())
	for i, c := range rs.Cols {
		j.rNulls[i] = storage.Null(c.Type)
	}
}

// buildTable hashes the drained right side. With Workers > 1 the build
// itself is parallel in two stages: key hashes are computed over
// contiguous morsels, then one map per hash partition is built
// concurrently (each worker scans the key array claiming the hashes
// that route to its partition — no locks, no merge). Match lists stay
// in ascending build order either way, so probes see identical lists.
func (j *HashJoin) buildTable() {
	j.built, j.builtParts = nil, nil
	n := j.rdata.Len()
	if w := splitParts(n, j.Workers); w > 1 {
		keys := make([]uint64, n)
		oks := make([]bool, n)
		sched.ForEach(j.Budget, w, j.Workers, func(m int) {
			for i := m * n / w; i < (m+1)*n/w; i++ {
				keys[i], oks[i] = j.keyOf(j.rdata, i, j.RightKeys)
			}
		})
		parts := make([]map[uint64][]int, w)
		sched.ForEach(j.Budget, w, j.Workers, func(p int) {
			m := make(map[uint64][]int, n/w+1)
			for i := 0; i < n; i++ {
				if oks[i] && keys[i]%uint64(w) == uint64(p) {
					m[keys[i]] = append(m[keys[i]], i)
				}
			}
			parts[p] = m
		})
		j.builtParts = parts
		return
	}
	j.built = make(map[uint64][]int, n)
	for i := 0; i < n; i++ {
		key, ok := j.keyOf(j.rdata, i, j.RightKeys)
		if !ok {
			continue // NULL key never matches
		}
		j.built[key] = append(j.built[key], i)
	}
}

// lookup returns the build-side match list for a key hash.
func (j *HashJoin) lookup(key uint64) []int {
	if j.builtParts != nil {
		return j.builtParts[key%uint64(len(j.builtParts))][key]
	}
	return j.built[key]
}

// tryFastPath materializes the join result vectorized when both key
// lists are a single null-free INTEGER column and there is no residual
// predicate — the shape every graph-table join in this system has. It
// builds index lists and gathers whole columns instead of assembling
// rows one value at a time.
func (j *HashJoin) tryFastPath() bool {
	if len(j.LeftKeys) != 1 || j.Residual != nil {
		return false
	}
	lk, lok := j.ldata.Cols[j.LeftKeys[0]].(*storage.Int64Column)
	rk, rok := j.rdata.Cols[j.RightKeys[0]].(*storage.Int64Column)
	if !lok || !rok {
		return false
	}
	if storage.NullsOf(lk).Any() || storage.NullsOf(rk).Any() {
		return false
	}
	rvals := rk.Int64s()
	lvals := lk.Int64s()
	var probe func(lo, hi int) ([]int, []int)
	if offs := j.buildOffs; offs != nil {
		// Partitioned build: one hash map per shard, built concurrently
		// over that shard's contiguous slice of the drained build side.
		// The partition invariant (every row lives in the shard its key
		// hashes to) means a probe key can only match inside its owning
		// shard, so the per-shard maps need no merge — shard-local
		// builds, no global build barrier — and the match lists still
		// come out in ascending build order, byte-identical to the
		// single-map path.
		nShards := len(offs) - 1
		builtShards := make([]map[int64][]int32, nShards)
		sched.ForEach(j.Budget, nShards, j.Workers, func(s int) {
			m := make(map[int64][]int32, offs[s+1]-offs[s])
			for i := offs[s]; i < offs[s+1]; i++ {
				m[rvals[i]] = append(m[rvals[i]], int32(i))
			}
			builtShards[s] = m
		})
		probe = func(lo, hi int) ([]int, []int) {
			return probeFastShardRange(builtShards, lvals, lo, hi, j.Type)
		}
	} else {
		built := make(map[int64][]int32, len(rvals))
		for i, v := range rvals {
			built[v] = append(built[v], int32(i))
		}
		probe = func(lo, hi int) ([]int, []int) {
			return probeFastRange(built, lvals, lo, hi, j.Type)
		}
	}
	var leftIdx, rightIdx []int
	if w := splitParts(len(lvals), j.Workers); w > 1 {
		// Parallel probe: each worker probes one contiguous morsel of
		// the left input; the per-morsel match lists are concatenated
		// in morsel order, reproducing the serial output exactly.
		lefts := make([][]int, w)
		rights := make([][]int, w)
		sched.ForEach(j.Budget, w, w, func(m int) {
			lefts[m], rights[m] = probe(m*len(lvals)/w, (m+1)*len(lvals)/w)
		})
		total := 0
		for _, l := range lefts {
			total += len(l)
		}
		leftIdx = make([]int, 0, total)
		rightIdx = make([]int, 0, total)
		for m := range lefts {
			leftIdx = append(leftIdx, lefts[m]...)
			rightIdx = append(rightIdx, rights[m]...)
		}
	} else {
		leftIdx, rightIdx = probe(0, len(lvals))
	}
	cols := make([]storage.Column, j.out.Len())
	nl := len(j.ldata.Cols)
	// Materializing the output is a per-column gather; columns are
	// independent, so gather them on the worker budget too.
	sched.ForEach(j.Budget, j.out.Len(), j.Workers, func(k int) {
		if k < nl {
			cols[k] = j.ldata.Cols[k].Gather(leftIdx)
		} else {
			cols[k] = storage.GatherPad(j.rdata.Cols[k-nl], rightIdx)
		}
	})
	j.fast = &storage.Batch{Schema: j.out, Cols: cols}
	j.ldata, j.rdata = nil, nil
	return true
}

// probeFastRange probes rows [lo, hi) of the left key column against
// the build map, returning matched (left, right) index pairs; a right
// index of -1 marks a NULL-padded row of a left join.
func probeFastRange(built map[int64][]int32, lvals []int64, lo, hi int, jt JoinType) (leftIdx, rightIdx []int) {
	leftIdx = make([]int, 0, hi-lo)
	rightIdx = make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		matches := built[lvals[i]]
		if len(matches) == 0 {
			if jt == LeftJoin {
				leftIdx = append(leftIdx, i)
				rightIdx = append(rightIdx, -1)
			}
			continue
		}
		for _, ri := range matches {
			leftIdx = append(leftIdx, i)
			rightIdx = append(rightIdx, int(ri))
		}
	}
	return leftIdx, rightIdx
}

// probeFastShardRange is probeFastRange against a partitioned build:
// each probe key is routed to its owning shard's map by the same FNV
// hash that placed the build rows there.
func probeFastShardRange(builtShards []map[int64][]int32, lvals []int64, lo, hi int, jt JoinType) (leftIdx, rightIdx []int) {
	n := uint64(len(builtShards))
	leftIdx = make([]int, 0, hi-lo)
	rightIdx = make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		matches := builtShards[storage.HashInt64(lvals[i])%n][lvals[i]]
		if len(matches) == 0 {
			if jt == LeftJoin {
				leftIdx = append(leftIdx, i)
				rightIdx = append(rightIdx, -1)
			}
			continue
		}
		for _, ri := range matches {
			leftIdx = append(leftIdx, i)
			rightIdx = append(rightIdx, int(ri))
		}
	}
	return leftIdx, rightIdx
}

// probeSlowParallel runs the generic (multi-key / residual) probe over
// w contiguous morsels of the left input concurrently. Each worker
// emits its own batch list; lists are concatenated in morsel order, so
// the output matches the serial probe row for row. The build map,
// drained inputs and expression trees are all read-only during the
// probe. Like the vectorized fast path, this materializes the whole
// join result in Open — an early-exiting consumer (LIMIT) no longer
// stops the probe partway, trading that for probe parallelism.
func (j *HashJoin) probeSlowParallel(w int) error {
	outs := make([][]*storage.Batch, w)
	errs := make([]error, w)
	n := j.ldata.Len()
	sched.ForEach(j.Budget, w, w, func(m int) {
		outs[m], errs[m] = j.probeSlowRange(m*n/w, (m+1)*n/w)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// Non-nil even when empty: Next must serve the (empty) parallel
	// result rather than falling back to a second, serial probe.
	j.slowOut = make([]*storage.Batch, 0, len(outs))
	for _, batches := range outs {
		j.slowOut = append(j.slowOut, batches...)
	}
	j.slowPos = 0
	return nil
}

// probeSlowRange probes left rows [lo, hi), returning the result
// batches for that morsel.
func (j *HashJoin) probeSlowRange(lo, hi int) ([]*storage.Batch, error) {
	var batches []*storage.Batch
	out := storage.NewBatch(j.out)
	for i := lo; i < hi; i++ {
		if out.Len() >= storage.BatchSize {
			batches = append(batches, out)
			out = storage.NewBatch(j.out)
		}
		matched, err := j.probeOne(i, out)
		if err != nil {
			return nil, err
		}
		if !matched && j.Type == LeftJoin {
			combined := append(j.ldata.Row(i), j.rNulls...)
			if err := out.AppendRow(combined...); err != nil {
				return nil, err
			}
		}
	}
	if out.Len() > 0 {
		batches = append(batches, out)
	}
	return batches, nil
}

// probeOne probes left row i, appending every surviving match to out.
func (j *HashJoin) probeOne(i int, out *storage.Batch) (matched bool, err error) {
	key, ok := j.keyOf(j.ldata, i, j.LeftKeys)
	if !ok {
		return false, nil
	}
	var lrow []storage.Value
	for _, ri := range j.lookup(key) {
		if !j.keysEqual(i, ri) {
			continue // hash collision
		}
		if lrow == nil {
			lrow = j.ldata.Row(i)
		}
		combined := append(append([]storage.Value{}, lrow...), j.rdata.Row(ri)...)
		if j.Residual != nil {
			keep, err := j.evalResidual(combined)
			if err != nil {
				return matched, err
			}
			if !keep {
				continue
			}
		}
		matched = true
		if err := out.AppendRow(combined...); err != nil {
			return matched, err
		}
	}
	return matched, nil
}

func (j *HashJoin) keyOf(b *storage.Batch, row int, keys []int) (uint64, bool) {
	return joinKeyOf(b, row, keys)
}

// joinKeyOf hashes the key columns of one row; ok is false when any key
// is NULL (which never matches, per SQL).
func joinKeyOf(b *storage.Batch, row int, keys []int) (uint64, bool) {
	vals := make([]storage.Value, len(keys))
	for k, c := range keys {
		v := b.Cols[c].Value(row)
		if v.Null {
			return 0, false
		}
		vals[k] = v
	}
	return storage.HashRow(vals), true
}

func (j *HashJoin) keysEqual(lrow, rrow int) bool {
	return joinKeysEqual(j.ldata, lrow, j.rdata, rrow, j.LeftKeys, j.RightKeys)
}

// joinKeysEqual compares the key columns of one left and one right row
// (the hash-collision check behind every generic probe).
func joinKeysEqual(lb *storage.Batch, lrow int, rb *storage.Batch, rrow int, lkeys, rkeys []int) bool {
	for k := range lkeys {
		lv := lb.Cols[lkeys[k]].Value(lrow)
		rv := rb.Cols[rkeys[k]].Value(rrow)
		if lv.Null || rv.Null || storage.Compare(lv, rv) != 0 {
			return false
		}
	}
	return true
}

// Next implements Operator.
func (j *HashJoin) Next() (*storage.Batch, error) {
	t0 := j.stats.begin()
	b, err := j.next()
	j.stats.record(t0, b)
	return b, err
}

func (j *HashJoin) next() (*storage.Batch, error) {
	if j.grace != nil {
		return j.graceNextBatch()
	}
	if j.fast != nil {
		return NextChunk(j.fast, &j.fastPos, j.fast.Len()), nil
	}
	if j.slowOut != nil {
		if j.slowPos >= len(j.slowOut) {
			return nil, nil
		}
		b := j.slowOut[j.slowPos]
		j.slowPos++
		return b, nil
	}
	streaming := j.Streaming || j.streamSpill
	if j.ldata == nil && !streaming {
		return nil, nil
	}
	out := storage.NewBatch(j.out)
	for out.Len() < storage.BatchSize {
		if j.ldata == nil || j.lpos >= j.ldata.Len() {
			if !streaming {
				break
			}
			if j.ldone {
				break
			}
			b, err := j.Left.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				j.ldone = true
				break
			}
			j.probeRows.Add(int64(b.Len()))
			j.ldata, j.lpos = b, 0
			continue
		}
		i := j.lpos
		j.lpos++
		matched, err := j.probeOne(i, out)
		if err != nil {
			return nil, err
		}
		if !matched && j.Type == LeftJoin {
			combined := append(j.ldata.Row(i), j.rNulls...)
			if err := out.AppendRow(combined...); err != nil {
				return nil, err
			}
		}
	}
	if out.Len() == 0 {
		return nil, nil
	}
	return out, nil
}

func (j *HashJoin) evalResidual(row []storage.Value) (bool, error) {
	return evalPredOnRow(j.out, j.Residual, row)
}

// evalPredOnRow evaluates a predicate over one materialized row.
func evalPredOnRow(schema storage.Schema, pred expr.Expr, row []storage.Value) (bool, error) {
	b := storage.NewBatch(schema)
	if err := b.AppendRow(row...); err != nil {
		return false, err
	}
	return expr.EvalBool(pred, expr.Row{Batch: b, Idx: 0})
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	j.stats.closed()
	j.built = nil
	j.builtParts = nil
	j.rdata = nil
	j.ldata = nil
	j.fast = nil
	j.slowOut = nil
	if j.grace != nil {
		for _, r := range j.grace.runs {
			r.Close()
		}
		j.grace = nil
	}
	j.mt.releaseAll()
	if j.lopen {
		j.lopen = false
		return j.Left.Close()
	}
	return nil
}

// NestedLoopJoin handles cross joins and joins with arbitrary (non-equi)
// predicates. It is also the oracle the property tests compare HashJoin
// against. The right side is materialized once; the left side streams
// batch by batch, so probe-side memory is O(batch) and a LIMIT above
// the join stops pulling from the left source early.
//
// With Workers > 1 the left side is materialized too and probed over
// contiguous morsels whose outputs concatenate in morsel order —
// byte-identical to the streamed probe. A probe side that outgrows the
// memory grant falls back to the streamed serial probe; the build side
// has no spill path (every probe row must see every build row under an
// arbitrary predicate), so a build that outgrows the grant fails with
// ErrOutOfMemoryBudget.
type NestedLoopJoin struct {
	Left, Right Operator
	Type        JoinType
	On          expr.Expr // nil means always-true (cross join)
	// Workers caps probe-side parallelism; 0 or 1 probes serially.
	Workers int
	// Budget is the shared extra-worker budget (nil = unlimited).
	Budget *sched.Budget
	// Mem is the statement memory grant (nil = unlimited).
	Mem *sched.MemBudget

	out     storage.Schema
	rdata   *storage.Batch
	ldata   *storage.Batch
	lpos    int
	lopen   bool
	ldone   bool
	slowOut []*storage.Batch
	slowPos int
	mt      memTracker
	stats   OpStats
}

// Schema implements Operator.
func (j *NestedLoopJoin) Schema() storage.Schema {
	if j.out.Len() == 0 {
		j.out = joinSchema(j.Left.Schema(), j.Right.Schema())
	}
	return j.out
}

// OpStats implements Instrumented.
func (j *NestedLoopJoin) OpStats() *OpStats { return &j.stats }

// Open implements Operator.
func (j *NestedLoopJoin) Open() error {
	t0 := j.stats.begin()
	err := j.open()
	j.stats.opened(t0)
	return err
}

func (j *NestedLoopJoin) open() error {
	j.Schema()
	j.mt = memTracker{mem: j.Mem}
	j.slowOut, j.slowPos = nil, 0
	j.lopen, j.ldone = false, false
	j.ldata, j.lpos = nil, 0
	var err error
	j.rdata, err = Drain(j.Right)
	if err != nil {
		return err
	}
	if !j.mt.reserve(storage.BatchBytes(j.rdata)) {
		return ErrOutOfMemoryBudget
	}
	if j.Workers > 1 {
		if done, err := j.openParallel(); done || err != nil {
			return err
		}
		// The probe side outgrew the grant: fall through to the streamed
		// serial probe, restarting the left input from scratch.
	}
	if err := j.Left.Open(); err != nil {
		return err
	}
	j.lopen, j.ldone = true, false
	j.ldata, j.lpos = nil, 0
	return nil
}

// openParallel materializes the left side under the grant and probes it
// over parallel morsels. done=false (with nil error) means the left
// side did not fit and the caller should stream instead.
func (j *NestedLoopJoin) openParallel() (done bool, err error) {
	lmt := memTracker{mem: j.Mem}
	if err := j.Left.Open(); err != nil {
		return false, err
	}
	lall := storage.NewBatch(j.Left.Schema())
	spill := false
	for !spill {
		b, err := j.Left.Next()
		if err != nil {
			j.Left.Close()
			return false, err
		}
		if b == nil {
			break
		}
		if !lmt.reserve(storage.BatchBytes(b)) {
			spill = true
			break
		}
		if err := storage.Concat(lall, b); err != nil {
			j.Left.Close()
			return false, err
		}
	}
	if err := j.Left.Close(); err != nil {
		return false, err
	}
	if spill {
		lmt.releaseAll()
		return false, nil
	}
	j.mt.held += lmt.held
	lmt.held = 0
	n := lall.Len()
	w := splitParts(n, j.Workers)
	if w < 2 {
		// Too small to fan out: serve the materialized batch serially.
		j.ldata, j.lpos = lall, 0
		j.ldone = true
		return true, nil
	}
	j.ldata = lall
	outs := make([][]*storage.Batch, w)
	errs := make([]error, w)
	sched.ForEach(j.Budget, w, w, func(m int) {
		outs[m], errs[m] = j.probeNLRange(m*n/w, (m+1)*n/w)
	})
	j.ldata = nil
	for _, err := range errs {
		if err != nil {
			return false, err
		}
	}
	j.slowOut = make([]*storage.Batch, 0, w)
	for _, bs := range outs {
		j.slowOut = append(j.slowOut, bs...)
	}
	j.slowPos = 0
	return true, nil
}

// probeNLRange probes left rows [lo, hi) of the materialized left side,
// returning that morsel's result batches.
func (j *NestedLoopJoin) probeNLRange(lo, hi int) ([]*storage.Batch, error) {
	var batches []*storage.Batch
	out := storage.NewBatch(j.out)
	for i := lo; i < hi; i++ {
		if out.Len() >= storage.BatchSize {
			batches = append(batches, out)
			out = storage.NewBatch(j.out)
		}
		if err := j.probeRow(j.ldata, i, out); err != nil {
			return nil, err
		}
	}
	if out.Len() > 0 {
		batches = append(batches, out)
	}
	return batches, nil
}

// probeRow joins left row i of lb against the whole build side,
// appending matches (or the left-join pad) to out.
func (j *NestedLoopJoin) probeRow(lb *storage.Batch, i int, out *storage.Batch) error {
	lrow := lb.Row(i)
	matched := false
	for ri := 0; ri < j.rdata.Len(); ri++ {
		combined := append(append([]storage.Value{}, lrow...), j.rdata.Row(ri)...)
		if j.On != nil {
			ok, err := evalPredOnRow(j.out, j.On, combined)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
		}
		matched = true
		if err := out.AppendRow(combined...); err != nil {
			return err
		}
	}
	if !matched && j.Type == LeftJoin {
		rs := j.Right.Schema()
		combined := append([]storage.Value{}, lrow...)
		for _, c := range rs.Cols {
			combined = append(combined, storage.Null(c.Type))
		}
		return out.AppendRow(combined...)
	}
	return nil
}

// Next implements Operator.
func (j *NestedLoopJoin) Next() (*storage.Batch, error) {
	t0 := j.stats.begin()
	b, err := j.next()
	j.stats.record(t0, b)
	return b, err
}

func (j *NestedLoopJoin) next() (*storage.Batch, error) {
	if j.slowOut != nil {
		if j.slowPos >= len(j.slowOut) {
			return nil, nil
		}
		b := j.slowOut[j.slowPos]
		j.slowPos++
		return b, nil
	}
	if j.rdata == nil {
		return nil, nil
	}
	out := storage.NewBatch(j.out)
	for out.Len() < storage.BatchSize {
		if j.ldata == nil || j.lpos >= j.ldata.Len() {
			if j.ldone {
				break
			}
			b, err := j.Left.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				j.ldone = true
				break
			}
			j.ldata, j.lpos = b, 0
			continue
		}
		i := j.lpos
		j.lpos++
		if err := j.probeRow(j.ldata, i, out); err != nil {
			return nil, err
		}
	}
	if out.Len() == 0 {
		return nil, nil
	}
	return out, nil
}

// Close implements Operator.
func (j *NestedLoopJoin) Close() error {
	j.stats.closed()
	j.rdata = nil
	j.ldata = nil
	j.slowOut = nil
	j.mt.releaseAll()
	if j.lopen {
		j.lopen = false
		return j.Left.Close()
	}
	return nil
}
