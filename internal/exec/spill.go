package exec

import (
	"errors"

	"repro/internal/sched"
)

// Memory accounting for out-of-core execution. Every blocking operator
// carries an optional *sched.MemBudget (the statement's grant from the
// engine pool) and reserves through a memTracker before it buffers. A
// denied reservation is the spill signal: Sort cuts a sorted run,
// HashJoin switches to the Grace partitioned path, HashAggregate
// restarts into its partitioned spill fold, and the spool overflows its
// retained batch list to disk. Operators with no spill path (Distinct's
// seen-set, NestedLoopJoin's build side) fail the statement with
// ErrOutOfMemoryBudget instead — a clean error, not an OOM.
//
// Each spilling operator keeps a small working floor regardless of the
// budget (one input batch, or one partition's build side at the deepest
// Grace level): an operator that cannot hold even that makes no
// progress, so the floor proceeds unreserved rather than deadlocking a
// statement that a slightly larger grant would run.

// ErrOutOfMemoryBudget fails a statement whose working set exceeds its
// memory grant in an operator that has no spill path.
var ErrOutOfMemoryBudget = errors.New("exec: out of memory budget")

// memTracker accumulates one operator's reservations against a budget
// so they can be returned in one Close. It is not goroutine-safe; each
// operator uses it from its own open/next path (the spool guards its
// tracker with the spool mutex).
type memTracker struct {
	mem  *sched.MemBudget
	held int64
}

// reserve asks the budget for n more bytes; false means spill (or fail).
func (t *memTracker) reserve(n int64) bool {
	if !t.mem.Reserve(n) {
		return false
	}
	t.held += n
	return true
}

// release returns n of the held bytes (clamped to what is held).
func (t *memTracker) release(n int64) {
	if n > t.held {
		n = t.held
	}
	t.mem.Release(n)
	t.held -= n
}

// releaseAll returns every held byte.
func (t *memTracker) releaseAll() {
	t.mem.Release(t.held)
	t.held = 0
}
