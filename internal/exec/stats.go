package exec

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/storage"
)

// OpStats is the per-operator counter set every executor operator
// carries: output rows and batches, cumulative wall time spent inside
// the operator's Open and Next calls (inclusive of its children — a
// pull executor does child work inside the parent's Next), and the
// open/close timestamps. Counters are atomics because parallel plans
// run clones and spool producers on worker goroutines; EXPLAIN ANALYZE
// reads them after the drain, SHOW STATS-style consumers may read them
// live.
//
// A cached prepared plan accumulates across executions (operators are
// re-opened, never re-built); EXPLAIN ANALYZE plans fresh, so its
// counters always describe exactly one execution.
type OpStats struct {
	Rows    atomic.Int64
	Batches atomic.Int64
	// Nanos is cumulative wall time inside Open and Next, inclusive of
	// child pulls.
	Nanos    atomic.Int64
	OpenedNS atomic.Int64 // unix nanos of the latest Open
	ClosedNS atomic.Int64 // unix nanos of the latest Close
	// SpillBytes/SpillRuns count the operator's out-of-core activity:
	// bytes written to spill runs (including re-spills during merges)
	// and runs created. EXPLAIN ANALYZE renders them as spilled=.
	SpillBytes atomic.Int64
	SpillRuns  atomic.Int64

	// timed scopes wall-clock timing to this operator's plan: MarkTimed
	// sets it on every node of one tree, so one EXPLAIN ANALYZE no
	// longer makes concurrent statements pay clock reads. It is atomic
	// because the trace hook marks a streaming plan that is already
	// open, and on cancellation releases it while parallel fragment
	// goroutines are still closing their operators.
	timed atomic.Bool
}

// spilled credits one finished spill run to the operator's counters.
func (s *OpStats) spilled(run *storage.SpillRun) {
	if run == nil {
		return
	}
	s.SpillRuns.Add(1)
	s.SpillBytes.Add(run.Bytes())
}

// statsMode is the single flag the per-call hot path loads: -1 when
// counter recording is disabled (benchmark ablation only), 0 when
// counting rows/batches without wall-clock timing (the always-on
// default), and n > 0 while n timed executions (EXPLAIN ANALYZE) are
// in flight. Row and batch counters are cheap enough to leave
// always-on — two atomic adds per batch — but the time.Now pair around
// every Open/Next is not: on a sub-10µs point lookup it costs
// double-digit percent. So clock reads happen only while a timed
// execution is running; everything else keeps exact rows/batches and
// zero Nanos.
var statsMode atomic.Int32

// statsModeMu serializes the (rare) mode recomputation from the two
// independent inputs below.
var statsModeMu sync.Mutex
var statsOff bool   // SetStatsEnabled(false)
var statsTimers int // EnableTiming nesting depth

func recomputeStatsMode() {
	if statsOff {
		statsMode.Store(-1)
		return
	}
	statsMode.Store(int32(statsTimers))
}

// SetStatsEnabled toggles operator counter recording (benchmark
// ablation only; counters are on by default).
func SetStatsEnabled(on bool) {
	statsModeMu.Lock()
	defer statsModeMu.Unlock()
	statsOff = !on
	recomputeStatsMode()
}

// MarkTimed turns on wall-clock operator timing for exactly the plan
// rooted at op, until the returned release func is called. Unlike
// EnableTiming it is scoped: concurrent statements keep the cheap
// count-only path. Marking an already-open plan is allowed (the trace
// hook does, for streaming SELECTs); timing simply starts with the
// next instrumented call on each operator.
func MarkTimed(op Operator) (release func()) {
	forEachStats(op, func(s *OpStats) { s.timed.Store(true) })
	var once sync.Once
	return func() {
		once.Do(func() {
			forEachStats(op, func(s *OpStats) { s.timed.Store(false) })
		})
	}
}

// forEachStats visits the OpStats of every operator in the tree rooted
// at op (shared spool inputs may be visited more than once; callers
// must be idempotent).
func forEachStats(op Operator, fn func(*OpStats)) {
	if st := StatsOf(op); st != nil {
		fn(st)
	}
	switch o := op.(type) {
	case *ctxOperator:
		forEachStats(o.input, fn)
	case *Filter:
		forEachStats(o.Input, fn)
	case *Project:
		forEachStats(o.Input, fn)
	case *Limit:
		forEachStats(o.Input, fn)
	case *Distinct:
		forEachStats(o.Input, fn)
	case *Sort:
		forEachStats(o.Input, fn)
	case *Ordinal:
		forEachStats(o.Input, fn)
	case *HashAggregate:
		forEachStats(o.Input, fn)
	case *HashJoin:
		forEachStats(o.Left, fn)
		forEachStats(o.Right, fn)
	case *NestedLoopJoin:
		forEachStats(o.Left, fn)
		forEachStats(o.Right, fn)
	case *UnionAll:
		for _, in := range o.Inputs {
			forEachStats(in, fn)
		}
	case *Gather:
		for _, f := range o.Fragments {
			forEachStats(f, fn)
		}
	case *SpoolPart:
		forEachStats(o.sp.input, fn)
	}
}

// EnableTiming turns on wall-clock operator timing until the returned
// release func is called. Enabling is process-wide (concurrent
// untimed queries pay the clock cost for the duration — acceptable for
// a diagnostic), and nests: timing stays on until every caller
// releases. Prefer MarkTimed, which scopes the cost to one plan.
func EnableTiming() (release func()) {
	statsModeMu.Lock()
	statsTimers++
	recomputeStatsMode()
	statsModeMu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			statsModeMu.Lock()
			statsTimers--
			recomputeStatsMode()
			statsModeMu.Unlock()
		})
	}
}

// Sentinel begin results for the two untimed modes; record branches on
// them instead of re-loading any flag.
const (
	statsCountOnly = -1 // count rows/batches, skip the clock
	statsSkip      = -2 // recording disabled
)

// begin marks the start of an instrumented call. It returns a start
// timestamp while a timed execution is in flight, else one of the
// sentinels above — a single atomic load on the common path.
func (s *OpStats) begin() int64 {
	switch m := statsMode.Load(); {
	case m < 0:
		return statsSkip
	case m == 0 && !s.timed.Load():
		return statsCountOnly
	}
	return time.Now().UnixNano()
}

// record closes out one Next call: rows/batches whenever a batch was
// produced, wall time only when begin captured a start.
func (s *OpStats) record(t0 int64, b *storage.Batch) {
	if t0 == statsSkip {
		return
	}
	if t0 >= 0 {
		s.Nanos.Add(time.Now().UnixNano() - t0)
	}
	if b != nil {
		s.Batches.Add(1)
		s.Rows.Add(int64(b.Len()))
	}
}

// opened closes out one Open call (blocking operators — sorts, builds,
// aggregations — do their real work there) and stamps the open time.
func (s *OpStats) opened(t0 int64) {
	if t0 < 0 {
		return
	}
	now := time.Now().UnixNano()
	s.Nanos.Add(now - t0)
	s.OpenedNS.Store(now)
}

// closed stamps the close time (timed executions only; an untimed
// query has no open stamp to pair it with).
func (s *OpStats) closed() {
	if statsMode.Load() <= 0 && !s.timed.Load() {
		return
	}
	s.ClosedNS.Store(time.Now().UnixNano())
}

// BusyTime returns the cumulative wall time recorded so far.
func (s *OpStats) BusyTime() time.Duration { return time.Duration(s.Nanos.Load()) }

// Instrumented is implemented by every operator that carries an
// OpStats counter set.
type Instrumented interface {
	OpStats() *OpStats
}

// StatsOf returns op's counters, or nil for an uninstrumented operator
// (none of the planner-emitted ones are).
func StatsOf(op Operator) *OpStats {
	if i, ok := op.(Instrumented); ok {
		return i.OpStats()
	}
	return nil
}
