package exec

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/storage"
)

// HashAggregate groups its input by the GroupBy expressions and
// evaluates the aggregates per group. Its output schema is the group
// columns followed by one column per aggregate. With no GroupBy
// expressions it produces exactly one row (the SQL scalar-aggregate
// case), even for empty input.
type HashAggregate struct {
	Input   Operator
	GroupBy []expr.Expr
	Aggs    []*expr.Aggregate
	// Names provides output column names: len(GroupBy)+len(Aggs).
	Names []string

	out    storage.Schema
	result *storage.Batch
	sent   bool
}

// Schema implements Operator.
func (a *HashAggregate) Schema() storage.Schema {
	if a.out.Len() == 0 {
		cols := make([]storage.ColumnDef, 0, len(a.GroupBy)+len(a.Aggs))
		for i, g := range a.GroupBy {
			cols = append(cols, storage.Col(a.Names[i], g.Type()))
		}
		for i, ag := range a.Aggs {
			t, err := ag.ResultType()
			if err != nil {
				t = storage.TypeFloat64
			}
			cols = append(cols, storage.Col(a.Names[len(a.GroupBy)+i], t))
		}
		a.out = storage.NewSchema(cols...)
	}
	return a.out
}

type aggGroup struct {
	keys []storage.Value
	accs []*expr.Accumulator
}

// fastKeyable reports whether the vectorized single-int64-key path
// applies: one INTEGER group key, no DISTINCT aggregates.
func (a *HashAggregate) fastKeyable() bool {
	if len(a.GroupBy) != 1 || a.GroupBy[0].Type() != storage.TypeInt64 {
		return false
	}
	for _, ag := range a.Aggs {
		if ag.Distinct {
			return false
		}
	}
	return true
}

// openFast consumes the input with the vectorized path: the group key
// and every aggregate input are evaluated as whole columns per batch,
// and groups live in an int64-keyed map.
func (a *HashAggregate) openFast() error {
	type group struct {
		key  int64
		accs []*expr.Accumulator
	}
	groups := make(map[int64]*group)
	var order []*group
	for {
		b, err := a.Input.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		keyCol, err := expr.EvalVector(a.GroupBy[0], b)
		if err != nil {
			return err
		}
		keys, ok := keyCol.(*storage.Int64Column)
		if !ok || storage.NullsOf(keys).Any() {
			return a.openSlowFrom(b, keyCol)
		}
		inputs := make([]storage.Column, len(a.Aggs))
		for k, ag := range a.Aggs {
			if ag.Kind == expr.AggCountStar {
				continue
			}
			col, err := expr.EvalVector(ag.Input, b)
			if err != nil {
				return err
			}
			inputs[k] = col
		}
		kv := keys.Int64s()
		for i := range kv {
			g := groups[kv[i]]
			if g == nil {
				g = &group{key: kv[i], accs: make([]*expr.Accumulator, len(a.Aggs))}
				for k, ag := range a.Aggs {
					g.accs[k] = ag.NewAccumulator()
				}
				groups[kv[i]] = g
				order = append(order, g)
			}
			for k, ag := range a.Aggs {
				if ag.Kind == expr.AggCountStar {
					g.accs[k].Add(storage.Int64(1))
					continue
				}
				g.accs[k].Add(inputs[k].Value(i))
			}
		}
	}
	a.result = storage.NewBatch(a.out)
	for _, g := range order {
		row := make([]storage.Value, 0, a.out.Len())
		row = append(row, storage.Int64(g.key))
		for _, acc := range g.accs {
			row = append(row, acc.Result())
		}
		if err := a.result.AppendRow(row...); err != nil {
			return err
		}
	}
	return nil
}

// openSlowFrom exists for the rare case where the fast path discovers
// NULL group keys mid-stream; it restarts with the generic path.
func (a *HashAggregate) openSlowFrom(*storage.Batch, storage.Column) error {
	return fmt.Errorf("exec: aggregate fast path hit NULL group keys; re-run without fast path")
}

// Open implements Operator: it consumes the whole input and builds the
// grouped result.
func (a *HashAggregate) Open() error {
	a.Schema()
	a.sent = false
	if err := a.Input.Open(); err != nil {
		return err
	}
	defer a.Input.Close()

	if a.fastKeyable() {
		// Probe the key type on the first batch inside openFast; NULL
		// keys abort to the generic path below via error.
		if err := a.openFast(); err == nil {
			return nil
		}
		// Restart the input for the generic path.
		if err := a.Input.Close(); err != nil {
			return err
		}
		if err := a.Input.Open(); err != nil {
			return err
		}
	}

	groups := make(map[uint64][]*aggGroup)
	var order []*aggGroup // deterministic output order: first appearance

	newGroup := func(keys []storage.Value) *aggGroup {
		g := &aggGroup{keys: keys, accs: make([]*expr.Accumulator, len(a.Aggs))}
		for i, ag := range a.Aggs {
			g.accs[i] = ag.NewAccumulator()
		}
		order = append(order, g)
		return g
	}

	if len(a.GroupBy) == 0 {
		newGroup(nil)
	}

	for {
		b, err := a.Input.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for i := 0; i < b.Len(); i++ {
			row := expr.Row{Batch: b, Idx: i}
			var g *aggGroup
			if len(a.GroupBy) == 0 {
				g = order[0]
			} else {
				keys := make([]storage.Value, len(a.GroupBy))
				for k, ge := range a.GroupBy {
					v, err := ge.Eval(row)
					if err != nil {
						return err
					}
					keys[k] = v
				}
				h := storage.HashRow(keys)
				for _, cand := range groups[h] {
					if rowsEqual(cand.keys, keys) {
						g = cand
						break
					}
				}
				if g == nil {
					g = newGroup(keys)
					groups[h] = append(groups[h], g)
				}
			}
			for k, ag := range a.Aggs {
				var v storage.Value
				if ag.Kind == expr.AggCountStar {
					v = storage.Int64(1)
				} else {
					var err error
					v, err = ag.Input.Eval(row)
					if err != nil {
						return err
					}
				}
				g.accs[k].Add(v)
			}
		}
	}

	a.result = storage.NewBatch(a.out)
	for _, g := range order {
		row := make([]storage.Value, 0, a.out.Len())
		row = append(row, g.keys...)
		for _, acc := range g.accs {
			row = append(row, acc.Result())
		}
		if err := a.result.AppendRow(row...); err != nil {
			return err
		}
	}
	return nil
}

// Next implements Operator.
func (a *HashAggregate) Next() (*storage.Batch, error) {
	if a.sent || a.result == nil || a.result.Len() == 0 {
		return nil, nil
	}
	a.sent = true
	return a.result, nil
}

// Close implements Operator.
func (a *HashAggregate) Close() error {
	a.result = nil
	return nil
}
