package exec

import (
	"fmt"
	"sort"

	"repro/internal/expr"
	"repro/internal/sched"
	"repro/internal/storage"
)

// HashAggregate groups its input by the GroupBy expressions and
// evaluates the aggregates per group. Its output schema is the group
// columns followed by one column per aggregate. With no GroupBy
// expressions it produces exactly one row (the SQL scalar-aggregate
// case), even for empty input.
//
// With Workers > 1 a grouped aggregate runs in two parallel stages:
// the group-key and aggregate-input expressions are evaluated per
// batch on the worker pool, then the fold runs on partitioned maps —
// each worker owns the hash partition of group keys assigned to it and
// folds every input row of its groups, in global row order. Because a
// group lives entirely inside one partition, per-group accumulation
// order is identical to the serial fold, which keeps floating-point
// SUM/AVG results byte-identical at any worker count; group output
// order (first appearance) is restored by a final sort on each group's
// first input row.
//
// The parallel fold buffers at most aggWindowBatches input batches at
// a time (the serial fold streams with O(groups) state): inputs that
// fit in one window use the one-shot partitioned fold; larger inputs
// run the windowed fold, which consumes the input window by window
// into persistent partitioned group state — O(window + groups) memory
// instead of O(input).
type HashAggregate struct {
	Input   Operator
	GroupBy []expr.Expr
	Aggs    []*expr.Aggregate
	// Names provides output column names: len(GroupBy)+len(Aggs).
	Names []string
	// Workers caps fold parallelism; 0 or 1 folds serially.
	Workers int
	// Budget is the shared extra-worker budget (nil = unlimited).
	Budget *sched.Budget
	// Mem is the statement memory grant (nil = unlimited): buffered
	// input batches and per-group state reserve against it, and a denial
	// restarts the aggregate into the out-of-core partitioned fold. FS
	// creates spill files (nil = the default temp-file filesystem).
	Mem *sched.MemBudget
	FS  storage.SpillFS

	out    storage.Schema
	result *storage.Batch
	pos    int
	// spilling marks the restarted out-of-core fold, which bounds its
	// own memory and must not signal a spill again.
	spilling bool
	mt       memTracker
	stats    OpStats
}

// errAggSpill aborts the in-memory fold when a reservation is denied;
// open restarts the input into openSpilled.
var errAggSpill = fmt.Errorf("exec: aggregate exceeded memory grant; restart with spill fold")

// groupBytes estimates one group's resident state for accounting: map
// slot, first-row bookkeeping, keys and accumulators.
func (a *HashAggregate) groupBytes() int64 {
	return 64 + 32*int64(len(a.GroupBy)) + 48*int64(len(a.Aggs))
}

// OpStats implements Instrumented.
func (a *HashAggregate) OpStats() *OpStats { return &a.stats }

// aggWindowBatches bounds how many input batches the parallel grouped
// fold buffers at once. It is a variable so tests can exercise the
// windowed path on small inputs.
var aggWindowBatches = 64

// Schema implements Operator.
func (a *HashAggregate) Schema() storage.Schema {
	if a.out.Len() == 0 {
		cols := make([]storage.ColumnDef, 0, len(a.GroupBy)+len(a.Aggs))
		for i, g := range a.GroupBy {
			cols = append(cols, storage.Col(a.Names[i], g.Type()))
		}
		for i, ag := range a.Aggs {
			t, err := ag.ResultType()
			if err != nil {
				t = storage.TypeFloat64
			}
			cols = append(cols, storage.Col(a.Names[len(a.GroupBy)+i], t))
		}
		a.out = storage.NewSchema(cols...)
	}
	return a.out
}

type aggGroup struct {
	keys []storage.Value
	accs []*expr.Accumulator
}

// fastKeyable reports whether the vectorized single-int64-key path
// applies: one INTEGER group key, no DISTINCT aggregates.
func (a *HashAggregate) fastKeyable() bool {
	if len(a.GroupBy) != 1 || a.GroupBy[0].Type() != storage.TypeInt64 {
		return false
	}
	for _, ag := range a.Aggs {
		if ag.Distinct {
			return false
		}
	}
	return true
}

// batchIter returns a next-func over a pre-collected batch list.
func batchIter(batches []*storage.Batch) func() (*storage.Batch, error) {
	i := 0
	return func() (*storage.Batch, error) {
		if i >= len(batches) {
			return nil, nil
		}
		b := batches[i]
		i++
		return b, nil
	}
}

// collectUpTo drains at most max non-empty batches from an opened
// operator. more reports whether the cap was hit (the input may hold
// further batches).
func collectUpTo(in Operator, max int) (batches []*storage.Batch, more bool, err error) {
	for len(batches) < max {
		b, err := in.Next()
		if err != nil {
			return nil, false, err
		}
		if b == nil {
			return batches, false, nil
		}
		if b.Len() > 0 {
			batches = append(batches, b)
		}
	}
	return batches, true, nil
}

// collectWindow is collectUpTo against the aggregate's input with each
// batch reserved against the memory grant; a denial aborts the
// in-memory fold with errAggSpill (the spill fold re-reads the input,
// so the partial window is simply dropped).
func (a *HashAggregate) collectWindow(max int) (batches []*storage.Batch, more bool, reserved int64, err error) {
	for len(batches) < max {
		b, err := a.Input.Next()
		if err != nil {
			return nil, false, reserved, err
		}
		if b == nil {
			return batches, false, reserved, nil
		}
		if b.Len() == 0 {
			continue
		}
		if !a.spilling {
			n := storage.BatchBytes(b)
			if !a.mt.reserve(n) {
				return nil, false, reserved, errAggSpill
			}
			reserved += n
		}
		batches = append(batches, b)
	}
	return batches, true, reserved, nil
}

func rowsOf(batches []*storage.Batch) int {
	rows := 0
	for _, b := range batches {
		rows += b.Len()
	}
	return rows
}

// openFast consumes the input with the vectorized path: the group key
// and every aggregate input are evaluated as whole columns per batch,
// and groups live in an int64-keyed map.
func (a *HashAggregate) openFast(next func() (*storage.Batch, error)) error {
	type group struct {
		key  int64
		accs []*expr.Accumulator
	}
	groups := make(map[int64]*group)
	var order []*group
	for {
		b, err := next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		keyCol, err := expr.EvalVector(a.GroupBy[0], b)
		if err != nil {
			return err
		}
		keys, ok := keyCol.(*storage.Int64Column)
		if !ok || storage.NullsOf(keys).Any() {
			return errFastPathNulls
		}
		inputs := make([]storage.Column, len(a.Aggs))
		for k, ag := range a.Aggs {
			if ag.Kind == expr.AggCountStar {
				continue
			}
			col, err := expr.EvalVector(ag.Input, b)
			if err != nil {
				return err
			}
			inputs[k] = col
		}
		kv := keys.Int64s()
		for i := range kv {
			g := groups[kv[i]]
			if g == nil {
				if !a.spilling && !a.mt.reserve(a.groupBytes()) {
					return errAggSpill
				}
				g = &group{key: kv[i], accs: newAccumulators(a.Aggs)}
				groups[kv[i]] = g
				order = append(order, g)
			}
			for k, ag := range a.Aggs {
				if ag.Kind == expr.AggCountStar {
					g.accs[k].Add(storage.Int64(1))
					continue
				}
				g.accs[k].Add(inputs[k].Value(i))
			}
		}
	}
	a.result = storage.NewBatch(a.out)
	for _, g := range order {
		row := make([]storage.Value, 0, a.out.Len())
		row = append(row, storage.Int64(g.key))
		for _, acc := range g.accs {
			row = append(row, acc.Result())
		}
		if err := a.result.AppendRow(row...); err != nil {
			return err
		}
	}
	return nil
}

// errFastPathNulls aborts the fast path when it discovers NULL group
// keys mid-stream; the caller restarts with the generic path.
var errFastPathNulls = fmt.Errorf("exec: aggregate fast path hit NULL group keys; re-run without fast path")

func newAccumulators(aggs []*expr.Aggregate) []*expr.Accumulator {
	accs := make([]*expr.Accumulator, len(aggs))
	for i, ag := range aggs {
		accs[i] = ag.NewAccumulator()
	}
	return accs
}

// Open implements Operator: it consumes the whole input and builds the
// grouped result.
func (a *HashAggregate) Open() error {
	t0 := a.stats.begin()
	err := a.open()
	a.stats.opened(t0)
	return err
}

func (a *HashAggregate) open() error {
	a.Schema()
	a.pos = 0
	a.mt = memTracker{mem: a.Mem}
	a.spilling = false
	err := a.openBudgeted()
	if err == errAggSpill {
		// The working set outgrew the grant: drop everything buffered
		// and restart the input into the out-of-core partitioned fold
		// (the same restart precedent as the fast path's NULL bailout).
		a.mt.releaseAll()
		return a.openSpilled()
	}
	return err
}

// openBudgeted is the in-memory fold, aborting with errAggSpill when a
// reservation is denied.
func (a *HashAggregate) openBudgeted() error {
	if err := a.Input.Open(); err != nil {
		return err
	}
	defer a.Input.Close()

	if len(a.GroupBy) > 0 && a.Workers > 1 {
		batches, more, reserved, err := a.collectWindow(aggWindowBatches)
		if err != nil {
			return err
		}
		if more {
			// The input exceeds one window: fold it window by window
			// so buffering stays bounded.
			return a.openWindowed(batches, reserved)
		}
		if w := splitParts(rowsOf(batches), a.Workers); w > 1 {
			return a.openPartitioned(batches, w)
		}
		// Too small to parallelize; fold the collected batches serially.
		if a.fastKeyable() {
			if err := a.openFast(batchIter(batches)); err == nil {
				return nil
			} else if err != errFastPathNulls {
				return err
			}
		}
		return a.openSerial(batchIter(batches))
	}

	if a.fastKeyable() {
		if err := a.openFast(a.Input.Next); err == nil {
			return nil
		} else if err != errFastPathNulls {
			return err
		}
		// Restart the input for the generic path.
		if err := a.Input.Close(); err != nil {
			return err
		}
		if err := a.Input.Open(); err != nil {
			return err
		}
	}
	return a.openSerial(a.Input.Next)
}

// openSerial is the generic fold: arbitrary key expressions, evaluated
// row at a time.
func (a *HashAggregate) openSerial(next func() (*storage.Batch, error)) error {
	groups := make(map[uint64][]*aggGroup)
	var order []*aggGroup // deterministic output order: first appearance

	newGroup := func(keys []storage.Value) *aggGroup {
		g := &aggGroup{keys: keys, accs: newAccumulators(a.Aggs)}
		order = append(order, g)
		return g
	}

	if len(a.GroupBy) == 0 {
		newGroup(nil)
	}

	for {
		b, err := next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for i := 0; i < b.Len(); i++ {
			row := expr.Row{Batch: b, Idx: i}
			var g *aggGroup
			if len(a.GroupBy) == 0 {
				g = order[0]
			} else {
				keys := make([]storage.Value, len(a.GroupBy))
				for k, ge := range a.GroupBy {
					v, err := ge.Eval(row)
					if err != nil {
						return err
					}
					keys[k] = v
				}
				h := storage.HashRow(keys)
				for _, cand := range groups[h] {
					if rowsEqual(cand.keys, keys) {
						g = cand
						break
					}
				}
				if g == nil {
					if !a.spilling && !a.mt.reserve(a.groupBytes()) {
						return errAggSpill
					}
					g = newGroup(keys)
					groups[h] = append(groups[h], g)
				}
			}
			if err := foldRow(g.accs, a.Aggs, row); err != nil {
				return err
			}
		}
	}

	a.result = storage.NewBatch(a.out)
	for _, g := range order {
		row := make([]storage.Value, 0, a.out.Len())
		row = append(row, g.keys...)
		for _, acc := range g.accs {
			row = append(row, acc.Result())
		}
		if err := a.result.AppendRow(row...); err != nil {
			return err
		}
	}
	return nil
}

// foldRow folds one input row into a group's accumulators.
func foldRow(accs []*expr.Accumulator, aggs []*expr.Aggregate, row expr.Row) error {
	for k, ag := range aggs {
		var v storage.Value
		if ag.Kind == expr.AggCountStar {
			v = storage.Int64(1)
		} else {
			var err error
			v, err = ag.Input.Eval(row)
			if err != nil {
				return err
			}
		}
		accs[k].Add(v)
	}
	return nil
}

// mergedGroup is one group's finished output row plus the global index
// of its first input row, used to restore serial emission order.
type mergedGroup struct {
	first int
	row   []storage.Value
}

// openPartitioned is the parallel grouped fold over pre-collected
// batches: stage 1 evaluates key (and, on the fast path, aggregate
// input) expressions per batch on the worker pool; stage 2 folds on w
// partitioned maps, each worker visiting every row but claiming only
// the keys that hash into its partition.
func (a *HashAggregate) openPartitioned(batches []*storage.Batch, w int) error {
	starts := make([]int, len(batches))
	rows := 0
	for i, b := range batches {
		starts[i] = rows
		rows += b.Len()
	}

	var merged []mergedGroup
	var err error
	if a.fastKeyable() {
		merged, err = a.foldFastPartitioned(batches, starts, w)
		if err == errFastPathNulls {
			merged, err = a.foldSlowPartitioned(batches, starts, w)
		}
	} else {
		merged, err = a.foldSlowPartitioned(batches, starts, w)
	}
	if err != nil {
		return err
	}

	sort.Slice(merged, func(x, y int) bool { return merged[x].first < merged[y].first })
	a.result = storage.NewBatch(a.out)
	for _, g := range merged {
		if err := a.result.AppendRow(g.row...); err != nil {
			return err
		}
	}
	return nil
}

// foldFastPartitioned is the int64-key parallel fold.
func (a *HashAggregate) foldFastPartitioned(batches []*storage.Batch, starts []int, w int) ([]mergedGroup, error) {
	type evalBatch struct {
		keys   []int64
		inputs []storage.Column
	}
	evals := make([]evalBatch, len(batches))
	errs := make([]error, len(batches))
	sched.ForEach(a.Budget, len(batches), w, func(bi int) {
		b := batches[bi]
		keyCol, err := expr.EvalVector(a.GroupBy[0], b)
		if err != nil {
			errs[bi] = err
			return
		}
		keys, ok := keyCol.(*storage.Int64Column)
		if !ok || storage.NullsOf(keys).Any() {
			errs[bi] = errFastPathNulls
			return
		}
		ev := evalBatch{keys: keys.Int64s(), inputs: make([]storage.Column, len(a.Aggs))}
		for k, ag := range a.Aggs {
			if ag.Kind == expr.AggCountStar {
				continue
			}
			col, err := expr.EvalVector(ag.Input, b)
			if err != nil {
				errs[bi] = err
				return
			}
			ev.inputs[k] = col
		}
		evals[bi] = ev
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	type group struct {
		key   int64
		first int
		accs  []*expr.Accumulator
	}
	parts := make([][]*group, w)
	sched.ForEach(a.Budget, w, w, func(p int) {
		m := make(map[int64]*group)
		var order []*group
		for bi := range evals {
			start := starts[bi]
			for i, k := range evals[bi].keys {
				if int(uint64(k)%uint64(w)) != p {
					continue
				}
				g := m[k]
				if g == nil {
					g = &group{key: k, first: start + i, accs: newAccumulators(a.Aggs)}
					m[k] = g
					order = append(order, g)
				}
				for ai, ag := range a.Aggs {
					if ag.Kind == expr.AggCountStar {
						g.accs[ai].Add(storage.Int64(1))
						continue
					}
					g.accs[ai].Add(evals[bi].inputs[ai].Value(i))
				}
			}
		}
		parts[p] = order
	})

	var merged []mergedGroup
	for _, order := range parts {
		for _, g := range order {
			row := make([]storage.Value, 0, a.out.Len())
			row = append(row, storage.Int64(g.key))
			for _, acc := range g.accs {
				row = append(row, acc.Result())
			}
			merged = append(merged, mergedGroup{first: g.first, row: row})
		}
	}
	return merged, nil
}

// foldSlowPartitioned is the generic parallel fold: stage 1 computes
// key values and hashes per row; stage 2 folds each hash partition on
// its own worker, evaluating aggregate inputs only for owned rows.
func (a *HashAggregate) foldSlowPartitioned(batches []*storage.Batch, starts []int, w int) ([]mergedGroup, error) {
	type evalBatch struct {
		keys   [][]storage.Value
		hashes []uint64
	}
	evals := make([]evalBatch, len(batches))
	errs := make([]error, len(batches))
	sched.ForEach(a.Budget, len(batches), w, func(bi int) {
		b := batches[bi]
		n := b.Len()
		ev := evalBatch{keys: make([][]storage.Value, n), hashes: make([]uint64, n)}
		for i := 0; i < n; i++ {
			row := expr.Row{Batch: b, Idx: i}
			keys := make([]storage.Value, len(a.GroupBy))
			for k, ge := range a.GroupBy {
				v, err := ge.Eval(row)
				if err != nil {
					errs[bi] = err
					return
				}
				keys[k] = v
			}
			ev.keys[i] = keys
			ev.hashes[i] = storage.HashRow(keys)
		}
		evals[bi] = ev
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	type group struct {
		keys  []storage.Value
		first int
		accs  []*expr.Accumulator
	}
	parts := make([][]*group, w)
	perrs := make([]error, w)
	sched.ForEach(a.Budget, w, w, func(p int) {
		m := make(map[uint64][]*group)
		var order []*group
		for bi := range evals {
			b := batches[bi]
			start := starts[bi]
			for i, h := range evals[bi].hashes {
				if int(h%uint64(w)) != p {
					continue
				}
				var g *group
				for _, cand := range m[h] {
					if rowsEqual(cand.keys, evals[bi].keys[i]) {
						g = cand
						break
					}
				}
				if g == nil {
					g = &group{keys: evals[bi].keys[i], first: start + i, accs: newAccumulators(a.Aggs)}
					m[h] = append(m[h], g)
					order = append(order, g)
				}
				if err := foldRow(g.accs, a.Aggs, expr.Row{Batch: b, Idx: i}); err != nil {
					perrs[p] = err
					return
				}
			}
		}
		parts[p] = order
	})
	for _, err := range perrs {
		if err != nil {
			return nil, err
		}
	}

	var merged []mergedGroup
	for _, order := range parts {
		for _, g := range order {
			row := make([]storage.Value, 0, a.out.Len())
			row = append(row, g.keys...)
			for _, acc := range g.accs {
				row = append(row, acc.Result())
			}
			merged = append(merged, mergedGroup{first: g.first, row: row})
		}
	}
	return merged, nil
}

// pgroup is one group's persistent fold state in the windowed
// partitioned fold. A group starts on the int64 fast path (keys nil)
// and may migrate to the generic representation mid-stream.
type pgroup struct {
	key   int64           // fast-path key (single non-null INTEGER)
	keys  []storage.Value // generic keys; nil while on the fast path
	hash  uint64          // HashRow(keys), valid once keys is set
	first int             // global index of the group's first input row
	accs  []*expr.Accumulator
}

// openWindowed is the bounded-buffering parallel grouped fold: the
// input is consumed in windows of at most aggWindowBatches batches,
// each window running the two parallel stages (expression eval per
// batch, then a fold on w hash partitions) into group state that
// persists across windows. Every group is folded in global row order
// regardless of w, and output order is restored by each group's first
// input row, so results stay byte-identical at any worker count. The
// fold starts on the vectorized int64-key path when the shape allows
// and migrates all groups to the generic path if a NULL or non-integer
// key appears mid-stream — accumulated state carries over, so no input
// is re-read.
func (a *HashAggregate) openWindowed(window []*storage.Batch, reserved int64) error {
	w := splitParts(rowsOf(window), a.Workers)
	if w < 1 {
		w = 1
	}
	fast := a.fastKeyable()
	fastParts := make([]map[int64]*pgroup, w)
	slowParts := make([]map[uint64][]*pgroup, w)
	lists := make([][]*pgroup, w)
	for p := 0; p < w; p++ {
		fastParts[p] = make(map[int64]*pgroup)
		slowParts[p] = make(map[uint64][]*pgroup)
	}
	groupCount := func() int {
		n := 0
		for _, list := range lists {
			n += len(list)
		}
		return n
	}

	offset := 0
	for len(window) > 0 {
		prevGroups := groupCount()
		if fast {
			err := a.foldWindowFast(window, offset, w, fastParts, lists)
			if err == errFastPathNulls {
				// Stage 1 rejected the window before any row of it was
				// folded: migrate every group to the generic path and
				// re-fold this window there.
				fast = false
				migrateGroups(fastParts, slowParts, lists, w)
			} else if err != nil {
				return err
			}
		}
		if !fast {
			if err := a.foldWindowSlow(window, offset, w, slowParts, lists); err != nil {
				return err
			}
		}
		offset += rowsOf(window)
		// The window is folded: trade its batch reservation for the
		// group state it grew.
		a.mt.release(reserved)
		if !a.mt.reserve(int64(groupCount()-prevGroups) * a.groupBytes()) {
			return errAggSpill
		}
		var err error
		window, _, reserved, err = a.collectWindow(aggWindowBatches)
		if err != nil {
			return err
		}
	}

	var merged []mergedGroup
	for _, list := range lists {
		for _, g := range list {
			row := make([]storage.Value, 0, a.out.Len())
			if g.keys != nil {
				row = append(row, g.keys...)
			} else {
				row = append(row, storage.Int64(g.key))
			}
			for _, acc := range g.accs {
				row = append(row, acc.Result())
			}
			merged = append(merged, mergedGroup{first: g.first, row: row})
		}
	}
	sort.Slice(merged, func(x, y int) bool { return merged[x].first < merged[y].first })
	a.result = storage.NewBatch(a.out)
	for _, g := range merged {
		if err := a.result.AppendRow(g.row...); err != nil {
			return err
		}
	}
	return nil
}

// migrateGroups moves every fast-path group to the generic
// representation, re-routing it to the partition its row hash selects
// so future generic folds find it.
func migrateGroups(fastParts []map[int64]*pgroup, slowParts []map[uint64][]*pgroup, lists [][]*pgroup, w int) {
	newLists := make([][]*pgroup, w)
	for p, list := range lists {
		for _, g := range list {
			g.keys = []storage.Value{storage.Int64(g.key)}
			g.hash = storage.HashRow(g.keys)
			np := int(g.hash % uint64(w))
			slowParts[np][g.hash] = append(slowParts[np][g.hash], g)
			newLists[np] = append(newLists[np], g)
		}
		fastParts[p] = nil
	}
	copy(lists, newLists)
}

// foldWindowFast folds one window on the int64-key path. It returns
// errFastPathNulls — with no rows of the window folded — when a NULL
// or non-integer key appears.
func (a *HashAggregate) foldWindowFast(window []*storage.Batch, offset, w int, parts []map[int64]*pgroup, lists [][]*pgroup) error {
	type evalBatch struct {
		keys   []int64
		inputs []storage.Column
	}
	evals := make([]evalBatch, len(window))
	errs := make([]error, len(window))
	sched.ForEach(a.Budget, len(window), a.Workers, func(bi int) {
		b := window[bi]
		keyCol, err := expr.EvalVector(a.GroupBy[0], b)
		if err != nil {
			errs[bi] = err
			return
		}
		keys, ok := keyCol.(*storage.Int64Column)
		if !ok || storage.NullsOf(keys).Any() {
			errs[bi] = errFastPathNulls
			return
		}
		ev := evalBatch{keys: keys.Int64s(), inputs: make([]storage.Column, len(a.Aggs))}
		for k, ag := range a.Aggs {
			if ag.Kind == expr.AggCountStar {
				continue
			}
			col, err := expr.EvalVector(ag.Input, b)
			if err != nil {
				errs[bi] = err
				return
			}
			ev.inputs[k] = col
		}
		evals[bi] = ev
	})
	sawNulls := false
	for _, err := range errs {
		if err == errFastPathNulls {
			sawNulls = true
		} else if err != nil {
			return err
		}
	}
	if sawNulls {
		return errFastPathNulls
	}

	starts := windowStarts(window, offset)
	sched.ForEach(a.Budget, w, a.Workers, func(p int) {
		m := parts[p]
		for bi := range evals {
			start := starts[bi]
			for i, k := range evals[bi].keys {
				if int(uint64(k)%uint64(w)) != p {
					continue
				}
				g := m[k]
				if g == nil {
					g = &pgroup{key: k, first: start + i, accs: newAccumulators(a.Aggs)}
					m[k] = g
					lists[p] = append(lists[p], g)
				}
				for ai, ag := range a.Aggs {
					if ag.Kind == expr.AggCountStar {
						g.accs[ai].Add(storage.Int64(1))
						continue
					}
					g.accs[ai].Add(evals[bi].inputs[ai].Value(i))
				}
			}
		}
	})
	return nil
}

// foldWindowSlow folds one window on the generic path: stage 1
// computes key values and hashes per row in parallel; stage 2 folds
// each hash partition on its own worker.
func (a *HashAggregate) foldWindowSlow(window []*storage.Batch, offset, w int, parts []map[uint64][]*pgroup, lists [][]*pgroup) error {
	type evalBatch struct {
		keys   [][]storage.Value
		hashes []uint64
	}
	evals := make([]evalBatch, len(window))
	errs := make([]error, len(window))
	sched.ForEach(a.Budget, len(window), a.Workers, func(bi int) {
		b := window[bi]
		n := b.Len()
		ev := evalBatch{keys: make([][]storage.Value, n), hashes: make([]uint64, n)}
		for i := 0; i < n; i++ {
			row := expr.Row{Batch: b, Idx: i}
			keys := make([]storage.Value, len(a.GroupBy))
			for k, ge := range a.GroupBy {
				v, err := ge.Eval(row)
				if err != nil {
					errs[bi] = err
					return
				}
				keys[k] = v
			}
			ev.keys[i] = keys
			ev.hashes[i] = storage.HashRow(keys)
		}
		evals[bi] = ev
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	starts := windowStarts(window, offset)
	perrs := make([]error, w)
	sched.ForEach(a.Budget, w, a.Workers, func(p int) {
		m := parts[p]
		for bi := range evals {
			b := window[bi]
			start := starts[bi]
			for i, h := range evals[bi].hashes {
				if int(h%uint64(w)) != p {
					continue
				}
				var g *pgroup
				for _, cand := range m[h] {
					if rowsEqual(cand.keys, evals[bi].keys[i]) {
						g = cand
						break
					}
				}
				if g == nil {
					g = &pgroup{keys: evals[bi].keys[i], hash: h, first: start + i, accs: newAccumulators(a.Aggs)}
					m[h] = append(m[h], g)
					lists[p] = append(lists[p], g)
				}
				if err := foldRow(g.accs, a.Aggs, expr.Row{Batch: b, Idx: i}); err != nil {
					perrs[p] = err
					return
				}
			}
		}
	})
	for _, err := range perrs {
		if err != nil {
			return err
		}
	}
	return nil
}

// aggSpillParts is the partition fan-out of the out-of-core fold.
const aggSpillParts = 16

// openSpilled is the out-of-core grouped fold: the input streams to
// aggSpillParts hash-partitioned runs on disk — raw rows tagged with
// their global index, not accumulator state, because float accumulation
// order must match the serial fold — then each partition is folded
// serially in row order. A group's rows all land in one partition and
// stay in stream order there, so per-group accumulation order equals
// the serial fold's; sorting finished groups by first-row index
// restores the serial output order, making the result byte-identical
// to the in-memory fold. Resident state is one partition's groups plus
// a batch per partition — the aggregate's working floor.
func (a *HashAggregate) openSpilled() error {
	a.spilling = true
	if err := a.Input.Open(); err != nil {
		return err
	}
	defer a.Input.Close()
	if len(a.GroupBy) == 0 {
		// Scalar aggregates fold in O(1) state; stream serially.
		return a.openSerial(a.Input.Next)
	}
	is := a.Input.Schema()
	cols := make([]storage.ColumnDef, 0, is.Len()+1)
	cols = append(cols, is.Cols...)
	cols = append(cols, storage.Col("__idx", storage.TypeInt64))
	ext := storage.NewSchema(cols...)
	fs := a.FS
	if fs == nil {
		fs = storage.DefaultSpillFS
	}
	var ws [aggSpillParts]*storage.RunWriter
	abort := func() {
		for _, w := range ws {
			if w != nil {
				w.Abort()
			}
		}
	}
	var pend [aggSpillParts]*storage.Batch
	write := func(k int) error {
		if ws[k] == nil {
			var err error
			ws[k], err = storage.NewRunWriter(fs, ext)
			if err != nil {
				return err
			}
		}
		err := ws[k].Write(pend[k])
		pend[k] = nil
		return err
	}
	idx := int64(0)
	for {
		b, err := a.Input.Next()
		if err != nil {
			abort()
			return err
		}
		if b == nil {
			break
		}
		for i := 0; i < b.Len(); i++ {
			row := expr.Row{Batch: b, Idx: i}
			keys := make([]storage.Value, len(a.GroupBy))
			for k, ge := range a.GroupBy {
				v, err := ge.Eval(row)
				if err != nil {
					abort()
					return err
				}
				keys[k] = v
			}
			k := int(storage.HashRow(keys) % aggSpillParts)
			if pend[k] == nil {
				pend[k] = storage.NewBatch(ext)
			}
			if err := pend[k].AppendRow(append(b.Row(i), storage.Int64(idx))...); err != nil {
				abort()
				return err
			}
			idx++
			if pend[k].Len() >= storage.BatchSize {
				if err := write(k); err != nil {
					abort()
					return err
				}
			}
		}
	}
	for k := range pend {
		if pend[k] != nil && pend[k].Len() > 0 {
			if err := write(k); err != nil {
				abort()
				return err
			}
		}
	}
	var merged []mergedGroup
	for k := range ws {
		if ws[k] == nil {
			continue
		}
		run, err := ws[k].Finish()
		ws[k] = nil
		if err != nil {
			abort()
			return err
		}
		a.stats.spilled(run)
		err = a.foldSpillRun(run, is, &merged)
		run.Close()
		if err != nil {
			abort()
			return err
		}
	}
	sort.Slice(merged, func(x, y int) bool { return merged[x].first < merged[y].first })
	a.result = storage.NewBatch(a.out)
	for _, g := range merged {
		if err := a.result.AppendRow(g.row...); err != nil {
			return err
		}
	}
	return nil
}

// foldSpillRun folds one partition run with the generic serial fold,
// appending its finished groups to merged.
func (a *HashAggregate) foldSpillRun(run *storage.SpillRun, is storage.Schema, merged *[]mergedGroup) error {
	type sgroup struct {
		keys  []storage.Value
		first int
		accs  []*expr.Accumulator
	}
	groups := make(map[uint64][]*sgroup)
	var order []*sgroup
	rr := run.Reader()
	for {
		b, err := rr.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		nc := len(b.Cols) - 1
		core := &storage.Batch{Schema: is, Cols: b.Cols[:nc]}
		idxs := b.Cols[nc].(*storage.Int64Column).Int64s()
		for i := 0; i < b.Len(); i++ {
			row := expr.Row{Batch: core, Idx: i}
			keys := make([]storage.Value, len(a.GroupBy))
			for k, ge := range a.GroupBy {
				v, err := ge.Eval(row)
				if err != nil {
					return err
				}
				keys[k] = v
			}
			h := storage.HashRow(keys)
			var g *sgroup
			for _, cand := range groups[h] {
				if rowsEqual(cand.keys, keys) {
					g = cand
					break
				}
			}
			if g == nil {
				g = &sgroup{keys: keys, first: int(idxs[i]), accs: newAccumulators(a.Aggs)}
				groups[h] = append(groups[h], g)
				order = append(order, g)
			}
			if err := foldRow(g.accs, a.Aggs, row); err != nil {
				return err
			}
		}
	}
	for _, g := range order {
		row := make([]storage.Value, 0, a.out.Len())
		row = append(row, g.keys...)
		for _, acc := range g.accs {
			row = append(row, acc.Result())
		}
		*merged = append(*merged, mergedGroup{first: g.first, row: row})
	}
	return nil
}

// windowStarts computes each window batch's global row offset.
func windowStarts(window []*storage.Batch, offset int) []int {
	starts := make([]int, len(window))
	for i, b := range window {
		starts[i] = offset
		offset += b.Len()
	}
	return starts
}

// Next implements Operator: the grouped result streams out in
// storage.BatchSize batches.
func (a *HashAggregate) Next() (*storage.Batch, error) {
	t0 := a.stats.begin()
	var b *storage.Batch
	if a.result != nil {
		b = NextChunk(a.result, &a.pos, a.result.Len())
	}
	a.stats.record(t0, b)
	return b, nil
}

// Close implements Operator.
func (a *HashAggregate) Close() error {
	a.stats.closed()
	a.result = nil
	a.mt.releaseAll()
	return nil
}
