package exec

import (
	"fmt"
	"sort"

	"repro/internal/expr"
	"repro/internal/sched"
	"repro/internal/storage"
)

// HashAggregate groups its input by the GroupBy expressions and
// evaluates the aggregates per group. Its output schema is the group
// columns followed by one column per aggregate. With no GroupBy
// expressions it produces exactly one row (the SQL scalar-aggregate
// case), even for empty input.
//
// With Workers > 1 a grouped aggregate runs in two parallel stages:
// the group-key and aggregate-input expressions are evaluated per
// batch on the worker pool, then the fold runs on partitioned maps —
// each worker owns the hash partition of group keys assigned to it and
// folds every input row of its groups, in global row order. Because a
// group lives entirely inside one partition, per-group accumulation
// order is identical to the serial fold, which keeps floating-point
// SUM/AVG results byte-identical at any worker count; group output
// order (first appearance) is restored by a final sort on each group's
// first input row.
//
// The parallel fold buffers the whole input batch list first (the
// serial fold streams with O(groups) state) — an extra O(input) copy,
// acceptable while tables are in-memory; a streaming partitioned fold
// is a ROADMAP item.
type HashAggregate struct {
	Input   Operator
	GroupBy []expr.Expr
	Aggs    []*expr.Aggregate
	// Names provides output column names: len(GroupBy)+len(Aggs).
	Names []string
	// Workers caps fold parallelism; 0 or 1 folds serially.
	Workers int
	// Budget is the shared extra-worker budget (nil = unlimited).
	Budget *sched.Budget

	out    storage.Schema
	result *storage.Batch
	sent   bool
}

// Schema implements Operator.
func (a *HashAggregate) Schema() storage.Schema {
	if a.out.Len() == 0 {
		cols := make([]storage.ColumnDef, 0, len(a.GroupBy)+len(a.Aggs))
		for i, g := range a.GroupBy {
			cols = append(cols, storage.Col(a.Names[i], g.Type()))
		}
		for i, ag := range a.Aggs {
			t, err := ag.ResultType()
			if err != nil {
				t = storage.TypeFloat64
			}
			cols = append(cols, storage.Col(a.Names[len(a.GroupBy)+i], t))
		}
		a.out = storage.NewSchema(cols...)
	}
	return a.out
}

type aggGroup struct {
	keys []storage.Value
	accs []*expr.Accumulator
}

// fastKeyable reports whether the vectorized single-int64-key path
// applies: one INTEGER group key, no DISTINCT aggregates.
func (a *HashAggregate) fastKeyable() bool {
	if len(a.GroupBy) != 1 || a.GroupBy[0].Type() != storage.TypeInt64 {
		return false
	}
	for _, ag := range a.Aggs {
		if ag.Distinct {
			return false
		}
	}
	return true
}

// batchIter returns a next-func over a pre-collected batch list.
func batchIter(batches []*storage.Batch) func() (*storage.Batch, error) {
	i := 0
	return func() (*storage.Batch, error) {
		if i >= len(batches) {
			return nil, nil
		}
		b := batches[i]
		i++
		return b, nil
	}
}

// collectBatches drains an opened operator into a batch list without
// concatenating.
func collectBatches(in Operator) ([]*storage.Batch, error) {
	var batches []*storage.Batch
	for {
		b, err := in.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return batches, nil
		}
		if b.Len() > 0 {
			batches = append(batches, b)
		}
	}
}

// openFast consumes the input with the vectorized path: the group key
// and every aggregate input are evaluated as whole columns per batch,
// and groups live in an int64-keyed map.
func (a *HashAggregate) openFast(next func() (*storage.Batch, error)) error {
	type group struct {
		key  int64
		accs []*expr.Accumulator
	}
	groups := make(map[int64]*group)
	var order []*group
	for {
		b, err := next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		keyCol, err := expr.EvalVector(a.GroupBy[0], b)
		if err != nil {
			return err
		}
		keys, ok := keyCol.(*storage.Int64Column)
		if !ok || storage.NullsOf(keys).Any() {
			return errFastPathNulls
		}
		inputs := make([]storage.Column, len(a.Aggs))
		for k, ag := range a.Aggs {
			if ag.Kind == expr.AggCountStar {
				continue
			}
			col, err := expr.EvalVector(ag.Input, b)
			if err != nil {
				return err
			}
			inputs[k] = col
		}
		kv := keys.Int64s()
		for i := range kv {
			g := groups[kv[i]]
			if g == nil {
				g = &group{key: kv[i], accs: newAccumulators(a.Aggs)}
				groups[kv[i]] = g
				order = append(order, g)
			}
			for k, ag := range a.Aggs {
				if ag.Kind == expr.AggCountStar {
					g.accs[k].Add(storage.Int64(1))
					continue
				}
				g.accs[k].Add(inputs[k].Value(i))
			}
		}
	}
	a.result = storage.NewBatch(a.out)
	for _, g := range order {
		row := make([]storage.Value, 0, a.out.Len())
		row = append(row, storage.Int64(g.key))
		for _, acc := range g.accs {
			row = append(row, acc.Result())
		}
		if err := a.result.AppendRow(row...); err != nil {
			return err
		}
	}
	return nil
}

// errFastPathNulls aborts the fast path when it discovers NULL group
// keys mid-stream; the caller restarts with the generic path.
var errFastPathNulls = fmt.Errorf("exec: aggregate fast path hit NULL group keys; re-run without fast path")

func newAccumulators(aggs []*expr.Aggregate) []*expr.Accumulator {
	accs := make([]*expr.Accumulator, len(aggs))
	for i, ag := range aggs {
		accs[i] = ag.NewAccumulator()
	}
	return accs
}

// Open implements Operator: it consumes the whole input and builds the
// grouped result.
func (a *HashAggregate) Open() error {
	a.Schema()
	a.sent = false
	if err := a.Input.Open(); err != nil {
		return err
	}
	defer a.Input.Close()

	if len(a.GroupBy) > 0 && a.Workers > 1 {
		batches, err := collectBatches(a.Input)
		if err != nil {
			return err
		}
		rows := 0
		for _, b := range batches {
			rows += b.Len()
		}
		if w := splitParts(rows, a.Workers); w > 1 {
			return a.openPartitioned(batches, w)
		}
		// Too small to parallelize; fold the collected batches serially.
		if a.fastKeyable() {
			if err := a.openFast(batchIter(batches)); err == nil {
				return nil
			} else if err != errFastPathNulls {
				return err
			}
		}
		return a.openSerial(batchIter(batches))
	}

	if a.fastKeyable() {
		if err := a.openFast(a.Input.Next); err == nil {
			return nil
		} else if err != errFastPathNulls {
			return err
		}
		// Restart the input for the generic path.
		if err := a.Input.Close(); err != nil {
			return err
		}
		if err := a.Input.Open(); err != nil {
			return err
		}
	}
	return a.openSerial(a.Input.Next)
}

// openSerial is the generic fold: arbitrary key expressions, evaluated
// row at a time.
func (a *HashAggregate) openSerial(next func() (*storage.Batch, error)) error {
	groups := make(map[uint64][]*aggGroup)
	var order []*aggGroup // deterministic output order: first appearance

	newGroup := func(keys []storage.Value) *aggGroup {
		g := &aggGroup{keys: keys, accs: newAccumulators(a.Aggs)}
		order = append(order, g)
		return g
	}

	if len(a.GroupBy) == 0 {
		newGroup(nil)
	}

	for {
		b, err := next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for i := 0; i < b.Len(); i++ {
			row := expr.Row{Batch: b, Idx: i}
			var g *aggGroup
			if len(a.GroupBy) == 0 {
				g = order[0]
			} else {
				keys := make([]storage.Value, len(a.GroupBy))
				for k, ge := range a.GroupBy {
					v, err := ge.Eval(row)
					if err != nil {
						return err
					}
					keys[k] = v
				}
				h := storage.HashRow(keys)
				for _, cand := range groups[h] {
					if rowsEqual(cand.keys, keys) {
						g = cand
						break
					}
				}
				if g == nil {
					g = newGroup(keys)
					groups[h] = append(groups[h], g)
				}
			}
			if err := foldRow(g.accs, a.Aggs, row); err != nil {
				return err
			}
		}
	}

	a.result = storage.NewBatch(a.out)
	for _, g := range order {
		row := make([]storage.Value, 0, a.out.Len())
		row = append(row, g.keys...)
		for _, acc := range g.accs {
			row = append(row, acc.Result())
		}
		if err := a.result.AppendRow(row...); err != nil {
			return err
		}
	}
	return nil
}

// foldRow folds one input row into a group's accumulators.
func foldRow(accs []*expr.Accumulator, aggs []*expr.Aggregate, row expr.Row) error {
	for k, ag := range aggs {
		var v storage.Value
		if ag.Kind == expr.AggCountStar {
			v = storage.Int64(1)
		} else {
			var err error
			v, err = ag.Input.Eval(row)
			if err != nil {
				return err
			}
		}
		accs[k].Add(v)
	}
	return nil
}

// mergedGroup is one group's finished output row plus the global index
// of its first input row, used to restore serial emission order.
type mergedGroup struct {
	first int
	row   []storage.Value
}

// openPartitioned is the parallel grouped fold over pre-collected
// batches: stage 1 evaluates key (and, on the fast path, aggregate
// input) expressions per batch on the worker pool; stage 2 folds on w
// partitioned maps, each worker visiting every row but claiming only
// the keys that hash into its partition.
func (a *HashAggregate) openPartitioned(batches []*storage.Batch, w int) error {
	starts := make([]int, len(batches))
	rows := 0
	for i, b := range batches {
		starts[i] = rows
		rows += b.Len()
	}

	var merged []mergedGroup
	var err error
	if a.fastKeyable() {
		merged, err = a.foldFastPartitioned(batches, starts, w)
		if err == errFastPathNulls {
			merged, err = a.foldSlowPartitioned(batches, starts, w)
		}
	} else {
		merged, err = a.foldSlowPartitioned(batches, starts, w)
	}
	if err != nil {
		return err
	}

	sort.Slice(merged, func(x, y int) bool { return merged[x].first < merged[y].first })
	a.result = storage.NewBatch(a.out)
	for _, g := range merged {
		if err := a.result.AppendRow(g.row...); err != nil {
			return err
		}
	}
	return nil
}

// foldFastPartitioned is the int64-key parallel fold.
func (a *HashAggregate) foldFastPartitioned(batches []*storage.Batch, starts []int, w int) ([]mergedGroup, error) {
	type evalBatch struct {
		keys   []int64
		inputs []storage.Column
	}
	evals := make([]evalBatch, len(batches))
	errs := make([]error, len(batches))
	sched.ForEach(a.Budget, len(batches), w, func(bi int) {
		b := batches[bi]
		keyCol, err := expr.EvalVector(a.GroupBy[0], b)
		if err != nil {
			errs[bi] = err
			return
		}
		keys, ok := keyCol.(*storage.Int64Column)
		if !ok || storage.NullsOf(keys).Any() {
			errs[bi] = errFastPathNulls
			return
		}
		ev := evalBatch{keys: keys.Int64s(), inputs: make([]storage.Column, len(a.Aggs))}
		for k, ag := range a.Aggs {
			if ag.Kind == expr.AggCountStar {
				continue
			}
			col, err := expr.EvalVector(ag.Input, b)
			if err != nil {
				errs[bi] = err
				return
			}
			ev.inputs[k] = col
		}
		evals[bi] = ev
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	type group struct {
		key   int64
		first int
		accs  []*expr.Accumulator
	}
	parts := make([][]*group, w)
	sched.ForEach(a.Budget, w, w, func(p int) {
		m := make(map[int64]*group)
		var order []*group
		for bi := range evals {
			start := starts[bi]
			for i, k := range evals[bi].keys {
				if int(uint64(k)%uint64(w)) != p {
					continue
				}
				g := m[k]
				if g == nil {
					g = &group{key: k, first: start + i, accs: newAccumulators(a.Aggs)}
					m[k] = g
					order = append(order, g)
				}
				for ai, ag := range a.Aggs {
					if ag.Kind == expr.AggCountStar {
						g.accs[ai].Add(storage.Int64(1))
						continue
					}
					g.accs[ai].Add(evals[bi].inputs[ai].Value(i))
				}
			}
		}
		parts[p] = order
	})

	var merged []mergedGroup
	for _, order := range parts {
		for _, g := range order {
			row := make([]storage.Value, 0, a.out.Len())
			row = append(row, storage.Int64(g.key))
			for _, acc := range g.accs {
				row = append(row, acc.Result())
			}
			merged = append(merged, mergedGroup{first: g.first, row: row})
		}
	}
	return merged, nil
}

// foldSlowPartitioned is the generic parallel fold: stage 1 computes
// key values and hashes per row; stage 2 folds each hash partition on
// its own worker, evaluating aggregate inputs only for owned rows.
func (a *HashAggregate) foldSlowPartitioned(batches []*storage.Batch, starts []int, w int) ([]mergedGroup, error) {
	type evalBatch struct {
		keys   [][]storage.Value
		hashes []uint64
	}
	evals := make([]evalBatch, len(batches))
	errs := make([]error, len(batches))
	sched.ForEach(a.Budget, len(batches), w, func(bi int) {
		b := batches[bi]
		n := b.Len()
		ev := evalBatch{keys: make([][]storage.Value, n), hashes: make([]uint64, n)}
		for i := 0; i < n; i++ {
			row := expr.Row{Batch: b, Idx: i}
			keys := make([]storage.Value, len(a.GroupBy))
			for k, ge := range a.GroupBy {
				v, err := ge.Eval(row)
				if err != nil {
					errs[bi] = err
					return
				}
				keys[k] = v
			}
			ev.keys[i] = keys
			ev.hashes[i] = storage.HashRow(keys)
		}
		evals[bi] = ev
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	type group struct {
		keys  []storage.Value
		first int
		accs  []*expr.Accumulator
	}
	parts := make([][]*group, w)
	perrs := make([]error, w)
	sched.ForEach(a.Budget, w, w, func(p int) {
		m := make(map[uint64][]*group)
		var order []*group
		for bi := range evals {
			b := batches[bi]
			start := starts[bi]
			for i, h := range evals[bi].hashes {
				if int(h%uint64(w)) != p {
					continue
				}
				var g *group
				for _, cand := range m[h] {
					if rowsEqual(cand.keys, evals[bi].keys[i]) {
						g = cand
						break
					}
				}
				if g == nil {
					g = &group{keys: evals[bi].keys[i], first: start + i, accs: newAccumulators(a.Aggs)}
					m[h] = append(m[h], g)
					order = append(order, g)
				}
				if err := foldRow(g.accs, a.Aggs, expr.Row{Batch: b, Idx: i}); err != nil {
					perrs[p] = err
					return
				}
			}
		}
		parts[p] = order
	})
	for _, err := range perrs {
		if err != nil {
			return nil, err
		}
	}

	var merged []mergedGroup
	for _, order := range parts {
		for _, g := range order {
			row := make([]storage.Value, 0, a.out.Len())
			row = append(row, g.keys...)
			for _, acc := range g.accs {
				row = append(row, acc.Result())
			}
			merged = append(merged, mergedGroup{first: g.first, row: row})
		}
	}
	return merged, nil
}

// Next implements Operator.
func (a *HashAggregate) Next() (*storage.Batch, error) {
	if a.sent || a.result == nil || a.result.Len() == 0 {
		return nil, nil
	}
	a.sent = true
	return a.result, nil
}

// Close implements Operator.
func (a *HashAggregate) Close() error {
	a.result = nil
	return nil
}
