package exec

import (
	"context"
	"sync"

	"repro/internal/storage"
)

// CtxRef is a swappable context holder for cached plans. A plan that
// lives across executions is wrapped with WithContextRef exactly once
// at plan time; each execution installs its own context with Set
// before opening the tree, and every ctxOperator snapshots the current
// context in Open. Without the indirection a cached tree would bake in
// its first execution's context forever (and fail permanently once
// that context was cancelled).
type CtxRef struct {
	mu  sync.Mutex
	ctx context.Context
}

// NewCtxRef returns a ref holding context.Background().
func NewCtxRef() *CtxRef {
	return &CtxRef{ctx: context.Background()}
}

// Set installs the context for the next execution. It must be called
// before the tree is opened, never while it is iterating.
func (r *CtxRef) Set(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	r.mu.Lock()
	r.ctx = ctx
	r.mu.Unlock()
}

func (r *CtxRef) load() context.Context {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ctx
}

// WithContext wraps op so that iteration fails fast once ctx is
// cancelled. The wrap is recursive: blocking operators (joins,
// aggregates, sorts, spools) drain their children inside Open, so the
// context is checked at every operator boundary, batch by batch — a
// cancelled context aborts mid-statement, not just between statements.
// The engine wraps every statement's root operator with it.
func WithContext(ctx context.Context, op Operator) Operator {
	if ctx == nil || ctx.Done() == nil {
		return op // context.Background(): nothing to check
	}
	return wrapCtx(ctx, nil, op)
}

// WithContextRef is WithContext for cached plans: the tree is wrapped
// once and each execution's context arrives through ref. It always
// wraps — even if the ref currently holds an uncancellable context —
// because later executions may install cancellable ones.
func WithContextRef(ref *CtxRef, op Operator) Operator {
	return wrapCtx(nil, ref, op)
}

// wrapCtx pushes the context check below every materialization point.
// Operator trees are built per statement (or checked out by one
// execution at a time, for cached plans), so mutating child links in
// place is safe. Exactly one of ctx and ref is non-nil.
func wrapCtx(ctx context.Context, ref *CtxRef, op Operator) Operator {
	switch o := op.(type) {
	case *Filter:
		o.Input = wrapCtx(ctx, ref, o.Input)
	case *Project:
		o.Input = wrapCtx(ctx, ref, o.Input)
	case *Limit:
		o.Input = wrapCtx(ctx, ref, o.Input)
	case *Distinct:
		o.Input = wrapCtx(ctx, ref, o.Input)
	case *Sort:
		o.Input = wrapCtx(ctx, ref, o.Input)
	case *HashAggregate:
		o.Input = wrapCtx(ctx, ref, o.Input)
	case *HashJoin:
		o.Left = wrapCtx(ctx, ref, o.Left)
		o.Right = wrapCtx(ctx, ref, o.Right)
	case *NestedLoopJoin:
		o.Left = wrapCtx(ctx, ref, o.Left)
		o.Right = wrapCtx(ctx, ref, o.Right)
	case *UnionAll:
		for i := range o.Inputs {
			o.Inputs[i] = wrapCtx(ctx, ref, o.Inputs[i])
		}
	case *Gather:
		// Fragment goroutines check the context themselves, so a
		// cancelled parallel query stops producing promptly instead of
		// filling its bounded channels to the end.
		for i := range o.Fragments {
			o.Fragments[i] = wrapCtx(ctx, ref, o.Fragments[i])
		}
	case *SpoolPart:
		// Sibling parts share the spool; wrap its input only once.
		if _, done := o.sp.input.(*ctxOperator); !done {
			o.sp.input = wrapCtx(ctx, ref, o.sp.input)
		}
		return op // the shared spool carries the check
	case *ctxOperator:
		return op // already wrapped (a re-wrapped cached subtree)
	}
	return &ctxOperator{ctx: ctx, ref: ref, input: op}
}

// ctxOperator aborts iteration once its context is cancelled. With a
// ref, the effective context is re-read at every Open, so a cached
// plan observes the current execution's context, not a prior one's.
type ctxOperator struct {
	ctx   context.Context
	ref   *CtxRef
	input Operator
}

// Schema implements Operator.
func (c *ctxOperator) Schema() storage.Schema { return c.input.Schema() }

// Open implements Operator.
func (c *ctxOperator) Open() error {
	if c.ref != nil {
		c.ctx = c.ref.load()
	}
	if err := c.ctx.Err(); err != nil {
		return err
	}
	return c.input.Open()
}

// Next implements Operator.
func (c *ctxOperator) Next() (*storage.Batch, error) {
	if err := c.ctx.Err(); err != nil {
		return nil, err
	}
	return c.input.Next()
}

// Close implements Operator.
func (c *ctxOperator) Close() error { return c.input.Close() }
