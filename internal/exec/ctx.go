package exec

import (
	"context"

	"repro/internal/storage"
)

// WithContext wraps op so that iteration fails fast once ctx is
// cancelled. The wrap is recursive: blocking operators (joins,
// aggregates, sorts, spools) drain their children inside Open, so the
// context is checked at every operator boundary, batch by batch — a
// cancelled context aborts mid-statement, not just between statements.
// The engine wraps every statement's root operator with it.
func WithContext(ctx context.Context, op Operator) Operator {
	if ctx == nil || ctx.Done() == nil {
		return op // context.Background(): nothing to check
	}
	return wrapCtx(ctx, op)
}

// wrapCtx pushes the context check below every materialization point.
// Operator trees are built per statement, so mutating child links in
// place is safe.
func wrapCtx(ctx context.Context, op Operator) Operator {
	switch o := op.(type) {
	case *Filter:
		o.Input = wrapCtx(ctx, o.Input)
	case *Project:
		o.Input = wrapCtx(ctx, o.Input)
	case *Limit:
		o.Input = wrapCtx(ctx, o.Input)
	case *Distinct:
		o.Input = wrapCtx(ctx, o.Input)
	case *Sort:
		o.Input = wrapCtx(ctx, o.Input)
	case *HashAggregate:
		o.Input = wrapCtx(ctx, o.Input)
	case *HashJoin:
		o.Left = wrapCtx(ctx, o.Left)
		o.Right = wrapCtx(ctx, o.Right)
	case *NestedLoopJoin:
		o.Left = wrapCtx(ctx, o.Left)
		o.Right = wrapCtx(ctx, o.Right)
	case *UnionAll:
		for i := range o.Inputs {
			o.Inputs[i] = wrapCtx(ctx, o.Inputs[i])
		}
	case *Gather:
		// Fragment goroutines check the context themselves, so a
		// cancelled parallel query stops producing promptly instead of
		// filling its bounded channels to the end.
		for i := range o.Fragments {
			o.Fragments[i] = wrapCtx(ctx, o.Fragments[i])
		}
	case *SpoolPart:
		// Sibling parts share the spool; wrap its input only once.
		if _, done := o.sp.input.(*ctxOperator); !done {
			o.sp.input = wrapCtx(ctx, o.sp.input)
		}
		return op // the shared spool carries the check
	}
	return &ctxOperator{ctx: ctx, input: op}
}

type ctxOperator struct {
	ctx   context.Context
	input Operator
}

// Schema implements Operator.
func (c *ctxOperator) Schema() storage.Schema { return c.input.Schema() }

// Open implements Operator.
func (c *ctxOperator) Open() error {
	if err := c.ctx.Err(); err != nil {
		return err
	}
	return c.input.Open()
}

// Next implements Operator.
func (c *ctxOperator) Next() (*storage.Batch, error) {
	if err := c.ctx.Err(); err != nil {
		return nil, err
	}
	return c.input.Next()
}

// Close implements Operator.
func (c *ctxOperator) Close() error { return c.input.Close() }
