package exec

import (
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/storage"
)

func intCol(name string) storage.ColumnDef { return storage.Col(name, storage.TypeInt64) }

func makeTable(t *testing.T, name string, cols []storage.ColumnDef, rows [][]storage.Value) *storage.Table {
	t.Helper()
	tb := storage.NewTable(name, storage.NewSchema(cols...))
	for _, r := range rows {
		if err := tb.AppendRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func iv(v int64) storage.Value  { return storage.Int64(v) }
func sv(s string) storage.Value { return storage.Str(s) }

func colRef(b storage.Schema, name string) *expr.ColumnRef {
	i := b.IndexOf(name)
	return &expr.ColumnRef{Name: name, Index: i, Typ: b.Cols[i].Type}
}

func TestTableScanBatches(t *testing.T) {
	tb := storage.NewTable("t", storage.NewSchema(intCol("x")))
	for i := int64(0); i < int64(storage.BatchSize)+10; i++ {
		_ = tb.AppendRow(iv(i))
	}
	scan := NewTableScan(tb)
	out, err := Drain(scan)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != storage.BatchSize+10 {
		t.Fatalf("drained %d rows", out.Len())
	}
	if out.Row(storage.BatchSize + 9)[0].I != int64(storage.BatchSize)+9 {
		t.Error("row order lost across batches")
	}
}

func TestFilter(t *testing.T) {
	tb := makeTable(t, "t", []storage.ColumnDef{intCol("x")},
		[][]storage.Value{{iv(1)}, {iv(5)}, {iv(10)}, {iv(3)}})
	scan := NewTableScan(tb)
	pred, err := expr.NewBinary(expr.OpGt, colRef(tb.Schema(), "x"), &expr.Literal{Val: iv(3)})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Drain(&Filter{Input: scan, Pred: pred})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 || out.Row(0)[0].I != 5 || out.Row(1)[0].I != 10 {
		t.Errorf("filter result wrong: %d rows", out.Len())
	}
}

func TestProject(t *testing.T) {
	tb := makeTable(t, "t", []storage.ColumnDef{intCol("x")}, [][]storage.Value{{iv(2)}, {iv(3)}})
	double, err := expr.NewBinary(expr.OpMul, colRef(tb.Schema(), "x"), &expr.Literal{Val: iv(2)})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProject(NewTableScan(tb), []expr.Expr{double}, []string{"d"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Drain(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema.Cols[0].Name != "d" || out.Row(0)[0].I != 4 || out.Row(1)[0].I != 6 {
		t.Error("project wrong")
	}
}

func TestLimitOffset(t *testing.T) {
	tb := storage.NewTable("t", storage.NewSchema(intCol("x")))
	for i := int64(0); i < 10; i++ {
		_ = tb.AppendRow(iv(i))
	}
	out, err := Drain(&Limit{Input: NewTableScan(tb), N: 3, Offset: 4})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 || out.Row(0)[0].I != 4 || out.Row(2)[0].I != 6 {
		t.Errorf("limit/offset wrong: len=%d", out.Len())
	}
}

func TestUnionAll(t *testing.T) {
	a := makeTable(t, "a", []storage.ColumnDef{intCol("x")}, [][]storage.Value{{iv(1)}})
	b := makeTable(t, "b", []storage.ColumnDef{intCol("y")}, [][]storage.Value{{iv(2)}, {iv(3)}})
	out, err := Drain(&UnionAll{Inputs: []Operator{NewTableScan(a), NewTableScan(b)}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("union len = %d", out.Len())
	}
	if out.Schema.Cols[0].Name != "x" {
		t.Error("union should take first input's names")
	}
}

func TestUnionAllTypeMismatch(t *testing.T) {
	a := makeTable(t, "a", []storage.ColumnDef{intCol("x")}, nil)
	b := makeTable(t, "b", []storage.ColumnDef{storage.Col("y", storage.TypeString)}, nil)
	u := &UnionAll{Inputs: []Operator{NewTableScan(a), NewTableScan(b)}}
	if err := u.Open(); err == nil {
		t.Error("type mismatch should fail Open")
	}
}

func TestSortOperator(t *testing.T) {
	tb := makeTable(t, "t", []storage.ColumnDef{intCol("x")},
		[][]storage.Value{{iv(3)}, {iv(1)}, {iv(2)}})
	out, err := Drain(&Sort{Input: NewTableScan(tb), Keys: []storage.SortKey{{Col: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range []int64{1, 2, 3} {
		if out.Row(i)[0].I != w {
			t.Errorf("sorted[%d] = %d, want %d", i, out.Row(i)[0].I, w)
		}
	}
}

func TestDistinct(t *testing.T) {
	tb := makeTable(t, "t", []storage.ColumnDef{intCol("x"), storage.Col("s", storage.TypeString)},
		[][]storage.Value{{iv(1), sv("a")}, {iv(1), sv("a")}, {iv(1), sv("b")}, {iv(2), sv("a")}})
	out, err := Drain(&Distinct{Input: NewTableScan(tb)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Errorf("distinct len = %d, want 3", out.Len())
	}
}

func TestHashJoinInner(t *testing.T) {
	edges := makeTable(t, "e", []storage.ColumnDef{intCol("src"), intCol("dst")},
		[][]storage.Value{{iv(1), iv(2)}, {iv(2), iv(3)}, {iv(9), iv(9)}})
	verts := makeTable(t, "v", []storage.ColumnDef{intCol("id"), storage.Col("val", storage.TypeString)},
		[][]storage.Value{{iv(2), sv("b")}, {iv(3), sv("c")}})
	j := &HashJoin{
		Left: NewTableScan(edges), Right: NewTableScan(verts),
		LeftKeys: []int{1}, RightKeys: []int{0}, Type: InnerJoin,
	}
	out, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("join len = %d, want 2", out.Len())
	}
	if out.Row(0)[3].S != "b" || out.Row(1)[3].S != "c" {
		t.Error("join payload wrong")
	}
}

func TestHashJoinLeft(t *testing.T) {
	l := makeTable(t, "l", []storage.ColumnDef{intCol("k")},
		[][]storage.Value{{iv(1)}, {iv(2)}})
	r := makeTable(t, "r", []storage.ColumnDef{intCol("k"), intCol("v")},
		[][]storage.Value{{iv(1), iv(100)}})
	j := &HashJoin{Left: NewTableScan(l), Right: NewTableScan(r),
		LeftKeys: []int{0}, RightKeys: []int{0}, Type: LeftJoin}
	out, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("left join len = %d", out.Len())
	}
	if out.Row(0)[2].I != 100 {
		t.Error("matched row payload wrong")
	}
	if !out.Row(1)[2].Null {
		t.Error("unmatched left row should pad NULLs")
	}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	l := storage.NewTable("l", storage.NewSchema(intCol("k")))
	_ = l.AppendRow(storage.Null(storage.TypeInt64))
	r := storage.NewTable("r", storage.NewSchema(intCol("k")))
	_ = r.AppendRow(storage.Null(storage.TypeInt64))
	j := &HashJoin{Left: NewTableScan(l), Right: NewTableScan(r),
		LeftKeys: []int{0}, RightKeys: []int{0}, Type: InnerJoin}
	out, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Error("NULL = NULL must not join")
	}
}

// TestHashJoinMatchesNestedLoop is the oracle property test: on random
// data, HashJoin and NestedLoopJoin must agree (up to row order).
func TestHashJoinMatchesNestedLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		l := storage.NewTable("l", storage.NewSchema(intCol("a"), intCol("b")))
		r := storage.NewTable("r", storage.NewSchema(intCol("c"), intCol("d")))
		for i := 0; i < 30; i++ {
			_ = l.AppendRow(iv(int64(rng.Intn(8))), iv(int64(rng.Intn(100))))
		}
		for i := 0; i < 25; i++ {
			_ = r.AppendRow(iv(int64(rng.Intn(8))), iv(int64(rng.Intn(100))))
		}
		for _, typ := range []JoinType{InnerJoin, LeftJoin} {
			hj := &HashJoin{Left: NewTableScan(l), Right: NewTableScan(r),
				LeftKeys: []int{0}, RightKeys: []int{0}, Type: typ}
			schema := hj.Schema()
			onExpr, err := expr.NewBinary(expr.OpEq,
				&expr.ColumnRef{Name: "a", Index: 0, Typ: storage.TypeInt64},
				&expr.ColumnRef{Name: "c", Index: 2, Typ: storage.TypeInt64})
			if err != nil {
				t.Fatal(err)
			}
			nl := &NestedLoopJoin{Left: NewTableScan(l), Right: NewTableScan(r), Type: typ, On: onExpr}
			hout, err := Drain(hj)
			if err != nil {
				t.Fatal(err)
			}
			nout, err := Drain(nl)
			if err != nil {
				t.Fatal(err)
			}
			if !batchesEqualUnordered(hout, nout) {
				t.Fatalf("trial %d type %d: hash join (%d rows) != nested loop (%d rows) on schema %v",
					trial, typ, hout.Len(), nout.Len(), schema.Names())
			}
		}
	}
}

func batchesEqualUnordered(a, b *storage.Batch) bool {
	if a.Len() != b.Len() {
		return false
	}
	keys := make([]storage.SortKey, len(a.Cols))
	for i := range keys {
		keys[i] = storage.SortKey{Col: i}
	}
	as := storage.SortBatch(a, keys)
	bs := storage.SortBatch(b, keys)
	for i := 0; i < as.Len(); i++ {
		if !rowsEqual(as.Row(i), bs.Row(i)) {
			return false
		}
	}
	return true
}

func TestCrossJoin(t *testing.T) {
	a := makeTable(t, "a", []storage.ColumnDef{intCol("x")}, [][]storage.Value{{iv(1)}, {iv(2)}})
	b := makeTable(t, "b", []storage.ColumnDef{intCol("y")}, [][]storage.Value{{iv(10)}, {iv(20)}, {iv(30)}})
	out, err := Drain(&NestedLoopJoin{Left: NewTableScan(a), Right: NewTableScan(b), Type: CrossJoin})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 6 {
		t.Errorf("cross join len = %d, want 6", out.Len())
	}
}

func TestHashAggregateGroups(t *testing.T) {
	tb := makeTable(t, "e", []storage.ColumnDef{intCol("src"), intCol("w")},
		[][]storage.Value{{iv(1), iv(10)}, {iv(1), iv(20)}, {iv(2), iv(5)}})
	src := colRef(tb.Schema(), "src")
	w := colRef(tb.Schema(), "w")
	agg := &HashAggregate{
		Input:   NewTableScan(tb),
		GroupBy: []expr.Expr{src},
		Aggs: []*expr.Aggregate{
			{Kind: expr.AggCountStar},
			{Kind: expr.AggSum, Input: w},
			{Kind: expr.AggMin, Input: w},
		},
		Names: []string{"src", "cnt", "total", "lo"},
	}
	out, err := Drain(agg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("groups = %d, want 2", out.Len())
	}
	// First-appearance order: group 1 first.
	if out.Row(0)[0].I != 1 || out.Row(0)[1].I != 2 || out.Row(0)[2].I != 30 || out.Row(0)[3].I != 10 {
		t.Errorf("group 1 wrong: %v", out.Row(0))
	}
	if out.Row(1)[0].I != 2 || out.Row(1)[1].I != 1 {
		t.Errorf("group 2 wrong: %v", out.Row(1))
	}
}

func TestHashAggregateScalarOverEmpty(t *testing.T) {
	tb := storage.NewTable("t", storage.NewSchema(intCol("x")))
	agg := &HashAggregate{
		Input: NewTableScan(tb),
		Aggs:  []*expr.Aggregate{{Kind: expr.AggCountStar}},
		Names: []string{"cnt"},
	}
	out, err := Drain(agg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Row(0)[0].I != 0 {
		t.Error("COUNT(*) over empty table should be one row with 0")
	}
}

func TestGroupByNullKeysGroupTogether(t *testing.T) {
	tb := storage.NewTable("t", storage.NewSchema(intCol("k")))
	_ = tb.AppendRow(storage.Null(storage.TypeInt64))
	_ = tb.AppendRow(storage.Null(storage.TypeInt64))
	_ = tb.AppendRow(iv(1))
	agg := &HashAggregate{
		Input:   NewTableScan(tb),
		GroupBy: []expr.Expr{colRef(tb.Schema(), "k")},
		Aggs:    []*expr.Aggregate{{Kind: expr.AggCountStar}},
		Names:   []string{"k", "cnt"},
	}
	out, err := Drain(agg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("NULL keys must form one group; got %d groups", out.Len())
	}
}
