package exec

import (
	"repro/internal/storage"
)

// Grace hash join: when the build side outgrows the memory grant, both
// inputs are hash-partitioned on the join key into on-disk runs —
// graceParts partitions per level, 4 hash bits each — and each left
// partition is probed against its right partition with a
// partition-sized hash table. A partition that still does not fit
// repartitions on the next 4 bits, up to maxGraceLevels, after which it
// proceeds unreserved (the working floor: a key set so skewed that
// three levels cannot split it would otherwise never run).
//
// Byte-identity with the in-memory join is carried by a row index: each
// left row takes its global input position into the partitions (as the
// run's last column, keeping key indices valid) and into the result
// runs (as the first column). Probing a partition visits left rows in
// ascending index order and emits matches in ascending build order, so
// each result run is index-sorted; a K-way merge by index across the
// result runs reproduces the serial probe output exactly, then strips
// the index column.

const (
	// graceParts is the partition fan-out per level: 4 hash bits.
	graceParts = 16
	// maxGraceLevels caps recursive repartitioning; level 0 is the
	// initial split, deeper levels use successively higher hash bits.
	maxGraceLevels = 3
)

// gracePartOf routes a key hash to its partition at the given level.
func gracePartOf(h uint64, level int) int {
	return int((h >> (4 * uint(level))) % graceParts)
}

func (j *HashJoin) fs() storage.SpillFS {
	if j.FS != nil {
		return j.FS
	}
	return storage.DefaultSpillFS
}

// graceOutSchema is the result-run schema: the row index first, then
// the join's output columns.
func (j *HashJoin) graceOutSchema() storage.Schema {
	cols := make([]storage.ColumnDef, 0, j.out.Len()+1)
	cols = append(cols, storage.Col("__idx", storage.TypeInt64))
	cols = append(cols, j.out.Cols...)
	return storage.NewSchema(cols...)
}

// openGrace runs the partition and probe phases; afterwards Next merges
// the result runs by row index.
func (j *HashJoin) openGrace() error {
	rruns, err := j.partitionRight()
	if err != nil {
		return err
	}
	lruns, err := j.partitionLeft()
	if err != nil {
		for _, r := range rruns {
			r.Close()
		}
		return err
	}
	j.mt.releaseAll()
	var results []*storage.SpillRun
	closeResults := func() {
		for _, r := range results {
			r.Close()
		}
	}
	for k := 0; k < graceParts; k++ {
		if err := j.graceProbe(lruns[k], rruns[k], 1, &results); err != nil {
			for kk := k + 1; kk < graceParts; kk++ {
				lruns[kk].Close()
				rruns[kk].Close()
			}
			closeResults()
			return err
		}
	}
	g, err := newGraceState(results)
	if err != nil {
		closeResults()
		return err
	}
	j.grace = g
	return nil
}

// partitionRight routes the buffered build prefix plus the rest of the
// right stream into level-0 partition runs. NULL-key rows are dropped
// here — they can never match.
func (j *HashJoin) partitionRight() ([graceParts]*storage.SpillRun, error) {
	var zero [graceParts]*storage.SpillRun
	p := gracePartitioner{fs: j.fs(), schema: j.Right.Schema()}
	route := func(b *storage.Batch) error {
		var idxs [graceParts][]int
		for i := 0; i < b.Len(); i++ {
			h, ok := joinKeyOf(b, i, j.RightKeys)
			if !ok {
				continue
			}
			k := gracePartOf(h, 0)
			idxs[k] = append(idxs[k], i)
		}
		for k := 0; k < graceParts; k++ {
			if len(idxs[k]) == 0 {
				continue
			}
			if err := p.write(k, b.Gather(idxs[k])); err != nil {
				return err
			}
		}
		return nil
	}
	fail := func(err error) ([graceParts]*storage.SpillRun, error) {
		p.abort()
		j.Right.Close()
		return zero, err
	}
	pos := 0
	for {
		b := NextChunk(j.rdata, &pos, j.rdata.Len())
		if b == nil {
			break
		}
		if err := route(b); err != nil {
			return fail(err)
		}
	}
	for {
		b, err := j.Right.Next()
		if err != nil {
			return fail(err)
		}
		if b == nil {
			break
		}
		j.buildRows.Add(int64(b.Len()))
		if err := route(b); err != nil {
			return fail(err)
		}
	}
	if err := j.Right.Close(); err != nil {
		p.abort()
		return zero, err
	}
	j.rdata = nil
	j.mt.releaseAll() // the buffered prefix lives on disk now
	return p.finish(&j.stats)
}

// partitionLeft streams the whole left input into level-0 partition
// runs, appending each row's global input index as the last column.
// NULL-key rows of a left join ride partition 0 (they match nothing and
// come back NULL-padded); under an inner join they are dropped.
func (j *HashJoin) partitionLeft() ([graceParts]*storage.SpillRun, error) {
	var zero [graceParts]*storage.SpillRun
	ls := j.Left.Schema()
	cols := make([]storage.ColumnDef, 0, ls.Len()+1)
	cols = append(cols, ls.Cols...)
	cols = append(cols, storage.Col("__idx", storage.TypeInt64))
	ext := storage.NewSchema(cols...)
	p := gracePartitioner{fs: j.fs(), schema: ext}
	if err := j.Left.Open(); err != nil {
		p.abort()
		return zero, err
	}
	fail := func(err error) ([graceParts]*storage.SpillRun, error) {
		p.abort()
		j.Left.Close()
		return zero, err
	}
	var pend [graceParts]*storage.Batch
	idx := int64(0)
	for {
		b, err := j.Left.Next()
		if err != nil {
			return fail(err)
		}
		if b == nil {
			break
		}
		j.probeRows.Add(int64(b.Len()))
		for i := 0; i < b.Len(); i++ {
			h, ok := joinKeyOf(b, i, j.LeftKeys)
			k := 0
			if ok {
				k = gracePartOf(h, 0)
			} else if j.Type != LeftJoin {
				idx++
				continue
			}
			if pend[k] == nil {
				pend[k] = storage.NewBatch(ext)
			}
			row := append(b.Row(i), storage.Int64(idx))
			idx++
			if err := pend[k].AppendRow(row...); err != nil {
				return fail(err)
			}
			if pend[k].Len() >= storage.BatchSize {
				if err := p.write(k, pend[k]); err != nil {
					return fail(err)
				}
				pend[k] = nil
			}
		}
	}
	if err := j.Left.Close(); err != nil {
		p.abort()
		return zero, err
	}
	for k := 0; k < graceParts; k++ {
		if pend[k] != nil && pend[k].Len() > 0 {
			if err := p.write(k, pend[k]); err != nil {
				p.abort()
				return zero, err
			}
		}
	}
	return p.finish(&j.stats)
}

// gracePartitioner fans batches out to one lazily created run writer
// per partition.
type gracePartitioner struct {
	fs     storage.SpillFS
	schema storage.Schema
	ws     [graceParts]*storage.RunWriter
}

func (p *gracePartitioner) write(k int, b *storage.Batch) error {
	w := p.ws[k]
	if w == nil {
		var err error
		w, err = storage.NewRunWriter(p.fs, p.schema)
		if err != nil {
			return err
		}
		p.ws[k] = w
	}
	return w.Write(b)
}

func (p *gracePartitioner) abort() {
	for _, w := range p.ws {
		if w != nil {
			w.Abort()
		}
	}
}

func (p *gracePartitioner) finish(stats *OpStats) ([graceParts]*storage.SpillRun, error) {
	var runs [graceParts]*storage.SpillRun
	for k, w := range p.ws {
		if w == nil {
			continue
		}
		run, err := w.Finish()
		if err != nil {
			for _, r := range runs {
				r.Close()
			}
			for _, w2 := range p.ws[k:] {
				if w2 != nil {
					w2.Abort()
				}
			}
			return runs, err
		}
		stats.spilled(run)
		runs[k] = run
	}
	return runs, nil
}

// graceProbe joins one left partition against its right partition,
// appending an index-sorted result run to results. Both input runs are
// closed before it returns. A right partition that does not fit the
// grant recurses one level; at the deepest level it proceeds
// unreserved.
func (j *HashJoin) graceProbe(lrun, rrun *storage.SpillRun, level int, results *[]*storage.SpillRun) error {
	defer lrun.Close()
	defer rrun.Close()
	if lrun == nil || lrun.Rows() == 0 {
		return nil // no probe rows: neither matches nor pads can exist
	}
	mt := memTracker{mem: j.Mem}
	defer mt.releaseAll()
	var rpart *storage.Batch
	if rrun != nil {
		rpart = storage.NewBatch(rrun.Schema())
		rr := rrun.Reader()
		for {
			b, err := rr.Next()
			if err != nil {
				return err
			}
			if b == nil {
				break
			}
			if !mt.reserve(storage.BatchBytes(b)) && level < maxGraceLevels {
				mt.releaseAll()
				return j.graceRecurse(lrun, rrun, level, results)
			}
			if err := storage.Concat(rpart, b); err != nil {
				return err
			}
		}
	}
	built := make(map[uint64][]int)
	if rpart != nil {
		for i := 0; i < rpart.Len(); i++ {
			h, ok := joinKeyOf(rpart, i, j.RightKeys)
			if !ok {
				continue
			}
			built[h] = append(built[h], i)
		}
	}
	oschema := j.graceOutSchema()
	w, err := storage.NewRunWriter(j.fs(), oschema)
	if err != nil {
		return err
	}
	out := storage.NewBatch(oschema)
	flush := func(force bool) error {
		if out.Len() == 0 || (!force && out.Len() < storage.BatchSize) {
			return nil
		}
		if err := w.Write(out); err != nil {
			return err
		}
		out = storage.NewBatch(oschema)
		return nil
	}
	ls := j.Left.Schema()
	lr := lrun.Reader()
	for {
		b, err := lr.Next()
		if err != nil {
			w.Abort()
			return err
		}
		if b == nil {
			break
		}
		nl := len(b.Cols) - 1
		core := &storage.Batch{Schema: ls, Cols: b.Cols[:nl]}
		idxs := b.Cols[nl].(*storage.Int64Column).Int64s()
		for i := 0; i < b.Len(); i++ {
			matched := false
			if h, ok := joinKeyOf(core, i, j.LeftKeys); ok {
				var lrow []storage.Value
				for _, ri := range built[h] {
					if !joinKeysEqual(core, i, rpart, ri, j.LeftKeys, j.RightKeys) {
						continue
					}
					if lrow == nil {
						lrow = core.Row(i)
					}
					combined := append(append([]storage.Value{}, lrow...), rpart.Row(ri)...)
					if j.Residual != nil {
						keep, err := evalPredOnRow(j.out, j.Residual, combined)
						if err != nil {
							w.Abort()
							return err
						}
						if !keep {
							continue
						}
					}
					matched = true
					row := append([]storage.Value{storage.Int64(idxs[i])}, combined...)
					if err := out.AppendRow(row...); err != nil {
						w.Abort()
						return err
					}
					if err := flush(false); err != nil {
						w.Abort()
						return err
					}
				}
			}
			if !matched && j.Type == LeftJoin {
				row := append([]storage.Value{storage.Int64(idxs[i])}, core.Row(i)...)
				row = append(row, j.rNulls...)
				if err := out.AppendRow(row...); err != nil {
					w.Abort()
					return err
				}
				if err := flush(false); err != nil {
					w.Abort()
					return err
				}
			}
		}
	}
	if err := flush(true); err != nil {
		w.Abort()
		return err
	}
	run, err := w.Finish()
	if err != nil {
		return err
	}
	if run.Frames() == 0 {
		return run.Close() // nothing matched: drop the empty run
	}
	j.stats.spilled(run)
	*results = append(*results, run)
	return nil
}

// graceRecurse splits both partition runs on the next 4 hash bits and
// probes each sub-pair. The parent runs are closed by graceProbe's
// defers after this returns.
func (j *HashJoin) graceRecurse(lrun, rrun *storage.SpillRun, level int, results *[]*storage.SpillRun) error {
	rsub, err := j.repartitionRun(rrun, level, j.RightKeys, false)
	if err != nil {
		return err
	}
	lsub, err := j.repartitionRun(lrun, level, j.LeftKeys, true)
	if err != nil {
		for _, r := range rsub {
			r.Close()
		}
		return err
	}
	for k := 0; k < graceParts; k++ {
		if err := j.graceProbe(lsub[k], rsub[k], level+1, results); err != nil {
			for kk := k + 1; kk < graceParts; kk++ {
				lsub[kk].Close()
				rsub[kk].Close()
			}
			return err
		}
	}
	return nil
}

// repartitionRun splits a run by the hash bits of the given level. Left
// runs carry their __idx as the last column, so the key indices stay
// valid; their NULL-key rows (left-join pads-to-be) stay in
// sub-partition 0.
func (j *HashJoin) repartitionRun(run *storage.SpillRun, level int, keys []int, isLeft bool) ([graceParts]*storage.SpillRun, error) {
	var zero [graceParts]*storage.SpillRun
	p := gracePartitioner{fs: j.fs(), schema: run.Schema()}
	rr := run.Reader()
	for {
		b, err := rr.Next()
		if err != nil {
			p.abort()
			return zero, err
		}
		if b == nil {
			break
		}
		kb := b
		if isLeft {
			kb = &storage.Batch{Schema: j.Left.Schema(), Cols: b.Cols[:len(b.Cols)-1]}
		}
		var idxs [graceParts][]int
		for i := 0; i < b.Len(); i++ {
			h, ok := joinKeyOf(kb, i, keys)
			k := 0
			if ok {
				k = gracePartOf(h, level)
			} else if !isLeft {
				continue
			}
			idxs[k] = append(idxs[k], i)
		}
		for k := 0; k < graceParts; k++ {
			if len(idxs[k]) == 0 {
				continue
			}
			if err := p.write(k, b.Gather(idxs[k])); err != nil {
				p.abort()
				return zero, err
			}
		}
	}
	return p.finish(&j.stats)
}

// graceState is the K-way merge cursor over the index-sorted result
// runs. Each run's frames stream in one at a time; the merge picks the
// run with the smallest head index (indexes are unique to a run, and a
// left row's several output rows sit consecutively in one run), so
// output rows appear in global left-input order.
type graceState struct {
	runs []*storage.SpillRun
	cur  []*storage.Batch
	pos  []int
	idxs [][]int64
	next []int
}

func newGraceState(runs []*storage.SpillRun) (*graceState, error) {
	g := &graceState{
		runs: runs,
		cur:  make([]*storage.Batch, len(runs)),
		pos:  make([]int, len(runs)),
		idxs: make([][]int64, len(runs)),
		next: make([]int, len(runs)),
	}
	for i := range runs {
		if err := g.load(i); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// load pulls run i's next frame into the cursor (nil at end of run).
func (g *graceState) load(i int) error {
	g.cur[i], g.pos[i] = nil, 0
	if g.next[i] >= g.runs[i].Frames() {
		return nil
	}
	b, err := g.runs[i].ReadFrame(g.next[i])
	if err != nil {
		return err
	}
	g.next[i]++
	g.cur[i] = b
	g.idxs[i] = b.Cols[0].(*storage.Int64Column).Int64s()
	return nil
}

// graceNextBatch serves the next merged batch of the Grace result,
// stripping the index column.
func (j *HashJoin) graceNextBatch() (*storage.Batch, error) {
	g := j.grace
	out := storage.NewBatch(j.out)
	for out.Len() < storage.BatchSize {
		best := -1
		var bestIdx int64
		for r := range g.runs {
			if g.cur[r] == nil {
				continue
			}
			if idx := g.idxs[r][g.pos[r]]; best < 0 || idx < bestIdx {
				best, bestIdx = r, idx
			}
		}
		if best < 0 {
			break
		}
		row := g.cur[best].Row(g.pos[best])
		if err := out.AppendRow(row[1:]...); err != nil {
			return nil, err
		}
		g.pos[best]++
		if g.pos[best] >= g.cur[best].Len() {
			if err := g.load(best); err != nil {
				return nil, err
			}
		}
	}
	if out.Len() == 0 {
		return nil, nil
	}
	return out, nil
}
