// Package exec implements the vectorized volcano executor: physical
// operators that pull record batches from their children. The SQL
// planner assembles these; the vertex-centric runtime also uses them
// directly to build its table-union input (the paper's §2.3 "Table
// Unions" optimization runs on UnionAll + Sort rather than a 3-way
// join).
package exec

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/sched"
	"repro/internal/storage"
)

// Operator is a pull-based physical operator producing record batches.
// Next returns a nil batch at end of stream. Operators are single-use:
// Open, Next until nil, Close.
type Operator interface {
	// Schema describes the batches the operator produces.
	Schema() storage.Schema
	// Open prepares the operator (and its children) for iteration.
	Open() error
	// Next returns the next batch, or nil at end of stream.
	Next() (*storage.Batch, error)
	// Close releases resources.
	Close() error
}

// NextChunk emits rows [*pos, min(*pos+BatchSize, hi)) of b and
// advances *pos — the shared cursor behind every operator that streams
// a materialized batch in bounded pieces. It returns b itself (no
// copy) when the chunk covers the whole batch, and nil once *pos
// reaches hi.
func NextChunk(b *storage.Batch, pos *int, hi int) *storage.Batch {
	if *pos >= hi {
		return nil
	}
	end := *pos + storage.BatchSize
	if end > hi {
		end = hi
	}
	out := b
	if *pos != 0 || end != b.Len() {
		out = b.Slice(*pos, end)
	}
	*pos = end
	return out
}

// Drain pulls every batch from op into one concatenated batch. The
// operator is opened and closed by Drain.
func Drain(op Operator) (*storage.Batch, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	out := storage.NewBatch(op.Schema())
	for {
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		if err := storage.Concat(out, b); err != nil {
			return nil, err
		}
	}
}

// TableScan reads a table's current contents in batches, shard by
// shard in shard-major order. The source is any storage.TableData: a
// live *storage.Table (reads are then the caller's latch discipline)
// or an immutable *storage.Snapshot (MVCC readers — no latch at all).
// A scan may be restricted to one hash shard (Shard, 1-based) and/or
// to morsel `part` of `parts` (a contiguous fraction of the selected
// row range, computed from the row counts at Open); the zero value
// scans the whole table. Each morsel carries its own cursor — there is
// no shared scan state between fragments.
type TableScan struct {
	Table storage.TableData
	// OutSchema optionally renames the scan's output columns (the
	// planner uses this to apply alias qualifiers).
	OutSchema storage.Schema
	// Shard restricts the scan to one hash shard (1-based; 0 scans
	// every shard). The planner sets it when a point predicate on the
	// partition key routes a lookup to the owning shard.
	Shard int
	// NoSplit pins the scan to a single fragment. The planner sets it
	// on scans whose Shard is routed at bind time (a point predicate on
	// the partition key against a parameter): the target shard differs
	// per execution, so the scan must stay one re-routable unit rather
	// than be cloned into per-shard morsels whose assignment would be
	// frozen into the cached plan.
	NoSplit bool

	part, parts int

	segs  []*storage.Batch // shard-major segments of the selected row space
	seg   int              // current segment
	pos   int              // cursor within the current segment
	left  int              // rows remaining in this morsel
	stats OpStats
}

// NewTableScan returns a scan over the table (or snapshot) with its
// own schema.
func NewTableScan(t storage.TableData) *TableScan {
	return &TableScan{Table: t, OutSchema: t.Schema()}
}

// Schema implements Operator.
func (s *TableScan) Schema() storage.Schema { return s.OutSchema }

// OpStats implements Instrumented.
func (s *TableScan) OpStats() *OpStats { return &s.stats }

// Open implements Operator.
func (s *TableScan) Open() error {
	t0 := s.stats.begin()
	err := s.open()
	s.stats.opened(t0)
	return err
}

func (s *TableScan) open() error {
	if sh, ok := s.Table.(storage.Sharded); ok && (sh.NumShards() > 1 || s.Shard > 0) {
		if s.Shard > 0 {
			s.segs = []*storage.Batch{sh.ShardBatch(s.Shard - 1)}
		} else {
			s.segs = make([]*storage.Batch, sh.NumShards())
			for i := range s.segs {
				s.segs[i] = sh.ShardBatch(i)
			}
		}
	} else {
		s.segs = []*storage.Batch{s.Table.Data()}
	}
	n := 0
	for _, b := range s.segs {
		n += b.Len()
	}
	lo, hi := 0, n
	if s.parts > 1 {
		lo = s.part * n / s.parts
		hi = (s.part + 1) * n / s.parts
	}
	// Seek the cursor to global row lo (skipping empty segments).
	s.seg, s.pos = 0, lo
	for s.seg < len(s.segs) && s.pos >= s.segs[s.seg].Len() {
		s.pos -= s.segs[s.seg].Len()
		s.seg++
	}
	s.left = hi - lo
	return nil
}

// Next implements Operator.
func (s *TableScan) Next() (*storage.Batch, error) {
	t0 := s.stats.begin()
	b, err := s.next()
	s.stats.record(t0, b)
	return b, err
}

func (s *TableScan) next() (*storage.Batch, error) {
	for s.left > 0 && s.seg < len(s.segs) {
		cur := s.segs[s.seg]
		if s.pos >= cur.Len() {
			s.seg++
			s.pos = 0
			continue
		}
		end := s.pos + storage.BatchSize
		if end > cur.Len() {
			end = cur.Len()
		}
		if end-s.pos > s.left {
			end = s.pos + s.left
		}
		out := &storage.Batch{Schema: s.OutSchema, Cols: make([]storage.Column, len(cur.Cols))}
		for i, c := range cur.Cols {
			out.Cols[i] = c.Slice(s.pos, end)
		}
		s.left -= end - s.pos
		s.pos = end
		return out, nil
	}
	return nil, nil
}

// Close implements Operator.
func (s *TableScan) Close() error {
	s.segs = nil
	s.stats.closed()
	return nil
}

// BatchSource serves a pre-materialized batch (used for VALUES, CTE
// results and tests). Like TableScan it may be restricted to morsel
// `part` of `parts`.
type BatchSource struct {
	Data *storage.Batch

	part, parts int

	pos   int
	end   int
	stats OpStats
}

// Schema implements Operator.
func (s *BatchSource) Schema() storage.Schema { return s.Data.Schema }

// OpStats implements Instrumented.
func (s *BatchSource) OpStats() *OpStats { return &s.stats }

// Open implements Operator.
func (s *BatchSource) Open() error {
	t0 := s.stats.begin()
	n := s.Data.Len()
	s.pos, s.end = 0, n
	if s.parts > 1 {
		s.pos = s.part * n / s.parts
		s.end = (s.part + 1) * n / s.parts
	}
	s.stats.opened(t0)
	return nil
}

// Next implements Operator.
func (s *BatchSource) Next() (*storage.Batch, error) {
	t0 := s.stats.begin()
	b := NextChunk(s.Data, &s.pos, s.end)
	s.stats.record(t0, b)
	return b, nil
}

// Close implements Operator.
func (s *BatchSource) Close() error {
	s.stats.closed()
	return nil
}

// Filter passes through rows for which Pred evaluates to TRUE.
type Filter struct {
	Input Operator
	Pred  expr.Expr
	stats OpStats
}

// Schema implements Operator.
func (f *Filter) Schema() storage.Schema { return f.Input.Schema() }

// OpStats implements Instrumented.
func (f *Filter) OpStats() *OpStats { return &f.stats }

// Open implements Operator.
func (f *Filter) Open() error {
	t0 := f.stats.begin()
	err := f.Input.Open()
	f.stats.opened(t0)
	return err
}

// Next implements Operator. The predicate is evaluated vectorized over
// the whole batch; rows where it is non-null TRUE survive.
func (f *Filter) Next() (*storage.Batch, error) {
	t0 := f.stats.begin()
	b, err := f.next()
	f.stats.record(t0, b)
	return b, err
}

func (f *Filter) next() (*storage.Batch, error) {
	for {
		b, err := f.Input.Next()
		if err != nil || b == nil {
			return nil, err
		}
		n := b.Len()
		pred, err := expr.EvalVector(f.Pred, b)
		if err != nil {
			return nil, err
		}
		keep := make([]int, 0, n)
		for i := 0; i < n; i++ {
			if !pred.IsNull(i) && pred.Value(i).IsTrue() {
				keep = append(keep, i)
			}
		}
		if len(keep) == 0 {
			continue
		}
		if len(keep) == n {
			return b, nil
		}
		return b.Gather(keep), nil
	}
}

// Close implements Operator.
func (f *Filter) Close() error {
	f.stats.closed()
	return f.Input.Close()
}

// Project evaluates expressions per row, producing a new schema.
type Project struct {
	Input Operator
	Exprs []expr.Expr
	Out   storage.Schema
	stats OpStats
}

// NewProject builds a projection with output column names.
func NewProject(in Operator, exprs []expr.Expr, names []string) (*Project, error) {
	if len(exprs) != len(names) {
		return nil, fmt.Errorf("exec: project arity mismatch")
	}
	cols := make([]storage.ColumnDef, len(exprs))
	for i, e := range exprs {
		cols[i] = storage.Col(names[i], e.Type())
	}
	return &Project{Input: in, Exprs: exprs, Out: storage.NewSchema(cols...)}, nil
}

// Schema implements Operator.
func (p *Project) Schema() storage.Schema { return p.Out }

// OpStats implements Instrumented.
func (p *Project) OpStats() *OpStats { return &p.stats }

// Open implements Operator.
func (p *Project) Open() error {
	t0 := p.stats.begin()
	err := p.Input.Open()
	p.stats.opened(t0)
	return err
}

// Next implements Operator. Each output expression is evaluated
// vectorized over the whole input batch; plain column references are
// passed through without copying.
func (p *Project) Next() (*storage.Batch, error) {
	t0 := p.stats.begin()
	b, err := p.next()
	p.stats.record(t0, b)
	return b, err
}

func (p *Project) next() (*storage.Batch, error) {
	b, err := p.Input.Next()
	if err != nil || b == nil {
		return nil, err
	}
	out := &storage.Batch{Schema: p.Out, Cols: make([]storage.Column, len(p.Exprs))}
	for j, e := range p.Exprs {
		col, err := expr.EvalVector(e, b)
		if err != nil {
			return nil, err
		}
		out.Cols[j] = col
	}
	return out, nil
}

// Close implements Operator.
func (p *Project) Close() error {
	p.stats.closed()
	return p.Input.Close()
}

// Limit returns at most N rows after skipping Offset rows.
type Limit struct {
	Input   Operator
	N       int64
	Offset  int64
	skipped int64
	sent    int64
	stats   OpStats
}

// Schema implements Operator.
func (l *Limit) Schema() storage.Schema { return l.Input.Schema() }

// OpStats implements Instrumented.
func (l *Limit) OpStats() *OpStats { return &l.stats }

// Open implements Operator.
func (l *Limit) Open() error {
	t0 := l.stats.begin()
	l.skipped, l.sent = 0, 0
	err := l.Input.Open()
	l.stats.opened(t0)
	return err
}

// Next implements Operator.
func (l *Limit) Next() (*storage.Batch, error) {
	t0 := l.stats.begin()
	b, err := l.next()
	l.stats.record(t0, b)
	return b, err
}

func (l *Limit) next() (*storage.Batch, error) {
	for {
		if l.sent >= l.N {
			return nil, nil
		}
		b, err := l.Input.Next()
		if err != nil || b == nil {
			return nil, err
		}
		n := int64(b.Len())
		// Skip offset rows.
		if l.skipped < l.Offset {
			if l.Offset-l.skipped >= n {
				l.skipped += n
				continue
			}
			b = b.Slice(int(l.Offset-l.skipped), int(n))
			l.skipped = l.Offset
			n = int64(b.Len())
		}
		if l.sent+n > l.N {
			b = b.Slice(0, int(l.N-l.sent))
		}
		l.sent += int64(b.Len())
		if b.Len() == 0 {
			continue
		}
		return b, nil
	}
}

// Close implements Operator.
func (l *Limit) Close() error {
	l.stats.closed()
	return l.Input.Close()
}

// UnionAll concatenates the outputs of its inputs. All inputs must have
// compatible schemas (same arity and types); the output uses the first
// input's column names. This operator is the heart of the paper's
// Table-Unions optimization.
//
// Inputs open lazily: input i+1 is opened only once input i is
// exhausted, so N blocking inputs (per-superstep Sorts, say) never
// materialize simultaneously — peak memory is one input, not N.
type UnionAll struct {
	Inputs []Operator
	cur    int
	opened int // inputs [0, opened) have been opened
	stats  OpStats
}

// Schema implements Operator.
func (u *UnionAll) Schema() storage.Schema { return u.Inputs[0].Schema() }

// OpStats implements Instrumented.
func (u *UnionAll) OpStats() *OpStats { return &u.stats }

// Open implements Operator: it validates schemas but defers opening
// each input until iteration reaches it.
func (u *UnionAll) Open() error {
	t0 := u.stats.begin()
	err := u.open()
	u.stats.opened(t0)
	return err
}

func (u *UnionAll) open() error {
	u.cur, u.opened = 0, 0
	first := u.Inputs[0].Schema()
	for _, in := range u.Inputs[1:] {
		s := in.Schema()
		if s.Len() != first.Len() {
			return fmt.Errorf("exec: UNION ALL arity mismatch: %d vs %d", first.Len(), s.Len())
		}
		for i := range s.Cols {
			if s.Cols[i].Type != first.Cols[i].Type {
				return fmt.Errorf("exec: UNION ALL type mismatch in column %d: %s vs %s",
					i, first.Cols[i].Type, s.Cols[i].Type)
			}
		}
	}
	return nil
}

// Next implements Operator.
func (u *UnionAll) Next() (*storage.Batch, error) {
	t0 := u.stats.begin()
	b, err := u.next()
	u.stats.record(t0, b)
	return b, err
}

func (u *UnionAll) next() (*storage.Batch, error) {
	for u.cur < len(u.Inputs) {
		if u.cur >= u.opened {
			if err := u.Inputs[u.cur].Open(); err != nil {
				return nil, err
			}
			u.opened = u.cur + 1
		}
		b, err := u.Inputs[u.cur].Next()
		if err != nil {
			return nil, err
		}
		if b != nil {
			if u.cur > 0 {
				b = &storage.Batch{Schema: u.Schema(), Cols: b.Cols}
			}
			return b, nil
		}
		u.cur++
	}
	return nil, nil
}

// Close implements Operator: only inputs that were actually opened are
// closed.
func (u *UnionAll) Close() error {
	u.stats.closed()
	var first error
	for _, in := range u.Inputs[:u.opened] {
		if err := in.Close(); err != nil && first == nil {
			first = err
		}
	}
	u.opened = 0
	return first
}

// Sort materializes its input and emits it ordered by Keys in
// storage.BatchSize batches (a sort is inherently blocking, but its
// consumers stream). With Workers > 1 the input is divided into
// contiguous morsels, each stably sorted on its own worker, and the
// sorted runs are merged pairwise — also in parallel — via
// storage.MergeSortedBatches. Both the per-morsel sort and the merge
// are stable with earlier input preferred on ties, so the result is
// row-for-row identical to the serial sort at any worker count.
//
// With a memory grant (Mem), Sort becomes an external merge sort: input
// buffering reserves against the grant, and each denied reservation
// cuts the buffered prefix into a sorted on-disk run. Runs are
// contiguous input regions in input order, each stably sorted, and the
// final pairwise ladder of storage.MergeSpillRuns is stable with the
// earlier run preferred on ties — the composition is exactly the global
// stable sort, so a 64KB budget and an unlimited one emit identical
// bytes. When no reservation is denied the in-memory path runs
// unchanged.
type Sort struct {
	Input Operator
	Keys  []storage.SortKey
	// Workers caps sort/merge parallelism; 0 or 1 sorts serially.
	Workers int
	// Budget is the shared extra-worker budget (nil = unlimited).
	Budget *sched.Budget
	// Mem is the statement memory grant (nil = unlimited); a denied
	// reservation spills. FS creates spill files (nil = the default
	// temp-file filesystem).
	Mem *sched.MemBudget
	FS  storage.SpillFS

	out   *storage.Batch
	pos   int
	run   *storage.SpillRun // final merged run when the sort spilled
	frame int               // next run frame to emit
	mt    memTracker
	stats OpStats
}

// Schema implements Operator.
func (s *Sort) Schema() storage.Schema { return s.Input.Schema() }

// OpStats implements Instrumented.
func (s *Sort) OpStats() *OpStats { return &s.stats }

// Open implements Operator.
func (s *Sort) Open() error {
	t0 := s.stats.begin()
	err := s.open()
	s.stats.opened(t0)
	return err
}

func (s *Sort) open() error {
	s.pos, s.frame = 0, 0
	s.mt = memTracker{mem: s.Mem}
	if err := s.Input.Open(); err != nil {
		return err
	}
	defer s.Input.Close()
	all := storage.NewBatch(s.Input.Schema())
	var runs []*storage.SpillRun
	closeRuns := func() {
		for _, r := range runs {
			r.Close()
		}
	}
	for {
		b, err := s.Input.Next()
		if err != nil {
			closeRuns()
			return err
		}
		if b == nil {
			break
		}
		if !s.mt.reserve(storage.BatchBytes(b)) && all.Len() > 0 {
			run, err := s.spillRun(all)
			if err != nil {
				closeRuns()
				return err
			}
			runs = append(runs, run)
			s.mt.releaseAll()
			all = storage.NewBatch(s.Input.Schema())
			// Re-reserve against the fresh buffer; a denial here means
			// even one batch exceeds the grant, and the one-batch working
			// floor proceeds unreserved.
			s.mt.reserve(storage.BatchBytes(b))
		}
		if err := storage.Concat(all, b); err != nil {
			closeRuns()
			return err
		}
	}
	if len(runs) == 0 {
		s.out = s.sortAll(all)
		return nil
	}
	if all.Len() > 0 {
		run, err := s.spillRun(all)
		if err != nil {
			closeRuns()
			return err
		}
		runs = append(runs, run)
	}
	s.mt.releaseAll()
	merged, err := s.mergeRuns(runs)
	if err != nil {
		return err
	}
	s.run = merged
	return nil
}

// sortAll is the in-memory sort: per-morsel stable sorts merged by a
// pairwise ladder, both parallel. It is also how each spill run is
// ordered before it hits disk.
func (s *Sort) sortAll(all *storage.Batch) *storage.Batch {
	n := all.Len()
	m := splitParts(n, s.Workers)
	if m < 2 {
		return storage.SortBatch(all, s.Keys)
	}
	runs := make([]*storage.Batch, m)
	sched.ForEach(s.Budget, m, s.Workers, func(i int) {
		runs[i] = storage.SortBatch(all.Slice(i*n/m, (i+1)*n/m), s.Keys)
	})
	for len(runs) > 1 {
		next := make([]*storage.Batch, (len(runs)+1)/2)
		sched.ForEach(s.Budget, len(next), s.Workers, func(i int) {
			if 2*i+1 < len(runs) {
				next[i] = storage.MergeSortedBatches(runs[2*i], runs[2*i+1], s.Keys)
			} else {
				next[i] = runs[2*i]
			}
		})
		runs = next
	}
	return runs[0]
}

func (s *Sort) fs() storage.SpillFS {
	if s.FS != nil {
		return s.FS
	}
	return storage.DefaultSpillFS
}

// spillRun sorts the buffered prefix and writes it to disk as one run
// in BatchSize frames.
func (s *Sort) spillRun(all *storage.Batch) (*storage.SpillRun, error) {
	sorted := s.sortAll(all)
	w, err := storage.NewRunWriter(s.fs(), sorted.Schema)
	if err != nil {
		return nil, err
	}
	pos := 0
	for {
		b := NextChunk(sorted, &pos, sorted.Len())
		if b == nil {
			break
		}
		if err := w.Write(b); err != nil {
			w.Abort()
			return nil, err
		}
	}
	run, err := w.Finish()
	if err != nil {
		return nil, err
	}
	s.stats.spilled(run)
	return run, nil
}

// mergeRuns reduces the sorted runs to one by a parallel pairwise
// ladder of streaming disk merges, closing inputs as they are consumed.
// Earlier runs win ties at every rung, so the result is the global
// stable sort.
func (s *Sort) mergeRuns(runs []*storage.SpillRun) (*storage.SpillRun, error) {
	for len(runs) > 1 {
		next := make([]*storage.SpillRun, (len(runs)+1)/2)
		errs := make([]error, len(next))
		sched.ForEach(s.Budget, len(next), s.Workers, func(i int) {
			if 2*i+1 < len(runs) {
				m, err := storage.MergeSpillRuns(s.fs(), runs[2*i], runs[2*i+1], s.Keys)
				runs[2*i].Close()
				runs[2*i+1].Close()
				if err != nil {
					errs[i] = err
					return
				}
				s.stats.spilled(m)
				next[i] = m
			} else {
				next[i] = runs[2*i]
			}
		})
		runs = next
		for _, err := range errs {
			if err != nil {
				for _, r := range runs {
					r.Close()
				}
				return nil, err
			}
		}
	}
	return runs[0], nil
}

// Next implements Operator: sorted rows stream out in bounded batches —
// from memory, or frame by frame from the merged run when the sort
// spilled.
func (s *Sort) Next() (*storage.Batch, error) {
	t0 := s.stats.begin()
	b, err := s.next()
	s.stats.record(t0, b)
	return b, err
}

func (s *Sort) next() (*storage.Batch, error) {
	if s.run != nil {
		if s.frame >= s.run.Frames() {
			return nil, nil
		}
		b, err := s.run.ReadFrame(s.frame)
		if err != nil {
			return nil, err
		}
		s.frame++
		return b, nil
	}
	return NextChunk(s.out, &s.pos, s.out.Len()), nil
}

// Close implements Operator.
func (s *Sort) Close() error {
	s.out = nil
	err := s.run.Close()
	s.run = nil
	s.mt.releaseAll()
	s.stats.closed()
	return err
}

// Distinct removes duplicate rows (full-row comparison). Its seen-set
// has no spill path: when the set's estimated footprint exceeds the
// memory grant the statement fails with ErrOutOfMemoryBudget.
type Distinct struct {
	Input Operator
	// Mem is the statement memory grant (nil = unlimited).
	Mem   *sched.MemBudget
	seen  map[uint64][][]storage.Value
	mt    memTracker
	stats OpStats
}

// Schema implements Operator.
func (d *Distinct) Schema() storage.Schema { return d.Input.Schema() }

// OpStats implements Instrumented.
func (d *Distinct) OpStats() *OpStats { return &d.stats }

// Open implements Operator.
func (d *Distinct) Open() error {
	t0 := d.stats.begin()
	d.seen = make(map[uint64][][]storage.Value)
	d.mt = memTracker{mem: d.Mem}
	err := d.Input.Open()
	d.stats.opened(t0)
	return err
}

// Next implements Operator.
func (d *Distinct) Next() (*storage.Batch, error) {
	t0 := d.stats.begin()
	b, err := d.next()
	d.stats.record(t0, b)
	return b, err
}

func (d *Distinct) next() (*storage.Batch, error) {
	for {
		b, err := d.Input.Next()
		if err != nil || b == nil {
			return nil, err
		}
		keep := make([]int, 0, b.Len())
		for i := 0; i < b.Len(); i++ {
			row := b.Row(i)
			h := storage.HashRow(row)
			dup := false
			for _, prev := range d.seen[h] {
				if rowsEqual(prev, row) {
					dup = true
					break
				}
			}
			if !dup {
				d.seen[h] = append(d.seen[h], row)
				keep = append(keep, i)
			}
		}
		// Charge the retained rows to the grant: ~64 bytes per Value
		// (header, hash-bucket share, payload estimate). No spill path —
		// a denial is a statement failure.
		if !d.mt.reserve(int64(len(keep)) * 64 * int64(len(b.Cols))) {
			return nil, ErrOutOfMemoryBudget
		}
		if len(keep) == 0 {
			continue
		}
		return b.Gather(keep), nil
	}
}

// Close implements Operator.
func (d *Distinct) Close() error {
	d.stats.closed()
	d.seen = nil
	d.mt.releaseAll()
	return d.Input.Close()
}

func rowsEqual(a, b []storage.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Null != b[i].Null {
			return false
		}
		if !a[i].Null && storage.Compare(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}
