package exec

import (
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/storage"
)

// Fast-path oracles: the vectorized hash-join and aggregate paths must
// agree with their generic counterparts on random data.

func TestHashJoinFastPathMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		l := storage.NewTable("l", storage.NewSchema(intCol("k"), intCol("payload")))
		r := storage.NewTable("r", storage.NewSchema(intCol("k"), storage.Col("s", storage.TypeString)))
		for i := 0; i < 40; i++ {
			_ = l.AppendRow(iv(int64(rng.Intn(10))), iv(int64(i)))
		}
		for i := 0; i < 30; i++ {
			_ = r.AppendRow(iv(int64(rng.Intn(10))), sv(string(rune('a'+rng.Intn(26)))))
		}
		for _, typ := range []JoinType{InnerJoin, LeftJoin} {
			// Fast path: single int64 key, no residual.
			fast := &HashJoin{Left: NewTableScan(l), Right: NewTableScan(r),
				LeftKeys: []int{0}, RightKeys: []int{0}, Type: typ}
			fout, err := Drain(fast)
			if err != nil {
				t.Fatal(err)
			}
			// Force the generic path with a trivially-true residual.
			always, err := expr.NewBinary(expr.OpEq,
				&expr.Literal{Val: storage.Int64(1)}, &expr.Literal{Val: storage.Int64(1)})
			if err != nil {
				t.Fatal(err)
			}
			generic := &HashJoin{Left: NewTableScan(l), Right: NewTableScan(r),
				LeftKeys: []int{0}, RightKeys: []int{0}, Type: typ, Residual: always}
			gout, err := Drain(generic)
			if err != nil {
				t.Fatal(err)
			}
			if !batchesEqualUnordered(fout, gout) {
				t.Fatalf("trial %d type %d: fast path (%d rows) != generic (%d rows)",
					trial, typ, fout.Len(), gout.Len())
			}
		}
	}
}

func TestHashJoinFastPathEmitsBatches(t *testing.T) {
	l := storage.NewTable("l", storage.NewSchema(intCol("k")))
	r := storage.NewTable("r", storage.NewSchema(intCol("k")))
	for i := int64(0); i < int64(storage.BatchSize)+100; i++ {
		_ = l.AppendRow(iv(i))
		_ = r.AppendRow(iv(i))
	}
	j := &HashJoin{Left: NewTableScan(l), Right: NewTableScan(r),
		LeftKeys: []int{0}, RightKeys: []int{0}, Type: InnerJoin}
	if err := j.Open(); err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	total, batches := 0, 0
	for {
		b, err := j.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		total += b.Len()
		batches++
	}
	if total != storage.BatchSize+100 {
		t.Errorf("rows = %d", total)
	}
	if batches < 2 {
		t.Errorf("fast path should emit multiple batches, got %d", batches)
	}
}

func TestAggregateFastPathMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tb := storage.NewTable("t", storage.NewSchema(intCol("g"), storage.Col("x", storage.TypeFloat64)))
	for i := 0; i < 200; i++ {
		if rng.Intn(12) == 0 {
			_ = tb.AppendRow(iv(int64(rng.Intn(6))), storage.Null(storage.TypeFloat64))
		} else {
			_ = tb.AppendRow(iv(int64(rng.Intn(6))), storage.Float64(rng.Float64()*10))
		}
	}
	g := colRef(tb.Schema(), "g")
	x := colRef(tb.Schema(), "x")
	mk := func(distinct bool) *HashAggregate {
		return &HashAggregate{
			Input:   NewTableScan(tb),
			GroupBy: []expr.Expr{g},
			Aggs: []*expr.Aggregate{
				{Kind: expr.AggCountStar},
				{Kind: expr.AggSum, Input: x},
				{Kind: expr.AggMin, Input: x},
				{Kind: expr.AggMax, Input: x},
				{Kind: expr.AggCount, Input: x, Distinct: distinct},
			},
			Names: []string{"g", "n", "s", "lo", "hi", "c"},
		}
	}
	// distinct=true disables the fast path; distinct=false engages it.
	// COUNT(DISTINCT x) == COUNT(x) here because floats rarely collide.
	fast, err := Drain(mk(false))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Drain(mk(true))
	if err != nil {
		t.Fatal(err)
	}
	if !batchesEqualUnordered(fast, slow) {
		t.Fatalf("fast aggregate (%d groups) != generic (%d groups)", fast.Len(), slow.Len())
	}
}

func TestAggregateFastPathNullKeysFallBack(t *testing.T) {
	tb := storage.NewTable("t", storage.NewSchema(intCol("g")))
	_ = tb.AppendRow(storage.Null(storage.TypeInt64))
	_ = tb.AppendRow(iv(1))
	_ = tb.AppendRow(storage.Null(storage.TypeInt64))
	agg := &HashAggregate{
		Input:   NewTableScan(tb),
		GroupBy: []expr.Expr{colRef(tb.Schema(), "g")},
		Aggs:    []*expr.Aggregate{{Kind: expr.AggCountStar}},
		Names:   []string{"g", "n"},
	}
	out, err := Drain(agg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("groups = %d, want 2 (NULLs group together via fallback)", out.Len())
	}
}

func TestOrdinalOperator(t *testing.T) {
	tb := storage.NewTable("t", storage.NewSchema(intCol("x")))
	for i := int64(0); i < int64(storage.BatchSize)+5; i++ {
		_ = tb.AppendRow(iv(i * 2))
	}
	ord := &Ordinal{Input: NewTableScan(tb), Name: "oid"}
	out, err := Drain(ord)
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema.Len() != 2 || out.Schema.Cols[1].Name != "oid" {
		t.Fatalf("schema = %v", out.Schema.Names())
	}
	// Ordinals are continuous across batch boundaries.
	for i := 0; i < out.Len(); i++ {
		if out.Row(i)[1].I != int64(i) {
			t.Fatalf("ordinal[%d] = %d", i, out.Row(i)[1].I)
		}
	}
}

func TestGatherPad(t *testing.T) {
	c := storage.NewInt64Column([]int64{10, 20, 30})
	out := storage.GatherPad(c, []int{2, -1, 0})
	if out.Value(0).I != 30 || !out.IsNull(1) || out.Value(2).I != 10 {
		t.Errorf("GatherPad = %v %v %v", out.Value(0), out.Value(1), out.Value(2))
	}
	// Without pads it must behave exactly like Gather.
	plain := storage.GatherPad(c, []int{1, 1})
	if plain.Value(0).I != 20 || plain.Value(1).I != 20 {
		t.Error("GatherPad without -1 should equal Gather")
	}
}
